# Development and CI entry points. CI jobs invoke exactly these targets, so
# local runs and the matrix exercise identical commands.

GO ?= go

# Total-coverage floor enforced by `make cover` (ratcheted, not lowered:
# raise it when coverage grows). Current total at the time of setting: 85.9%.
COVER_FLOOR ?= 84.0

.PHONY: all fmt fmt-check vet lint build test race bench bench-commit \
	bench-commit-sweep bench-check bench-recovery bench-state \
	bench-channels cover crash-test cross smoke

all: build test

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck is optional locally (the container may lack network to install
# it); CI installs it and fails the lint job on findings.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime=500ms -run '^$$' ./...

# The -overhead-guard run doubles as the observability budget check: with
# metrics + tracing fully enabled, pipelined commit throughput must stay
# within 5% of the uninstrumented run.
bench-commit:
	$(GO) run ./cmd/hyperprov-bench -experiment commit -out BENCH_commit.json -overhead-guard 5

# MVCC contention sweep: parallel conflict-graph commit throughput from 0%
# (embarrassingly parallel) to 100% (every tx fighting over a hot-key pool).
bench-commit-sweep:
	$(GO) run ./cmd/hyperprov-bench -experiment mvcc-sweep -sweep-out BENCH_mvcc_sweep.json

# Local dry run of the CI bench-regression gate: two quick commit runs back
# to back must stay inside the same budgets CI enforces nightly
# (tx/s drop <= 10%, per-block p99 rise <= 15%).
bench-check:
	$(GO) run ./cmd/hyperprov-bench -experiment commit -quick -out /tmp/hyperprov_bench_baseline.json
	$(GO) run ./cmd/hyperprov-bench -experiment commit -quick -out /tmp/hyperprov_bench_current.json
	$(GO) run ./scripts -old /tmp/hyperprov_bench_baseline.json -new /tmp/hyperprov_bench_current.json

bench-recovery:
	$(GO) run ./cmd/hyperprov-bench -experiment recovery -recovery-out BENCH_recovery.json

bench-state:
	$(GO) run ./cmd/hyperprov-bench -experiment state -state-out BENCH_state.json

# Multi-channel tenancy experiment: aggregate modeled tx/s at 1/2/4
# channels on the 4-core host model, plus the hot-tenant isolation section
# (quiet-channel p99 under a hot neighbour on a static core partition).
bench-channels:
	$(GO) run ./cmd/hyperprov-bench -experiment channels -channels-out BENCH_channels.json

# Crash-recovery torture tests, repeated: the randomized kill points cover
# different interleavings on every -count iteration.
crash-test:
	$(GO) test -count=3 -run 'Torture|Crash|Recover|FileStore' \
		./internal/recovery/ ./internal/peer/ ./internal/blockstore/

# Multi-process deployment smoke test: one -peer-serve process, two -join
# processes, blocks disseminating over real TCP; asserts identical heights
# and state fingerprints across all three.
smoke:
	./scripts/smoke_net.sh

# Cross-compilation for the paper's ARM edge boards; vet runs per arch so
# size/alignment assumptions surface without qemu.
cross:
	GOOS=linux GOARCH=arm GOARM=7 $(GO) build ./...
	GOOS=linux GOARCH=arm GOARM=7 $(GO) vet ./...
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=arm64 $(GO) vet ./...

# Total coverage with an enforced floor; writes cover.out and cover.html.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/... ./...
	$(GO) tool cover -html=cover.out -o cover.html
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% fell below the floor $(COVER_FLOOR)%"; exit 1; }
