# Development and CI entry points. CI jobs invoke exactly these targets, so
# local runs and the matrix exercise identical commands.
#
# Static analysis: `make lint` builds tools/analyzers (a separate module,
# keeping the main go.mod dependency-free) into bin/hyperprov-vet and runs
# it through `go vet -vettool` — six repo-specific analyzers enforcing the
# invariants past PRs established (atomic durable writes, structured error
# codes, no deprecated shims, lock/blocking discipline, constant metric
# names, deterministic commit-path time). See README "Static analysis &
# enforced invariants" for the table and the suppression directives.

GO ?= go

# Total-coverage floor enforced by `make cover` (ratcheted, not lowered:
# raise it when coverage grows). Current total at the time of setting: 85.9%.
COVER_FLOOR ?= 84.0

# Per-target budget for `make fuzz` (PR smoke); nightly CI runs longer.
FUZZTIME ?= 30s

# The domain-specific vet tool and the module it lives in.
VETTOOL := tools/analyzers/bin/hyperprov-vet

.PHONY: all fmt fmt-check vet vettool analyze lint build test race bench \
	bench-commit bench-commit-sweep bench-check bench-recovery bench-state \
	bench-channels cover crash-test cross smoke fuzz test-analyzers

all: build test

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Build the hyperprov-vet multichecker from its own module.
vettool:
	cd tools/analyzers && $(GO) build -o bin/hyperprov-vet ./cmd/hyperprov-vet

# Run the six repo-specific analyzers over the whole tree via `go vet`.
analyze: vettool
	$(GO) vet -vettool=$(CURDIR)/$(VETTOOL) ./...

# Unit-test the analyzers themselves (golden fixtures + the not-muted
# self-test).
test-analyzers:
	cd tools/analyzers && $(GO) test ./...

# staticcheck and govulncheck are optional locally (the container may lack
# network to install them); CI installs them and fails the lint job on
# findings.
lint: vet analyze
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipped (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...
	$(MAKE) test-analyzers

race:
	$(GO) test -race -shuffle=on ./...

# Native fuzz targets, $(FUZZTIME) each: the frame reader under hostile
# bytes (header flag bits included), the checkpoint codec under damaged
# media, and the block/envelope codec under the bytes gossip frames and v2
# ledger files deliver. Each run first executes the committed seed corpus.
fuzz:
	$(GO) test -fuzz=FuzzReadFrameExt -fuzztime=$(FUZZTIME) -run '^$$' ./internal/network/
	$(GO) test -fuzz=FuzzDecodeCheckpoint -fuzztime=$(FUZZTIME) -run '^$$' ./internal/recovery/
	$(GO) test -fuzz=FuzzDecodeBlockCodec -fuzztime=$(FUZZTIME) -run '^$$' ./internal/blockstore/

bench:
	$(GO) test -bench . -benchtime=500ms -run '^$$' ./...

# The -overhead-guard run doubles as the observability budget check: with
# metrics + tracing fully enabled, pipelined commit throughput must stay
# within 5% of the uninstrumented run.
bench-commit:
	$(GO) run ./cmd/hyperprov-bench -experiment commit -out BENCH_commit.json -overhead-guard 5

# MVCC contention sweep: parallel conflict-graph commit throughput from 0%
# (embarrassingly parallel) to 100% (every tx fighting over a hot-key pool).
bench-commit-sweep:
	$(GO) run ./cmd/hyperprov-bench -experiment mvcc-sweep -sweep-out BENCH_mvcc_sweep.json

# Local dry run of the CI bench-regression gate: two quick commit runs back
# to back must stay inside the same budgets CI enforces nightly
# (tx/s drop <= 10%, per-block p99 rise <= 15%).
bench-check:
	$(GO) run ./cmd/hyperprov-bench -experiment commit -quick -out /tmp/hyperprov_bench_baseline.json
	$(GO) run ./cmd/hyperprov-bench -experiment commit -quick -out /tmp/hyperprov_bench_current.json
	$(GO) run ./scripts -old /tmp/hyperprov_bench_baseline.json -new /tmp/hyperprov_bench_current.json

bench-recovery:
	$(GO) run ./cmd/hyperprov-bench -experiment recovery -recovery-out BENCH_recovery.json

bench-state:
	$(GO) run ./cmd/hyperprov-bench -experiment state -state-out BENCH_state.json

# Multi-channel tenancy experiment: aggregate modeled tx/s at 1/2/4
# channels on the 4-core host model, plus the hot-tenant isolation section
# (quiet-channel p99 under a hot neighbour on a static core partition).
bench-channels:
	$(GO) run ./cmd/hyperprov-bench -experiment channels -channels-out BENCH_channels.json

# Binary-codec experiment: envelope encode/decode vs the legacy JSON wire,
# end-to-end commit with a cold vs warm signature cache, and TCP block
# catch-up. The regression gate holds this artifact to its absolute floors
# (decode >= 5x JSON, warm commit >= 1.3x cold, zero allocs/frame).
bench-codec:
	$(GO) run ./cmd/hyperprov-bench -experiment codec -codec-out BENCH_codec.json

# Crash-recovery torture tests, repeated: the randomized kill points cover
# different interleavings on every -count iteration.
crash-test:
	$(GO) test -count=3 -run 'Torture|Crash|Recover|FileStore' \
		./internal/recovery/ ./internal/peer/ ./internal/blockstore/

# Multi-process deployment smoke test: one -peer-serve process, two -join
# processes, blocks disseminating over real TCP; asserts identical heights
# and state fingerprints across all three.
smoke:
	./scripts/smoke_net.sh

# Cross-compilation for the paper's ARM edge boards; vet runs per arch so
# size/alignment assumptions surface without qemu.
cross:
	GOOS=linux GOARCH=arm GOARM=7 $(GO) build ./...
	GOOS=linux GOARCH=arm GOARM=7 $(GO) vet ./...
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=arm64 $(GO) vet ./...

# Total coverage with an enforced floor; writes cover.out and cover.html.
cover:
	$(GO) test -shuffle=on -coverprofile=cover.out -coverpkg=./internal/... ./...
	$(GO) tool cover -html=cover.out -o cover.html
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% fell below the floor $(COVER_FLOOR)%"; exit 1; }
