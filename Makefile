# Development and CI entry points. CI jobs invoke exactly these targets, so
# local runs and the matrix exercise identical commands.

GO ?= go

.PHONY: all fmt fmt-check vet lint build test race bench bench-commit

all: build test

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck is optional locally (the container may lack network to install
# it); CI installs it and fails the lint job on findings.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime=500ms -run '^$$' ./...

bench-commit:
	$(GO) run ./cmd/hyperprov-bench -experiment commit -out BENCH_commit.json
