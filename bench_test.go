// Package hyperprov_test holds the top-level benchmark harness: one
// testing.B benchmark per figure of the paper's evaluation (Figs 1–3) plus
// the ablations from DESIGN.md. Each benchmark drives the same code path as
// the corresponding hyperprov-bench experiment; figure-quality tables come
// from `go run ./cmd/hyperprov-bench` (see EXPERIMENTS.md).
//
// The figure benchmarks run the modeled hardware on a 10x-compressed
// clock so `go test -bench=.` stays fast; ns/op is therefore modeled
// time / 10 plus host overhead.
package hyperprov_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/bench"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/energy"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// benchScale compresses modeled time for testing.B runs.
const benchScale = 0.1

// benchNetwork assembles a deployed network plus one HyperProv client for
// per-op benchmarks (single-tx batches so ns/op reflects one transaction).
func benchNetwork(b *testing.B, cfg fabric.Config) (*core.Client, func()) {
	b.Helper()
	cfg.Clock = device.RealClock{ScaleFactor: benchScale}
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 1, BatchTimeout: time.Second, PreferredMaxBytes: 64 << 20,
	}
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		n.Stop()
		b.Fatal(err)
	}
	gw, err := n.NewGateway("bench")
	if err != nil {
		n.Stop()
		b.Fatal(err)
	}
	client, err := core.New(gw, core.WithStore(offchain.NewMemStore()))
	if err != nil {
		n.Stop()
		b.Fatal(err)
	}
	return client, n.Stop
}

var benchKeySeq atomic.Int64

func benchKey() string {
	return fmt.Sprintf("bench-%d", benchKeySeq.Add(1))
}

// storeDataSizes are the representative payload points benchmarked from
// the Figs 1–2 sweeps.
var storeDataSizes = []int{4 << 10, 1 << 20}

// BenchmarkFig1DesktopStoreData benchmarks the Fig-1 operation — StoreData
// (off-chain upload + checksum + on-chain provenance record) on the
// desktop network — at representative payload sizes.
func BenchmarkFig1DesktopStoreData(b *testing.B) {
	for _, size := range storeDataSizes {
		b.Run(bench.FormatSize(size), func(b *testing.B) {
			client, stop := benchNetwork(b, fabric.DesktopConfig())
			defer stop()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.StoreData(benchKey(), payload, core.PostOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2RPiStoreData benchmarks the Fig-2 operation: the same
// StoreData path on the Raspberry Pi 3B+ network.
func BenchmarkFig2RPiStoreData(b *testing.B) {
	for _, size := range storeDataSizes {
		b.Run(bench.FormatSize(size), func(b *testing.B) {
			client, stop := benchNetwork(b, fabric.RPiConfig())
			defer stop()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.StoreData(benchKey(), payload, core.PostOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3EnergyIntegration benchmarks the Fig-3 computation: metering
// a full idle -> peak phase schedule on the RPi power model (one iteration
// = one complete figure regeneration).
func BenchmarkFig3EnergyIntegration(b *testing.B) {
	model := energy.RPiPowerModel()
	phases := []energy.Phase{
		{Name: "idle", Duration: 10 * time.Minute, Util: 0, HLFRunning: false},
		{Name: "idle+HLF", Duration: 10 * time.Minute, Util: 0, HLFRunning: true},
		{Name: "load-50", Duration: 10 * time.Minute, Util: 0.5, HLFRunning: true},
		{Name: "peak", Duration: 10 * time.Minute, Util: 1, HLFRunning: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := energy.RunPhases(model, phases, time.Second, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblABatchSize benchmarks ordered-commit throughput at two block
// cutting settings (Abl A): per-tx blocks vs 10-tx blocks.
func BenchmarkAblABatchSize(b *testing.B) {
	for _, batchSize := range []int{1, 10} {
		b.Run(fmt.Sprintf("batch=%d", batchSize), func(b *testing.B) {
			cfg := fabric.DesktopConfig()
			cfg.Clock = device.RealClock{ScaleFactor: benchScale}
			cfg.Batch = orderer.BatchConfig{
				MaxMessageCount: batchSize, BatchTimeout: 100 * time.Millisecond,
				PreferredMaxBytes: 64 << 20,
			}
			n, err := fabric.NewNetwork(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer n.Stop()
			if err := n.DeployChaincode(provenance.ChaincodeName,
				func() shim.Chaincode { return provenance.New() }); err != nil {
				b.Fatal(err)
			}
			gw, err := n.NewGateway("bench")
			if err != nil {
				b.Fatal(err)
			}
			client, err := core.New(gw, core.WithStore(offchain.NewMemStore()))
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 16<<10)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.StoreData(benchKey(), payload, core.PostOptions{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkAblBOnchainPayload benchmarks the counterfactual on-chain
// payload path (Abl B): the whole data item rides inside the transaction.
func BenchmarkAblBOnchainPayload(b *testing.B) {
	client, stop := benchNetwork(b, fabric.DesktopConfig())
	defer stop()
	payload := make([]byte, 16<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meta := map[string]string{"data": string(payload)}
		_, err := client.Post(benchKey(), offchain.Checksum(payload), core.PostOptions{Meta: meta})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblCRaftOrdering benchmarks submit-to-commit on a 3-node Raft
// ordering service (Abl C's steady-state phase).
func BenchmarkAblCRaftOrdering(b *testing.B) {
	cfg := fabric.DesktopConfig()
	cfg.Consensus = fabric.ConsensusRaft
	cfg.RaftNodes = 3
	client, stop := benchNetwork(b, cfg)
	defer stop()
	payload := make([]byte, 4<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.StoreData(benchKey(), payload, core.PostOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
