// Command bench_compare is the CI bench-regression gate: it compares a
// freshly generated BENCH_commit.json against the previous nightly run's
// artifact and exits non-zero when pipelined commit throughput drops or
// commit tail latency rises beyond the configured budgets.
//
// Rows are matched by (blockSize, workers); rows present on only one side
// (a resized matrix) are skipped, so widening the benchmark never trips
// the gate. A missing baseline file is an error unless -allow-missing is
// set — the first nightly run after the gate lands has nothing to compare
// against.
//
// With -old-channels/-new-channels it additionally gates the multi-channel
// tenancy artifact (BENCH_channels.json): aggregate throughput per
// channel-count row under the same drop budget, rows matched by channel
// count.
//
// With -new-codec it gates the codec artifact (BENCH_codec.json). The codec
// gate holds absolute floors with no baseline needed — binary envelope
// decode >= 5x JSON, warm-signature-cache commit >= 1.3x cold, and a
// zero-allocation steady-state frame writer — plus, when -old-codec names a
// baseline, relative drop budgets on binary decode, warm commit, and TCP
// catch-up throughput.
//
// Usage:
//
//	go run ./scripts -old prev/BENCH_commit.json -new BENCH_commit.json \
//	    [-old-channels prev/BENCH_channels.json] [-new-channels BENCH_channels.json] \
//	    [-old-codec prev/BENCH_codec.json] [-new-codec BENCH_codec.json] \
//	    [-max-tps-drop 10] [-max-p99-rise 15] [-allow-missing]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hyperprov/hyperprov/internal/bench"
)

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_commit.json (previous run's artifact)")
	newPath := flag.String("new", "BENCH_commit.json", "freshly generated BENCH_commit.json")
	maxTpsDrop := flag.Float64("max-tps-drop", 10,
		"maximum allowed throughput drop in percent (pipeline and parallel-MVCC columns)")
	maxP99Rise := flag.Float64("max-p99-rise", 15,
		"maximum allowed per-block p99 latency rise in percent")
	allowMissing := flag.Bool("allow-missing", false,
		"exit 0 when the baseline file does not exist (first run)")
	oldChannelsPath := flag.String("old-channels", "",
		"baseline BENCH_channels.json (empty skips the channels gate)")
	newChannelsPath := flag.String("new-channels", "",
		"freshly generated BENCH_channels.json (empty skips the channels gate)")
	oldCodecPath := flag.String("old-codec", "",
		"baseline BENCH_codec.json (empty skips the relative codec checks; absolute floors still run with -new-codec)")
	newCodecPath := flag.String("new-codec", "",
		"freshly generated BENCH_codec.json (empty skips the codec gate)")
	flag.Parse()

	if *oldPath == "" {
		fmt.Fprintln(os.Stderr, "bench_compare: -old is required")
		os.Exit(2)
	}
	var violations []string
	compared := 0

	oldRes, err := load(*oldPath)
	switch {
	case err == nil:
		newRes, err := load(*newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench_compare:", err)
			os.Exit(2)
		}
		v, c := compare(oldRes, newRes, *maxTpsDrop, *maxP99Rise)
		violations = append(violations, v...)
		compared += c
	case os.IsNotExist(err) && *allowMissing:
		fmt.Printf("bench_compare: no baseline at %s; accepting %s as the first baseline\n",
			*oldPath, *newPath)
	default:
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}

	if *oldChannelsPath != "" && *newChannelsPath != "" {
		oldCh, err := loadChannels(*oldChannelsPath)
		switch {
		case err == nil:
			newCh, err := loadChannels(*newChannelsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench_compare:", err)
				os.Exit(2)
			}
			v, c := compareChannels(oldCh, newCh, *maxTpsDrop)
			violations = append(violations, v...)
			compared += c
		case os.IsNotExist(err) && *allowMissing:
			fmt.Printf("bench_compare: no channels baseline at %s; accepting %s as the first baseline\n",
				*oldChannelsPath, *newChannelsPath)
		default:
			fmt.Fprintln(os.Stderr, "bench_compare:", err)
			os.Exit(2)
		}
	}

	if *newCodecPath != "" {
		newCodec, err := loadCodec(*newCodecPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench_compare:", err)
			os.Exit(2)
		}
		violations = append(violations, codecFloors(newCodec)...)
		compared++
		if *oldCodecPath != "" {
			oldCodec, err := loadCodec(*oldCodecPath)
			switch {
			case err == nil:
				v, c := compareCodec(oldCodec, newCodec, *maxTpsDrop)
				violations = append(violations, v...)
				compared += c
			case os.IsNotExist(err) && *allowMissing:
				fmt.Printf("bench_compare: no codec baseline at %s; accepting %s as the first baseline\n",
					*oldCodecPath, *newCodecPath)
			default:
				fmt.Fprintln(os.Stderr, "bench_compare:", err)
				os.Exit(2)
			}
		}
	}

	fmt.Printf("bench_compare: %d row(s) compared, %d violation(s) "+
		"(budgets: tps drop <= %.1f%%, p99 rise <= %.1f%%)\n",
		compared, len(violations), *maxTpsDrop, *maxP99Rise)
	for _, v := range violations {
		fmt.Println("  REGRESSION:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func load(path string) (bench.CommitBenchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return bench.CommitBenchResult{}, err
	}
	return bench.ParseCommitBenchResult(raw)
}

func loadCodec(path string) (bench.CodecBenchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return bench.CodecBenchResult{}, err
	}
	return bench.ParseCodecBenchResult(raw)
}

// codecFloors holds the codec artifact's absolute invariants — the
// headline claims of the binary-codec work, enforced on every run without
// needing a baseline: binary envelope decode >= 5x JSON, warm signature
// cache >= 1.3x cold end-to-end commit, and an allocation-free steady-state
// frame writer (a small tolerance absorbs stray runtime allocations that a
// background GC can charge to the measured loop).
func codecFloors(r bench.CodecBenchResult) []string {
	var violations []string
	if r.DecodeSpeedup < 5 {
		violations = append(violations, fmt.Sprintf(
			"codec: binary/JSON decode speedup %.2fx below the 5x floor", r.DecodeSpeedup))
	}
	if r.WarmSpeedup < 1.3 {
		violations = append(violations, fmt.Sprintf(
			"codec: warm-signature-cache commit speedup %.2fx below the 1.3x floor", r.WarmSpeedup))
	}
	if r.FrameAllocsPerOp < 0 || r.FrameAllocsPerOp > 0.1 {
		violations = append(violations, fmt.Sprintf(
			"codec: steady-state frame writer allocates %.2f/frame, want 0", r.FrameAllocsPerOp))
	}
	return violations
}

// compareCodec gates the codec artifact's throughput columns against the
// previous run under the shared drop budget.
func compareCodec(oldRes, newRes bench.CodecBenchResult, maxTpsDrop float64) ([]string, int) {
	var violations []string
	compared := 0
	check := func(col string, baseVal, newVal float64) {
		if baseVal <= 0 {
			return
		}
		compared++
		pct := (baseVal - newVal) / baseVal * 100
		if pct > maxTpsDrop {
			violations = append(violations, fmt.Sprintf(
				"codec: %s dropped %.1f%% (%.1f -> %.1f, budget %.1f%%)",
				col, pct, baseVal, newVal, maxTpsDrop))
		}
	}
	for _, m := range newRes.Micro {
		if m.Codec != "binary" {
			continue
		}
		for _, b := range oldRes.Micro {
			if b.Codec == "binary" {
				check("binary decode MB/s", b.DecodeMBps, m.DecodeMBps)
				check("binary encode MB/s", b.EncodeMBps, m.EncodeMBps)
			}
		}
	}
	check("warm-cache commit tx/s", oldRes.CommitWarmTps, newRes.CommitWarmTps)
	check("TCP catch-up blocks/s", oldRes.CatchupBlocksPerSec, newRes.CatchupBlocksPerSec)
	return violations, compared
}

func loadChannels(path string) (bench.ChannelBenchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return bench.ChannelBenchResult{}, err
	}
	return bench.ParseChannelBenchResult(raw)
}

// compareChannels gates the multi-channel tenancy artifact: aggregate
// modeled throughput per channel-count row must not drop beyond the
// budget. Rows are matched by channel count; rows present on only one
// side (a resized count list) are skipped.
func compareChannels(oldRes, newRes bench.ChannelBenchResult, maxTpsDrop float64) ([]string, int) {
	baseline := make(map[int]bench.ChannelBenchRow, len(oldRes.Rows))
	for _, row := range oldRes.Rows {
		baseline[row.Channels] = row
	}
	var violations []string
	compared := 0
	for _, row := range newRes.Rows {
		base, ok := baseline[row.Channels]
		if !ok || base.AggregateTps <= 0 {
			continue
		}
		compared++
		pct := (base.AggregateTps - row.AggregateTps) / base.AggregateTps * 100
		if pct > maxTpsDrop {
			violations = append(violations, fmt.Sprintf(
				"channels=%d: aggregate tx/s dropped %.1f%% (%.1f -> %.1f, budget %.1f%%)",
				row.Channels, pct, base.AggregateTps, row.AggregateTps, maxTpsDrop))
		}
	}
	return violations, compared
}

// compare returns one violation string per breached budget plus the number
// of row pairs examined. Percentages are relative to the baseline value;
// baseline columns that are zero or absent (an older artifact without the
// parallel-MVCC column) are skipped rather than divided by.
func compare(oldRes, newRes bench.CommitBenchResult, maxTpsDrop, maxP99Rise float64) ([]string, int) {
	type key struct{ size, workers int }
	baseline := make(map[key]bench.CommitBenchRow, len(oldRes.Rows))
	for _, row := range oldRes.Rows {
		baseline[key{row.BlockSize, row.Workers}] = row
	}
	var violations []string
	compared := 0
	for _, row := range newRes.Rows {
		base, ok := baseline[key{row.BlockSize, row.Workers}]
		if !ok {
			continue
		}
		compared++
		id := fmt.Sprintf("size=%d workers=%d", row.BlockSize, row.Workers)
		check := func(col string, baseVal, newVal float64, rise bool, budget float64) {
			if baseVal <= 0 {
				return
			}
			pct := (baseVal - newVal) / baseVal * 100
			if rise {
				pct = -pct
			}
			if pct > budget {
				dir := "dropped"
				if rise {
					dir = "rose"
				}
				violations = append(violations, fmt.Sprintf(
					"%s: %s %s %.1f%% (%.1f -> %.1f, budget %.1f%%)",
					id, col, dir, pct, baseVal, newVal, budget))
			}
		}
		check("pipeline tx/s", base.PipelineTps, row.PipelineTps, false, maxTpsDrop)
		check("parallel-MVCC tx/s", base.ParallelMVCCTps, row.ParallelMVCCTps, false, maxTpsDrop)
		check("pipeline p99 ms/block", base.PipelineP99Ms, row.PipelineP99Ms, true, maxP99Rise)
	}
	return violations, compared
}
