// Command bench_compare is the CI bench-regression gate: it compares a
// freshly generated BENCH_commit.json against the previous nightly run's
// artifact and exits non-zero when pipelined commit throughput drops or
// commit tail latency rises beyond the configured budgets.
//
// Rows are matched by (blockSize, workers); rows present on only one side
// (a resized matrix) are skipped, so widening the benchmark never trips
// the gate. A missing baseline file is an error unless -allow-missing is
// set — the first nightly run after the gate lands has nothing to compare
// against.
//
// With -old-channels/-new-channels it additionally gates the multi-channel
// tenancy artifact (BENCH_channels.json): aggregate throughput per
// channel-count row under the same drop budget, rows matched by channel
// count.
//
// Usage:
//
//	go run ./scripts -old prev/BENCH_commit.json -new BENCH_commit.json \
//	    [-old-channels prev/BENCH_channels.json] [-new-channels BENCH_channels.json] \
//	    [-max-tps-drop 10] [-max-p99-rise 15] [-allow-missing]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hyperprov/hyperprov/internal/bench"
)

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_commit.json (previous run's artifact)")
	newPath := flag.String("new", "BENCH_commit.json", "freshly generated BENCH_commit.json")
	maxTpsDrop := flag.Float64("max-tps-drop", 10,
		"maximum allowed throughput drop in percent (pipeline and parallel-MVCC columns)")
	maxP99Rise := flag.Float64("max-p99-rise", 15,
		"maximum allowed per-block p99 latency rise in percent")
	allowMissing := flag.Bool("allow-missing", false,
		"exit 0 when the baseline file does not exist (first run)")
	oldChannelsPath := flag.String("old-channels", "",
		"baseline BENCH_channels.json (empty skips the channels gate)")
	newChannelsPath := flag.String("new-channels", "",
		"freshly generated BENCH_channels.json (empty skips the channels gate)")
	flag.Parse()

	if *oldPath == "" {
		fmt.Fprintln(os.Stderr, "bench_compare: -old is required")
		os.Exit(2)
	}
	var violations []string
	compared := 0

	oldRes, err := load(*oldPath)
	switch {
	case err == nil:
		newRes, err := load(*newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench_compare:", err)
			os.Exit(2)
		}
		v, c := compare(oldRes, newRes, *maxTpsDrop, *maxP99Rise)
		violations = append(violations, v...)
		compared += c
	case os.IsNotExist(err) && *allowMissing:
		fmt.Printf("bench_compare: no baseline at %s; accepting %s as the first baseline\n",
			*oldPath, *newPath)
	default:
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}

	if *oldChannelsPath != "" && *newChannelsPath != "" {
		oldCh, err := loadChannels(*oldChannelsPath)
		switch {
		case err == nil:
			newCh, err := loadChannels(*newChannelsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench_compare:", err)
				os.Exit(2)
			}
			v, c := compareChannels(oldCh, newCh, *maxTpsDrop)
			violations = append(violations, v...)
			compared += c
		case os.IsNotExist(err) && *allowMissing:
			fmt.Printf("bench_compare: no channels baseline at %s; accepting %s as the first baseline\n",
				*oldChannelsPath, *newChannelsPath)
		default:
			fmt.Fprintln(os.Stderr, "bench_compare:", err)
			os.Exit(2)
		}
	}

	fmt.Printf("bench_compare: %d row(s) compared, %d violation(s) "+
		"(budgets: tps drop <= %.1f%%, p99 rise <= %.1f%%)\n",
		compared, len(violations), *maxTpsDrop, *maxP99Rise)
	for _, v := range violations {
		fmt.Println("  REGRESSION:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func load(path string) (bench.CommitBenchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return bench.CommitBenchResult{}, err
	}
	return bench.ParseCommitBenchResult(raw)
}

func loadChannels(path string) (bench.ChannelBenchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return bench.ChannelBenchResult{}, err
	}
	return bench.ParseChannelBenchResult(raw)
}

// compareChannels gates the multi-channel tenancy artifact: aggregate
// modeled throughput per channel-count row must not drop beyond the
// budget. Rows are matched by channel count; rows present on only one
// side (a resized count list) are skipped.
func compareChannels(oldRes, newRes bench.ChannelBenchResult, maxTpsDrop float64) ([]string, int) {
	baseline := make(map[int]bench.ChannelBenchRow, len(oldRes.Rows))
	for _, row := range oldRes.Rows {
		baseline[row.Channels] = row
	}
	var violations []string
	compared := 0
	for _, row := range newRes.Rows {
		base, ok := baseline[row.Channels]
		if !ok || base.AggregateTps <= 0 {
			continue
		}
		compared++
		pct := (base.AggregateTps - row.AggregateTps) / base.AggregateTps * 100
		if pct > maxTpsDrop {
			violations = append(violations, fmt.Sprintf(
				"channels=%d: aggregate tx/s dropped %.1f%% (%.1f -> %.1f, budget %.1f%%)",
				row.Channels, pct, base.AggregateTps, row.AggregateTps, maxTpsDrop))
		}
	}
	return violations, compared
}

// compare returns one violation string per breached budget plus the number
// of row pairs examined. Percentages are relative to the baseline value;
// baseline columns that are zero or absent (an older artifact without the
// parallel-MVCC column) are skipped rather than divided by.
func compare(oldRes, newRes bench.CommitBenchResult, maxTpsDrop, maxP99Rise float64) ([]string, int) {
	type key struct{ size, workers int }
	baseline := make(map[key]bench.CommitBenchRow, len(oldRes.Rows))
	for _, row := range oldRes.Rows {
		baseline[key{row.BlockSize, row.Workers}] = row
	}
	var violations []string
	compared := 0
	for _, row := range newRes.Rows {
		base, ok := baseline[key{row.BlockSize, row.Workers}]
		if !ok {
			continue
		}
		compared++
		id := fmt.Sprintf("size=%d workers=%d", row.BlockSize, row.Workers)
		check := func(col string, baseVal, newVal float64, rise bool, budget float64) {
			if baseVal <= 0 {
				return
			}
			pct := (baseVal - newVal) / baseVal * 100
			if rise {
				pct = -pct
			}
			if pct > budget {
				dir := "dropped"
				if rise {
					dir = "rose"
				}
				violations = append(violations, fmt.Sprintf(
					"%s: %s %s %.1f%% (%.1f -> %.1f, budget %.1f%%)",
					id, col, dir, pct, baseVal, newVal, budget))
			}
		}
		check("pipeline tx/s", base.PipelineTps, row.PipelineTps, false, maxTpsDrop)
		check("parallel-MVCC tx/s", base.ParallelMVCCTps, row.ParallelMVCCTps, false, maxTpsDrop)
		check("pipeline p99 ms/block", base.PipelineP99Ms, row.PipelineP99Ms, true, maxP99Rise)
	}
	return violations, compared
}
