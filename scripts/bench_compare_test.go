package main

import (
	"strings"
	"testing"

	"github.com/hyperprov/hyperprov/internal/bench"
)

func row(size, workers int, pipeTps, parTps, p99 float64) bench.CommitBenchRow {
	return bench.CommitBenchRow{
		BlockSize:       size,
		Workers:         workers,
		PipelineTps:     pipeTps,
		ParallelMVCCTps: parTps,
		PipelineP99Ms:   p99,
	}
}

func result(rows ...bench.CommitBenchRow) bench.CommitBenchResult {
	return bench.CommitBenchResult{Name: "test", Rows: rows}
}

// TestComparePassPath is the gate's green path: small fluctuations inside
// the budgets, plus rows only one side has, produce zero violations.
func TestComparePassPath(t *testing.T) {
	oldRes := result(
		row(100, 4, 1000, 4000, 50),
		row(250, 8, 900, 3500, 120),
		row(10, 1, 500, 600, 10), // dropped from the new matrix
	)
	newRes := result(
		row(100, 4, 950, 3800, 55),  // -5% tps, +10% p99: inside budgets
		row(250, 8, 910, 3600, 115), // improved
		row(500, 8, 800, 3000, 200), // new point, no baseline
	)
	violations, compared := compare(oldRes, newRes, 10, 15)
	if compared != 2 {
		t.Fatalf("compared = %d, want 2", compared)
	}
	if len(violations) != 0 {
		t.Fatalf("violations = %v, want none", violations)
	}
}

// TestCompareFailPath injects a synthetic regression into each gated
// column and checks the gate trips with a violation naming it — the proof
// the CI job would actually fail.
func TestCompareFailPath(t *testing.T) {
	oldRes := result(row(100, 4, 1000, 4000, 50))

	cases := []struct {
		name string
		new  bench.CommitBenchRow
		want string
	}{
		{
			name: "pipeline throughput collapse",
			new:  row(100, 4, 850, 4000, 50), // -15% > 10% budget
			want: "pipeline tx/s dropped",
		},
		{
			name: "parallel-MVCC throughput collapse",
			new:  row(100, 4, 1000, 3000, 50), // -25% > 10% budget
			want: "parallel-MVCC tx/s dropped",
		},
		{
			name: "p99 blowup",
			new:  row(100, 4, 1000, 4000, 65), // +30% > 15% budget
			want: "p99 ms/block rose",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			violations, compared := compare(oldRes, result(tc.new), 10, 15)
			if compared != 1 {
				t.Fatalf("compared = %d, want 1", compared)
			}
			if len(violations) != 1 {
				t.Fatalf("violations = %v, want exactly one", violations)
			}
			if !strings.Contains(violations[0], tc.want) {
				t.Fatalf("violation %q does not mention %q", violations[0], tc.want)
			}
		})
	}
}

// TestCompareSkipsZeroBaselines checks artifacts from before the
// parallel-MVCC column existed (the column decodes as zero) never divide
// by zero or flag phantom regressions.
func TestCompareSkipsZeroBaselines(t *testing.T) {
	oldRes := result(bench.CommitBenchRow{BlockSize: 100, Workers: 4, PipelineTps: 1000})
	newRes := result(row(100, 4, 990, 4000, 50))
	violations, compared := compare(oldRes, newRes, 10, 15)
	if compared != 1 {
		t.Fatalf("compared = %d, want 1", compared)
	}
	if len(violations) != 0 {
		t.Fatalf("violations = %v, want none", violations)
	}
}
