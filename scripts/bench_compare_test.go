package main

import (
	"strings"
	"testing"

	"github.com/hyperprov/hyperprov/internal/bench"
)

func row(size, workers int, pipeTps, parTps, p99 float64) bench.CommitBenchRow {
	return bench.CommitBenchRow{
		BlockSize:       size,
		Workers:         workers,
		PipelineTps:     pipeTps,
		ParallelMVCCTps: parTps,
		PipelineP99Ms:   p99,
	}
}

func result(rows ...bench.CommitBenchRow) bench.CommitBenchResult {
	return bench.CommitBenchResult{Name: "test", Rows: rows}
}

// TestComparePassPath is the gate's green path: small fluctuations inside
// the budgets, plus rows only one side has, produce zero violations.
func TestComparePassPath(t *testing.T) {
	oldRes := result(
		row(100, 4, 1000, 4000, 50),
		row(250, 8, 900, 3500, 120),
		row(10, 1, 500, 600, 10), // dropped from the new matrix
	)
	newRes := result(
		row(100, 4, 950, 3800, 55),  // -5% tps, +10% p99: inside budgets
		row(250, 8, 910, 3600, 115), // improved
		row(500, 8, 800, 3000, 200), // new point, no baseline
	)
	violations, compared := compare(oldRes, newRes, 10, 15)
	if compared != 2 {
		t.Fatalf("compared = %d, want 2", compared)
	}
	if len(violations) != 0 {
		t.Fatalf("violations = %v, want none", violations)
	}
}

// TestCompareFailPath injects a synthetic regression into each gated
// column and checks the gate trips with a violation naming it — the proof
// the CI job would actually fail.
func TestCompareFailPath(t *testing.T) {
	oldRes := result(row(100, 4, 1000, 4000, 50))

	cases := []struct {
		name string
		new  bench.CommitBenchRow
		want string
	}{
		{
			name: "pipeline throughput collapse",
			new:  row(100, 4, 850, 4000, 50), // -15% > 10% budget
			want: "pipeline tx/s dropped",
		},
		{
			name: "parallel-MVCC throughput collapse",
			new:  row(100, 4, 1000, 3000, 50), // -25% > 10% budget
			want: "parallel-MVCC tx/s dropped",
		},
		{
			name: "p99 blowup",
			new:  row(100, 4, 1000, 4000, 65), // +30% > 15% budget
			want: "p99 ms/block rose",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			violations, compared := compare(oldRes, result(tc.new), 10, 15)
			if compared != 1 {
				t.Fatalf("compared = %d, want 1", compared)
			}
			if len(violations) != 1 {
				t.Fatalf("violations = %v, want exactly one", violations)
			}
			if !strings.Contains(violations[0], tc.want) {
				t.Fatalf("violation %q does not mention %q", violations[0], tc.want)
			}
		})
	}
}

// TestCompareSkipsZeroBaselines checks artifacts from before the
// parallel-MVCC column existed (the column decodes as zero) never divide
// by zero or flag phantom regressions.
func TestCompareSkipsZeroBaselines(t *testing.T) {
	oldRes := result(bench.CommitBenchRow{BlockSize: 100, Workers: 4, PipelineTps: 1000})
	newRes := result(row(100, 4, 990, 4000, 50))
	violations, compared := compare(oldRes, newRes, 10, 15)
	if compared != 1 {
		t.Fatalf("compared = %d, want 1", compared)
	}
	if len(violations) != 0 {
		t.Fatalf("violations = %v, want none", violations)
	}
}

func codecResult(decodeSpeedup, warmSpeedup, frameAllocs float64) bench.CodecBenchResult {
	return bench.CodecBenchResult{
		Name: "test",
		Micro: []bench.CodecMicroRow{
			{Codec: "json", DecodeMBps: 100, EncodeMBps: 200},
			{Codec: "binary", DecodeMBps: 1000, EncodeMBps: 800},
		},
		DecodeSpeedup:       decodeSpeedup,
		WarmSpeedup:         warmSpeedup,
		FrameAllocsPerOp:    frameAllocs,
		CommitWarmTps:       5000,
		CatchupBlocksPerSec: 9000,
	}
}

// TestCodecFloors checks the codec artifact's absolute invariants: the
// headline ratios pass at their floors and each violation is named when
// breached.
func TestCodecFloors(t *testing.T) {
	if v := codecFloors(codecResult(5.0, 1.3, 0)); len(v) != 0 {
		t.Fatalf("floors tripped on a passing artifact: %v", v)
	}
	cases := []struct {
		name string
		res  bench.CodecBenchResult
		want string
	}{
		{"decode below 5x", codecResult(4.2, 2.0, 0), "decode speedup"},
		{"warm cache below 1.3x", codecResult(10, 1.1, 0), "warm-signature-cache"},
		{"frame writer allocates", codecResult(10, 2.0, 1.5), "frame writer allocates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := codecFloors(tc.res)
			if len(v) != 1 || !strings.Contains(v[0], tc.want) {
				t.Fatalf("violations = %v, want one mentioning %q", v, tc.want)
			}
		})
	}
}

// TestCompareCodec checks the relative codec gate: small fluctuations pass,
// a throughput collapse in any gated column trips it.
func TestCompareCodec(t *testing.T) {
	base := codecResult(10, 2.0, 0)
	ok := codecResult(10, 2.0, 0)
	ok.CommitWarmTps = 4800 // -4%
	violations, compared := compareCodec(base, ok, 10)
	if compared == 0 || len(violations) != 0 {
		t.Fatalf("compared=%d violations=%v, want clean pass", compared, violations)
	}
	bad := codecResult(10, 2.0, 0)
	bad.CommitWarmTps = 4000 // -20% > 10% budget
	violations, _ = compareCodec(base, bad, 10)
	if len(violations) != 1 || !strings.Contains(violations[0], "warm-cache commit") {
		t.Fatalf("violations = %v, want one warm-cache regression", violations)
	}
}
