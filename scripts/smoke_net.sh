#!/usr/bin/env bash
# Multi-process deployment smoke test: launches one -peer-serve primary
# (blockchain network + off-chain storage + workload, peers exposed on TCP
# listeners) and two -join peer processes. Each joiner fetches trust
# anchors over the transport's hello handshake, catches up via TCP gossip
# anti-entropy, and must reach the primary's exact block height and state
# fingerprint — three OS processes, every block crossing a real socket.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BIN="$WORK/hyperprov-net"
LOG="$WORK/primary.log"
go build -o "$BIN" ./cmd/hyperprov-net

# -run-for must exceed the script's worst case (120s ready-wait + two 90s
# join timeouts); the exit trap kills the primary long before that.
"$BIN" -peer-serve -addr 127.0.0.1:0 -txs 4 -peer-latency 1ms -run-for 600s >"$LOG" 2>&1 &
PRIMARY=$!
cleanup() {
  kill "$PRIMARY" 2>/dev/null || true
  wait "$PRIMARY" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Wait for the primary to finish its workload and print the target.
for _ in $(seq 1 240); do
  grep -q '^PRIMARY ' "$LOG" && break
  kill -0 "$PRIMARY" 2>/dev/null || { echo "primary exited early:"; cat "$LOG"; exit 1; }
  sleep 0.5
done
grep -q '^PRIMARY ' "$LOG" || { echo "primary never became ready:"; cat "$LOG"; exit 1; }

PEERS=$(awk '/^PEERS /{print $2}' "$LOG")
HEIGHT=$(sed -n 's/^PRIMARY height=\([0-9]*\).*/\1/p' "$LOG")
FP=$(sed -n 's/^PRIMARY .*fingerprint=\([0-9a-f]*\)$/\1/p' "$LOG")
PEER1=$(echo "$PEERS" | cut -d, -f1)
PEER2=$(echo "$PEERS" | cut -d, -f2)
[ -n "$HEIGHT" ] && [ -n "$FP" ] && [ -n "$PEER1" ] && [ -n "$PEER2" ] || {
  echo "could not parse primary output:"; cat "$LOG"; exit 1;
}
echo "primary ready: peers=$PEERS height=$HEIGHT fingerprint=$FP"

# Two joining processes, each gossiping with a different serving peer.
"$BIN" -join "$PEER1" -name edge-a -peer-latency 1ms \
  -expect-height "$HEIGHT" -expect-fingerprint "$FP" -timeout 90s
"$BIN" -join "$PEER2" -name edge-b -peer-latency 1ms \
  -expect-height "$HEIGHT" -expect-fingerprint "$FP" -timeout 90s

echo "smoke ok: two joined processes converged to height $HEIGHT with matching state fingerprints"
