#!/usr/bin/env bash
# Multi-process deployment smoke test: launches one -peer-serve primary
# hosting TWO channels (blockchain network + off-chain storage + workload,
# peers exposed on TCP listeners) and two -join peer processes, one per
# channel. Each joiner negotiates its channel in the transport's hello
# handshake, fetches trust anchors, catches up via TCP gossip anti-entropy,
# and must reach its channel's exact block height and state fingerprint —
# three OS processes, every block crossing a real socket.
#
# The primary and the second joiner also serve the -admin endpoint; the
# script asserts /metrics answers with channel-labeled pipeline series,
# /healthz reports per-channel health, and a committed transaction's
# /tracez timeline carries every pipeline stage (including the gossip hop
# observed by the joiner, joined via the frame-header trace ID).
set -euo pipefail

cd "$(dirname "$0")/.."

CH_A=chan-a
CH_B=chan-b
WORK=$(mktemp -d)
BIN="$WORK/hyperprov-net"
LOG="$WORK/primary.log"
JOINLOG="$WORK/join-b.log"
go build -o "$BIN" ./cmd/hyperprov-net

# -run-for must exceed the script's worst case (120s ready-wait + two 90s
# join timeouts); the exit trap kills the primary long before that.
"$BIN" -peer-serve -channels "$CH_A,$CH_B" -addr 127.0.0.1:0 -txs 4 \
  -peer-latency 1ms -run-for 600s -admin 127.0.0.1:0 >"$LOG" 2>&1 &
PRIMARY=$!
JOINER=""
cleanup() {
  kill "$PRIMARY" 2>/dev/null || true
  wait "$PRIMARY" 2>/dev/null || true
  [ -n "$JOINER" ] && { kill "$JOINER" 2>/dev/null || true; wait "$JOINER" 2>/dev/null || true; }
  rm -rf "$WORK"
}
trap cleanup EXIT

# Wait for the primary to finish its workload and print the per-channel
# targets.
for _ in $(seq 1 240); do
  grep -q "^PRIMARY channel=$CH_B " "$LOG" && break
  kill -0 "$PRIMARY" 2>/dev/null || { echo "primary exited early:"; cat "$LOG"; exit 1; }
  sleep 0.5
done
grep -q "^PRIMARY channel=$CH_B " "$LOG" || { echo "primary never became ready:"; cat "$LOG"; exit 1; }

PEERS=$(awk '/^PEERS /{print $2}' "$LOG")
ADMIN=$(awk '/^ADMIN /{print $2}' "$LOG")
HEIGHT_A=$(sed -n "s/^PRIMARY channel=$CH_A height=\([0-9]*\).*/\1/p" "$LOG")
FP_A=$(sed -n "s/^PRIMARY channel=$CH_A .*fingerprint=\([0-9a-f]*\)$/\1/p" "$LOG")
HEIGHT_B=$(sed -n "s/^PRIMARY channel=$CH_B height=\([0-9]*\).*/\1/p" "$LOG")
FP_B=$(sed -n "s/^PRIMARY channel=$CH_B .*fingerprint=\([0-9a-f]*\)$/\1/p" "$LOG")
PEER1=$(echo "$PEERS" | cut -d, -f1)
PEER2=$(echo "$PEERS" | cut -d, -f2)
[ -n "$HEIGHT_A" ] && [ -n "$FP_A" ] && [ -n "$HEIGHT_B" ] && [ -n "$FP_B" ] \
  && [ -n "$PEER1" ] && [ -n "$PEER2" ] && [ -n "$ADMIN" ] || {
  echo "could not parse primary output:"; cat "$LOG"; exit 1;
}
echo "primary ready: peers=$PEERS $CH_A@$HEIGHT_A=$FP_A $CH_B@$HEIGHT_B=$FP_B admin=$ADMIN"

# The two channels committed the same keys but are independent ledgers:
# identical fingerprints would mean tenant state bled across channels.
[ "$FP_A" != "$FP_B" ] || {
  echo "channel fingerprints identical ($FP_A): channels are not isolated"; exit 1;
}

# --- admin endpoint on the primary ---------------------------------------
METRICS=$(curl -fsS "$ADMIN/metrics")
for want in blocks_committed commit_stage_persist_count net_gossip_rounds \
    endorsements_served; do
  echo "$METRICS" | grep -q "^$want" || {
    echo "primary /metrics missing $want:"; echo "$METRICS" | head -40; exit 1;
  }
done
# Pipeline series must carry the channel label, once per served channel.
for ch in "$CH_A" "$CH_B"; do
  echo "$METRICS" | grep -q "^blocks_committed{channel=\"$ch\"}" || {
    echo "primary /metrics missing blocks_committed{channel=\"$ch\"}:"
    echo "$METRICS" | head -40; exit 1;
  }
done
HEALTH=$(curl -fsS "$ADMIN/healthz")
for ch in "$CH_A" "$CH_B"; do
  echo "$HEALTH" | grep -q '"channel": *"'"$ch"'"' || {
    echo "primary /healthz missing channel $ch: $HEALTH"; exit 1;
  }
done
echo "$HEALTH" | grep -q '"height": *'"$HEIGHT_A" || {
  echo "primary /healthz height mismatch (want $HEIGHT_A): $HEALTH"; exit 1;
}
TRACEZ=$(curl -fsS "$ADMIN/tracez?n=50")
for stage in '"propose"' '"endorse"' '"order"' '"commit.preval"' '"commit.mvcc"' \
    '"commit.persist"' '"outcome": *"VALID"'; do
  echo "$TRACEZ" | grep -Eq "$stage" || {
    echo "primary /tracez missing $stage"; echo "$TRACEZ" | head -60; exit 1;
  }
done
echo "admin ok: channel-labeled /metrics, per-channel /healthz, full /tracez timeline"

# Two joining processes, one per channel, each gossiping with a different
# serving peer. Each negotiates its channel in the hello handshake and must
# converge to THAT channel's height and fingerprint. The second also serves
# an admin endpoint and lingers so we can inspect the gossip hop's traces
# from the receiving side.
"$BIN" -join "$PEER1" -channel "$CH_A" -name edge-a -peer-latency 1ms \
  -expect-height "$HEIGHT_A" -expect-fingerprint "$FP_A" -timeout 90s
"$BIN" -join "$PEER2" -channel "$CH_B" -name edge-b -peer-latency 1ms \
  -expect-height "$HEIGHT_B" -expect-fingerprint "$FP_B" -timeout 90s \
  -admin 127.0.0.1:0 -run-for 600s >"$JOINLOG" 2>&1 &
JOINER=$!
for _ in $(seq 1 240); do
  grep -q '^CONVERGED ' "$JOINLOG" && break
  kill -0 "$JOINER" 2>/dev/null || { echo "joiner exited early:"; cat "$JOINLOG"; exit 1; }
  sleep 0.5
done
grep -q '^CONVERGED ' "$JOINLOG" || { echo "joiner never converged:"; cat "$JOINLOG"; exit 1; }
grep -q "joining channel $CH_B" "$JOINLOG" || {
  echo "joiner did not negotiate $CH_B in its hello:"; cat "$JOINLOG"; exit 1;
}
JADMIN=$(awk '/^ADMIN /{print $2}' "$JOINLOG")
[ -n "$JADMIN" ] || { echo "joiner printed no ADMIN line:"; cat "$JOINLOG"; exit 1; }

# The joiner received every block over gossip: its traces must show the
# delivery hop plus the local commit stages for the same transactions.
JTRACEZ=$(curl -fsS "$JADMIN/tracez?n=50")
for stage in '"gossip.deliver"' '"commit.preval"' '"commit.mvcc"' '"commit.persist"' \
    '"outcome": *"VALID"'; do
  echo "$JTRACEZ" | grep -Eq "$stage" || {
    echo "joiner /tracez missing $stage"; echo "$JTRACEZ" | head -60; exit 1;
  }
done
JHEALTH=$(curl -fsS "$JADMIN/healthz")
echo "$JHEALTH" | grep -q '"peer": *"edge-b"' || {
  echo "joiner /healthz wrong peer: $JHEALTH"; exit 1;
}
echo "joiner admin ok: gossip.deliver + commit stages visible on edge-b ($CH_B)"

# After the joins, the primary's transport servers have served real
# connections: the frame counters must now be on its /metrics.
METRICS2=$(curl -fsS "$ADMIN/metrics")
echo "$METRICS2" | grep -q '^net_transport_frames_sent' || {
  echo "primary /metrics missing net_transport_frames_sent after joins"; exit 1;
}

echo "smoke ok: per-channel joiners converged ($CH_A@$HEIGHT_A, $CH_B@$HEIGHT_B) with isolated fingerprints"
