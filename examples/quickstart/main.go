// Quickstart: the smallest end-to-end HyperProv program. It starts an
// in-process 4-peer network, stores one data item with its provenance
// record, reads it back with integrity verification, and prints the
// record's full history.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Assemble a network: 4 desktop-profile peers, solo orderer.
	cfg := fabric.DesktopConfig()
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 1, BatchTimeout: 200 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	net, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer net.Stop()

	// 2. Deploy the HyperProv provenance chaincode on every peer.
	if err := net.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return err
	}

	// 3. Create a client with an off-chain store.
	gw, err := net.NewGateway("quickstart")
	if err != nil {
		return err
	}
	client, err := core.New(gw, core.WithStore(offchain.NewMemStore()))
	if err != nil {
		return err
	}

	// 4. Store a data item: payload goes off-chain, checksum + pointer +
	// creator certificate go on-chain.
	receipt, err := client.StoreData("hello", []byte("hello, provenance!"), core.PostOptions{
		Meta: map[string]string{"source": "quickstart"},
	})
	if err != nil {
		return err
	}
	fmt.Printf("committed tx %s in block %d (%v)\n",
		receipt.TxID[:16], receipt.BlockNum, receipt.Latency.Truncate(time.Millisecond))

	// 5. Read it back with integrity verification.
	data, rec, err := client.GetData("hello")
	if err != nil {
		return err
	}
	fmt.Printf("payload:  %q\n", data)
	fmt.Printf("checksum: %s\n", rec.Checksum)
	fmt.Printf("creator:  %s\n", rec.Creator)

	// 6. Update the item and list its on-chain history.
	if _, err := client.StoreData("hello", []byte("hello again!"), core.PostOptions{}); err != nil {
		return err
	}
	history, err := client.GetKeyHistory("hello")
	if err != nil {
		return err
	}
	fmt.Printf("history:  %d versions\n", len(history))
	for i, h := range history {
		fmt.Printf("  v%d tx=%s.. block=%d\n", i+1, h.TxID[:12], h.BlockNum)
	}
	return nil
}
