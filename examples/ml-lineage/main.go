// ML lineage: the research-data-provenance use case from the paper's
// introduction. A dataset-derivation DAG (raw -> cleaned -> train/test
// split -> features -> model) is recorded step by step; afterwards any
// artifact can be traced to everything it was derived from (reproducibility)
// and every artifact affected by a bad input can be found (impact analysis).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// step is one derivation in the pipeline DAG.
type step struct {
	key     string
	parents []string
	op      string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := fabric.DesktopConfig()
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 2, BatchTimeout: 200 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	net, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer net.Stop()
	if err := net.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return err
	}
	gw, err := net.NewGateway("ml-pipeline")
	if err != nil {
		return err
	}
	client, err := core.New(gw, core.WithStore(offchain.NewMemStore()))
	if err != nil {
		return err
	}

	// The derivation DAG: two raw sources feed a merge; the merged set is
	// cleaned and split; features come from the train split; the model
	// trains on features and is evaluated against the test split.
	pipeline := []step{
		{key: "raw/site-a.csv", op: "ingest"},
		{key: "raw/site-b.csv", op: "ingest"},
		{key: "merged.csv", parents: []string{"raw/site-a.csv", "raw/site-b.csv"}, op: "merge"},
		{key: "clean.csv", parents: []string{"merged.csv"}, op: "dedup+impute"},
		{key: "split/train.csv", parents: []string{"clean.csv"}, op: "split 80%"},
		{key: "split/test.csv", parents: []string{"clean.csv"}, op: "split 20%"},
		{key: "features.parquet", parents: []string{"split/train.csv"}, op: "featurize"},
		{key: "model-v1.bin", parents: []string{"features.parquet"}, op: "train"},
		{key: "eval-report.json", parents: []string{"model-v1.bin", "split/test.csv"}, op: "evaluate"},
	}
	for i, s := range pipeline {
		payload := []byte(fmt.Sprintf("artifact %s produced by %s (#%d)", s.key, s.op, i))
		if _, err := client.StoreData(s.key, payload, core.PostOptions{
			Parents: s.parents,
			Meta:    map[string]string{"operation": s.op},
		}); err != nil {
			return fmt.Errorf("store %s: %w", s.key, err)
		}
		fmt.Printf("recorded %-18s  op=%-12s parents=%v\n", s.key, s.op, s.parents)
	}

	// Reproducibility: what went into the model evaluation?
	lineage, err := client.GetLineage("eval-report.json")
	if err != nil {
		return err
	}
	fmt.Printf("\neval-report.json derives from %d artifacts:\n", len(lineage)-1)
	for _, rec := range lineage[1:] {
		fmt.Printf("  <- %-18s (%s)\n", rec.Key, rec.Meta["operation"])
	}

	// Impact analysis: site-b turns out to be corrupted — which artifacts
	// are affected?
	affected, err := client.GetDescendants("raw/site-b.csv")
	if err != nil {
		return err
	}
	keys := make([]string, len(affected))
	for i, rec := range affected {
		keys[i] = rec.Key
	}
	fmt.Printf("\nif raw/site-b.csv is bad, %d downstream artifacts are affected:\n  %s\n",
		len(affected), strings.Join(keys, ", "))

	// Retraining writes a new model version; history keeps both.
	if _, err := client.StoreData("model-v1.bin", []byte("retrained weights"), core.PostOptions{
		Parents: []string{"features.parquet"},
		Meta:    map[string]string{"operation": "retrain"},
	}); err != nil {
		return err
	}
	history, err := client.GetKeyHistory("model-v1.bin")
	if err != nil {
		return err
	}
	fmt.Printf("\nmodel-v1.bin has %d on-chain versions:\n", len(history))
	for i, h := range history {
		fmt.Printf("  v%d op=%s checksum=%s..\n",
			i+1, h.Record.Meta["operation"], h.Record.Checksum[7:19])
	}
	return nil
}
