// Consortium: a three-organization deployment. Each org runs its own CA
// and peers; the channel's endorsement policy requires a majority of orgs,
// so no single organization can forge provenance records. Clients from
// different orgs post records, cross-org ownership is enforced, and the
// shared ledger stays consistent on every org's peers.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := fabric.DesktopConfig()
	cfg.Orgs = []string{"Hospital", "Lab", "Regulator"}
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 2, BatchTimeout: 300 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	net, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer net.Stop()
	if err := net.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return err
	}
	fmt.Printf("consortium channel up: orgs=%v, policy=%s\n",
		cfg.Orgs, net.Policy())

	store := offchain.NewMemStore()
	newClient := func(org, name string) (*core.Client, error) {
		gw, err := net.NewGatewayFor(org, name)
		if err != nil {
			return nil, err
		}
		return core.New(gw, core.WithStore(store))
	}
	hospital, err := newClient("Hospital", "clinic-7")
	if err != nil {
		return err
	}
	lab, err := newClient("Lab", "assay-3")
	if err != nil {
		return err
	}

	// The hospital posts a sample; the lab derives a result from it.
	if _, err := hospital.StoreData("sample-0091", []byte("blood sample metadata"),
		core.PostOptions{Meta: map[string]string{"kind": "sample"}}); err != nil {
		return err
	}
	if _, err := lab.StoreData("result-0091", []byte("assay result 5.4 mmol/L"),
		core.PostOptions{
			Parents: []string{"sample-0091"},
			Meta:    map[string]string{"kind": "result"},
		}); err != nil {
		return err
	}
	fmt.Println("hospital posted sample-0091; lab derived result-0091 from it")

	// Cross-org tampering with records is rejected by the ownership ACL.
	if _, err := lab.Post("sample-0091", "forged-checksum", core.PostOptions{}); err != nil {
		fmt.Printf("lab cannot rewrite the hospital's record: rejected by chaincode\n")
	} else {
		return fmt.Errorf("cross-org rewrite was accepted")
	}

	// The regulator audits lineage without owning any data.
	regulator, err := newClient("Regulator", "auditor-1")
	if err != nil {
		return err
	}
	lineage, err := regulator.GetLineage("result-0091")
	if err != nil {
		return err
	}
	fmt.Printf("regulator traces result-0091 to %d records:\n", len(lineage))
	for _, rec := range lineage {
		fmt.Printf("  %-14s owner=%s\n", rec.Key, rec.Owner)
	}
	if err := regulator.VerifyLedger(); err != nil {
		return err
	}
	fmt.Printf("ledger verified across all %d peers of all orgs\n", len(net.Peers()))
	return nil
}
