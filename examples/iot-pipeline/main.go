// IoT pipeline: the paper's motivating edge scenario. Several sensor
// clients on a Raspberry Pi network post readings with provenance; an edge
// gateway derives per-window aggregates whose records cite the raw readings
// as parents; an auditor then traces any aggregate back to its raw inputs,
// detects a tampered off-chain reading, and verifies the ledger.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// reading is one sensor measurement stored off-chain.
type reading struct {
	Sensor string  `json:"sensor"`
	Seq    int     `json:"seq"`
	TempC  float64 `json:"tempC"`
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's edge setup: 4 RPi peers on one switch. A small batch
	// keeps the demo snappy.
	cfg := fabric.RPiConfig()
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 4, BatchTimeout: 300 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	net, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer net.Stop()
	if err := net.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return err
	}
	store := offchain.NewMemStore()

	// Each sensor is its own enrolled identity, so every reading's record
	// carries the certificate of the device that produced it.
	sensors := make([]*core.Client, 3)
	for i := range sensors {
		gw, err := net.NewGateway(fmt.Sprintf("sensor-%d", i))
		if err != nil {
			return err
		}
		if sensors[i], err = core.New(gw, core.WithStore(store)); err != nil {
			return err
		}
	}
	gwGateway, err := net.NewGateway("edge-gateway")
	if err != nil {
		return err
	}
	gateway, err := core.New(gwGateway, core.WithStore(store))
	if err != nil {
		return err
	}

	// An auditor watches committed provenance events in real time (the
	// event-hub pattern of the paper's client library).
	watch := gateway.Watch(64)
	var watched int
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for range watch {
			watched++
		}
	}()

	// Phase 1: sensors post readings.
	var readingKeys []string
	for seq := 0; seq < 2; seq++ {
		for i, sensor := range sensors {
			r := reading{Sensor: fmt.Sprintf("sensor-%d", i), Seq: seq,
				TempC: 20 + 2*math.Sin(float64(seq+i))}
			payload, err := json.Marshal(r)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s/reading-%d", r.Sensor, seq)
			if _, err := sensor.StoreData(key, payload, core.PostOptions{
				Meta: map[string]string{"type": "raw", "unit": "°C"},
			}); err != nil {
				return err
			}
			readingKeys = append(readingKeys, key)
			fmt.Printf("posted %s (%.2f °C)\n", key, r.TempC)
		}
	}

	// Phase 2: the gateway derives a window aggregate citing all readings.
	var sum float64
	for _, key := range readingKeys {
		data, _, err := gateway.GetData(key)
		if err != nil {
			return fmt.Errorf("fetch %s: %w", key, err)
		}
		var r reading
		if err := json.Unmarshal(data, &r); err != nil {
			return err
		}
		sum += r.TempC
	}
	avg := sum / float64(len(readingKeys))
	aggPayload, err := json.Marshal(map[string]any{"avgTempC": avg, "n": len(readingKeys)})
	if err != nil {
		return err
	}
	if _, err := gateway.StoreData("window-0/avg", aggPayload, core.PostOptions{
		Parents: readingKeys,
		Meta:    map[string]string{"type": "aggregate", "window": "0"},
	}); err != nil {
		return err
	}
	fmt.Printf("\ngateway derived window-0/avg = %.2f °C from %d readings\n", avg, len(readingKeys))

	// Phase 3: audit. Trace the aggregate's lineage back to raw inputs.
	lineage, err := gateway.GetLineage("window-0/avg")
	if err != nil {
		return err
	}
	fmt.Printf("lineage of window-0/avg: %d records (1 aggregate + %d raw)\n",
		len(lineage), len(lineage)-1)
	for _, rec := range lineage[:3] {
		fmt.Printf("  %-22s by %s\n", rec.Key, rec.Creator)
	}
	fmt.Println("  ...")

	// Phase 4: a raw reading is tampered with off-chain; the checksum
	// stored on the tamper-proof ledger exposes it.
	victim := readingKeys[0]
	rec, err := gateway.Get(victim)
	if err != nil {
		return err
	}
	if err := store.Corrupt(rec.Location); err != nil {
		return err
	}
	if _, _, err := gateway.GetData(victim); err == nil {
		return fmt.Errorf("tampering of %s went undetected", victim)
	}
	fmt.Printf("\ntamper detected on %s: off-chain bytes no longer match on-chain checksum\n", victim)

	if err := gateway.VerifyLedger(); err != nil {
		return err
	}
	fmt.Println("ledger hash chain verified on all 4 RPi peers")

	// Metadata search: find every raw reading; creator search: everything
	// sensor-0 ever posted.
	raw, err := gateway.QueryMeta("type", "raw")
	if err != nil {
		return err
	}
	bySensor0, err := gateway.GetByCreator(sensors[0].Subject())
	if err != nil {
		return err
	}
	fmt.Printf("queries: %d raw readings on-chain; sensor-0 posted %d of them\n",
		len(raw), len(bySensor0))

	net.Stop() // closes the watch stream
	<-watchDone
	fmt.Printf("auditor observed %d committed record events live\n", watched)
	return nil
}
