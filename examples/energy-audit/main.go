// Energy audit: replays the paper's Fig-3 measurement protocol on the
// modeled Raspberry Pi — 10-minute metering intervals at idle (no HLF),
// idle with the HLF stack up, and increasing load levels — and prints the
// resulting wattage table. The power model is anchored to the paper's
// measurements (idle-with-HLF 2.71 W, peak +10.7 %, max 3.64 W).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hyperprov/hyperprov/internal/energy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model := energy.RPiPowerModel()
	phases := []energy.Phase{
		{Name: "idle", Duration: 10 * time.Minute, Util: 0, HLFRunning: false},
		{Name: "idle+HLF", Duration: 10 * time.Minute, Util: 0, HLFRunning: true},
		{Name: "load-25%", Duration: 10 * time.Minute, Util: 0.25, HLFRunning: true},
		{Name: "load-50%", Duration: 10 * time.Minute, Util: 0.50, HLFRunning: true},
		{Name: "load-75%", Duration: 10 * time.Minute, Util: 0.75, HLFRunning: true},
		{Name: "peak", Duration: 10 * time.Minute, Util: 1.0, HLFRunning: true},
	}
	results, err := energy.RunPhases(model, phases, time.Second, 42)
	if err != nil {
		return err
	}
	fmt.Println(energy.FormatTable(results))

	idleHLF := results[1].Report.AvgWatts
	peak := results[5].Report.AvgWatts
	fmt.Printf("summary: HLF idle draw %.2f W; peak %.2f W (+%.1f%% over idle); max spike %.2f W\n",
		idleHLF, peak, (peak/idleHLF-1)*100, results[5].Report.MaxWatts)
	fmt.Printf("energy for a 10-minute peak interval: %.0f J (%.3f Wh)\n",
		results[5].Report.EnergyJoules, results[5].Report.EnergyJoules/3600)
	return nil
}
