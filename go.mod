module github.com/hyperprov/hyperprov

go 1.24
