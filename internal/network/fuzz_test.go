package network

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frameSeed builds a wire frame for the corpus.
func frameSeed(t *testing.F, traceID, channelID string, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrameExt(&buf, traceID, channelID, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrameExt throws arbitrary bytes at the frame reader. The framing
// contract under hostile input: no panic, no unstructured error — every
// failure is io.EOF (clean end between frames), io.ErrUnexpectedEOF (torn
// frame), or ErrFrameTooLarge (oversized announcement) — and every
// successful parse round-trips through WriteFrameExt.
func FuzzReadFrameExt(f *testing.F) {
	// Valid frames in every header shape: plain, traced, channeled, both,
	// empty payload, ASCII and binary payloads.
	f.Add(frameSeed(f, "", "", []byte("payload")))
	f.Add(frameSeed(f, "trace-1", "", []byte("payload")))
	f.Add(frameSeed(f, "", "ch1", []byte("payload")))
	f.Add(frameSeed(f, "trace-1", "mychannel", []byte(`{"op":"hello"}`)))
	f.Add(frameSeed(f, "t", "c", nil))
	f.Add(frameSeed(f, "", "", bytes.Repeat([]byte{0x00, 0xFF}, 512)))

	// Hostile shapes: oversized announcement, flag bits with no extension
	// bytes, torn header, torn body, torn extension.
	over := binary.BigEndian.AppendUint32(nil, MaxFrame+2*(1+maxTraceID)+1)
	f.Add(over)
	f.Add(binary.BigEndian.AppendUint32(nil, uint32(traceFlag|channelFlag)))
	f.Add([]byte{0x00, 0x00})
	f.Add(binary.BigEndian.AppendUint32(nil, 16))
	torn := frameSeed(f, "trace-1", "ch1", []byte("payload"))
	f.Add(torn[:len(torn)-3])
	f.Add(append(binary.BigEndian.AppendUint32(nil, uint32(traceFlag)|2), 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, traceID, channelID, err := ReadFrameExt(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("unstructured error from ReadFrameExt: %v", err)
			}
			return
		}
		// ReadFrame over the same bytes must agree on the payload (it only
		// discards the extensions).
		plain, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadFrameExt accepted but ReadFrame rejected: %v", err)
		}
		if !bytes.Equal(plain, payload) {
			t.Fatalf("ReadFrame payload %q != ReadFrameExt payload %q", plain, payload)
		}
		if len(payload) > MaxFrame {
			// Headers may announce up to MaxFrame plus extension headroom;
			// a payload over MaxFrame cannot be re-written, stop here.
			return
		}
		var buf bytes.Buffer
		if err := WriteFrameExt(&buf, traceID, channelID, payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		p2, t2, c2, err := ReadFrameExt(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-encoded frame failed: %v", err)
		}
		if !bytes.Equal(p2, payload) || t2 != traceID || c2 != channelID {
			t.Fatalf("round-trip mismatch: (%q,%q,%q) != (%q,%q,%q)",
				p2, t2, c2, payload, traceID, channelID)
		}
	})
}
