// Package network provides the wire primitives shared by the repo's TCP
// services: length-prefixed JSON message framing and a link shaper that
// imposes configurable latency and bandwidth on a connection. The shaper is
// how the off-chain store reproduces the SSHFS-over-LAN transfer costs that
// dominate HyperProv's large-payload measurements.
package network

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// MaxFrame bounds a single framed message (64 MiB covers the largest
// payloads in the paper's sweeps with room to spare).
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("network: frame exceeds maximum size")

// WriteFrame writes one length-prefixed frame. Header and body go out in a
// single Write call: a shaped link charges the one-way latency exactly once
// per frame, and concurrent frame writers sharing a connection cannot
// interleave one frame's header with another's body.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("network: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			// The header promised n body bytes and none arrived: that is a
			// truncated frame, not the clean between-frames shutdown io.EOF
			// signals to callers.
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("network: read frame body: %w", err)
	}
	return payload, nil
}

// WriteJSON frames and writes a JSON-encoded message.
func WriteJSON(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("network: marshal: %w", err)
	}
	return WriteFrame(w, b)
}

// ReadJSON reads one frame and decodes it into v.
func ReadJSON(r io.Reader, v any) error {
	b, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("network: unmarshal: %w", err)
	}
	return nil
}

// ErrCode is a machine-readable error classification carried in response
// frames. The off-chain store protocol and the peer transport share this
// vocabulary so clients map failures to sentinel errors structurally
// instead of matching on message substrings.
type ErrCode string

// Wire error codes.
const (
	// CodeNone marks a successful response.
	CodeNone ErrCode = ""
	// CodeNotFound: the requested object or key does not exist.
	CodeNotFound ErrCode = "not_found"
	// CodeChecksumMismatch: stored data failed its integrity check.
	CodeChecksumMismatch ErrCode = "checksum_mismatch"
	// CodeBadRequest: the request was malformed or referenced an unknown op.
	CodeBadRequest ErrCode = "bad_request"
	// CodeUnknownChaincode: the peer has no such chaincode installed.
	CodeUnknownChaincode ErrCode = "unknown_chaincode"
	// CodeSimulationFailed: chaincode simulation returned a non-OK status.
	CodeSimulationFailed ErrCode = "simulation_failed"
	// CodeInternal: any other server-side failure.
	CodeInternal ErrCode = "internal"
)

// LinkShape describes a simulated link.
type LinkShape struct {
	// Latency is added once per transfer direction (one-way delay).
	Latency time.Duration
	// Mbps caps throughput; 0 means unshaped.
	Mbps float64
	// Scale compresses the imposed delays (matching device.Clock scaling);
	// 0 means 1.0.
	Scale float64
}

// Delay returns the shaped transfer time for n bytes (latency + serialization).
func (s LinkShape) Delay(n int) time.Duration {
	d := s.Latency
	if s.Mbps > 0 && n > 0 {
		d += time.Duration(float64(n) * 8 / (s.Mbps * 1e6) * float64(time.Second))
	}
	scale := s.Scale
	if scale <= 0 {
		scale = 1
	}
	return time.Duration(float64(d) * scale)
}

// ShapedConn wraps a bidirectional stream, imposing the link shape on
// writes. Reads are left unshaped (the remote side shapes its own writes).
type ShapedConn struct {
	rw    io.ReadWriter
	shape LinkShape
	mu    sync.Mutex
}

// NewShapedConn wraps rw with the given link shape.
func NewShapedConn(rw io.ReadWriter, shape LinkShape) *ShapedConn {
	return &ShapedConn{rw: rw, shape: shape}
}

// Read reads from the underlying stream.
func (c *ShapedConn) Read(p []byte) (int, error) { return c.rw.Read(p) }

// Write sleeps for the shaped delay of len(p) bytes, then writes.
func (c *ShapedConn) Write(p []byte) (int, error) {
	if d := c.shape.Delay(len(p)); d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rw.Write(p)
}
