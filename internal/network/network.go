// Package network provides the wire primitives shared by the repo's TCP
// services: length-prefixed JSON message framing and a link shaper that
// imposes configurable latency and bandwidth on a connection. The shaper is
// how the off-chain store reproduces the SSHFS-over-LAN transfer costs that
// dominate HyperProv's large-payload measurements.
package network

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/codec"
)

// MaxFrame bounds a single framed message (64 MiB covers the largest
// payloads in the paper's sweeps with room to spare).
const MaxFrame = 64 << 20

// traceFlag marks a frame carrying a trace-ID extension. MaxFrame is far
// below 2^31, so the length word's top bit is free: a flagged frame is
// [4-byte len|traceFlag][1-byte id length][id bytes][body], where len counts
// the id-length byte, the id, and the body. Readers that predate the flag
// reject such frames (length check fails) rather than misparse them.
const traceFlag = 1 << 31

// channelFlag marks a frame carrying a channel-ID extension — the
// multi-channel analog of traceFlag, using the next free bit of the length
// word (MaxFrame is far below 2^30 too). A frame with both flags lays the
// extensions out in flag-bit order, trace first:
// [4-byte len|flags][1-byte trace len][trace][1-byte channel len][channel][body].
// Channel-less frames never set the bit, so a single-channel deployment's
// wire bytes are identical to before the extension existed.
const channelFlag = 1 << 30

// maxTraceID bounds the trace-ID extension (one length byte).
const maxTraceID = 255

// maxChannelID bounds the channel-ID extension (one length byte).
const maxChannelID = 255

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("network: frame exceeds maximum size")

// WriteFrame writes one length-prefixed frame. Header and body go out in a
// single Write call: a shaped link charges the one-way latency exactly once
// per frame, and concurrent frame writers sharing a connection cannot
// interleave one frame's header with another's body.
func WriteFrame(w io.Writer, payload []byte) error {
	return WriteTracedFrame(w, "", payload)
}

// WriteTracedFrame writes one frame, embedding traceID in the header when
// non-empty so the receiving process can join the sender's trace. An empty
// traceID produces a plain frame identical to WriteFrame's. Trace IDs
// longer than 255 bytes are dropped (the frame is still sent, untraced).
func WriteTracedFrame(w io.Writer, traceID string, payload []byte) error {
	return WriteFrameExt(w, traceID, "", payload)
}

// WriteFrameExt writes one frame carrying up to two header extensions: the
// trace ID (traceFlag) and the channel ID (channelFlag) routing the frame to
// one channel of a multi-channel host. Either may be empty; with both empty
// the frame is byte-identical to a plain WriteFrame frame, which is what
// keeps single-channel peers wire-compatible across versions. Extension
// values longer than 255 bytes are dropped (the frame is still sent without
// that extension).
func WriteFrameExt(w io.Writer, traceID, channelID string, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	if len(traceID) > maxTraceID {
		traceID = ""
	}
	if len(channelID) > maxChannelID {
		channelID = ""
	}
	var flags uint32
	ext := 0
	if traceID != "" {
		flags |= traceFlag
		ext += 1 + len(traceID)
	}
	if channelID != "" {
		flags |= channelFlag
		ext += 1 + len(channelID)
	}
	// Assemble the frame in a pooled buffer: the steady-state gossip and
	// transport write path sends thousands of frames per second, and a
	// per-frame allocation sized header+payload is pure GC pressure. The
	// single Write call below is still load-bearing (see WriteFrame).
	fb := codec.GetBuffer()
	fb.Grow(4 + ext + len(payload))
	buf := fb.B[:4+ext+len(payload)]
	binary.BigEndian.PutUint32(buf, uint32(ext+len(payload))|flags)
	at := 4
	if traceID != "" {
		buf[at] = byte(len(traceID))
		copy(buf[at+1:], traceID)
		at += 1 + len(traceID)
	}
	if channelID != "" {
		buf[at] = byte(len(channelID))
		copy(buf[at+1:], channelID)
		at += 1 + len(channelID)
	}
	copy(buf[at:], payload)
	_, err := w.Write(buf)
	fb.Release()
	if err != nil {
		return fmt.Errorf("network: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame, discarding any trace-ID
// extension.
func ReadFrame(r io.Reader) ([]byte, error) {
	payload, _, err := ReadTracedFrame(r)
	return payload, err
}

// ReadTracedFrame reads one frame and returns its payload plus the trace ID
// carried in the header (empty for plain frames). Any channel extension is
// discarded.
func ReadTracedFrame(r io.Reader) ([]byte, string, error) {
	payload, traceID, _, err := ReadFrameExt(r)
	return payload, traceID, err
}

// ReadFrameExt reads one frame and returns its payload plus the trace and
// channel IDs carried in the header (each empty when its extension is
// absent).
func ReadFrameExt(r io.Reader) ([]byte, string, string, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, "", "", err // io.EOF passes through for clean shutdown
	}
	word := binary.BigEndian.Uint32(hdr[:])
	traced := word&traceFlag != 0
	channeled := word&channelFlag != 0
	n := word &^ (traceFlag | channelFlag)
	if n > MaxFrame+2*(1+maxTraceID) {
		return nil, "", "", fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			// The header promised n body bytes and none arrived: that is a
			// truncated frame, not the clean between-frames shutdown io.EOF
			// signals to callers.
			err = io.ErrUnexpectedEOF
		}
		return nil, "", "", fmt.Errorf("network: read frame body: %w", err)
	}
	var traceID, channelID string
	if traced {
		traceID, payload = cutExt(payload)
		if payload == nil {
			return nil, "", "", fmt.Errorf("network: read frame body: %w", io.ErrUnexpectedEOF)
		}
	}
	if channeled {
		channelID, payload = cutExt(payload)
		if payload == nil {
			return nil, "", "", fmt.Errorf("network: read frame body: %w", io.ErrUnexpectedEOF)
		}
	}
	return payload, traceID, channelID, nil
}

// cutExt splits one length-prefixed extension off the front of buf,
// returning (value, rest). A truncated extension returns rest == nil.
func cutExt(buf []byte) (string, []byte) {
	if len(buf) < 1 {
		return "", nil
	}
	n := int(buf[0])
	if len(buf) < 1+n {
		return "", nil
	}
	return string(buf[1 : 1+n]), buf[1+n:]
}

// WriteJSON frames and writes a JSON-encoded message.
func WriteJSON(w io.Writer, v any) error {
	return WriteTracedJSON(w, "", v)
}

// WriteTracedJSON frames and writes a JSON-encoded message carrying traceID
// in the frame header.
func WriteTracedJSON(w io.Writer, traceID string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("network: marshal: %w", err)
	}
	return WriteTracedFrame(w, traceID, b)
}

// WriteExtJSON frames and writes a JSON-encoded message carrying traceID and
// channelID in the frame header (either may be empty).
func WriteExtJSON(w io.Writer, traceID, channelID string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("network: marshal: %w", err)
	}
	return WriteFrameExt(w, traceID, channelID, b)
}

// ReadJSON reads one frame and decodes it into v.
func ReadJSON(r io.Reader, v any) error {
	_, err := ReadTracedJSON(r, v)
	return err
}

// ReadTracedJSON reads one frame, decodes it into v, and returns the frame's
// trace ID (empty for plain frames).
func ReadTracedJSON(r io.Reader, v any) (string, error) {
	b, id, err := ReadTracedFrame(r)
	if err != nil {
		return "", err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return "", fmt.Errorf("network: unmarshal: %w", err)
	}
	return id, nil
}

// ReadExtJSON reads one frame, decodes it into v, and returns the frame's
// trace and channel IDs (each empty when its extension is absent).
func ReadExtJSON(r io.Reader, v any) (string, string, error) {
	b, traceID, channelID, err := ReadFrameExt(r)
	if err != nil {
		return "", "", err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return "", "", fmt.Errorf("network: unmarshal: %w", err)
	}
	return traceID, channelID, nil
}

// ErrCode is a machine-readable error classification carried in response
// frames. The off-chain store protocol and the peer transport share this
// vocabulary so clients map failures to sentinel errors structurally
// instead of matching on message substrings.
type ErrCode string

// Wire error codes.
const (
	// CodeNone marks a successful response.
	CodeNone ErrCode = ""
	// CodeNotFound: the requested object or key does not exist.
	CodeNotFound ErrCode = "not_found"
	// CodeChecksumMismatch: stored data failed its integrity check.
	CodeChecksumMismatch ErrCode = "checksum_mismatch"
	// CodeBadRequest: the request was malformed or referenced an unknown op.
	CodeBadRequest ErrCode = "bad_request"
	// CodeUnknownChaincode: the peer has no such chaincode installed.
	CodeUnknownChaincode ErrCode = "unknown_chaincode"
	// CodeSimulationFailed: chaincode simulation returned a non-OK status.
	CodeSimulationFailed ErrCode = "simulation_failed"
	// CodeUnknownChannel: the host does not serve the requested channel.
	CodeUnknownChannel ErrCode = "unknown_channel"
	// CodeInternal: any other server-side failure.
	CodeInternal ErrCode = "internal"
)

// LinkShape describes a simulated link.
type LinkShape struct {
	// Latency is added once per transfer direction (one-way delay).
	Latency time.Duration
	// Mbps caps throughput; 0 means unshaped.
	Mbps float64
	// Scale compresses the imposed delays (matching device.Clock scaling);
	// 0 means 1.0.
	Scale float64
}

// Delay returns the shaped transfer time for n bytes (latency + serialization).
func (s LinkShape) Delay(n int) time.Duration {
	d := s.Latency
	if s.Mbps > 0 && n > 0 {
		d += time.Duration(float64(n) * 8 / (s.Mbps * 1e6) * float64(time.Second))
	}
	scale := s.Scale
	if scale <= 0 {
		scale = 1
	}
	return time.Duration(float64(d) * scale)
}

// ShapedConn wraps a bidirectional stream, imposing the link shape on
// writes. Reads are left unshaped (the remote side shapes its own writes).
type ShapedConn struct {
	rw    io.ReadWriter
	shape LinkShape
	mu    sync.Mutex
}

// NewShapedConn wraps rw with the given link shape.
func NewShapedConn(rw io.ReadWriter, shape LinkShape) *ShapedConn {
	return &ShapedConn{rw: rw, shape: shape}
}

// Read reads from the underlying stream.
func (c *ShapedConn) Read(p []byte) (int, error) { return c.rw.Read(p) }

// Write sleeps for the shaped delay of len(p) bytes, then writes.
func (c *ShapedConn) Write(p []byte) (int, error) {
	if d := c.shape.Delay(len(p)); d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rw.Write(p)
}
