package network

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{7}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %d bytes, want %d", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("read past end = %v, want EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write err = %v", err)
	}
	// A malicious header announcing an oversized frame must be rejected.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read err = %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	type msg struct {
		A string `json:"a"`
		B int    `json:"b"`
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, msg{A: "x", B: 7}); err != nil {
		t.Fatal(err)
	}
	var got msg
	if err := ReadJSON(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.A != "x" || got.B != 7 {
		t.Errorf("got %+v", got)
	}
	// Bad JSON in a valid frame.
	if err := WriteFrame(&buf, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if err := ReadJSON(&buf, &got); err == nil {
		t.Error("ReadJSON accepted bad JSON")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("complete")); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, err := ReadFrame(trunc); err == nil {
		t.Error("truncated frame read succeeded")
	}
}

func TestShapedConnWrites(t *testing.T) {
	var buf bytes.Buffer
	c := NewShapedConn(&buf, LinkShape{Latency: 10 * time.Millisecond, Scale: 0.5})
	start := time.Now()
	if _, err := c.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("shaped write returned in %v, want >= ~5ms", elapsed)
	}
	if buf.String() != "data" {
		t.Errorf("written = %q", buf.String())
	}
	// Reads pass through unshaped.
	rbuf := bytes.NewBufferString("incoming")
	rc := NewShapedConn(rbuf, LinkShape{Latency: time.Hour})
	p := make([]byte, 8)
	start = time.Now()
	if _, err := rc.Read(p); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Error("read was shaped")
	}
}

// Property: arbitrary byte sequences frame-round-trip.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// failAfterWriter fails every write after the first n bytes were accepted.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		accepted := w.n - w.written
		if accepted < 0 {
			accepted = 0
		}
		w.written += accepted
		return accepted, errors.New("wire broke")
	}
	w.written += len(p)
	return len(p), nil
}

func TestReadFrameShortHeader(t *testing.T) {
	// A clean EOF before any header byte passes through as io.EOF (normal
	// connection shutdown between frames)...
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream err = %v, want io.EOF", err)
	}
	// ...but a header cut off mid-way is an unexpected EOF, not a clean
	// shutdown.
	for _, n := range []int{1, 2, 3} {
		hdr := []byte{0, 0, 0, 9}
		if _, err := ReadFrame(bytes.NewReader(hdr[:n])); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%d-byte header err = %v, want ErrUnexpectedEOF", n, err)
		}
	}
}

func TestReadFrameShortBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every possible body truncation point must error, never hang or
	// return a partial payload.
	for cut := 4; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("body cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(&buf)
	if err != nil || len(payload) != 0 {
		t.Errorf("empty frame = %v, %v", payload, err)
	}
}

func TestWriteFrameErrorPropagation(t *testing.T) {
	// Failure while writing the header.
	if err := WriteFrame(&failAfterWriter{n: 2}, []byte("payload")); err == nil {
		t.Error("header write failure not reported")
	}
	// Failure while writing the body.
	if err := WriteFrame(&failAfterWriter{n: 6}, []byte("payload")); err == nil {
		t.Error("body write failure not reported")
	}
}

// countingWriter records how many Write calls it receives.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func (w *countingWriter) Read(p []byte) (int, error) { return w.buf.Read(p) }

// TestWriteFrameSingleWrite pins the framing fix: header and body must go
// out in ONE Write call. A shaper charges latency per Write, so two calls
// per frame would double every framed message's one-way delay (and let
// concurrent writers interleave header and body bytes).
func TestWriteFrameSingleWrite(t *testing.T) {
	w := &countingWriter{}
	if err := WriteFrame(w, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("WriteFrame issued %d writes, want 1", w.writes)
	}
	got, err := ReadFrame(&w.buf)
	if err != nil || string(got) != "payload" {
		t.Fatalf("roundtrip = %q, %v", got, err)
	}
}

// TestShapedFramePaysOneLatency asserts the latency accounting end to end:
// one framed message through a ShapedConn is charged exactly one one-way
// delay, not one per Write call.
func TestShapedFramePaysOneLatency(t *testing.T) {
	const latency = 100 * time.Millisecond
	w := &countingWriter{}
	c := NewShapedConn(w, LinkShape{Latency: latency})
	start := time.Now()
	if err := WriteFrame(c, []byte("one charge")); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if w.writes != 1 {
		t.Fatalf("frame crossed the shaper in %d writes, want 1", w.writes)
	}
	if elapsed < latency {
		t.Errorf("frame paid %v, want >= one latency (%v)", elapsed, latency)
	}
	if elapsed >= 2*latency {
		t.Errorf("frame paid %v, want < two latencies (%v)", elapsed, 2*latency)
	}
}

func TestReadFrameAtExactLimit(t *testing.T) {
	var buf bytes.Buffer
	payload := make([]byte, 1<<10)
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || len(got) != len(payload) {
		t.Fatalf("roundtrip: %d bytes, err %v", len(got), err)
	}
}

// TestWriteFrameExtZeroAlloc pins the pooled write path: once the buffer
// pool is warm, framing a payload — with or without header extensions —
// allocates nothing. This is the steady-state guarantee the gossip and
// transport hot paths rely on.
func TestWriteFrameExtZeroAlloc(t *testing.T) {
	payload := make([]byte, 4096)
	// Warm the pool so the measurement sees steady state, not first use.
	if err := WriteFrameExt(io.Discard, "trace-1", "ch", payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := WriteFrameExt(io.Discard, "trace-1", "ch", payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteFrameExt allocates %.1f objects per frame, want 0", allocs)
	}
}

// BenchmarkWriteFrameExt is the -benchmem pin for the pooled frame writer:
// steady-state frame writes on the commit/gossip hot path must report
// 0 allocs/op (`go test -bench WriteFrameExt -benchmem ./internal/network/`).
func BenchmarkWriteFrameExt(b *testing.B) {
	payload := make([]byte, 4096)
	if err := WriteFrameExt(io.Discard, "trace-bench", "ch", payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFrameExt(io.Discard, "trace-bench", "ch", payload); err != nil {
			b.Fatal(err)
		}
	}
}
