package network

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracedFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTracedFrame(&buf, "tx-abc123", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	payload, id, err := ReadTracedFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != "tx-abc123" || string(payload) != "payload" {
		t.Errorf("got id=%q payload=%q", id, payload)
	}
}

func TestTracedFrameEmptyIDIsPlainFrame(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTracedFrame(&a, "", []byte("same")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&b, []byte("same")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("empty-ID traced frame differs from plain frame on the wire")
	}
	_, id, err := ReadTracedFrame(&a)
	if err != nil || id != "" {
		t.Errorf("id=%q err=%v", id, err)
	}
}

func TestTracedFrameOversizedIDDropped(t *testing.T) {
	var buf bytes.Buffer
	long := strings.Repeat("x", 300)
	if err := WriteTracedFrame(&buf, long, []byte("body")); err != nil {
		t.Fatal(err)
	}
	payload, id, err := ReadTracedFrame(&buf)
	if err != nil || id != "" || string(payload) != "body" {
		t.Errorf("payload=%q id=%q err=%v", payload, id, err)
	}
}

// Plain ReadFrame must interoperate with traced writers: the trace ID is
// discarded, the payload survives.
func TestReadFrameDiscardsTraceID(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTracedFrame(&buf, "tx9", []byte("visible")); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(&buf)
	if err != nil || string(payload) != "visible" {
		t.Errorf("payload=%q err=%v", payload, err)
	}
}

// A traced frame must still cross the shaper in a single Write so it pays
// exactly one one-way latency.
func TestTracedFrameSingleWrite(t *testing.T) {
	w := &countingWriter{}
	if err := WriteTracedFrame(w, "txid", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("traced frame issued %d writes, want 1", w.writes)
	}
}

func TestTracedJSONRoundTrip(t *testing.T) {
	type msg struct {
		A string `json:"a"`
	}
	var buf bytes.Buffer
	if err := WriteTracedJSON(&buf, "tx-77", msg{A: "v"}); err != nil {
		t.Fatal(err)
	}
	var got msg
	id, err := ReadTracedJSON(&buf, &got)
	if err != nil || id != "tx-77" || got.A != "v" {
		t.Errorf("got=%+v id=%q err=%v", got, id, err)
	}
}

// Truncation inside the trace extension must error, not return garbage.
func TestTracedFrameTruncatedExtension(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTracedFrame(&buf, "abcdef", []byte("body")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Corrupt: claim a longer ID than the frame holds.
	bad := append([]byte(nil), full...)
	bad[4] = 200
	if _, _, err := ReadTracedFrame(bytes.NewReader(bad)); err == nil {
		t.Error("oversized embedded id length accepted")
	}
}
