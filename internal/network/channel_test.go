package network

import (
	"bytes"
	"strings"
	"testing"
)

func TestChannelFrameRoundTrip(t *testing.T) {
	cases := []struct{ trace, channel string }{
		{"", ""},
		{"tx-1", ""},
		{"", "ch-iot"},
		{"tx-1", "ch-iot"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := WriteFrameExt(&buf, c.trace, c.channel, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		payload, trace, channel, err := ReadFrameExt(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if trace != c.trace || channel != c.channel || string(payload) != "payload" {
			t.Errorf("case %+v: got trace=%q channel=%q payload=%q", c, trace, channel, payload)
		}
	}
}

// A frame with neither extension must be byte-identical to a plain frame, so
// single-channel deployments keep their pre-extension wire format.
func TestChannelFrameEmptyIsPlainFrame(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteFrameExt(&a, "", "", []byte("same")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&b, []byte("same")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("extension-less frame differs from plain frame on the wire")
	}
}

// Pre-channel readers (ReadTracedFrame / ReadFrame) must still parse a
// channeled frame's payload; the channel extension is simply dropped.
func TestTracedReaderDropsChannel(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameExt(&buf, "tx-5", "ch-a", []byte("visible")); err != nil {
		t.Fatal(err)
	}
	payload, trace, err := ReadTracedFrame(&buf)
	if err != nil || trace != "tx-5" || string(payload) != "visible" {
		t.Errorf("payload=%q trace=%q err=%v", payload, trace, err)
	}
}

func TestChannelFrameOversizedIDDropped(t *testing.T) {
	var buf bytes.Buffer
	long := strings.Repeat("c", 300)
	if err := WriteFrameExt(&buf, "tx", long, []byte("body")); err != nil {
		t.Fatal(err)
	}
	payload, trace, channel, err := ReadFrameExt(&buf)
	if err != nil || trace != "tx" || channel != "" || string(payload) != "body" {
		t.Errorf("payload=%q trace=%q channel=%q err=%v", payload, trace, channel, err)
	}
}

// Truncation inside the channel extension must error, not return garbage.
func TestChannelFrameTruncatedExtension(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameExt(&buf, "", "chan", []byte("body")); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	// Corrupt: claim a longer channel ID than the frame holds.
	bad[4] = 200
	if _, _, _, err := ReadFrameExt(bytes.NewReader(bad)); err == nil {
		t.Error("oversized embedded channel length accepted")
	}
}

func TestChannelFrameSingleWrite(t *testing.T) {
	w := &countingWriter{}
	if err := WriteFrameExt(w, "txid", "ch", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("channeled frame issued %d writes, want 1", w.writes)
	}
}

func TestExtJSONRoundTrip(t *testing.T) {
	type msg struct {
		A string `json:"a"`
	}
	var buf bytes.Buffer
	if err := WriteExtJSON(&buf, "tx-9", "ch-ml", msg{A: "v"}); err != nil {
		t.Fatal(err)
	}
	var got msg
	trace, channel, err := ReadExtJSON(&buf, &got)
	if err != nil || trace != "tx-9" || channel != "ch-ml" || got.A != "v" {
		t.Errorf("got=%+v trace=%q channel=%q err=%v", got, trace, channel, err)
	}
}
