// Package historydb records the full write history of every state key —
// the substrate behind Fabric's GetHistoryForKey and therefore behind
// HyperProv's GetKeyHistory operator, which returns every version a data
// item's provenance record has gone through.
package historydb

import (
	"sync"
	"time"
)

// Entry is one committed write to a key.
type Entry struct {
	TxID      string    `json:"txId"`
	BlockNum  uint64    `json:"blockNum"`
	TxNum     uint64    `json:"txNum"`
	Value     []byte    `json:"value,omitempty"`
	IsDelete  bool      `json:"isDelete,omitempty"`
	Timestamp time.Time `json:"timestamp"`
}

// DB stores per-key commit history in commit order (oldest first).
type DB struct {
	mu      sync.RWMutex
	entries map[string][]Entry
}

// New creates an empty history DB.
func New() *DB {
	return &DB{entries: make(map[string][]Entry)}
}

// Record appends an entry to key's history. Values are copied.
func (db *DB) Record(key string, e Entry) {
	val := make([]byte, len(e.Value))
	copy(val, e.Value)
	e.Value = val
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries[key] = append(db.entries[key], e)
}

// KeyedEntry pairs a state key with one history entry, for batch recording.
type KeyedEntry struct {
	Key   string
	Entry Entry
}

// RecordBatch appends every entry under a single lock acquisition — the
// commit pipeline records one batch per block instead of locking per write.
// Entries must be in commit order. Values are copied.
func (db *DB) RecordBatch(recs []KeyedEntry) {
	if len(recs) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range recs {
		e := r.Entry
		val := make([]byte, len(e.Value))
		copy(val, e.Value)
		e.Value = val
		db.entries[r.Key] = append(db.entries[r.Key], e)
	}
}

// History returns key's history oldest-first. The returned slice is a copy.
func (db *DB) History(key string) []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	src := db.entries[key]
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// Versions returns the number of committed writes (including deletes) to key.
func (db *DB) Versions(key string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries[key])
}

// Keys returns how many distinct keys have history.
func (db *DB) Keys() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}
