// Package historydb records the full write history of every state key —
// the substrate behind Fabric's GetHistoryForKey and therefore behind
// HyperProv's GetKeyHistory operator, which returns every version a data
// item's provenance record has gone through.
//
// The database is lock-striped the same way the sharded state store is:
// keys hash (FNV-1a) onto fixed stripes, each with its own RWMutex, so
// concurrent history queries from endorsement never contend with the
// commit pipeline's batch recording on one global lock.
package historydb

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Entry is one committed write to a key.
type Entry struct {
	TxID      string    `json:"txId"`
	BlockNum  uint64    `json:"blockNum"`
	TxNum     uint64    `json:"txNum"`
	Value     []byte    `json:"value,omitempty"`
	IsDelete  bool      `json:"isDelete,omitempty"`
	Timestamp time.Time `json:"timestamp"`
}

// stripeCount is the number of lock stripes. History access is far less
// hot than state access, so a fixed count suffices.
const stripeCount = 16

// stripe is one lock-striped slice of the per-key history map.
type stripe struct {
	mu      sync.RWMutex
	entries map[string][]Entry
}

// DB stores per-key commit history in commit order (oldest first).
type DB struct {
	stripes [stripeCount]stripe
}

// New creates an empty history DB.
func New() *DB {
	db := &DB{}
	for i := range db.stripes {
		db.stripes[i].entries = make(map[string][]Entry)
	}
	return db
}

// stripeFor hashes key (FNV-1a) onto its stripe.
func (db *DB) stripeFor(key string) *stripe { return &db.stripes[db.stripeIndex(key)] }

// stripeIndex is the same inlined FNV-1a loop statedb's Store.shardIndex
// uses (hash/fnv would allocate per call on this hot path); the two must
// only agree with themselves, never with each other.
func (db *DB) stripeIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % stripeCount)
}

// Record appends an entry to key's history. Values are copied.
func (db *DB) Record(key string, e Entry) {
	val := make([]byte, len(e.Value))
	copy(val, e.Value)
	e.Value = val
	st := db.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.entries[key] = append(st.entries[key], e)
}

// KeyedEntry pairs a state key with one history entry, for batch recording.
type KeyedEntry struct {
	Key   string
	Entry Entry
}

// RecordBatch appends every entry with one lock acquisition per touched
// stripe — the commit pipeline records one batch per block instead of
// locking per write. Entries must be in commit order (per-key order is
// preserved: a key always lands on the same stripe). Values are copied.
func (db *DB) RecordBatch(recs []KeyedEntry) {
	if len(recs) == 0 {
		return
	}
	var groups [stripeCount][]KeyedEntry
	for _, r := range recs {
		i := db.stripeIndex(r.Key)
		groups[i] = append(groups[i], r)
	}
	for i := range groups {
		if len(groups[i]) == 0 {
			continue
		}
		st := &db.stripes[i]
		st.mu.Lock()
		for _, r := range groups[i] {
			e := r.Entry
			val := make([]byte, len(e.Value))
			copy(val, e.Value)
			e.Value = val
			st.entries[r.Key] = append(st.entries[r.Key], e)
		}
		st.mu.Unlock()
	}
}

// History returns key's history oldest-first. The returned slice is a copy.
func (db *DB) History(key string) []Entry {
	st := db.stripeFor(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	src := st.entries[key]
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// Versions returns the number of committed writes (including deletes) to key.
func (db *DB) Versions(key string) int {
	st := db.stripeFor(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.entries[key])
}

// Keys returns how many distinct keys have history.
func (db *DB) Keys() int {
	n := 0
	for i := range db.stripes {
		st := &db.stripes[i]
		st.mu.RLock()
		n += len(st.entries)
		st.mu.RUnlock()
	}
	return n
}

// Snapshot returns a deep copy of the full history, keyed by state key.
// Checkpoints persist this form so a restarted peer recovers GetKeyHistory
// without replaying the chain from genesis. Stripes are copied one at a
// time; callers wanting a cross-stripe-consistent capture (the recovery
// manager) invoke it where recording is quiesced — on the persistence
// goroutine, behind the watermark.
func (db *DB) Snapshot() map[string][]Entry {
	out := make(map[string][]Entry)
	for i := range db.stripes {
		st := &db.stripes[i]
		st.mu.RLock()
		for k, src := range st.entries {
			out[k] = copyEntries(src)
		}
		st.mu.RUnlock()
	}
	return out
}

// copyEntries deep-copies an entry slice, including each value's bytes.
func copyEntries(src []Entry) []Entry {
	entries := make([]Entry, len(src))
	copy(entries, src)
	for i := range entries {
		if entries[i].Value != nil {
			val := make([]byte, len(entries[i].Value))
			copy(val, entries[i].Value)
			entries[i].Value = val
		}
	}
	return entries
}

// Restore replaces the full history with the given snapshot (checkpoint
// recovery). The snapshot is deep-copied; the caller keeps ownership.
func (db *DB) Restore(snap map[string][]Entry) {
	db.replace(snap, true)
}

// RestoreOwned is Restore without the deep copy: the database takes
// ownership of snap, its slices, and their value bytes. Reserved for
// callers that freshly materialized the snapshot and never touch it again
// (checkpoint recovery); anything else must use Restore.
func (db *DB) RestoreOwned(snap map[string][]Entry) {
	db.replace(snap, false)
}

func (db *DB) replace(snap map[string][]Entry, copyValues bool) {
	var fresh [stripeCount]map[string][]Entry
	for i := range fresh {
		fresh[i] = make(map[string][]Entry)
	}
	for k, src := range snap {
		if copyValues {
			fresh[db.stripeIndex(k)][k] = copyEntries(src)
		} else {
			fresh[db.stripeIndex(k)][k] = src
		}
	}
	for i := range db.stripes {
		st := &db.stripes[i]
		st.mu.Lock()
		st.entries = fresh[i]
		st.mu.Unlock()
	}
}

// Fingerprint returns a deterministic hash over every key's entry sequence.
// Two history databases that recorded the same committed block stream —
// whether live or rebuilt through checkpoint restore plus tail replay —
// have equal fingerprints; crash-recovery tests pin exactness with it.
// Entries are hashed in place under each stripe's read lock (no deep
// copy); callers fingerprint quiesced databases, as with Snapshot.
func (db *DB) Fingerprint() string {
	keys := make([]string, 0, 64)
	for i := range db.stripes {
		st := &db.stripes[i]
		st.mu.RLock()
		for k := range st.entries {
			keys = append(keys, k)
		}
		st.mu.RUnlock()
	}
	sort.Strings(keys)
	h := sha256.New()
	var num [8]byte
	writeBytes := func(b []byte) {
		binary.BigEndian.PutUint64(num[:], uint64(len(b)))
		h.Write(num[:])
		h.Write(b)
	}
	for _, k := range keys {
		writeBytes([]byte(k))
		st := db.stripeFor(k)
		st.mu.RLock()
		entries := st.entries[k]
		for _, e := range entries {
			writeBytes([]byte(e.TxID))
			binary.BigEndian.PutUint64(num[:], e.BlockNum)
			h.Write(num[:])
			binary.BigEndian.PutUint64(num[:], e.TxNum)
			h.Write(num[:])
			writeBytes(e.Value)
			if e.IsDelete {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
			writeBytes([]byte(e.Timestamp.UTC().Format(time.RFC3339Nano)))
		}
		st.mu.RUnlock()
	}
	return hex.EncodeToString(h.Sum(nil))
}
