// Package historydb records the full write history of every state key —
// the substrate behind Fabric's GetHistoryForKey and therefore behind
// HyperProv's GetKeyHistory operator, which returns every version a data
// item's provenance record has gone through.
package historydb

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Entry is one committed write to a key.
type Entry struct {
	TxID      string    `json:"txId"`
	BlockNum  uint64    `json:"blockNum"`
	TxNum     uint64    `json:"txNum"`
	Value     []byte    `json:"value,omitempty"`
	IsDelete  bool      `json:"isDelete,omitempty"`
	Timestamp time.Time `json:"timestamp"`
}

// DB stores per-key commit history in commit order (oldest first).
type DB struct {
	mu      sync.RWMutex
	entries map[string][]Entry
}

// New creates an empty history DB.
func New() *DB {
	return &DB{entries: make(map[string][]Entry)}
}

// Record appends an entry to key's history. Values are copied.
func (db *DB) Record(key string, e Entry) {
	val := make([]byte, len(e.Value))
	copy(val, e.Value)
	e.Value = val
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries[key] = append(db.entries[key], e)
}

// KeyedEntry pairs a state key with one history entry, for batch recording.
type KeyedEntry struct {
	Key   string
	Entry Entry
}

// RecordBatch appends every entry under a single lock acquisition — the
// commit pipeline records one batch per block instead of locking per write.
// Entries must be in commit order. Values are copied.
func (db *DB) RecordBatch(recs []KeyedEntry) {
	if len(recs) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range recs {
		e := r.Entry
		val := make([]byte, len(e.Value))
		copy(val, e.Value)
		e.Value = val
		db.entries[r.Key] = append(db.entries[r.Key], e)
	}
}

// History returns key's history oldest-first. The returned slice is a copy.
func (db *DB) History(key string) []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	src := db.entries[key]
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// Versions returns the number of committed writes (including deletes) to key.
func (db *DB) Versions(key string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries[key])
}

// Keys returns how many distinct keys have history.
func (db *DB) Keys() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Snapshot returns a deep copy of the full history, keyed by state key.
// Checkpoints persist this form so a restarted peer recovers GetKeyHistory
// without replaying the chain from genesis.
func (db *DB) Snapshot() map[string][]Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string][]Entry, len(db.entries))
	for k, src := range db.entries {
		out[k] = copyEntries(src)
	}
	return out
}

// copyEntries deep-copies an entry slice, including each value's bytes.
func copyEntries(src []Entry) []Entry {
	entries := make([]Entry, len(src))
	copy(entries, src)
	for i := range entries {
		if entries[i].Value != nil {
			val := make([]byte, len(entries[i].Value))
			copy(val, entries[i].Value)
			entries[i].Value = val
		}
	}
	return entries
}

// Restore replaces the full history with the given snapshot (checkpoint
// recovery). The snapshot is deep-copied; the caller keeps ownership.
func (db *DB) Restore(snap map[string][]Entry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries = make(map[string][]Entry, len(snap))
	for k, src := range snap {
		db.entries[k] = copyEntries(src)
	}
}

// RestoreOwned is Restore without the deep copy: the database takes
// ownership of snap, its slices, and their value bytes. Reserved for
// callers that freshly materialized the snapshot and never touch it again
// (checkpoint recovery); anything else must use Restore.
func (db *DB) RestoreOwned(snap map[string][]Entry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries = snap
}

// Fingerprint returns a deterministic hash over every key's entry sequence.
// Two history databases that recorded the same committed block stream —
// whether live or rebuilt through checkpoint restore plus tail replay —
// have equal fingerprints; crash-recovery tests pin exactness with it.
func (db *DB) Fingerprint() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.entries))
	for k := range db.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var num [8]byte
	writeBytes := func(b []byte) {
		binary.BigEndian.PutUint64(num[:], uint64(len(b)))
		h.Write(num[:])
		h.Write(b)
	}
	for _, k := range keys {
		writeBytes([]byte(k))
		for _, e := range db.entries[k] {
			writeBytes([]byte(e.TxID))
			binary.BigEndian.PutUint64(num[:], e.BlockNum)
			h.Write(num[:])
			binary.BigEndian.PutUint64(num[:], e.TxNum)
			h.Write(num[:])
			writeBytes(e.Value)
			if e.IsDelete {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
			writeBytes([]byte(e.Timestamp.UTC().Format(time.RFC3339Nano)))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
