package historydb

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestRecordAndHistoryOrder(t *testing.T) {
	db := New()
	for i := 0; i < 5; i++ {
		db.Record("k", Entry{
			TxID:     fmt.Sprintf("tx%d", i),
			BlockNum: uint64(i),
			Value:    []byte(fmt.Sprintf("v%d", i)),
		})
	}
	h := db.History("k")
	if len(h) != 5 {
		t.Fatalf("history length = %d, want 5", len(h))
	}
	for i, e := range h {
		if e.TxID != fmt.Sprintf("tx%d", i) {
			t.Errorf("entry %d txid = %q", i, e.TxID)
		}
	}
	if db.Versions("k") != 5 {
		t.Errorf("Versions = %d", db.Versions("k"))
	}
	if db.Versions("absent") != 0 {
		t.Errorf("Versions(absent) = %d", db.Versions("absent"))
	}
	if db.Keys() != 1 {
		t.Errorf("Keys = %d", db.Keys())
	}
}

func TestHistoryIsCopy(t *testing.T) {
	db := New()
	val := []byte("original")
	db.Record("k", Entry{TxID: "t", Value: val})
	// Mutating the caller's slice after Record must not affect history.
	val[0] = 'X'
	if got := db.History("k")[0].Value[0]; got != 'o' {
		t.Errorf("Record aliased caller slice: %c", got)
	}
	// Mutating a returned history entry must not affect the DB... entries
	// share value storage across copies of the slice header, so verify the
	// returned top-level slice at least is fresh.
	h1 := db.History("k")
	h1[0].TxID = "mutated"
	if db.History("k")[0].TxID != "t" {
		t.Error("History returns aliased slice")
	}
}

func TestDeleteEntriesTracked(t *testing.T) {
	db := New()
	db.Record("k", Entry{TxID: "t1", Value: []byte("v")})
	db.Record("k", Entry{TxID: "t2", IsDelete: true, Timestamp: time.Unix(10, 0)})
	h := db.History("k")
	if !h[1].IsDelete {
		t.Error("delete entry not flagged")
	}
}

// Property: history length equals number of records, order preserved.
func TestQuickAppendOnly(t *testing.T) {
	f := func(n uint8) bool {
		db := New()
		count := int(n % 50)
		for i := 0; i < count; i++ {
			db.Record("key", Entry{BlockNum: uint64(i)})
		}
		h := db.History("key")
		if len(h) != count {
			return false
		}
		for i, e := range h {
			if e.BlockNum != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
