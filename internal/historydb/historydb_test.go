package historydb

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestRecordAndHistoryOrder(t *testing.T) {
	db := New()
	for i := 0; i < 5; i++ {
		db.Record("k", Entry{
			TxID:     fmt.Sprintf("tx%d", i),
			BlockNum: uint64(i),
			Value:    []byte(fmt.Sprintf("v%d", i)),
		})
	}
	h := db.History("k")
	if len(h) != 5 {
		t.Fatalf("history length = %d, want 5", len(h))
	}
	for i, e := range h {
		if e.TxID != fmt.Sprintf("tx%d", i) {
			t.Errorf("entry %d txid = %q", i, e.TxID)
		}
	}
	if db.Versions("k") != 5 {
		t.Errorf("Versions = %d", db.Versions("k"))
	}
	if db.Versions("absent") != 0 {
		t.Errorf("Versions(absent) = %d", db.Versions("absent"))
	}
	if db.Keys() != 1 {
		t.Errorf("Keys = %d", db.Keys())
	}
}

func TestHistoryIsCopy(t *testing.T) {
	db := New()
	val := []byte("original")
	db.Record("k", Entry{TxID: "t", Value: val})
	// Mutating the caller's slice after Record must not affect history.
	val[0] = 'X'
	if got := db.History("k")[0].Value[0]; got != 'o' {
		t.Errorf("Record aliased caller slice: %c", got)
	}
	// Mutating a returned history entry must not affect the DB... entries
	// share value storage across copies of the slice header, so verify the
	// returned top-level slice at least is fresh.
	h1 := db.History("k")
	h1[0].TxID = "mutated"
	if db.History("k")[0].TxID != "t" {
		t.Error("History returns aliased slice")
	}
}

func TestDeleteEntriesTracked(t *testing.T) {
	db := New()
	db.Record("k", Entry{TxID: "t1", Value: []byte("v")})
	db.Record("k", Entry{TxID: "t2", IsDelete: true, Timestamp: time.Unix(10, 0)})
	h := db.History("k")
	if !h[1].IsDelete {
		t.Error("delete entry not flagged")
	}
}

// Property: history length equals number of records, order preserved.
func TestQuickAppendOnly(t *testing.T) {
	f := func(n uint8) bool {
		db := New()
		count := int(n % 50)
		for i := 0; i < count; i++ {
			db.Record("key", Entry{BlockNum: uint64(i)})
		}
		h := db.History("key")
		if len(h) != count {
			return false
		}
		for i, e := range h {
			if e.BlockNum != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	db := New()
	for i := 0; i < 4; i++ {
		db.Record("a", Entry{TxID: fmt.Sprintf("tx%d", i), BlockNum: uint64(i),
			Value: []byte("va"), Timestamp: time.Unix(1700000000+int64(i), 0).UTC()})
	}
	db.Record("b", Entry{TxID: "txb", BlockNum: 9, IsDelete: true})

	snap := db.Snapshot()
	restored := New()
	restored.Restore(snap)
	if restored.Keys() != db.Keys() || restored.Versions("a") != 4 {
		t.Fatalf("restored keys=%d versions(a)=%d", restored.Keys(), restored.Versions("a"))
	}
	if db.Fingerprint() != restored.Fingerprint() {
		t.Error("fingerprint changed across snapshot/restore")
	}
	// The snapshot is a deep copy: mutating it must not reach the source.
	snap["a"][0].Value[0] = 'X'
	if got := db.History("a")[0].Value[0]; got == 'X' {
		t.Error("snapshot shares value bytes with the live DB")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	mk := func(mut func(*Entry)) *DB {
		db := New()
		e := Entry{TxID: "tx1", BlockNum: 1, TxNum: 2, Value: []byte("v"),
			Timestamp: time.Unix(1700000000, 0).UTC()}
		if mut != nil {
			mut(&e)
		}
		db.Record("k", e)
		return db
	}
	base := mk(nil).Fingerprint()
	for name, mut := range map[string]func(*Entry){
		"txid":   func(e *Entry) { e.TxID = "tx2" },
		"block":  func(e *Entry) { e.BlockNum = 3 },
		"value":  func(e *Entry) { e.Value = []byte("w") },
		"delete": func(e *Entry) { e.IsDelete = true },
	} {
		if mk(mut).Fingerprint() == base {
			t.Errorf("fingerprint ignores %s", name)
		}
	}
	if mk(nil).Fingerprint() != base {
		t.Error("fingerprint not deterministic")
	}
}
