package blockstore

import (
	"fmt"
	"testing"
)

func BenchmarkBlockAppend(b *testing.B) {
	s := NewStore()
	payload := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := Envelope{TxID: fmt.Sprintf("tx-%d", i), Function: "set", Args: [][]byte{payload}}
		blk, err := NewBlock(uint64(i), s.LastHash(), []Envelope{env})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Append(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyChain(b *testing.B) {
	s := NewStore()
	for i := 0; i < 128; i++ {
		env := Envelope{TxID: fmt.Sprintf("tx-%d", i), Function: "set", Args: [][]byte{make([]byte, 512)}}
		blk, err := NewBlock(uint64(i), s.LastHash(), []Envelope{env})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Append(blk); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.VerifyChain(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataHash(b *testing.B) {
	envs := make([]Envelope, 10)
	for i := range envs {
		envs[i] = Envelope{TxID: fmt.Sprintf("tx-%d", i), Args: [][]byte{make([]byte, 4096)}}
	}
	b.SetBytes(10 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeDataHash(envs); err != nil {
			b.Fatal(err)
		}
	}
}
