package blockstore

// Mixed-format ledger coverage: new ledgers are v2 binary, legacy JSONL
// ledgers open transparently and keep their format until migrated, and
// MigrateFileToV2 converts atomically (temp + fsync + rename + dir fsync).
// The JSONL-specific crash-semantics tests in file_test.go pin the legacy
// loader via OpenFileStoreLegacy; this file pins the v2 loader's.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// chainFingerprint summarizes the externally observable ledger state.
func chainFingerprint(t *testing.T, s *FileStore) string {
	t.Helper()
	if err := s.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	return fmt.Sprintf("h=%d last=%x", s.Height(), s.LastHash())
}

func TestFileStoreNewFilesAreV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 4)
	if got := s.Format(); got != "v2" {
		t.Fatalf("new file format = %q, want v2", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, v2Magic) {
		t.Fatalf("v2 file does not start with record magic: %q", raw[:8])
	}
	// Reopen sniffs v2 and replays everything.
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Format() != "v2" || s2.Height() != 4 {
		t.Fatalf("reopen: format=%s height=%d", s2.Format(), s2.Height())
	}
	env, code, err := s2.GetTx("tx-2")
	if err != nil || code != TxValid || env.TxID != "tx-2" {
		t.Fatalf("GetTx after v2 reload = %v %v %v", env, code, err)
	}
	if err := s2.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain after v2 reload: %v", err)
	}
}

func TestFileStoreLegacyOpensAndStaysJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreLegacy(path, SyncOnClose)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 3)
	if s.Format() != "jsonl" {
		t.Fatalf("legacy format = %q", s.Format())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A plain OpenFileStore must sniff JSONL and keep appending JSONL so
	// one file never mixes record formats.
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("sniffing reopen: %v", err)
	}
	if s2.Format() != "jsonl" || s2.Height() != 3 {
		t.Fatalf("reopen: format=%s height=%d", s2.Format(), s2.Height())
	}
	fillFileStore(t, s2, 3, 2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, v2Magic) {
		t.Fatal("legacy file grew v2 records")
	}
	s3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Height() != 5 {
		t.Fatalf("height after mixed-session appends = %d, want 5", s3.Height())
	}
}

// TestMigrateLedgerToV2 pins the one-shot conversion: same blocks, same
// hashes, same tx lookups — only the container format changes.
func TestMigrateLedgerToV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreLegacy(path, SyncOnClose)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 6)
	before := chainFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	migrated, err := MigrateFileToV2(path)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if !migrated {
		t.Fatal("legacy ledger reported as already migrated")
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("open after migrate: %v", err)
	}
	defer s2.Close()
	if s2.Format() != "v2" {
		t.Fatalf("post-migration format = %q", s2.Format())
	}
	if after := chainFingerprint(t, s2); after != before {
		t.Fatalf("migration changed the chain: %q -> %q", before, after)
	}
	env, code, err := s2.GetTx("tx-4")
	if err != nil || code != TxValid || env.TxID != "tx-4" {
		t.Fatalf("GetTx after migration = %v %v %v", env, code, err)
	}
	// Second run is a no-op.
	migrated, err = MigrateFileToV2(path)
	if err != nil || migrated {
		t.Fatalf("re-migrate = %v %v, want false nil", migrated, err)
	}
}

// TestMigrateSurvivesCrashLeftovers models a crash mid-migration: the temp
// file was written but the rename never happened. The original ledger must
// open untouched and a rerun must finish the job.
func TestMigrateSurvivesCrashLeftovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.jsonl")
	s, err := OpenFileStoreLegacy(path, SyncOnClose)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 4)
	before := chainFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed migration leaves a stray temp file behind; it must never
	// shadow or corrupt the real ledger.
	stray := filepath.Join(dir, "chain.jsonl.migrate-12345.tmp")
	if err := os.WriteFile(stray, []byte("HPB2 partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("open with stray temp present: %v", err)
	}
	if got := chainFingerprint(t, s2); got != before {
		t.Fatalf("stray temp changed the chain: %q -> %q", before, got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	migrated, err := MigrateFileToV2(path)
	if err != nil || !migrated {
		t.Fatalf("migrate after crash = %v %v", migrated, err)
	}
	s3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := chainFingerprint(t, s3); got != before {
		t.Fatalf("post-crash migration changed the chain: %q -> %q", before, got)
	}
}

func TestFileStoreV2DiscardsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-body (crash during append).
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen after torn record: %v", err)
	}
	if s2.Height() != 2 {
		t.Fatalf("height after torn record = %d, want 2", s2.Height())
	}
	// Appends continue cleanly on the truncated file.
	fillFileStore(t, s2, 2, 2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Height() != 4 {
		t.Fatalf("final height = %d, want 4", s3.Height())
	}
	if err := s3.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestFileStoreV2TornMagicAndLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn append can stop inside the magic or the length uvarint; both
	// must read as a torn tail, not corruption.
	for _, tail := range [][]byte{{'H'}, {'H', 'P'}, {'H', 'P', 'B', '2'}, {'H', 'P', 'B', '2', 0xFF}} {
		func() {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			crashed := append(append([]byte(nil), raw...), tail...)
			crashPath := filepath.Join(t.TempDir(), "crash.jsonl")
			if err := os.WriteFile(crashPath, crashed, 0o644); err != nil {
				t.Fatal(err)
			}
			s2, err := OpenFileStore(crashPath)
			if err != nil {
				t.Fatalf("tail %v: %v", tail, err)
			}
			defer s2.Close()
			if s2.Height() != 2 {
				t.Fatalf("tail %v: height = %d, want 2", tail, s2.Height())
			}
		}()
	}
}

func TestFileStoreV2ZeroFilledTailIsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen over zero-filled tail: %v", err)
	}
	defer s2.Close()
	if s2.Height() != 3 {
		t.Fatalf("height = %d, want 3", s2.Height())
	}
}

func TestFileStoreV2MidFileDamageIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file: the record is complete, so
	// the CRC failure cannot be a crash artifact.
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)/2] ^= 0x01
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); !errors.Is(err, ErrCorruptFile) {
		t.Fatalf("mid-file flip: err = %v, want ErrCorruptFile", err)
	}
}

func TestFileStoreV2SyncEachAppendSurvivesNoFlushClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreWithPolicy(path, SyncEachAppend)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 3)
	if err := s.CloseNoFlush(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Height() != 3 {
		t.Fatalf("height after kill = %d, want 3", s2.Height())
	}
}

func TestFileStoreUnrecognizedFormatByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	if err := os.WriteFile(path, []byte("XYZZY"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); !errors.Is(err, ErrCorruptFile) {
		t.Fatalf("alien format byte: err = %v, want ErrCorruptFile", err)
	}
}
