package blockstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/codec"
)

func fullEnvelope(txID string) Envelope {
	return Envelope{
		TxID:      txID,
		ChannelID: "provchannel",
		Chaincode: "hyperprov",
		Function:  "set",
		Args:      [][]byte{[]byte("key"), []byte("value")},
		Creator:   []byte("creator-identity"),
		Timestamp: time.Unix(1700000123, 456789).UTC(),
		RWSet:     []byte("rwset-bytes"),
		Response:  []byte("response-bytes"),
		Events:    []byte("event-bytes"),
		Endorsements: []Endorsement{
			{Endorser: []byte("peer0-id"), Signature: []byte("peer0-sig")},
			{Endorser: []byte("peer1-id"), Signature: []byte("peer1-sig")},
		},
		Signature: []byte("client-sig"),
	}
}

// TestBlockCodecRoundTrip pins the canonical encoding end to end: every
// field survives, decoded envelopes carry their wire bytes as the cached
// canonical encoding, and re-encoding is byte-identical.
func TestBlockCodecRoundTrip(t *testing.T) {
	envs := []Envelope{fullEnvelope("tx-a"), fullEnvelope("tx-b")}
	b, err := NewBlock(7, []byte("prev-hash"), envs)
	if err != nil {
		t.Fatal(err)
	}
	b.TxValidation = []ValidationCode{TxValid, TxMVCCConflict}

	raw := MarshalBlock(b)
	got, err := UnmarshalBlock(raw)
	if err != nil {
		t.Fatalf("UnmarshalBlock: %v", err)
	}
	if got.Header.Number != 7 || string(got.Header.PreviousHash) != "prev-hash" {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if !bytes.Equal(got.Header.DataHash, b.Header.DataHash) {
		t.Fatal("data hash mismatch")
	}
	if len(got.Envelopes) != 2 || len(got.TxValidation) != 2 || got.TxValidation[1] != TxMVCCConflict {
		t.Fatalf("contents mismatch: %d envs, %v", len(got.Envelopes), got.TxValidation)
	}
	e := &got.Envelopes[0]
	want := &envs[0]
	if e.TxID != want.TxID || e.ChannelID != want.ChannelID || e.Chaincode != want.Chaincode ||
		e.Function != want.Function || !e.Timestamp.Equal(want.Timestamp) {
		t.Fatalf("envelope scalar mismatch: %+v", e)
	}
	if len(e.Args) != 2 || !bytes.Equal(e.Args[1], []byte("value")) ||
		!bytes.Equal(e.RWSet, want.RWSet) || !bytes.Equal(e.Signature, want.Signature) {
		t.Fatalf("envelope bytes mismatch: %+v", e)
	}
	if len(e.Endorsements) != 2 || !bytes.Equal(e.Endorsements[1].Signature, []byte("peer1-sig")) {
		t.Fatalf("endorsements mismatch: %+v", e.Endorsements)
	}
	// Decoded blocks must pass the integrity audit (the audit re-encodes
	// from fields, so this also proves decode→encode is canonical).
	if err := got.VerifyData(); err != nil {
		t.Fatalf("VerifyData on decoded block: %v", err)
	}
	if !bytes.Equal(MarshalBlock(got), raw) {
		t.Fatal("re-encoding a decoded block is not byte-identical")
	}
}

// TestSignedBytesPrefixProperty pins that a sealed envelope's cached
// signing preimage equals the fresh encoding of the same fields — the
// property that lets validators verify against bin[:sigOff] directly.
func TestSignedBytesPrefixProperty(t *testing.T) {
	e := fullEnvelope("tx-p")
	fresh := e.SignedBytes() // no cache yet: fresh core encode
	e.Seal()
	if !bytes.Equal(e.SignedBytes(), fresh) {
		t.Fatal("sealed SignedBytes differs from fresh encoding")
	}
	raw, _ := e.Marshal()
	dec, err := UnmarshalEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.SignedBytes(), fresh) {
		t.Fatal("decoded SignedBytes differs from fresh encoding")
	}
}

// TestLegacyJSONEnvelopeIngest verifies the '{' sniff path: a JSON
// envelope decodes, is normalized, and from then on behaves canonically.
func TestLegacyJSONEnvelopeIngest(t *testing.T) {
	e := fullEnvelope("tx-legacy")
	legacy, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalEnvelope(legacy)
	if err != nil {
		t.Fatalf("legacy ingest: %v", err)
	}
	if got.TxID != e.TxID || !got.Timestamp.Equal(e.Timestamp) {
		t.Fatalf("legacy fields mismatch: %+v", got)
	}
	// The ingested envelope's Marshal must be the canonical binary form,
	// not an echo of the JSON input.
	raw, _ := got.Marshal()
	if len(raw) == 0 || raw[0] == '{' {
		t.Fatal("legacy ingest did not re-encode to binary")
	}
	rt, err := UnmarshalEnvelope(raw)
	if err != nil || rt.TxID != e.TxID {
		t.Fatalf("binary round-trip after ingest: %v", err)
	}
}

// TestBlockCodecStructuredErrors verifies damaged inputs fail with the
// codec sentinels, never panics or unstructured errors.
func TestBlockCodecStructuredErrors(t *testing.T) {
	b, err := NewBlock(0, nil, []Envelope{fullEnvelope("tx")})
	if err != nil {
		t.Fatal(err)
	}
	good := MarshalBlock(b)

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := UnmarshalBlock(flipped); !errors.Is(err, codec.ErrChecksum) && !errors.Is(err, codec.ErrMalformed) && !errors.Is(err, codec.ErrTruncated) {
		t.Fatalf("flipped byte: unstructured error %v", err)
	}
	if _, err := UnmarshalBlock(good[:len(good)/2]); !errors.Is(err, codec.ErrChecksum) && !errors.Is(err, codec.ErrTruncated) {
		t.Fatalf("truncated: unstructured error %v", err)
	}
	if _, err := UnmarshalBlock([]byte{}); !errors.Is(err, codec.ErrTruncated) {
		t.Fatalf("empty: %v", err)
	}
	trailing := append(append([]byte(nil), good...), 0)
	if _, err := UnmarshalBlock(trailing); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Unsupported version must be rejected (CRC recomputed so only the
	// version check can fire).
	verBumped := append([]byte(nil), good[:len(good)-4]...)
	verBumped[4] = 99
	verBumped = codec.AppendChecksum(verBumped, 0)
	if _, err := UnmarshalBlock(verBumped); !errors.Is(err, codec.ErrMalformed) {
		t.Fatalf("version 99: want ErrMalformed, got %v", err)
	}
}

// TestHeaderHashStability pins that header hashing is content-addressed
// and signature-independent of field mutation.
func TestHeaderHashStability(t *testing.T) {
	h := Header{Number: 3, PreviousHash: []byte("prev"), DataHash: []byte("data")}
	h2 := Header{Number: 3, PreviousHash: []byte("prev"), DataHash: []byte("data")}
	if !bytes.Equal(h.Hash(), h2.Hash()) {
		t.Fatal("identical headers hash differently")
	}
	h2.Number = 4
	if bytes.Equal(h.Hash(), h2.Hash()) {
		t.Fatal("different headers hash identically")
	}
}

// TestMarshalBlockDoesNotMutate verifies encoding a shared block performs
// no caching side effects (the race-safety contract for concurrent
// persist/gossip encoders).
func TestMarshalBlockDoesNotMutate(t *testing.T) {
	e := fullEnvelope("tx-shared")
	b := &Block{Header: Header{Number: 1}, Envelopes: []Envelope{e}}
	// Envelope was never sealed: MarshalBlock must encode to scratch.
	raw1 := MarshalBlock(b)
	if b.Envelopes[0].bin != nil {
		t.Fatal("MarshalBlock cached an encoding on a shared envelope")
	}
	raw2 := MarshalBlock(b)
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("MarshalBlock is not deterministic")
	}
}
