package blockstore

import (
	"fmt"

	"github.com/hyperprov/hyperprov/internal/codec"
)

// Canonical binary encodings for the ledger's hot-path structures, built on
// the internal/codec substrate (the checkpoint codec's style: ASCII magic,
// version byte, uvarint framing, length-prefixed byte strings). These bytes
// are the ONE canonical form end to end: envelope signing preimages,
// ComputeDataHash, header hashing, gossip/transport frames, and the v2
// block-file format all consume the same per-envelope encoding, produced
// once per envelope per block and cached on the Envelope (see ensureBin).
var (
	envelopeMagic = []byte("HPEV")
	headerMagic   = []byte("HPHD")
	blockMagic    = []byte("HPBK")
)

// codecVersion is the current version byte of all three encodings. Decoders
// reject other versions with ErrMalformed, so a future v2 layout can take
// over the same magic.
const codecVersion = 1

// appendEnvelopeCore appends the envelope's signing preimage: every field
// except the client signature. It never mutates e.
func appendEnvelopeCore(buf []byte, e *Envelope) []byte {
	buf = append(buf, envelopeMagic...)
	buf = append(buf, codecVersion)
	buf = codec.AppendString(buf, e.TxID)
	buf = codec.AppendString(buf, e.ChannelID)
	buf = codec.AppendString(buf, e.Chaincode)
	buf = codec.AppendString(buf, e.Function)
	buf = codec.AppendUvarint(buf, uint64(len(e.Args)))
	for _, a := range e.Args {
		buf = codec.AppendBytes(buf, a)
	}
	buf = codec.AppendBytes(buf, e.Creator)
	buf = codec.AppendTime(buf, e.Timestamp)
	buf = codec.AppendBytes(buf, e.RWSet)
	buf = codec.AppendBytes(buf, e.Response)
	buf = codec.AppendBytes(buf, e.Events)
	buf = codec.AppendUvarint(buf, uint64(len(e.Endorsements)))
	for i := range e.Endorsements {
		buf = codec.AppendBytes(buf, e.Endorsements[i].Endorser)
		buf = codec.AppendBytes(buf, e.Endorsements[i].Signature)
	}
	return buf
}

// appendEnvelope appends the full envelope encoding: the signing preimage
// followed by the client signature. It never mutates e.
func appendEnvelope(buf []byte, e *Envelope) []byte {
	buf = appendEnvelopeCore(buf, e)
	return codec.AppendBytes(buf, e.Signature)
}

// checkVersion fails the cursor when a record announces a version this
// build does not speak.
func checkVersion(d *codec.Dec, what string, ver byte) {
	if d.Err() == nil && ver != codecVersion {
		d.Fail(fmt.Errorf("%w: %s version %d (supported: %d)",
			codec.ErrMalformed, what, ver, codecVersion))
	}
}

// decodeEnvelope decodes one full envelope encoding. The returned envelope
// aliases blob (byte fields share its backing array) and caches blob as its
// canonical encoding, so SignedBytes, data hashing, and re-serialization
// reuse the wire bytes without re-encoding.
func decodeEnvelope(blob []byte) (Envelope, error) {
	var e Envelope
	d := codec.NewDec(blob)
	checkVersion(d, "envelope", d.Magic(envelopeMagic))
	e.TxID = d.String()
	e.ChannelID = d.String()
	e.Chaincode = d.String()
	e.Function = d.String()
	if n := d.Count(); n > 0 {
		e.Args = make([][]byte, n)
		for i := range e.Args {
			e.Args[i] = d.BytesShared()
		}
	}
	e.Creator = d.BytesShared()
	e.Timestamp = d.Time()
	e.RWSet = d.BytesShared()
	e.Response = d.BytesShared()
	e.Events = d.BytesShared()
	if n := d.Count(); n > 0 {
		e.Endorsements = make([]Endorsement, n)
		for i := range e.Endorsements {
			e.Endorsements[i].Endorser = d.BytesShared()
			e.Endorsements[i].Signature = d.BytesShared()
		}
	}
	sigOff := len(blob) - d.Len()
	e.Signature = d.BytesShared()
	if err := d.Finish(); err != nil {
		return Envelope{}, fmt.Errorf("blockstore: envelope codec: %w", err)
	}
	e.bin, e.sigOff = blob, sigOff
	return e, nil
}

// MarshalBlock returns the block's canonical binary encoding: header
// fields, length-prefixed envelope encodings (reusing each envelope's
// cached bytes when present), validation codes, and a CRC-32C trailer.
// It never mutates b, so concurrent readers of a shared block are safe.
func MarshalBlock(b *Block) []byte {
	return AppendBlock(nil, b)
}

// AppendBlock appends the block encoding to buf (see MarshalBlock); callers
// on the steady-state write path pass a pooled buffer to avoid per-block
// allocation.
func AppendBlock(buf []byte, b *Block) []byte {
	start := len(buf)
	buf = append(buf, blockMagic...)
	buf = append(buf, codecVersion)
	buf = codec.AppendUvarint(buf, b.Header.Number)
	buf = codec.AppendBytes(buf, b.Header.PreviousHash)
	buf = codec.AppendBytes(buf, b.Header.DataHash)
	buf = codec.AppendUvarint(buf, uint64(len(b.Envelopes)))
	for i := range b.Envelopes {
		e := &b.Envelopes[i]
		if e.bin != nil {
			buf = codec.AppendBytes(buf, e.bin)
		} else {
			tmp := codec.GetBuffer()
			tmp.B = appendEnvelope(tmp.B, e)
			buf = codec.AppendBytes(buf, tmp.B)
			tmp.Release()
		}
	}
	buf = codec.AppendUvarint(buf, uint64(len(b.TxValidation)))
	for _, c := range b.TxValidation {
		buf = codec.AppendUvarint(buf, uint64(c))
	}
	return codec.AppendChecksum(buf, start)
}

// UnmarshalBlock decodes a block produced by MarshalBlock. Decoded byte
// fields alias data; callers hand over ownership of the buffer. Failures
// are always structured (codec.ErrTruncated/ErrMalformed/ErrChecksum).
func UnmarshalBlock(data []byte) (*Block, error) {
	body, err := codec.VerifyChecksum(data)
	if err != nil {
		return nil, fmt.Errorf("blockstore: block codec: %w", err)
	}
	d := codec.NewDec(body)
	checkVersion(d, "block", d.Magic(blockMagic))
	var b Block
	b.Header.Number = d.Uvarint()
	b.Header.PreviousHash = d.BytesShared()
	b.Header.DataHash = d.BytesShared()
	if n := d.Count(); n > 0 {
		b.Envelopes = make([]Envelope, 0, n)
		for i := 0; i < n; i++ {
			blob := d.BytesShared()
			if d.Err() != nil {
				break
			}
			e, err := decodeEnvelope(blob)
			if err != nil {
				return nil, fmt.Errorf("blockstore: block %d envelope %d: %w", b.Header.Number, i, err)
			}
			b.Envelopes = append(b.Envelopes, e)
		}
	}
	if n := d.Count(); n > 0 {
		b.TxValidation = make([]ValidationCode, n)
		for i := range b.TxValidation {
			b.TxValidation[i] = ValidationCode(d.Uvarint())
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("blockstore: block codec: %w", err)
	}
	return &b, nil
}
