package blockstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func fillFileStore(t *testing.T, s *FileStore, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		b, err := NewBlock(uint64(i), s.LastHash(), []Envelope{mkEnv(fmt.Sprintf("tx-%d", i), "set")})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(b); err != nil {
			t.Fatalf("Append block %d: %v", i, err)
		}
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Height() != 5 {
		t.Fatalf("reloaded height = %d, want 5", s2.Height())
	}
	if err := s2.VerifyChain(); err != nil {
		t.Errorf("reloaded chain: %v", err)
	}
	env, code, err := s2.GetTx("tx-3")
	if err != nil || code != TxValid || env.TxID != "tx-3" {
		t.Errorf("GetTx after reload = %v %v %v", env, code, err)
	}
	// Appending continues the chain.
	fillFileStore(t, s2, 5, 2)
	if s2.Height() != 7 {
		t.Errorf("height after continued appends = %d", s2.Height())
	}
}

func TestFileStoreDiscardsTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreLegacy(path, SyncOnClose)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial JSON line at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"header":{"number":3,"previo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	if s2.Height() != 3 {
		t.Fatalf("height after crash recovery = %d, want 3", s2.Height())
	}
	// New appends must produce a consistent file.
	fillFileStore(t, s2, 3, 1)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Height() != 4 {
		t.Errorf("final height = %d, want 4", s3.Height())
	}
}

func TestFileStoreRejectsTamperedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreLegacy(path, SyncOnClose)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tamper with a committed envelope on disk: the data hash breaks, so
	// reopening must fail the chain check.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(string(raw))
	replaced := false
	for i := range tampered {
		if string(tampered[i:i+8]) == `"tx-1"`+`,"` {
			copy(tampered[i:], []byte(`"tx-X"`))
			replaced = true
			break
		}
	}
	if !replaced {
		// Fallback: flip a byte inside the middle of the file.
		tampered[len(tampered)/2] ^= 0x01
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("tampered block file loaded without error")
	}
}

func TestFileStoreMidFileGarbageIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreLegacy(path, SyncOnClose)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage a line in the middle of the file so it no longer parses. A
	// crash cannot do this — only the final line can be torn — so the open
	// must refuse rather than silently truncate away the valid blocks that
	// follow the damage.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("expected >=4 lines, got %d", len(lines))
	}
	lines[1] = append([]byte(`{"header":#garbage#`), '\n')
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFileStore(path)
	if !errors.Is(err, ErrCorruptFile) {
		t.Fatalf("open over mid-file garbage: err = %v, want ErrCorruptFile", err)
	}
}

func TestFileStoreBlankLineIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreLegacy(path, SyncOnClose)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A blank final line cannot come from a torn append (appends write the
	// payload before the newline), so it must read as corruption too.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = OpenFileStore(path)
	if !errors.Is(err, ErrCorruptFile) {
		t.Fatalf("open over blank line: err = %v, want ErrCorruptFile", err)
	}
}

func TestFileStoreSyncEachAppendSurvivesNoFlushClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreWithPolicy(path, SyncEachAppend)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 3)
	// Simulate a process kill: no flush, no fsync. With SyncEachAppend
	// every block already reached the file, so nothing is lost.
	if err := s.CloseNoFlush(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Height() != 3 {
		t.Errorf("height after kill with SyncEachAppend = %d, want 3", s2.Height())
	}
}

func TestFileStoreSequenceStillEnforced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillFileStore(t, s, 0, 2)
	bad, err := NewBlock(7, s.LastHash(), []Envelope{mkEnv("bad", "set")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(bad); err == nil {
		t.Error("out-of-sequence append accepted")
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
}

func TestFileStoreTornNewlineKeepsDurableBlock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.jsonl")
	s, err := OpenFileStoreLegacy(path, SyncEachAppend)
	if err != nil {
		t.Fatal(err)
	}
	fillFileStore(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear exactly the final newline: the last block's bytes are all
	// durable, only the terminator is gone. The block must survive the
	// reopen (fsynced data is never dropped), the file must not grow a
	// junk byte, and future appends must land on their own lines.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen after torn newline: %v", err)
	}
	if s2.Height() != 3 {
		t.Fatalf("height after torn newline = %d, want 3", s2.Height())
	}
	fillFileStore(t, s2, 3, 2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer s3.Close()
	if s3.Height() != 5 {
		t.Errorf("final height = %d, want 5", s3.Height())
	}
	if err := s3.VerifyChain(); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
}
