package blockstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mkEnv(txID, fn string) Envelope {
	return Envelope{
		TxID:      txID,
		ChannelID: "provchannel",
		Chaincode: "hyperprov",
		Function:  fn,
		Args:      [][]byte{[]byte("key"), []byte("value")},
		Timestamp: time.Unix(1570000000, 0).UTC(),
	}
}

func mkChain(t *testing.T, nBlocks, txPerBlock int) *Store {
	t.Helper()
	s := NewStore()
	for i := 0; i < nBlocks; i++ {
		envs := make([]Envelope, txPerBlock)
		for j := range envs {
			envs[j] = mkEnv(fmt.Sprintf("tx-%d-%d", i, j), "set")
		}
		b, err := NewBlock(uint64(i), s.LastHash(), envs)
		if err != nil {
			t.Fatalf("NewBlock: %v", err)
		}
		b.TxValidation = make([]ValidationCode, txPerBlock)
		for j := range b.TxValidation {
			b.TxValidation[j] = TxValid
		}
		if err := s.Append(b); err != nil {
			t.Fatalf("Append block %d: %v", i, err)
		}
	}
	return s
}

func TestAppendAndRetrieve(t *testing.T) {
	s := mkChain(t, 5, 3)
	if got := s.Height(); got != 5 {
		t.Fatalf("Height = %d, want 5", got)
	}
	b2, err := s.GetByNumber(2)
	if err != nil {
		t.Fatalf("GetByNumber(2): %v", err)
	}
	if b2.Header.Number != 2 || len(b2.Envelopes) != 3 {
		t.Errorf("block 2 = number %d, %d envs", b2.Header.Number, len(b2.Envelopes))
	}
	byHash, err := s.GetByHash(b2.Header.Hash())
	if err != nil {
		t.Fatalf("GetByHash: %v", err)
	}
	if byHash.Header.Number != 2 {
		t.Errorf("GetByHash number = %d, want 2", byHash.Header.Number)
	}
	if _, err := s.GetByNumber(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetByNumber(99) err = %v, want ErrNotFound", err)
	}
	if _, err := s.GetByHash([]byte{1, 2}); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetByHash(bogus) err = %v, want ErrNotFound", err)
	}
}

func TestGetTx(t *testing.T) {
	s := mkChain(t, 3, 2)
	env, code, err := s.GetTx("tx-1-1")
	if err != nil {
		t.Fatalf("GetTx: %v", err)
	}
	if env.TxID != "tx-1-1" || code != TxValid {
		t.Errorf("GetTx = %q code %v", env.TxID, code)
	}
	if _, _, err := s.GetTx("nope"); !errors.Is(err, ErrTxNotFound) {
		t.Errorf("GetTx(nope) err = %v, want ErrTxNotFound", err)
	}
}

func TestSequenceEnforced(t *testing.T) {
	s := mkChain(t, 2, 1)
	b, err := NewBlock(5, s.LastHash(), []Envelope{mkEnv("t", "set")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(b); !errors.Is(err, ErrWrongSequence) {
		t.Errorf("out-of-sequence append err = %v, want ErrWrongSequence", err)
	}
}

func TestChainLinkageEnforced(t *testing.T) {
	s := mkChain(t, 2, 1)
	b, err := NewBlock(2, []byte("wrong previous hash"), []Envelope{mkEnv("t", "set")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(b); !errors.Is(err, ErrBrokenChain) {
		t.Errorf("bad-linkage append err = %v, want ErrBrokenChain", err)
	}
}

func TestTamperDetection(t *testing.T) {
	s := mkChain(t, 4, 2)
	if err := s.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain clean: %v", err)
	}
	// Tamper with a committed envelope in place: the block's data hash no
	// longer matches, so the audit must fail.
	b, err := s.GetByNumber(1)
	if err != nil {
		t.Fatal(err)
	}
	b.Envelopes[0].Args[1] = []byte("evil payload")
	if err := s.VerifyChain(); err == nil {
		t.Fatal("VerifyChain passed after tamper, want failure")
	}
}

func TestDataHashRejectsModifiedBlock(t *testing.T) {
	b, err := NewBlock(0, nil, []Envelope{mkEnv("a", "set"), mkEnv("b", "get")})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyData(); err != nil {
		t.Fatalf("VerifyData clean: %v", err)
	}
	b.Envelopes[1].Function = "tampered"
	if err := b.VerifyData(); err == nil {
		t.Fatal("VerifyData passed after tamper")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	e := mkEnv("tx9", "set")
	e.Signature = []byte{9, 9}
	raw, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.TxID != e.TxID || got.Function != e.Function || !got.Timestamp.Equal(e.Timestamp) {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := UnmarshalEnvelope([]byte("garbage")); err == nil {
		t.Error("UnmarshalEnvelope(garbage) succeeded")
	}
}

func TestSignedBytesExcludesSignature(t *testing.T) {
	e := mkEnv("tx1", "set")
	before := e.SignedBytes()
	e.Signature = []byte("sig")
	after := e.SignedBytes()
	if !bytes.Equal(before, after) {
		t.Error("SignedBytes depends on the signature field")
	}
	e.Function = "other"
	if bytes.Equal(before, e.SignedBytes()) {
		t.Error("SignedBytes ignores envelope content")
	}
}

func TestBlocksFrom(t *testing.T) {
	s := mkChain(t, 5, 1)
	got := s.BlocksFrom(3)
	if len(got) != 2 || got[0].Header.Number != 3 || got[1].Header.Number != 4 {
		t.Errorf("BlocksFrom(3) = %d blocks", len(got))
	}
	if got := s.BlocksFrom(99); got != nil {
		t.Errorf("BlocksFrom(99) = %v, want nil", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b, err := NewBlock(0, nil, []Envelope{mkEnv("a", "set")})
	if err != nil {
		t.Fatal(err)
	}
	cp := b.Clone()
	cp.Envelopes[0].Function = "mutated"
	if b.Envelopes[0].Function == "mutated" {
		t.Error("Clone shares envelope storage")
	}
}

func TestValidationCodeString(t *testing.T) {
	if TxValid.String() != "VALID" || TxMVCCConflict.String() != "MVCC_READ_CONFLICT" {
		t.Error("unexpected ValidationCode strings")
	}
	if ValidationCode(42).String() != "code(42)" {
		t.Error("unknown code string")
	}
}

// Property: chains built from random blocks always verify, and flipping any
// single byte of any envelope arg breaks verification.
func TestQuickChainIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		n := rng.Intn(6) + 2
		for i := 0; i < n; i++ {
			txs := rng.Intn(3) + 1
			envs := make([]Envelope, txs)
			for j := range envs {
				payload := make([]byte, rng.Intn(64)+1)
				rng.Read(payload)
				envs[j] = Envelope{
					TxID:     fmt.Sprintf("tx-%d-%d-%d", seed, i, j),
					Function: "set",
					Args:     [][]byte{payload},
				}
			}
			b, err := NewBlock(uint64(i), s.LastHash(), envs)
			if err != nil {
				return false
			}
			if err := s.Append(b); err != nil {
				return false
			}
		}
		if err := s.VerifyChain(); err != nil {
			return false
		}
		// Tamper one random byte.
		bn := uint64(rng.Intn(n))
		blk, err := s.GetByNumber(bn)
		if err != nil {
			return false
		}
		env := &blk.Envelopes[rng.Intn(len(blk.Envelopes))]
		env.Args[0][rng.Intn(len(env.Args[0]))] ^= 0xFF
		return s.VerifyChain() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
