// Package blockstore defines the block and transaction envelope structures
// and an append-only, hash-chained block store — the tamper-proof ledger
// that gives HyperProv its integrity guarantees. Block headers chain by
// SHA-256 exactly as in Fabric: each header carries the hash of the previous
// header and a hash over the block's transaction data.
package blockstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"
)

// ValidationCode records the per-transaction outcome decided at commit time.
type ValidationCode int

// Validation outcomes, mirroring Fabric's TxValidationCode.
const (
	TxValid ValidationCode = iota + 1
	TxMVCCConflict
	TxEndorsementPolicyFailure
	TxBadSignature
	TxMalformed
)

// String returns a short human-readable form of the validation code.
func (c ValidationCode) String() string {
	switch c {
	case TxValid:
		return "VALID"
	case TxMVCCConflict:
		return "MVCC_READ_CONFLICT"
	case TxEndorsementPolicyFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case TxBadSignature:
		return "BAD_SIGNATURE"
	case TxMalformed:
		return "MALFORMED"
	default:
		return fmt.Sprintf("code(%d)", int(c))
	}
}

// Endorsement is one peer's signature over a proposal response payload.
type Endorsement struct {
	Endorser  []byte `json:"endorser"`  // serialized identity of the endorsing peer
	Signature []byte `json:"signature"` // over the response payload
}

// Envelope is a client-signed transaction as submitted to ordering: the
// proposal, the simulated read/write set, and the collected endorsements.
type Envelope struct {
	TxID         string        `json:"txId"`
	ChannelID    string        `json:"channelId"`
	Chaincode    string        `json:"chaincode"`
	Function     string        `json:"function"`
	Args         [][]byte      `json:"args,omitempty"`
	Creator      []byte        `json:"creator"` // serialized identity of submitting client
	Timestamp    time.Time     `json:"timestamp"`
	RWSet        []byte        `json:"rwset"` // marshaled rwset.ReadWriteSet
	Response     []byte        `json:"response,omitempty"`
	Events       []byte        `json:"events,omitempty"` // marshaled chaincode events
	Endorsements []Endorsement `json:"endorsements,omitempty"`
	Signature    []byte        `json:"signature"` // client signature over SignedBytes
}

// SignedBytes returns the deterministic byte string the client signs and
// validators verify. The signature field itself is excluded.
func (e *Envelope) SignedBytes() []byte {
	cp := *e
	cp.Signature = nil
	b, _ := json.Marshal(&cp)
	return b
}

// Marshal encodes the envelope for transport and block inclusion.
func (e *Envelope) Marshal() ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("blockstore: marshal envelope: %w", err)
	}
	return b, nil
}

// UnmarshalEnvelope decodes an envelope produced by Marshal.
func UnmarshalEnvelope(b []byte) (*Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, fmt.Errorf("blockstore: unmarshal envelope: %w", err)
	}
	return &e, nil
}

// Header is a block header; headers form the hash chain.
type Header struct {
	Number       uint64 `json:"number"`
	PreviousHash []byte `json:"previousHash"`
	DataHash     []byte `json:"dataHash"`
}

// Hash returns the SHA-256 hash of the header, which the next block's
// PreviousHash must equal.
func (h *Header) Hash() []byte {
	b, _ := json.Marshal(h)
	sum := sha256.Sum256(b)
	return sum[:]
}

// Block is an ordered batch of envelopes plus per-transaction validation
// flags filled in by the committing peer.
type Block struct {
	Header    Header     `json:"header"`
	Envelopes []Envelope `json:"envelopes"`
	// TxValidation is parallel to Envelopes; zero until the peer validates.
	TxValidation []ValidationCode `json:"txValidation,omitempty"`
}

// ComputeDataHash hashes the block's transaction data: a SHA-256 over the
// concatenated per-envelope hashes (a flat Merkle summary).
func ComputeDataHash(envs []Envelope) ([]byte, error) {
	h := sha256.New()
	for i := range envs {
		eb, err := envs[i].Marshal()
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(eb)
		h.Write(sum[:])
	}
	return h.Sum(nil), nil
}

// NewBlock assembles a block with the correct data hash, chained onto
// prevHash.
func NewBlock(number uint64, prevHash []byte, envs []Envelope) (*Block, error) {
	dh, err := ComputeDataHash(envs)
	if err != nil {
		return nil, err
	}
	return &Block{
		Header:    Header{Number: number, PreviousHash: prevHash, DataHash: dh},
		Envelopes: envs,
	}, nil
}

// VerifyData checks the block's data hash against its contents.
func (b *Block) VerifyData() error {
	dh, err := ComputeDataHash(b.Envelopes)
	if err != nil {
		return err
	}
	if hex.EncodeToString(dh) != hex.EncodeToString(b.Header.DataHash) {
		return fmt.Errorf("blockstore: block %d data hash mismatch", b.Header.Number)
	}
	return nil
}

// Clone returns a deep copy of the block (envelopes share no mutable state
// with the original); peers clone before annotating validation flags.
func (b *Block) Clone() *Block {
	raw, _ := json.Marshal(b)
	var cp Block
	_ = json.Unmarshal(raw, &cp)
	return &cp
}
