// Package blockstore defines the block and transaction envelope structures
// and an append-only, hash-chained block store — the tamper-proof ledger
// that gives HyperProv its integrity guarantees. Block headers chain by
// SHA-256 exactly as in Fabric: each header carries the hash of the previous
// header and a hash over the block's transaction data.
package blockstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"github.com/hyperprov/hyperprov/internal/codec"
)

// ValidationCode records the per-transaction outcome decided at commit time.
type ValidationCode int

// Validation outcomes, mirroring Fabric's TxValidationCode.
const (
	TxValid ValidationCode = iota + 1
	TxMVCCConflict
	TxEndorsementPolicyFailure
	TxBadSignature
	TxMalformed
)

// String returns a short human-readable form of the validation code.
func (c ValidationCode) String() string {
	switch c {
	case TxValid:
		return "VALID"
	case TxMVCCConflict:
		return "MVCC_READ_CONFLICT"
	case TxEndorsementPolicyFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case TxBadSignature:
		return "BAD_SIGNATURE"
	case TxMalformed:
		return "MALFORMED"
	default:
		return fmt.Sprintf("code(%d)", int(c))
	}
}

// Endorsement is one peer's signature over a proposal response payload.
type Endorsement struct {
	Endorser  []byte `json:"endorser"`  // serialized identity of the endorsing peer
	Signature []byte `json:"signature"` // over the response payload
}

// Envelope is a client-signed transaction as submitted to ordering: the
// proposal, the simulated read/write set, and the collected endorsements.
//
// An envelope is immutable once encoded or decoded: bin caches the
// canonical binary encoding (produced exactly once per envelope per block)
// and every downstream consumer — signing preimage, data hash, gossip
// frame, ledger append — reuses those bytes instead of re-encoding.
type Envelope struct {
	TxID         string        `json:"txId"`
	ChannelID    string        `json:"channelId"`
	Chaincode    string        `json:"chaincode"`
	Function     string        `json:"function"`
	Args         [][]byte      `json:"args,omitempty"`
	Creator      []byte        `json:"creator"` // serialized identity of submitting client
	Timestamp    time.Time     `json:"timestamp"`
	RWSet        []byte        `json:"rwset"` // marshaled rwset.ReadWriteSet
	Response     []byte        `json:"response,omitempty"`
	Events       []byte        `json:"events,omitempty"` // marshaled chaincode events
	Endorsements []Endorsement `json:"endorsements,omitempty"`
	Signature    []byte        `json:"signature"` // client signature over SignedBytes

	// bin is the cached canonical encoding (appendEnvelope layout); sigOff
	// is the length of its signing-preimage prefix. Populated only by code
	// that exclusively owns the envelope (NewBlock, decode, legacy ingest),
	// never lazily on shared envelopes — that keeps concurrent readers
	// race-free.
	bin    []byte
	sigOff int
}

// SignedBytes returns the deterministic byte string the client signs and
// validators verify: the canonical binary encoding of every field except
// the signature. When the envelope carries its cached encoding the prefix
// is returned directly; otherwise the preimage is encoded fresh without
// mutating the envelope.
func (e *Envelope) SignedBytes() []byte {
	if e.bin != nil {
		return e.bin[:e.sigOff:e.sigOff]
	}
	return appendEnvelopeCore(nil, e)
}

// Marshal returns the envelope's canonical binary encoding for transport
// and block inclusion, reusing the cached bytes when present. Callers must
// not mutate the returned slice.
func (e *Envelope) Marshal() ([]byte, error) {
	if e.bin != nil {
		return e.bin, nil
	}
	return appendEnvelope(nil, e), nil
}

// Seal caches the envelope's canonical encoding on the envelope and
// returns its size in bytes. The caller must exclusively own the envelope
// and must not mutate its fields afterwards; downstream consumers (block
// data hashing, ledger append, gossip frames) reuse the sealed bytes
// instead of re-encoding. Sealing an already-sealed envelope is a no-op.
func (e *Envelope) Seal() int {
	e.ensureBin()
	return len(e.bin)
}

// EncodedLen returns the length of the envelope's cached canonical encoding
// and true, or (0, false) when the envelope was never sealed or decoded. It
// never encodes and never mutates, so unlike Seal it is safe to call on an
// envelope shared between goroutines.
func (e *Envelope) EncodedLen() (int, bool) {
	if e.bin == nil {
		return 0, false
	}
	return len(e.bin), true
}

// ensureBin caches e's canonical encoding. Callers must exclusively own
// the envelope and must not mutate its fields afterwards.
func (e *Envelope) ensureBin() {
	if e.bin != nil {
		return
	}
	core := appendEnvelopeCore(nil, e)
	e.sigOff = len(core)
	e.bin = codec.AppendBytes(core, e.Signature)
}

// UnmarshalEnvelope decodes an envelope produced by Marshal. Legacy JSON
// envelopes (PR ≤ 9 wire/ledger format) are recognized by their '{' first
// byte and ingested transparently: timestamps are normalized to the
// codec's UTC wall-clock form and the canonical binary encoding is cached
// eagerly, so a legacy envelope behaves identically from then on.
func UnmarshalEnvelope(b []byte) (*Envelope, error) {
	if len(b) > 0 && b[0] == '{' {
		var e Envelope
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("blockstore: unmarshal envelope: %w", err)
		}
		e.normalizeLegacy()
		return &e, nil
	}
	e, err := decodeEnvelope(b)
	if err != nil {
		return nil, err
	}
	return &e, nil
}

// normalizeLegacy maps a JSON-decoded envelope onto the exact value its
// binary encoding round-trips to and caches that encoding. Only legacy
// ingest paths (JSON ledger open, JSON envelope decode) call it, always on
// freshly-decoded envelopes they own.
func (e *Envelope) normalizeLegacy() {
	e.Timestamp = codec.NormalizeTime(e.Timestamp)
	e.ensureBin()
}

// Header is a block header; headers form the hash chain.
type Header struct {
	Number       uint64 `json:"number"`
	PreviousHash []byte `json:"previousHash"`
	DataHash     []byte `json:"dataHash"`
}

// Hash returns the SHA-256 hash of the header's canonical binary preimage,
// which the next block's PreviousHash must equal.
func (h *Header) Hash() []byte {
	var arr [96]byte
	buf := append(arr[:0], headerMagic...)
	buf = append(buf, codecVersion)
	buf = codec.AppendUvarint(buf, h.Number)
	buf = codec.AppendBytes(buf, h.PreviousHash)
	buf = codec.AppendBytes(buf, h.DataHash)
	sum := sha256.Sum256(buf)
	return sum[:]
}

// Block is an ordered batch of envelopes plus per-transaction validation
// flags filled in by the committing peer.
type Block struct {
	Header    Header     `json:"header"`
	Envelopes []Envelope `json:"envelopes"`
	// TxValidation is parallel to Envelopes; zero until the peer validates.
	TxValidation []ValidationCode `json:"txValidation,omitempty"`
}

// ComputeDataHash hashes the block's transaction data: a SHA-256 over the
// concatenated per-envelope hashes (a flat Merkle summary). Each envelope
// hash covers its canonical binary encoding, re-encoded from the struct
// fields into pooled scratch — deliberately ignoring any cached encoding,
// so the integrity audit (VerifyData/VerifyChain) detects in-memory
// tampering with a decoded block's fields.
func ComputeDataHash(envs []Envelope) ([]byte, error) {
	h := sha256.New()
	scratch := codec.GetBuffer()
	for i := range envs {
		scratch.B = appendEnvelope(scratch.B[:0], &envs[i])
		sum := sha256.Sum256(scratch.B)
		h.Write(sum[:])
	}
	scratch.Release()
	return h.Sum(nil), nil
}

// NewBlock assembles a block with the correct data hash, chained onto
// prevHash. It takes ownership of envs: each envelope's canonical encoding
// is computed here, exactly once, and the same bytes feed the data hash
// now and the gossip/ledger paths later — callers must not mutate the
// envelopes afterwards.
func NewBlock(number uint64, prevHash []byte, envs []Envelope) (*Block, error) {
	h := sha256.New()
	for i := range envs {
		envs[i].ensureBin()
		sum := sha256.Sum256(envs[i].bin)
		h.Write(sum[:])
	}
	return &Block{
		Header:    Header{Number: number, PreviousHash: prevHash, DataHash: h.Sum(nil)},
		Envelopes: envs,
	}, nil
}

// VerifyData checks the block's data hash against its contents.
func (b *Block) VerifyData() error {
	dh, err := ComputeDataHash(b.Envelopes)
	if err != nil {
		return err
	}
	if hex.EncodeToString(dh) != hex.EncodeToString(b.Header.DataHash) {
		return fmt.Errorf("blockstore: block %d data hash mismatch", b.Header.Number)
	}
	return nil
}

// Clone returns a deep copy of the block (envelopes share no mutable state
// with the original); peers clone before annotating validation flags. The
// copy travels through the canonical binary encoding, so cloned envelopes
// come back with their encodings cached — the commit pipeline's persist
// and gossip stages reuse those bytes directly.
func (b *Block) Clone() *Block {
	cp, err := UnmarshalBlock(MarshalBlock(b))
	if err != nil {
		// Encoding a well-formed in-memory block and decoding it back
		// cannot fail; reaching this is memory corruption, not input error.
		panic(fmt.Sprintf("blockstore: clone round-trip: %v", err))
	}
	return cp
}
