package blockstore

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the store.
var (
	ErrNotFound      = errors.New("blockstore: block not found")
	ErrTxNotFound    = errors.New("blockstore: transaction not found")
	ErrBrokenChain   = errors.New("blockstore: hash chain broken")
	ErrWrongSequence = errors.New("blockstore: block number out of sequence")
)

// TxLocator points at a transaction inside the chain.
type TxLocator struct {
	BlockNum uint64
	TxNum    int
	Code     ValidationCode
}

// BlockStore is the ledger interface the committer and peer depend on. The
// in-memory Store and the durable FileStore both implement it, which is the
// seam that lets a peer run either volatile (tests, modeled networks) or
// with its ledger copy on device storage (the paper's edge deployments).
type BlockStore interface {
	// Append validates sequence, linkage, and data hash, then appends.
	Append(b *Block) error
	// Height returns the number of blocks in the chain.
	Height() uint64
	// LastHash returns the latest header hash (nil for an empty chain).
	LastHash() []byte
	// GetByNumber returns the block with the given number.
	GetByNumber(n uint64) (*Block, error)
	// GetByHash returns the block with the given header hash.
	GetByHash(h []byte) (*Block, error)
	// GetTx returns the envelope and validation code for a transaction id.
	GetTx(txID string) (*Envelope, ValidationCode, error)
	// Locate returns where a transaction committed.
	Locate(txID string) (TxLocator, bool)
	// VerifyChain audits the whole chain.
	VerifyChain() error
	// BlocksFrom returns all blocks with number >= from.
	BlocksFrom(from uint64) []*Block
}

// Compile-time interface checks.
var (
	_ BlockStore = (*Store)(nil)
	_ BlockStore = (*FileStore)(nil)
)

// Store is an append-only, hash-chained block store for one channel.
type Store struct {
	mu     sync.RWMutex
	blocks []*Block
	byHash map[string]uint64    // header hash -> block number
	byTxID map[string]TxLocator // txid -> location
}

// NewStore creates an empty block store.
func NewStore() *Store {
	return &Store{
		byHash: make(map[string]uint64),
		byTxID: make(map[string]TxLocator),
	}
}

// Append validates sequence and chain linkage, then appends the block.
// The block is expected to already carry validation flags.
func (s *Store) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	want := uint64(len(s.blocks))
	if b.Header.Number != want {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongSequence, b.Header.Number, want)
	}
	if want > 0 {
		prev := s.blocks[want-1].Header.Hash()
		if !bytes.Equal(b.Header.PreviousHash, prev) {
			return fmt.Errorf("%w: block %d previous hash mismatch", ErrBrokenChain, b.Header.Number)
		}
	}
	if err := b.VerifyData(); err != nil {
		return err
	}
	s.blocks = append(s.blocks, b)
	s.byHash[hex.EncodeToString(b.Header.Hash())] = b.Header.Number
	for i := range b.Envelopes {
		code := TxValid
		if i < len(b.TxValidation) {
			code = b.TxValidation[i]
		}
		s.byTxID[b.Envelopes[i].TxID] = TxLocator{BlockNum: b.Header.Number, TxNum: i, Code: code}
	}
	return nil
}

// Height returns the number of blocks in the chain.
func (s *Store) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.blocks))
}

// LastHash returns the hash of the latest block header, or nil for an empty
// chain (the genesis block links to nil).
func (s *Store) LastHash() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[len(s.blocks)-1].Header.Hash()
}

// GetByNumber returns the block with the given number.
func (s *Store) GetByNumber(n uint64) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n >= uint64(len(s.blocks)) {
		return nil, fmt.Errorf("%w: number %d (height %d)", ErrNotFound, n, len(s.blocks))
	}
	return s.blocks[n], nil
}

// GetByHash returns the block with the given header hash.
func (s *Store) GetByHash(hash []byte) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.byHash[hex.EncodeToString(hash)]
	if !ok {
		return nil, fmt.Errorf("%w: hash %x", ErrNotFound, hash)
	}
	return s.blocks[n], nil
}

// Locate returns where a transaction committed (block number, index, and
// validation code) without materializing the envelope. The peer uses it to
// answer listener registrations for transactions that already committed.
func (s *Store) Locate(txID string) (TxLocator, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.byTxID[txID]
	return loc, ok
}

// GetTx returns the envelope and validation code for a transaction id. This
// backs HyperProv's CheckTxn operator.
func (s *Store) GetTx(txID string) (*Envelope, ValidationCode, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.byTxID[txID]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrTxNotFound, txID)
	}
	return &s.blocks[loc.BlockNum].Envelopes[loc.TxNum], loc.Code, nil
}

// VerifyChain re-checks the whole hash chain and every block's data hash.
// This is the ledger-integrity audit HyperProv exposes.
func (s *Store) VerifyChain() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var prev []byte
	for i, b := range s.blocks {
		if b.Header.Number != uint64(i) {
			return fmt.Errorf("%w: block %d has number %d", ErrWrongSequence, i, b.Header.Number)
		}
		if i > 0 && !bytes.Equal(b.Header.PreviousHash, prev) {
			return fmt.Errorf("%w: at block %d", ErrBrokenChain, i)
		}
		if err := b.VerifyData(); err != nil {
			return err
		}
		prev = b.Header.Hash()
	}
	return nil
}

// BlocksFrom returns all blocks with number >= from, for catch-up delivery
// to peers that fell behind (e.g. after a partition heals).
func (s *Store) BlocksFrom(from uint64) []*Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if from >= uint64(len(s.blocks)) {
		return nil
	}
	out := make([]*Block, len(s.blocks)-int(from))
	copy(out, s.blocks[from:])
	return out
}
