package blockstore

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"github.com/hyperprov/hyperprov/internal/codec"
)

// structuredCodecError reports whether err is one of the codec sentinels —
// the only failures the block and envelope decoders are allowed to return
// for arbitrary input.
func structuredCodecError(err error) bool {
	return errors.Is(err, codec.ErrTruncated) ||
		errors.Is(err, codec.ErrMalformed) ||
		errors.Is(err, codec.ErrChecksum)
}

// FuzzDecodeBlockCodec throws arbitrary bytes at the binary block and
// envelope decoders — the exact bytes that arrive over gossip/transport
// frames and from v2 ledger files. The contract under hostile input: no
// panic, no unbounded allocation, every failure a structured codec sentinel
// (so the transport can drop the connection and the file store can
// distinguish torn tails from corruption) — and every accepted input
// re-encodes and re-decodes to an identical value.
func FuzzDecodeBlockCodec(f *testing.F) {
	empty, err := NewBlock(0, nil, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(MarshalBlock(empty))

	full, err := NewBlock(7, []byte("prev-hash"),
		[]Envelope{fullEnvelope("tx-a"), fullEnvelope("tx-b")})
	if err != nil {
		f.Fatal(err)
	}
	full.TxValidation = []ValidationCode{TxValid, TxMVCCConflict}
	good := MarshalBlock(full)
	f.Add(good)

	// Damaged variants: flipped byte (CRC catches), truncation at several
	// depths, bad magic, stray tail, bare magic, junk.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(good[:len(good)-3])
	f.Add(good[:len(good)/2])
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	f.Add(badMagic)
	f.Add(append(append([]byte(nil), good...), 0x00))
	f.Add([]byte("HPBK"))
	f.Add([]byte("HPEV"))
	f.Add([]byte{})

	// Legacy JSON ledger records (PR ≤ 9 wire/file format): a whole block
	// line and a lone envelope. The binary block decoder must reject both
	// structurally; the envelope decoder's '{' sniff path ingests the latter.
	legacyBlock, err := json.Marshal(full)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(legacyBlock)
	env := fullEnvelope("tx-legacy")
	legacyEnv, err := json.Marshal(&env)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(legacyEnv)

	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := UnmarshalBlock(data); err != nil {
			if !structuredCodecError(err) {
				t.Fatalf("unstructured error from UnmarshalBlock: %v", err)
			}
		} else {
			rt, err := UnmarshalBlock(MarshalBlock(b))
			if err != nil {
				t.Fatalf("re-decode of re-encoded block failed: %v", err)
			}
			if !reflect.DeepEqual(b, rt) {
				t.Fatalf("block round-trip mismatch:\n got %#v\nwant %#v", rt, b)
			}
		}

		// The envelope decoder under the same bytes. The '{' sniff path is
		// legacy JSON ingest whose errors come from encoding/json, so the
		// structured-sentinel contract applies to binary input only.
		if len(data) > 0 && data[0] == '{' {
			return
		}
		e, err := UnmarshalEnvelope(data)
		if err != nil {
			if !structuredCodecError(err) {
				t.Fatalf("unstructured error from UnmarshalEnvelope: %v", err)
			}
			return
		}
		raw, err := e.Marshal()
		if err != nil {
			t.Fatalf("re-encode of accepted envelope failed: %v", err)
		}
		rt, err := UnmarshalEnvelope(raw)
		if err != nil {
			t.Fatalf("re-decode of re-encoded envelope failed: %v", err)
		}
		if !reflect.DeepEqual(e, rt) {
			t.Fatalf("envelope round-trip mismatch:\n got %#v\nwant %#v", rt, e)
		}
	})
}
