package blockstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrCorruptFile is returned when the block file is damaged in a way a
// crash cannot explain: an unparseable line with more data after it, or a
// parseable block that breaks the hash chain. A crash during append can only
// tear the final line; anything else is bit rot or tampering and must not be
// silently truncated away.
var ErrCorruptFile = errors.New("blockstore: block file corrupt")

// SyncPolicy selects when the FileStore forces appended blocks to stable
// storage (fsync).
type SyncPolicy int

const (
	// SyncOnClose flushes the userspace buffer on every append but fsyncs
	// only on explicit Sync and on Close. An OS crash can lose the most
	// recent blocks; a process crash cannot. This is the throughput-friendly
	// default for modeled networks and tests.
	SyncOnClose SyncPolicy = iota
	// SyncEachAppend fsyncs after every appended block, bounding loss on
	// power failure to the block being written — the policy for durable
	// edge peers, where pulling the plug is a routine event.
	SyncEachAppend
)

// FileStore is a block store backed by an append-only file of JSON-encoded
// blocks (one per line), giving a peer's ledger copy durability across
// restarts — the role of Fabric's block files on each peer's disk.
type FileStore struct {
	mu     sync.Mutex
	mem    *Store
	f      *os.File
	w      *bufio.Writer
	path   string
	policy SyncPolicy
}

// OpenFileStore opens (or creates) the block file at path with the default
// SyncOnClose policy. See OpenFileStoreWithPolicy.
func OpenFileStore(path string) (*FileStore, error) {
	return OpenFileStoreWithPolicy(path, SyncOnClose)
}

// OpenFileStoreWithPolicy opens (or creates) the block file at path and
// loads all existing blocks, re-verifying the hash chain as it goes. A
// truncated final line (crash during append) is discarded so the store
// recovers to the last durable block; a damaged line anywhere before the
// final one — or a final line that parses but breaks the chain — is
// corruption and fails the open with ErrCorruptFile.
func OpenFileStoreWithPolicy(path string, policy SyncPolicy) (*FileStore, error) {
	mem := NewStore()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockstore: open %s: %w", path, err)
	}
	// The store mirrors every block in memory anyway, so loading the raw
	// bytes up front costs nothing extra and gives exact byte offsets —
	// Truncate below must never extend the file (a crash that tears only
	// the final newline would otherwise grow it by a junk byte).
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: read %s: %w", path, err)
	}
	validBytes := int64(0) // bytes of fully terminated, committed lines
	needNewline := false   // last line was valid but its newline was torn
	for off := 0; off < len(raw); {
		line := raw[off:]
		terminated := false
		if i := bytes.IndexByte(line, '\n'); i >= 0 {
			line, terminated = line[:i], true
		}
		var b Block
		if err := json.Unmarshal(line, &b); err != nil {
			// Only a torn final line (crash mid-append) may fail to parse.
			// Anything after it — or a blank line, which appends never
			// produce — means a damaged middle line: truncating would
			// silently discard the valid blocks that follow.
			if terminated || len(line) == 0 {
				f.Close()
				return nil, fmt.Errorf("%w: %s: unparseable line after %d blocks",
					ErrCorruptFile, path, mem.Height())
			}
			break // torn tail: keep the valid prefix
		}
		if err := mem.Append(&b); err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: %s at block %d: %v",
				ErrCorruptFile, path, b.Header.Number, err)
		}
		if terminated {
			off += len(line) + 1
		} else {
			// The block is durable but the crash tore its newline; keep it
			// and re-terminate the line before any future append.
			off += len(line)
			needNewline = true
		}
		validBytes = int64(off)
	}
	// Drop any trailing partial line so future appends start clean.
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(validBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: seek %s: %w", path, err)
	}
	s := &FileStore{mem: mem, f: f, w: bufio.NewWriter(f), path: path, policy: policy}
	if needNewline {
		if err := s.w.WriteByte('\n'); err != nil {
			f.Close()
			return nil, fmt.Errorf("blockstore: reterminate %s: %w", path, err)
		}
		if err := s.w.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("blockstore: reterminate %s: %w", path, err)
		}
	}
	return s, nil
}

// Append validates and appends the block, then persists it according to the
// store's sync policy.
func (s *FileStore) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mem.Append(b); err != nil {
		return err
	}
	line, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("blockstore: marshal block %d: %w", b.Header.Number, err)
	}
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("blockstore: append %s: %w", s.path, err)
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("blockstore: append %s: %w", s.path, err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("blockstore: flush %s: %w", s.path, err)
	}
	if s.policy == SyncEachAppend {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("blockstore: sync %s: %w", s.path, err)
		}
	}
	return nil
}

// Sync flushes buffered writes to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes, fsyncs, and closes the block file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// CloseNoFlush closes the file descriptor without the final flush or
// fsync — the programmatic stand-in for a process kill, used by
// crash-recovery tests and the recovery demo. Because Append flushes each
// line to the OS, nothing is lost in-process; what this models is dying
// without the clean-shutdown work (no final checkpoint, no fsync of OS
// caches). Tests emulate the physical-loss half — a torn final append —
// by truncating the file afterwards.
func (s *FileStore) CloseNoFlush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Height returns the number of persisted blocks.
func (s *FileStore) Height() uint64 { return s.mem.Height() }

// LastHash returns the latest header hash.
func (s *FileStore) LastHash() []byte { return s.mem.LastHash() }

// GetByNumber returns the block with the given number.
func (s *FileStore) GetByNumber(n uint64) (*Block, error) { return s.mem.GetByNumber(n) }

// GetByHash returns the block with the given header hash.
func (s *FileStore) GetByHash(h []byte) (*Block, error) { return s.mem.GetByHash(h) }

// GetTx returns the envelope and validation code for a transaction id.
func (s *FileStore) GetTx(txID string) (*Envelope, ValidationCode, error) { return s.mem.GetTx(txID) }

// Locate returns where a transaction committed.
func (s *FileStore) Locate(txID string) (TxLocator, bool) { return s.mem.Locate(txID) }

// VerifyChain audits the whole persisted chain.
func (s *FileStore) VerifyChain() error { return s.mem.VerifyChain() }

// BlocksFrom returns all blocks with number >= from.
func (s *FileStore) BlocksFrom(from uint64) []*Block { return s.mem.BlocksFrom(from) }
