package blockstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// FileStore is a block store backed by an append-only file of JSON-encoded
// blocks (one per line), giving a peer's ledger copy durability across
// restarts — the role of Fabric's block files on each peer's disk.
type FileStore struct {
	mu   sync.Mutex
	mem  *Store
	f    *os.File
	w    *bufio.Writer
	path string
}

// OpenFileStore opens (or creates) the block file at path and loads all
// existing blocks, re-verifying the hash chain as it goes. A truncated
// final line (crash during append) is discarded.
func OpenFileStore(path string) (*FileStore, error) {
	mem := NewStore()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockstore: open %s: %w", path, err)
	}
	validBytes := int64(0)
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1<<20), 128<<20)
	for scanner.Scan() {
		line := scanner.Bytes()
		var b Block
		if err := json.Unmarshal(line, &b); err != nil {
			break // truncated or corrupt tail: keep the valid prefix
		}
		if err := mem.Append(&b); err != nil {
			f.Close()
			return nil, fmt.Errorf("blockstore: %s corrupt at block %d: %w",
				path, b.Header.Number, err)
		}
		validBytes += int64(len(line)) + 1
	}
	if err := scanner.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: scan %s: %w", path, err)
	}
	// Drop any trailing partial line so future appends start clean.
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(validBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: seek %s: %w", path, err)
	}
	return &FileStore{mem: mem, f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Append validates and appends the block, then persists it.
func (s *FileStore) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mem.Append(b); err != nil {
		return err
	}
	line, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("blockstore: marshal block %d: %w", b.Header.Number, err)
	}
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("blockstore: append %s: %w", s.path, err)
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("blockstore: append %s: %w", s.path, err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("blockstore: flush %s: %w", s.path, err)
	}
	return nil
}

// Sync flushes buffered writes to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes and closes the block file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Height returns the number of persisted blocks.
func (s *FileStore) Height() uint64 { return s.mem.Height() }

// LastHash returns the latest header hash.
func (s *FileStore) LastHash() []byte { return s.mem.LastHash() }

// GetByNumber returns the block with the given number.
func (s *FileStore) GetByNumber(n uint64) (*Block, error) { return s.mem.GetByNumber(n) }

// GetByHash returns the block with the given header hash.
func (s *FileStore) GetByHash(h []byte) (*Block, error) { return s.mem.GetByHash(h) }

// GetTx returns the envelope and validation code for a transaction id.
func (s *FileStore) GetTx(txID string) (*Envelope, ValidationCode, error) { return s.mem.GetTx(txID) }

// Locate returns where a transaction committed.
func (s *FileStore) Locate(txID string) (TxLocator, bool) { return s.mem.Locate(txID) }

// VerifyChain audits the whole persisted chain.
func (s *FileStore) VerifyChain() error { return s.mem.VerifyChain() }

// BlocksFrom returns all blocks with number >= from.
func (s *FileStore) BlocksFrom(from uint64) []*Block { return s.mem.BlocksFrom(from) }
