package blockstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/hyperprov/hyperprov/internal/codec"
)

// ErrCorruptFile is returned when the block file is damaged in a way a
// crash cannot explain: an unparseable line with more data after it, or a
// parseable block that breaks the hash chain. A crash during append can only
// tear the final record; anything else is bit rot or tampering and must not
// be silently truncated away.
var ErrCorruptFile = errors.New("blockstore: block file corrupt")

// fileFormat identifies a block file's on-disk encoding. New files are v2
// binary; files that already hold legacy JSONL data keep appending JSONL,
// so a half-migrated deployment never mixes record formats in one file.
type fileFormat int

const (
	// FormatV2 is the binary format: records of v2Magic + uvarint length +
	// a canonical block encoding (itself CRC-32C framed).
	formatV2 fileFormat = iota
	// FormatJSONL is the legacy PR ≤ 9 format: one JSON block per line.
	formatJSONL
)

// v2Magic opens every v2 block-file record. The trailing '2' doubles as
// the format sniff byte distinguishing v2 files from legacy JSONL ('{').
var v2Magic = []byte("HPB2")

// maxV2Record bounds a record's announced length; anything larger is
// damage, not data (mirrors network.MaxFrame's hostile-length guard).
const maxV2Record = 1 << 31

// SyncPolicy selects when the FileStore forces appended blocks to stable
// storage (fsync).
type SyncPolicy int

const (
	// SyncOnClose flushes the userspace buffer on every append but fsyncs
	// only on explicit Sync and on Close. An OS crash can lose the most
	// recent blocks; a process crash cannot. This is the throughput-friendly
	// default for modeled networks and tests.
	SyncOnClose SyncPolicy = iota
	// SyncEachAppend fsyncs after every appended block, bounding loss on
	// power failure to the block being written — the policy for durable
	// edge peers, where pulling the plug is a routine event.
	SyncEachAppend
)

// FileStore is a block store backed by an append-only file of encoded
// blocks, giving a peer's ledger copy durability across restarts — the
// role of Fabric's block files on each peer's disk. New files use the v2
// binary record format; legacy JSONL files open transparently and keep
// appending JSONL until migrated (MigrateFileToV2).
type FileStore struct {
	mu     sync.Mutex
	mem    *Store
	f      *os.File
	w      *bufio.Writer
	path   string
	policy SyncPolicy
	format fileFormat
}

// OpenFileStore opens (or creates) the block file at path with the default
// SyncOnClose policy. See OpenFileStoreWithPolicy.
func OpenFileStore(path string) (*FileStore, error) {
	return OpenFileStoreWithPolicy(path, SyncOnClose)
}

// OpenFileStoreWithPolicy opens (or creates) the block file at path and
// loads all existing blocks, re-verifying the hash chain as it goes. The
// format is sniffed from the first byte — '{' is a legacy JSONL ledger,
// 'H' (the v2 record magic) is binary; empty files start v2. A truncated
// final record (crash during append) is discarded so the store recovers to
// the last durable block; damage anywhere before the final record — or a
// final record that parses but breaks the chain — is corruption and fails
// the open with ErrCorruptFile.
func OpenFileStoreWithPolicy(path string, policy SyncPolicy) (*FileStore, error) {
	return openFileStore(path, policy, formatV2)
}

// OpenFileStoreLegacy opens (or creates) the block file at path forcing
// the legacy JSONL line format for new files; existing files keep the
// format they already have. It exists for compatibility tests and for
// producing fixtures the migration path consumes — production ledgers
// default to v2 via OpenFileStoreWithPolicy.
func OpenFileStoreLegacy(path string, policy SyncPolicy) (*FileStore, error) {
	return openFileStore(path, policy, formatJSONL)
}

func openFileStore(path string, policy SyncPolicy, newFormat fileFormat) (*FileStore, error) {
	mem := NewStore()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockstore: open %s: %w", path, err)
	}
	// The store mirrors every block in memory anyway, so loading the raw
	// bytes up front costs nothing extra and gives exact byte offsets —
	// Truncate below must never extend the file (a crash that tears only
	// the final newline would otherwise grow it by a junk byte).
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: read %s: %w", path, err)
	}
	format := newFormat // empty files take the requested format
	if len(raw) > 0 {
		switch {
		case raw[0] == '{':
			format = formatJSONL
		case raw[0] == v2Magic[0]:
			format = formatV2
		default:
			f.Close()
			return nil, fmt.Errorf("%w: %s: unrecognized format byte %#x",
				ErrCorruptFile, path, raw[0])
		}
	}
	var validBytes int64
	var needNewline bool
	if format == formatJSONL {
		validBytes, needNewline, err = loadJSONL(raw, mem, path)
	} else {
		validBytes, err = loadV2(raw, mem, path)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop any trailing partial record so future appends start clean.
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(validBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: seek %s: %w", path, err)
	}
	s := &FileStore{mem: mem, f: f, w: bufio.NewWriter(f), path: path, policy: policy, format: format}
	if needNewline {
		if err := s.w.WriteByte('\n'); err != nil {
			f.Close()
			return nil, fmt.Errorf("blockstore: reterminate %s: %w", path, err)
		}
		if err := s.w.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("blockstore: reterminate %s: %w", path, err)
		}
	}
	return s, nil
}

// loadJSONL replays a legacy JSONL ledger into mem. It returns the byte
// count of the valid prefix and whether the final line was valid but lost
// its newline (the caller re-terminates before future appends).
func loadJSONL(raw []byte, mem *Store, path string) (validBytes int64, needNewline bool, err error) {
	for off := 0; off < len(raw); {
		line := raw[off:]
		terminated := false
		if i := bytes.IndexByte(line, '\n'); i >= 0 {
			line, terminated = line[:i], true
		}
		var b Block
		if err := json.Unmarshal(line, &b); err != nil {
			// Only a torn final line (crash mid-append) may fail to parse.
			// Anything after it — or a blank line, which appends never
			// produce — means a damaged middle line: truncating would
			// silently discard the valid blocks that follow.
			if terminated || len(line) == 0 {
				return 0, false, fmt.Errorf("%w: %s: unparseable line after %d blocks",
					ErrCorruptFile, path, mem.Height())
			}
			break // torn tail: keep the valid prefix
		}
		// Legacy ingest: normalize timestamps onto the codec's canonical
		// form and cache each envelope's binary encoding eagerly, while the
		// block is still exclusively owned by this loader — the envelopes
		// behave identically to binary-decoded ones from here on.
		for i := range b.Envelopes {
			b.Envelopes[i].normalizeLegacy()
		}
		if err := mem.Append(&b); err != nil {
			return 0, false, fmt.Errorf("%w: %s at block %d: %v",
				ErrCorruptFile, path, b.Header.Number, err)
		}
		if terminated {
			off += len(line) + 1
		} else {
			// The block is durable but the crash tore its newline; keep it
			// and re-terminate the line before any future append.
			off += len(line)
			needNewline = true
		}
		validBytes = int64(off)
	}
	return validBytes, needNewline, nil
}

// v2 record parse outcomes.
type recStatus int

const (
	recComplete recStatus = iota // blob holds a full record body
	recPartial                   // record extends past EOF: torn tail
	recBad                       // not a record boundary: damage
)

// parseV2Record examines the record at the head of rest. The uvarint
// length field is self-delimiting (a torn multi-byte uvarint always reads
// as incomplete, never as a smaller value), so "partial" versus "bad" is
// unambiguous: a crash can only leave a prefix of a record, anything else
// at a record boundary is damage.
func parseV2Record(rest []byte) (blob []byte, total int, status recStatus) {
	if len(rest) < len(v2Magic) {
		if bytes.HasPrefix(v2Magic, rest) {
			return nil, 0, recPartial
		}
		return nil, 0, recBad
	}
	if !bytes.HasPrefix(rest, v2Magic) {
		return nil, 0, recBad
	}
	n, consumed := binary.Uvarint(rest[len(v2Magic):])
	if consumed == 0 {
		return nil, 0, recPartial
	}
	if consumed < 0 || n > maxV2Record {
		return nil, 0, recBad
	}
	hdr := len(v2Magic) + consumed
	total = hdr + int(n)
	if len(rest) < total {
		return nil, 0, recPartial
	}
	return rest[hdr:total], total, recComplete
}

// loadV2 replays a v2 binary ledger into mem, returning the byte count of
// the valid prefix. Crash semantics mirror the JSONL loader: only the
// final record may be torn (including a zero-filled tail, which crashed
// filesystems can leave behind); a bad magic mid-file, a CRC failure on a
// complete record, or a chain break is corruption.
func loadV2(raw []byte, mem *Store, path string) (validBytes int64, err error) {
	for off := 0; off < len(raw); {
		rest := raw[off:]
		blob, total, status := parseV2Record(rest)
		switch status {
		case recPartial:
			return validBytes, nil // torn tail: keep the valid prefix
		case recBad:
			if allZero(rest) {
				// A crash while the filesystem extended the file can leave
				// a zero-filled tail; zeros are never a record, so treat
				// them as a torn tail rather than damage.
				return validBytes, nil
			}
			return 0, fmt.Errorf("%w: %s: bad record boundary after %d blocks",
				ErrCorruptFile, path, mem.Height())
		}
		b, err := UnmarshalBlock(blob)
		if err != nil {
			// The whole record is present (length field said so), so a torn
			// append cannot explain the failure — this is bit rot.
			return 0, fmt.Errorf("%w: %s: undecodable record after %d blocks: %v",
				ErrCorruptFile, path, mem.Height(), err)
		}
		if err := mem.Append(b); err != nil {
			return 0, fmt.Errorf("%w: %s at block %d: %v",
				ErrCorruptFile, path, b.Header.Number, err)
		}
		off += total
		validBytes = int64(off)
	}
	return validBytes, nil
}

// allZero reports whether p contains only zero bytes.
func allZero(p []byte) bool {
	for _, c := range p {
		if c != 0 {
			return false
		}
	}
	return true
}

// Append validates and appends the block, then persists it according to the
// store's sync policy. On v2 files the block encodes into a pooled buffer
// (reusing each envelope's cached canonical bytes), so the steady-state
// append path allocates no per-block encode scratch.
func (s *FileStore) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mem.Append(b); err != nil {
		return err
	}
	if s.format == formatJSONL {
		line, err := json.Marshal(b)
		if err != nil {
			return fmt.Errorf("blockstore: marshal block %d: %w", b.Header.Number, err)
		}
		if _, err := s.w.Write(line); err != nil {
			return fmt.Errorf("blockstore: append %s: %w", s.path, err)
		}
		if err := s.w.WriteByte('\n'); err != nil {
			return fmt.Errorf("blockstore: append %s: %w", s.path, err)
		}
	} else {
		buf := codec.GetBuffer()
		buf.B = AppendBlock(buf.B, b)
		var hdr [len("HPB2") + binary.MaxVarintLen64]byte
		n := copy(hdr[:], v2Magic)
		n += binary.PutUvarint(hdr[n:], uint64(len(buf.B)))
		if _, err := s.w.Write(hdr[:n]); err != nil {
			buf.Release()
			return fmt.Errorf("blockstore: append %s: %w", s.path, err)
		}
		if _, err := s.w.Write(buf.B); err != nil {
			buf.Release()
			return fmt.Errorf("blockstore: append %s: %w", s.path, err)
		}
		buf.Release()
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("blockstore: flush %s: %w", s.path, err)
	}
	if s.policy == SyncEachAppend {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("blockstore: sync %s: %w", s.path, err)
		}
	}
	return nil
}

// MigrateFileToV2 converts the legacy JSONL ledger at path to the v2
// binary format in place. Already-v2 (or empty) files are left untouched
// and report migrated=false. The conversion opens and fully verifies the
// ledger, writes the v2 records to a temp file in the same directory,
// fsyncs it, renames it over the original, and fsyncs the directory — a
// crash at any point leaves either the old JSONL file or the complete v2
// file behind the name, never a mix. The file keeps its historical
// `blocks-<ch>.jsonl` name; the format lives in the content, not the
// extension.
func MigrateFileToV2(path string) (migrated bool, err error) {
	src, err := OpenFileStore(path)
	if err != nil {
		return false, err
	}
	if src.format == formatV2 || src.Height() == 0 {
		return false, src.Close()
	}
	blocks := src.BlocksFrom(0)
	if err := src.Close(); err != nil {
		return false, fmt.Errorf("blockstore: migrate %s: close source: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".migrate-*.tmp")
	if err != nil {
		return false, fmt.Errorf("blockstore: migrate %s: temp file: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	w := bufio.NewWriter(tmp)
	buf := codec.GetBuffer()
	defer buf.Release()
	for _, b := range blocks {
		buf.B = AppendBlock(buf.B[:0], b)
		var hdr [len("HPB2") + binary.MaxVarintLen64]byte
		n := copy(hdr[:], v2Magic)
		n += binary.PutUvarint(hdr[n:], uint64(len(buf.B)))
		if _, err := w.Write(hdr[:n]); err != nil {
			cleanup()
			return false, fmt.Errorf("blockstore: migrate %s: %w", path, err)
		}
		if _, err := w.Write(buf.B); err != nil {
			cleanup()
			return false, fmt.Errorf("blockstore: migrate %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return false, fmt.Errorf("blockstore: migrate %s: flush: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return false, fmt.Errorf("blockstore: migrate %s: sync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return false, fmt.Errorf("blockstore: migrate %s: close: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return false, fmt.Errorf("blockstore: migrate %s: publish: %w", path, err)
	}
	syncDir(dir)
	return true, nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Sync flushes buffered writes to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes, fsyncs, and closes the block file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// CloseNoFlush closes the file descriptor without the final flush or
// fsync — the programmatic stand-in for a process kill, used by
// crash-recovery tests and the recovery demo. Because Append flushes each
// line to the OS, nothing is lost in-process; what this models is dying
// without the clean-shutdown work (no final checkpoint, no fsync of OS
// caches). Tests emulate the physical-loss half — a torn final append —
// by truncating the file afterwards.
func (s *FileStore) CloseNoFlush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Format reports the file's on-disk encoding: "v2" for the binary record
// format, "jsonl" for a legacy line-oriented ledger.
func (s *FileStore) Format() string {
	if s.format == formatJSONL {
		return "jsonl"
	}
	return "v2"
}

// Height returns the number of persisted blocks.
func (s *FileStore) Height() uint64 { return s.mem.Height() }

// LastHash returns the latest header hash.
func (s *FileStore) LastHash() []byte { return s.mem.LastHash() }

// GetByNumber returns the block with the given number.
func (s *FileStore) GetByNumber(n uint64) (*Block, error) { return s.mem.GetByNumber(n) }

// GetByHash returns the block with the given header hash.
func (s *FileStore) GetByHash(h []byte) (*Block, error) { return s.mem.GetByHash(h) }

// GetTx returns the envelope and validation code for a transaction id.
func (s *FileStore) GetTx(txID string) (*Envelope, ValidationCode, error) { return s.mem.GetTx(txID) }

// Locate returns where a transaction committed.
func (s *FileStore) Locate(txID string) (TxLocator, bool) { return s.mem.Locate(txID) }

// VerifyChain audits the whole persisted chain.
func (s *FileStore) VerifyChain() error { return s.mem.VerifyChain() }

// BlocksFrom returns all blocks with number >= from.
func (s *FileStore) BlocksFrom(from uint64) []*Block { return s.mem.BlocksFrom(from) }
