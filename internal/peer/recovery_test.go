package peer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/recovery"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// Crash-recovery torture tests: commit part of a signed block stream on a
// durable peer, kill it at a randomized point (optionally tearing the block
// file's final line, as a power loss mid-append would), reopen from disk,
// feed the rest of the stream, and require the recovered peer to be
// indistinguishable — state fingerprint, history fingerprint, rich-query
// results, chain audit — from a reference peer that never crashed.

// tortureQuery is the rich query every comparison re-runs; it exercises the
// provenance chaincode's by-owner secondary index.
func tortureQuery(t *testing.T, p *Peer) []statedb.KV {
	t.Helper()
	rq, ok := p.state.(statedb.RichQueryer)
	if !ok {
		t.Fatal("peer state is not rich-queryable")
	}
	res, err := rq.ExecuteQuery([]byte(`{"selector":{"ts":{"$gt":0}},"sort":[{"ts":"asc"}]}`))
	if err != nil {
		t.Fatalf("rich query: %v", err)
	}
	return res.KVs
}

// durableSeq uniquifies enrollment IDs across the durable peers a torture
// run opens (the CA refuses duplicate enrollments).
var durableSeq atomic.Int64

// openDurable opens a durable peer over the fixture's identities and
// installs the provenance chaincode (redeclaring its indexes, as any app
// does at startup).
func (f *fixture) openDurable(dir string, every uint64) *Peer {
	f.t.Helper()
	signer, err := f.ca.Enroll(fmt.Sprintf("peer-dur-%d", durableSeq.Add(1)), identity.RolePeer)
	if err != nil {
		f.t.Fatal(err)
	}
	host, err := Open(Config{
		Name: "durable", Signer: signer, MSP: f.msp, ChannelID: "ch",
		Dir: dir, CheckpointEvery: every, CheckpointKeep: 2, SyncEachAppend: true,
	})
	if err != nil {
		f.t.Fatalf("Open: %v", err)
	}
	p := host.Channel("ch")
	if err := p.InstallChaincode(provenance.ChaincodeName, provenance.New(),
		endorser.SignedBy("Org1MSP")); err != nil {
		f.t.Fatal(err)
	}
	return p
}

// buildTortureStream endorses and commits blocks*txs transactions on the
// fixture's (volatile, uninterrupted) peer — the reference run — and
// returns the resulting block stream. Roughly a third of the writes update
// earlier keys so history gains depth, and each block also re-writes one
// contended key so some MVCC losers appear in the stream.
func buildTortureStream(f *fixture, blocks, txs int) []*blockstore.Block {
	f.t.Helper()
	out := make([]*blockstore.Block, 0, blocks)
	for bn := 0; bn < blocks; bn++ {
		envs := make([]blockstore.Envelope, 0, txs)
		for i := 0; i < txs; i++ {
			var key string
			if i%3 == 2 && bn > 0 {
				key = fmt.Sprintf("item-%03d-%d", bn-1, i) // update an old key
			} else {
				key = fmt.Sprintf("item-%03d-%d", bn, i)
			}
			args, err := json.Marshal(map[string]any{
				"key":      key,
				"checksum": fmt.Sprintf("sha256:%03d-%d", bn, i),
			})
			if err != nil {
				f.t.Fatal(err)
			}
			prop := f.propose(provenance.FnSet, string(args))
			resp, err := f.peer.ProcessProposal(prop)
			if err != nil {
				f.t.Fatalf("endorse block %d tx %d: %v", bn, i, err)
			}
			envs = append(envs, f.envelopeFor(prop, resp))
		}
		out = append(out, f.commitEnvs(envs...))
	}
	return out
}

// tearTail truncates the block file inside its final line, simulating a
// crash that tore the last append.
func tearTail(t *testing.T, dir string, rng *rand.Rand) {
	t.Helper()
	tearTailAt(t, recovery.BlockFilePath(dir), rng)
}

// tearTailAt is tearTail for an explicit block-file path (a channel's
// blocks-<ch>.jsonl under the per-channel layout).
func tearTailAt(t *testing.T, path string, rng *rand.Rand) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		return
	}
	body := bytes.TrimSuffix(raw, []byte("\n"))
	lastLine := body
	if i := bytes.LastIndexByte(body, '\n'); i >= 0 {
		lastLine = body[i+1:]
	}
	cut := len(raw) - rng.Intn(len(lastLine)+1) - 1
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}
}

// comparePeers requires got to be observably identical to want.
func comparePeers(t *testing.T, got, want *Peer, label string) {
	t.Helper()
	if g, w := got.Height(), want.Height(); g != w {
		t.Fatalf("%s: height = %d, want %d", label, g, w)
	}
	if g, w := committer.StateFingerprint(got.state), committer.StateFingerprint(want.state); g != w {
		t.Errorf("%s: state fingerprint = %s, want %s", label, g, w)
	}
	if g, w := got.history.Fingerprint(), want.history.Fingerprint(); g != w {
		t.Errorf("%s: history fingerprint = %s, want %s", label, g, w)
	}
	if g, w := tortureQuery(t, got), tortureQuery(t, want); !reflect.DeepEqual(g, w) {
		t.Errorf("%s: rich-query results differ: %d vs %d rows", label, len(g), len(w))
	}
	if err := got.Ledger().VerifyChain(); err != nil {
		t.Errorf("%s: VerifyChain: %v", label, err)
	}
}

func TestTortureCrashRecovery(t *testing.T) {
	const (
		numBlocks = 24
		txsPerBlk = 3
		ckptEvery = 4
		rounds    = 5
	)
	f := newFixture(t)
	stream := buildTortureStream(f, numBlocks, txsPerBlk)
	defer f.peer.Stop()

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round-%d", round), func(t *testing.T) {
			dir := t.TempDir()
			p := f.openDurable(dir, ckptEvery)

			// Kill at a randomized point mid-stream.
			kill := 1 + rng.Intn(numBlocks-1)
			for _, b := range stream[:kill] {
				p.CommitBlock(b)
			}
			p.Crash()
			if round%2 == 1 {
				tearTail(t, dir, rng) // power loss tore the final append
			}

			// Reopen from disk. The recovered height may trail the kill
			// point by the torn block, never more.
			p2 := f.openDurable(dir, ckptEvery)
			h := p2.Height()
			if h < uint64(kill-1) || h > uint64(kill) {
				t.Fatalf("recovered height = %d after kill at %d", h, kill)
			}
			if info := p2.Recovery(); h >= ckptEvery {
				if info.CheckpointHeight == 0 {
					t.Errorf("recovered without a checkpoint at height %d", h)
				}
				if info.CheckpointHeight+uint64(ckptEvery) < h {
					t.Errorf("replay tail longer than a checkpoint interval: ckpt %d, height %d",
						info.CheckpointHeight, h)
				}
			}

			// The tail of the stream the peer missed commits cleanly on
			// the recovered state…
			for _, b := range stream[h:] {
				p2.CommitBlock(b)
			}
			// …and the result is indistinguishable from the reference run.
			comparePeers(t, p2, f.peer, "after recovery + tail")
			if err := p2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// A clean close leaves a final checkpoint: the next open
			// restores instantly, still at the reference fingerprint.
			p3 := f.openDurable(dir, ckptEvery)
			if info := p3.Recovery(); info.ReplayedBlocks != 0 || info.CheckpointHeight != uint64(numBlocks) {
				t.Errorf("reopen after clean close: %+v, want instant restore at %d", info, numBlocks)
			}
			comparePeers(t, p3, f.peer, "after clean close + reopen")
			if err := p3.Close(); err != nil {
				t.Fatalf("final Close: %v", err)
			}
		})
	}
}

func TestDurablePeerSurvivesCrashWithoutCheckpoint(t *testing.T) {
	// Kill before the first checkpoint interval: recovery must replay the
	// whole (short) chain from genesis.
	f := newFixture(t)
	stream := buildTortureStream(f, 3, 2)
	defer f.peer.Stop()

	dir := t.TempDir()
	p := f.openDurable(dir, 100) // interval never reached
	for _, b := range stream {
		p.CommitBlock(b)
	}
	p.Crash()

	p2 := f.openDurable(dir, 100)
	if info := p2.Recovery(); info.CheckpointHeight != 0 || info.ReplayedBlocks != 3 {
		t.Errorf("recovery info = %+v, want genesis replay of 3", info)
	}
	comparePeers(t, p2, f.peer, "genesis replay")
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}
