package peer

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// TestReadsAndRichQueriesDuringCommit hammers the sharded state layer the
// way a loaded peer does: one goroutine drives endorse->commit cycles
// through the pipelined committer while others continuously serve
// endorsement reads (snapshot views) and rich queries (index-served plus
// snapshot scans). Every read must succeed and observe a committed record
// in full — the proof, under -race, that Peer.Query and ProcessProposal no
// longer funnel through a global state lock the committer holds.
func TestReadsAndRichQueriesDuringCommit(t *testing.T) {
	f := newFixture(t)
	// Seed a few records so readers always have something committed.
	for i := 0; i < 4; i++ {
		if code := f.set(fmt.Sprintf("seed-%d", i), fmt.Sprintf("sha256:%d", i)); code != blockstore.TxValid {
			t.Fatalf("seed %d: validation = %s", i, code)
		}
	}

	// Pre-sign read proposals on the test goroutine (helpers may t.Fatal).
	readProps := make([]*endorser.Proposal, 4)
	for i := range readProps {
		readProps[i] = f.propose(provenance.FnGet, fmt.Sprintf("seed-%d", i))
	}
	creator := f.client.Serialize()
	query := []byte(`{"selector":{"checksum":{"$regex":"sha256"}},"sort":["key"]}`)

	stop := make(chan struct{})
	var failures atomic.Int64
	var reads, queries atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	var wg sync.WaitGroup
	// Endorsement readers: each simulation reads through a snapshot view.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				prop := readProps[(w+i)%len(readProps)]
				resp, err := f.peer.ProcessProposal(prop)
				if err != nil {
					fail("endorsement read: %v", err)
					return
				}
				if resp.Status != shim.OK {
					fail("endorsement read status = %d", resp.Status)
					return
				}
				reads.Add(1)
			}
		}(w)
	}
	// Rich-query readers: Peer.Query syncs the watermark, then scans.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				qr, err := f.peer.Query(provenance.ChaincodeName, provenance.FnRichQuery,
					[][]byte{query}, creator)
				if err != nil || qr.Status != shim.OK {
					fail("rich query: status=%d err=%v", qr.Status, err)
					return
				}
				var page struct {
					Records []json.RawMessage `json:"records"`
				}
				if err := json.Unmarshal(qr.Payload, &page); err != nil {
					fail("rich query payload: %v", err)
					return
				}
				if len(page.Records) < 4 {
					fail("rich query saw %d records, want >= 4 seeds", len(page.Records))
					return
				}
				queries.Add(1)
			}
		}()
	}

	// Writer: full endorse->commit cycles through the pipelined committer.
	// At least `blocks` commits, then keep the committer busy until every
	// reader kind has finished at least one iteration — on a single-CPU
	// runtime the reader goroutines may not be scheduled before the first
	// 25 commits drain, and the point of the test is reads completing
	// while commits flow. maxBlocks bounds the wait; the concurrency
	// assertion below catches a genuinely starved reader.
	const blocks, maxBlocks = 25, 2000
	lastBlock := 0
	for i := 0; failures.Load() == 0; i++ {
		if i >= blocks && reads.Load() > 0 && queries.Load() > 0 {
			break
		}
		if i >= maxBlocks {
			break
		}
		if code := f.set(fmt.Sprintf("live-%d", i), fmt.Sprintf("sha256:live%d", i)); code != blockstore.TxValid {
			t.Fatalf("live set %d: validation = %s", i, code)
		}
		lastBlock = i
	}
	close(stop)
	wg.Wait()

	if failures.Load() > 0 {
		t.Fatalf("%d concurrent reads failed", failures.Load())
	}
	if reads.Load() == 0 || queries.Load() == 0 {
		t.Fatalf("no concurrency: %d endorsement reads, %d rich queries", reads.Load(), queries.Load())
	}
	// The world must still be exactly the committed one.
	qr, err := f.peer.Query(provenance.ChaincodeName, provenance.FnGet,
		[][]byte{[]byte(fmt.Sprintf("live-%d", lastBlock))}, creator)
	if err != nil || qr.Status != shim.OK {
		t.Fatalf("final read: status=%d err=%v", qr.Status, err)
	}
}
