package peer

import (
	"encoding/json"
	"sync"

	"github.com/hyperprov/hyperprov/internal/shim"
)

// This file implements the peer's event hub: clients subscribe to the
// stream of committed chaincode events (the role Fabric's event service /
// the NodeJS SDK's ChannelEventHub plays for HyperProv's client library).

// ChaincodeEvent is one committed chaincode event.
type ChaincodeEvent struct {
	TxID     string `json:"txId"`
	BlockNum uint64 `json:"blockNum"`
	Name     string `json:"name"`
	Payload  []byte `json:"payload,omitempty"`
}

// eventHub fans committed events out to subscribers.
type eventHub struct {
	mu     sync.Mutex
	subs   []chan ChaincodeEvent
	closed bool
}

// subscribe registers a buffered subscriber channel. Events that would
// overflow a slow subscriber are dropped for that subscriber (commit must
// never block on a client).
func (h *eventHub) subscribe(buffer int) <-chan ChaincodeEvent {
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan ChaincodeEvent, buffer)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(ch)
		return ch
	}
	h.subs = append(h.subs, ch)
	return ch
}

func (h *eventHub) publish(ev ChaincodeEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall commits
		}
	}
}

func (h *eventHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, ch := range h.subs {
		close(ch)
	}
	h.subs = nil
}

// SubscribeEvents returns a stream of chaincode events from transactions
// that commit as valid on this peer, starting from the moment of the call.
// The channel closes when the peer stops.
func (p *Peer) SubscribeEvents(buffer int) <-chan ChaincodeEvent {
	return p.events.subscribe(buffer)
}

// publishTxEvents decodes and publishes the events of one valid committed
// transaction.
func (p *Peer) publishTxEvents(txID string, blockNum uint64, eventBytes []byte) {
	if len(eventBytes) == 0 {
		return
	}
	var evs []shim.Event
	if err := json.Unmarshal(eventBytes, &evs); err != nil {
		return // malformed event payload: tx already committed, skip events
	}
	for _, e := range evs {
		p.events.publish(ChaincodeEvent{
			TxID:     txID,
			BlockNum: blockNum,
			Name:     e.Name,
			Payload:  e.Payload,
		})
	}
}
