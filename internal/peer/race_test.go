package peer

import (
	"sync"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

// TestConcurrentStartStop exercises the Start/Stop race: Stop reads the
// started flag while Start may be setting it from another goroutine (a
// peer torn down mid-startup). Run under -race this pins the atomic fix;
// without synchronization the detector flags the old plain-bool field.
func TestConcurrentStartStop(t *testing.T) {
	for i := 0; i < 50; i++ {
		f := newFixture(t)
		ch := make(chan *blockstore.Block)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			f.peer.Start(ch)
		}()
		go func() {
			defer wg.Done()
			f.peer.Stop()
		}()
		wg.Wait()
		f.peer.Stop() // idempotent regardless of interleaving
		close(ch)
	}
}

// TestStopWithoutStart: a peer that never attached to a block stream stops
// cleanly (Stop must not wait on a goroutine that never ran).
func TestStopWithoutStart(t *testing.T) {
	f := newFixture(t)
	done := make(chan struct{})
	go func() {
		f.peer.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on a never-started peer")
	}
}
