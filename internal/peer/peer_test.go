package peer

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// fixture bundles one peer with a client identity for direct-drive tests.
type fixture struct {
	t       *testing.T
	ca      *identity.CA
	msp     *identity.MSP
	peer    *Peer
	client  *identity.SigningIdentity
	channel string
	nextTx  int
}

func newFixture(t *testing.T) *fixture { return newFixtureOn(t, "ch") }

// newFixtureOn builds a fixture whose peer and proposals are bound to the
// given channel, so multi-channel tests can run one reference fixture per
// channel.
func newFixtureOn(t *testing.T, channel string) *fixture {
	t.Helper()
	ca, err := identity.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	msp := identity.NewMSP(ca)
	signer, err := ca.Enroll("peer0", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	client, err := ca.Enroll("client0", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Name: "peer0", Signer: signer, MSP: msp, ChannelID: channel})
	if err := p.InstallChaincode(provenance.ChaincodeName, provenance.New(),
		endorser.SignedBy("Org1MSP")); err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, ca: ca, msp: msp, peer: p, client: client, channel: channel}
}

// propose builds and signs a proposal from the fixture's client.
func (f *fixture) propose(fn string, args ...string) *endorser.Proposal {
	f.t.Helper()
	f.nextTx++
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	creator := f.client.Serialize()
	txID, err := endorser.NewTxID(creator)
	if err != nil {
		f.t.Fatal(err)
	}
	p := &endorser.Proposal{
		TxID:      txID,
		ChannelID: f.channel,
		Chaincode: provenance.ChaincodeName,
		Function:  fn,
		Args:      raw,
		Creator:   creator,
		Timestamp: time.Now().UTC(),
	}
	sig, err := f.client.Sign(p.SignedBytes())
	if err != nil {
		f.t.Fatal(err)
	}
	p.Signature = sig
	return p
}

// envelopeFor turns an endorsed proposal into a signed envelope.
func (f *fixture) envelopeFor(prop *endorser.Proposal, resp *endorser.Response) blockstore.Envelope {
	f.t.Helper()
	env := blockstore.Envelope{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Chaincode: prop.Chaincode,
		Function:  prop.Function,
		Args:      prop.Args,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
		RWSet:     resp.RWSet,
		Response:  resp.Payload,
		Events:    resp.Events,
		Endorsements: []blockstore.Endorsement{
			{Endorser: resp.Endorser, Signature: resp.Signature},
		},
	}
	sig, err := f.client.Sign(env.SignedBytes())
	if err != nil {
		f.t.Fatal(err)
	}
	env.Signature = sig
	return env
}

// commitEnvs commits the envelopes as the next block and returns it.
func (f *fixture) commitEnvs(envs ...blockstore.Envelope) *blockstore.Block {
	f.t.Helper()
	b, err := blockstore.NewBlock(f.peer.Height(), f.peer.Ledger().LastHash(), envs)
	if err != nil {
		f.t.Fatal(err)
	}
	f.peer.CommitBlock(b)
	return b
}

// run executes the full endorse->commit path for a set invocation.
func (f *fixture) set(key, checksum string, parents ...string) blockstore.ValidationCode {
	f.t.Helper()
	in := map[string]any{"key": key, "checksum": checksum}
	if len(parents) > 0 {
		in["parents"] = parents
	}
	raw, err := json.Marshal(in)
	if err != nil {
		f.t.Fatal(err)
	}
	prop := f.propose(provenance.FnSet, string(raw))
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		f.t.Fatalf("ProcessProposal: %v", err)
	}
	env := f.envelopeFor(prop, resp)
	wait := f.peer.RegisterTxListener(env.TxID)
	f.commitEnvs(env)
	select {
	case ev := <-wait:
		return ev.Code
	case <-time.After(time.Second):
		f.t.Fatal("no commit event")
		return 0
	}
}

func TestInitThenSetCommits(t *testing.T) {
	f := newFixture(t)
	// Instantiate via the reserved init function.
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatalf("init proposal: %v", err)
	}
	f.commitEnvs(f.envelopeFor(prop, resp))

	if code := f.set("item1", "sha256:abc"); code != blockstore.TxValid {
		t.Fatalf("set validation = %s", code)
	}
	// Query the committed record.
	qr, err := f.peer.Query(provenance.ChaincodeName, provenance.FnGet,
		[][]byte{[]byte("item1")}, f.client.Serialize())
	if err != nil || qr.Status != shim.OK {
		t.Fatalf("query: %v %+v", err, qr)
	}
	var rec provenance.Record
	if err := json.Unmarshal(qr.Payload, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Checksum != "sha256:abc" {
		t.Errorf("record = %+v", rec)
	}
}

func TestProposalBadSignatureRejected(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	prop.Function = provenance.FnGetStats // mutate after signing
	if _, err := f.peer.ProcessProposal(prop); err == nil {
		t.Fatal("tampered proposal endorsed")
	}
}

func TestProposalUnknownChaincode(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	prop.Chaincode = "ghost"
	sig, err := f.client.Sign(prop.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	prop.Signature = sig
	_, err = f.peer.ProcessProposal(prop)
	if !errors.Is(err, ErrUnknownChaincode) {
		t.Fatalf("err = %v, want ErrUnknownChaincode", err)
	}
}

func TestSimulationFailureNotEndorsed(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(provenance.FnGet, "missing-key")
	_, err := f.peer.ProcessProposal(prop)
	if !errors.Is(err, ErrSimulationFailed) {
		t.Fatalf("err = %v, want ErrSimulationFailed", err)
	}
}

func TestMVCCConflictInvalidatesSecondTx(t *testing.T) {
	f := newFixture(t)
	propInit := f.propose(InitFunction)
	respInit, err := f.peer.ProcessProposal(propInit)
	if err != nil {
		t.Fatal(err)
	}
	f.commitEnvs(f.envelopeFor(propInit, respInit))

	// Two clients simulate against the same snapshot, writing the same key;
	// both land in one block. Exactly the first must commit.
	mkSet := func() (blockstore.Envelope, string) {
		raw := []byte(`{"key":"contested","checksum":"c"}`)
		prop := f.propose(provenance.FnSet, string(raw))
		resp, err := f.peer.ProcessProposal(prop)
		if err != nil {
			t.Fatal(err)
		}
		return f.envelopeFor(prop, resp), prop.TxID
	}
	env1, tx1 := mkSet()
	env2, tx2 := mkSet()
	w1 := f.peer.RegisterTxListener(tx1)
	w2 := f.peer.RegisterTxListener(tx2)
	f.commitEnvs(env1, env2)
	ev1, ev2 := <-w1, <-w2
	if ev1.Code != blockstore.TxValid {
		t.Errorf("first tx = %s, want VALID", ev1.Code)
	}
	if ev2.Code != blockstore.TxMVCCConflict {
		t.Errorf("second tx = %s, want MVCC_READ_CONFLICT", ev2.Code)
	}
}

func TestEndorsementPolicyFailureAtValidation(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	env := f.envelopeFor(prop, resp)
	env.Endorsements = nil // strip endorsements
	sig, err := f.client.Sign(env.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	env.Signature = sig
	wait := f.peer.RegisterTxListener(env.TxID)
	f.commitEnvs(env)
	if ev := <-wait; ev.Code != blockstore.TxEndorsementPolicyFailure {
		t.Errorf("code = %s, want ENDORSEMENT_POLICY_FAILURE", ev.Code)
	}
}

func TestBadEnvelopeSignatureInvalidated(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	env := f.envelopeFor(prop, resp)
	env.Function = "tampered-after-signing"
	wait := f.peer.RegisterTxListener(env.TxID)
	f.commitEnvs(env)
	if ev := <-wait; ev.Code != blockstore.TxBadSignature {
		t.Errorf("code = %s, want BAD_SIGNATURE", ev.Code)
	}
}

func TestMalformedRWSetInvalidated(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	env := f.envelopeFor(prop, resp)
	env.RWSet = []byte("not a real rwset")
	sig, err := f.client.Sign(env.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	env.Signature = sig
	wait := f.peer.RegisterTxListener(env.TxID)
	f.commitEnvs(env)
	if ev := <-wait; ev.Code != blockstore.TxMalformed {
		t.Errorf("code = %s, want MALFORMED", ev.Code)
	}
}

func TestDuplicateChaincodeInstall(t *testing.T) {
	f := newFixture(t)
	err := f.peer.InstallChaincode(provenance.ChaincodeName, provenance.New(), nil)
	if !errors.Is(err, ErrChaincodeExists) {
		t.Fatalf("err = %v, want ErrChaincodeExists", err)
	}
}

func TestLedgerChainVerifiesAfterCommits(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	f.commitEnvs(f.envelopeFor(prop, resp))
	for i := 0; i < 5; i++ {
		f.set("k"+string(rune('a'+i)), "c")
	}
	if err := f.peer.Ledger().VerifyChain(); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
	if f.peer.Height() != 6 {
		t.Errorf("height = %d, want 6", f.peer.Height())
	}
}
