package peer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/recovery"
)

// Multi-channel host tests: one durable Host serving two channels must keep
// the channels fully independent — separate ledgers, state, history, and
// recovery roots — and a crash must land BOTH channels back on the exact
// fingerprints of reference peers that never crashed.

// siblingFixtureOn builds a second fixture on the same CA/MSP as f but
// bound to a different channel, so one host (one MSP) can verify both
// channels' signed streams.
func siblingFixtureOn(f *fixture, channel string) *fixture {
	f.t.Helper()
	signer, err := f.ca.Enroll("peer-"+channel, identity.RolePeer)
	if err != nil {
		f.t.Fatal(err)
	}
	client, err := f.ca.Enroll("client-"+channel, identity.RoleClient)
	if err != nil {
		f.t.Fatal(err)
	}
	p := New(Config{Name: "peer-" + channel, Signer: signer, MSP: f.msp, ChannelID: channel})
	if err := p.InstallChaincode(provenance.ChaincodeName, provenance.New(),
		endorser.SignedBy("Org1MSP")); err != nil {
		f.t.Fatal(err)
	}
	return &fixture{t: f.t, ca: f.ca, msp: f.msp, peer: p, client: client, channel: channel}
}

// openDurableHost opens a durable two-channel host rooted at dir and
// installs the provenance chaincode on both channels, as any app does at
// startup (re-declaring rich-query indexes).
func openDurableHost(f *fixture, dir string, every uint64, channels []string) *Host {
	f.t.Helper()
	signer, err := f.ca.Enroll(fmt.Sprintf("host-dur-%d", durableSeq.Add(1)), identity.RolePeer)
	if err != nil {
		f.t.Fatal(err)
	}
	h, err := Open(Config{
		Name: "durable-host", Signer: signer, MSP: f.msp, Channels: channels,
		Dir: dir, CheckpointEvery: every, CheckpointKeep: 2, SyncEachAppend: true,
	})
	if err != nil {
		f.t.Fatalf("Open: %v", err)
	}
	for _, ch := range h.Channels() {
		if err := h.Channel(ch).InstallChaincode(provenance.ChaincodeName, provenance.New(),
			endorser.SignedBy("Org1MSP")); err != nil {
			f.t.Fatal(err)
		}
	}
	return h
}

func TestTwoChannelHostCrashRecovery(t *testing.T) {
	const (
		numBlocks = 16
		txsPerBlk = 3
		ckptEvery = 4
		rounds    = 4
	)
	channels := []string{"alpha", "beta"}

	// One uninterrupted reference peer per channel; both streams are signed
	// under the same CA so the host's single MSP verifies either.
	fA := newFixtureOn(t, "alpha")
	fB := siblingFixtureOn(fA, "beta")
	streams := map[string][]*blockstore.Block{
		"alpha": buildTortureStream(fA, numBlocks, txsPerBlk),
		"beta":  buildTortureStream(fB, numBlocks, txsPerBlk),
	}
	refs := map[string]*Peer{"alpha": fA.peer, "beta": fB.peer}
	defer fA.peer.Stop()
	defer fB.peer.Stop()

	rng := rand.New(rand.NewSource(11))
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round-%d", round), func(t *testing.T) {
			dir := t.TempDir()
			h := openDurableHost(fA, dir, ckptEvery, channels)

			// Feed each channel from its own goroutine up to an independent
			// randomized kill point: the two commit pipelines run
			// concurrently, exactly as they do in a live host.
			kills := map[string]int{
				"alpha": 1 + rng.Intn(numBlocks-1),
				"beta":  1 + rng.Intn(numBlocks-1),
			}
			var wg sync.WaitGroup
			for _, ch := range channels {
				wg.Add(1)
				go func(ch string) {
					defer wg.Done()
					p := h.Channel(ch)
					for _, b := range streams[ch][:kills[ch]] {
						p.CommitBlock(b)
					}
				}(ch)
			}
			wg.Wait()
			h.Crash()
			// On odd rounds a power loss additionally tears the final
			// append of one channel's block file (alternating which).
			if round%2 == 1 {
				torn := channels[(round/2)%len(channels)]
				tearTailAt(t, recovery.BlockFilePathFor(dir, torn), rng)
			}

			// Reopen: every channel recovers independently to within the
			// torn block of its own kill point, replays its missed tail,
			// and lands on its reference fingerprint.
			h2 := openDurableHost(fA, dir, ckptEvery, channels)
			for _, ch := range channels {
				p := h2.Channel(ch)
				hgt := p.Height()
				kill := kills[ch]
				if hgt < uint64(kill-1) || hgt > uint64(kill) {
					t.Fatalf("%s: recovered height = %d after kill at %d", ch, hgt, kill)
				}
				for _, b := range streams[ch][hgt:] {
					p.CommitBlock(b)
				}
				comparePeers(t, p, refs[ch], ch+" after recovery + tail")
			}
			// The two channels hold genuinely different states (their
			// records carry different creators), so matching the per-channel
			// references above is a real isolation check, not a tautology.
			if fp := h2.Channel("alpha").StateFingerprint(); fp == h2.Channel("beta").StateFingerprint() {
				t.Error("alpha and beta recovered to identical fingerprints; channels are not independent")
			}
			if err := h2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// A clean close checkpoints every channel: the next open
			// restores both instantly, still at the reference fingerprints.
			h3 := openDurableHost(fA, dir, ckptEvery, channels)
			for _, ch := range channels {
				p := h3.Channel(ch)
				if info := p.Recovery(); info.ReplayedBlocks != 0 || info.CheckpointHeight != uint64(numBlocks) {
					t.Errorf("%s: reopen after clean close: %+v, want instant restore at %d",
						ch, info, numBlocks)
				}
				comparePeers(t, p, refs[ch], ch+" after clean close + reopen")
			}
			if err := h3.Close(); err != nil {
				t.Fatalf("final Close: %v", err)
			}
		})
	}
}

// TestHostChannelLayoutsAreDisjoint pins the on-disk contract: each channel
// of a multi-channel host owns its own block file and checkpoint root, and
// a legacy single-channel directory is untouched by the per-channel layout.
func TestHostChannelLayoutsAreDisjoint(t *testing.T) {
	if a, b := recovery.BlockFilePathFor("d", "alpha"), recovery.BlockFilePathFor("d", "beta"); a == b {
		t.Fatalf("channel block files collide: %s", a)
	}
	if a, legacy := recovery.BlockFilePathFor("d", "alpha"), recovery.BlockFilePath("d"); a == legacy {
		t.Fatalf("channel block file collides with the legacy layout: %s", a)
	}
	if a, b := recovery.CheckpointDirFor("d", "alpha"), recovery.CheckpointDirFor("d", "beta"); a == b {
		t.Fatalf("channel checkpoint roots collide: %s", a)
	}
}
