package peer

import (
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/metrics"
)

// Edge-case coverage for the pipelined commit path: empty blocks,
// all-invalid blocks, duplicate txIDs inside one block, and listeners that
// register after the transaction already committed.

func TestCommitEmptyBlock(t *testing.T) {
	f := newFixture(t)
	f.commitEnvs() // block 0 with zero transactions
	if h := f.peer.Height(); h != 1 {
		t.Fatalf("height = %d, want 1", h)
	}
	if w := f.peer.Watermark(); w != 1 {
		t.Fatalf("watermark = %d, want 1", w)
	}
	if got := f.peer.Metrics().Counter(metrics.BlocksCommitted).Value(); got != 1 {
		t.Errorf("blocks_committed = %d, want 1", got)
	}
	if err := f.peer.Ledger().VerifyChain(); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
}

func TestCommitAllInvalidBlock(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	env := f.envelopeFor(prop, resp)
	env.Function = "tampered-after-signing" // breaks the creator signature
	b := f.commitEnvs(env)

	if h := f.peer.Height(); h != 1 {
		t.Fatalf("height = %d, want 1", h)
	}
	got, err := f.peer.Ledger().GetByNumber(b.Header.Number)
	if err != nil {
		t.Fatal(err)
	}
	if got.TxValidation[0] != blockstore.TxBadSignature {
		t.Errorf("code = %s, want BAD_SIGNATURE", got.TxValidation[0])
	}
	if n := f.peer.Metrics().Counter(metrics.TxInvalidated).Value(); n != 1 {
		t.Errorf("tx_invalidated = %d, want 1", n)
	}
	if n := f.peer.Metrics().Counter(metrics.TxValidated).Value(); n != 0 {
		t.Errorf("tx_validated = %d, want 0", n)
	}
}

func TestDuplicateTxIDWithinBlock(t *testing.T) {
	f := newFixture(t)
	propInit := f.propose(InitFunction)
	respInit, err := f.peer.ProcessProposal(propInit)
	if err != nil {
		t.Fatal(err)
	}
	f.commitEnvs(f.envelopeFor(propInit, respInit))

	prop := f.propose(provenance.FnSet, `{"key":"dup-key","checksum":"c"}`)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	env := f.envelopeFor(prop, resp)
	wait := f.peer.RegisterTxListener(env.TxID)
	b := f.commitEnvs(env, env) // the same envelope (and txID) twice

	got, err := f.peer.Ledger().GetByNumber(b.Header.Number)
	if err != nil {
		t.Fatal(err)
	}
	// The first copy wins; the second loses MVCC against the first's write.
	if got.TxValidation[0] != blockstore.TxValid {
		t.Errorf("first copy = %s, want VALID", got.TxValidation[0])
	}
	if got.TxValidation[1] != blockstore.TxMVCCConflict {
		t.Errorf("second copy = %s, want MVCC_READ_CONFLICT", got.TxValidation[1])
	}
	// The listener observes exactly one event — the first copy's verdict.
	select {
	case ev := <-wait:
		if ev.Code != blockstore.TxValid {
			t.Errorf("listener code = %s, want VALID", ev.Code)
		}
	case <-time.After(time.Second):
		t.Fatal("no commit event")
	}
}

func TestListenerRegisteredAfterCommit(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	env := f.envelopeFor(prop, resp)
	f.commitEnvs(env)

	// Registration after commit must deliver the event immediately rather
	// than hang forever (the pre-pipeline behavior).
	select {
	case ev := <-f.peer.RegisterTxListener(env.TxID):
		if ev.Code != blockstore.TxValid || ev.BlockNum != 0 {
			t.Errorf("event = %+v, want VALID at block 0", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("late listener never notified")
	}
}

// TestNotifyCommitNonBlocking pins the drop-or-log contract: a listener
// whose 1-slot buffer is already full must not stall delivery.
func TestNotifyCommitNonBlocking(t *testing.T) {
	f := newFixture(t)
	ch := make(chan CommitEvent, 1)
	ch <- CommitEvent{TxID: "stale"} // fill the buffer
	f.peer.listenMu.Lock()
	f.peer.txListeners["tx-full"] = []chan CommitEvent{ch}
	f.peer.listenMu.Unlock()

	done := make(chan struct{})
	go func() {
		f.peer.notifyCommit(CommitEvent{TxID: "tx-full", Code: blockstore.TxValid})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("notifyCommit blocked on a full listener channel")
	}
	if ev := <-ch; ev.TxID != "stale" {
		t.Errorf("buffered event = %+v, want the pre-existing one", ev)
	}
}
