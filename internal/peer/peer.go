// Package peer implements the peer node: it hosts chaincode and serves
// endorsement requests, and it consumes the ordered block stream, runs the
// validation pipeline (creator signature, endorsement policy, MVCC), and
// commits valid transactions to the world state, history, and block store.
// In the paper's deployments each of the four machines (desktops or RPis)
// runs one such peer.
package peer

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/recovery"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// InitFunction is the reserved function name that routes to chaincode Init.
const InitFunction = "__init"

// Errors returned by the peer.
var (
	ErrUnknownChaincode = errors.New("peer: unknown chaincode")
	ErrChaincodeExists  = errors.New("peer: chaincode already installed")
	ErrStopped          = errors.New("peer: stopped")
	ErrSimulationFailed = errors.New("peer: chaincode simulation failed")
)

// CommitEvent notifies listeners of one committed transaction.
type CommitEvent struct {
	TxID     string
	BlockNum uint64
	Code     blockstore.ValidationCode
}

// installedCC pairs a chaincode with its endorsement policy.
type installedCC struct {
	cc     shim.Chaincode
	policy endorser.Policy
}

// Config assembles a peer.
type Config struct {
	// Name identifies the peer (e.g. "peer0.org1").
	Name string
	// Signer is the peer's endorsing identity.
	Signer *identity.SigningIdentity
	// MSP verifies client and endorser identities.
	MSP *identity.MSP
	// Executor models this peer's hardware; nil means zero modeled cost.
	Executor *device.Executor
	// ChannelID names the single channel this peer joins.
	//
	// Deprecated: single-channel shim. Hosts built from a Config with only
	// ChannelID set serve that one channel under the legacy on-disk layout
	// (blocks.jsonl, checkpoints/). New code should list Channels instead.
	ChannelID string
	// Channels lists the channels this host serves, each with its own
	// ledger (blocks-<ch>.jsonl), state store, history, commit pipeline,
	// and recovery root (checkpoints/<ch>/). When set it supersedes
	// ChannelID and switches the data directory to the per-channel layout.
	Channels []string
	// CommitWorkers sizes the commit pipeline's pre-validation worker
	// pool; 0 means one worker per available CPU.
	CommitWorkers int
	// MVCCWorkers sizes the commit pipeline's conflict-graph MVCC
	// validation pool (stage 2); 0 means one worker per available CPU,
	// 1 restores the strictly sequential walk.
	MVCCWorkers int

	// Dir, when the peer is built with Open, is its data directory: the
	// durable block file plus checkpoints live there and the peer recovers
	// from it on every open. New ignores it (volatile peer).
	Dir string
	// CheckpointEvery is how many blocks apart durable checkpoints are
	// taken; 0 means DefaultCheckpointEvery. Only meaningful with Open.
	CheckpointEvery uint64
	// CheckpointKeep is how many checkpoint files to retain (0 means the
	// recovery manager's default). Only meaningful with Open.
	CheckpointKeep int
	// SyncEachAppend, when true, fsyncs the block file on every appended
	// block (power-loss bound of one block) instead of only at checkpoints
	// and close. Only meaningful with Open.
	SyncEachAppend bool

	// Tracer, when set, receives transaction lifecycle spans (endorse and
	// the three commit stages) and is completed — outcome recorded, trace
	// moved to the recent/slow lists — as each transaction commits on this
	// peer. Wire it on exactly one peer per recorder, or racing completions
	// will split timelines.
	Tracer *trace.Recorder

	// layoutChannel is the on-disk layout selector Open threads to each
	// channel instance (empty = legacy single-channel files).
	layoutChannel string
}

// DefaultCheckpointEvery is the default block interval between durable
// checkpoints for peers built with Open.
const DefaultCheckpointEvery = 16

// Peer is one endorsing/committing node.
type Peer struct {
	name      string
	channelID string
	signer    *identity.SigningIdentity
	msp       *identity.MSP
	exec      *device.Executor

	state   statedb.StateDB
	history *historydb.DB
	blocks  blockstore.BlockStore

	// file and ckpt are set for durable peers (Open): the open block file
	// and the checkpoint manager feeding from the commit pipeline.
	file *blockstore.FileStore
	ckpt *recovery.Manager
	// recovered describes what Open restored, for operators and tests.
	recovered RecoveryInfo

	ccMu sync.RWMutex
	ccs  map[string]installedCC

	listenMu    sync.Mutex
	txListeners map[string][]chan CommitEvent

	events  eventHub
	metrics *metrics.Registry
	tracer  *trace.Recorder

	// lastCommitNs is the wall-clock time (UnixNano) of the most recent
	// committed block; 0 until the first commit. /healthz derives the
	// last-commit age from it.
	lastCommitNs atomic.Int64

	// committer runs the pipelined commit path: parallel pre-validation,
	// sequential MVCC + state apply, async persistence. It owns block
	// deduplication, so racing deliveries from the ordered stream and
	// gossip commit each height exactly once, in order.
	committer *committer.Pipeline

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	// started is read by Stop while Start may run concurrently (a peer
	// torn down mid-startup), so it is atomic rather than a plain bool.
	started atomic.Bool
}

// New creates a volatile peer (state, history, and ledger all in memory).
// Call Start to attach it to an ordered block stream. The peer runs the
// CouchDB-flavour indexed state database, so installed chaincodes that
// declare indexes get rich provenance queries served from secondary indexes
// maintained at block commit.
func New(cfg Config) *Peer {
	state, err := statedb.NewIndexed()
	if err != nil { // unreachable: no definitions yet
		panic(err)
	}
	return newPeer(cfg, state, historydb.New(), blockstore.NewStore())
}

// RecoveryInfo describes what a durable peer restored at Open.
type RecoveryInfo struct {
	// CheckpointHeight is the checkpoint the peer restored from (0 when it
	// replayed the whole block file).
	CheckpointHeight uint64
	// ReplayedBlocks is the number of tail blocks replayed on top.
	ReplayedBlocks int
}

// Host is a peer process serving N independent channels. Each channel is a
// full single-channel Peer — its own ledger, sharded state store, history,
// commit pipeline, and recovery root — sharing only the process-level
// resources (the modeled Executor, i.e. the machine's cores). This is the
// SDSN@RT-style single-instance multi-tenant shape: channel pipelines never
// contend on locks, so aggregate throughput scales with channel count.
type Host struct {
	name     string
	order    []string
	channels map[string]*Peer
}

// channelSpec pairs a channel's public ID with its on-disk layout selector
// (empty layout = legacy single-channel files).
type channelSpec struct {
	id     string
	layout string
}

// channelSpecs expands a Config into the channels its host serves. A Config
// listing Channels gets the per-channel layout; a legacy Config with only
// ChannelID (the deprecated shim) serves that one channel from the legacy
// layout, so existing data directories open unchanged.
func channelSpecs(cfg Config) ([]channelSpec, error) {
	if len(cfg.Channels) == 0 {
		return []channelSpec{{id: cfg.ChannelID, layout: ""}}, nil
	}
	specs := make([]channelSpec, 0, len(cfg.Channels))
	seen := make(map[string]bool, len(cfg.Channels))
	for _, ch := range cfg.Channels {
		if err := validateChannelID(ch); err != nil {
			return nil, err
		}
		if seen[ch] {
			return nil, fmt.Errorf("peer %s: duplicate channel %q", cfg.Name, ch)
		}
		seen[ch] = true
		specs = append(specs, channelSpec{id: ch, layout: ch})
	}
	return specs, nil
}

// validateChannelID restricts channel IDs to filesystem- and wire-safe
// names: they become file names (blocks-<ch>.jsonl) and one-byte-length
// frame extensions.
func validateChannelID(ch string) error {
	if ch == "" {
		return errors.New("peer: empty channel ID")
	}
	if len(ch) > 64 {
		return fmt.Errorf("peer: channel ID %q too long (max 64)", ch)
	}
	for _, r := range ch {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("peer: channel ID %q: invalid character %q", ch, r)
		}
	}
	return nil
}

// NewHost creates a volatile multi-channel host: one in-memory Peer per
// configured channel. A Config using the deprecated ChannelID shim yields a
// host with that single channel.
func NewHost(cfg Config) (*Host, error) {
	specs, err := channelSpecs(cfg)
	if err != nil {
		return nil, err
	}
	h := &Host{name: cfg.Name, channels: make(map[string]*Peer, len(specs))}
	for _, spec := range specs {
		ccfg := cfg
		ccfg.ChannelID = spec.id
		h.add(spec.id, New(ccfg))
	}
	return h, nil
}

// Open creates a durable host rooted at cfg.Dir, recovering every
// configured channel independently: each channel's block file is loaded
// (discarding a crash-torn tail), its newest valid checkpoint restores
// state, history, and rich-query index definitions, and its block tail is
// replayed to the exact pre-crash fingerprint. From then on each channel's
// commit pipeline appends blocks to its own ledger file and takes a
// checkpoint every cfg.CheckpointEvery blocks. Shut down with Close (clean:
// final checkpoint per channel) — or kill the process; that is the point.
//
// The per-channel handle is Open(cfg).Channel(id); a legacy single-channel
// Config (ChannelID shim) serves its one channel from the pre-multichannel
// file layout, so existing data directories keep working.
func Open(cfg Config) (*Host, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("peer %s: Open needs a data directory", cfg.Name)
	}
	specs, err := channelSpecs(cfg)
	if err != nil {
		return nil, err
	}
	sync := blockstore.SyncOnClose
	if cfg.SyncEachAppend {
		sync = blockstore.SyncEachAppend
	}
	h := &Host{name: cfg.Name, channels: make(map[string]*Peer, len(specs))}
	for _, spec := range specs {
		opened, err := recovery.Open(cfg.Dir, recovery.Options{Sync: sync, Channel: spec.layout})
		if err != nil {
			h.Close() // release channels already opened
			return nil, fmt.Errorf("peer %s channel %q: %w", cfg.Name, spec.id, err)
		}
		ccfg := cfg
		ccfg.ChannelID = spec.id
		ccfg.layoutChannel = spec.layout
		p := newPeer(ccfg, opened.State, opened.History, opened.Blocks)
		p.file = opened.Blocks
		p.recovered = RecoveryInfo{
			CheckpointHeight: opened.CheckpointHeight,
			ReplayedBlocks:   opened.Replayed,
		}
		h.add(spec.id, p)
	}
	return h, nil
}

func (h *Host) add(id string, p *Peer) {
	h.order = append(h.order, id)
	h.channels[id] = p
}

// Name returns the host's peer name.
func (h *Host) Name() string { return h.name }

// Channels returns the served channel IDs in configuration order.
func (h *Host) Channels() []string { return append([]string(nil), h.order...) }

// Channel returns the peer instance serving the given channel, or nil when
// the host does not serve it.
func (h *Host) Channel(id string) *Peer { return h.channels[id] }

// Default returns the host's first configured channel — the one a
// channel-less (pre-multichannel) request is routed to.
func (h *Host) Default() *Peer {
	if len(h.order) == 0 {
		return nil
	}
	return h.channels[h.order[0]]
}

// Stop stops every channel's commit pipeline.
func (h *Host) Stop() {
	for _, id := range h.order {
		h.channels[id].Stop()
	}
}

// Close shuts every channel down cleanly (final checkpoint each), returning
// the first error.
func (h *Host) Close() error {
	var err error
	for _, id := range h.order {
		if cerr := h.channels[id].Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Crash shuts every channel down the unclean way (no flush, no final
// checkpoint), for crash-recovery tests and demos.
func (h *Host) Crash() {
	for _, id := range h.order {
		h.channels[id].Crash()
	}
}

// newPeer assembles a peer over the given ledger resources and starts its
// commit pipeline. When the blocks argument is a durable FileStore, the
// pipeline additionally takes periodic checkpoints through a recovery
// manager.
func newPeer(cfg Config, state statedb.StateDB, history *historydb.DB, blocks blockstore.BlockStore) *Peer {
	p := &Peer{
		name:        cfg.Name,
		channelID:   cfg.ChannelID,
		signer:      cfg.Signer,
		msp:         cfg.MSP,
		exec:        cfg.Executor,
		state:       state,
		history:     history,
		blocks:      blocks,
		ccs:         make(map[string]installedCC),
		txListeners: make(map[string][]chan CommitEvent),
		metrics:     metrics.NewRegistry(),
		tracer:      cfg.Tracer,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	// Attach per-operation state latency histograms and the shard-
	// contention counter to the peer's registry.
	if sm, ok := state.(interface{ SetMetrics(*metrics.Registry) }); ok {
		sm.SetMetrics(p.metrics)
	}
	ccfg := committer.Config{
		State:   p.state,
		History: p.history,
		Blocks:  p.blocks,
		Verifier: &committer.EnvelopeVerifier{
			MSP:    p.msp,
			Policy: p.policyFor,
			Exec:   p.exec,
		},
		Workers:     cfg.CommitWorkers,
		MVCCWorkers: cfg.MVCCWorkers,
		Exec:        p.exec,
		Metrics:     p.metrics,
		Tracer:      cfg.Tracer,
		Name:        cfg.Name,
		OnAccepted: func(b *blockstore.Block) {
			if p.exec != nil {
				p.exec.Transfer(blockWireSize(b)) // block dissemination
			}
		},
		OnCommitted: p.onBlockCommitted,
	}
	if file, ok := blocks.(*blockstore.FileStore); ok {
		p.ckpt = recovery.NewManagerChannel(cfg.Dir, cfg.layoutChannel, cfg.CheckpointKeep, state, history, file)
		ccfg.CheckpointEvery = cfg.CheckpointEvery
		if ccfg.CheckpointEvery == 0 {
			ccfg.CheckpointEvery = DefaultCheckpointEvery
		}
		ccfg.OnCheckpoint = p.ckpt.OnCheckpoint
	}
	p.committer = committer.New(ccfg)
	return p
}

// policyFor resolves an installed chaincode's endorsement policy for the
// commit pipeline's validation workers.
func (p *Peer) policyFor(chaincode string) (endorser.Policy, bool) {
	icc, err := p.chaincode(chaincode)
	if err != nil {
		return nil, false
	}
	return icc.policy, true
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// ChannelID returns the channel this peer instance serves.
func (p *Peer) ChannelID() string { return p.channelID }

// Metrics returns the peer's counter registry.
func (p *Peer) Metrics() *metrics.Registry { return p.metrics }

// Executor returns the peer's device executor (may be nil).
func (p *Peer) Executor() *device.Executor { return p.exec }

// Ledger returns the peer's block store (read-only use expected).
func (p *Peer) Ledger() blockstore.BlockStore { return p.blocks }

// Recovery reports what this peer restored at Open (zero for volatile
// peers).
func (p *Peer) Recovery() RecoveryInfo { return p.recovered }

// Height returns the peer's committed block height.
func (p *Peer) Height() uint64 { return p.blocks.Height() }

// IndexDeclarer is implemented by chaincodes that ship secondary-index
// declarations for the state database — the analog of the CouchDB index
// definitions Fabric chaincode packages carry in META-INF/statedb. The
// peer applies the declarations at install (and upgrade) time.
type IndexDeclarer interface {
	Indexes() []richquery.IndexDef
}

// InstallChaincode registers a chaincode and its endorsement policy, and
// applies any state-database indexes the chaincode declares.
func (p *Peer) InstallChaincode(name string, cc shim.Chaincode, policy endorser.Policy) error {
	p.ccMu.Lock()
	defer p.ccMu.Unlock()
	if _, dup := p.ccs[name]; dup {
		return fmt.Errorf("%w: %q", ErrChaincodeExists, name)
	}
	if err := p.defineIndexes(name, cc); err != nil {
		return err
	}
	p.ccs[name] = installedCC{cc: cc, policy: policy}
	return nil
}

// UpgradeChaincode atomically replaces an installed chaincode's
// implementation and policy (Fabric's upgrade lifecycle). The chaincode
// must already be installed; indexes newly declared by the upgraded
// version are built over existing state.
func (p *Peer) UpgradeChaincode(name string, cc shim.Chaincode, policy endorser.Policy) error {
	p.ccMu.Lock()
	defer p.ccMu.Unlock()
	if _, ok := p.ccs[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownChaincode, name)
	}
	if err := p.defineIndexes(name, cc); err != nil {
		return err
	}
	p.ccs[name] = installedCC{cc: cc, policy: policy}
	return nil
}

// defineIndexes applies a chaincode's index declarations to the state
// database atomically (all validated before any is built, so a rejected
// install leaves no partial index set), namespacing index names by
// chaincode.
func (p *Peer) defineIndexes(ccName string, cc shim.Chaincode) error {
	decl, ok := cc.(IndexDeclarer)
	if !ok {
		return nil
	}
	ixdb, ok := p.state.(*statedb.IndexedStore)
	if !ok {
		return nil // plain store: declarations are advisory, queries scan
	}
	defs := decl.Indexes()
	for i := range defs {
		defs[i].Name = ccName + "." + defs[i].Name
	}
	if err := ixdb.DefineIndexes(defs); err != nil {
		return fmt.Errorf("peer %s: define indexes: %w", p.name, err)
	}
	return nil
}

func (p *Peer) chaincode(name string) (installedCC, error) {
	p.ccMu.RLock()
	defer p.ccMu.RUnlock()
	icc, ok := p.ccs[name]
	if !ok {
		return installedCC{}, fmt.Errorf("%w: %q", ErrUnknownChaincode, name)
	}
	return icc, nil
}

// proposalWireSize approximates the proposal's transfer size.
func proposalWireSize(prop *endorser.Proposal) int {
	n := 512 + len(prop.Creator)
	for _, a := range prop.Args {
		n += len(a)
	}
	return n
}

// ProcessProposal verifies the client signature, simulates the chaincode,
// and returns a signed endorsement. This is the peer half of HyperProv's
// Post path.
func (p *Peer) ProcessProposal(prop *endorser.Proposal) (resp *endorser.Response, err error) {
	start := time.Now()
	inflight := p.metrics.Gauge(metrics.EndorseInflight)
	inflight.Inc()
	defer func() {
		inflight.Dec()
		if err != nil {
			p.metrics.Counter(metrics.EndorsementsFailed).Inc()
		} else {
			p.metrics.Counter(metrics.EndorsementsServed).Inc()
			p.tracer.Observe(prop.TxID, trace.StageEndorse, p.name, start, "")
		}
	}()
	if p.exec != nil {
		p.exec.Transfer(proposalWireSize(prop)) // receive over the LAN
	}
	clientID, err := p.msp.Deserialize(prop.Creator)
	if err != nil {
		return nil, fmt.Errorf("peer %s: proposal creator: %w", p.name, err)
	}
	// The gateway fans one signed proposal out to every endorsing peer; in
	// an in-process network they share the MSP's signature cache, so only
	// the first peer pays the ECDSA verification (and its modeled charge).
	var onMiss func()
	if p.exec != nil {
		onMiss = func() { p.exec.Verify() }
	}
	if err := clientID.VerifyCached(p.msp.VerifyCache(), prop.SignedBytes(), prop.Signature, onMiss); err != nil {
		return nil, fmt.Errorf("peer %s: proposal signature: %w", p.name, err)
	}
	icc, err := p.chaincode(prop.Chaincode)
	if err != nil {
		return nil, err
	}
	if p.exec != nil {
		p.exec.Endorse() // chaincode container round-trip
	}

	// Simulate against a height-stamped snapshot view: every read of this
	// proposal sees one consistent world at a block boundary, and a commit
	// landing mid-simulation can neither shear the reads nor be blocked by
	// them. MVCC validation still arbitrates against whatever commits first.
	view := statedb.NewView(p.state)
	defer view.Release()
	stub := shim.NewStub(shim.Config{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Function:  prop.Function,
		Args:      prop.Args,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
		State:     view,
		History:   p.history,
	})
	var simResp shim.Response
	if prop.Function == InitFunction {
		simResp = icc.cc.Init(stub)
	} else {
		simResp = icc.cc.Invoke(stub)
	}
	if simResp.Status != shim.OK {
		return nil, fmt.Errorf("%w: %s", ErrSimulationFailed, simResp.Message)
	}
	rwsBytes, err := stub.RWSet().Marshal()
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal rwset: %w", p.name, err)
	}
	var eventBytes []byte
	if evs := stub.Events(); len(evs) > 0 {
		eventBytes, err = json.Marshal(evs)
		if err != nil {
			return nil, fmt.Errorf("peer %s: marshal events: %w", p.name, err)
		}
	}

	out := &endorser.Response{
		TxID:     prop.TxID,
		Status:   simResp.Status,
		Message:  simResp.Message,
		Payload:  simResp.Payload,
		RWSet:    rwsBytes,
		Events:   eventBytes,
		Endorser: p.signer.Serialize(),
	}
	if p.exec != nil {
		p.exec.Sign()
	}
	sig, err := p.signer.Sign(out.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("peer %s: sign endorsement: %w", p.name, err)
	}
	out.Signature = sig
	if p.exec != nil {
		p.exec.Transfer(len(out.Payload) + len(rwsBytes) + 512) // send response
	}
	return out, nil
}

// Query runs a read-only chaincode invocation against committed state
// without recording or committing anything (HyperProv's Get path:
// "lightweight retrieval of provenance data"). It first waits for the
// commit pipeline's persistence watermark, so a query never observes state
// from a block whose ledger append and history are still in flight; it
// then reads through a snapshot view, so a long scan runs to completion
// without stalling — or being stalled by — blocks committing concurrently.
func (p *Peer) Query(chaincode, fn string, args [][]byte, creator []byte) (shim.Response, error) {
	p.committer.Sync()
	icc, err := p.chaincode(chaincode)
	if err != nil {
		return shim.Response{}, err
	}
	p.metrics.Counter(metrics.QueriesServed).Inc()
	if p.exec != nil {
		p.exec.Endorse()
	}
	view := statedb.NewView(p.state)
	defer view.Release()
	stub := shim.NewStub(shim.Config{
		TxID:      "query",
		ChannelID: p.channelID,
		Function:  fn,
		Args:      args,
		Creator:   creator,
		Timestamp: time.Now(),
		State:     view,
		History:   p.history,
	})
	return icc.cc.Invoke(stub), nil
}

// RegisterTxListener returns a channel that receives exactly one
// CommitEvent when txID commits. If the transaction already committed, the
// event is delivered immediately, so registering after commit (a client
// reconnecting mid-flight) does not hang forever.
func (p *Peer) RegisterTxListener(txID string) <-chan CommitEvent {
	ch := make(chan CommitEvent, 1)
	if loc, ok := p.blocks.Locate(txID); ok {
		ch <- CommitEvent{TxID: txID, BlockNum: loc.BlockNum, Code: loc.Code}
		return ch
	}
	p.listenMu.Lock()
	p.txListeners[txID] = append(p.txListeners[txID], ch)
	p.listenMu.Unlock()
	// The commit pipeline may have persisted the block between the lookup
	// and the registration; re-check and self-deliver if notify raced past.
	if loc, ok := p.blocks.Locate(txID); ok && p.removeListener(txID, ch) {
		ch <- CommitEvent{TxID: txID, BlockNum: loc.BlockNum, Code: loc.Code}
	}
	return ch
}

// removeListener detaches one registered channel; it reports false when the
// channel was already consumed (and notified) by notifyCommit.
func (p *Peer) removeListener(txID string, ch chan CommitEvent) bool {
	p.listenMu.Lock()
	defer p.listenMu.Unlock()
	chans := p.txListeners[txID]
	for i, c := range chans {
		if c == ch {
			chans = append(chans[:i], chans[i+1:]...)
			if len(chans) == 0 {
				delete(p.txListeners, txID)
			} else {
				p.txListeners[txID] = chans
			}
			return true
		}
	}
	return false
}

// notifyCommit delivers a commit event to the transaction's listeners.
// Delivery is non-blocking: a listener whose buffer is already full has its
// event dropped, so a slow consumer can never stall the commit pipeline's
// persistence stage.
func (p *Peer) notifyCommit(ev CommitEvent) {
	p.listenMu.Lock()
	chans := p.txListeners[ev.TxID]
	delete(p.txListeners, ev.TxID)
	p.listenMu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- ev:
		default: // slow listener: drop rather than stall commits
		}
	}
}

// Start attaches the peer to an ordered block stream and begins committing.
// Blocks are handed to the commit pipeline without waiting for persistence,
// so block N's ledger append overlaps block N+1's validation.
func (p *Peer) Start(blocks <-chan *blockstore.Block) {
	p.started.Store(true)
	go func() {
		defer close(p.done)
		for {
			select {
			case b, ok := <-blocks:
				if !ok {
					return
				}
				p.committer.Submit(b)
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop detaches the peer from the block stream, drains the commit
// pipeline, and closes event streams.
func (p *Peer) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	if p.started.Load() {
		<-p.done
	}
	p.committer.Close()
	p.events.close()
}

// Close shuts a durable peer down cleanly: it stops the block stream,
// drains the commit pipeline, takes a final checkpoint (so the next Open
// restores with an empty replay tail), and closes the block file. On a
// volatile peer it is equivalent to Stop.
func (p *Peer) Close() error {
	p.Stop()
	var err error
	if p.ckpt != nil {
		err = p.ckpt.Final()
	}
	if p.file != nil {
		if cerr := p.file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Crash shuts the peer down the unclean way, for crash-recovery tests and
// demos: the pipeline's goroutines are reaped but no final checkpoint is
// taken and the block file is closed without flush or fsync — whatever the
// OS had not yet been handed is gone, exactly as when the process is
// killed mid-commit.
func (p *Peer) Crash() {
	p.Stop()
	if p.file != nil {
		_ = p.file.CloseNoFlush()
	}
}

// Sync blocks until every block accepted by the commit pipeline is fully
// persisted (state, history, block store, and commit notifications).
func (p *Peer) Sync() { p.committer.Sync() }

// Watermark returns the number of fully persisted blocks — the height up
// to which queries are guaranteed to read committed-only data.
func (p *Peer) Watermark() uint64 { return p.committer.Watermark() }

// blockWireSize is a block's dissemination transfer size: exact for
// envelopes carrying their canonical encoding (everything that went through
// the cutter or arrived off the wire), estimated for bare test fixtures.
func blockWireSize(b *blockstore.Block) int {
	n := 256
	for i := range b.Envelopes {
		if sz, ok := b.Envelopes[i].EncodedLen(); ok {
			n += sz
			continue
		}
		n += 768 + len(b.Envelopes[i].RWSet) + len(b.Envelopes[i].Response)
		for _, a := range b.Envelopes[i].Args {
			n += len(a)
		}
	}
	return n
}

// CommitBlock validates every transaction in the block, commits the valid
// ones, and waits for persistence. It is exported for single-stepped tests
// and gossip delivery; Start feeds the pipeline asynchronously in
// production.
func (p *Peer) CommitBlock(ordered *blockstore.Block) {
	p.committer.Submit(ordered)
	p.committer.Sync()
}

// onBlockCommitted runs in the commit pipeline's persistence stage, once
// per committed block in block order: it bumps the peer's commit counters,
// publishes chaincode events of valid transactions, and notifies
// registered transaction listeners.
func (p *Peer) onBlockCommitted(b *blockstore.Block) {
	p.metrics.Counter(metrics.BlocksCommitted).Inc()
	p.lastCommitNs.Store(time.Now().UnixNano())
	for i := range b.Envelopes {
		if b.TxValidation[i] == blockstore.TxValid {
			p.metrics.Counter(metrics.TxValidated).Inc()
			p.publishTxEvents(b.Envelopes[i].TxID, b.Header.Number, b.Envelopes[i].Events)
		} else {
			p.metrics.Counter(metrics.TxInvalidated).Inc()
		}
		p.tracer.Complete(b.Envelopes[i].TxID, b.TxValidation[i].String())
		p.notifyCommit(CommitEvent{
			TxID:     b.Envelopes[i].TxID,
			BlockNum: b.Header.Number,
			Code:     b.TxValidation[i],
		})
	}
}

// LastCommitTime returns when the most recent block committed on this peer
// (zero time before the first commit). The admin endpoint's /healthz view
// reports its age.
func (p *Peer) LastCommitTime() time.Time {
	ns := p.lastCommitNs.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// BlocksFrom returns this peer's committed blocks with number >= from,
// serving gossip pulls from neighbours.
func (p *Peer) BlocksFrom(from uint64) []*blockstore.Block {
	return p.blocks.BlocksFrom(from)
}

// DeliverBlock accepts a block fetched from a gossip neighbour. The block
// passes the same validation pipeline as an ordered block; out-of-order or
// duplicate deliveries are ignored. Delivery only submits — it does not
// wait for persistence — so a long gossip catch-up streams the whole tail
// through the pipelined commit path; gossip calls Sync once per pull.
func (p *Peer) DeliverBlock(b *blockstore.Block) {
	p.committer.Submit(b)
}

// StateFingerprint returns a deterministic hash over the peer's committed
// world state, first syncing the commit pipeline so the fingerprint covers
// every accepted block. Two peers that committed the same chain produce
// identical fingerprints, which is how multi-process deployments assert
// convergence beyond raw height.
func (p *Peer) StateFingerprint() string {
	p.committer.Sync()
	return committer.StateFingerprint(p.state)
}
