// Package peer implements the peer node: it hosts chaincode and serves
// endorsement requests, and it consumes the ordered block stream, runs the
// validation pipeline (creator signature, endorsement policy, MVCC), and
// commits valid transactions to the world state, history, and block store.
// In the paper's deployments each of the four machines (desktops or RPis)
// runs one such peer.
package peer

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// InitFunction is the reserved function name that routes to chaincode Init.
const InitFunction = "__init"

// Errors returned by the peer.
var (
	ErrUnknownChaincode = errors.New("peer: unknown chaincode")
	ErrChaincodeExists  = errors.New("peer: chaincode already installed")
	ErrStopped          = errors.New("peer: stopped")
	ErrSimulationFailed = errors.New("peer: chaincode simulation failed")
)

// CommitEvent notifies listeners of one committed transaction.
type CommitEvent struct {
	TxID     string
	BlockNum uint64
	Code     blockstore.ValidationCode
}

// installedCC pairs a chaincode with its endorsement policy.
type installedCC struct {
	cc     shim.Chaincode
	policy endorser.Policy
}

// Config assembles a peer.
type Config struct {
	// Name identifies the peer (e.g. "peer0.org1").
	Name string
	// Signer is the peer's endorsing identity.
	Signer *identity.SigningIdentity
	// MSP verifies client and endorser identities.
	MSP *identity.MSP
	// Executor models this peer's hardware; nil means zero modeled cost.
	Executor *device.Executor
	// ChannelID names the single channel this peer joins.
	ChannelID string
}

// Peer is one endorsing/committing node.
type Peer struct {
	name      string
	channelID string
	signer    *identity.SigningIdentity
	msp       *identity.MSP
	exec      *device.Executor

	state   statedb.StateDB
	history *historydb.DB
	blocks  *blockstore.Store

	ccMu sync.RWMutex
	ccs  map[string]installedCC

	listenMu    sync.Mutex
	txListeners map[string][]chan CommitEvent

	events  eventHub
	metrics *metrics.Registry

	// commitMu serializes block commits: the ordered stream and gossip
	// deliveries may race, and validation must run against the state as of
	// exactly the previous block.
	commitMu sync.Mutex

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// New creates a peer. Call Start to attach it to an ordered block stream.
// The peer runs the CouchDB-flavour indexed state database, so installed
// chaincodes that declare indexes get rich provenance queries served from
// secondary indexes maintained at block commit.
func New(cfg Config) *Peer {
	state, err := statedb.NewIndexed()
	if err != nil { // unreachable: no definitions yet
		panic(err)
	}
	return &Peer{
		name:        cfg.Name,
		channelID:   cfg.ChannelID,
		signer:      cfg.Signer,
		msp:         cfg.MSP,
		exec:        cfg.Executor,
		state:       state,
		history:     historydb.New(),
		blocks:      blockstore.NewStore(),
		ccs:         make(map[string]installedCC),
		txListeners: make(map[string][]chan CommitEvent),
		metrics:     metrics.NewRegistry(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// Metrics returns the peer's counter registry.
func (p *Peer) Metrics() *metrics.Registry { return p.metrics }

// Executor returns the peer's device executor (may be nil).
func (p *Peer) Executor() *device.Executor { return p.exec }

// Ledger returns the peer's block store (read-only use expected).
func (p *Peer) Ledger() *blockstore.Store { return p.blocks }

// Height returns the peer's committed block height.
func (p *Peer) Height() uint64 { return p.blocks.Height() }

// IndexDeclarer is implemented by chaincodes that ship secondary-index
// declarations for the state database — the analog of the CouchDB index
// definitions Fabric chaincode packages carry in META-INF/statedb. The
// peer applies the declarations at install (and upgrade) time.
type IndexDeclarer interface {
	Indexes() []richquery.IndexDef
}

// InstallChaincode registers a chaincode and its endorsement policy, and
// applies any state-database indexes the chaincode declares.
func (p *Peer) InstallChaincode(name string, cc shim.Chaincode, policy endorser.Policy) error {
	p.ccMu.Lock()
	defer p.ccMu.Unlock()
	if _, dup := p.ccs[name]; dup {
		return fmt.Errorf("%w: %q", ErrChaincodeExists, name)
	}
	if err := p.defineIndexes(name, cc); err != nil {
		return err
	}
	p.ccs[name] = installedCC{cc: cc, policy: policy}
	return nil
}

// UpgradeChaincode atomically replaces an installed chaincode's
// implementation and policy (Fabric's upgrade lifecycle). The chaincode
// must already be installed; indexes newly declared by the upgraded
// version are built over existing state.
func (p *Peer) UpgradeChaincode(name string, cc shim.Chaincode, policy endorser.Policy) error {
	p.ccMu.Lock()
	defer p.ccMu.Unlock()
	if _, ok := p.ccs[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownChaincode, name)
	}
	if err := p.defineIndexes(name, cc); err != nil {
		return err
	}
	p.ccs[name] = installedCC{cc: cc, policy: policy}
	return nil
}

// defineIndexes applies a chaincode's index declarations to the state
// database atomically (all validated before any is built, so a rejected
// install leaves no partial index set), namespacing index names by
// chaincode.
func (p *Peer) defineIndexes(ccName string, cc shim.Chaincode) error {
	decl, ok := cc.(IndexDeclarer)
	if !ok {
		return nil
	}
	ixdb, ok := p.state.(*statedb.IndexedStore)
	if !ok {
		return nil // plain store: declarations are advisory, queries scan
	}
	defs := decl.Indexes()
	for i := range defs {
		defs[i].Name = ccName + "." + defs[i].Name
	}
	if err := ixdb.DefineIndexes(defs); err != nil {
		return fmt.Errorf("peer %s: define indexes: %w", p.name, err)
	}
	return nil
}

func (p *Peer) chaincode(name string) (installedCC, error) {
	p.ccMu.RLock()
	defer p.ccMu.RUnlock()
	icc, ok := p.ccs[name]
	if !ok {
		return installedCC{}, fmt.Errorf("%w: %q", ErrUnknownChaincode, name)
	}
	return icc, nil
}

// proposalWireSize approximates the proposal's transfer size.
func proposalWireSize(prop *endorser.Proposal) int {
	n := 512 + len(prop.Creator)
	for _, a := range prop.Args {
		n += len(a)
	}
	return n
}

// ProcessProposal verifies the client signature, simulates the chaincode,
// and returns a signed endorsement. This is the peer half of HyperProv's
// Post path.
func (p *Peer) ProcessProposal(prop *endorser.Proposal) (resp *endorser.Response, err error) {
	defer func() {
		if err != nil {
			p.metrics.Counter(metrics.EndorsementsFailed).Inc()
		} else {
			p.metrics.Counter(metrics.EndorsementsServed).Inc()
		}
	}()
	if p.exec != nil {
		p.exec.Transfer(proposalWireSize(prop)) // receive over the LAN
	}
	clientID, err := p.msp.Deserialize(prop.Creator)
	if err != nil {
		return nil, fmt.Errorf("peer %s: proposal creator: %w", p.name, err)
	}
	if p.exec != nil {
		p.exec.Verify()
	}
	if err := clientID.Verify(prop.SignedBytes(), prop.Signature); err != nil {
		return nil, fmt.Errorf("peer %s: proposal signature: %w", p.name, err)
	}
	icc, err := p.chaincode(prop.Chaincode)
	if err != nil {
		return nil, err
	}
	if p.exec != nil {
		p.exec.Endorse() // chaincode container round-trip
	}

	stub := shim.NewStub(shim.Config{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Function:  prop.Function,
		Args:      prop.Args,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
		State:     p.state,
		History:   p.history,
	})
	var simResp shim.Response
	if prop.Function == InitFunction {
		simResp = icc.cc.Init(stub)
	} else {
		simResp = icc.cc.Invoke(stub)
	}
	if simResp.Status != shim.OK {
		return nil, fmt.Errorf("%w: %s", ErrSimulationFailed, simResp.Message)
	}
	rwsBytes, err := stub.RWSet().Marshal()
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal rwset: %w", p.name, err)
	}
	var eventBytes []byte
	if evs := stub.Events(); len(evs) > 0 {
		eventBytes, err = json.Marshal(evs)
		if err != nil {
			return nil, fmt.Errorf("peer %s: marshal events: %w", p.name, err)
		}
	}

	out := &endorser.Response{
		TxID:     prop.TxID,
		Status:   simResp.Status,
		Message:  simResp.Message,
		Payload:  simResp.Payload,
		RWSet:    rwsBytes,
		Events:   eventBytes,
		Endorser: p.signer.Serialize(),
	}
	if p.exec != nil {
		p.exec.Sign()
	}
	sig, err := p.signer.Sign(out.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("peer %s: sign endorsement: %w", p.name, err)
	}
	out.Signature = sig
	if p.exec != nil {
		p.exec.Transfer(len(out.Payload) + len(rwsBytes) + 512) // send response
	}
	return out, nil
}

// Query runs a read-only chaincode invocation against committed state
// without recording or committing anything (HyperProv's Get path:
// "lightweight retrieval of provenance data").
func (p *Peer) Query(chaincode, fn string, args [][]byte, creator []byte) (shim.Response, error) {
	icc, err := p.chaincode(chaincode)
	if err != nil {
		return shim.Response{}, err
	}
	p.metrics.Counter(metrics.QueriesServed).Inc()
	if p.exec != nil {
		p.exec.Endorse()
	}
	stub := shim.NewStub(shim.Config{
		TxID:      "query",
		ChannelID: p.channelID,
		Function:  fn,
		Args:      args,
		Creator:   creator,
		Timestamp: time.Now(),
		State:     p.state,
		History:   p.history,
	})
	return icc.cc.Invoke(stub), nil
}

// RegisterTxListener returns a channel that receives exactly one
// CommitEvent when txID commits. Register before submitting to ordering.
func (p *Peer) RegisterTxListener(txID string) <-chan CommitEvent {
	ch := make(chan CommitEvent, 1)
	p.listenMu.Lock()
	p.txListeners[txID] = append(p.txListeners[txID], ch)
	p.listenMu.Unlock()
	return ch
}

func (p *Peer) notifyCommit(ev CommitEvent) {
	p.listenMu.Lock()
	chans := p.txListeners[ev.TxID]
	delete(p.txListeners, ev.TxID)
	p.listenMu.Unlock()
	for _, ch := range chans {
		ch <- ev
	}
}

// Start attaches the peer to an ordered block stream and begins committing.
func (p *Peer) Start(blocks <-chan *blockstore.Block) {
	p.started = true
	go func() {
		defer close(p.done)
		for {
			select {
			case b, ok := <-blocks:
				if !ok {
					return
				}
				p.CommitBlock(b)
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop detaches the peer from the block stream and closes event streams.
func (p *Peer) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	if p.started {
		<-p.done
	}
	p.events.close()
}

// blockWireSize approximates a block's dissemination transfer size.
func blockWireSize(b *blockstore.Block) int {
	n := 256
	for i := range b.Envelopes {
		n += 768 + len(b.Envelopes[i].RWSet) + len(b.Envelopes[i].Response)
		for _, a := range b.Envelopes[i].Args {
			n += len(a)
		}
	}
	return n
}

// CommitBlock validates every transaction in the block and commits the
// valid ones. It is exported for single-stepped tests; Start drives it in
// production.
func (p *Peer) CommitBlock(ordered *blockstore.Block) {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	// Deliveries may arrive from both the ordering service and gossip;
	// commit each height exactly once, in order.
	if ordered.Header.Number != p.blocks.Height() {
		return
	}
	if p.exec != nil {
		p.exec.Transfer(blockWireSize(ordered)) // block dissemination
	}
	b := ordered.Clone()
	b.TxValidation = make([]blockstore.ValidationCode, len(b.Envelopes))

	batch := statedb.NewUpdateBatch()
	blockWrites := make(map[string]bool)
	type histRec struct {
		key   string
		entry historydb.Entry
	}
	var hist []histRec

	for i := range b.Envelopes {
		env := &b.Envelopes[i]
		code := p.validateTx(env, blockWrites)
		b.TxValidation[i] = code
		if p.exec != nil {
			p.exec.Commit()
		}
		if code != blockstore.TxValid {
			continue
		}
		rws, err := rwset.Unmarshal(env.RWSet)
		if err != nil { // unreachable: validateTx parsed it already
			b.TxValidation[i] = blockstore.TxMalformed
			continue
		}
		ver := statedb.Version{BlockNum: b.Header.Number, TxNum: uint64(i)}
		for _, w := range rws.Writes {
			blockWrites[w.Key] = true
			if w.IsDelete {
				batch.Delete(w.Key, ver)
			} else {
				batch.Put(w.Key, w.Value, ver)
			}
			hist = append(hist, histRec{key: w.Key, entry: historydb.Entry{
				TxID:      env.TxID,
				BlockNum:  b.Header.Number,
				TxNum:     uint64(i),
				Value:     w.Value,
				IsDelete:  w.IsDelete,
				Timestamp: env.Timestamp,
			}})
		}
	}

	height := statedb.Version{BlockNum: b.Header.Number, TxNum: uint64(len(b.Envelopes))}
	if err := p.state.ApplyUpdates(batch, height); err != nil {
		// A replayed block (height regression) is ignored: the state
		// already reflects it. This happens when re-subscribing.
		return
	}
	for _, h := range hist {
		p.history.Record(h.key, h.entry)
	}
	if err := p.blocks.Append(b); err != nil {
		return
	}
	p.metrics.Counter(metrics.BlocksCommitted).Inc()
	for i := range b.Envelopes {
		if b.TxValidation[i] == blockstore.TxValid {
			p.metrics.Counter(metrics.TxValidated).Inc()
			p.publishTxEvents(b.Envelopes[i].TxID, b.Header.Number, b.Envelopes[i].Events)
		} else {
			p.metrics.Counter(metrics.TxInvalidated).Inc()
		}
		p.notifyCommit(CommitEvent{
			TxID:     b.Envelopes[i].TxID,
			BlockNum: b.Header.Number,
			Code:     b.TxValidation[i],
		})
	}
}

// BlocksFrom returns this peer's committed blocks with number >= from,
// serving gossip pulls from neighbours.
func (p *Peer) BlocksFrom(from uint64) []*blockstore.Block {
	return p.blocks.BlocksFrom(from)
}

// DeliverBlock accepts a block fetched from a gossip neighbour. The block
// passes the same validation pipeline as an ordered block; out-of-order or
// duplicate deliveries are ignored.
func (p *Peer) DeliverBlock(b *blockstore.Block) {
	p.CommitBlock(b)
}

// validateTx runs the per-transaction validation pipeline.
func (p *Peer) validateTx(env *blockstore.Envelope, blockWrites map[string]bool) blockstore.ValidationCode {
	// 1. Syntax: the rwset must parse.
	rws, err := rwset.Unmarshal(env.RWSet)
	if err != nil {
		return blockstore.TxMalformed
	}
	// 2. Creator signature.
	clientID, err := p.msp.Deserialize(env.Creator)
	if err != nil {
		return blockstore.TxBadSignature
	}
	if p.exec != nil {
		p.exec.Verify()
	}
	if err := clientID.Verify(env.SignedBytes(), env.Signature); err != nil {
		return blockstore.TxBadSignature
	}
	// 3. Endorsement policy (VSCC).
	icc, err := p.chaincode(env.Chaincode)
	if err != nil {
		return blockstore.TxMalformed
	}
	resps := make([]*endorser.Response, len(env.Endorsements))
	for j, e := range env.Endorsements {
		resps[j] = &endorser.Response{
			TxID:      env.TxID,
			Status:    shim.OK,
			Payload:   env.Response,
			RWSet:     env.RWSet,
			Events:    env.Events,
			Endorser:  e.Endorser,
			Signature: e.Signature,
		}
		if p.exec != nil {
			p.exec.Verify()
		}
	}
	if err := endorser.CheckEndorsements(icc.policy, p.msp, resps); err != nil {
		return blockstore.TxEndorsementPolicyFailure
	}
	// 4. MVCC.
	if err := rwset.Validate(rws, p.state, blockWrites); err != nil {
		return blockstore.TxMVCCConflict
	}
	return blockstore.TxValid
}
