package peer

import (
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
)

func TestStartStopConsumesStream(t *testing.T) {
	f := newFixture(t)
	blocks := make(chan *blockstore.Block, 4)
	f.peer.Start(blocks)

	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	env := f.envelopeFor(prop, resp)
	b, err := blockstore.NewBlock(0, nil, []blockstore.Envelope{env})
	if err != nil {
		t.Fatal(err)
	}
	wait := f.peer.RegisterTxListener(env.TxID)
	blocks <- b
	select {
	case ev := <-wait:
		if ev.Code != blockstore.TxValid {
			t.Errorf("code = %s", ev.Code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream-driven commit did not happen")
	}
	f.peer.Stop()
	f.peer.Stop() // idempotent
}

func TestSubscribeEventsDirect(t *testing.T) {
	f := newFixture(t)
	events := f.peer.SubscribeEvents(8)

	// Init emits provenance.init; drive it through CommitBlock.
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	f.commitEnvs(f.envelopeFor(prop, resp))

	select {
	case ev := <-events:
		if ev.Name != "provenance.init" {
			t.Errorf("event = %+v", ev)
		}
		if ev.BlockNum != 0 {
			t.Errorf("block = %d", ev.BlockNum)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event delivered")
	}
	// Stop closes subscriber channels.
	f.peer.Stop()
	if _, ok := <-events; ok {
		// Drain anything buffered, then expect close.
		for range events {
		}
	}
	// Subscribing after stop yields a closed channel.
	if _, ok := <-f.peer.SubscribeEvents(1); ok {
		t.Error("post-stop subscription delivered an event")
	}
}

func TestGossipHooksServeAndAccept(t *testing.T) {
	f := newFixture(t)
	prop := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	b := f.commitEnvs(f.envelopeFor(prop, resp))

	if got := f.peer.BlocksFrom(0); len(got) != 1 {
		t.Fatalf("BlocksFrom = %d blocks", len(got))
	}
	// A second peer accepts the block via the gossip delivery hook.
	signer, err := f.ca.Enroll("peer1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	p2 := New(Config{Name: "peer1", Signer: signer, MSP: f.msp, ChannelID: "ch"})
	if err := p2.InstallChaincode(provenance.ChaincodeName, provenance.New(),
		endorser.SignedBy("Org1MSP")); err != nil {
		t.Fatal(err)
	}
	// Delivery is asynchronous (Submit only); Sync flushes the pipeline the
	// way gossip does once per pulled batch.
	p2.DeliverBlock(b)
	p2.Sync()
	if p2.Height() != 1 {
		t.Fatalf("gossiped height = %d", p2.Height())
	}
	// Duplicate and out-of-order deliveries are ignored.
	p2.DeliverBlock(b)
	future, err := blockstore.NewBlock(5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2.DeliverBlock(future)
	p2.Sync()
	if p2.Height() != 1 {
		t.Errorf("height after bogus deliveries = %d", p2.Height())
	}
}

func TestUpgradeChaincodeDirect(t *testing.T) {
	f := newFixture(t)
	if err := f.peer.UpgradeChaincode("ghost", provenance.New(), nil); err == nil {
		t.Error("upgrade of unknown chaincode succeeded")
	}
	if err := f.peer.UpgradeChaincode(provenance.ChaincodeName, provenance.New(),
		endorser.SignedBy("Org1MSP")); err != nil {
		t.Errorf("upgrade: %v", err)
	}
}

func TestAccessorsAndMetrics(t *testing.T) {
	f := newFixture(t)
	if f.peer.Name() != "peer0" {
		t.Errorf("Name = %q", f.peer.Name())
	}
	if f.peer.Executor() != nil {
		t.Error("expected nil executor in fixture")
	}
	prop := f.propose(InitFunction)
	if _, err := f.peer.ProcessProposal(prop); err != nil {
		t.Fatal(err)
	}
	if got := f.peer.Metrics().Counter(metrics.EndorsementsServed).Value(); got != 1 {
		t.Errorf("endorsements_served = %d", got)
	}
}

func TestWireSizeEstimates(t *testing.T) {
	prop := &endorser.Proposal{Args: [][]byte{make([]byte, 1000)}, Creator: make([]byte, 100)}
	if got := proposalWireSize(prop); got < 1100 {
		t.Errorf("proposalWireSize = %d", got)
	}
	b, err := blockstore.NewBlock(0, nil, []blockstore.Envelope{
		{Args: [][]byte{make([]byte, 2048)}, RWSet: make([]byte, 512)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := blockWireSize(b); got < 2560 {
		t.Errorf("blockWireSize = %d", got)
	}
	// An executor-backed peer accounts transfer costs during commit.
	exec := device.NewExecutor(device.XeonE51603, device.NopClock{}, 1)
	f := newFixture(t)
	f.peer.exec = exec
	initProp := f.propose(InitFunction)
	resp, err := f.peer.ProcessProposal(initProp)
	if err != nil {
		t.Fatal(err)
	}
	f.commitEnvs(f.envelopeFor(initProp, resp))
	if exec.BusyTime() == 0 {
		t.Error("no device cost accounted")
	}
}
