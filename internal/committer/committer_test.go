package committer

import (
	"fmt"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// txFactory builds signed envelopes the validation pipeline accepts (or
// rejects, when deliberately broken).
type txFactory struct {
	t        testing.TB
	msp      *identity.MSP
	client   *identity.SigningIdentity
	endorser *identity.SigningIdentity
	policy   endorser.Policy
	nextTx   int
}

func newTxFactory(t testing.TB) *txFactory {
	t.Helper()
	ca, err := identity.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	client, err := ca.Enroll("client0", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	peerID, err := ca.Enroll("peer0", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	return &txFactory{
		t:        t,
		msp:      identity.NewMSP(ca),
		client:   client,
		endorser: peerID,
		policy:   endorser.SignedBy("Org1MSP"),
	}
}

// verifier returns a stage-1 validator over the factory's MSP and policy.
func (f *txFactory) verifier() *EnvelopeVerifier {
	return &EnvelopeVerifier{
		MSP: f.msp,
		Policy: func(cc string) (endorser.Policy, bool) {
			if cc != "cc" {
				return nil, false
			}
			return f.policy, true
		},
	}
}

// ledger is one committer's backing stores.
type ledger struct {
	state   *statedb.Store
	history *historydb.DB
	blocks  *blockstore.Store
}

func newLedger() *ledger {
	return &ledger{state: statedb.New(), history: historydb.New(), blocks: blockstore.NewStore()}
}

func (l *ledger) config(f *txFactory, workers int) Config {
	return Config{
		State:    l.state,
		History:  l.history,
		Blocks:   l.blocks,
		Verifier: f.verifier(),
		Workers:  workers,
	}
}

// envelope builds a fully signed envelope carrying rws. mutate, when
// non-nil, runs between endorsement signing and client signing (tampering
// after that invalidates the client signature instead).
func (f *txFactory) envelope(txID string, rws *rwset.ReadWriteSet, mutate func(*blockstore.Envelope)) blockstore.Envelope {
	f.t.Helper()
	rwsBytes, err := rws.Marshal()
	if err != nil {
		f.t.Fatal(err)
	}
	resp := &endorser.Response{
		TxID:     txID,
		Status:   shim.OK,
		RWSet:    rwsBytes,
		Endorser: f.endorser.Serialize(),
	}
	endSig, err := f.endorser.Sign(resp.SignedBytes())
	if err != nil {
		f.t.Fatal(err)
	}
	env := blockstore.Envelope{
		TxID:      txID,
		ChannelID: "ch",
		Chaincode: "cc",
		Function:  "set",
		Creator:   f.client.Serialize(),
		Timestamp: time.Unix(1700000000, 0).UTC(),
		RWSet:     rwsBytes,
		Endorsements: []blockstore.Endorsement{
			{Endorser: resp.Endorser, Signature: endSig},
		},
	}
	if mutate != nil {
		mutate(&env)
	}
	sig, err := f.client.Sign(env.SignedBytes())
	if err != nil {
		f.t.Fatal(err)
	}
	env.Signature = sig
	return env
}

// write returns an rwset with one write per key (value derived from key).
func writeSet(keys ...string) *rwset.ReadWriteSet {
	rws := &rwset.ReadWriteSet{}
	for _, k := range keys {
		rws.Writes = append(rws.Writes, rwset.Write{Key: k, Value: []byte("v-" + k)})
	}
	return rws
}

func (f *txFactory) txID() string {
	f.nextTx++
	return fmt.Sprintf("tx-%04d", f.nextTx)
}

// buildStream assembles the shared adversarial block stream: valid writes,
// MVCC conflicts, bad signatures, policy failures, malformed rwsets, an
// empty block, deletes, and a duplicate txID — every verdict the validator
// can hand out.
func buildStream(t testing.TB, f *txFactory) []*blockstore.Block {
	t.Helper()
	var blocks []*blockstore.Block
	var prev []byte
	add := func(envs ...blockstore.Envelope) {
		b, err := blockstore.NewBlock(uint64(len(blocks)), prev, envs)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
		prev = b.Header.Hash()
	}

	// Block 0: plain valid writes.
	add(
		f.envelope(f.txID(), writeSet("a", "b"), nil),
		f.envelope(f.txID(), writeSet("c"), nil),
	)
	// Block 1: an MVCC loser — reads "a" as absent though block 0 created
	// it — plus an intra-block conflict pair on "d".
	staleRead := &rwset.ReadWriteSet{
		Reads:  []rwset.Read{{Key: "a", Version: nil}},
		Writes: []rwset.Write{{Key: "a", Value: []byte("stale")}},
	}
	first := &rwset.ReadWriteSet{
		Reads:  []rwset.Read{{Key: "d", Version: nil}},
		Writes: []rwset.Write{{Key: "d", Value: []byte("first")}},
	}
	second := &rwset.ReadWriteSet{
		Reads:  []rwset.Read{{Key: "d", Version: nil}},
		Writes: []rwset.Write{{Key: "d", Value: []byte("second")}},
	}
	add(
		f.envelope(f.txID(), staleRead, nil),
		f.envelope(f.txID(), first, nil),
		f.envelope(f.txID(), second, nil),
	)
	// Block 2: every prevalidation failure mode.
	badSig := f.envelope(f.txID(), writeSet("e"), nil)
	badSig.Function = "tampered-after-signing"
	noEndorse := f.envelope(f.txID(), writeSet("f"), func(env *blockstore.Envelope) {
		env.Endorsements = nil
	})
	malformed := f.envelope(f.txID(), writeSet("g"), func(env *blockstore.Envelope) {
		env.RWSet = []byte("not an rwset")
	})
	unknownCC := f.envelope(f.txID(), writeSet("h"), func(env *blockstore.Envelope) {
		env.Chaincode = "ghost"
	})
	add(badSig, noEndorse, malformed, unknownCC, f.envelope(f.txID(), writeSet("i"), nil))
	// Block 3: empty.
	add()
	// Block 4: duplicate txID — identical envelope twice; the second loses
	// MVCC because the first's write lands in blockWrites.
	dupID := f.txID()
	dupSet := &rwset.ReadWriteSet{
		Reads:  []rwset.Read{{Key: "dup", Version: nil}},
		Writes: []rwset.Write{{Key: "dup", Value: []byte("dup")}},
	}
	dup := f.envelope(dupID, dupSet, nil)
	add(dup, dup)
	// Block 5: deletes and overwrites of live keys.
	del := &rwset.ReadWriteSet{Writes: []rwset.Write{
		{Key: "a", IsDelete: true},
		{Key: "b", Value: []byte("b-v2")},
	}}
	add(f.envelope(f.txID(), del, nil))
	return blocks
}

// TestSerialAndPipelineEquivalent is the contract test: the same block
// stream must yield identical validation codes, identical final state, and
// identical history through both engines.
func TestSerialAndPipelineEquivalent(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)

	serialLedger := newLedger()
	serial := NewSerial(serialLedger.config(f, 0))
	for _, b := range stream {
		if !serial.Submit(b) {
			t.Fatalf("serial rejected block %d", b.Header.Number)
		}
	}

	pipeLedger := newLedger()
	pipe := New(pipeLedger.config(f, 4))
	for _, b := range stream {
		if !pipe.Submit(b) {
			t.Fatalf("pipeline rejected block %d", b.Header.Number)
		}
	}
	pipe.Sync()
	pipe.Close()

	if got, want := pipeLedger.blocks.Height(), serialLedger.blocks.Height(); got != want {
		t.Fatalf("pipeline height = %d, serial = %d", got, want)
	}
	for n := uint64(0); n < serialLedger.blocks.Height(); n++ {
		sb, err := serialLedger.blocks.GetByNumber(n)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := pipeLedger.blocks.GetByNumber(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sb.TxValidation {
			if sb.TxValidation[i] != pb.TxValidation[i] {
				t.Errorf("block %d tx %d: serial=%s pipeline=%s",
					n, i, sb.TxValidation[i], pb.TxValidation[i])
			}
		}
	}
	if sf, pf := StateFingerprint(serialLedger.state), StateFingerprint(pipeLedger.state); sf != pf {
		t.Errorf("state fingerprints diverge: serial=%s pipeline=%s", sf, pf)
	}
	for _, key := range []string{"a", "b", "c", "d", "dup", "i"} {
		if sv, pv := serialLedger.history.Versions(key), pipeLedger.history.Versions(key); sv != pv {
			t.Errorf("history versions for %q: serial=%d pipeline=%d", key, sv, pv)
		}
	}
	if err := pipeLedger.blocks.VerifyChain(); err != nil {
		t.Errorf("pipeline chain: %v", err)
	}
}

// TestStreamVerdicts pins the exact validation codes of the adversarial
// stream, so equivalence can never degrade into "both engines equally
// wrong in a new way" without a test failing.
func TestStreamVerdicts(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)
	l := newLedger()
	pipe := New(l.config(f, 4))
	defer pipe.Close()
	for _, b := range stream {
		pipe.Submit(b)
	}
	pipe.Sync()

	want := map[uint64][]blockstore.ValidationCode{
		0: {blockstore.TxValid, blockstore.TxValid},
		1: {blockstore.TxMVCCConflict, blockstore.TxValid, blockstore.TxMVCCConflict},
		2: {blockstore.TxBadSignature, blockstore.TxEndorsementPolicyFailure,
			blockstore.TxMalformed, blockstore.TxMalformed, blockstore.TxValid},
		3: {},
		4: {blockstore.TxValid, blockstore.TxMVCCConflict},
		5: {blockstore.TxValid},
	}
	for n, codes := range want {
		b, err := l.blocks.GetByNumber(n)
		if err != nil {
			t.Fatalf("block %d: %v", n, err)
		}
		if len(b.TxValidation) != len(codes) {
			t.Fatalf("block %d has %d codes, want %d", n, len(b.TxValidation), len(codes))
		}
		for i, c := range codes {
			if b.TxValidation[i] != c {
				t.Errorf("block %d tx %d = %s, want %s", n, i, b.TxValidation[i], c)
			}
		}
	}
	// Deletes applied: "a" gone, "b" overwritten.
	if _, ok := l.state.Get("a"); ok {
		t.Error("key a should be deleted")
	}
	if vv, ok := l.state.Get("b"); !ok || string(vv.Value) != "b-v2" {
		t.Errorf("key b = %q, want b-v2", vv.Value)
	}
}
