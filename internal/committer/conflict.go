package committer

import (
	"sort"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// This file implements conflict-graph MVCC scheduling: stage 2's walk, the
// last strictly sequential step in the commit hot path, fanned across a
// worker pool. Two transactions conflict iff one writes a key (or a key
// inside a range) the other reads or writes; independent transactions
// validate and stage concurrently, and conflicting ones serialize along the
// graph's edges in original transaction order. Scheduling is by topological
// wavefronts with a barrier between waves, which is what makes the verdicts
// bit-identical to the serial walk:
//
//   - Every transaction whose writes could influence tx j's verdict (point
//     read, query-observed key, or range bounds overlap) shares an edge
//     with j, directed by transaction order — so by the time j's wave runs,
//     exactly the earlier-in-order conflicting transactions have settled
//     and merged their writes into blockWrites.
//   - Transactions that merged early despite a LATER transaction order
//     (possible for conflict-free txs) touch only keys outside j's
//     footprint, which the MVCC check never consults for j.
//
// The serial walk therefore remains the equivalence oracle: for any block
// stream and any worker count, codes, state, and history match exactly.

// conflictGraph is the per-block transaction dependency DAG. Edges run from
// lower to higher transaction index, so every topological order respects
// the block's serialization order along conflicts.
type conflictGraph struct {
	succ  [][]int // succ[i]: transaction indexes that must wait for i
	indeg []int
	edges int
}

// writerChain tracks, per key, the ascending transaction indexes that write
// it. Writers of one key are chained pairwise (w1→w2→w3), so a reader only
// needs edges to its nearest writer on each side: the chain transitively
// orders it against all the others.
type writerChain struct {
	txs []int
}

// buildConflictGraph constructs the dependency graph over a block's
// prevalidated rwsets. Only stage-1-valid transactions contribute
// footprints; transactions with settled failure codes are isolated nodes
// (their verdict is already final and they stage no writes). The footprints
// come straight off the deserialized rwsets — nothing is re-unmarshaled.
func buildConflictGraph(preval []PrevalResult) *conflictGraph {
	n := len(preval)
	g := &conflictGraph{succ: make([][]int, n), indeg: make([]int, n)}

	fps := make([]rwset.Footprint, n)
	writers := make(map[string]*writerChain)
	for i, pr := range preval {
		if pr.Code != blockstore.TxValid || pr.RWSet == nil {
			continue
		}
		fps[i] = pr.RWSet.Footprint()
		for _, k := range fps[i].WriteKeys {
			wc := writers[k]
			if wc == nil {
				wc = &writerChain{}
				writers[k] = wc
			}
			// Chain consecutive writers of the same key (write-write edge).
			if m := len(wc.txs); m > 0 && wc.txs[m-1] != i {
				g.addEdge(wc.txs[m-1], i)
			}
			if m := len(wc.txs); m == 0 || wc.txs[m-1] != i {
				wc.txs = append(wc.txs, i)
			}
		}
	}
	if len(writers) == 0 {
		return g // write-free block: every tx is independent
	}

	// sortedWriteKeys supports the range-bounds overlap scan: written keys
	// inside [start, end) are found with two binary searches instead of
	// probing every written key against every range.
	sortedWriteKeys := make([]string, 0, len(writers))
	for k := range writers {
		sortedWriteKeys = append(sortedWriteKeys, k)
	}
	sort.Strings(sortedWriteKeys)

	for j := range preval {
		fp := &fps[j]
		for _, k := range fp.ReadKeys {
			if wc := writers[k]; wc != nil {
				g.linkReader(j, wc)
			}
		}
		for _, rb := range fp.RangeBounds {
			lo := sort.SearchStrings(sortedWriteKeys, rb.Start)
			for x := lo; x < len(sortedWriteKeys); x++ {
				k := sortedWriteKeys[x]
				if rb.End != "" && k >= rb.End {
					break
				}
				g.linkReader(j, writers[k])
			}
		}
	}
	return g
}

// linkReader orders reader j against a key's writer chain: one edge from
// the nearest writer before j, one to the nearest writer after j. The
// chain's internal edges order j against the rest transitively.
func (g *conflictGraph) linkReader(j int, wc *writerChain) {
	// wc.txs is ascending; find the first writer with index >= j.
	x := sort.SearchInts(wc.txs, j)
	if x > 0 && wc.txs[x-1] != j {
		g.addEdge(wc.txs[x-1], j)
	}
	for ; x < len(wc.txs); x++ {
		if wc.txs[x] != j {
			g.addEdge(j, wc.txs[x])
			return
		}
	}
}

// addEdge records i→j (i validates and merges before j), skipping exact
// duplicates of the most recent edge from i — the builder emits edges for
// one consumer key at a time, so repeats cluster.
func (g *conflictGraph) addEdge(i, j int) {
	if s := g.succ[i]; len(s) > 0 && s[len(s)-1] == j {
		return
	}
	g.succ[i] = append(g.succ[i], j)
	g.indeg[j]++
	g.edges++
}

// waves returns the topological wavefronts in original transaction order:
// wave 0 holds every transaction with no unsettled predecessor, wave k+1
// the ones unblocked by wave k. Within a wave, indexes ascend. A
// conflict-free block yields one wave of width n; a fully chained block
// degenerates to n waves of width 1 — the serial walk.
func (g *conflictGraph) waves() [][]int {
	n := len(g.indeg)
	indeg := make([]int, n)
	copy(indeg, g.indeg)
	wave := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			wave = append(wave, i)
		}
	}
	var out [][]int
	for len(wave) > 0 {
		out = append(out, wave)
		var next []int
		for _, i := range wave {
			for _, j := range g.succ[i] {
				// Duplicate edges (the builder suppresses only clustered
				// repeats) decrement multiple times; a node is ready when
				// its count reaches zero exactly once.
				indeg[j]--
				if indeg[j] == 0 {
					next = append(next, j)
				}
			}
		}
		sort.Ints(next)
		wave = next
	}
	return out
}

// mvccFinalizeParallel is stage 2's conflict-graph scheduler: the parallel
// equivalent of mvccFinalize. It settles every transaction's final
// validation code and accumulates the block's UpdateBatch and history
// entries, validating independent transactions concurrently across up to
// `workers` goroutines. Like mvccFinalize it only reads state — the caller
// applies the batch.
func mvccFinalizeParallel(cfg Config, t *task, workers int) {
	b := t.b
	n := len(b.Envelopes)

	start := stageStart()
	g := buildConflictGraph(t.preval)
	waves := g.waves()
	if cfg.Metrics != nil {
		cfg.Metrics.Histogram(metrics.CommitMVCCGraphBuild).Observe(stageElapsed(start))
	}

	// blockWrites is written only at wave barriers and read concurrently
	// within a wave; the graph guarantees no wave both reads and settles
	// the same key.
	blockWrites := make(map[string]bool, n)
	staging := statedb.NewStagingBatch(workers)
	histPerTx := make([][]historydb.KeyedEntry, n)

	validate := func(i int) {
		env := &b.Envelopes[i]
		pr := t.preval[i]
		code := pr.Code
		if code == blockstore.TxValid {
			if err := rwset.Validate(pr.RWSet, cfg.State, blockWrites); err != nil {
				code = blockstore.TxMVCCConflict
			}
		}
		b.TxValidation[i] = code
		if code != blockstore.TxValid {
			return
		}
		ver := statedb.Version{BlockNum: b.Header.Number, TxNum: uint64(i)}
		entries := make([]historydb.KeyedEntry, 0, len(pr.RWSet.Writes))
		for _, w := range pr.RWSet.Writes {
			if w.IsDelete {
				staging.Delete(w.Key, ver)
			} else {
				staging.Put(w.Key, w.Value, ver)
			}
			entries = append(entries, historydb.KeyedEntry{Key: w.Key, Entry: historydb.Entry{
				TxID:      env.TxID,
				BlockNum:  b.Header.Number,
				TxNum:     uint64(i),
				Value:     w.Value,
				IsDelete:  w.IsDelete,
				Timestamp: env.Timestamp,
			}})
		}
		histPerTx[i] = entries
	}

	var widths *metrics.Histogram
	if cfg.Metrics != nil {
		widths = cfg.Metrics.Histogram(metrics.CommitMVCCWaveWidth)
	}
	for _, wave := range waves {
		if widths != nil {
			// Widths ride in nanosecond slots (1 tx == 1ns), like the
			// gossip convergence-lag histogram.
			widths.Observe(time.Duration(len(wave)))
		}
		// The modeled validate/apply cost is charged per worker stripe, not
		// per transaction: a worker's core spends the same total time either
		// way, and the batch charge costs one core acquisition instead of
		// one per tx. Charges never influence verdicts, so equivalence with
		// the serial walk (which charges per tx) is unaffected.
		if par := min(workers, len(wave)); par <= 1 {
			if cfg.Exec != nil {
				cfg.Exec.CommitN(len(wave))
			}
			for _, i := range wave {
				validate(i)
			}
		} else {
			// Striped assignment, like stage 1's prevalidate fan-out.
			done := make(chan struct{}, par)
			for w := 0; w < par; w++ {
				go func(w int) {
					if cfg.Exec != nil {
						cfg.Exec.CommitN((len(wave) - w + par - 1) / par)
					}
					for x := w; x < len(wave); x += par {
						validate(wave[x])
					}
					done <- struct{}{}
				}(w)
			}
			for w := 0; w < par; w++ {
				<-done
			}
		}
		// Barrier: merge the wave's settled writes so the next wave's
		// validations see exactly the earlier-in-order valid writers.
		for _, i := range wave {
			if b.TxValidation[i] != blockstore.TxValid {
				continue
			}
			for _, w := range t.preval[i].RWSet.Writes {
				blockWrites[w.Key] = true
			}
		}
	}

	t.batch = staging.Batch()
	// Flatten per-transaction history in transaction order — byte-identical
	// to the serial walk's append order.
	for _, entries := range histPerTx {
		t.hist = append(t.hist, entries...)
	}
}
