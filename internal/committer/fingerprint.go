package committer

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"github.com/hyperprov/hyperprov/internal/statedb"
)

// StateFingerprint returns a deterministic hash over a state database's
// live keys, values, and versions. Two stores that committed the same block
// stream — through any committer engine — have equal fingerprints; the
// equivalence test and the commit benchmark both lean on this.
func StateFingerprint(s statedb.StateDB) string {
	snap := s.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var num [8]byte
	for _, k := range keys {
		vv := snap[k]
		binary.BigEndian.PutUint64(num[:], uint64(len(k)))
		h.Write(num[:])
		h.Write([]byte(k))
		binary.BigEndian.PutUint64(num[:], uint64(len(vv.Value)))
		h.Write(num[:])
		h.Write(vv.Value)
		binary.BigEndian.PutUint64(num[:], vv.Version.BlockNum)
		h.Write(num[:])
		binary.BigEndian.PutUint64(num[:], vv.Version.TxNum)
		h.Write(num[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
