package committer

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"github.com/hyperprov/hyperprov/internal/statedb"
)

// StateFingerprint returns a deterministic hash over a state database's
// live keys, values, and versions. Two stores that committed the same block
// stream — through any committer engine, live or via checkpoint restore
// plus tail replay — have equal fingerprints; the equivalence test, the
// commit benchmark, and the crash-recovery torture tests all lean on this.
// The hash streams from a snapshot's ordered iterator: no materialized
// copy, no sort.
func StateFingerprint(s statedb.StateDB) string {
	snap := s.Snapshot()
	defer snap.Release()
	h := sha256.New()
	var num [8]byte
	it := snap.All()
	defer it.Close()
	for {
		kv, ok := it.Next()
		if !ok {
			break
		}
		binary.BigEndian.PutUint64(num[:], uint64(len(kv.Key)))
		h.Write(num[:])
		h.Write([]byte(kv.Key))
		binary.BigEndian.PutUint64(num[:], uint64(len(kv.Value)))
		h.Write(num[:])
		h.Write(kv.Value)
		binary.BigEndian.PutUint64(num[:], kv.Version.BlockNum)
		h.Write(num[:])
		binary.BigEndian.PutUint64(num[:], kv.Version.TxNum)
		h.Write(num[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SnapshotFingerprint is StateFingerprint over an already-taken snapshot;
// checkpoints stamp their payload with it so recovery can verify a restored
// state byte-for-byte before trusting it.
func SnapshotFingerprint(snap map[string]statedb.VersionedValue) string {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var num [8]byte
	for _, k := range keys {
		vv := snap[k]
		binary.BigEndian.PutUint64(num[:], uint64(len(k)))
		h.Write(num[:])
		h.Write([]byte(k))
		binary.BigEndian.PutUint64(num[:], uint64(len(vv.Value)))
		h.Write(num[:])
		h.Write(vv.Value)
		binary.BigEndian.PutUint64(num[:], vv.Version.BlockNum)
		h.Write(num[:])
		binary.BigEndian.PutUint64(num[:], vv.Version.TxNum)
		h.Write(num[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
