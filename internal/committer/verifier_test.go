package committer

import (
	"testing"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

// TestPrevalidateWarmCacheSkipsSignatureWork pins the redelivery fast path:
// prevalidating the same envelope twice (gossip redelivery, gateway-checked
// then commit-checked) does every ECDSA verification exactly once. The
// modeled Exec.Verify charge rides the same onMiss hook, so "no new misses"
// is also "no new hardware charge".
func TestPrevalidateWarmCacheSkipsSignatureWork(t *testing.T) {
	f := newTxFactory(t)
	v := f.verifier()
	env := f.envelope(f.txID(), writeSet("k"), nil)

	if res := v.Prevalidate(&env); res.Code != blockstore.TxValid {
		t.Fatalf("first prevalidate: %v", res.Code)
	}
	cold := f.msp.VerifyCache().Stats()
	if cold.Misses < 2 { // creator signature + one endorsement
		t.Fatalf("cold pass recorded %d misses, want >= 2", cold.Misses)
	}

	if res := v.Prevalidate(&env); res.Code != blockstore.TxValid {
		t.Fatalf("warm prevalidate: %v", res.Code)
	}
	warm := f.msp.VerifyCache().Stats()
	if warm.Misses != cold.Misses {
		t.Fatalf("warm pass performed %d new verifications, want 0", warm.Misses-cold.Misses)
	}
	if warm.Hits < cold.Hits+2 {
		t.Fatalf("warm pass hit %d times, want >= 2", warm.Hits-cold.Hits)
	}

	// A tampered copy must still fail: the cache keys on exact bytes.
	bad := f.envelope(f.txID(), writeSet("k2"), nil)
	bad.Function = "tampered-after-signing"
	if res := v.Prevalidate(&bad); res.Code != blockstore.TxBadSignature {
		t.Fatalf("tampered envelope: %v, want TxBadSignature", res.Code)
	}
}
