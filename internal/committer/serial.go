package committer

import (
	"sync"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Serial is the single-goroutine reference committer: every stage of every
// block runs to completion on the submitter's goroutine before Submit
// returns. It is the baseline the commit benchmark compares the pipeline
// against, and the oracle the equivalence test checks the pipeline with.
type Serial struct {
	cfg Config

	mu       sync.Mutex
	next     uint64
	lastHash []byte
}

var _ Committer = (*Serial)(nil)

// NewSerial creates a serial committer expecting block number
// cfg.Blocks.Height() next.
func NewSerial(cfg Config) *Serial {
	return &Serial{cfg: cfg, next: cfg.Blocks.Height(), lastHash: cfg.Blocks.LastHash()}
}

// Submit validates and commits the block synchronously. Duplicate,
// out-of-order, and integrity-failing blocks are dropped.
func (s *Serial) Submit(ordered *blockstore.Block) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !admissible(ordered, s.next, s.lastHash) {
		return false
	}
	s.next++
	s.lastHash = ordered.Header.Hash()
	if s.cfg.OnAccepted != nil {
		s.cfg.OnAccepted(ordered)
	}
	t := newTask(ordered)

	start := stageStart()
	t.preval = prevalidate(s.cfg.Verifier, t.b, 1)
	observe(s.cfg.Metrics, metrics.CommitStagePreval, start)
	s.cfg.Tracer.AddBatch(t.txIDs(), trace.StageCommitPreval, s.cfg.Name, start, stageElapsed(start))

	start = stageStart()
	mvccFinalize(s.cfg.State, s.cfg.Exec, t)
	err := applyState(s.cfg.State, t)
	if err == nil {
		captureState(s.cfg, t)
	}
	observe(s.cfg.Metrics, metrics.CommitStageMVCC, start)
	s.cfg.Tracer.AddBatch(t.txIDs(), trace.StageCommitMVCC, s.cfg.Name, start, stageElapsed(start))
	if err != nil {
		// Replayed block against restored state: already reflected, drop
		// (the height is consumed, exactly as the pipeline does).
		return false
	}

	start = stageStart()
	persist(s.cfg, t, start)
	observe(s.cfg.Metrics, metrics.CommitStagePersist, start)
	if t.capture != nil {
		s.cfg.OnCheckpoint(*t.capture)
	}
	return true
}

// Sync is a no-op: Submit persists before returning.
func (s *Serial) Sync() {}

// Watermark returns the persisted block height.
func (s *Serial) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Close is a no-op; Serial holds no goroutines.
func (s *Serial) Close() {}
