package committer

import (
	"testing"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// commitPrefix serially commits the first n blocks of stream onto a fresh
// ledger and returns it (the uninterrupted reference for replay tests).
func commitPrefix(t *testing.T, f *txFactory, stream []*blockstore.Block, n int) *ledger {
	t.Helper()
	l := newLedger()
	eng := NewSerial(l.config(f, 1))
	for _, b := range stream[:n] {
		if !eng.Submit(b) {
			t.Fatalf("reference rejected block %d", b.Header.Number)
		}
	}
	return l
}

func TestReplayReproducesCommittedState(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f) // adversarial: bad sigs, MVCC losers, dups
	ref := commitPrefix(t, f, stream, len(stream))

	// Replay the committed blocks (stored validation flags included) onto
	// fresh stores, as recovery does after loading the block file.
	state := statedb.New()
	history := historydb.New()
	if err := Replay(state, history, ref.blocks.BlocksFrom(0)); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if got, want := StateFingerprint(state), StateFingerprint(ref.state); got != want {
		t.Errorf("replayed state fingerprint = %s, want %s", got, want)
	}
	if got, want := history.Fingerprint(), ref.history.Fingerprint(); got != want {
		t.Errorf("replayed history fingerprint = %s, want %s", got, want)
	}
	if got, want := state.Height(), ref.state.Height(); got != want {
		t.Errorf("replayed height = %v, want %v", got, want)
	}
}

func TestReplayTailFromSnapshot(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)
	cut := len(stream) / 2
	ref := commitPrefix(t, f, stream, len(stream))
	prefix := commitPrefix(t, f, stream, cut)

	// Restore the mid-stream snapshot, then replay only the tail.
	state := statedb.New()
	state.Restore(prefix.state.Export(), prefix.state.Height())
	history := historydb.New()
	history.Restore(prefix.history.Snapshot())
	if err := Replay(state, history, ref.blocks.BlocksFrom(uint64(cut))); err != nil {
		t.Fatalf("Replay tail: %v", err)
	}
	if got, want := StateFingerprint(state), StateFingerprint(ref.state); got != want {
		t.Errorf("tail-replayed state fingerprint = %s, want %s", got, want)
	}
	if got, want := history.Fingerprint(), ref.history.Fingerprint(); got != want {
		t.Errorf("tail-replayed history fingerprint = %s, want %s", got, want)
	}
}

func TestReplayRejectsForeignPreState(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)
	ref := commitPrefix(t, f, stream, len(stream))

	// Replaying the tail against a state that is NOT the pre-tail boundary
	// must fail loudly (height regression), never silently fork.
	state := statedb.New()
	state.Restore(ref.state.Export(), ref.state.Height()) // already at tip
	if err := Replay(state, nil, ref.blocks.BlocksFrom(0)); err == nil {
		t.Fatal("replay over already-reflected state succeeded")
	}
}

func TestCheckpointCapturesAtConfiguredBoundaries(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)
	if len(stream) < 4 {
		t.Fatalf("stream too short: %d", len(stream))
	}

	for _, engine := range []string{"serial", "pipeline"} {
		t.Run(engine, func(t *testing.T) {
			var captures []Capture
			l := newLedger()
			cfg := l.config(f, 2)
			cfg.CheckpointEvery = 2
			cfg.OnCheckpoint = func(c Capture) { captures = append(captures, c) }
			var eng Committer
			if engine == "serial" {
				eng = NewSerial(cfg)
			} else {
				eng = New(cfg)
			}
			for _, b := range stream {
				eng.Submit(b)
			}
			eng.Sync()
			eng.Close()

			want := len(stream) / 2
			if len(captures) != want {
				t.Fatalf("captures = %d, want %d", len(captures), want)
			}
			for i, c := range captures {
				if c.Height != uint64(2*(i+1)) {
					t.Errorf("capture %d height = %d, want %d", i, c.Height, 2*(i+1))
				}
				// Every capture must equal an uninterrupted run of its
				// prefix — the consistency property recovery depends on.
				prefix := commitPrefix(t, f, stream, int(c.Height))
				if got, want := SnapshotFingerprint(c.State.Materialize()), StateFingerprint(prefix.state); got != want {
					t.Errorf("capture at height %d: fingerprint %s, want %s", c.Height, got, want)
				}
				if c.StateHeight != prefix.state.Height() {
					t.Errorf("capture at height %d: state height %v, want %v",
						c.Height, c.StateHeight, prefix.state.Height())
				}
			}
		})
	}
}
