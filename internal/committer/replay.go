package committer

import (
	"fmt"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// Replay re-commits blocks that already passed full validation in a
// previous process lifetime — the tail-replay half of crash recovery. The
// blocks come from the durable block store with their TxValidation flags
// settled, so stage-1 work (signature and policy checks) is skipped
// entirely: transactions the original run invalidated keep their stored
// code, and transactions it validated re-run only the deterministic MVCC
// walk, which must reproduce the stored verdict exactly. Any divergence
// means the state the replay started from does not match what the original
// run had at these blocks' boundary — corruption, not crash — and aborts
// the replay with an error rather than forking state from the ledger.
//
// History entries are re-recorded when history is non-nil, so a recovered
// peer's GetKeyHistory matches an uninterrupted run's.
func Replay(state statedb.StateDB, history *historydb.DB, blocks []*blockstore.Block) error {
	for _, stored := range blocks {
		if err := replayBlock(state, history, stored); err != nil {
			return err
		}
	}
	return nil
}

// replayBlock re-applies one stored block. The stored block is shadowed by
// a shallow copy with its own validation slice — replay re-derives the
// codes, and the durable store's in-memory copy must never be written to,
// even with equal values. A full JSON clone would be correct too, but it
// doubles replay cost and recovery time is the product here; the replay
// path only reads the shared envelopes.
func replayBlock(state statedb.StateDB, history *historydb.DB, stored *blockstore.Block) error {
	shadow := *stored
	shadow.TxValidation = make([]blockstore.ValidationCode, len(shadow.Envelopes))
	t := &task{b: &shadow}
	t.preval = make([]PrevalResult, len(t.b.Envelopes))
	for i := range t.b.Envelopes {
		code := blockstore.TxValid
		if i < len(stored.TxValidation) {
			code = stored.TxValidation[i]
		}
		if code != blockstore.TxValid {
			t.preval[i] = PrevalResult{Code: code}
			continue
		}
		rws, err := rwset.Unmarshal(t.b.Envelopes[i].RWSet)
		if err != nil {
			// The original run parsed this rwset; failing now is corruption.
			return fmt.Errorf("committer: replay block %d tx %d: %w",
				t.b.Header.Number, i, err)
		}
		t.preval[i] = PrevalResult{Code: blockstore.TxValid, RWSet: rws}
	}
	mvccFinalize(state, nil, t)
	for i, code := range t.b.TxValidation {
		if want := t.preval[i].Code; code != want && t.preval[i].Code == blockstore.TxValid {
			// mvccFinalize downgraded a stored-valid tx: the pre-state this
			// replay ran against differs from the original commit's.
			return fmt.Errorf("committer: replay block %d tx %d: stored %s, replayed %s",
				t.b.Header.Number, i, blockstore.TxValid, code)
		}
	}
	if err := applyState(state, t); err != nil {
		return fmt.Errorf("committer: replay block %d: %w", t.b.Header.Number, err)
	}
	if history != nil {
		history.RecordBatch(t.hist)
	}
	return nil
}
