package committer

import (
	"fmt"
	"testing"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// mvccConfig returns a committer config with the MVCC pool pinned.
func (l *ledger) mvccConfig(f *txFactory, workers, mvccWorkers int) Config {
	cfg := l.config(f, workers)
	cfg.MVCCWorkers = mvccWorkers
	return cfg
}

// runStream drives a committer over the stream and syncs it.
func runStream(t *testing.T, c Committer, stream []*blockstore.Block) {
	t.Helper()
	for _, b := range stream {
		if !c.Submit(b) {
			t.Fatalf("committer rejected block %d", b.Header.Number)
		}
	}
	c.Sync()
	c.Close()
}

// writtenKeys collects every key any envelope in the stream writes, for
// history comparison.
func writtenKeys(t *testing.T, stream []*blockstore.Block) []string {
	t.Helper()
	seen := map[string]bool{}
	var keys []string
	for _, b := range stream {
		for i := range b.Envelopes {
			rws, err := rwset.Unmarshal(b.Envelopes[i].RWSet)
			if err != nil {
				continue // malformed-by-design envelope
			}
			for _, w := range rws.Writes {
				if !seen[w.Key] {
					seen[w.Key] = true
					keys = append(keys, w.Key)
				}
			}
		}
	}
	return keys
}

// assertEquivalent checks codes, state fingerprint, and per-key history of
// `got` against the serial oracle's ledger.
func assertEquivalent(t *testing.T, label string, oracle, got *ledger, stream []*blockstore.Block) {
	t.Helper()
	if gh, wh := got.blocks.Height(), oracle.blocks.Height(); gh != wh {
		t.Fatalf("%s: height = %d, serial = %d", label, gh, wh)
	}
	for n := uint64(0); n < oracle.blocks.Height(); n++ {
		sb, err := oracle.blocks.GetByNumber(n)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := got.blocks.GetByNumber(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sb.TxValidation {
			if sb.TxValidation[i] != pb.TxValidation[i] {
				t.Errorf("%s: block %d tx %d = %s, serial = %s",
					label, n, i, pb.TxValidation[i], sb.TxValidation[i])
			}
		}
	}
	if sf, pf := StateFingerprint(oracle.state), StateFingerprint(got.state); sf != pf {
		t.Errorf("%s: state fingerprint %s, serial %s", label, pf, sf)
	}
	for _, key := range writtenKeys(t, stream) {
		if sv, pv := oracle.history.Versions(key), got.history.Versions(key); sv != pv {
			t.Errorf("%s: history versions for %q = %d, serial = %d", label, key, pv, sv)
		}
	}
	if err := got.blocks.VerifyChain(); err != nil {
		t.Errorf("%s: chain: %v", label, err)
	}
}

// checkAllWorkerCounts runs the stream through the serial oracle and the
// pipeline at MVCC worker counts 1..8, asserting bit-identical outcomes.
func checkAllWorkerCounts(t *testing.T, f *txFactory, stream []*blockstore.Block) {
	t.Helper()
	oracle := newLedger()
	runStream(t, NewSerial(oracle.config(f, 0)), stream)

	for mvcc := 1; mvcc <= 8; mvcc++ {
		l := newLedger()
		runStream(t, New(l.mvccConfig(f, 4, mvcc)), stream)
		assertEquivalent(t, fmt.Sprintf("mvcc=%d", mvcc), oracle, l, stream)
	}
}

// TestParallelMVCCEquivalence runs the shared adversarial stream — MVCC
// losers, bad signatures, malformed rwsets, duplicate txIDs, deletes —
// through the conflict-graph scheduler at every worker count from the
// degenerate 1 to 8 (oversubscribed on most CI hosts), pinning the outcome
// to the serial oracle.
func TestParallelMVCCEquivalence(t *testing.T) {
	f := newTxFactory(t)
	checkAllWorkerCounts(t, f, buildStream(t, f))
}

// TestParallelMVCCContendedStream is the scheduler's own adversarial
// stream: wide blocks where many transactions fight over a handful of hot
// keys, interleaved with independent traffic — the shape that exercises
// multi-wave scheduling rather than one wide wave.
func TestParallelMVCCContendedStream(t *testing.T) {
	f := newTxFactory(t)
	var stream []*blockstore.Block
	var prev []byte
	add := func(envs ...blockstore.Envelope) {
		b, err := blockstore.NewBlock(uint64(len(stream)), prev, envs)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, b)
		prev = b.Header.Hash()
	}

	// Block 0: seed a key range the later phantom readers scan.
	seed := &rwset.ReadWriteSet{}
	for i := 0; i < 8; i++ {
		seed.Writes = append(seed.Writes, rwset.Write{
			Key: fmt.Sprintf("r%d", i), Value: []byte("seed"),
		})
	}
	add(f.envelope(f.txID(), seed, nil))

	// Block 1: 16 transactions, 4 hot keys, read-modify-write — each hot
	// key's first claimant wins, the rest lose MVCC; 8 cold writers ride
	// along untouched.
	var envs []blockstore.Envelope
	for i := 0; i < 16; i++ {
		hot := fmt.Sprintf("hot%d", i%4)
		envs = append(envs, f.envelope(f.txID(), &rwset.ReadWriteSet{
			Reads:  []rwset.Read{{Key: hot, Version: nil}},
			Writes: []rwset.Write{{Key: hot, Value: []byte(fmt.Sprintf("w%d", i))}},
		}, nil))
	}
	for i := 0; i < 8; i++ {
		envs = append(envs, f.envelope(f.txID(), writeSet(fmt.Sprintf("cold%d", i)), nil))
	}
	add(envs...)

	// Block 2: range scans racing writers inside their bounds. tx0 updates
	// r2; tx1 scans [r0,r5) — the earlier-in-block write to r2 is an MVCC
	// conflict for the scan. tx2 scans [r5,) with no in-block writer and
	// stays valid; tx3 then updates r6 inside tx2's bounds — a LATER
	// writer, which must not retroactively invalidate tx2.
	add(
		f.envelope(f.txID(), &rwset.ReadWriteSet{
			Writes: []rwset.Write{{Key: "r2", Value: []byte("bump")}},
		}, nil),
		f.envelope(f.txID(), &rwset.ReadWriteSet{
			RangeReads: []rwset.RangeRead{{StartKey: "r0", EndKey: "r5", Keys: []string{"r0", "r1", "r2", "r3", "r4"}}},
			Writes:     []rwset.Write{{Key: "scan-a", Value: []byte("x")}},
		}, nil),
		f.envelope(f.txID(), &rwset.ReadWriteSet{
			RangeReads: []rwset.RangeRead{{StartKey: "r5", EndKey: "", Keys: []string{"r5", "r6", "r7"}}},
			Writes:     []rwset.Write{{Key: "scan-b", Value: []byte("y")}},
		}, nil),
		f.envelope(f.txID(), &rwset.ReadWriteSet{
			Writes: []rwset.Write{{Key: "r6", Value: []byte("late")}},
		}, nil),
	)

	// Block 3: long write-write chain on one key plus a fan of independent
	// readers of a cold key — a deep graph next to a wide one.
	envs = nil
	for i := 0; i < 6; i++ {
		envs = append(envs, f.envelope(f.txID(), &rwset.ReadWriteSet{
			Writes: []rwset.Write{{Key: "chain", Value: []byte(fmt.Sprintf("link%d", i))}},
		}, nil))
	}
	for i := 0; i < 6; i++ {
		envs = append(envs, f.envelope(f.txID(), &rwset.ReadWriteSet{
			Reads:  []rwset.Read{{Key: "cold0", Version: &statedb.Version{BlockNum: 1, TxNum: 16}}},
			Writes: []rwset.Write{{Key: fmt.Sprintf("fan%d", i), Value: []byte("z")}},
		}, nil))
	}
	add(envs...)

	checkAllWorkerCounts(t, f, stream)

	// Pin the contended block's verdicts on one engine so equivalence can
	// not degrade into "all engines equally wrong".
	l := newLedger()
	runStream(t, New(l.mvccConfig(f, 4, 4)), stream)
	b1, err := l.blocks.GetByNumber(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		want := blockstore.TxMVCCConflict
		if i < 4 { // first claimant of each hot key
			want = blockstore.TxValid
		}
		if b1.TxValidation[i] != want {
			t.Errorf("block 1 tx %d = %s, want %s", i, b1.TxValidation[i], want)
		}
	}
	b2, err := l.blocks.GetByNumber(2)
	if err != nil {
		t.Fatal(err)
	}
	wantB2 := []blockstore.ValidationCode{
		blockstore.TxValid,        // r2 writer
		blockstore.TxMVCCConflict, // scan [r0,r5) trips on in-block r2 write
		blockstore.TxValid,        // scan [r5,∞) — later r6 writer is no phantom
		blockstore.TxValid,        // r6 writer
	}
	for i, want := range wantB2 {
		if b2.TxValidation[i] != want {
			t.Errorf("block 2 tx %d = %s, want %s", i, b2.TxValidation[i], want)
		}
	}
}

// TestParallelMVCCEdgeCases covers the scheduler's corner shapes one at a
// time; every case must agree with the serial oracle at all worker counts.
func TestParallelMVCCEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func(f *txFactory) []blockstore.Envelope
	}{
		{
			// A transaction that reads and writes the same key must not
			// conflict with itself, only with its neighbors.
			name: "read-modify-write-same-key",
			build: func(f *txFactory) []blockstore.Envelope {
				var envs []blockstore.Envelope
				for i := 0; i < 5; i++ {
					envs = append(envs, f.envelope(f.txID(), &rwset.ReadWriteSet{
						Reads:  []rwset.Read{{Key: "rmw", Version: nil}},
						Writes: []rwset.Write{{Key: "rmw", Value: []byte(fmt.Sprintf("v%d", i))}},
					}, nil))
				}
				return envs
			},
		},
		{
			// Write-only transactions on disjoint keys: one wave, all valid,
			// batch last-write-wins semantics never invoked.
			name: "write-only-disjoint",
			build: func(f *txFactory) []blockstore.Envelope {
				var envs []blockstore.Envelope
				for i := 0; i < 12; i++ {
					envs = append(envs, f.envelope(f.txID(), writeSet(fmt.Sprintf("w%d", i)), nil))
				}
				return envs
			},
		},
		{
			// Write-only transactions all hitting the SAME key: the writer
			// chain serializes them; the batch must keep the last write.
			name: "write-only-same-key",
			build: func(f *txFactory) []blockstore.Envelope {
				var envs []blockstore.Envelope
				for i := 0; i < 5; i++ {
					envs = append(envs, f.envelope(f.txID(), &rwset.ReadWriteSet{
						Writes: []rwset.Write{{Key: "shared", Value: []byte(fmt.Sprintf("v%d", i))}},
					}, nil))
				}
				return envs
			},
		},
		{
			// Star graph: tx 0 writes ten keys; every later transaction
			// reads one of them — all conflict with tx 0 and nothing else.
			name: "star-around-tx0",
			build: func(f *txFactory) []blockstore.Envelope {
				hub := &rwset.ReadWriteSet{}
				for i := 0; i < 10; i++ {
					hub.Writes = append(hub.Writes, rwset.Write{
						Key: fmt.Sprintf("s%d", i), Value: []byte("hub"),
					})
				}
				envs := []blockstore.Envelope{f.envelope(f.txID(), hub, nil)}
				for i := 0; i < 10; i++ {
					envs = append(envs, f.envelope(f.txID(), &rwset.ReadWriteSet{
						Reads:  []rwset.Read{{Key: fmt.Sprintf("s%d", i), Version: nil}},
						Writes: []rwset.Write{{Key: fmt.Sprintf("spoke%d", i), Value: []byte("x")}},
					}, nil))
				}
				return envs
			},
		},
		{
			// A range read whose bounds cover a later transaction's write:
			// the scan validates against pre-block state, so the later
			// writer must not flip it — but the edge still serializes them.
			name: "range-read-before-writer",
			build: func(f *txFactory) []blockstore.Envelope {
				return []blockstore.Envelope{
					f.envelope(f.txID(), &rwset.ReadWriteSet{
						RangeReads: []rwset.RangeRead{{StartKey: "p", EndKey: "q", Keys: nil}},
						Writes:     []rwset.Write{{Key: "reader-mark", Value: []byte("x")}},
					}, nil),
					f.envelope(f.txID(), &rwset.ReadWriteSet{
						Writes: []rwset.Write{{Key: "p5", Value: []byte("phantom-to-be")}},
					}, nil),
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newTxFactory(t)
			b, err := blockstore.NewBlock(0, nil, tc.build(f))
			if err != nil {
				t.Fatal(err)
			}
			checkAllWorkerCounts(t, f, []*blockstore.Block{b})
		})
	}
}

// prevalWrites builds a stage-1-valid PrevalResult writing the given keys.
func prevalWrites(keys ...string) PrevalResult {
	return PrevalResult{Code: blockstore.TxValid, RWSet: writeSet(keys...)}
}

// TestConflictGraphWaves unit-tests the graph builder's wave structure on
// hand-built footprints.
func TestConflictGraphWaves(t *testing.T) {
	read := func(keys ...string) PrevalResult {
		rws := &rwset.ReadWriteSet{}
		for _, k := range keys {
			rws.Reads = append(rws.Reads, rwset.Read{Key: k})
		}
		return PrevalResult{Code: blockstore.TxValid, RWSet: rws}
	}

	cases := []struct {
		name   string
		preval []PrevalResult
		want   [][]int
	}{
		{
			name:   "disjoint-single-wave",
			preval: []PrevalResult{prevalWrites("a"), prevalWrites("b"), prevalWrites("c")},
			want:   [][]int{{0, 1, 2}},
		},
		{
			name:   "write-chain-serializes",
			preval: []PrevalResult{prevalWrites("k"), prevalWrites("k"), prevalWrites("k")},
			want:   [][]int{{0}, {1}, {2}},
		},
		{
			name: "reader-between-writers",
			preval: []PrevalResult{
				prevalWrites("k"), read("k"), prevalWrites("k"),
			},
			want: [][]int{{0}, {1}, {2}},
		},
		{
			name: "invalid-tx-is-isolated",
			preval: []PrevalResult{
				prevalWrites("k"),
				{Code: blockstore.TxBadSignature},
				prevalWrites("k"),
			},
			want: [][]int{{0, 1}, {2}},
		},
		{
			name: "independent-readers-fan-out",
			preval: []PrevalResult{
				prevalWrites("a", "b"), read("a"), read("b"), read("a", "b"), prevalWrites("c"),
			},
			want: [][]int{{0, 4}, {1, 2, 3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildConflictGraph(tc.preval)
			got := g.waves()
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("waves = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestConflictGraphRangeBounds checks that range bounds link readers to
// writers inside the interval — including open-ended scans — and not
// beyond it.
func TestConflictGraphRangeBounds(t *testing.T) {
	ranged := func(start, end string) PrevalResult {
		return PrevalResult{Code: blockstore.TxValid, RWSet: &rwset.ReadWriteSet{
			RangeReads: []rwset.RangeRead{{StartKey: start, EndKey: end}},
		}}
	}
	preval := []PrevalResult{
		prevalWrites("m3"), // inside [m0,m9)
		ranged("m0", "m9"), // conflicts with 0, not 3
		prevalWrites("z1"), // outside the range
		ranged("z0", ""),   // open-ended: conflicts with 2
		prevalWrites("a0"), // below every range
	}
	g := buildConflictGraph(preval)
	want := [][]int{{0, 2, 4}, {1, 3}}
	if got := g.waves(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("waves = %v, want %v", got, want)
	}
}
