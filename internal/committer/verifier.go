package committer

import (
	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// PolicyFunc resolves a chaincode name to its endorsement policy. ok is
// false for unknown chaincodes. Implementations must be safe for
// concurrent use.
type PolicyFunc func(chaincode string) (endorser.Policy, bool)

// EnvelopeVerifier is the stage-1 validator: rwset syntax, creator
// signature, and endorsement policy — every check that does not depend on
// world-state versions and therefore parallelizes across a block's
// transactions. It is safe for concurrent use; the peer plugs one into its
// commit pipeline, and the benchmark drives one directly.
type EnvelopeVerifier struct {
	// MSP resolves and verifies creator and endorser identities.
	MSP *identity.MSP
	// Policy resolves chaincode endorsement policies.
	Policy PolicyFunc
	// Exec, when set, charges the modeled per-operation hardware cost of
	// stage 1 (signature verifications). The executor's core semaphore is
	// what lets parallel workers model — and on real hardware, use —
	// multiple cores.
	Exec *device.Executor
}

var _ Verifier = (*EnvelopeVerifier)(nil)

// Prevalidate runs the version-independent validation pipeline for one
// transaction. The modeled per-transaction commit cost is NOT charged
// here: it models the validate/apply work and is charged in the MVCC stage
// (committer.Config.Exec), on the goroutine that actually performs the
// validation.
func (v *EnvelopeVerifier) Prevalidate(env *blockstore.Envelope) PrevalResult {
	code, rws := v.prevalidate(env)
	return PrevalResult{Code: code, RWSet: rws}
}

func (v *EnvelopeVerifier) prevalidate(env *blockstore.Envelope) (blockstore.ValidationCode, *rwset.ReadWriteSet) {
	// 1. Syntax: the rwset must parse.
	rws, err := rwset.Unmarshal(env.RWSet)
	if err != nil {
		return blockstore.TxMalformed, nil
	}
	// 2. Creator signature. Verification consults the MSP's signature
	// cache, so re-validating a signature this process already checked —
	// the gateway's client-side check, gossip redelivery of a committed
	// block — costs a hash lookup; the modeled hardware charge fires only
	// on real ECDSA work (cache misses).
	clientID, err := v.MSP.Deserialize(env.Creator)
	if err != nil {
		return blockstore.TxBadSignature, rws
	}
	var onMiss func()
	if v.Exec != nil {
		onMiss = func() { v.Exec.Verify() }
	}
	if err := clientID.VerifyCached(v.MSP.VerifyCache(), env.SignedBytes(), env.Signature, onMiss); err != nil {
		return blockstore.TxBadSignature, rws
	}
	// 3. Endorsement policy (VSCC).
	policy, ok := v.Policy(env.Chaincode)
	if !ok {
		return blockstore.TxMalformed, rws
	}
	resps := make([]*endorser.Response, len(env.Endorsements))
	for j, e := range env.Endorsements {
		resps[j] = &endorser.Response{
			TxID:      env.TxID,
			Status:    shim.OK,
			Payload:   env.Response,
			RWSet:     env.RWSet,
			Events:    env.Events,
			Endorser:  e.Endorser,
			Signature: e.Signature,
		}
	}
	if err := endorser.CheckEndorsementsFunc(policy, v.MSP, resps, onMiss); err != nil {
		return blockstore.TxEndorsementPolicyFailure, rws
	}
	return blockstore.TxValid, rws
}
