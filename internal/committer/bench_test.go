package committer

import (
	"fmt"
	"testing"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/rwset"
)

// benchStream builds `blocks` chained valid blocks of `size` signed txs.
func benchStream(b *testing.B, f *txFactory, blocks, size int) []*blockstore.Block {
	b.Helper()
	out := make([]*blockstore.Block, 0, blocks)
	var prev []byte
	tx := 0
	for n := 0; n < blocks; n++ {
		envs := make([]blockstore.Envelope, size)
		for i := range envs {
			rws := &rwset.ReadWriteSet{Writes: []rwset.Write{
				{Key: fmt.Sprintf("k-%06d", tx), Value: []byte("value")},
			}}
			envs[i] = f.envelope(fmt.Sprintf("btx-%06d", tx), rws, nil)
			tx++
		}
		blk, err := blockstore.NewBlock(uint64(n), prev, envs)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, blk)
		prev = blk.Header.Hash()
	}
	return out
}

func runCommit(b *testing.B, workers int, pipelined bool) {
	b.Helper()
	f := newTxFactory(b)
	stream := benchStream(b, f, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := newLedger()
		var eng Committer
		if pipelined {
			eng = New(l.config(f, workers))
		} else {
			eng = NewSerial(l.config(f, workers))
		}
		for _, blk := range stream {
			if !eng.Submit(blk) {
				b.Fatal("block rejected")
			}
		}
		eng.Sync()
		eng.Close()
	}
	b.ReportMetric(float64(8*64)*float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkCommitSerial is the single-goroutine baseline (8 blocks x 64 txs
// per iteration); BenchmarkCommitPipelined4 runs the same stream through
// the three-stage pipeline with 4 pre-validation workers.
func BenchmarkCommitSerial(b *testing.B)     { runCommit(b, 1, false) }
func BenchmarkCommitPipelined4(b *testing.B) { runCommit(b, 4, true) }
