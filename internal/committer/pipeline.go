package committer

import (
	"sync"
	"sync/atomic"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// pipelineDepth is the buffer between adjacent stages. A small buffer is
// enough to keep every stage busy; a deep one would only let state run far
// ahead of the persisted watermark.
const pipelineDepth = 2

// Pipeline is the three-stage parallel commit path:
//
//	Submit ─▶ [stage 1: pre-validation, worker pool]
//	       ─▶ [stage 2: MVCC walk + state apply, sequential]
//	       ─▶ [stage 3: history + block append + notify, async]
//
// Block N's persistence overlaps block N+1's validation. World state is
// applied at the end of stage 2 (the next block's MVCC check needs it);
// everything that does not gate validation — history writes, the block-file
// append, commit events — happens in stage 3. The watermark tracks stage-3
// completion, so Sync gives readers committed-only visibility.
type Pipeline struct {
	cfg         Config
	workers     int
	mvccWorkers int

	// submitMu serializes admission so concurrent deliveries (ordering
	// stream and gossip) enqueue consecutive blocks in order.
	submitMu sync.Mutex
	next     uint64 // next block number to admit
	lastHash []byte // header hash of the last admitted block
	closed   bool

	// admitted mirrors next so Sync can snapshot it without submitMu —
	// Submit holds that mutex across modeled transfer costs and a possibly
	// blocking enqueue, and queries must not stall behind admission.
	admitted atomic.Uint64

	// markMu guards the persisted watermark; cond wakes Sync waiters.
	markMu sync.Mutex
	cond   *sync.Cond
	mark   uint64 // next block number not yet fully persisted

	prevalCh  chan *task
	mvccCh    chan *task
	persistCh chan *task
	wg        sync.WaitGroup
}

var _ Committer = (*Pipeline)(nil)

// New creates and starts a pipelined committer expecting block number
// cfg.Blocks.Height() next.
func New(cfg Config) *Pipeline {
	p := &Pipeline{
		cfg:         cfg,
		workers:     cfg.workerCount(),
		mvccWorkers: cfg.mvccWorkerCount(),
		next:        cfg.Blocks.Height(),
		lastHash:    cfg.Blocks.LastHash(),
		mark:        cfg.Blocks.Height(),
		prevalCh:    make(chan *task, pipelineDepth),
		mvccCh:      make(chan *task, pipelineDepth),
		persistCh:   make(chan *task, pipelineDepth),
	}
	p.admitted.Store(p.next)
	p.cond = sync.NewCond(&p.markMu)
	p.wg.Add(3)
	go p.prevalStage()
	go p.mvccStage()
	go p.persistStage()
	return p
}

// Submit admits the next expected block into the pipeline and returns
// without waiting for it to commit. Duplicates, out-of-order deliveries,
// integrity-failing blocks, and submissions after Close are dropped.
func (p *Pipeline) Submit(ordered *blockstore.Block) bool {
	p.submitMu.Lock()
	defer p.submitMu.Unlock()
	if p.closed || !admissible(ordered, p.next, p.lastHash) {
		return false
	}
	p.next++
	p.admitted.Store(p.next)
	p.lastHash = ordered.Header.Hash()
	if p.cfg.OnAccepted != nil {
		p.cfg.OnAccepted(ordered)
	}
	// The send stays under submitMu so admission order equals queue order;
	// backpressure from a full stage queue is bounded by pipelineDepth and
	// is exactly the admission throttle the pipeline wants.
	//hyperprov:allow locksafe ordered admission requires the send under submitMu
	p.prevalCh <- newTask(ordered)
	return true
}

// stage 1: fan signature verification and rwset parsing across workers.
func (p *Pipeline) prevalStage() {
	defer p.wg.Done()
	defer close(p.mvccCh)
	for t := range p.prevalCh {
		start := stageStart()
		t.preval = prevalidate(p.cfg.Verifier, t.b, p.workers)
		observe(p.cfg.Metrics, metrics.CommitStagePreval, start)
		p.cfg.Tracer.AddBatch(t.txIDs(), trace.StageCommitPreval, p.cfg.Name, start, stageElapsed(start))
		p.mvccCh <- t
	}
}

// stage 2: the MVCC walk — conflict-graph scheduled across mvccWorkers
// (sequential when MVCCWorkers is 1) — one accumulated batch per block,
// applied to world state before the next block's walk begins.
func (p *Pipeline) mvccStage() {
	defer p.wg.Done()
	defer close(p.persistCh)
	for t := range p.mvccCh {
		start := stageStart()
		finalize(p.cfg, t, p.mvccWorkers)
		err := applyState(p.cfg.State, t)
		if err == nil {
			// Snapshot checkpoint boundaries here, before the next block's
			// apply can move state past them; delivery waits for stage 3.
			captureState(p.cfg, t)
		}
		observe(p.cfg.Metrics, metrics.CommitStageMVCC, start)
		p.cfg.Tracer.AddBatch(t.txIDs(), trace.StageCommitMVCC, p.cfg.Name, start, stageElapsed(start))
		if err != nil {
			// Replayed block against restored state: drop, but still move
			// the watermark so Sync cannot wedge.
			p.advance(t.b.Header.Number)
			continue
		}
		p.persistCh <- t
	}
}

// stage 3: persistence and notification, overlapping the next block's
// validation.
func (p *Pipeline) persistStage() {
	defer p.wg.Done()
	for t := range p.persistCh {
		start := stageStart()
		persist(p.cfg, t, start)
		observe(p.cfg.Metrics, metrics.CommitStagePersist, start)
		p.advance(t.b.Header.Number)
		// Checkpoint delivery runs behind the watermark: queries already
		// see the block while the durable checkpoint is being written.
		if t.capture != nil {
			p.cfg.OnCheckpoint(*t.capture)
		}
	}
}

// advance moves the watermark past block number n and wakes Sync waiters.
func (p *Pipeline) advance(n uint64) {
	p.markMu.Lock()
	if n+1 > p.mark {
		p.mark = n + 1
	}
	p.cond.Broadcast()
	p.markMu.Unlock()
}

// Sync blocks until every block admitted before the call is fully
// persisted (stage 3 complete, OnCommitted delivered). It deliberately
// avoids submitMu: a query must not wait behind an in-flight Submit that
// is charging modeled transfer cost or blocked on a full stage queue.
func (p *Pipeline) Sync() {
	want := p.admitted.Load()
	p.markMu.Lock()
	for p.mark < want {
		p.cond.Wait()
	}
	p.markMu.Unlock()
}

// Watermark returns the number of fully persisted blocks.
func (p *Pipeline) Watermark() uint64 {
	p.markMu.Lock()
	defer p.markMu.Unlock()
	return p.mark
}

// Close drains in-flight blocks and stops the stage goroutines. It is
// idempotent and safe to call concurrently with Submit.
func (p *Pipeline) Close() {
	p.submitMu.Lock()
	if p.closed {
		p.submitMu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.prevalCh)
	p.submitMu.Unlock()
	p.wg.Wait()
}
