package committer

import (
	"sync"
	"testing"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

// TestPipelineDedupAndOrdering: duplicate and out-of-order submissions are
// dropped, concurrent submitters (ordering stream vs gossip) commit each
// height exactly once.
func TestPipelineDedupAndOrdering(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)
	l := newLedger()
	pipe := New(l.config(f, 2))
	defer pipe.Close()

	// Out-of-order: block 1 before block 0.
	if pipe.Submit(stream[1]) {
		t.Fatal("accepted out-of-order block")
	}
	// Two goroutines race the same stream; every height must commit once.
	var wg sync.WaitGroup
	accepted := make([]int, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, b := range stream {
				if pipe.Submit(b) {
					accepted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	pipe.Sync()
	if got := accepted[0] + accepted[1]; got != len(stream) {
		t.Errorf("accepted %d blocks total, want %d", got, len(stream))
	}
	if h := l.blocks.Height(); h != uint64(len(stream)) {
		t.Errorf("height = %d, want %d", h, len(stream))
	}
	if w := pipe.Watermark(); w != uint64(len(stream)) {
		t.Errorf("watermark = %d, want %d", w, len(stream))
	}
	// Replays of already-committed heights are dropped.
	if pipe.Submit(stream[0]) {
		t.Error("accepted replayed block")
	}
}

// TestPipelineSyncWatermark: after Submit returns the block may not be
// persisted yet, but after Sync it must be — state, history, and block
// store all reflect it.
func TestPipelineSyncWatermark(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)
	l := newLedger()
	pipe := New(l.config(f, 2))
	defer pipe.Close()
	for _, b := range stream {
		pipe.Submit(b)
	}
	pipe.Sync()
	if h := l.blocks.Height(); h != uint64(len(stream)) {
		t.Fatalf("height after Sync = %d, want %d", h, len(stream))
	}
	if n := l.history.Versions("a"); n != 2 { // write in block 0, delete in block 5
		t.Errorf("history versions of a = %d, want 2", n)
	}
}

// TestPipelineCloseIdempotent: Close drains in-flight work, is callable
// twice, and Submit afterwards is rejected.
func TestPipelineCloseIdempotent(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)
	l := newLedger()
	pipe := New(l.config(f, 2))
	for _, b := range stream {
		pipe.Submit(b)
	}
	pipe.Close()
	pipe.Close()
	if h := l.blocks.Height(); h != uint64(len(stream)) {
		t.Errorf("height after Close = %d, want %d", h, len(stream))
	}
	if pipe.Submit(stream[0]) {
		t.Error("Submit accepted after Close")
	}
	pipe.Sync() // must not hang or panic on a closed pipeline
}

// TestTamperedBlocksRejectedAtAdmission: a block whose data hash or
// previous-hash linkage fails is rejected before any stage runs — state is
// untouched, the height is not consumed, and the genuine block at that
// height still commits afterwards (a byzantine gossip delivery cannot fork
// state from the ledger or wedge the peer).
func TestTamperedBlocksRejectedAtAdmission(t *testing.T) {
	f := newTxFactory(t)
	stream := buildStream(t, f)
	for _, eng := range []struct {
		name string
		mk   func(*ledger) Committer
	}{
		{"serial", func(l *ledger) Committer { return NewSerial(l.config(f, 1)) }},
		{"pipeline", func(l *ledger) Committer { return New(l.config(f, 4)) }},
	} {
		t.Run(eng.name, func(t *testing.T) {
			l := newLedger()
			c := eng.mk(l)
			defer c.Close()
			c.Submit(stream[0])
			c.Sync()
			before := StateFingerprint(l.state)

			// Tampered data: envelope swapped after the header was built.
			tampered := stream[1].Clone()
			tampered.Envelopes[0] = stream[2].Envelopes[0]
			if c.Submit(tampered) {
				t.Fatal("accepted block with broken data hash")
			}
			// Tampered linkage: valid data hash, wrong previous hash.
			badPrev, err := blockstore.NewBlock(1, []byte("bogus"), stream[1].Envelopes)
			if err != nil {
				t.Fatal(err)
			}
			if c.Submit(badPrev) {
				t.Fatal("accepted block with broken previous-hash linkage")
			}
			c.Sync()
			if got := StateFingerprint(l.state); got != before {
				t.Error("rejected block mutated state")
			}
			// The genuine block at the same height still commits.
			if !c.Submit(stream[1]) {
				t.Fatal("genuine block rejected after tampered delivery")
			}
			c.Sync()
			if h := l.blocks.Height(); h != 2 {
				t.Errorf("height = %d, want 2", h)
			}
		})
	}
}

// TestPipelineEmptyAndAllInvalidBlocks: an empty block and a block whose
// every transaction fails validation both advance the chain without
// touching state.
func TestPipelineEmptyAndAllInvalidBlocks(t *testing.T) {
	f := newTxFactory(t)
	l := newLedger()
	pipe := New(l.config(f, 2))
	defer pipe.Close()

	empty, err := blockstore.NewBlock(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe.Submit(empty)
	pipe.Sync()
	before := StateFingerprint(l.state)

	bad := f.envelope(f.txID(), writeSet("x"), nil)
	bad.Function = "tampered"
	noEnd := f.envelope(f.txID(), writeSet("y"), func(env *blockstore.Envelope) {
		env.Endorsements = nil
	})
	invalid, err := blockstore.NewBlock(1, empty.Header.Hash(),
		[]blockstore.Envelope{bad, noEnd})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Submit(invalid)
	pipe.Sync()

	if h := l.blocks.Height(); h != 2 {
		t.Fatalf("height = %d, want 2", h)
	}
	if after := StateFingerprint(l.state); after != before {
		t.Error("all-invalid block mutated state")
	}
	b, err := l.blocks.GetByNumber(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range b.TxValidation {
		if c == blockstore.TxValid {
			t.Errorf("tx %d marked valid in all-invalid block", i)
		}
	}
}
