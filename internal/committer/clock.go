package committer

import "time"

// The committer's validation and MVCC decisions must be a pure function of
// the block stream: NewSerial is the replay oracle the parallel pipeline's
// equivalence tests (and crash recovery's replay path) are checked against,
// so a wall-clock read anywhere in the decision path would silently break
// determinism. The two functions below are the package's single sanctioned
// wall-clock seam — stage stopwatches feeding metrics histograms and trace
// spans only. Nothing derived from them may influence a validation outcome.
// The walltime analyzer (tools/analyzers) flags every other wall-clock read
// in this package.

// stageStart begins a stage stopwatch.
func stageStart() time.Time {
	return time.Now() //hyperprov:allow walltime metrics/trace stopwatch seam
}

// stageElapsed reads a stage stopwatch started by stageStart.
func stageElapsed(start time.Time) time.Duration {
	return time.Since(start) //hyperprov:allow walltime metrics/trace stopwatch seam
}
