// Package committer implements the peer's block-commit path. It offers two
// interchangeable engines over the same per-transaction validation logic:
//
//   - Serial replays the classic one-goroutine loop: each block's
//     transactions are signature-checked, MVCC-validated, and applied one
//     after another. It exists as the reference implementation and as the
//     baseline the commit benchmark compares against.
//
//   - Pipeline is the FastFabric-style three-stage pipeline. Stage 1
//     (pre-validation) fans endorsement-signature verification and rwset
//     deserialization across a worker pool; stage 2 (MVCC) builds a
//     conflict graph over the block's rwsets and validates independent
//     transactions concurrently (topological wavefronts in transaction
//     order — see conflict.go), applying one accumulated UpdateBatch;
//     stage 3 (persistence) appends the block, records history, and
//     notifies listeners while stage 2 is already validating the next
//     block.
//
// Both engines produce identical validation verdicts and identical final
// state for the same block stream — the equivalence test in this package
// pins that property.
package committer

import (
	"bytes"
	"runtime"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/statedb"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// PrevalResult is the outcome of stage-1 validation for one transaction:
// everything that does not depend on world-state versions (rwset parse,
// creator signature, endorsement policy). RWSet is the deserialized rwset
// when parsing succeeded, handed to the MVCC stage so the hot path parses
// each transaction exactly once.
type PrevalResult struct {
	Code  blockstore.ValidationCode
	RWSet *rwset.ReadWriteSet
}

// Verifier runs stage-1 validation for one transaction. Implementations
// must be safe for concurrent use: the pipeline calls Prevalidate from many
// workers at once.
type Verifier interface {
	Prevalidate(env *blockstore.Envelope) PrevalResult
}

// Config assembles a committer over a peer's ledger resources.
type Config struct {
	// State is the world-state database updates are applied to.
	State statedb.StateDB
	// History records per-key write history; may be nil.
	History *historydb.DB
	// Blocks is the append-only block store; its height seeds the
	// committer's next-expected block number. A durable peer passes a
	// *blockstore.FileStore here so stage-3 appends land on disk.
	Blocks blockstore.BlockStore
	// Verifier runs stage-1 validation. Required.
	Verifier Verifier
	// Workers sizes the pre-validation worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// MVCCWorkers sizes stage 2's conflict-graph validation pool: the MVCC
	// walk builds a dependency graph over the block's rwsets and validates
	// independent transactions concurrently, serializing only along
	// conflict edges. <= 0 means GOMAXPROCS; 1 restores the strictly
	// sequential walk (the PR-6-era pipeline). Verdicts, state, and
	// history are bit-identical at every worker count — the serial engine
	// remains the equivalence oracle.
	MVCCWorkers int
	// Exec, when set, charges the modeled per-transaction validate/apply
	// cost (device.Profile.CommitOverhead) in the MVCC stage, on whichever
	// goroutine performs the validation — so the modeled core semaphore
	// caps stage-2 parallelism exactly as it caps stage 1's.
	Exec *device.Executor
	// Metrics, when set, receives per-stage latency histograms
	// (metrics.CommitStage*).
	Metrics *metrics.Registry
	// Tracer, when set, receives per-transaction commit-stage spans (one
	// AddBatch per block and stage; trace IDs are the block's txIDs).
	Tracer *trace.Recorder
	// Name labels this committer's spans (usually the owning peer's name).
	Name string
	// OnAccepted, when set, is called synchronously from Submit after the
	// height check accepts a block and before it enters the pipeline. The
	// peer charges modeled block-transfer cost here.
	OnAccepted func(b *blockstore.Block)
	// OnCommitted, when set, is called once per committed block, in block
	// order, after the block and its history are persisted. The peer
	// publishes chaincode events and commit notifications here.
	OnCommitted func(b *blockstore.Block)
	// CheckpointEvery, when > 0 together with OnCheckpoint, captures a
	// consistent state snapshot at every block boundary whose 1-based
	// height is a multiple of it.
	CheckpointEvery uint64
	// OnCheckpoint receives checkpoint captures. The snapshot is taken in
	// the MVCC stage immediately after the block's batch is applied (so it
	// sits exactly at that block's boundary), but delivery happens in the
	// persistence stage after the block and its history are recorded and
	// behind the watermark advance — by then state, history, and block
	// store all agree on the capture's height. The recovery manager writes
	// durable checkpoint files from this hook.
	OnCheckpoint func(c Capture)
}

// Capture is one consistent state view at a block boundary. State is a
// height-stamped copy-on-write snapshot, not a materialized map: taking it
// in the MVCC stage costs O(1), so checkpoint boundaries no longer stall
// the apply path behind a full-state deep copy. The consumer (the recovery
// manager, in the persistence stage) materializes what it needs and MUST
// Release the snapshot.
type Capture struct {
	// Height is the number of blocks the snapshot reflects.
	Height uint64
	// StateHeight is the state database's version at the snapshot.
	StateHeight statedb.Version
	// State is the live state pinned at the boundary. The OnCheckpoint
	// consumer releases it.
	State statedb.Snapshot
	// IndexEntries is the serialized contents of the state database's
	// secondary indexes at the same boundary (nil when the state database
	// maintains none); restoring from them skips re-indexing every
	// document.
	IndexEntries map[string][]richquery.IndexEntry
}

// indexSnapshotter is implemented by state databases whose secondary
// indexes can be exported for checkpoints (statedb.IndexedStore).
type indexSnapshotter interface {
	IndexEntries() map[string][]richquery.IndexEntry
}

// wantCapture reports whether the block completing 1-based height h should
// be captured for a checkpoint.
func (cfg Config) wantCapture(h uint64) bool {
	return cfg.CheckpointEvery > 0 && cfg.OnCheckpoint != nil && h%cfg.CheckpointEvery == 0
}

func (cfg Config) workerCount() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (cfg Config) mvccWorkerCount() int {
	if cfg.MVCCWorkers > 0 {
		return cfg.MVCCWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Committer commits an ordered block stream. Submit accepts the next
// expected block (duplicates and out-of-order deliveries are dropped) and
// Sync blocks until every accepted block is fully persisted.
type Committer interface {
	// Submit offers a block. It reports whether the block was accepted —
	// false means a duplicate, an out-of-order delivery, a block failing
	// integrity checks (data hash, previous-hash linkage), or a closed
	// committer.
	Submit(b *blockstore.Block) bool
	// Sync blocks until every block accepted so far is persisted: state,
	// history, and block store all reflect it and OnCommitted has run.
	Sync()
	// Watermark returns the number of fully persisted blocks (the height
	// queries may safely read at).
	Watermark() uint64
	// Close drains in-flight blocks and releases resources. Submit after
	// Close returns false. Close is idempotent.
	Close()
}

// admissible reports whether b is the next expected block AND passes
// integrity checks: its data hash covers its envelopes and its header
// chains onto lastHash. Integrity is checked here — before any stage runs —
// because world state is applied in stage 2, ahead of the stage-3 ledger
// append: a block the store would reject must never reach the apply step,
// or state and ledger would silently fork. Rejected blocks do not consume
// their height, so the genuine block can still commit later (a tampered
// gossip delivery cannot wedge the peer).
func admissible(b *blockstore.Block, next uint64, lastHash []byte) bool {
	if b.Header.Number != next {
		return false
	}
	if next > 0 && !bytes.Equal(b.Header.PreviousHash, lastHash) {
		return false
	}
	return b.VerifyData() == nil
}

// task carries one block through the stages.
type task struct {
	b      *blockstore.Block
	preval []PrevalResult
	batch  *statedb.UpdateBatch
	hist   []historydb.KeyedEntry
	// capture is the consistent state snapshot taken right after this
	// block's apply, when its boundary is a checkpoint point; nil otherwise.
	capture *Capture
	// ids caches the block's transaction IDs for span batching.
	ids []string
}

// txIDs returns the block's transaction IDs, computed once per task.
func (t *task) txIDs() []string {
	if t.ids == nil {
		t.ids = make([]string, len(t.b.Envelopes))
		for i := range t.b.Envelopes {
			t.ids[i] = t.b.Envelopes[i].TxID
		}
	}
	return t.ids
}

// captureState pins a state snapshot at t's block boundary when the config
// asks for one. It must run immediately after applyState, before any later
// block is applied — that ordering is what makes the capture sit exactly at
// the block boundary. The pin itself is O(1) copy-on-write; only the index
// entries are copied here (their structures are not COW), and the full
// state materialization happens downstream in the persistence stage.
func captureState(cfg Config, t *task) {
	h := t.b.Header.Number + 1
	if !cfg.wantCapture(h) {
		return
	}
	snap := cfg.State.Snapshot()
	t.capture = &Capture{
		Height:      h,
		StateHeight: snap.Height(),
		State:       snap,
	}
	if ixs, ok := cfg.State.(indexSnapshotter); ok {
		t.capture.IndexEntries = ixs.IndexEntries()
	}
}

// newTask clones the ordered block (peers must not annotate the orderer's
// copy) and allocates its validation flags.
func newTask(ordered *blockstore.Block) *task {
	b := ordered.Clone()
	b.TxValidation = make([]blockstore.ValidationCode, len(b.Envelopes))
	return &task{b: b}
}

// prevalidate runs stage 1 for every transaction of the block, fanning the
// work across up to `workers` goroutines. Results land at their
// transaction's index, so downstream stages see block order regardless of
// which worker finished first.
func prevalidate(v Verifier, b *blockstore.Block, workers int) []PrevalResult {
	res := make([]PrevalResult, len(b.Envelopes))
	if workers > len(b.Envelopes) {
		workers = len(b.Envelopes)
	}
	if workers <= 1 {
		for i := range b.Envelopes {
			res[i] = v.Prevalidate(&b.Envelopes[i])
		}
		return res
	}
	// Striped assignment: worker w takes txs w, w+workers, w+2*workers, …
	// Static striping avoids a shared counter; per-tx cost is dominated by
	// signature verification, which is uniform enough that stripes balance.
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < len(b.Envelopes); i += workers {
				res[i] = v.Prevalidate(&b.Envelopes[i])
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	return res
}

// mvccFinalize runs stage 2's sequential walk: it settles each
// transaction's final validation code (pre-validated transactions can still
// lose an MVCC conflict), and accumulates one state UpdateBatch plus the
// block's history entries. It reads state versions but does not apply the
// batch — the caller does, so Serial and Pipeline share identical
// semantics. exec, when non-nil, charges the modeled per-transaction
// validate/apply cost (nil for crash-recovery replay, which re-runs stored
// verdicts at full speed). mvccFinalizeParallel in conflict.go is the
// conflict-graph-scheduled equivalent.
func mvccFinalize(state statedb.StateDB, exec *device.Executor, t *task) {
	b := t.b
	t.batch = statedb.NewUpdateBatch()
	blockWrites := make(map[string]bool)
	for i := range b.Envelopes {
		env := &b.Envelopes[i]
		pr := t.preval[i]
		if exec != nil {
			exec.Commit() // modeled validate/apply cost, charged where the work runs
		}
		code := pr.Code
		if code == blockstore.TxValid {
			if err := rwset.Validate(pr.RWSet, state, blockWrites); err != nil {
				code = blockstore.TxMVCCConflict
			}
		}
		b.TxValidation[i] = code
		if code != blockstore.TxValid {
			continue
		}
		ver := statedb.Version{BlockNum: b.Header.Number, TxNum: uint64(i)}
		for _, w := range pr.RWSet.Writes {
			blockWrites[w.Key] = true
			if w.IsDelete {
				t.batch.Delete(w.Key, ver)
			} else {
				t.batch.Put(w.Key, w.Value, ver)
			}
			t.hist = append(t.hist, historydb.KeyedEntry{Key: w.Key, Entry: historydb.Entry{
				TxID:      env.TxID,
				BlockNum:  b.Header.Number,
				TxNum:     uint64(i),
				Value:     w.Value,
				IsDelete:  w.IsDelete,
				Timestamp: env.Timestamp,
			}})
		}
	}
}

// finalize dispatches stage 2 to the sequential walk or the conflict-graph
// scheduler. Blocks with fewer than two transactions gain nothing from
// graph building; everything else fans out across mvccWorkers.
func finalize(cfg Config, t *task, mvccWorkers int) {
	if mvccWorkers <= 1 || len(t.b.Envelopes) < 2 {
		mvccFinalize(cfg.State, cfg.Exec, t)
		return
	}
	mvccFinalizeParallel(cfg, t, mvccWorkers)
}

// applyState applies the block's accumulated batch at the block's commit
// height. A height regression (replayed block against restored state) is
// reported so the block is dropped rather than persisted twice.
func applyState(state statedb.StateDB, t *task) error {
	height := statedb.Version{
		BlockNum: t.b.Header.Number,
		TxNum:    uint64(len(t.b.Envelopes)),
	}
	return state.ApplyUpdates(t.batch, height)
}

// persist runs stage 3 for one block: history entries, block-store append,
// and the committed callback. Admission already checked sequence, linkage,
// and data integrity, so Append cannot fail here short of a programming
// error; the guard stays so a bug surfaces as a missing commit callback
// rather than a corrupted store.
//
// The persist span is recorded BEFORE OnCommitted fires: the peer completes
// each transaction's trace from its commit callback, and a span added after
// Complete would be lost.
func persist(cfg Config, t *task, start time.Time) {
	if cfg.History != nil {
		cfg.History.RecordBatch(t.hist)
	}
	if err := cfg.Blocks.Append(t.b); err != nil {
		return
	}
	cfg.Tracer.AddBatch(t.txIDs(), trace.StageCommitPersist, cfg.Name, start, stageElapsed(start))
	if cfg.OnCommitted != nil {
		cfg.OnCommitted(t.b)
	}
}

// observe records one stage-latency sample when metrics are configured.
// The name is always one of the CommitStage* constants forwarded by the
// stage loops, so the histogram family set stays fixed.
func observe(reg *metrics.Registry, name string, since time.Time) {
	if reg != nil {
		//hyperprov:allow metricnames constant CommitStage* names forwarded by the stage loops
		reg.Histogram(name).Observe(stageElapsed(since))
	}
}
