package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/hyperprov/hyperprov/internal/device"
)

// TestMVCCSweepSmoke runs a tiny contention sweep end to end: equivalence
// must hold at every overlap point, throughput must be positive, and
// contention must shape the outcome — full overlap invalidates
// transactions and narrows the average wavefront.
func TestMVCCSweepSmoke(t *testing.T) {
	cfg := MVCCSweepConfig{
		Overlaps:    []int{0, 100},
		BlockSize:   16,
		Blocks:      2,
		MVCCWorkers: 4,
		HotKeys:     4,
		Profile:     device.XeonE51603,
		Scale:       0.02,
		Seed:        1,
	}
	res, err := RunMVCCSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Overlaps) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Overlaps))
	}
	for _, row := range res.Rows {
		if row.SequentialTps <= 0 || row.ParallelTps <= 0 || row.Speedup <= 0 {
			t.Errorf("row %+v has non-positive rates", row)
		}
	}
	free, contended := res.Rows[0], res.Rows[1]
	if free.ValidPct != 100 {
		t.Errorf("0%% overlap valid = %.1f%%, want 100%%", free.ValidPct)
	}
	// Full overlap on a 4-key pool: 4 winners per 16-tx block.
	if want := 100.0 * 4 / 16; contended.ValidPct != want {
		t.Errorf("100%% overlap valid = %.1f%%, want %.1f%%", contended.ValidPct, want)
	}
	// 0% overlap is one wave of width blockSize; full overlap fragments
	// into chained waves no wider than the hot pool (+1 for the rare
	// boundary wave shapes).
	if free.AvgWaveWidth != float64(cfg.BlockSize) {
		t.Errorf("0%% overlap avg wave = %.1f, want %d", free.AvgWaveWidth, cfg.BlockSize)
	}
	if contended.AvgWaveWidth > float64(cfg.HotKeys)+1 {
		t.Errorf("100%% overlap avg wave = %.1f, want <= %d", contended.AvgWaveWidth, cfg.HotKeys+1)
	}
	if res.Format() == "" {
		t.Error("empty format")
	}

	path := filepath.Join(t.TempDir(), "BENCH_mvcc_sweep.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back MVCCSweepResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) {
		t.Errorf("round-trip rows = %d, want %d", len(back.Rows), len(res.Rows))
	}
}
