package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// Quick multi-channel run: every configured count produces a row, adding
// channels must not shrink aggregate modeled throughput below the single
// channel's, and the isolation section reports both tenants.
func TestChannelBenchQuick(t *testing.T) {
	cfg := QuickChannelBench()
	res, err := RunChannelBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.ChannelCounts) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.ChannelCounts))
	}
	base := res.Rows[0]
	if base.Channels != cfg.ChannelCounts[0] || base.Speedup != 1.0 {
		t.Errorf("baseline row = %+v", base)
	}
	for _, row := range res.Rows {
		if row.AggregateTps <= 0 || row.P99Ms <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
		if row.PerChannelTps*float64(row.Channels)-row.AggregateTps > 1e-6 {
			t.Errorf("per-channel column inconsistent: %+v", row)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	// The real acceptance bar (>= 1.7x at 4 channels) is enforced by the
	// nightly figure-quality run; the quick config just has to show
	// additional channels helping at all on a loaded CI runner.
	if last.Speedup < 1.0 {
		t.Errorf("aggregate throughput shrank with %d channels: %.2fx", last.Channels, last.Speedup)
	}
	iso := res.Isolation
	if iso == nil {
		t.Fatal("no isolation section")
	}
	if iso.QuietSoloP99Ms <= 0 || iso.QuietHotP99Ms <= 0 || iso.HotTps <= 0 {
		t.Errorf("degenerate isolation %+v", iso)
	}

	path := filepath.Join(t.TempDir(), "BENCH_channels.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseChannelBenchResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Rows) != len(res.Rows) || parsed.Isolation == nil {
		t.Errorf("artifact round trip lost rows: %+v", parsed)
	}
	if parsed.Rows[len(parsed.Rows)-1].AggregateTps != last.AggregateTps {
		t.Error("artifact round trip changed values")
	}
}
