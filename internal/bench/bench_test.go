package bench

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	if s := NewHistogram().Summarize(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummaryScaled(t *testing.T) {
	s := Summary{Count: 10, Mean: time.Millisecond, P50: 2 * time.Millisecond}
	scaled := s.Scaled(0.01) // 100x compression -> modeled 100x larger
	if scaled.Mean != 100*time.Millisecond || scaled.P50 != 200*time.Millisecond {
		t.Errorf("scaled = %+v", scaled)
	}
	if scaled.Count != 10 {
		t.Error("count must not scale")
	}
	if same := s.Scaled(1); same != s {
		t.Error("scale 1 changed summary")
	}
	if same := s.Scaled(0); same != s {
		t.Error("scale 0 changed summary")
	}
}

func TestFormatSize(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{512, "512B"}, {1 << 10, "1KiB"}, {64 << 10, "64KiB"}, {4 << 20, "4MiB"},
	}
	for _, tt := range tests {
		if got := FormatSize(tt.n); got != tt.want {
			t.Errorf("FormatSize(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestRunClosedLoop(t *testing.T) {
	var mu sync.Mutex
	count := 0
	res := RunClosedLoop(4, 100*time.Millisecond, func(w, it int) error {
		mu.Lock()
		count++
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return nil
	})
	if res.Ops == 0 || int(res.Ops) != count {
		t.Errorf("ops = %d, count = %d", res.Ops, count)
	}
	if res.Latency.Count() != int(res.Ops) {
		t.Errorf("latency samples = %d", res.Latency.Count())
	}
	if res.Throughput() <= 0 {
		t.Error("zero throughput")
	}
}

func TestRunClosedLoopErrors(t *testing.T) {
	boom := errors.New("boom")
	res := RunClosedLoop(2, 50*time.Millisecond, func(w, it int) error {
		time.Sleep(time.Millisecond)
		if it%2 == 1 {
			return boom
		}
		return nil
	})
	if res.Errs == 0 {
		t.Error("no errors recorded")
	}
	if res.Latency.Count() != int(res.Ops) {
		t.Error("failed ops must not record latency")
	}
}

func TestRunFixedCount(t *testing.T) {
	res := RunFixedCount(3, 10, func(w, it int) error { return nil })
	if res.Ops != 10 {
		t.Errorf("ops = %d, want 10", res.Ops)
	}
}

func TestRunPacedZeroRate(t *testing.T) {
	start := time.Now()
	res := RunPaced(0, 50*time.Millisecond, 1, func(w, it int) error { return nil })
	if res.Ops != 0 {
		t.Errorf("ops = %d", res.Ops)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("zero-rate run returned early")
	}
}

func TestRunPacedIssuesAtRate(t *testing.T) {
	res := RunPaced(100, 300*time.Millisecond, 64, func(w, it int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	// ~30 ticks expected; allow slack for CI jitter.
	if res.Ops < 10 || res.Ops > 40 {
		t.Errorf("paced ops = %d, want ~30", res.Ops)
	}
}

func TestModeledThroughput(t *testing.T) {
	r := RunResult{Ops: 100, WallDuration: time.Second}
	if got := r.ModeledThroughput(0.05); got != 5 {
		t.Errorf("modeled tput = %v, want 5", got)
	}
	if got := r.ModeledThroughput(0); got != 100 {
		t.Errorf("unscaled tput = %v, want 100", got)
	}
	if (RunResult{}).Throughput() != 0 {
		t.Error("zero-duration throughput not 0")
	}
}

func TestResultFormat(t *testing.T) {
	r := Result{Name: "Fig X", Description: "desc", Rows: []Row{
		{Label: "1KiB", Throughput: 42.5, Latency: Summary{Mean: 10 * time.Millisecond}},
	}}
	out := r.Format()
	for _, want := range []string{"Fig X", "1KiB", "42.50", "tput"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

// TestQuickSweepSmoke runs the smallest real figure sweep end to end. It
// exercises the full bench path (network per point, scaled clock, shared
// client executor) and checks the paper's qualitative shape: throughput
// falls and latency rises with payload size.
func TestQuickSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test skipped in -short mode")
	}
	cfg := QuickSweep()
	res, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Sizes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Throughput <= last.Throughput {
		t.Errorf("throughput did not fall with size: %.2f -> %.2f",
			first.Throughput, last.Throughput)
	}
	if first.Latency.Mean >= last.Latency.Mean {
		t.Errorf("latency did not rise with size: %v -> %v",
			first.Latency.Mean, last.Latency.Mean)
	}
	for _, row := range res.Rows {
		if row.Errors > 0 {
			t.Errorf("%s: %d errors", row.Label, row.Errors)
		}
	}
}

func TestQuickEnergySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("energy smoke test skipped in -short mode")
	}
	res, err := RunFig3(QuickEnergy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // idle + 2 load levels + saturation anchor
		t.Fatalf("rows = %d: %+v", len(res.Rows), res.Rows)
	}
	idle, hlfIdle, loaded, peak := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	if !(idle.AvgWatts < hlfIdle.AvgWatts && hlfIdle.AvgWatts < loaded.AvgWatts &&
		loaded.AvgWatts < peak.AvgWatts) {
		t.Errorf("power ordering violated: %.2f %.2f %.2f %.2f",
			idle.AvgWatts, hlfIdle.AvgWatts, loaded.AvgWatts, peak.AvgWatts)
	}
	if loaded.Utilization <= 0 {
		t.Error("loaded phase has zero utilization")
	}
	// The paper's anchor: peak ≈ idle+HLF x 1.107, max spike <= 3.64 W.
	if ratio := peak.AvgWatts / hlfIdle.AvgWatts; ratio < 1.08 || ratio > 1.16 {
		t.Errorf("peak/idle ratio = %.3f, want ~1.107", ratio)
	}
	if peak.MaxWatts > 3.64+1e-9 {
		t.Errorf("peak max = %.2f W, want <= 3.64", peak.MaxWatts)
	}
	out := res.Format()
	if !strings.Contains(out, "idle+HLF") {
		t.Errorf("format missing phases:\n%s", out)
	}
}
