package bench

import (
	"sync"
	"sync/atomic"
	"time"
)

// Op is one benchmark operation; it returns an error on failure.
type Op func(worker, iteration int) error

// RunResult reports one closed-loop run.
type RunResult struct {
	// Ops is the number of successful operations.
	Ops int64
	// Errs is the number of failed operations.
	Errs int64
	// WallDuration is the measured wall-clock run length.
	WallDuration time.Duration
	// Latency is the distribution of successful-op wall latencies.
	Latency *Histogram
}

// Throughput returns successful operations per second of wall time.
func (r RunResult) Throughput() float64 {
	if r.WallDuration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.WallDuration.Seconds()
}

// ModeledThroughput converts wall throughput into modeled ops/sec given the
// clock compression factor (wall = modeled x scale, so modeled throughput =
// wall throughput x scale).
func (r RunResult) ModeledThroughput(scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	return r.Throughput() * scale
}

// RunClosedLoop drives op from `workers` concurrent workers for the given
// wall duration (each worker keeps exactly one operation outstanding, as
// the paper's benchmark program does with its batch of async requests).
func RunClosedLoop(workers int, wallFor time.Duration, op Op) RunResult {
	res := RunResult{Latency: NewHistogram()}
	var ops, errs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				opStart := time.Now()
				if err := op(w, i); err != nil {
					errs.Add(1)
					continue
				}
				res.Latency.Record(time.Since(opStart))
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(wallFor)
	close(stop)
	wg.Wait()
	res.WallDuration = time.Since(start)
	res.Ops = ops.Load()
	res.Errs = errs.Load()
	return res
}

// RunFixedCount drives op until every worker has completed its share of a
// total of n operations.
func RunFixedCount(workers, n int, op Op) RunResult {
	res := RunResult{Latency: NewHistogram()}
	var ops, errs atomic.Int64
	var wg sync.WaitGroup
	per := n / workers
	extra := n % workers

	start := time.Now()
	for w := 0; w < workers; w++ {
		count := per
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			for i := 0; i < count; i++ {
				opStart := time.Now()
				if err := op(w, i); err != nil {
					errs.Add(1)
					continue
				}
				res.Latency.Record(time.Since(opStart))
				ops.Add(1)
			}
		}(w, count)
	}
	wg.Wait()
	res.WallDuration = time.Since(start)
	res.Ops = ops.Load()
	res.Errs = errs.Load()
	return res
}

// RunPaced issues operations at a fixed wall rate (open loop) for the given
// duration, with at most maxInFlight outstanding; used by the energy
// experiment to hold the device at a target load level.
func RunPaced(rate float64, wallFor time.Duration, maxInFlight int, op Op) RunResult {
	res := RunResult{Latency: NewHistogram()}
	if rate <= 0 {
		time.Sleep(wallFor)
		res.WallDuration = wallFor
		return res
	}
	var ops, errs atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInFlight)
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(wallFor)

	start := time.Now()
	i := 0
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
			default:
				errs.Add(1) // overload: request dropped, like a timed-out client
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				opStart := time.Now()
				if err := op(0, i); err != nil {
					errs.Add(1)
					return
				}
				res.Latency.Record(time.Since(opStart))
				ops.Add(1)
			}(i)
			i++
		}
	}
	wg.Wait()
	res.WallDuration = time.Since(start)
	res.Ops = ops.Load()
	res.Errs = errs.Load()
	return res
}
