package bench

import (
	"fmt"
	"time"

	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
)

// This file implements the ablation experiments from DESIGN.md §4: they
// probe the design choices the paper makes (block cutting parameters,
// off-chain vs on-chain payloads, ordering-service resilience) rather than
// reproducing a specific figure.

// BatchAblationConfig parameterizes Abl A.
type BatchAblationConfig struct {
	// BatchSizes are the MaxMessageCount values to sweep.
	BatchSizes []int
	// PayloadSize is the fixed data-item size.
	PayloadSize  int
	Workers      int
	WallPerPoint time.Duration
	Scale        float64
	Seed         int64
}

// DefaultBatchAblation returns the standard Abl A configuration.
func DefaultBatchAblation() BatchAblationConfig {
	return BatchAblationConfig{
		BatchSizes:   []int{1, 10, 50, 100},
		PayloadSize:  64 << 10,
		Workers:      16,
		WallPerPoint: 3 * time.Second,
		Scale:        1.0,
		Seed:         1,
	}
}

// RunBatchAblation sweeps the orderer's MaxMessageCount at a fixed payload
// size on the desktop network. Larger batches amortize ordering and commit
// overhead (higher throughput) at the cost of queueing latency.
func RunBatchAblation(cfg BatchAblationConfig) (Result, error) {
	res := Result{
		Name:        "Abl A: orderer batch-size sweep",
		Description: fmt.Sprintf("desktop network, %s payloads, MaxMessageCount swept", FormatSize(cfg.PayloadSize)),
	}
	for i, bs := range cfg.BatchSizes {
		netCfg := fabric.DesktopConfig()
		netCfg.Batch = orderer.BatchConfig{
			MaxMessageCount:   bs,
			BatchTimeout:      2 * time.Second,
			PreferredMaxBytes: 64 << 20,
		}
		n, err := newNetwork(netCfg, cfg.Scale, cfg.Seed+int64(i)*211)
		if err != nil {
			return Result{}, err
		}
		store := offchain.NewMemStore()
		clients, _, err := newClients(n, cfg.Workers, store, device.XeonE51603, cfg.Scale, cfg.Seed)
		if err != nil {
			n.Stop()
			return Result{}, err
		}
		payload := payloadFactory(cfg.Workers, cfg.PayloadSize, cfg.Seed)
		run := RunClosedLoop(cfg.Workers, cfg.WallPerPoint, func(w, it int) error {
			_, err := clients[w].StoreData(fmt.Sprintf("b%d-%d-%d", i, w, it), payload(w, it), core.PostOptions{})
			return err
		})
		n.Stop()
		res.Rows = append(res.Rows, Row{
			Label:      fmt.Sprintf("batch=%d", bs),
			Size:       bs,
			Throughput: run.ModeledThroughput(cfg.Scale),
			Latency:    run.Latency.Summarize().Scaled(cfg.Scale),
			Errors:     run.Errs,
		})
	}
	return res, nil
}

// OnchainAblationConfig parameterizes Abl B.
type OnchainAblationConfig struct {
	Sizes        []int
	Workers      int
	WallPerPoint time.Duration
	Scale        float64
	Seed         int64
}

// DefaultOnchainAblation returns the standard Abl B configuration.
func DefaultOnchainAblation() OnchainAblationConfig {
	return OnchainAblationConfig{
		Sizes:        []int{1 << 10, 16 << 10, 128 << 10, 512 << 10},
		Workers:      16,
		WallPerPoint: 3 * time.Second,
		Scale:        1.0,
		Seed:         1,
	}
}

// RunOnchainAblation compares HyperProv's pointer + off-chain design
// against storing the payload inside the transaction. The on-chain variant
// bloats envelopes, blocks, and every peer's ledger; the paper's design
// argument is that the off-chain path scales to large items.
func RunOnchainAblation(cfg OnchainAblationConfig) (Result, Result, error) {
	off := Result{
		Name:        "Abl B: off-chain pointer (HyperProv design)",
		Description: "payload to off-chain store, checksum+pointer on-chain",
	}
	on := Result{
		Name:        "Abl B: full payload on-chain (counterfactual)",
		Description: "payload embedded in the transaction metadata",
	}
	for i, size := range cfg.Sizes {
		for variant := 0; variant < 2; variant++ {
			n, err := newNetwork(fabric.DesktopConfig(), cfg.Scale, cfg.Seed+int64(i)*307+int64(variant))
			if err != nil {
				return Result{}, Result{}, err
			}
			store := offchain.NewMemStore()
			clients, _, err := newClients(n, cfg.Workers, store, device.XeonE51603, cfg.Scale, cfg.Seed)
			if err != nil {
				n.Stop()
				return Result{}, Result{}, err
			}
			payload := payloadFactory(cfg.Workers, size, cfg.Seed)
			var run RunResult
			if variant == 0 {
				run = RunClosedLoop(cfg.Workers, cfg.WallPerPoint, func(w, it int) error {
					_, err := clients[w].StoreData(fmt.Sprintf("off%d-%d-%d", i, w, it), payload(w, it), core.PostOptions{})
					return err
				})
			} else {
				run = RunClosedLoop(cfg.Workers, cfg.WallPerPoint, func(w, it int) error {
					data := payload(w, it)
					_, err := clients[w].Post(fmt.Sprintf("on%d-%d-%d", i, w, it),
						offchain.Checksum(data),
						core.PostOptions{Meta: encodePayloadMeta(data)})
					return err
				})
			}
			n.Stop()
			row := Row{
				Label:      FormatSize(size),
				Size:       size,
				Throughput: run.ModeledThroughput(cfg.Scale),
				Latency:    run.Latency.Summarize().Scaled(cfg.Scale),
				Errors:     run.Errs,
			}
			if variant == 0 {
				off.Rows = append(off.Rows, row)
			} else {
				on.Rows = append(on.Rows, row)
			}
		}
	}
	return off, on, nil
}

// RaftAblationConfig parameterizes Abl C.
type RaftAblationConfig struct {
	Workers      int
	PayloadSize  int
	WallPerPhase time.Duration
	Scale        float64
	Seed         int64
}

// DefaultRaftAblation returns the standard Abl C configuration.
func DefaultRaftAblation() RaftAblationConfig {
	return RaftAblationConfig{
		Workers:      16,
		PayloadSize:  16 << 10,
		WallPerPhase: 2 * time.Second,
		Scale:        1.0,
		Seed:         1,
	}
}

// RunRaftAblation measures throughput with a 3-node Raft ordering service
// before and after crashing the leader mid-run; the resilience claim is
// that the network keeps committing after failover.
func RunRaftAblation(cfg RaftAblationConfig) (Result, error) {
	res := Result{
		Name:        "Abl C: raft ordering-service failover",
		Description: "desktop network, 3 raft orderers; leader killed between phases",
	}
	netCfg := fabric.DesktopConfig()
	netCfg.Consensus = fabric.ConsensusRaft
	netCfg.RaftNodes = 3
	n, err := newNetwork(netCfg, cfg.Scale, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	defer n.Stop()
	raftSvc, ok := n.Orderer().(*orderer.Raft)
	if !ok {
		return Result{}, fmt.Errorf("bench: orderer is %T, want raft", n.Orderer())
	}
	store := offchain.NewMemStore()
	clients, _, err := newClients(n, cfg.Workers, store, device.XeonE51603, cfg.Scale, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	payload := payloadFactory(cfg.Workers, cfg.PayloadSize, cfg.Seed)

	phase := func(label string, idx int) Row {
		run := RunClosedLoop(cfg.Workers, cfg.WallPerPhase, func(w, it int) error {
			_, err := clients[w].StoreData(fmt.Sprintf("r%d-%d-%d", idx, w, it), payload(w, it), core.PostOptions{})
			return err
		})
		return Row{
			Label:      label,
			Throughput: run.ModeledThroughput(cfg.Scale),
			Latency:    run.Latency.Summarize().Scaled(cfg.Scale),
			Errors:     run.Errs,
		}
	}

	res.Rows = append(res.Rows, phase("steady", 0))
	leader := raftSvc.WaitLeader(5 * time.Second)
	raftSvc.KillNode(leader)
	res.Rows = append(res.Rows, phase("post-crash", 1))
	raftSvc.RestartNode(leader)
	res.Rows = append(res.Rows, phase("healed", 2))
	return res, nil
}
