// Package bench is the benchmarking harness: the stand-in for the paper's
// custom NodeJS benchmark program. It provides a latency recorder, a
// closed-loop load driver, and one experiment definition per figure of the
// paper's evaluation (plus the ablations listed in DESIGN.md), each
// emitting the rows the figure plots.
package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records latency samples and reports distribution statistics.
// It keeps all samples (experiment runs are bounded), which makes exact
// percentiles trivial.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{samples: make([]time.Duration, 0, 1024)}
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// Merge folds other's samples into h (used to summarize a distribution
// across several channels' recorders).
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	samples := make([]time.Duration, len(other.samples))
	copy(samples, other.samples)
	other.mu.Unlock()
	h.mu.Lock()
	h.samples = append(h.samples, samples...)
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Summary is the latency distribution of one run.
type Summary struct {
	Count  int
	Mean   time.Duration
	Stddev time.Duration
	Min    time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	P999   time.Duration
	Max    time.Duration
}

// Summarize computes distribution statistics. A zero Summary is returned
// for an empty histogram.
func (h *Histogram) Summarize() Summary {
	h.mu.Lock()
	samples := make([]time.Duration, len(h.samples))
	copy(samples, h.samples)
	h.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum, sumSq float64
	for _, s := range samples {
		f := float64(s)
		sum += f
		sumSq += f * f
	}
	n := float64(len(samples))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(samples),
		Mean:   time.Duration(mean),
		Stddev: time.Duration(math.Sqrt(variance)),
		Min:    samples[0],
		P50:    percentile(samples, 0.50),
		P95:    percentile(samples, 0.95),
		P99:    percentile(samples, 0.99),
		P999:   percentile(samples, 0.999),
		Max:    samples[len(samples)-1],
	}
}

// percentile returns the p-th percentile of sorted samples (nearest rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Scaled divides every duration in the summary by scale, converting
// wall-clock measurements on a compressed clock back into modeled time.
// scale <= 0 or scale == 1 returns the summary unchanged.
func (s Summary) Scaled(scale float64) Summary {
	if scale <= 0 || scale == 1 {
		return s
	}
	f := func(d time.Duration) time.Duration { return time.Duration(float64(d) / scale) }
	return Summary{
		Count: s.Count, Mean: f(s.Mean), Stddev: f(s.Stddev), Min: f(s.Min),
		P50: f(s.P50), P95: f(s.P95), P99: f(s.P99), P999: f(s.P999), Max: f(s.Max),
	}
}

// FormatSize renders a byte count the way the paper labels its x-axis.
func FormatSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
