package bench

import "testing"

func TestRecoveryBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery bench smoke test skipped in -short")
	}
	cfg := QuickRecoveryBench()
	res, err := RunRecoveryBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.LedgerSizes) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.LedgerSizes))
	}
	for _, row := range res.Rows {
		// The seeded ledger skips a checkpoint exactly at the tip, so the
		// replay tail is at most one full checkpoint interval.
		if row.TailBlocks > cfg.CheckpointEvery {
			t.Errorf("%d blocks: tail %d longer than checkpoint interval %d",
				row.Blocks, row.TailBlocks, cfg.CheckpointEvery)
		}
		if row.CheckpointAge == 0 {
			t.Errorf("%d blocks: recovered without a checkpoint", row.Blocks)
		}
		if row.Speedup <= 0 {
			t.Errorf("%d blocks: speedup = %v", row.Blocks, row.Speedup)
		}
	}
}
