package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
	"github.com/hyperprov/hyperprov/internal/transport"
)

// This file holds the codec experiment: the binary hot-path codec versus
// the legacy encoding/json wire, measured at three layers — envelope
// (micro encode/decode throughput and allocations), end-to-end pipelined
// commit with a cold versus warm signature-verification cache, and TCP
// block catch-up over the framed transport. The nightly regression gate
// (scripts/bench_compare.go) holds the headline ratios: binary decode must
// stay >= 5x JSON, a warm verification cache must keep commit >= 1.3x the
// cold run, and the steady-state frame writer must stay allocation-free.

// CodecBenchConfig parameterizes the codec experiment.
type CodecBenchConfig struct {
	// Envelopes is the micro-benchmark corpus size (distinct signed
	// envelopes); MicroPasses is how many passes each measurement makes
	// over the corpus.
	Envelopes   int
	MicroPasses int
	// Blocks/BlockSize/WritesPerTx shape the end-to-end commit stream.
	Blocks      int
	BlockSize   int
	WritesPerTx int
	// Workers/MVCCWorkers size the commit pipeline (stage 1 and stage 2).
	Workers     int
	MVCCWorkers int
	// CatchupTxs is how many transactions the catch-up source network
	// commits before the TCP pull is measured.
	CatchupTxs int
	// Profile models the committing peer; Scale compresses modeled time.
	Profile device.Profile
	Scale   float64
	Seed    int64
}

// DefaultCodecBench returns the figure-quality configuration.
func DefaultCodecBench() CodecBenchConfig {
	return CodecBenchConfig{
		Envelopes:   256,
		MicroPasses: 200,
		Blocks:      20,
		BlockSize:   100,
		WritesPerTx: 2,
		Workers:     4,
		MVCCWorkers: 4,
		CatchupTxs:  300,
		Profile:     device.XeonE51603,
		Scale:       0.2,
		Seed:        1,
	}
}

// QuickCodecBench returns a reduced run for smoke tests.
func QuickCodecBench() CodecBenchConfig {
	return CodecBenchConfig{
		Envelopes:   64,
		MicroPasses: 40,
		Blocks:      6,
		BlockSize:   50,
		WritesPerTx: 2,
		Workers:     4,
		MVCCWorkers: 4,
		CatchupTxs:  40,
		Profile:     device.XeonE51603,
		Scale:       0.1,
		Seed:        1,
	}
}

// CodecMicroRow is one codec's envelope encode/decode measurement.
type CodecMicroRow struct {
	Codec          string  `json:"codec"` // "json" or "binary"
	WireBytes      float64 `json:"wireBytesPerEnvelope"`
	EncodeMBps     float64 `json:"encodeMBps"`
	DecodeMBps     float64 `json:"decodeMBps"`
	EncodePerSec   float64 `json:"encodeEnvelopesPerSec"`
	DecodePerSec   float64 `json:"decodeEnvelopesPerSec"`
	EncodeAllocsOp float64 `json:"encodeAllocsPerOp"`
	DecodeAllocsOp float64 `json:"decodeAllocsPerOp"`
}

// CodecBenchResult is the BENCH_codec.json artifact.
type CodecBenchResult struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	Micro       []CodecMicroRow `json:"micro"`
	// DecodeSpeedup / EncodeSpeedup are binary-over-JSON envelope
	// throughput ratios (envelopes/s, same logical corpus).
	DecodeSpeedup float64 `json:"decodeSpeedup"`
	EncodeSpeedup float64 `json:"encodeSpeedup"`
	// FrameAllocsPerOp is the steady-state allocation count of one pooled
	// network.WriteFrameExt call; the gate requires exactly zero.
	FrameAllocsPerOp float64 `json:"frameAllocsPerOp"`
	// CommitColdTps / CommitWarmTps are end-to-end pipelined commit rates
	// (modeled tx/s) with an empty versus pre-warmed signature cache.
	CommitColdTps float64 `json:"commitColdTxPerSec"`
	CommitWarmTps float64 `json:"commitWarmTxPerSec"`
	WarmSpeedup   float64 `json:"warmSpeedup"`
	// VerifyCache is the warm run's cache counters (hits prove the warm
	// pass actually skipped re-verification rather than just running hot).
	VerifyCache identity.VerifyCacheStats `json:"verifyCache"`
	// Catchup* measure a remote process pulling the whole chain over the
	// framed TCP transport (BlocksFrom), binary block payloads end to end.
	CatchupBlocks       int     `json:"catchupBlocks"`
	CatchupBlocksPerSec float64 `json:"catchupBlocksPerSec"`
	CatchupMBps         float64 `json:"catchupMBps"`
}

// Format renders the comparison tables.
func (r CodecBenchResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-8s %10s %12s %12s %14s %14s %10s %10s\n",
		"codec", "bytes/env", "enc(MB/s)", "dec(MB/s)", "enc(env/s)", "dec(env/s)", "enc-allocs", "dec-allocs")
	for _, m := range r.Micro {
		fmt.Fprintf(&sb, "%-8s %10.0f %12.1f %12.1f %14.0f %14.0f %10.1f %10.1f\n",
			m.Codec, m.WireBytes, m.EncodeMBps, m.DecodeMBps,
			m.EncodePerSec, m.DecodePerSec, m.EncodeAllocsOp, m.DecodeAllocsOp)
	}
	fmt.Fprintf(&sb, "binary/JSON speedup: decode %.2fx, encode %.2fx\n", r.DecodeSpeedup, r.EncodeSpeedup)
	fmt.Fprintf(&sb, "steady-state frame writer: %.2f allocs/frame\n", r.FrameAllocsPerOp)
	fmt.Fprintf(&sb, "pipelined commit: cold cache %.0f tx/s, warm cache %.0f tx/s (%.2fx; cache %d hits / %d misses)\n",
		r.CommitColdTps, r.CommitWarmTps, r.WarmSpeedup, r.VerifyCache.Hits, r.VerifyCache.Misses)
	fmt.Fprintf(&sb, "TCP catch-up: %d blocks at %.0f blocks/s, %.1f MB/s\n",
		r.CatchupBlocks, r.CatchupBlocksPerSec, r.CatchupMBps)
	return sb.String()
}

// ParseCodecBenchResult decodes a BENCH_codec.json artifact.
func ParseCodecBenchResult(raw []byte) (CodecBenchResult, error) {
	var r CodecBenchResult
	if err := json.Unmarshal(raw, &r); err != nil {
		return CodecBenchResult{}, fmt.Errorf("bench: parse codec result: %w", err)
	}
	if len(r.Micro) == 0 {
		return CodecBenchResult{}, fmt.Errorf("bench: parse codec result: no micro rows")
	}
	return r, nil
}

// WriteJSON writes the result to path (the BENCH_codec.json artifact).
func (r CodecBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal codec result: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// codecSink keeps measured results live so the loops cannot be elided.
var codecSink int

// measureOps runs op n times on one goroutine and reports the elapsed wall
// time plus heap allocations per op (runtime mallocs delta — the bench
// binary is quiescent while this runs, the testing package's own
// AllocsPerRun uses the same counter).
func measureOps(n int, op func(i int)) (time.Duration, float64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < n; i++ {
		op(i)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// runCodecMicro measures envelope encode/decode for both codecs over the
// same corpus of real signed envelopes.
func runCodecMicro(f *commitFixture, cfg CodecBenchConfig) ([]CodecMicroRow, error) {
	envs := make([]blockstore.Envelope, cfg.Envelopes)
	for i := range envs {
		rws := &rwset.ReadWriteSet{}
		for w := 0; w < cfg.WritesPerTx; w++ {
			key := fmt.Sprintf("micro-%05d-%d", i, w)
			doc, err := json.Marshal(map[string]any{
				"key": key, "checksum": fmt.Sprintf("sha256:%05d", i),
				"owner": "x509::CN=bench-client,O=Org1", "ts": 1700000000000 + int64(i),
			})
			if err != nil {
				return nil, err
			}
			rws.Writes = append(rws.Writes, rwset.Write{Key: key, Value: doc})
		}
		env, err := f.envelope(fmt.Sprintf("micro-tx-%05d", i), rws)
		if err != nil {
			return nil, err
		}
		envs[i] = env
	}
	bins := make([][]byte, len(envs))
	jsons := make([][]byte, len(envs))
	var binBytes, jsonBytes int
	for i := range envs {
		b, err := envs[i].Marshal()
		if err != nil {
			return nil, err
		}
		j, err := json.Marshal(&envs[i])
		if err != nil {
			return nil, err
		}
		bins[i], jsons[i] = b, j
		binBytes += len(b)
		jsonBytes += len(j)
	}

	ops := cfg.Envelopes * cfg.MicroPasses
	row := func(codec string, corpusBytes int, enc, dec func(i int)) CodecMicroRow {
		encEl, encAllocs := measureOps(ops, enc)
		decEl, decAllocs := measureOps(ops, dec)
		total := float64(corpusBytes) * float64(cfg.MicroPasses)
		return CodecMicroRow{
			Codec:          codec,
			WireBytes:      float64(corpusBytes) / float64(cfg.Envelopes),
			EncodeMBps:     total / (1 << 20) / encEl.Seconds(),
			DecodeMBps:     total / (1 << 20) / decEl.Seconds(),
			EncodePerSec:   float64(ops) / encEl.Seconds(),
			DecodePerSec:   float64(ops) / decEl.Seconds(),
			EncodeAllocsOp: encAllocs,
			DecodeAllocsOp: decAllocs,
		}
	}

	jsonRow := row("json", jsonBytes,
		func(i int) {
			b, err := json.Marshal(&envs[i%len(envs)])
			if err != nil {
				panic(err)
			}
			codecSink += len(b)
		},
		func(i int) {
			var e blockstore.Envelope
			if err := json.Unmarshal(jsons[i%len(jsons)], &e); err != nil {
				panic(err)
			}
			codecSink += len(e.TxID)
		})
	binRow := row("binary", binBytes,
		func(i int) {
			// The corpus envelopes are unsealed, so Marshal re-encodes from
			// the struct fields every call — the apples-to-apples encode.
			b, err := envs[i%len(envs)].Marshal()
			if err != nil {
				panic(err)
			}
			codecSink += len(b)
		},
		func(i int) {
			e, err := blockstore.UnmarshalEnvelope(bins[i%len(bins)])
			if err != nil {
				panic(err)
			}
			codecSink += len(e.TxID)
		})
	return []CodecMicroRow{jsonRow, binRow}, nil
}

// measureFrameAllocs reports steady-state allocations of one pooled frame
// write. The warm-up write runs AFTER the GC: a collection empties
// sync.Pools, so warming first and collecting second would charge the
// pool's refill to the measured loop.
func measureFrameAllocs() float64 {
	payload := make([]byte, 4096)
	runtime.GC()
	if err := network.WriteFrameExt(io.Discard, "trace-warm", "ch", payload); err != nil {
		return -1
	}
	const n = 256
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		if err := network.WriteFrameExt(io.Discard, "trace-warm", "ch", payload); err != nil {
			return -1
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / n
}

// codecCommitRun feeds the stream through a pipelined committer whose
// verifier uses the given MSP (and its signature cache), over fresh stores
// and a fresh modeled device.
func codecCommitRun(f *commitFixture, msp *identity.MSP, cfg CodecBenchConfig, stream []*blockstore.Block) (time.Duration, string, error) {
	exec := device.NewExecutor(cfg.Profile, device.RealClock{ScaleFactor: cfg.Scale}, cfg.Seed)
	state := statedb.New()
	eng := committer.New(committer.Config{
		State:   state,
		History: historydb.New(),
		Blocks:  blockstore.NewStore(),
		Verifier: &committer.EnvelopeVerifier{
			MSP:    msp,
			Policy: func(string) (endorser.Policy, bool) { return f.policy, true },
			Exec:   exec,
		},
		Workers:     cfg.Workers,
		MVCCWorkers: cfg.MVCCWorkers,
		Exec:        exec,
	})
	start := time.Now()
	for _, b := range stream {
		if !eng.Submit(b) {
			eng.Close()
			return 0, "", fmt.Errorf("bench: block %d rejected", b.Header.Number)
		}
	}
	eng.Sync()
	elapsed := time.Since(start)
	eng.Close()
	return elapsed, committer.StateFingerprint(state), nil
}

// runCodecCatchup commits CatchupTxs transactions on a listening network
// and measures a fresh transport client pulling the whole chain over TCP.
func runCodecCatchup(cfg CodecBenchConfig) (blocks int, blocksPerSec, mbps float64, err error) {
	ncfg := fabric.Config{
		Channels: []fabric.ChannelConfig{{ID: "codecbench"}},
		Org:      "Org1",
		PeerProfiles: []device.Profile{
			cfg.Profile, cfg.Profile,
		},
		OrdererProfile: cfg.Profile,
		Clock:          device.NopClock{},
		Batch: orderer.BatchConfig{
			MaxMessageCount: 10, BatchTimeout: 20 * time.Millisecond, PreferredMaxBytes: 1 << 30,
		},
		Consensus:  fabric.ConsensusSolo,
		PeerListen: true,
		Seed:       cfg.Seed,
	}
	n, err := fabric.NewNetwork(ncfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer n.Stop()
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return 0, 0, 0, err
	}
	gw, err := n.NewGateway("codec-bench")
	if err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < cfg.CatchupTxs; i++ {
		raw, err := json.Marshal(map[string]any{
			"key":      fmt.Sprintf("cu-%06d", i),
			"checksum": fmt.Sprintf("sha256:%06d", i),
		})
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := gw.Submit(provenance.ChaincodeName, provenance.FnSet, raw); err != nil {
			return 0, 0, 0, err
		}
	}
	cl, err := transport.Dial(n.PeerAddrs()[0], transport.ClientConfig{})
	if err != nil {
		return 0, 0, 0, err
	}
	defer cl.Close()
	start := time.Now()
	got, err := cl.BlocksFrom(0)
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	var bytes int
	for _, b := range got {
		bytes += len(blockstore.MarshalBlock(b))
	}
	return len(got), float64(len(got)) / elapsed.Seconds(),
		float64(bytes) / (1 << 20) / elapsed.Seconds(), nil
}

// RunCodecBench runs the codec experiment.
func RunCodecBench(cfg CodecBenchConfig) (CodecBenchResult, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	res := CodecBenchResult{
		Name: "Binary hot-path codec: envelope codec, signature cache, TCP catch-up",
		Description: fmt.Sprintf(
			"%d-envelope corpus x %d passes; commit stream %d blocks x %d tx, %d writes/tx, real ECDSA P-256; modeled peer: %s (%d cores); rates in modeled tx/s",
			cfg.Envelopes, cfg.MicroPasses, cfg.Blocks, cfg.BlockSize, cfg.WritesPerTx,
			cfg.Profile.Name, cfg.Profile.Cores),
	}
	f, err := newCommitFixture()
	if err != nil {
		return CodecBenchResult{}, err
	}

	res.Micro, err = runCodecMicro(f, cfg)
	if err != nil {
		return CodecBenchResult{}, err
	}
	jsonRow, binRow := res.Micro[0], res.Micro[1]
	if jsonRow.DecodePerSec > 0 {
		res.DecodeSpeedup = binRow.DecodePerSec / jsonRow.DecodePerSec
	}
	if jsonRow.EncodePerSec > 0 {
		res.EncodeSpeedup = binRow.EncodePerSec / jsonRow.EncodePerSec
	}
	res.FrameAllocsPerOp = measureFrameAllocs()

	stream, err := f.buildStream(cfg.Blocks, cfg.BlockSize, cfg.WritesPerTx)
	if err != nil {
		return CodecBenchResult{}, err
	}
	totalTx := float64(cfg.Blocks * cfg.BlockSize)
	// Cold: a fresh MSP, so every signature pays real ECDSA plus the
	// modeled Verify charge.
	coldMSP := identity.NewMSP(f.ca)
	coldEl, coldFP, err := codecCommitRun(f, coldMSP, cfg, stream)
	if err != nil {
		return CodecBenchResult{}, err
	}
	// Warm: one priming pass fills the cache (the endorsement path in a
	// live peer plays this role), then the measured pass hits it.
	warmMSP := identity.NewMSP(f.ca)
	if _, _, err := codecCommitRun(f, warmMSP, cfg, stream); err != nil {
		return CodecBenchResult{}, err
	}
	warmEl, warmFP, err := codecCommitRun(f, warmMSP, cfg, stream)
	if err != nil {
		return CodecBenchResult{}, err
	}
	if coldFP != warmFP {
		return CodecBenchResult{}, fmt.Errorf("bench: cold/warm state fingerprint mismatch: %s vs %s", coldFP, warmFP)
	}
	res.CommitColdTps = totalTx / coldEl.Seconds() * cfg.Scale
	res.CommitWarmTps = totalTx / warmEl.Seconds() * cfg.Scale
	if warmEl > 0 {
		res.WarmSpeedup = float64(coldEl) / float64(warmEl)
	}
	res.VerifyCache = warmMSP.VerifyCache().Stats()

	res.CatchupBlocks, res.CatchupBlocksPerSec, res.CatchupMBps, err = runCodecCatchup(cfg)
	if err != nil {
		return CodecBenchResult{}, err
	}
	return res, nil
}
