package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// This file holds the multi-channel tenancy experiment: N independent
// channel commit pipelines sharing ONE modeled host (default: the 4-core
// Xeon E5-1603, the same device.Executor core semaphore every other
// experiment charges). Two questions, matching the multi-tenant pitch:
//
//  1. Scaling — does aggregate committed tx/s grow with the channel count?
//     A single channel's pipeline is sized (Workers, MVCCWorkers=1) so its
//     serial stages leave cores idle; additional channels are additional
//     non-contending pipelines that fill that slack.
//  2. Isolation — does a flooding hot tenant wreck a paced quiet tenant's
//     tail latency? The quiet channel commits small blocks on a fixed
//     cadence, alone and then next to a saturating hot channel; the gap
//     between the two p99s is the interference bill.
//
// Rates are in modeled hardware time, like every experiment here.

// ChannelBenchConfig parameterizes the multi-channel experiment.
type ChannelBenchConfig struct {
	// ChannelCounts are the x-axis points; the first count (conventionally
	// 1) is the baseline the speedup column is relative to.
	ChannelCounts []int
	// BlockSize is transactions per block on every scaling-section channel.
	BlockSize int
	// Blocks is the stream length per channel.
	Blocks int
	// WritesPerTx is the number of state writes each transaction carries.
	WritesPerTx int
	// Workers is each channel's pre-validation pool. Keep it below the
	// profile's core count: per-channel slack is what multi-channel scaling
	// converts into aggregate throughput.
	Workers int
	// MVCCWorkers sizes each channel's stage-2 pool (1 = sequential walk).
	MVCCWorkers int
	// Profile models the host every channel shares.
	Profile device.Profile
	// Scale compresses modeled time (0.5 runs 2x faster than modeled).
	Scale float64
	// Seed fixes modeled jitter.
	Seed int64

	// QuietBlockSize/QuietBlocks shape the isolation section's quiet
	// tenant: QuietBlocks blocks of QuietBlockSize txs, one submitted every
	// QuietInterval of wall clock.
	QuietBlockSize int
	QuietBlocks    int
	QuietInterval  time.Duration
	// HotBlocks is the flooding tenant's stream length (BlockSize-sized
	// blocks, submitted as fast as the pipeline accepts them). Size it to
	// outlast the quiet tenant's paced run.
	HotBlocks int
	// HotWorkers caps the flooding tenant's pre-validation pool. <= 0
	// defaults to Workers.
	HotWorkers int
}

// DefaultChannelBench returns the figure-quality configuration.
func DefaultChannelBench() ChannelBenchConfig {
	return ChannelBenchConfig{
		ChannelCounts:  []int{1, 2, 4},
		BlockSize:      50,
		Blocks:         16,
		WritesPerTx:    2,
		Workers:        2,
		MVCCWorkers:    1,
		Profile:        device.XeonE51603,
		Scale:          0.5,
		Seed:           1,
		QuietBlockSize: 10,
		QuietBlocks:    30,
		QuietInterval:  50 * time.Millisecond,
		HotBlocks:      18,
	}
}

// QuickChannelBench returns a reduced run for smoke tests.
func QuickChannelBench() ChannelBenchConfig {
	return ChannelBenchConfig{
		ChannelCounts:  []int{1, 4},
		BlockSize:      30,
		Blocks:         6,
		WritesPerTx:    2,
		Workers:        2,
		MVCCWorkers:    1,
		Profile:        device.XeonE51603,
		Scale:          0.2,
		Seed:           1,
		QuietBlockSize: 5,
		QuietBlocks:    10,
		QuietInterval:  25 * time.Millisecond,
		HotBlocks:      8,
	}
}

// ChannelBenchRow is one measured channel-count point.
type ChannelBenchRow struct {
	Channels int `json:"channels"`
	// AggregateTps is committed transactions per modeled second summed
	// across every channel of the host.
	AggregateTps float64 `json:"aggregateTxPerSec"`
	// PerChannelTps is AggregateTps / Channels.
	PerChannelTps float64 `json:"perChannelTxPerSec"`
	// Speedup is AggregateTps relative to the first configured count's.
	Speedup float64 `json:"speedup"`
	// P99Ms is the per-block submit-to-persist p99 across all channels, in
	// modeled milliseconds.
	P99Ms float64 `json:"p99MsPerBlock"`
}

// ChannelIsolation reports the hot-tenant interference measurement.
type ChannelIsolation struct {
	QuietBlockSize int `json:"quietBlockSize"`
	HotBlockSize   int `json:"hotBlockSize"`
	// QuietSoloP99Ms is the paced quiet tenant's per-block p99 with the
	// host to itself, modeled milliseconds.
	QuietSoloP99Ms float64 `json:"quietSoloP99Ms"`
	// QuietHotP99Ms is the same tenant's p99 while the hot tenant floods.
	QuietHotP99Ms float64 `json:"quietHotP99Ms"`
	// DegradationPct is the relative p99 rise the hot tenant inflicted.
	DegradationPct float64 `json:"degradationPct"`
	// HotTps is the flooding tenant's modeled throughput during the run.
	HotTps float64 `json:"hotTxPerSec"`
}

// ChannelBenchResult is the multi-channel tenancy comparison.
type ChannelBenchResult struct {
	Name        string            `json:"name"`
	Description string            `json:"description"`
	Rows        []ChannelBenchRow `json:"rows"`
	Isolation   *ChannelIsolation `json:"isolation,omitempty"`
}

// Format renders the comparison table.
func (r ChannelBenchResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-10s %16s %18s %10s %12s\n",
		"channels", "aggregate(tx/s)", "per-channel(tx/s)", "speedup", "p99(ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10d %16.0f %18.0f %9.2fx %12.1f\n",
			row.Channels, row.AggregateTps, row.PerChannelTps, row.Speedup, row.P99Ms)
	}
	if iso := r.Isolation; iso != nil {
		fmt.Fprintf(&sb, "-- hot-tenant isolation (quiet %d-tx blocks vs hot %d-tx flood) --\n",
			iso.QuietBlockSize, iso.HotBlockSize)
		fmt.Fprintf(&sb, "quiet p99 solo %.1fms, beside hot tenant %.1fms (%+.1f%%); hot tenant ran at %.0f tx/s\n",
			iso.QuietSoloP99Ms, iso.QuietHotP99Ms, iso.DegradationPct, iso.HotTps)
	}
	return sb.String()
}

// ParseChannelBenchResult decodes a BENCH_channels.json artifact — the
// regression gate reads the previous nightly's upload with this.
func ParseChannelBenchResult(raw []byte) (ChannelBenchResult, error) {
	var r ChannelBenchResult
	if err := json.Unmarshal(raw, &r); err != nil {
		return ChannelBenchResult{}, fmt.Errorf("bench: parse channels result: %w", err)
	}
	if len(r.Rows) == 0 {
		return ChannelBenchResult{}, fmt.Errorf("bench: parse channels result: no rows")
	}
	return r, nil
}

// WriteJSON writes the result to path (the BENCH_channels.json artifact the
// CI benchmark job uploads).
func (r ChannelBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal channels result: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// channelPipe is one channel's commit pipeline over fresh stores, charged
// against a shared host executor.
type channelPipe struct {
	eng       committer.Committer
	lat       *Histogram
	submitted []time.Time
}

func newChannelPipe(f *commitFixture, exec *device.Executor, streamLen, workers, mvccWorkers int) *channelPipe {
	p := &channelPipe{lat: NewHistogram(), submitted: make([]time.Time, streamLen)}
	p.eng = committer.New(committer.Config{
		State:       statedb.New(),
		History:     historydb.New(),
		Blocks:      blockstore.NewStore(),
		Verifier:    f.verifier(exec),
		Workers:     workers,
		MVCCWorkers: mvccWorkers,
		Exec:        exec,
		OnCommitted: func(b *blockstore.Block) {
			p.lat.Record(time.Since(p.submitted[b.Header.Number]))
		},
	})
	return p
}

// drain feeds the whole stream as fast as the pipeline accepts it and
// blocks until every block persisted.
func (p *channelPipe) drain(stream []*blockstore.Block) error {
	for _, b := range stream {
		p.submitted[b.Header.Number] = time.Now()
		if !p.eng.Submit(b) {
			return fmt.Errorf("bench: block %d rejected", b.Header.Number)
		}
	}
	p.eng.Sync()
	return nil
}

// RunChannelBench runs the multi-channel scaling and isolation experiment.
func RunChannelBench(cfg ChannelBenchConfig) (ChannelBenchResult, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MVCCWorkers <= 0 {
		cfg.MVCCWorkers = 1
	}
	if cfg.HotWorkers <= 0 {
		cfg.HotWorkers = cfg.Workers
	}
	res := ChannelBenchResult{
		Name: "Multi-channel tenancy: per-channel pipelines on one modeled host",
		Description: fmt.Sprintf(
			"%d blocks x %d tx per channel, %d writes/tx, real ECDSA P-256 signatures; shared host: %s (%d cores); per-channel pipeline: %d workers, mvcc=%d; rates in modeled tx/s",
			cfg.Blocks, cfg.BlockSize, cfg.WritesPerTx, cfg.Profile.Name, cfg.Profile.Cores,
			cfg.Workers, cfg.MVCCWorkers),
	}
	f, err := newCommitFixture()
	if err != nil {
		return ChannelBenchResult{}, err
	}
	// One signed stream serves every channel: the committer clones each
	// ordered block before annotating it, and every channel owns fresh
	// stores, so the only shared resource is the modeled host — exactly the
	// contention under test.
	stream, err := f.buildStream(cfg.Blocks, cfg.BlockSize, cfg.WritesPerTx)
	if err != nil {
		return ChannelBenchResult{}, err
	}

	var baseTps float64
	for _, count := range cfg.ChannelCounts {
		exec := device.NewExecutor(cfg.Profile, device.RealClock{ScaleFactor: cfg.Scale}, cfg.Seed)
		pipes := make([]*channelPipe, count)
		for i := range pipes {
			pipes[i] = newChannelPipe(f, exec, len(stream), cfg.Workers, cfg.MVCCWorkers)
		}
		errs := make([]error, count)
		start := time.Now()
		var wg sync.WaitGroup
		for i, p := range pipes {
			wg.Add(1)
			go func(i int, p *channelPipe) {
				defer wg.Done()
				errs[i] = p.drain(stream)
			}(i, p)
		}
		wg.Wait()
		elapsed := time.Since(start)
		all := NewHistogram()
		for i, p := range pipes {
			p.eng.Close()
			if errs[i] != nil {
				return ChannelBenchResult{}, errs[i]
			}
			all.Merge(p.lat)
		}
		row := ChannelBenchRow{
			Channels:     count,
			AggregateTps: float64(count*cfg.Blocks*cfg.BlockSize) / elapsed.Seconds() * cfg.Scale,
			P99Ms:        float64(all.Summarize().Scaled(cfg.Scale).P99) / float64(time.Millisecond),
		}
		row.PerChannelTps = row.AggregateTps / float64(count)
		if baseTps == 0 {
			baseTps = row.AggregateTps
		}
		row.Speedup = row.AggregateTps / baseTps
		res.Rows = append(res.Rows, row)
	}

	iso, err := runChannelIsolation(f, cfg, stream)
	if err != nil {
		return ChannelBenchResult{}, err
	}
	res.Isolation = iso
	return res, nil
}

// runChannelIsolation measures the paced quiet tenant's per-block p99 with
// the host to itself and again while a hot tenant floods a sibling channel.
//
// The isolation mechanism under test is static core partitioning — the
// cgroup/pinning move an operator makes for a noisy tenant: each channel's
// pipeline is charged against its own reserved half of the host's cores
// (work-conserving sharing, measured by the scaling section above, trades
// that reservation for utilization and lets a flood inflate sibling tails).
// The solo baseline runs under the same quota, so the delta isolates the
// hot tenant's presence rather than the quota itself.
func runChannelIsolation(f *commitFixture, cfg ChannelBenchConfig, hotStream []*blockstore.Block) (*ChannelIsolation, error) {
	quietStream, err := f.buildStream(cfg.QuietBlocks, cfg.QuietBlockSize, cfg.WritesPerTx)
	if err != nil {
		return nil, err
	}
	hot := hotStream[:min(cfg.HotBlocks, len(hotStream))]
	quietProfile, hotProfile := cfg.Profile, cfg.Profile
	quietProfile.Cores = max(1, cfg.Profile.Cores/2)
	hotProfile.Cores = max(1, cfg.Profile.Cores-quietProfile.Cores)

	runQuiet := func(withHot bool) (p99Ms, hotTps float64, err error) {
		exec := device.NewExecutor(quietProfile, device.RealClock{ScaleFactor: cfg.Scale}, cfg.Seed)
		quiet := newChannelPipe(f, exec, len(quietStream), cfg.Workers, cfg.MVCCWorkers)
		defer quiet.eng.Close()
		var hotPipe *channelPipe
		var hotErr error
		var hotElapsed time.Duration
		var wg sync.WaitGroup
		if withHot {
			hotExec := device.NewExecutor(hotProfile, device.RealClock{ScaleFactor: cfg.Scale}, cfg.Seed+1)
			hotPipe = newChannelPipe(f, hotExec, len(hot), cfg.HotWorkers, cfg.MVCCWorkers)
			defer hotPipe.eng.Close()
			wg.Add(1)
			go func() {
				defer wg.Done()
				hotStart := time.Now()
				hotErr = hotPipe.drain(hot)
				hotElapsed = time.Since(hotStart)
			}()
		}
		start := time.Now()
		for n, b := range quietStream {
			// Fixed wall-clock cadence: sleep to the next tick, then submit.
			time.Sleep(time.Until(start.Add(time.Duration(n) * cfg.QuietInterval)))
			quiet.submitted[b.Header.Number] = time.Now()
			if !quiet.eng.Submit(b) {
				return 0, 0, fmt.Errorf("bench: quiet block %d rejected", b.Header.Number)
			}
		}
		quiet.eng.Sync()
		wg.Wait()
		if hotErr != nil {
			return 0, 0, hotErr
		}
		if withHot && hotElapsed > 0 {
			hotTps = float64(len(hot)*cfg.BlockSize) / hotElapsed.Seconds() * cfg.Scale
		}
		p99 := quiet.lat.Summarize().Scaled(cfg.Scale).P99
		return float64(p99) / float64(time.Millisecond), hotTps, nil
	}

	soloP99, _, err := runQuiet(false)
	if err != nil {
		return nil, err
	}
	hotP99, hotTps, err := runQuiet(true)
	if err != nil {
		return nil, err
	}
	iso := &ChannelIsolation{
		QuietBlockSize: cfg.QuietBlockSize,
		HotBlockSize:   cfg.BlockSize,
		QuietSoloP99Ms: soloP99,
		QuietHotP99Ms:  hotP99,
		HotTps:         hotTps,
	}
	if soloP99 > 0 {
		iso.DegradationPct = (hotP99 - soloP99) / soloP99 * 100
	}
	return iso, nil
}
