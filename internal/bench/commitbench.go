package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// This file holds the commit-throughput experiment: serial vs pipelined
// block commit across block sizes and pre-validation worker counts. Each
// committing peer is modeled as one of the paper's devices (default: the
// Xeon E5-1603 desktop, 4 cores): per-operation costs are charged through
// a device.Executor whose core semaphore is what the pipeline's parallel
// workers contend for, exactly as the throughput figures elsewhere in this
// package model their hardware. Signatures are still real ECDSA P-256 and
// every pipelined run is checked for verdict-and-state equivalence against
// the serial baseline before its timing is reported. Rates are in modeled
// hardware time.

// CommitBenchConfig parameterizes the commit experiment.
type CommitBenchConfig struct {
	// BlockSizes are the transactions-per-block points on the x-axis.
	BlockSizes []int
	// Workers are the pipeline pre-validation worker counts; serial is the
	// baseline each is compared against.
	Workers []int
	// Blocks is the stream length per measurement.
	Blocks int
	// WritesPerTx is the number of state writes each transaction carries.
	WritesPerTx int
	// Profile models the committing peer's hardware; its core count is the
	// modeled parallelism ceiling.
	Profile device.Profile
	// Scale compresses modeled time (0.5 runs 2x faster than the modeled
	// hardware); results are reported in modeled units.
	Scale float64
	// Seed fixes modeled jitter.
	Seed int64
}

// DefaultCommitBench returns the figure-quality configuration.
func DefaultCommitBench() CommitBenchConfig {
	return CommitBenchConfig{
		BlockSizes:  []int{10, 50, 100, 250},
		Workers:     []int{1, 2, 4, 8},
		Blocks:      20,
		WritesPerTx: 2,
		Profile:     device.XeonE51603,
		Scale:       0.5,
		Seed:        1,
	}
}

// QuickCommitBench returns a reduced run for smoke tests.
func QuickCommitBench() CommitBenchConfig {
	return CommitBenchConfig{
		BlockSizes:  []int{10, 100},
		Workers:     []int{1, 4},
		Blocks:      5,
		WritesPerTx: 2,
		Profile:     device.XeonE51603,
		Scale:       0.2,
		Seed:        1,
	}
}

// CommitBenchRow is one measured (block size, workers) point.
type CommitBenchRow struct {
	BlockSize   int     `json:"blockSize"`
	Workers     int     `json:"workers"`
	SerialTps   float64 `json:"serialTxPerSec"`
	PipelineTps float64 `json:"pipelineTxPerSec"`
	Speedup     float64 `json:"speedup"`
	SerialMs    float64 `json:"serialMsPerBlock"`
	PipelineMs  float64 `json:"pipelineMsPerBlock"`
}

// CommitBenchResult is the regenerated comparison table.
type CommitBenchResult struct {
	Name        string           `json:"name"`
	Description string           `json:"description"`
	Rows        []CommitBenchRow `json:"rows"`
}

// Format renders the comparison table.
func (r CommitBenchResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-10s %8s %14s %14s %10s\n",
		"blocksize", "workers", "serial(tx/s)", "pipeline(tx/s)", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10d %8d %14.0f %14.0f %9.2fx\n",
			row.BlockSize, row.Workers, row.SerialTps, row.PipelineTps, row.Speedup)
	}
	return sb.String()
}

// WriteJSON writes the result to path (the BENCH_commit.json artifact the
// CI benchmark job uploads).
func (r CommitBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal commit result: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// commitFixture holds the identities a signed block stream needs.
type commitFixture struct {
	msp      *identity.MSP
	client   *identity.SigningIdentity
	endorser *identity.SigningIdentity
	policy   endorser.Policy
}

func newCommitFixture() (*commitFixture, error) {
	ca, err := identity.NewCA("Org1")
	if err != nil {
		return nil, err
	}
	client, err := ca.Enroll("bench-client", identity.RoleClient)
	if err != nil {
		return nil, err
	}
	peerID, err := ca.Enroll("bench-peer", identity.RolePeer)
	if err != nil {
		return nil, err
	}
	return &commitFixture{
		msp:      identity.NewMSP(ca),
		client:   client,
		endorser: peerID,
		policy:   endorser.SignedBy("Org1MSP"),
	}, nil
}

func (f *commitFixture) verifier(exec *device.Executor) committer.Verifier {
	return &committer.EnvelopeVerifier{
		MSP:    f.msp,
		Policy: func(string) (endorser.Policy, bool) { return f.policy, true },
		Exec:   exec,
	}
}

// buildStream assembles `blocks` chained blocks of `blockSize` fully signed
// transactions, each writing writesPerTx unique JSON documents — the block
// stream a peer under sustained provenance load commits.
func (f *commitFixture) buildStream(blocks, blockSize, writesPerTx int) ([]*blockstore.Block, error) {
	out := make([]*blockstore.Block, 0, blocks)
	var prev []byte
	tx := 0
	for bn := 0; bn < blocks; bn++ {
		envs := make([]blockstore.Envelope, blockSize)
		for i := range envs {
			rws := &rwset.ReadWriteSet{}
			for w := 0; w < writesPerTx; w++ {
				key := fmt.Sprintf("item-%07d-%d", tx, w)
				doc, err := json.Marshal(map[string]any{
					"key":      key,
					"checksum": fmt.Sprintf("sha256:%07d", tx),
					"owner":    "x509::CN=bench-client,O=Org1",
					"ts":       1700000000000 + int64(tx),
				})
				if err != nil {
					return nil, err
				}
				rws.Writes = append(rws.Writes, rwset.Write{Key: key, Value: doc})
			}
			env, err := f.envelope(fmt.Sprintf("tx-%07d", tx), rws)
			if err != nil {
				return nil, err
			}
			envs[i] = env
			tx++
		}
		b, err := blockstore.NewBlock(uint64(bn), prev, envs)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
		prev = b.Header.Hash()
	}
	return out, nil
}

func (f *commitFixture) envelope(txID string, rws *rwset.ReadWriteSet) (blockstore.Envelope, error) {
	rwsBytes, err := rws.Marshal()
	if err != nil {
		return blockstore.Envelope{}, err
	}
	resp := &endorser.Response{
		TxID:     txID,
		Status:   shim.OK,
		RWSet:    rwsBytes,
		Endorser: f.endorser.Serialize(),
	}
	endSig, err := f.endorser.Sign(resp.SignedBytes())
	if err != nil {
		return blockstore.Envelope{}, err
	}
	env := blockstore.Envelope{
		TxID:      txID,
		ChannelID: "bench",
		Chaincode: "bench",
		Function:  "set",
		Creator:   f.client.Serialize(),
		Timestamp: time.Unix(1700000000, 0).UTC(),
		RWSet:     rwsBytes,
		Endorsements: []blockstore.Endorsement{
			{Endorser: resp.Endorser, Signature: endSig},
		},
	}
	sig, err := f.client.Sign(env.SignedBytes())
	if err != nil {
		return blockstore.Envelope{}, err
	}
	env.Signature = sig
	return env, nil
}

// commitRun feeds the stream through one committer engine over fresh
// stores and a fresh modeled device, and returns the elapsed wall time
// plus the final state fingerprint and per-block validation codes for
// equivalence checking.
func commitRun(f *commitFixture, bc CommitBenchConfig, stream []*blockstore.Block, workers int, pipelined bool) (time.Duration, string, [][]blockstore.ValidationCode, error) {
	exec := device.NewExecutor(bc.Profile, device.RealClock{ScaleFactor: bc.Scale}, bc.Seed)
	state := statedb.New()
	cfg := committer.Config{
		State:    state,
		History:  historydb.New(),
		Blocks:   blockstore.NewStore(),
		Verifier: f.verifier(exec),
		Workers:  workers,
	}
	var eng committer.Committer
	if pipelined {
		eng = committer.New(cfg)
	} else {
		eng = committer.NewSerial(cfg)
	}
	start := time.Now()
	for _, b := range stream {
		if !eng.Submit(b) {
			eng.Close()
			return 0, "", nil, fmt.Errorf("bench: block %d rejected", b.Header.Number)
		}
	}
	eng.Sync()
	elapsed := time.Since(start)
	eng.Close()

	codes := make([][]blockstore.ValidationCode, len(stream))
	for n := range stream {
		b, err := cfg.Blocks.GetByNumber(uint64(n))
		if err != nil {
			return 0, "", nil, err
		}
		codes[n] = b.TxValidation
	}
	return elapsed, committer.StateFingerprint(state), codes, nil
}

// RunCommitBench runs the serial-vs-pipelined commit comparison.
func RunCommitBench(cfg CommitBenchConfig) (CommitBenchResult, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	res := CommitBenchResult{
		Name: "Commit pipeline: serial vs pipelined block commit",
		Description: fmt.Sprintf(
			"%d blocks per run, %d writes/tx, real ECDSA P-256 signatures; modeled peer: %s (%d cores); rates in modeled tx/s",
			cfg.Blocks, cfg.WritesPerTx, cfg.Profile.Name, cfg.Profile.Cores),
	}
	f, err := newCommitFixture()
	if err != nil {
		return CommitBenchResult{}, err
	}
	// Wall time = modeled time x Scale, so modeled tx/s = wall tx/s x Scale
	// (same convention as RunResult.ModeledThroughput).
	modeledMs := func(d time.Duration) float64 {
		return float64(d.Milliseconds()) / cfg.Scale / float64(cfg.Blocks)
	}
	for _, size := range cfg.BlockSizes {
		stream, err := f.buildStream(cfg.Blocks, size, cfg.WritesPerTx)
		if err != nil {
			return CommitBenchResult{}, err
		}
		serialDur, serialFP, serialCodes, err := commitRun(f, cfg, stream, 1, false)
		if err != nil {
			return CommitBenchResult{}, err
		}
		totalTx := float64(cfg.Blocks * size)
		for _, workers := range cfg.Workers {
			pipeDur, pipeFP, pipeCodes, err := commitRun(f, cfg, stream, workers, true)
			if err != nil {
				return CommitBenchResult{}, err
			}
			if err := sameVerdicts(serialFP, pipeFP, serialCodes, pipeCodes); err != nil {
				return CommitBenchResult{}, fmt.Errorf("bench: size %d workers %d: %w", size, workers, err)
			}
			row := CommitBenchRow{
				BlockSize:   size,
				Workers:     workers,
				SerialTps:   totalTx / serialDur.Seconds() * cfg.Scale,
				PipelineTps: totalTx / pipeDur.Seconds() * cfg.Scale,
				SerialMs:    modeledMs(serialDur),
				PipelineMs:  modeledMs(pipeDur),
			}
			if pipeDur > 0 {
				row.Speedup = float64(serialDur) / float64(pipeDur)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// sameVerdicts confirms a pipelined run reproduced the serial baseline
// exactly: same final state hash, same validation code for every tx.
func sameVerdicts(serialFP, pipeFP string, serial, pipe [][]blockstore.ValidationCode) error {
	if serialFP != pipeFP {
		return fmt.Errorf("state fingerprint mismatch: serial=%s pipeline=%s", serialFP, pipeFP)
	}
	if len(serial) != len(pipe) {
		return fmt.Errorf("block count mismatch: %d vs %d", len(serial), len(pipe))
	}
	for n := range serial {
		if len(serial[n]) != len(pipe[n]) {
			return fmt.Errorf("block %d code count mismatch", n)
		}
		for i := range serial[n] {
			if serial[n][i] != pipe[n][i] {
				return fmt.Errorf("block %d tx %d: serial=%s pipeline=%s",
					n, i, serial[n][i], pipe[n][i])
			}
		}
	}
	return nil
}
