package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// This file holds the commit-throughput experiment: serial vs pipelined
// block commit across block sizes and pre-validation worker counts. Each
// committing peer is modeled as one of the paper's devices (default: the
// Xeon E5-1603 desktop, 4 cores): per-operation costs are charged through
// a device.Executor whose core semaphore is what the pipeline's parallel
// workers contend for, exactly as the throughput figures elsewhere in this
// package model their hardware. Signatures are still real ECDSA P-256 and
// every pipelined run is checked for verdict-and-state equivalence against
// the serial baseline before its timing is reported. Rates are in modeled
// hardware time.

// CommitBenchConfig parameterizes the commit experiment.
type CommitBenchConfig struct {
	// BlockSizes are the transactions-per-block points on the x-axis.
	BlockSizes []int
	// Workers are the pipeline pre-validation worker counts; serial is the
	// baseline each is compared against.
	Workers []int
	// MVCCWorkers sizes stage 2's conflict-graph validation pool for the
	// parallel-MVCC column. Every row is measured twice through the
	// pipeline: once with a sequential MVCC walk (MVCCWorkers=1, the
	// pre-conflict-graph pipeline) and once with this pool — the ratio is
	// the MVCC speedup. <= 0 defaults to the profile's core count.
	MVCCWorkers int
	// Blocks is the stream length per measurement.
	Blocks int
	// WritesPerTx is the number of state writes each transaction carries.
	WritesPerTx int
	// Profile models the committing peer's hardware; its core count is the
	// modeled parallelism ceiling.
	Profile device.Profile
	// Scale compresses modeled time (0.5 runs 2x faster than the modeled
	// hardware); results are reported in modeled units.
	Scale float64
	// Seed fixes modeled jitter.
	Seed int64
	// Overhead additionally measures the cost of full observability
	// (metrics + tracing enabled on the committer) at the largest
	// configured point, reporting the throughput delta against the
	// uninstrumented run. The admin endpoint's "<5% overhead" guard in CI
	// checks this number.
	Overhead bool
}

// DefaultCommitBench returns the figure-quality configuration.
func DefaultCommitBench() CommitBenchConfig {
	return CommitBenchConfig{
		BlockSizes:  []int{10, 50, 100, 250},
		Workers:     []int{1, 2, 4, 8},
		MVCCWorkers: 4,
		Blocks:      20,
		WritesPerTx: 2,
		Profile:     device.XeonE51603,
		Scale:       0.5,
		Seed:        1,
	}
}

// QuickCommitBench returns a reduced run for smoke tests.
func QuickCommitBench() CommitBenchConfig {
	return CommitBenchConfig{
		BlockSizes:  []int{10, 100},
		Workers:     []int{1, 4},
		MVCCWorkers: 4,
		Blocks:      5,
		WritesPerTx: 2,
		Profile:     device.XeonE51603,
		Scale:       0.2,
		Seed:        1,
	}
}

// CommitBenchRow is one measured (block size, workers) point. The quantile
// columns are per-block submit-to-persist latencies in modeled milliseconds.
// PipelineTps is the pipeline with a sequential MVCC walk (MVCCWorkers=1);
// ParallelMVCCTps is the same pipeline with the conflict-graph scheduler
// fanned across MVCCWorkers goroutines, and MVCCSpeedup is their ratio.
type CommitBenchRow struct {
	BlockSize       int     `json:"blockSize"`
	Workers         int     `json:"workers"`
	MVCCWorkers     int     `json:"mvccWorkers"`
	SerialTps       float64 `json:"serialTxPerSec"`
	PipelineTps     float64 `json:"pipelineTxPerSec"`
	ParallelMVCCTps float64 `json:"parallelMVCCTxPerSec"`
	Speedup         float64 `json:"speedup"`
	MVCCSpeedup     float64 `json:"mvccSpeedup"`
	SerialMs        float64 `json:"serialMsPerBlock"`
	PipelineMs      float64 `json:"pipelineMsPerBlock"`
	SerialP50Ms     float64 `json:"serialP50MsPerBlock"`
	SerialP99Ms     float64 `json:"serialP99MsPerBlock"`
	SerialP999Ms    float64 `json:"serialP999MsPerBlock"`
	PipelineP50Ms   float64 `json:"pipelineP50MsPerBlock"`
	PipelineP99Ms   float64 `json:"pipelineP99MsPerBlock"`
	PipelineP999Ms  float64 `json:"pipelineP999MsPerBlock"`
	// ParallelMVCCP99Ms is the per-block p99 of the parallel-MVCC run.
	ParallelMVCCP99Ms float64 `json:"parallelMVCCP99MsPerBlock"`
}

// CommitOverhead reports the observability overhead guard: the same
// pipelined run with metrics + tracing fully enabled versus disabled.
type CommitOverhead struct {
	BlockSize       int     `json:"blockSize"`
	Workers         int     `json:"workers"`
	BaselineTps     float64 `json:"baselineTxPerSec"`
	InstrumentedTps float64 `json:"instrumentedTxPerSec"`
	// OverheadPct is the throughput loss in percent (negative when the
	// instrumented run happened to be faster).
	OverheadPct float64 `json:"overheadPct"`
}

// CommitBenchResult is the regenerated comparison table.
type CommitBenchResult struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// MVCCWorkers is the parallel-MVCC pool size every row's
	// ParallelMVCCTps column was measured with.
	MVCCWorkers int              `json:"mvccWorkers"`
	Rows        []CommitBenchRow `json:"rows"`
	Overhead    *CommitOverhead  `json:"overhead,omitempty"`
}

// Format renders the comparison table.
func (r CommitBenchResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-10s %8s %14s %14s %16s %10s %10s %12s %12s\n",
		"blocksize", "workers", "serial(tx/s)", "pipeline(tx/s)",
		fmt.Sprintf("mvcc=%d(tx/s)", r.MVCCWorkers), "speedup", "mvcc-gain", "p99-pipe(ms)", "p99-mvcc(ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10d %8d %14.0f %14.0f %16.0f %9.2fx %9.2fx %12.1f %12.1f\n",
			row.BlockSize, row.Workers, row.SerialTps, row.PipelineTps, row.ParallelMVCCTps,
			row.Speedup, row.MVCCSpeedup, row.PipelineP99Ms, row.ParallelMVCCP99Ms)
	}
	if o := r.Overhead; o != nil {
		fmt.Fprintf(&sb, "-- observability overhead (size %d, %d workers) --\n", o.BlockSize, o.Workers)
		fmt.Fprintf(&sb, "baseline %.0f tx/s, instrumented %.0f tx/s, overhead %.2f%%\n",
			o.BaselineTps, o.InstrumentedTps, o.OverheadPct)
	}
	return sb.String()
}

// ParseCommitBenchResult decodes a BENCH_commit.json artifact — the
// regression gate reads the previous nightly's upload with this.
func ParseCommitBenchResult(raw []byte) (CommitBenchResult, error) {
	var r CommitBenchResult
	if err := json.Unmarshal(raw, &r); err != nil {
		return CommitBenchResult{}, fmt.Errorf("bench: parse commit result: %w", err)
	}
	if len(r.Rows) == 0 {
		return CommitBenchResult{}, fmt.Errorf("bench: parse commit result: no rows")
	}
	return r, nil
}

// WriteJSON writes the result to path (the BENCH_commit.json artifact the
// CI benchmark job uploads).
func (r CommitBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal commit result: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// commitFixture holds the identities a signed block stream needs. The CA is
// kept so experiments can mint additional MSPs (each MSP carries its own
// signature-verification cache — the codec experiment measures cold vs warm).
type commitFixture struct {
	ca       *identity.CA
	msp      *identity.MSP
	client   *identity.SigningIdentity
	endorser *identity.SigningIdentity
	policy   endorser.Policy
}

func newCommitFixture() (*commitFixture, error) {
	ca, err := identity.NewCA("Org1")
	if err != nil {
		return nil, err
	}
	client, err := ca.Enroll("bench-client", identity.RoleClient)
	if err != nil {
		return nil, err
	}
	peerID, err := ca.Enroll("bench-peer", identity.RolePeer)
	if err != nil {
		return nil, err
	}
	return &commitFixture{
		ca:       ca,
		msp:      identity.NewMSP(ca),
		client:   client,
		endorser: peerID,
		policy:   endorser.SignedBy("Org1MSP"),
	}, nil
}

func (f *commitFixture) verifier(exec *device.Executor) committer.Verifier {
	return &committer.EnvelopeVerifier{
		MSP:    f.msp,
		Policy: func(string) (endorser.Policy, bool) { return f.policy, true },
		Exec:   exec,
	}
}

// buildStream assembles `blocks` chained blocks of `blockSize` fully signed
// transactions, each writing writesPerTx unique JSON documents — the block
// stream a peer under sustained provenance load commits.
func (f *commitFixture) buildStream(blocks, blockSize, writesPerTx int) ([]*blockstore.Block, error) {
	out := make([]*blockstore.Block, 0, blocks)
	var prev []byte
	tx := 0
	for bn := 0; bn < blocks; bn++ {
		envs := make([]blockstore.Envelope, blockSize)
		for i := range envs {
			rws := &rwset.ReadWriteSet{}
			for w := 0; w < writesPerTx; w++ {
				key := fmt.Sprintf("item-%07d-%d", tx, w)
				doc, err := json.Marshal(map[string]any{
					"key":      key,
					"checksum": fmt.Sprintf("sha256:%07d", tx),
					"owner":    "x509::CN=bench-client,O=Org1",
					"ts":       1700000000000 + int64(tx),
				})
				if err != nil {
					return nil, err
				}
				rws.Writes = append(rws.Writes, rwset.Write{Key: key, Value: doc})
			}
			env, err := f.envelope(fmt.Sprintf("tx-%07d", tx), rws)
			if err != nil {
				return nil, err
			}
			envs[i] = env
			tx++
		}
		b, err := blockstore.NewBlock(uint64(bn), prev, envs)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
		prev = b.Header.Hash()
	}
	return out, nil
}

func (f *commitFixture) envelope(txID string, rws *rwset.ReadWriteSet) (blockstore.Envelope, error) {
	rwsBytes, err := rws.Marshal()
	if err != nil {
		return blockstore.Envelope{}, err
	}
	resp := &endorser.Response{
		TxID:     txID,
		Status:   shim.OK,
		RWSet:    rwsBytes,
		Endorser: f.endorser.Serialize(),
	}
	endSig, err := f.endorser.Sign(resp.SignedBytes())
	if err != nil {
		return blockstore.Envelope{}, err
	}
	env := blockstore.Envelope{
		TxID:      txID,
		ChannelID: "bench",
		Chaincode: "bench",
		Function:  "set",
		Creator:   f.client.Serialize(),
		Timestamp: time.Unix(1700000000, 0).UTC(),
		RWSet:     rwsBytes,
		Endorsements: []blockstore.Endorsement{
			{Endorser: resp.Endorser, Signature: endSig},
		},
	}
	sig, err := f.client.Sign(env.SignedBytes())
	if err != nil {
		return blockstore.Envelope{}, err
	}
	env.Signature = sig
	return env, nil
}

// commitRunResult is one engine pass over a block stream.
type commitRunResult struct {
	elapsed time.Duration
	// perBlock is the submit-to-persist latency distribution across the
	// stream's blocks (wall clock; scale back to modeled time via Scaled).
	perBlock Summary
	fp       string
	codes    [][]blockstore.ValidationCode
}

// commitRun feeds the stream through one committer engine over fresh
// stores and a fresh modeled device, and returns the elapsed wall time,
// the per-block commit-latency distribution, plus the final state
// fingerprint and per-block validation codes for equivalence checking.
// instrumented additionally attaches a live metrics registry and trace
// recorder to the committer — the overhead guard's configuration.
// mvccWorkers sizes stage 2's conflict-graph pool (1 = sequential walk).
func commitRun(f *commitFixture, bc CommitBenchConfig, stream []*blockstore.Block, workers, mvccWorkers int, pipelined, instrumented bool) (*commitRunResult, error) {
	exec := device.NewExecutor(bc.Profile, device.RealClock{ScaleFactor: bc.Scale}, bc.Seed)
	state := statedb.New()
	lat := NewHistogram()
	submitted := make([]time.Time, len(stream))
	cfg := committer.Config{
		State:       state,
		History:     historydb.New(),
		Blocks:      blockstore.NewStore(),
		Verifier:    f.verifier(exec),
		Workers:     workers,
		MVCCWorkers: mvccWorkers,
		Exec:        exec,
		OnCommitted: func(b *blockstore.Block) {
			lat.Record(time.Since(submitted[b.Header.Number]))
		},
	}
	if instrumented {
		cfg.Metrics = metrics.NewRegistry()
		cfg.Tracer = trace.NewRecorder()
		cfg.Name = "bench-peer"
	}
	var eng committer.Committer
	if pipelined {
		eng = committer.New(cfg)
	} else {
		eng = committer.NewSerial(cfg)
	}
	start := time.Now()
	for _, b := range stream {
		submitted[b.Header.Number] = time.Now()
		if !eng.Submit(b) {
			eng.Close()
			return nil, fmt.Errorf("bench: block %d rejected", b.Header.Number)
		}
	}
	eng.Sync()
	elapsed := time.Since(start)
	eng.Close()

	codes := make([][]blockstore.ValidationCode, len(stream))
	for n := range stream {
		b, err := cfg.Blocks.GetByNumber(uint64(n))
		if err != nil {
			return nil, err
		}
		codes[n] = b.TxValidation
	}
	return &commitRunResult{
		elapsed:  elapsed,
		perBlock: lat.Summarize().Scaled(bc.Scale),
		fp:       committer.StateFingerprint(state),
		codes:    codes,
	}, nil
}

// RunCommitBench runs the serial-vs-pipelined commit comparison.
func RunCommitBench(cfg CommitBenchConfig) (CommitBenchResult, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.MVCCWorkers <= 0 {
		cfg.MVCCWorkers = cfg.Profile.Cores
	}
	res := CommitBenchResult{
		Name:        "Commit pipeline: serial vs pipelined vs parallel-MVCC block commit",
		MVCCWorkers: cfg.MVCCWorkers,
		Description: fmt.Sprintf(
			"%d blocks per run, %d writes/tx, real ECDSA P-256 signatures; modeled peer: %s (%d cores); parallel-MVCC pool: %d; rates in modeled tx/s",
			cfg.Blocks, cfg.WritesPerTx, cfg.Profile.Name, cfg.Profile.Cores, cfg.MVCCWorkers),
	}
	f, err := newCommitFixture()
	if err != nil {
		return CommitBenchResult{}, err
	}
	// Wall time = modeled time x Scale, so modeled tx/s = wall tx/s x Scale
	// (same convention as RunResult.ModeledThroughput).
	modeledMs := func(d time.Duration) float64 {
		return float64(d.Milliseconds()) / cfg.Scale / float64(cfg.Blocks)
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, size := range cfg.BlockSizes {
		stream, err := f.buildStream(cfg.Blocks, size, cfg.WritesPerTx)
		if err != nil {
			return CommitBenchResult{}, err
		}
		serial, err := commitRun(f, cfg, stream, 1, 1, false, false)
		if err != nil {
			return CommitBenchResult{}, err
		}
		totalTx := float64(cfg.Blocks * size)
		for _, workers := range cfg.Workers {
			pipe, err := commitRun(f, cfg, stream, workers, 1, true, false)
			if err != nil {
				return CommitBenchResult{}, err
			}
			if err := sameVerdicts(serial.fp, pipe.fp, serial.codes, pipe.codes); err != nil {
				return CommitBenchResult{}, fmt.Errorf("bench: size %d workers %d: %w", size, workers, err)
			}
			par, err := commitRun(f, cfg, stream, workers, cfg.MVCCWorkers, true, false)
			if err != nil {
				return CommitBenchResult{}, err
			}
			if err := sameVerdicts(serial.fp, par.fp, serial.codes, par.codes); err != nil {
				return CommitBenchResult{}, fmt.Errorf("bench: size %d workers %d mvcc %d: %w",
					size, workers, cfg.MVCCWorkers, err)
			}
			row := CommitBenchRow{
				BlockSize:         size,
				Workers:           workers,
				MVCCWorkers:       cfg.MVCCWorkers,
				SerialTps:         totalTx / serial.elapsed.Seconds() * cfg.Scale,
				PipelineTps:       totalTx / pipe.elapsed.Seconds() * cfg.Scale,
				ParallelMVCCTps:   totalTx / par.elapsed.Seconds() * cfg.Scale,
				SerialMs:          modeledMs(serial.elapsed),
				PipelineMs:        modeledMs(pipe.elapsed),
				SerialP50Ms:       ms(serial.perBlock.P50),
				SerialP99Ms:       ms(serial.perBlock.P99),
				SerialP999Ms:      ms(serial.perBlock.P999),
				PipelineP50Ms:     ms(pipe.perBlock.P50),
				PipelineP99Ms:     ms(pipe.perBlock.P99),
				PipelineP999Ms:    ms(pipe.perBlock.P999),
				ParallelMVCCP99Ms: ms(par.perBlock.P99),
			}
			if pipe.elapsed > 0 {
				row.Speedup = float64(serial.elapsed) / float64(pipe.elapsed)
			}
			if par.elapsed > 0 {
				row.MVCCSpeedup = float64(pipe.elapsed) / float64(par.elapsed)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	if cfg.Overhead && len(cfg.BlockSizes) > 0 && len(cfg.Workers) > 0 {
		size := cfg.BlockSizes[len(cfg.BlockSizes)-1]
		workers := cfg.Workers[len(cfg.Workers)-1]
		stream, err := f.buildStream(cfg.Blocks, size, cfg.WritesPerTx)
		if err != nil {
			return CommitBenchResult{}, err
		}
		base, err := commitRun(f, cfg, stream, workers, cfg.MVCCWorkers, true, false)
		if err != nil {
			return CommitBenchResult{}, err
		}
		inst, err := commitRun(f, cfg, stream, workers, cfg.MVCCWorkers, true, true)
		if err != nil {
			return CommitBenchResult{}, err
		}
		totalTx := float64(cfg.Blocks * size)
		baseTps := totalTx / base.elapsed.Seconds() * cfg.Scale
		instTps := totalTx / inst.elapsed.Seconds() * cfg.Scale
		res.Overhead = &CommitOverhead{
			BlockSize:       size,
			Workers:         workers,
			BaselineTps:     baseTps,
			InstrumentedTps: instTps,
			OverheadPct:     (baseTps - instTps) / baseTps * 100,
		}
	}
	return res, nil
}

// sameVerdicts confirms a pipelined run reproduced the serial baseline
// exactly: same final state hash, same validation code for every tx.
func sameVerdicts(serialFP, pipeFP string, serial, pipe [][]blockstore.ValidationCode) error {
	if serialFP != pipeFP {
		return fmt.Errorf("state fingerprint mismatch: serial=%s pipeline=%s", serialFP, pipeFP)
	}
	if len(serial) != len(pipe) {
		return fmt.Errorf("block count mismatch: %d vs %d", len(serial), len(pipe))
	}
	for n := range serial {
		if len(serial[n]) != len(pipe[n]) {
			return fmt.Errorf("block %d code count mismatch", n)
		}
		for i := range serial[n] {
			if serial[n][i] != pipe[n][i] {
				return fmt.Errorf("block %d tx %d: serial=%s pipeline=%s",
					n, i, serial[n][i], pipe[n][i])
			}
		}
	}
	return nil
}
