package bench

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/energy"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// SweepConfig parameterizes the payload-size sweeps of Figs 1–2.
type SweepConfig struct {
	// Sizes are the data-item sizes on the x-axis.
	Sizes []int
	// Workers is the number of concurrent closed-loop clients.
	Workers int
	// WallPerPoint is the wall-clock measurement window per size.
	WallPerPoint time.Duration
	// Scale compresses modeled time (0.05 runs 20x faster than the
	// modeled hardware); results are reported in modeled units.
	Scale float64
	// Seed fixes jitter.
	Seed int64
}

// DefaultSweep returns the figure-quality sweep configuration.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Sizes:        []int{1 << 10, 8 << 10, 64 << 10, 512 << 10, 1 << 20, 4 << 20},
		Workers:      16,
		WallPerPoint: 4 * time.Second,
		Scale:        1.0,
		Seed:         1,
	}
}

// QuickSweep returns a reduced sweep for smoke tests.
func QuickSweep() SweepConfig {
	return SweepConfig{
		Sizes:        []int{1 << 10, 256 << 10, 1 << 20},
		Workers:      16,
		WallPerPoint: 1200 * time.Millisecond,
		Scale:        1.0,
		Seed:         1,
	}
}

// Row is one measured point of a figure.
type Row struct {
	Label      string
	Size       int
	Throughput float64 // modeled tx/s
	Latency    Summary // modeled durations
	Errors     int64
}

// Result is one regenerated figure/table.
type Result struct {
	Name        string
	Description string
	Rows        []Row
}

// Format renders the result as an aligned text table (the rows the paper's
// figures plot).
func (r Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-10s %12s %12s %12s %12s %12s %8s\n",
		"size", "tput(tx/s)", "mean", "p50", "p95", "p99", "errs")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %12.2f %12s %12s %12s %12s %8d\n",
			row.Label, row.Throughput,
			fmtDur(row.Latency.Mean), fmtDur(row.Latency.P50),
			fmtDur(row.Latency.P95), fmtDur(row.Latency.P99), row.Errors)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	return d.Truncate(time.Millisecond).String()
}

// newNetwork builds and deploys a ready network for one measurement point.
func newNetwork(cfg fabric.Config, scale float64, seed int64) (*fabric.Network, error) {
	cfg.Clock = device.RealClock{ScaleFactor: scale}
	cfg.Seed = seed
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		n.Stop()
		return nil, err
	}
	return n, nil
}

// newClients creates `workers` HyperProv clients sharing one client-machine
// executor and one off-chain store, mirroring the paper's single benchmark
// node driving many concurrent requests.
func newClients(n *fabric.Network, workers int, store offchain.Store, prof device.Profile, scale float64, seed int64) ([]*core.Client, *device.Executor, error) {
	exec := device.NewExecutor(prof, device.RealClock{ScaleFactor: scale}, seed+9999)
	clients := make([]*core.Client, workers)
	for w := 0; w < workers; w++ {
		gw, err := n.NewGatewayOn("bench", exec)
		if err != nil {
			return nil, nil, err
		}
		c, err := core.New(gw, core.WithStore(store))
		if err != nil {
			return nil, nil, err
		}
		clients[w] = c
	}
	return clients, exec, nil
}

// payloadFactory returns per-worker reusable payload buffers; each call
// stamps the iteration so every stored object is unique (content
// addressing would otherwise deduplicate).
func payloadFactory(workers, size int, seed int64) func(worker, iteration int) []byte {
	bufs := make([][]byte, workers)
	rng := rand.New(rand.NewSource(seed))
	for w := range bufs {
		bufs[w] = make([]byte, size)
		rng.Read(bufs[w])
	}
	return func(worker, iteration int) []byte {
		buf := bufs[worker%len(bufs)]
		if len(buf) >= 16 {
			binary.BigEndian.PutUint64(buf, uint64(worker))
			binary.BigEndian.PutUint64(buf[8:], uint64(iteration))
		}
		return buf
	}
}

// runSizeSweep measures StoreData throughput and response time across
// payload sizes on the given hardware configuration.
func runSizeSweep(name, desc string, netCfg fabric.Config, clientProf device.Profile, cfg SweepConfig) (Result, error) {
	res := Result{Name: name, Description: desc}
	for i, size := range cfg.Sizes {
		n, err := newNetwork(netCfg, cfg.Scale, cfg.Seed+int64(i)*101)
		if err != nil {
			return Result{}, err
		}
		store := offchain.NewMemStore()
		clients, _, err := newClients(n, cfg.Workers, store, clientProf, cfg.Scale, cfg.Seed)
		if err != nil {
			n.Stop()
			return Result{}, err
		}
		payload := payloadFactory(cfg.Workers, size, cfg.Seed)

		run := RunClosedLoop(cfg.Workers, cfg.WallPerPoint, func(w, it int) error {
			key := fmt.Sprintf("item-%d-%d-%d", i, w, it)
			_, err := clients[w].StoreData(key, payload(w, it), core.PostOptions{})
			return err
		})
		n.Stop()

		res.Rows = append(res.Rows, Row{
			Label:      FormatSize(size),
			Size:       size,
			Throughput: run.ModeledThroughput(cfg.Scale),
			Latency:    run.Latency.Summarize().Scaled(cfg.Scale),
			Errors:     run.Errs,
		})
	}
	return res, nil
}

// RunFig1 regenerates Fig 1: throughput and response times vs data-item
// size on the desktop network (4 x86-64 peers, solo orderer, off-chain
// storage involved).
func RunFig1(cfg SweepConfig) (Result, error) {
	return runSizeSweep(
		"Fig 1: desktop throughput & response time vs payload size",
		"4 desktop peers (2x Xeon E5-1603, i7-4700MQ, i3-2310M), solo orderer, SSHFS-model off-chain store",
		fabric.DesktopConfig(), device.XeonE51603, cfg)
}

// RunFig2 regenerates Fig 2: the same sweep on the RPi 3B+ network.
func RunFig2(cfg SweepConfig) (Result, error) {
	return runSizeSweep(
		"Fig 2: RPi throughput & response time vs payload size",
		"4 Raspberry Pi 3B+ peers (Cortex-A53 @1.4GHz, 100Mbps), solo orderer, SSHFS-model off-chain store",
		fabric.RPiConfig(), device.RPi3BPlus, cfg)
}

// EnergyConfig parameterizes the Fig 3 experiment.
type EnergyConfig struct {
	// Loads are the closed-loop worker counts per load phase; 0 workers is
	// the idle-with-HLF phase.
	Loads []int
	// WallPerPhase is the wall window used to measure utilization.
	WallPerPhase time.Duration
	// PhaseDuration is the modeled metering interval (10 min in Fig 3).
	PhaseDuration time.Duration
	// Scale compresses modeled time during the load measurement.
	Scale float64
	// Seed fixes jitter and meter noise.
	Seed int64
}

// DefaultEnergy returns the figure-quality energy configuration.
func DefaultEnergy() EnergyConfig {
	return EnergyConfig{
		Loads:         []int{0, 2, 4, 8, 16},
		WallPerPhase:  2 * time.Second,
		PhaseDuration: 10 * time.Minute,
		Scale:         1.0,
		Seed:          1,
	}
}

// QuickEnergy returns a reduced energy run for smoke tests.
func QuickEnergy() EnergyConfig {
	return EnergyConfig{
		Loads:         []int{0, 8},
		WallPerPhase:  900 * time.Millisecond,
		PhaseDuration: 10 * time.Minute,
		Scale:         1.0,
		Seed:          1,
	}
}

// EnergyRow is one Fig-3 phase measurement.
type EnergyRow struct {
	Phase        string
	Workers      int
	Throughput   float64 // modeled tx/s sustained during the phase
	Utilization  float64
	AvgWatts     float64
	MaxWatts     float64
	EnergyJoules float64
}

// EnergyResult is the regenerated Fig 3.
type EnergyResult struct {
	Name        string
	Description string
	Rows        []EnergyRow
}

// Format renders the Fig-3 table.
func (r EnergyResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-12s %8s %12s %8s %8s %8s %12s\n",
		"phase", "workers", "tput(tx/s)", "util", "avg W", "max W", "energy J")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %8d %12.2f %7.0f%% %8.2f %8.2f %12.1f\n",
			row.Phase, row.Workers, row.Throughput, row.Utilization*100,
			row.AvgWatts, row.MaxWatts, row.EnergyJoules)
	}
	return sb.String()
}

// RunFig3 regenerates Fig 3: RPi energy consumption over 10-minute modeled
// intervals at increasing load levels. Utilization is measured by actually
// driving the RPi-profile network; power is integrated by the calibrated
// meter model.
func RunFig3(cfg EnergyConfig) (EnergyResult, error) {
	res := EnergyResult{
		Name:        "Fig 3: RPi energy consumption, 10-minute intervals",
		Description: "ODROID-model meter; peer+client on one RPi 3B+; loads from idle to peak",
	}
	model := energy.RPiPowerModel()

	// Baseline phase: idle RPi without the blockchain stack.
	base, err := energy.RunPhases(model, []energy.Phase{{
		Name: "idle", Duration: cfg.PhaseDuration, Util: 0, HLFRunning: false,
	}}, time.Second, cfg.Seed)
	if err != nil {
		return EnergyResult{}, err
	}
	res.Rows = append(res.Rows, EnergyRow{
		Phase:        "idle",
		AvgWatts:     base[0].Report.AvgWatts,
		MaxWatts:     base[0].Report.MaxWatts,
		EnergyJoules: base[0].Report.EnergyJoules,
	})

	for i, workers := range cfg.Loads {
		n, err := newNetwork(fabric.RPiConfig(), cfg.Scale, cfg.Seed+int64(i)*113)
		if err != nil {
			return EnergyResult{}, err
		}
		util, tput, err := measureUtilization(n, workers, cfg)
		n.Stop()
		if err != nil {
			return EnergyResult{}, err
		}

		name := fmt.Sprintf("load-%d", workers)
		if workers == 0 {
			name = "idle+HLF"
		}
		phases, err := energy.RunPhases(model, []energy.Phase{{
			Name: name, Duration: cfg.PhaseDuration, Util: util, HLFRunning: true,
		}}, time.Second, cfg.Seed+int64(i)*7)
		if err != nil {
			return EnergyResult{}, err
		}
		res.Rows = append(res.Rows, EnergyRow{
			Phase:        name,
			Workers:      workers,
			Throughput:   tput,
			Utilization:  util,
			AvgWatts:     phases[0].Report.AvgWatts,
			MaxWatts:     phases[0].Report.MaxWatts,
			EnergyJoules: phases[0].Report.EnergyJoules,
		})
	}

	// Saturation phase: the paper's peak-load anchor (device fully busy).
	// Closed-loop clients on the modeled RPi rarely reach 100% utilization
	// within a short measurement window, so the full-load point is metered
	// at util=1 directly.
	peak, err := energy.RunPhases(model, []energy.Phase{{
		Name: "peak", Duration: cfg.PhaseDuration, Util: 1.0, HLFRunning: true,
	}}, time.Second, cfg.Seed+7777)
	if err != nil {
		return EnergyResult{}, err
	}
	res.Rows = append(res.Rows, EnergyRow{
		Phase:        "peak",
		Utilization:  1.0,
		AvgWatts:     peak[0].Report.AvgWatts,
		MaxWatts:     peak[0].Report.MaxWatts,
		EnergyJoules: peak[0].Report.EnergyJoules,
	})
	return res, nil
}

// measureUtilization drives the network with `workers` closed-loop clients
// for the wall window and returns peer-0's utilization over the modeled
// window plus modeled throughput. The paper's Fig 3 device runs both a
// peer and the client process, so client costs are charged to the peer's
// executor as well.
func measureUtilization(n *fabric.Network, workers int, cfg EnergyConfig) (float64, float64, error) {
	peerExec := n.Peers()[0].Executor()
	peerExec.ResetBusy()
	if workers == 0 {
		time.Sleep(cfg.WallPerPhase)
		return 0, 0, nil
	}
	store := offchain.NewMemStore()
	clients := make([]*core.Client, workers)
	for w := range clients {
		gw, err := n.NewGatewayOn("energy", peerExec) // client shares the metered RPi
		if err != nil {
			return 0, 0, err
		}
		c, err := core.New(gw, core.WithStore(store))
		if err != nil {
			return 0, 0, err
		}
		clients[w] = c
	}
	payload := payloadFactory(workers, 32<<10, cfg.Seed)
	run := RunClosedLoop(workers, cfg.WallPerPhase, func(w, it int) error {
		_, err := clients[w].StoreData(fmt.Sprintf("e-%d-%d", w, it), payload(w, it), core.PostOptions{})
		return err
	})
	modeledWindow := time.Duration(float64(run.WallDuration) / cfg.Scale)
	util := peerExec.Utilization(modeledWindow)
	return util, run.ModeledThroughput(cfg.Scale), nil
}

// encodePayloadMeta packs a payload into record metadata for the on-chain
// ablation (Abl B): the whole payload rides inside the transaction.
func encodePayloadMeta(data []byte) map[string]string {
	return map[string]string{"data": base64.StdEncoding.EncodeToString(data)}
}
