package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/recovery"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// This file holds the recovery experiment: how fast a durable peer comes
// back after a crash, checkpoint + tail-replay versus replaying the whole
// block file from genesis, across ledger sizes. Replay never re-verifies
// signatures (validation flags are settled in the stored blocks), so the
// streams here carry none and the measurement isolates exactly the
// recovery path: block-file load, checkpoint restore, and the MVCC replay
// of the tail. Both paths land on the same state fingerprint, which each
// run asserts before reporting a time.

// RecoveryBenchConfig parameterizes the recovery experiment. The workload
// models the paper's: a bounded population of provenance records whose
// versions accumulate (HyperProv's GetKeyHistory exists because records are
// updated, not endlessly minted), indexed by the same four fields the
// provenance chaincode declares.
type RecoveryBenchConfig struct {
	// LedgerSizes are the chain lengths (in blocks) on the x-axis.
	LedgerSizes []int
	// TxPerBlock is the number of transactions per block.
	TxPerBlock int
	// WritesPerTx is the number of JSON document writes per transaction.
	WritesPerTx int
	// Records is the size of the record population being updated.
	Records int
	// CheckpointEvery is the block interval between durable checkpoints.
	CheckpointEvery int
	// Runs is how many times each cold open is measured (median reported).
	Runs int
}

// DefaultRecoveryBench returns the figure-quality configuration.
func DefaultRecoveryBench() RecoveryBenchConfig {
	return RecoveryBenchConfig{
		LedgerSizes:     []int{200, 800, 3200},
		TxPerBlock:      10,
		WritesPerTx:     2,
		Records:         4000,
		CheckpointEvery: 16,
		Runs:            3,
	}
}

// QuickRecoveryBench returns a reduced run for smoke tests.
func QuickRecoveryBench() RecoveryBenchConfig {
	return RecoveryBenchConfig{
		LedgerSizes:     []int{40, 120},
		TxPerBlock:      5,
		WritesPerTx:     2,
		Records:         500,
		CheckpointEvery: 8,
		Runs:            1,
	}
}

// recoveryIndexes mirrors the provenance chaincode's index declarations.
func recoveryIndexes() []richquery.IndexDef {
	return []richquery.IndexDef{
		{Name: "by-owner", Field: "owner"},
		{Name: "by-creator", Field: "creator"},
		{Name: "by-type", Field: "meta.type"},
		{Name: "by-time", Field: "ts"},
	}
}

// RecoveryBenchRow is one measured ledger size. LedgerLoadMs is the block
// file load — byte-identical work whichever strategy follows, reported so
// the table hides nothing. CheckpointMs and GenesisMs are the soft-state
// rebuild times the two strategies actually differ on (checkpoint restore +
// tail replay vs full replay); Speedup is their ratio, TotalSpeedup the
// ratio of whole cold opens including the shared load.
type RecoveryBenchRow struct {
	Blocks         int     `json:"blocks"`
	Transactions   int     `json:"transactions"`
	StateKeys      int     `json:"stateKeys"`
	HistoryEntries int     `json:"historyEntries"`
	TailBlocks     int     `json:"tailBlocks"`
	CheckpointAge  uint64  `json:"checkpointHeight"`
	LedgerLoadMs   float64 `json:"ledgerLoadMs"`
	CheckpointMs   float64 `json:"checkpointRecoveryMs"`
	GenesisMs      float64 `json:"genesisReplayMs"`
	Speedup        float64 `json:"speedup"`
	TotalCkptMs    float64 `json:"totalCheckpointOpenMs"`
	TotalGenesisMs float64 `json:"totalGenesisOpenMs"`
	TotalSpeedup   float64 `json:"totalSpeedup"`
}

// RecoveryBenchResult is the regenerated comparison table.
type RecoveryBenchResult struct {
	Name        string             `json:"name"`
	Description string             `json:"description"`
	Rows        []RecoveryBenchRow `json:"rows"`
}

// Format renders the comparison table.
func (r RecoveryBenchResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-8s %8s %9s %9s %5s %9s %14s %13s %8s %11s\n",
		"blocks", "txs", "statekeys", "history", "tail", "load(ms)",
		"ckpt+tail(ms)", "genesis(ms)", "speedup", "totspeedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-8d %8d %9d %9d %5d %9.1f %14.1f %13.1f %7.1fx %10.1fx\n",
			row.Blocks, row.Transactions, row.StateKeys, row.HistoryEntries,
			row.TailBlocks, row.LedgerLoadMs, row.CheckpointMs, row.GenesisMs,
			row.Speedup, row.TotalSpeedup)
	}
	return sb.String()
}

// WriteJSON writes the result to path (the BENCH_recovery.json artifact the
// CI nightly benchmark job uploads).
func (r RecoveryBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal recovery result: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// seedRecoveryLedger populates dataDir with a committed chain of n blocks,
// taking checkpoints on the configured interval, and crashes without a
// final checkpoint — so every cold open below finds a realistic tail to
// replay. Returns the reference state fingerprint and total key count.
func seedRecoveryLedger(cfg RecoveryBenchConfig, dataDir string, n int) (string, int, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return "", 0, err
	}
	blocks, err := blockstore.OpenFileStoreWithPolicy(
		recovery.BlockFilePath(dataDir), blockstore.SyncOnClose)
	if err != nil {
		return "", 0, err
	}
	state, err := statedb.NewIndexed(recoveryIndexes()...)
	if err != nil {
		blocks.Close()
		return "", 0, err
	}
	history := historydb.New()
	mgr := recovery.NewManager(dataDir, recovery.DefaultKeep, state, history, blocks)

	tx := 0
	write := 0
	var prev []byte
	for bn := 0; bn < n; bn++ {
		envs := make([]blockstore.Envelope, cfg.TxPerBlock)
		for i := range envs {
			rws := &rwset.ReadWriteSet{}
			for w := 0; w < cfg.WritesPerTx; w++ {
				// Walk the bounded record population round-robin so every
				// record accumulates versions as the ledger grows.
				key := fmt.Sprintf("record-%06d", write%cfg.Records)
				doc, err := json.Marshal(map[string]any{
					"key":      key,
					"version":  write / cfg.Records,
					"checksum": fmt.Sprintf("sha256:%064d", write),
					"owner":    fmt.Sprintf("x509::CN=device-%02d,O=Org%d", write%50, write%4+1),
					"creator":  fmt.Sprintf("device-%02d", write%50),
					"meta":     map[string]string{"type": []string{"raw", "aggregate", "model"}[write%3], "site": fmt.Sprintf("site-%d", write%8)},
					"location": fmt.Sprintf("sshfs://store-%d/items/%06d", write%4, write%cfg.Records),
					"ts":       1700000000000 + int64(write),
				})
				if err != nil {
					blocks.Close()
					return "", 0, err
				}
				rws.Writes = append(rws.Writes, rwset.Write{Key: key, Value: doc})
				write++
			}
			raw, err := rws.Marshal()
			if err != nil {
				blocks.Close()
				return "", 0, err
			}
			envs[i] = blockstore.Envelope{
				TxID: fmt.Sprintf("tx-%08d", tx), ChannelID: "bench", Chaincode: "bench",
				Timestamp: time.Unix(1700000000, 0).UTC(), RWSet: raw,
			}
			tx++
		}
		b, err := blockstore.NewBlock(uint64(bn), prev, envs)
		if err != nil {
			blocks.Close()
			return "", 0, err
		}
		b.TxValidation = make([]blockstore.ValidationCode, len(envs))
		for i := range b.TxValidation {
			b.TxValidation[i] = blockstore.TxValid
		}
		prev = b.Header.Hash()
		if err := blocks.Append(b); err != nil {
			blocks.Close()
			return "", 0, err
		}
		if err := committer.Replay(state, history, []*blockstore.Block{b}); err != nil {
			blocks.Close()
			return "", 0, err
		}
		if cfg.CheckpointEvery > 0 && (bn+1)%cfg.CheckpointEvery == 0 && bn+1 < n {
			mgr.OnCheckpoint(committer.Capture{
				Height:       uint64(bn + 1),
				StateHeight:  state.Height(),
				State:        state.Snapshot(),
				IndexEntries: state.IndexEntries(),
			})
			if err := mgr.Err(); err != nil {
				blocks.Close()
				return "", 0, err
			}
		}
	}
	fp := committer.StateFingerprint(state)
	keys := state.Len()
	// Crash, not Close: no final checkpoint, so a tail survives to replay.
	if err := blocks.Sync(); err != nil {
		blocks.Close()
		return "", 0, err
	}
	return fp, keys, blocks.CloseNoFlush()
}

// openTiming is one cold open's measurements — only the numbers, so the
// bench never keeps a recovered ledger (hundreds of MB) alive across runs
// and inflates later runs' garbage collection.
type openTiming struct {
	load, restore, replay time.Duration
	replayed              int
	checkpointHeight      uint64
}

func (ot openTiming) softMs() float64 {
	return float64((ot.restore + ot.replay).Microseconds()) / 1000
}

func (ot openTiming) totalMs() float64 {
	return float64((ot.load + ot.restore + ot.replay).Microseconds()) / 1000
}

// timeOpen runs one cold open, verifies it recovered the reference
// fingerprint, and returns the phase timings. The garbage left by the
// previous open is collected first so one run's allocation debt is not
// billed to the next run's timings.
func timeOpen(dataDir, wantFP string, fromGenesis bool) (openTiming, error) {
	runtime.GC()
	opened, err := recovery.Open(dataDir, recovery.Options{FromGenesis: fromGenesis})
	if err != nil {
		return openTiming{}, err
	}
	defer opened.Blocks.Close()
	if fp := committer.StateFingerprint(opened.State); fp != wantFP {
		return openTiming{}, fmt.Errorf("bench: recovered fingerprint %s, want %s", fp, wantFP)
	}
	return openTiming{
		load:             opened.LoadDuration,
		restore:          opened.RestoreDuration,
		replay:           opened.ReplayDuration,
		replayed:         opened.Replayed,
		checkpointHeight: opened.CheckpointHeight,
	}, nil
}

// medianBy returns the run with the median soft-state rebuild time.
func medianBy(xs []openTiming) openTiming {
	sorted := make([]openTiming, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].softMs() < sorted[j-1].softMs(); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// RunRecoveryBench runs the checkpoint-vs-genesis recovery comparison.
func RunRecoveryBench(cfg RecoveryBenchConfig) (RecoveryBenchResult, error) {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	res := RecoveryBenchResult{
		Name: "Crash recovery: checkpoint + tail replay vs replay from genesis",
		Description: fmt.Sprintf(
			"%d tx/block, %d writes/tx over %d records, 4 secondary indexes, checkpoint every %d blocks; cold open to verified state fingerprint, median of %d runs; load(ms) is the shared block-file load, speedup compares the soft-state rebuild, totspeedup whole cold opens",
			cfg.TxPerBlock, cfg.WritesPerTx, cfg.Records, cfg.CheckpointEvery, cfg.Runs),
	}
	root, err := os.MkdirTemp("", "hyperprov-recovery-bench-*")
	if err != nil {
		return RecoveryBenchResult{}, err
	}
	defer os.RemoveAll(root)

	for idx, size := range cfg.LedgerSizes {
		dataDir := fmt.Sprintf("%s/ledger-%d", root, idx)
		wantFP, keys, err := seedRecoveryLedger(cfg, dataDir, size)
		if err != nil {
			return RecoveryBenchResult{}, fmt.Errorf("seed %d blocks: %w", size, err)
		}
		var ckptRuns, genesisRuns []openTiming
		for r := 0; r < cfg.Runs; r++ {
			ot, err := timeOpen(dataDir, wantFP, false)
			if err != nil {
				return RecoveryBenchResult{}, err
			}
			ckptRuns = append(ckptRuns, ot)
			g, err := timeOpen(dataDir, wantFP, true)
			if err != nil {
				return RecoveryBenchResult{}, err
			}
			genesisRuns = append(genesisRuns, g)
		}
		ck := medianBy(ckptRuns)
		gen := medianBy(genesisRuns)
		row := RecoveryBenchRow{
			Blocks:         size,
			Transactions:   size * cfg.TxPerBlock,
			StateKeys:      keys,
			HistoryEntries: size * cfg.TxPerBlock * cfg.WritesPerTx,
			TailBlocks:     ck.replayed,
			CheckpointAge:  ck.checkpointHeight,
			LedgerLoadMs:   float64(ck.load.Microseconds()) / 1000,
			CheckpointMs:   ck.softMs(),
			GenesisMs:      gen.softMs(),
			TotalCkptMs:    ck.totalMs(),
			TotalGenesisMs: gen.totalMs(),
		}
		if row.CheckpointMs > 0 {
			row.Speedup = row.GenesisMs / row.CheckpointMs
		}
		if row.TotalCkptMs > 0 {
			row.TotalSpeedup = row.TotalGenesisMs / row.TotalCkptMs
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
