//go:build race

package bench

// Under the race detector sync.Pool deliberately drops a fraction of Put
// calls to shake out lifecycle bugs, so the frame writer's zero-allocation
// steady state does not hold; the smoke test relaxes that one assertion.
const raceEnabled = true
