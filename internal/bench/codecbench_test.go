package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hyperprov/hyperprov/internal/device"
)

// TestCodecBenchSmoke runs a tiny configuration end to end: both codec rows
// must carry sane numbers, the binary codec must beat JSON decode, the warm
// signature-cache run must actually hit the cache, the frame writer must be
// allocation-free, and the TCP catch-up must deliver the whole chain.
func TestCodecBenchSmoke(t *testing.T) {
	cfg := CodecBenchConfig{
		Envelopes:   16,
		MicroPasses: 4,
		Blocks:      3,
		BlockSize:   8,
		WritesPerTx: 2,
		Workers:     4,
		MVCCWorkers: 4,
		CatchupTxs:  6,
		Profile:     device.XeonE51603,
		Scale:       0.02,
		Seed:        1,
	}
	res, err := RunCodecBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Micro) != 2 || res.Micro[0].Codec != "json" || res.Micro[1].Codec != "binary" {
		t.Fatalf("micro rows = %+v", res.Micro)
	}
	for _, m := range res.Micro {
		if m.EncodeMBps <= 0 || m.DecodeMBps <= 0 || m.WireBytes <= 0 {
			t.Errorf("row %+v has non-positive rates", m)
		}
	}
	// The 5x floor is the nightly gate's job (tiny smoke corpora are noisy);
	// here binary merely has to beat JSON at all.
	if res.DecodeSpeedup <= 1 {
		t.Errorf("binary decode speedup = %.2f, want > 1", res.DecodeSpeedup)
	}
	// raceEnabled: sync.Pool drops Puts under -race, so allocation-free
	// steady state only holds on plain builds (where the bench gate runs).
	if res.FrameAllocsPerOp < 0 || (!raceEnabled && res.FrameAllocsPerOp > 0.1) {
		t.Errorf("frame allocs/op = %.3f, want 0", res.FrameAllocsPerOp)
	}
	if res.CommitColdTps <= 0 || res.CommitWarmTps <= 0 || res.WarmSpeedup <= 0 {
		t.Errorf("commit rates = cold %.1f warm %.1f (%.2fx)",
			res.CommitColdTps, res.CommitWarmTps, res.WarmSpeedup)
	}
	// The measured warm pass re-verifies every signature through the cache:
	// 2 signatures per tx (client + endorsement).
	if wantHits := uint64(2 * cfg.Blocks * cfg.BlockSize); res.VerifyCache.Hits < wantHits {
		t.Errorf("verify cache hits = %d, want >= %d", res.VerifyCache.Hits, wantHits)
	}
	if res.CatchupBlocks <= 0 || res.CatchupBlocksPerSec <= 0 || res.CatchupMBps <= 0 {
		t.Errorf("catch-up = %d blocks, %.1f blocks/s, %.2f MB/s",
			res.CatchupBlocks, res.CatchupBlocksPerSec, res.CatchupMBps)
	}

	if !strings.Contains(res.Format(), "binary/JSON speedup") {
		t.Error("Format missing the speedup line")
	}
	path := filepath.Join(t.TempDir(), "BENCH_codec.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCodecBenchResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.DecodeSpeedup != res.DecodeSpeedup || len(parsed.Micro) != 2 {
		t.Errorf("round-trip mismatch: %+v", parsed)
	}
	if _, err := ParseCodecBenchResult([]byte("{}")); err == nil {
		t.Error("ParseCodecBenchResult accepted an empty artifact")
	}
}
