package bench

import (
	"strings"
	"testing"
)

func TestQueryBenchSmoke(t *testing.T) {
	cfg := QueryBenchConfig{Sizes: []int{300, 1200}, Owners: 10, QueriesPerPoint: 20, Seed: 1}
	res, err := RunQueryBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.IndexedUs <= 0 || row.ScanUs <= 0 {
			t.Errorf("non-positive timing: %+v", row)
		}
	}
	// The acceptance property: as state grows 4x, the scan path's latency
	// must grow substantially while the indexed path must not degrade the
	// same way (per-owner result size is constant across sizes only in
	// ratio; allow generous slack to keep the test robust on slow CI).
	small, large := res.Rows[0], res.Rows[1]
	if large.ScanUs < small.ScanUs {
		t.Logf("scan did not slow down on this machine: %+v vs %+v (timing noise tolerated)", small, large)
	}
	if large.Speedup < 1 {
		t.Errorf("indexed path slower than scan at %d records: %+v", large.Records, large)
	}
	if !strings.Contains(res.Format(), "records") {
		t.Error("Format missing header")
	}
}
