package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// This file holds the rich-query experiment: the in-repo analog of the
// paper's LevelDB-vs-CouchDB state database comparison. It measures a
// provenance query by non-key field (records by owner) against growing
// state, once served from a declared secondary index and once from the
// filtered-scan path, and reports per-query latency for both. The indexed
// path should stay flat as state grows while the scan path degrades
// linearly.

// QueryBenchConfig parameterizes the indexed-vs-scan experiment.
type QueryBenchConfig struct {
	// Sizes are the state sizes (record counts) on the x-axis.
	Sizes []int
	// Owners is the number of distinct owners records are spread across;
	// each query selects one owner's records.
	Owners int
	// QueriesPerPoint is how many queries are timed per state size.
	QueriesPerPoint int
	// Seed fixes the record layout.
	Seed int64
}

// DefaultQueryBench returns the figure-quality configuration.
func DefaultQueryBench() QueryBenchConfig {
	return QueryBenchConfig{
		Sizes:           []int{1000, 5000, 20000, 50000},
		Owners:          50,
		QueriesPerPoint: 200,
		Seed:            1,
	}
}

// QuickQueryBench returns a reduced run for smoke tests.
func QuickQueryBench() QueryBenchConfig {
	return QueryBenchConfig{
		Sizes:           []int{500, 2000},
		Owners:          20,
		QueriesPerPoint: 50,
		Seed:            1,
	}
}

// QueryBenchRow is one measured state size.
type QueryBenchRow struct {
	Records   int
	PerOwner  int
	IndexedUs float64 // mean µs per indexed query
	ScanUs    float64 // mean µs per scan query
	Speedup   float64
}

// QueryBenchResult is the regenerated comparison table.
type QueryBenchResult struct {
	Name        string
	Description string
	Rows        []QueryBenchRow
}

// Format renders the comparison table.
func (r QueryBenchResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-10s %10s %14s %14s %10s\n",
		"records", "per-owner", "indexed(µs)", "scan(µs)", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10d %10d %14.1f %14.1f %9.1fx\n",
			row.Records, row.PerOwner, row.IndexedUs, row.ScanUs, row.Speedup)
	}
	return sb.String()
}

// RunQueryBench runs the indexed-vs-scan comparison. Both stores hold
// identical records; "indexed" declares the by-owner index the provenance
// contract ships, "scan" declares none, so the planner falls back to the
// filtered scan — the situation of the seed repo before this subsystem.
func RunQueryBench(cfg QueryBenchConfig) (QueryBenchResult, error) {
	res := QueryBenchResult{
		Name: "Rich query: indexed vs scan, records by owner",
		Description: fmt.Sprintf(
			"mean query latency over %d queries; %d owners; LevelDB-flavour scan vs CouchDB-flavour index",
			cfg.QueriesPerPoint, cfg.Owners),
	}
	for _, size := range cfg.Sizes {
		row, err := runQueryPoint(cfg, size)
		if err != nil {
			return QueryBenchResult{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runQueryPoint(cfg QueryBenchConfig, size int) (QueryBenchRow, error) {
	indexed, err := statedb.NewIndexed(richquery.IndexDef{Name: "by-owner", Field: "owner"})
	if err != nil {
		return QueryBenchRow{}, err
	}
	scan, err := statedb.NewIndexed()
	if err != nil {
		return QueryBenchRow{}, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	batch := statedb.NewUpdateBatch()
	for i := 0; i < size; i++ {
		doc, err := json.Marshal(map[string]any{
			"key":      fmt.Sprintf("item-%06d", i),
			"checksum": fmt.Sprintf("cs-%06d", i),
			"owner":    ownerName(i % cfg.Owners),
			"meta":     map[string]string{"type": "raw"},
			"ts":       1570000000000 + int64(i),
		})
		if err != nil {
			return QueryBenchRow{}, err
		}
		batch.Put(fmt.Sprintf("item-%06d", i), doc, statedb.Version{BlockNum: 1, TxNum: uint64(i)})
	}
	// ApplyUpdates only reads the batch, so both stores can commit it.
	height := statedb.Version{BlockNum: 1, TxNum: uint64(size)}
	if err := indexed.ApplyUpdates(batch, height); err != nil {
		return QueryBenchRow{}, err
	}
	if err := scan.ApplyUpdates(batch, height); err != nil {
		return QueryBenchRow{}, err
	}

	queries := make([][]byte, cfg.QueriesPerPoint)
	for i := range queries {
		q, err := json.Marshal(map[string]any{
			"selector": map[string]any{"owner": ownerName(rng.Intn(cfg.Owners))},
		})
		if err != nil {
			return QueryBenchRow{}, err
		}
		queries[i] = q
	}

	// Correctness guard: both paths must agree before being timed.
	if err := sameAnswers(indexed, scan, queries[0]); err != nil {
		return QueryBenchRow{}, err
	}

	indexedUs, err := timeQueries(indexed, queries)
	if err != nil {
		return QueryBenchRow{}, err
	}
	scanUs, err := timeQueries(scan, queries)
	if err != nil {
		return QueryBenchRow{}, err
	}
	row := QueryBenchRow{
		Records:   size,
		PerOwner:  size / cfg.Owners,
		IndexedUs: indexedUs,
		ScanUs:    scanUs,
	}
	if indexedUs > 0 {
		row.Speedup = scanUs / indexedUs
	}
	return row, nil
}

func ownerName(i int) string {
	return fmt.Sprintf("x509::CN=owner-%03d,O=Org1,OU=client", i)
}

func timeQueries(s *statedb.IndexedStore, queries [][]byte) (float64, error) {
	start := time.Now()
	for _, q := range queries {
		if _, err := s.ExecuteQuery(q); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(len(queries)), nil
}

// sameAnswers confirms the indexed and scan paths return identical keys.
func sameAnswers(a, b *statedb.IndexedStore, query []byte) error {
	ra, err := a.ExecuteQuery(query)
	if err != nil {
		return err
	}
	rb, err := b.ExecuteQuery(query)
	if err != nil {
		return err
	}
	if len(ra.KVs) != len(rb.KVs) {
		return fmt.Errorf("bench: indexed returned %d keys, scan %d", len(ra.KVs), len(rb.KVs))
	}
	for i := range ra.KVs {
		if ra.KVs[i].Key != rb.KVs[i].Key {
			return fmt.Errorf("bench: result mismatch at %d: %q vs %q", i, ra.KVs[i].Key, rb.KVs[i].Key)
		}
	}
	if len(ra.KVs) == 0 {
		return fmt.Errorf("bench: query returned no records")
	}
	return nil
}
