package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/statedb"
)

// This file holds the state-layer experiment behind the sharded store:
//
//  1. scan: latency of a fixed-size range scan as total state grows. The
//     single-lock reference store materializes and sorts the whole map
//     (linear in state size); the sharded store's ordered key index seeks
//     and streams (flat in state size for a fixed result).
//  2. mixed: throughput of a fixed mixed workload — concurrent readers
//     issuing point gets with periodic bounded scans, plus one batch
//     writer, the shape of a peer serving queries while committing —
//     across shard counts, against the single-lock baseline. The work per
//     configuration is fixed and every goroutine runs to completion, so
//     the comparison measures lock structure and op cost, not scheduler
//     luck on small machines.
//  3. read-during-commit: Get latency observed by a reader while large
//     update batches apply continuously and a scanner walks the full
//     state. Under the single lock a pending writer behind a long reader
//     scan stalls every later Get for the whole scan; snapshot-backed
//     scans plus shard locks remove exactly that stall.
//
// All numbers are real wall-clock on the host (no device model): this
// experiment measures the data structure, not the paper's hardware.

// StateBenchConfig parameterizes the state experiment.
type StateBenchConfig struct {
	// Sizes are the total-state key counts of the scan experiment.
	Sizes []int
	// ScanResult is the fixed range-scan result size.
	ScanResult int
	// ScanIters is how many scans are averaged per point.
	ScanIters int
	// Shards are the shard counts of the mixed experiment (1 included or
	// not, the single-lock ReferenceStore is always measured as baseline).
	Shards []int
	// MixedKeys is the mixed experiment's resident key count.
	MixedKeys int
	// Readers is the number of concurrent reader goroutines.
	Readers int
	// ReadsPerReader is each reader's fixed op count (gets + scans).
	ReadsPerReader int
	// ScanEvery makes every n-th reader op a bounded scan of ScanResult
	// keys instead of a point get.
	ScanEvery int
	// WriteBatches is the writer's fixed batch count per mixed point.
	WriteBatches int
	// ApplyBatch is the writer's batch size (keys per ApplyUpdates).
	ApplyBatch int
	// LatencyGets is the number of Get samples of the latency experiment.
	LatencyGets int
}

// DefaultStateBench returns the figure-quality configuration.
func DefaultStateBench() StateBenchConfig {
	return StateBenchConfig{
		Sizes:          []int{10_000, 100_000, 1_000_000},
		ScanResult:     100,
		ScanIters:      200,
		Shards:         []int{1, 2, 4, 8},
		MixedKeys:      100_000,
		Readers:        8,
		ReadsPerReader: 10_000,
		ScanEvery:      128,
		WriteBatches:   100,
		ApplyBatch:     500,
		LatencyGets:    20_000,
	}
}

// QuickStateBench returns a reduced run for smoke tests.
func QuickStateBench() StateBenchConfig {
	return StateBenchConfig{
		Sizes:          []int{10_000, 50_000},
		ScanResult:     50,
		ScanIters:      20,
		Shards:         []int{1, 4},
		MixedKeys:      10_000,
		Readers:        4,
		ReadsPerReader: 2_000,
		ScanEvery:      64,
		WriteBatches:   20,
		ApplyBatch:     200,
		LatencyGets:    2_000,
	}
}

// StateScanRow is one (total size) point of the scan experiment.
type StateScanRow struct {
	Keys        int     `json:"keys"`
	ResultSize  int     `json:"resultSize"`
	ShardedUs   float64 `json:"shardedScanMicros"`
	ReferenceUs float64 `json:"referenceScanMicros"`
	Speedup     float64 `json:"speedup"`
}

// StateMixedRow is one (shard count) point of the mixed experiment.
type StateMixedRow struct {
	Shards       int     `json:"shards"` // 0 = single-lock reference
	ReadsPerSec  float64 `json:"readsPerSec"`
	WritesPerSec float64 `json:"writesPerSec"`
	Speedup      float64 `json:"speedupVsReference"`
}

// StateLatencyRow is one read-during-commit latency point.
type StateLatencyRow struct {
	Shards    int     `json:"shards"` // 0 = single-lock reference
	GetMeanUs float64 `json:"getMeanMicros"`
	GetP50Us  float64 `json:"getP50Micros"`
	GetP99Us  float64 `json:"getP99Micros"`
	GetP999Us float64 `json:"getP999Micros"`
	GetMaxUs  float64 `json:"getMaxMicros"`
}

// StateBenchResult is the regenerated state-layer comparison.
type StateBenchResult struct {
	Name        string            `json:"name"`
	Description string            `json:"description"`
	Scan        []StateScanRow    `json:"scan"`
	Mixed       []StateMixedRow   `json:"mixed"`
	Latency     []StateLatencyRow `json:"readDuringCommit"`
}

// Format renders the comparison tables.
func (r StateBenchResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "-- range scan (fixed %d-key result) --\n", r.scanResultSize())
	fmt.Fprintf(&sb, "%-10s %14s %16s %10s\n", "keys", "sharded(us)", "single-lock(us)", "speedup")
	for _, row := range r.Scan {
		fmt.Fprintf(&sb, "%-10d %14.1f %16.1f %9.1fx\n",
			row.Keys, row.ShardedUs, row.ReferenceUs, row.Speedup)
	}
	fmt.Fprintf(&sb, "-- mixed read/write throughput --\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s %10s\n", "shards", "reads/s", "writes/s", "speedup")
	for _, row := range r.Mixed {
		name := fmt.Sprintf("%d", row.Shards)
		if row.Shards == 0 {
			name = "single-lock"
		}
		fmt.Fprintf(&sb, "%-12s %14.0f %14.0f %9.2fx\n",
			name, row.ReadsPerSec, row.WritesPerSec, row.Speedup)
	}
	fmt.Fprintf(&sb, "-- Get latency during continuous ApplyUpdates --\n")
	fmt.Fprintf(&sb, "%-12s %12s %12s %12s %12s %12s\n", "shards", "mean(us)", "p50(us)", "p99(us)", "p999(us)", "max(us)")
	for _, row := range r.Latency {
		name := fmt.Sprintf("%d", row.Shards)
		if row.Shards == 0 {
			name = "single-lock"
		}
		fmt.Fprintf(&sb, "%-12s %12.2f %12.1f %12.1f %12.1f %12.1f\n",
			name, row.GetMeanUs, row.GetP50Us, row.GetP99Us, row.GetP999Us, row.GetMaxUs)
	}
	return sb.String()
}

func (r StateBenchResult) scanResultSize() int {
	if len(r.Scan) > 0 {
		return r.Scan[0].ResultSize
	}
	return 0
}

// WriteJSON writes the result to path (the BENCH_state.json artifact the
// CI benchmark job uploads).
func (r StateBenchResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal state result: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// stateKey formats the i-th resident key (zero-padded so key order is
// deterministic).
func stateKey(i int) string { return fmt.Sprintf("key-%08d", i) }

// populate fills db with n keys in batches.
func populate(db statedb.StateDB, n int) error {
	const chunk = 10_000
	block := uint64(1)
	for at := 0; at < n; at += chunk {
		b := statedb.NewUpdateBatch()
		end := at + chunk
		if end > n {
			end = n
		}
		for i := at; i < end; i++ {
			b.Put(stateKey(i), []byte(fmt.Sprintf(`{"n":%d}`, i)), statedb.Version{BlockNum: block})
		}
		if err := db.ApplyUpdates(b, statedb.Version{BlockNum: block, TxNum: uint64(end - at)}); err != nil {
			return err
		}
		block++
	}
	return nil
}

// RunStateBench regenerates the state-layer experiment.
func RunStateBench(cfg StateBenchConfig) (StateBenchResult, error) {
	res := StateBenchResult{
		Name: "state: sharded, iterator-based world state",
		Description: "range-scan latency vs total state size (fixed result), mixed read/write\n" +
			"throughput vs shard count, and Get latency while batches apply; the\n" +
			"baseline is the pre-sharding single-RWMutex store (wall-clock time).",
	}

	// 1. Scan latency vs total state size.
	for _, n := range cfg.Sizes {
		sharded := statedb.New()
		ref := statedb.NewReference()
		if err := populate(sharded, n); err != nil {
			return res, err
		}
		if err := populate(ref, n); err != nil {
			return res, err
		}
		rng := rand.New(rand.NewSource(7))
		measure := func(db statedb.StateDB) float64 {
			// Time-boxed: the single-lock store's O(n) scans at 1M keys
			// would otherwise dominate the nightly job's wall clock.
			const budget = 2 * time.Second
			var total time.Duration
			iters := 0
			for i := 0; i < cfg.ScanIters && total < budget; i++ {
				at := rng.Intn(n - cfg.ScanResult)
				start := time.Now()
				it := db.GetRange(stateKey(at), "")
				for j := 0; j < cfg.ScanResult; j++ {
					if _, ok := it.Next(); !ok {
						break
					}
				}
				it.Close()
				total += time.Since(start)
				iters++
			}
			return float64(total.Microseconds()) / float64(iters)
		}
		su := measure(sharded)
		ru := measure(ref)
		res.Scan = append(res.Scan, StateScanRow{
			Keys: n, ResultSize: cfg.ScanResult,
			ShardedUs: su, ReferenceUs: ru, Speedup: ru / su,
		})
	}

	// 2. Mixed read/write throughput vs shard count: fixed work, wall time
	// to drain it all.
	var baseline float64
	runMixed := func(db statedb.StateDB, shards int) (StateMixedRow, error) {
		if err := populate(db, cfg.MixedKeys); err != nil {
			return StateMixedRow{}, err
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < cfg.Readers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < cfg.ReadsPerReader; i++ {
					if cfg.ScanEvery > 0 && i%cfg.ScanEvery == cfg.ScanEvery-1 {
						// Bounded scan — a provenance range query mid-load.
						at := rng.Intn(cfg.MixedKeys - cfg.ScanResult)
						it := db.GetRange(stateKey(at), "")
						for j := 0; j < cfg.ScanResult; j++ {
							if _, ok := it.Next(); !ok {
								break
							}
						}
						it.Close()
						continue
					}
					db.Get(stateKey(rng.Intn(cfg.MixedKeys)))
				}
			}(int64(w + 1))
		}
		// One writer, as in the commit pipeline's apply stage.
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(99))
			block := uint64(1_000_000)
			for n := 0; n < cfg.WriteBatches; n++ {
				b := statedb.NewUpdateBatch()
				for i := 0; i < cfg.ApplyBatch; i++ {
					b.Put(stateKey(rng.Intn(cfg.MixedKeys)),
						[]byte(`{"w":1}`), statedb.Version{BlockNum: block})
				}
				if err := db.ApplyUpdates(b, statedb.Version{BlockNum: block, TxNum: uint64(cfg.ApplyBatch)}); err != nil {
					return
				}
				block++
			}
		}()
		wg.Wait()
		secs := time.Since(start).Seconds()
		return StateMixedRow{
			Shards:       shards,
			ReadsPerSec:  float64(cfg.Readers*cfg.ReadsPerReader) / secs,
			WritesPerSec: float64(cfg.WriteBatches*cfg.ApplyBatch) / secs,
		}, nil
	}
	refRow, err := runMixed(statedb.NewReference(), 0)
	if err != nil {
		return res, err
	}
	baseline = refRow.ReadsPerSec + refRow.WritesPerSec
	refRow.Speedup = 1
	res.Mixed = append(res.Mixed, refRow)
	for _, shards := range cfg.Shards {
		row, err := runMixed(statedb.NewSharded(shards), shards)
		if err != nil {
			return res, err
		}
		row.Speedup = (row.ReadsPerSec + row.WritesPerSec) / baseline
		res.Mixed = append(res.Mixed, row)
	}

	// 3. Get latency while batches apply continuously AND a scanner walks
	// the full state (read-during-commit). Under the single lock, a
	// pending ApplyUpdates behind a long scan stalls every Get arriving
	// after it for the rest of the scan; the sharded store's snapshot
	// scans hold no store-wide lock, so Gets never queue behind either.
	runLatency := func(db statedb.StateDB, shards int) (StateLatencyRow, error) {
		if err := populate(db, cfg.MixedKeys); err != nil {
			return StateLatencyRow{}, err
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // paced batch applies: one block every 2ms, like a
			// commit pipeline at steady state. Pacing (rather than
			// applying flat out) keeps the write pressure identical
			// across configurations, so rows compare reader latency —
			// not how much extra work a faster store generated for
			// itself.
			defer wg.Done()
			rng := rand.New(rand.NewSource(5))
			block := uint64(1_000_000)
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				b := statedb.NewUpdateBatch()
				for i := 0; i < cfg.ApplyBatch; i++ {
					b.Put(stateKey(rng.Intn(cfg.MixedKeys)),
						[]byte(`{"w":2}`), statedb.Version{BlockNum: block})
				}
				_ = db.ApplyUpdates(b, statedb.Version{BlockNum: block, TxNum: uint64(cfg.ApplyBatch)})
				block++
			}
		}()
		go func() { // continuous full-state scans (rich-query analog)
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := db.GetRange("", "")
				for {
					if _, ok := it.Next(); !ok {
						break
					}
				}
				it.Close()
			}
		}()
		rng := rand.New(rand.NewSource(11))
		samples := make([]time.Duration, 0, cfg.LatencyGets)
		for i := 0; i < cfg.LatencyGets; i++ {
			start := time.Now()
			db.Get(stateKey(rng.Intn(cfg.MixedKeys)))
			samples = append(samples, time.Since(start))
		}
		close(stop)
		wg.Wait()
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		var sum time.Duration
		for _, s := range samples {
			sum += s
		}
		row := StateLatencyRow{Shards: shards}
		if len(samples) > 0 {
			row.GetMeanUs = float64(sum.Microseconds()) / float64(len(samples))
			row.GetP50Us = float64(percentile(samples, 0.50).Microseconds())
			row.GetP99Us = float64(samples[len(samples)*99/100].Microseconds())
			row.GetP999Us = float64(percentile(samples, 0.999).Microseconds())
			row.GetMaxUs = float64(samples[len(samples)-1].Microseconds())
		}
		return row, nil
	}
	refLat, err := runLatency(statedb.NewReference(), 0)
	if err != nil {
		return res, err
	}
	res.Latency = append(res.Latency, refLat)
	for _, shards := range cfg.Shards {
		row, err := runLatency(statedb.NewSharded(shards), shards)
		if err != nil {
			return res, err
		}
		res.Latency = append(res.Latency, row)
	}
	return res, nil
}
