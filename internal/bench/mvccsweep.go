package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// This file holds the MVCC contention sweep: parallel conflict-graph
// commit throughput as a function of how hard the block's transactions
// fight over a small pool of hot keys. 0% overlap is the embarrassingly
// parallel case (one wavefront per block); 100% means every transaction
// read-modify-writes a hot key, degenerating toward the sequential walk.
// The sweep is the scaling story behind the single MVCCWorkers column in
// the commit benchmark, and the nightly CI job uploads its JSON artifact
// next to BENCH_commit.json.

// MVCCSweepConfig parameterizes the contention sweep.
type MVCCSweepConfig struct {
	// Overlaps are the percentages of transactions per block that contend
	// on the hot-key pool (the x-axis).
	Overlaps []int
	// BlockSize is transactions per block.
	BlockSize int
	// Blocks is the stream length per measurement.
	Blocks int
	// MVCCWorkers sizes the parallel conflict-graph pool; the sequential
	// baseline is always MVCCWorkers=1.
	MVCCWorkers int
	// HotKeys is the size of each block's hot-key pool. Smaller pools mean
	// deeper writer chains at a given overlap.
	HotKeys int
	// Profile models the committing peer; Scale compresses modeled time.
	Profile device.Profile
	Scale   float64
	Seed    int64
}

// DefaultMVCCSweep returns the figure-quality sweep.
func DefaultMVCCSweep() MVCCSweepConfig {
	return MVCCSweepConfig{
		Overlaps:    []int{0, 25, 50, 75, 100},
		BlockSize:   100,
		Blocks:      10,
		MVCCWorkers: 4,
		HotKeys:     4,
		Profile:     device.XeonE51603,
		Scale:       0.5,
		Seed:        1,
	}
}

// QuickMVCCSweep returns a reduced sweep for smoke tests.
func QuickMVCCSweep() MVCCSweepConfig {
	return MVCCSweepConfig{
		Overlaps:    []int{0, 50, 100},
		BlockSize:   24,
		Blocks:      3,
		MVCCWorkers: 4,
		HotKeys:     4,
		Profile:     device.XeonE51603,
		Scale:       0.05,
		Seed:        1,
	}
}

// MVCCSweepRow is one measured overlap point.
type MVCCSweepRow struct {
	OverlapPct int `json:"overlapPct"`
	// SequentialTps is the pipeline with MVCCWorkers=1.
	SequentialTps float64 `json:"sequentialTxPerSec"`
	// ParallelTps is the pipeline with the configured MVCC pool.
	ParallelTps float64 `json:"parallelTxPerSec"`
	Speedup     float64 `json:"speedup"`
	// AvgWaveWidth is the mean conflict-graph wavefront width observed by
	// the parallel run (block size / avg width ~ waves per block).
	AvgWaveWidth float64 `json:"avgWaveWidth"`
	// ValidPct is the share of transactions that committed TxValid — the
	// rest lost MVCC on a hot key, identically in both runs.
	ValidPct float64 `json:"validPct"`
}

// MVCCSweepResult is the sweep's artifact (BENCH_mvcc_sweep.json in CI).
type MVCCSweepResult struct {
	Name        string         `json:"name"`
	Description string         `json:"description"`
	MVCCWorkers int            `json:"mvccWorkers"`
	Rows        []MVCCSweepRow `json:"rows"`
}

// Format renders the sweep table.
func (r MVCCSweepResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n%s\n", r.Name, r.Description)
	fmt.Fprintf(&sb, "%-10s %16s %16s %10s %10s %8s\n",
		"overlap%", "mvcc=1(tx/s)", fmt.Sprintf("mvcc=%d(tx/s)", r.MVCCWorkers),
		"speedup", "avg-wave", "valid%")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10d %16.0f %16.0f %9.2fx %10.1f %7.1f%%\n",
			row.OverlapPct, row.SequentialTps, row.ParallelTps, row.Speedup,
			row.AvgWaveWidth, row.ValidPct)
	}
	return sb.String()
}

// WriteJSON writes the result to path.
func (r MVCCSweepResult) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal mvcc sweep: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// buildContendedStream builds `blocks` chained blocks of blockSize signed
// transactions where overlapPct percent read-modify-write one of hotKeys
// per-block hot keys (fresh every block, so the first claimant of each key
// commits and later claimants lose MVCC — deterministically, in both
// engines) and the rest write unique cold keys.
func (f *commitFixture) buildContendedStream(blocks, blockSize, overlapPct, hotKeys int) ([]*blockstore.Block, error) {
	out := make([]*blockstore.Block, 0, blocks)
	var prev []byte
	tx := 0
	hotPerBlock := blockSize * overlapPct / 100
	for bn := 0; bn < blocks; bn++ {
		envs := make([]blockstore.Envelope, blockSize)
		for i := range envs {
			rws := &rwset.ReadWriteSet{}
			if i < hotPerBlock {
				key := fmt.Sprintf("hot-%04d-%d", bn, i%hotKeys)
				rws.Reads = []rwset.Read{{Key: key, Version: nil}}
				rws.Writes = []rwset.Write{{Key: key, Value: []byte(fmt.Sprintf("w%07d", tx))}}
			} else {
				key := fmt.Sprintf("cold-%07d", tx)
				rws.Writes = []rwset.Write{{Key: key, Value: []byte(fmt.Sprintf("v%07d", tx))}}
			}
			env, err := f.envelope(fmt.Sprintf("tx-%07d", tx), rws)
			if err != nil {
				return nil, err
			}
			envs[i] = env
			tx++
		}
		b, err := blockstore.NewBlock(uint64(bn), prev, envs)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
		prev = b.Header.Hash()
	}
	return out, nil
}

// sweepRun commits the stream through the pipeline with the given MVCC
// pool, returning elapsed wall time, the state fingerprint and codes for
// equivalence, the valid-transaction count, and the average conflict-graph
// wavefront width (0 when the sequential walk never builds a graph).
func sweepRun(f *commitFixture, sc MVCCSweepConfig, stream []*blockstore.Block, mvccWorkers int) (*commitRunResult, int, float64, error) {
	exec := device.NewExecutor(sc.Profile, device.RealClock{ScaleFactor: sc.Scale}, sc.Seed)
	state := statedb.New()
	reg := metrics.NewRegistry()
	cfg := committer.Config{
		State:       state,
		History:     historydb.New(),
		Blocks:      blockstore.NewStore(),
		Verifier:    f.verifier(exec),
		Workers:     sc.Profile.Cores,
		MVCCWorkers: mvccWorkers,
		Exec:        exec,
		Metrics:     reg,
	}
	eng := committer.New(cfg)
	start := time.Now()
	for _, b := range stream {
		if !eng.Submit(b) {
			eng.Close()
			return nil, 0, 0, fmt.Errorf("bench: sweep block %d rejected", b.Header.Number)
		}
	}
	eng.Sync()
	elapsed := time.Since(start)
	eng.Close()

	valid := 0
	codes := make([][]blockstore.ValidationCode, len(stream))
	for n := range stream {
		b, err := cfg.Blocks.GetByNumber(uint64(n))
		if err != nil {
			return nil, 0, 0, err
		}
		codes[n] = b.TxValidation
		for _, c := range b.TxValidation {
			if c == blockstore.TxValid {
				valid++
			}
		}
	}
	// Wave widths ride in nanosecond slots (1 tx == 1ns).
	var avgWave float64
	if s := reg.Histogram(metrics.CommitMVCCWaveWidth).Summary(); s.Count > 0 {
		avgWave = float64(s.Sum) / float64(s.Count)
	}
	return &commitRunResult{
		elapsed: elapsed,
		fp:      committer.StateFingerprint(state),
		codes:   codes,
	}, valid, avgWave, nil
}

// RunMVCCSweep measures parallel-MVCC commit throughput across contention
// levels, checking sequential/parallel equivalence at every point.
func RunMVCCSweep(cfg MVCCSweepConfig) (MVCCSweepResult, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.MVCCWorkers <= 0 {
		cfg.MVCCWorkers = cfg.Profile.Cores
	}
	if cfg.HotKeys <= 0 {
		cfg.HotKeys = 4
	}
	res := MVCCSweepResult{
		Name:        "Parallel MVCC: throughput vs intra-block key contention",
		MVCCWorkers: cfg.MVCCWorkers,
		Description: fmt.Sprintf(
			"%d blocks x %d tx, %d-key hot pool per block, real ECDSA P-256; modeled peer: %s (%d cores); rates in modeled tx/s",
			cfg.Blocks, cfg.BlockSize, cfg.HotKeys, cfg.Profile.Name, cfg.Profile.Cores),
	}
	f, err := newCommitFixture()
	if err != nil {
		return MVCCSweepResult{}, err
	}
	totalTx := float64(cfg.Blocks * cfg.BlockSize)
	for _, overlap := range cfg.Overlaps {
		stream, err := f.buildContendedStream(cfg.Blocks, cfg.BlockSize, overlap, cfg.HotKeys)
		if err != nil {
			return MVCCSweepResult{}, err
		}
		seq, seqValid, _, err := sweepRun(f, cfg, stream, 1)
		if err != nil {
			return MVCCSweepResult{}, err
		}
		par, parValid, avgWave, err := sweepRun(f, cfg, stream, cfg.MVCCWorkers)
		if err != nil {
			return MVCCSweepResult{}, err
		}
		if err := sameVerdicts(seq.fp, par.fp, seq.codes, par.codes); err != nil {
			return MVCCSweepResult{}, fmt.Errorf("bench: sweep overlap %d%%: %w", overlap, err)
		}
		if seqValid != parValid { // sameVerdicts already implies this
			return MVCCSweepResult{}, fmt.Errorf("bench: sweep overlap %d%%: valid %d vs %d",
				overlap, seqValid, parValid)
		}
		row := MVCCSweepRow{
			OverlapPct:    overlap,
			SequentialTps: totalTx / seq.elapsed.Seconds() * cfg.Scale,
			ParallelTps:   totalTx / par.elapsed.Seconds() * cfg.Scale,
			AvgWaveWidth:  avgWave,
			ValidPct:      float64(parValid) / totalTx * 100,
		}
		if par.elapsed > 0 {
			row.Speedup = float64(seq.elapsed) / float64(par.elapsed)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
