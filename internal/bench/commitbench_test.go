package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/hyperprov/hyperprov/internal/device"
)

// TestCommitBenchSmoke runs a tiny configuration end to end: every row must
// carry sane numbers, and the equivalence guard inside RunCommitBench must
// have passed for every (size, workers) point.
func TestCommitBenchSmoke(t *testing.T) {
	cfg := CommitBenchConfig{
		BlockSizes:  []int{4, 16},
		Workers:     []int{1, 4},
		Blocks:      3,
		WritesPerTx: 2,
		Profile:     device.XeonE51603,
		Scale:       0.02,
		Seed:        1,
	}
	res, err := RunCommitBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.BlockSizes) * len(cfg.Workers); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row.SerialTps <= 0 || row.PipelineTps <= 0 || row.Speedup <= 0 {
			t.Errorf("row %+v has non-positive rates", row)
		}
		if row.ParallelMVCCTps <= 0 || row.MVCCSpeedup <= 0 {
			t.Errorf("row %+v has non-positive parallel-MVCC rates", row)
		}
		if row.MVCCWorkers != res.MVCCWorkers {
			t.Errorf("row %+v mvccWorkers != result's %d", row, res.MVCCWorkers)
		}
	}
	if res.Format() == "" {
		t.Error("empty format")
	}

	path := filepath.Join(t.TempDir(), "BENCH_commit.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back CommitBenchResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) {
		t.Errorf("round-trip rows = %d, want %d", len(back.Rows), len(res.Rows))
	}
}
