package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunStateBenchQuick(t *testing.T) {
	cfg := QuickStateBench()
	res, err := RunStateBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scan) != len(cfg.Sizes) {
		t.Fatalf("scan rows = %d, want %d", len(res.Scan), len(cfg.Sizes))
	}
	for _, row := range res.Scan {
		if row.ShardedUs <= 0 || row.ReferenceUs <= 0 {
			t.Fatalf("empty scan measurement: %+v", row)
		}
	}
	// Reference baseline (shards=0) plus one row per configured count.
	if len(res.Mixed) != len(cfg.Shards)+1 {
		t.Fatalf("mixed rows = %d, want %d", len(res.Mixed), len(cfg.Shards)+1)
	}
	if res.Mixed[0].Shards != 0 || res.Mixed[0].Speedup != 1 {
		t.Fatalf("first mixed row is not the baseline: %+v", res.Mixed[0])
	}
	for _, row := range res.Mixed {
		if row.ReadsPerSec <= 0 {
			t.Fatalf("mixed row without reads: %+v", row)
		}
	}
	if len(res.Latency) != len(cfg.Shards)+1 {
		t.Fatalf("latency rows = %d, want %d", len(res.Latency), len(cfg.Shards)+1)
	}
	if res.Format() == "" {
		t.Fatal("empty Format")
	}

	path := filepath.Join(t.TempDir(), "BENCH_state.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back StateBenchResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if len(back.Scan) != len(res.Scan) {
		t.Fatal("artifact dropped scan rows")
	}
}
