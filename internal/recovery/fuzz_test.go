package recovery

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// fuzzSeedCheckpoint is a populated snapshot covering every codec section.
func fuzzSeedCheckpoint() *Checkpoint {
	return &Checkpoint{
		Height:      7,
		StateHeight: statedb.Version{BlockNum: 7, TxNum: 2},
		Fingerprint: "sha256:abc",
		State: map[string]statedb.VersionedValue{
			"k1": {Value: []byte(`{"v":1}`), Version: statedb.Version{BlockNum: 3, TxNum: 0}},
			"k2": {Value: []byte("raw"), Version: statedb.Version{BlockNum: 7, TxNum: 2}},
		},
		History: map[string][]historydb.Entry{
			"k1": {
				{TxID: "tx-1", BlockNum: 3, TxNum: 0, Value: []byte("v1"),
					Timestamp: time.Unix(1700000000, 42).UTC()},
				{TxID: "tx-2", BlockNum: 5, TxNum: 1, IsDelete: true,
					Timestamp: time.Unix(1700000100, 0).UTC()},
			},
		},
		Indexes: []richquery.IndexDef{{Name: "byts", Field: "ts"}},
		IndexEntries: map[string][]richquery.IndexEntry{
			"byts": {{CKey: "000123", DocKey: "k1"}},
		},
	}
}

// FuzzDecodeCheckpoint throws arbitrary bytes at the checkpoint decoder.
// The recovery contract under damaged media: no panic, no unbounded
// allocation, every failure a structured error (ErrBadChecksum or the
// codec's truncation error) so LoadLatest can fall back to an older
// checkpoint — and every accepted input re-encodes to an identical
// snapshot.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(encodeCheckpoint(&Checkpoint{}))
	f.Add(encodeCheckpoint(fuzzSeedCheckpoint()))
	// Damaged variants: flipped byte (CRC catches), truncation, bad magic,
	// stray tail, junk.
	good := encodeCheckpoint(fuzzSeedCheckpoint())
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(good[:len(good)-5])
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	f.Add(bad)
	f.Add(append(append([]byte(nil), good...), 0x00))
	f.Add([]byte("HPCKPT1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := decodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrBadChecksum) && !errors.Is(err, errTruncated) {
				t.Fatalf("unstructured error from decodeCheckpoint: %v", err)
			}
			return
		}
		ck2, err := decodeCheckpoint(encodeCheckpoint(ck))
		if err != nil {
			t.Fatalf("re-decode of re-encoded checkpoint failed: %v", err)
		}
		if !reflect.DeepEqual(ck, ck2) {
			t.Fatalf("checkpoint round-trip mismatch:\n got %#v\nwant %#v", ck2, ck)
		}
	})
}
