// Package recovery makes a peer restartable: it persists periodic,
// checksummed checkpoints of the state database (with history and secondary
// index definitions) next to the durable block file, and on open restores
// the newest valid checkpoint and replays only the block tail through the
// committer's replay path. This is the persistence analog of adaptable
// middleware that reconfigures without losing service: an edge peer that
// loses power mid-commit comes back with state, history, and rich-query
// indexes at the exact pre-crash fingerprint, paying replay cost only for
// the blocks committed since the last checkpoint.
//
// On-disk layout under a peer's data directory:
//
//	blocks.jsonl                     append-only block file (blockstore.FileStore)
//	checkpoints/ckpt-<height16>.ckpt height-stamped checkpoint, newest wins
//	checkpoints/*.tmp                in-flight writes (ignored, swept on open)
//
// Each checkpoint file carries a trailing CRC-32C over its whole payload
// (see codec.go) and is written via temp-file + rename + fsync, so a crash
// mid-checkpoint leaves either the previous checkpoint set intact or a
// complete new file — never a half-written one that recovery could mistake
// for truth.
package recovery

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// Errors returned by the checkpoint store.
var (
	// ErrNoCheckpoint means no usable checkpoint exists (fresh directory, or
	// every candidate failed validation); recovery then replays from genesis.
	ErrNoCheckpoint = errors.New("recovery: no usable checkpoint")
	// ErrBadChecksum means a checkpoint file's bytes do not match its
	// recorded CRC-32C (bit rot, torn write, or tampering).
	ErrBadChecksum = errors.New("recovery: checkpoint checksum mismatch")
)

// Checkpoint is one durable snapshot of a peer's soft state at a block
// boundary. Everything a peer rebuilds in memory on open is here: world
// state with versions, per-key history, and the secondary-index definitions
// the rich-query subsystem rebuilds its indexes from.
type Checkpoint struct {
	// Height is the number of blocks the snapshot reflects.
	Height uint64
	// StateHeight is the state database's MVCC height at the boundary.
	StateHeight statedb.Version
	// Fingerprint is committer.SnapshotFingerprint over State, recorded at
	// write time — diagnostics and torture tests compare it against live
	// peers. Media integrity is the codec's CRC-32C, not this.
	Fingerprint string
	// State is the full versioned world state.
	State map[string]statedb.VersionedValue
	// History is the full per-key write history.
	History map[string][]historydb.Entry
	// Indexes are the declared secondary-index definitions.
	Indexes []richquery.IndexDef
	// IndexEntries is each index's serialized contents (keyed by index
	// name), captured at the same boundary; restore bulk-loads them
	// instead of re-indexing every document. An index with no entry set
	// here is rebuilt from State.
	IndexEntries map[string][]richquery.IndexEntry
}

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
)

// ckptName returns the height-stamped file name; the zero-padded decimal
// keeps lexical order equal to height order.
func ckptName(height uint64) string {
	return fmt.Sprintf("%s%016d%s", ckptPrefix, height, ckptSuffix)
}

// parseCkptName extracts the height from a checkpoint file name.
func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	var h uint64
	digits := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	if _, err := fmt.Sscanf(digits, "%d", &h); err != nil {
		return 0, false
	}
	return h, true
}

// WriteCheckpoint atomically persists ck into dir (created if needed):
// marshal, checksum, write to a temp file, fsync, rename to the final
// height-stamped name, fsync the directory. It returns the final path.
func WriteCheckpoint(dir string, ck *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("recovery: mkdir %s: %w", dir, err)
	}
	raw := encodeCheckpoint(ck)
	final := filepath.Join(dir, ckptName(ck.Height))
	tmp, err := os.CreateTemp(dir, ckptPrefix+"*.tmp")
	if err != nil {
		return "", fmt.Errorf("recovery: temp checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(raw); err != nil {
		cleanup()
		return "", fmt.Errorf("recovery: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", fmt.Errorf("recovery: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("recovery: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("recovery: publish checkpoint: %w", err)
	}
	syncDir(dir)
	return final, nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// ReadCheckpoint loads one checkpoint file and validates its CRC-32C.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("recovery: read %s: %w", path, err)
	}
	ck, err := decodeCheckpoint(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}

// listCheckpoints returns the heights of all checkpoint files in dir,
// ascending. Temp files and foreign names are ignored.
func listCheckpoints(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var heights []uint64
	for _, e := range entries {
		if h, ok := parseCkptName(e.Name()); ok {
			heights = append(heights, h)
		}
	}
	sort.Slice(heights, func(i, j int) bool { return heights[i] < heights[j] })
	return heights
}

// LoadLatest returns the newest valid checkpoint whose height does not
// exceed maxHeight (the durable block file's height): a checkpoint ahead of
// the block file — possible when a crash lands inside the commit pipeline's
// in-flight window — cannot be reconciled with the ledger and is skipped.
// Corrupt candidates are skipped too, falling back to the next older one.
// Validity means the file-level CRC passes AND the decoded state re-derives
// the recorded fingerprint, so recovery never trusts a state snapshot it
// cannot verify byte-for-byte. ErrNoCheckpoint means replay must start from
// genesis.
func LoadLatest(dir string, maxHeight uint64) (*Checkpoint, error) {
	heights := listCheckpoints(dir)
	for i := len(heights) - 1; i >= 0; i-- {
		if heights[i] > maxHeight {
			continue
		}
		ck, err := ReadCheckpoint(filepath.Join(dir, ckptName(heights[i])))
		if err != nil {
			continue // damaged candidate: fall back to an older one
		}
		if committer.SnapshotFingerprint(ck.State) != ck.Fingerprint {
			continue // state disagrees with its own record: treat as damaged
		}
		return ck, nil
	}
	return nil, ErrNoCheckpoint
}

// Prune removes all but the newest keep checkpoint files (and sweeps any
// stale temp files). Edge peers run on small flash cards; unbounded
// checkpoint retention would eventually evict the ledger itself.
func Prune(dir string, keep int) {
	if keep < 1 {
		keep = 1
	}
	heights := listCheckpoints(dir)
	for i := 0; i+keep < len(heights); i++ {
		os.Remove(filepath.Join(dir, ckptName(heights[i])))
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") && strings.HasPrefix(e.Name(), ckptPrefix) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}
