package recovery

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// mkCheckpoint builds a small self-consistent checkpoint at height h.
func mkCheckpoint(t *testing.T, h uint64) *Checkpoint {
	t.Helper()
	state := map[string]statedb.VersionedValue{
		fmt.Sprintf("key-%d", h): {Value: []byte(`{"owner":"alice"}`),
			Version: statedb.Version{BlockNum: h - 1, TxNum: 0}},
	}
	return &Checkpoint{
		Height:      h,
		StateHeight: statedb.Version{BlockNum: h - 1, TxNum: 1},
		Fingerprint: committer.SnapshotFingerprint(state),
		State:       state,
		History: map[string][]historydb.Entry{
			"key": {{TxID: "tx", BlockNum: h - 1, Value: []byte("v"),
				Timestamp: time.Unix(1700000000, 0).UTC()}},
		},
		Indexes: []richquery.IndexDef{{Name: "by-owner", Field: "owner"}},
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	ck := mkCheckpoint(t, 7)
	path, err := WriteCheckpoint(dir, ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Height != 7 || got.StateHeight != ck.StateHeight || got.Fingerprint != ck.Fingerprint {
		t.Errorf("roundtrip header = %+v", got)
	}
	if len(got.State) != 1 || len(got.History) != 1 || len(got.Indexes) != 1 {
		t.Errorf("roundtrip contents: %d state, %d history, %d indexes",
			len(got.State), len(got.History), len(got.Indexes))
	}
}

func TestLoadLatestFallsBackPastDamage(t *testing.T) {
	dir := t.TempDir()
	for _, h := range []uint64{4, 8, 12} {
		if _, err := WriteCheckpoint(dir, mkCheckpoint(t, h)); err != nil {
			t.Fatal(err)
		}
	}
	// Damage the newest file: flip bytes inside the payload.
	newest := filepath.Join(dir, ckptName(12))
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadLatest(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Height != 8 {
		t.Errorf("fallback height = %d, want 8", ck.Height)
	}
}

func TestLoadLatestSkipsCheckpointsAheadOfLedger(t *testing.T) {
	dir := t.TempDir()
	for _, h := range []uint64{4, 8} {
		if _, err := WriteCheckpoint(dir, mkCheckpoint(t, h)); err != nil {
			t.Fatal(err)
		}
	}
	// The block file only confirms 6 blocks: the height-8 checkpoint (taken
	// while later blocks were still in the pipeline) must be skipped.
	ck, err := LoadLatest(dir, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Height != 4 {
		t.Errorf("height = %d, want 4", ck.Height)
	}
	if _, err := LoadLatest(dir, 3); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("all-ahead: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointCodecRoundtripDetail(t *testing.T) {
	ck := mkCheckpoint(t, 5)
	ck.IndexEntries = map[string][]richquery.IndexEntry{
		"by-owner": {{CKey: "a", DocKey: "k1"}, {CKey: "b", DocKey: "k2"}},
	}
	ck.History["del"] = []historydb.Entry{{TxID: "txd", BlockNum: 2, TxNum: 1, IsDelete: true,
		Timestamp: time.Date(2019, 6, 1, 12, 0, 0, 987654321, time.UTC)}}
	got, err := decodeCheckpoint(encodeCheckpoint(ck))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Errorf("codec roundtrip diverged:\n got %+v\nwant %+v", got, ck)
	}
}

func TestCheckpointCodecRejectsDamage(t *testing.T) {
	raw := encodeCheckpoint(mkCheckpoint(t, 5))
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"flipped-bit": func(b []byte) []byte { c := append([]byte{}, b...); c[len(c)/3] ^= 1; return c },
		"bad-magic":   func(b []byte) []byte { c := append([]byte{}, b...); c[0] = 'X'; return c },
		"trailing":    func(b []byte) []byte { return append(append([]byte{}, b...), 0) },
	} {
		if _, err := decodeCheckpoint(mutate(raw)); err == nil {
			t.Errorf("%s checkpoint decoded without error", name)
		}
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, h := range []uint64{2, 4, 6, 8} {
		if _, err := WriteCheckpoint(dir, mkCheckpoint(t, h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, ckptPrefix+"zzz.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	Prune(dir, 2)
	if got := listCheckpoints(dir); len(got) != 2 || got[0] != 6 || got[1] != 8 {
		t.Errorf("after prune: %v, want [6 8]", got)
	}
	if _, err := os.Stat(filepath.Join(dir, ckptPrefix+"zzz.tmp")); !os.IsNotExist(err) {
		t.Error("stale temp file not swept")
	}
}

// mkStoredBlock builds a committed-looking block: one envelope writing a
// JSON doc per key, validation flags settled. Replay never re-checks
// signatures, so none are needed.
func mkStoredBlock(t *testing.T, n uint64, prev []byte, keys ...string) *blockstore.Block {
	t.Helper()
	rws := &rwset.ReadWriteSet{}
	for _, k := range keys {
		doc, err := json.Marshal(map[string]any{"owner": "owner-" + k, "key": k})
		if err != nil {
			t.Fatal(err)
		}
		rws.Writes = append(rws.Writes, rwset.Write{Key: k, Value: doc})
	}
	raw, err := rws.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env := blockstore.Envelope{
		TxID: fmt.Sprintf("tx-%d", n), ChannelID: "ch", Chaincode: "cc",
		Timestamp: time.Unix(1700000000+int64(n), 0).UTC(), RWSet: raw,
	}
	b, err := blockstore.NewBlock(n, prev, []blockstore.Envelope{env})
	if err != nil {
		t.Fatal(err)
	}
	b.TxValidation = []blockstore.ValidationCode{blockstore.TxValid}
	return b
}

// seedLedger writes n blocks into dataDir's block file, checkpointing via a
// Manager every `every` blocks, and returns the final fingerprints.
func seedLedger(t *testing.T, dataDir string, n, every int) (stateFP, histFP string) {
	t.Helper()
	blocks, err := blockstore.OpenFileStoreWithPolicy(BlockFilePath(dataDir), blockstore.SyncEachAppend)
	if err != nil {
		t.Fatal(err)
	}
	defer blocks.Close()
	state, err := statedb.NewIndexed(richquery.IndexDef{Name: "by-owner", Field: "owner"})
	if err != nil {
		t.Fatal(err)
	}
	history := historydb.New()
	mgr := NewManager(dataDir, DefaultKeep, state, history, blocks)
	for i := 0; i < n; i++ {
		b := mkStoredBlock(t, uint64(i), blocks.LastHash(),
			fmt.Sprintf("item-%03d", i), fmt.Sprintf("shared-%d", i%3))
		if err := blocks.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := committer.Replay(state, history, []*blockstore.Block{b}); err != nil {
			t.Fatal(err)
		}
		if every > 0 && (i+1)%every == 0 {
			mgr.OnCheckpoint(committer.Capture{
				Height:       uint64(i + 1),
				StateHeight:  state.Height(),
				State:        state.Snapshot(),
				IndexEntries: state.IndexEntries(),
			})
			if err := mgr.Err(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return committer.StateFingerprint(state), history.Fingerprint()
}

func TestOpenRecoversFromCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	stateFP, histFP := seedLedger(t, dir, 10, 4) // checkpoints at 4 and 8, tail of 2

	got, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Blocks.Close()
	if got.CheckpointHeight != 8 || got.Replayed != 2 {
		t.Errorf("recovered from checkpoint %d with %d replayed, want 8 and 2",
			got.CheckpointHeight, got.Replayed)
	}
	if fp := committer.StateFingerprint(got.State); fp != stateFP {
		t.Errorf("state fingerprint = %s, want %s", fp, stateFP)
	}
	if fp := got.History.Fingerprint(); fp != histFP {
		t.Errorf("history fingerprint = %s, want %s", fp, histFP)
	}
	// The rich-query index came back too, serving indexed queries.
	res, err := got.State.ExecuteQuery([]byte(`{"selector":{"owner":"owner-item-003"}}`))
	if err != nil || len(res.KVs) != 1 || res.KVs[0].Key != "item-003" {
		t.Errorf("indexed query after recovery: %v %+v", err, res)
	}
}

func TestOpenFromGenesisMatchesCheckpointed(t *testing.T) {
	dir := t.TempDir()
	stateFP, histFP := seedLedger(t, dir, 9, 4)

	got, err := Open(dir, Options{FromGenesis: true})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Blocks.Close()
	if got.CheckpointHeight != 0 || got.Replayed != 9 {
		t.Errorf("genesis open: checkpoint %d, replayed %d", got.CheckpointHeight, got.Replayed)
	}
	if fp := committer.StateFingerprint(got.State); fp != stateFP {
		t.Errorf("state fingerprint = %s, want %s", fp, stateFP)
	}
	if fp := got.History.Fingerprint(); fp != histFP {
		t.Errorf("history fingerprint = %s, want %s", fp, histFP)
	}
}

func TestOpenFreshDirectory(t *testing.T) {
	got, err := Open(filepath.Join(t.TempDir(), "fresh"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Blocks.Close()
	if got.Blocks.Height() != 0 || got.Replayed != 0 || got.CheckpointHeight != 0 {
		t.Errorf("fresh open = %+v", got)
	}
}

func TestManagerFinalEnablesInstantReopen(t *testing.T) {
	dir := t.TempDir()
	seedLedger(t, dir, 5, 0) // no periodic checkpoints

	// Reopen replaying from genesis, then take a final checkpoint.
	opened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opened.Replayed != 5 {
		t.Fatalf("first open replayed %d, want 5", opened.Replayed)
	}
	mgr := NewManager(dir, DefaultKeep, opened.State, opened.History, opened.Blocks)
	if err := mgr.Final(); err != nil {
		t.Fatal(err)
	}
	if mgr.LastHeight() != 5 {
		t.Fatalf("final checkpoint height = %d, want 5", mgr.LastHeight())
	}
	opened.Blocks.Close()

	again, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Blocks.Close()
	if again.CheckpointHeight != 5 || again.Replayed != 0 {
		t.Errorf("reopen after Final: checkpoint %d, replayed %d, want 5 and 0",
			again.CheckpointHeight, again.Replayed)
	}
}

func TestCodecHostileCountDoesNotPanic(t *testing.T) {
	// Hand-build a frame whose state count claims 2^61 entries but whose
	// CRC-32C is correct (the CRC is a media check; a tamperer can always
	// recompute it). Decoding must fail cleanly — a panic here would break
	// LoadLatest's fall-back-to-older-checkpoint path.
	buf := append([]byte{}, ckptMagic...)
	buf = binary.AppendUvarint(buf, 1)     // height
	buf = binary.AppendUvarint(buf, 0)     // stateHeight.block
	buf = binary.AppendUvarint(buf, 0)     // stateHeight.tx
	buf = binary.AppendUvarint(buf, 0)     // fingerprint len
	buf = binary.AppendUvarint(buf, 0)     // index defs
	buf = binary.AppendUvarint(buf, 0)     // index entries
	buf = binary.AppendUvarint(buf, 1<<61) // hostile state count
	sum := crc32.Checksum(buf, castagnoli)
	buf = binary.BigEndian.AppendUint32(buf, sum)
	if _, err := decodeCheckpoint(buf); err == nil {
		t.Fatal("hostile count decoded without error")
	}
}

func TestLoadLatestSkipsFingerprintMismatch(t *testing.T) {
	// A checkpoint whose decoded state no longer matches its recorded
	// fingerprint (codec defect, tamper with recomputed CRC) must be
	// treated as damaged: fall back to the older good checkpoint.
	dir := t.TempDir()
	if _, err := WriteCheckpoint(dir, mkCheckpoint(t, 4)); err != nil {
		t.Fatal(err)
	}
	bad := mkCheckpoint(t, 8)
	bad.Fingerprint = "0000deadbeef"
	if _, err := WriteCheckpoint(dir, bad); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadLatest(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Height != 4 {
		t.Errorf("height = %d, want fallback to 4", ck.Height)
	}
}
