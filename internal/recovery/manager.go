package recovery

import (
	"fmt"
	"sync"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// DefaultKeep is how many checkpoint files a manager retains.
const DefaultKeep = 2

// IndexDeclarer is implemented by state databases that can report their
// declared secondary indexes (statedb.IndexedStore); the manager persists
// the definitions so a recovered peer rebuilds the same indexes.
type IndexDeclarer interface {
	IndexDefs() []richquery.IndexDef
}

// Manager turns the committer's checkpoint captures into durable checkpoint
// files. It runs on the commit pipeline's persistence goroutine (behind the
// watermark), where the history database and block file are guaranteed to
// agree with the captured state's height — the consistency contract the
// whole recovery path rests on.
type Manager struct {
	dir     string
	keep    int
	state   statedb.StateDB
	history *historydb.DB
	blocks  *blockstore.FileStore

	mu         sync.Mutex
	lastHeight uint64
	lastErr    error
}

// NewManager creates a checkpoint manager writing under dataDir/checkpoints
// (the legacy single-channel layout).
func NewManager(dataDir string, keep int, state statedb.StateDB, history *historydb.DB, blocks *blockstore.FileStore) *Manager {
	return NewManagerChannel(dataDir, "", keep, state, history, blocks)
}

// NewManagerChannel creates a checkpoint manager for one channel of a peer
// data directory, writing under CheckpointDirFor(dataDir, channel). An empty
// channel keeps the legacy layout.
func NewManagerChannel(dataDir, channel string, keep int, state statedb.StateDB, history *historydb.DB, blocks *blockstore.FileStore) *Manager {
	if keep < 1 {
		keep = DefaultKeep
	}
	return &Manager{
		dir:     CheckpointDirFor(dataDir, channel),
		keep:    keep,
		state:   state,
		history: history,
		blocks:  blocks,
	}
}

// OnCheckpoint is the committer.Config.OnCheckpoint hook: it freezes the
// capture into a full checkpoint (adding history and index definitions),
// fsyncs the block file so the checkpoint never refers past durable blocks,
// and publishes the file atomically. The capture arrives as a copy-on-write
// snapshot pinned at the block boundary; materializing it into the codec's
// map form happens here, on the persistence goroutine, off the apply path.
// Failures are recorded (Err) rather than propagated — a failed checkpoint
// degrades recovery time, not correctness, since the previous checkpoint
// set stays intact.
func (m *Manager) OnCheckpoint(c committer.Capture) {
	state := c.State.Materialize()
	c.State.Release()
	ck := &Checkpoint{
		Height:       c.Height,
		StateHeight:  c.StateHeight,
		Fingerprint:  committer.SnapshotFingerprint(state),
		State:        state,
		History:      m.history.Snapshot(),
		IndexEntries: c.IndexEntries,
	}
	if decl, ok := m.state.(IndexDeclarer); ok {
		ck.Indexes = decl.IndexDefs()
	}
	m.persist(ck)
}

// Final takes a checkpoint of the current quiesced state — the peer calls
// it on clean shutdown, after the commit pipeline has drained, so the next
// open restores instantly with an empty replay tail.
func (m *Manager) Final() error {
	h := m.blocks.Height()
	if h == 0 || h == m.LastHeight() {
		return m.Err()
	}
	ck := &Checkpoint{
		Height:      h,
		StateHeight: m.state.Height(),
		State:       m.state.Export(),
		History:     m.history.Snapshot(),
	}
	ck.Fingerprint = committer.SnapshotFingerprint(ck.State)
	if decl, ok := m.state.(IndexDeclarer); ok {
		ck.Indexes = decl.IndexDefs()
	}
	if ixs, ok := m.state.(interface {
		IndexEntries() map[string][]richquery.IndexEntry
	}); ok {
		ck.IndexEntries = ixs.IndexEntries()
	}
	m.persist(ck)
	return m.Err()
}

// persist fsyncs the ledger, writes the checkpoint, and prunes old files.
func (m *Manager) persist(ck *Checkpoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.blocks.Sync(); err != nil {
		m.lastErr = fmt.Errorf("recovery: sync block file before checkpoint: %w", err)
		return
	}
	if _, err := WriteCheckpoint(m.dir, ck); err != nil {
		m.lastErr = err
		return
	}
	m.lastHeight = ck.Height
	m.lastErr = nil
	Prune(m.dir, m.keep)
}

// LastHeight returns the height of the most recent successful checkpoint
// this manager wrote (0 if none yet).
func (m *Manager) LastHeight() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastHeight
}

// Err returns the most recent checkpoint failure, or nil after a success.
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}
