package recovery

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/committer"
	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// File names inside a peer data directory.
const (
	blockFileName    = "blocks.jsonl"
	checkpointSubdir = "checkpoints"
)

// BlockFilePath returns the legacy single-channel block file path inside a
// peer data directory.
func BlockFilePath(dataDir string) string { return BlockFilePathFor(dataDir, "") }

// CheckpointDir returns the legacy single-channel checkpoint directory
// inside a peer data directory.
func CheckpointDir(dataDir string) string { return CheckpointDirFor(dataDir, "") }

// BlockFilePathFor returns the block file path for one channel of a peer
// data directory. An empty channel selects the legacy single-channel layout
// (blocks.jsonl); a named channel gets its own ledger file,
// blocks-<channel>.jsonl, so N channels of one host never share an append
// stream.
func BlockFilePathFor(dataDir, channel string) string {
	if channel == "" {
		return filepath.Join(dataDir, blockFileName)
	}
	return filepath.Join(dataDir, "blocks-"+channel+".jsonl")
}

// CheckpointDirFor returns the checkpoint directory for one channel of a
// peer data directory. An empty channel selects the legacy layout
// (checkpoints/); a named channel nests under it (checkpoints/<channel>/),
// giving every channel an independent recovery root.
func CheckpointDirFor(dataDir, channel string) string {
	if channel == "" {
		return filepath.Join(dataDir, checkpointSubdir)
	}
	return filepath.Join(dataDir, checkpointSubdir, channel)
}

// Options tunes Open.
type Options struct {
	// Sync is the block file's fsync policy (default SyncOnClose).
	Sync blockstore.SyncPolicy
	// FromGenesis ignores checkpoints and replays the whole block file —
	// the recovery benchmark's baseline and a paranoid full re-audit path.
	FromGenesis bool
	// Channel selects which channel of the data directory to recover.
	// Empty keeps the legacy single-channel layout (blocks.jsonl,
	// checkpoints/); a named channel uses blocks-<ch>.jsonl and
	// checkpoints/<ch>/.
	Channel string
}

// Opened is a peer's recovered ledger: durable block file plus rebuilt
// soft state, mutually consistent at Blocks.Height().
type Opened struct {
	// State is the recovered world state (indexed flavour, rich queries
	// included), exactly at the block file's height.
	State *statedb.IndexedStore
	// History is the recovered per-key write history.
	History *historydb.DB
	// Blocks is the open durable block store.
	Blocks *blockstore.FileStore
	// CheckpointHeight is the height of the checkpoint recovery restored
	// from (0 when it replayed from genesis).
	CheckpointHeight uint64
	// Replayed is the number of tail blocks replayed on top of the
	// checkpoint.
	Replayed int

	// LoadDuration is the time spent loading and verifying the block file
	// — identical work for every recovery strategy.
	LoadDuration time.Duration
	// RestoreDuration is the time spent loading the checkpoint and
	// restoring state, history, and indexes from it.
	RestoreDuration time.Duration
	// ReplayDuration is the time spent replaying the block tail.
	ReplayDuration time.Duration
}

// Open recovers a peer's ledger from dataDir (created if absent):
//
//  1. open the block file, discarding a crash-torn tail and refusing
//     mid-file corruption;
//  2. restore the newest valid checkpoint whose height the block file
//     confirms (skipping damaged or too-new candidates);
//  3. replay only the block tail after the checkpoint through the
//     committer's replay path, rebuilding state, history, and the
//     rich-query secondary indexes to the exact pre-crash fingerprint.
//
// With no usable checkpoint the replay starts from genesis — slower, never
// wrong.
func Open(dataDir string, opts Options) (*Opened, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: mkdir %s: %w", dataDir, err)
	}
	loadStart := time.Now()
	blocks, err := blockstore.OpenFileStoreWithPolicy(BlockFilePathFor(dataDir, opts.Channel), opts.Sync)
	if err != nil {
		return nil, err
	}
	state, err := statedb.NewIndexed()
	if err != nil {
		blocks.Close()
		return nil, err
	}
	history := historydb.New()
	out := &Opened{State: state, History: history, Blocks: blocks}
	out.LoadDuration = time.Since(loadStart)

	from := uint64(0)
	restoreStart := time.Now()
	if !opts.FromGenesis {
		ck, err := LoadLatest(CheckpointDirFor(dataDir, opts.Channel), blocks.Height())
		switch {
		case err == nil:
			if err := state.DefineIndexes(ck.Indexes); err != nil {
				blocks.Close()
				return nil, err
			}
			// The checkpoint was decoded moments ago and is dropped after
			// this block: hand its maps over instead of deep-copying them.
			state.RestoreWithIndexEntries(ck.State, ck.StateHeight, ck.IndexEntries)
			history.RestoreOwned(ck.History)
			from = ck.Height
			out.CheckpointHeight = ck.Height
		case errors.Is(err, ErrNoCheckpoint):
			// Fresh directory or no trustworthy checkpoint: full replay.
		default:
			blocks.Close()
			return nil, err
		}
	}
	out.RestoreDuration = time.Since(restoreStart)

	replayStart := time.Now()
	tail := blocks.BlocksFrom(from)
	if err := committer.Replay(state, history, tail); err != nil {
		blocks.Close()
		return nil, err
	}
	out.Replayed = len(tail)
	out.ReplayDuration = time.Since(replayStart)
	if h := blocks.Height(); h > 0 {
		if sh := state.Height(); sh.BlockNum != h-1 {
			blocks.Close()
			return nil, fmt.Errorf("recovery: state height %v after replay, block file height %d", sh, h)
		}
	}
	return out, nil
}
