package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// Binary checkpoint codec. Checkpoints are read on every peer open, on
// hardware as small as a Raspberry Pi, so the format is built for decode
// speed: uvarint-framed sections in one pass, no reflection, and a trailing
// CRC-32C (hardware-accelerated on both amd64 and the paper's ARM boards)
// as the media-integrity gate. JSON was measured an order of magnitude
// slower to decode at realistic state sizes, which put checkpoint restore
// in the same cost class as the genesis replay it exists to avoid.
//
// Layout (all integers uvarint, strings/bytes length-prefixed):
//
//	magic "HPCKPT1\n"
//	height, stateHeight.block, stateHeight.tx, fingerprint
//	index defs:    count, {name, field}...
//	index entries: count, {name, entryCount, {ckey, docKey}...}...
//	state:         count, {key, value, ver.block, ver.tx}...
//	history:       keyCount, {key, entryCount,
//	                 {txid, block, tx, value, isDelete, unixSec, nanos}...}...
//	crc32c (4 bytes, big-endian) over everything above

var ckptMagic = []byte("HPCKPT1\n")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeCheckpoint renders ck in the binary checkpoint format, checksum
// included.
func encodeCheckpoint(ck *Checkpoint) []byte {
	// Pre-size roughly: values plus framing overhead.
	buf := make([]byte, 0, 1<<20)
	buf = append(buf, ckptMagic...)
	buf = binary.AppendUvarint(buf, ck.Height)
	buf = binary.AppendUvarint(buf, ck.StateHeight.BlockNum)
	buf = binary.AppendUvarint(buf, ck.StateHeight.TxNum)
	buf = appendString(buf, ck.Fingerprint)

	buf = binary.AppendUvarint(buf, uint64(len(ck.Indexes)))
	for _, def := range ck.Indexes {
		buf = appendString(buf, def.Name)
		buf = appendString(buf, def.Field)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.IndexEntries)))
	for _, name := range sortedKeys(ck.IndexEntries) {
		entries := ck.IndexEntries[name]
		buf = appendString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(len(entries)))
		for _, e := range entries {
			buf = appendString(buf, e.CKey)
			buf = appendString(buf, e.DocKey)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.State)))
	for _, key := range sortedKeys(ck.State) {
		vv := ck.State[key]
		buf = appendString(buf, key)
		buf = appendBytes(buf, vv.Value)
		buf = binary.AppendUvarint(buf, vv.Version.BlockNum)
		buf = binary.AppendUvarint(buf, vv.Version.TxNum)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.History)))
	for _, key := range sortedKeys(ck.History) {
		entries := ck.History[key]
		buf = appendString(buf, key)
		buf = binary.AppendUvarint(buf, uint64(len(entries)))
		for i := range entries {
			e := &entries[i]
			buf = appendString(buf, e.TxID)
			buf = binary.AppendUvarint(buf, e.BlockNum)
			buf = binary.AppendUvarint(buf, e.TxNum)
			buf = appendBytes(buf, e.Value)
			if e.IsDelete {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			t := e.Timestamp.UTC()
			buf = binary.AppendUvarint(buf, uint64(t.Unix()))
			buf = binary.AppendUvarint(buf, uint64(t.Nanosecond()))
		}
	}
	sum := crc32.Checksum(buf, castagnoli)
	return binary.BigEndian.AppendUint32(buf, sum)
}

// decodeCheckpoint parses and integrity-checks the binary checkpoint form.
func decodeCheckpoint(raw []byte) (*Checkpoint, error) {
	if len(raw) < len(ckptMagic)+4 || string(raw[:len(ckptMagic)]) != string(ckptMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadChecksum)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(tail) {
		return nil, ErrBadChecksum
	}
	d := &decoder{buf: body[len(ckptMagic):]}
	ck := &Checkpoint{}
	ck.Height = d.uvarint()
	ck.StateHeight.BlockNum = d.uvarint()
	ck.StateHeight.TxNum = d.uvarint()
	ck.Fingerprint = d.string()

	if n := d.count(); n > 0 {
		ck.Indexes = make([]richquery.IndexDef, n)
		for i := range ck.Indexes {
			ck.Indexes[i].Name = d.string()
			ck.Indexes[i].Field = d.string()
		}
	}
	if n := d.count(); n > 0 {
		ck.IndexEntries = make(map[string][]richquery.IndexEntry, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			name := d.string()
			entries := make([]richquery.IndexEntry, d.count())
			for j := range entries {
				entries[j].CKey = d.string()
				entries[j].DocKey = d.string()
			}
			ck.IndexEntries[name] = entries
		}
	}
	stateN := d.count()
	ck.State = make(map[string]statedb.VersionedValue, stateN)
	for i := uint64(0); i < stateN && d.err == nil; i++ {
		key := d.string()
		var vv statedb.VersionedValue
		vv.Value = d.bytes()
		vv.Version.BlockNum = d.uvarint()
		vv.Version.TxNum = d.uvarint()
		ck.State[key] = vv
	}
	histN := d.count()
	ck.History = make(map[string][]historydb.Entry, histN)
	for i := uint64(0); i < histN && d.err == nil; i++ {
		key := d.string()
		entries := make([]historydb.Entry, d.count())
		for j := range entries {
			e := &entries[j]
			e.TxID = d.string()
			e.BlockNum = d.uvarint()
			e.TxNum = d.uvarint()
			e.Value = d.bytes()
			e.IsDelete = d.byte() == 1
			sec := int64(d.uvarint())
			nsec := int64(d.uvarint())
			e.Timestamp = time.Unix(sec, nsec).UTC()
		}
		ck.History[key] = entries
	}
	if d.err != nil {
		return nil, fmt.Errorf("recovery: decode checkpoint: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadChecksum, len(d.buf))
	}
	return ck, nil
}

// decoder is a cursor over the checkpoint body; the first framing error
// sticks and every later read returns zero values.
type decoder struct {
	buf []byte
	err error
}

var errTruncated = errors.New("truncated")

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errTruncated
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads an element count and bounds it by the bytes remaining (every
// element costs at least one byte), so a damaged or hostile count field —
// CRC-32C is a media check, not tamper-proofing — degrades to a decode
// error instead of a make() panic that would defeat LoadLatest's
// fall-back-to-older-checkpoint path.
func (d *decoder) count() uint64 {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.buf)) {
		d.err = errTruncated
		return 0
	}
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)) < n {
		d.err = errTruncated
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.err = errTruncated
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.err = errTruncated
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// sortedKeys returns m's keys sorted, for deterministic encoding.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
