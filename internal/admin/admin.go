// Package admin exposes a peer process's observability surface over HTTP:
// Prometheus-format metrics, a health summary, recent/slow transaction
// traces, and the standard pprof profiling handlers. The listener is opt-in
// (the hyperprov-net -admin flag) and binds loopback by default — it serves
// operational data, not the blockchain protocol, and has no authentication.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Health is the /healthz payload: the liveness facts an operator checks
// first when a peer looks wedged.
type Health struct {
	// Peer names the serving peer (the host name on multi-channel hosts).
	Peer string `json:"peer"`
	// Height is the committed (persisted-watermark) block height of the
	// default channel.
	Height uint64 `json:"height"`
	// GossipPeers is the gossip membership size, 0 when gossip is off.
	GossipPeers int `json:"gossipPeers"`
	// LastCommitAgeMs is how long ago the last block committed, -1 before
	// the first commit.
	LastCommitAgeMs int64 `json:"lastCommitAgeMs"`
	// TransportLastError is the most recent transport-client failure reason,
	// empty while connections are healthy.
	TransportLastError string `json:"transportLastError,omitempty"`
	// Channels breaks liveness down per served channel on multi-channel
	// hosts; empty on single-channel peers.
	Channels []ChannelHealth `json:"channels,omitempty"`
}

// ChannelHealth is one channel's slice of the /healthz payload.
type ChannelHealth struct {
	// Channel is the channel ID.
	Channel string `json:"channel"`
	// Height is the channel's committed block height.
	Height uint64 `json:"height"`
	// LastCommitAgeMs is how long ago this channel's last block committed,
	// -1 before the first commit.
	LastCommitAgeMs int64 `json:"lastCommitAgeMs"`
}

// Config wires the admin server to a process's observability state.
type Config struct {
	// Registries maps a metric-name prefix to a registry; /metrics merges
	// them all into one Prometheus exposition. Use "" for no prefix.
	Registries map[string]*metrics.Registry
	// ChannelRegistries maps a channel ID to that channel's prefix->registry
	// map; /metrics emits these after Registries with a channel="<id>" label
	// on every sample, so one scrape covers every tenant without metric-name
	// collisions.
	ChannelRegistries map[string]map[string]*metrics.Registry
	// Tracer feeds /tracez. Nil serves empty trace lists.
	Tracer *trace.Recorder
	// HealthFunc produces the current /healthz payload on each request.
	// Nil serves an empty Health.
	HealthFunc func() Health
}

// Server is a running admin HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// New starts an admin server on addr ("127.0.0.1:0" for an ephemeral port).
func New(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		for _, prefix := range sortedPrefixes(cfg.Registries) {
			cfg.Registries[prefix].WritePrometheus(w, prefix)
		}
		for _, ch := range sortedPrefixes(cfg.ChannelRegistries) {
			labels := map[string]string{"channel": ch}
			regs := cfg.ChannelRegistries[ch]
			for _, prefix := range sortedPrefixes(regs) {
				regs[prefix].WritePrometheusLabeled(w, prefix, labels)
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var h Health
		if cfg.HealthFunc != nil {
			h = cfg.HealthFunc()
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		n := 50
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		writeJSON(w, struct {
			Recent []trace.Trace `json:"recent"`
			Slow   []trace.Trace `json:"slow"`
		}{
			Recent: cfg.Tracer.Recent(n),
			Slow:   cfg.Tracer.Slow(n),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and open connections.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// sortedPrefixes fixes the registry emission order so /metrics output is
// stable across scrapes.
func sortedPrefixes[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
