package admin

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	peerReg := metrics.NewRegistry()
	peerReg.Counter(metrics.BlocksCommitted).Add(3)
	peerReg.Histogram(metrics.CommitStagePersist).Observe(2 * time.Millisecond)
	netReg := metrics.NewRegistry()
	netReg.Counter(metrics.GossipRounds).Add(7)

	tracer := trace.NewRecorder()
	start := time.Now()
	tracer.Observe("tx-1", trace.StagePropose, "gateway", start, "")
	tracer.Observe("tx-1", trace.StageCommitPersist, "peer0", start, "")
	tracer.Complete("tx-1", "VALID")

	srv, err := New("127.0.0.1:0", Config{
		Registries: map[string]*metrics.Registry{
			"peer0_": peerReg,
			"net_":   netReg,
		},
		Tracer: tracer,
		HealthFunc: func() Health {
			return Health{
				Peer:               "peer0",
				Height:             4,
				GossipPeers:        2,
				LastCommitAgeMs:    12,
				TransportLastError: "dial tcp: refused",
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"peer0_blocks_committed 3",
		"net_gossip_rounds 7",
		"peer0_commit_stage_persist_count 1",
		"# TYPE peer0_commit_stage_persist histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = get(t, srv.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if h.Peer != "peer0" || h.Height != 4 || h.GossipPeers != 2 || h.TransportLastError == "" {
		t.Errorf("health = %+v", h)
	}

	code, body = get(t, srv.URL()+"/tracez")
	if code != http.StatusOK {
		t.Fatalf("/tracez status = %d", code)
	}
	var tz struct {
		Recent []trace.Trace `json:"recent"`
		Slow   []trace.Trace `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &tz); err != nil {
		t.Fatalf("/tracez not JSON: %v\n%s", err, body)
	}
	if len(tz.Recent) != 1 || tz.Recent[0].ID != "tx-1" || tz.Recent[0].Outcome != "VALID" {
		t.Errorf("recent = %+v", tz.Recent)
	}
	if len(tz.Recent[0].Spans) != 2 {
		t.Errorf("spans = %+v", tz.Recent[0].Spans)
	}
	if len(tz.Slow) != 1 {
		t.Errorf("slow = %+v", tz.Slow)
	}

	// pprof index answers (profiles themselves are too slow for a unit test).
	code, _ = get(t, srv.URL()+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}

// Nil tracer and health func must serve empty documents, not panic.
func TestAdminNilSources(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	code, body := get(t, srv.URL()+"/tracez")
	if code != http.StatusOK {
		t.Fatalf("/tracez status = %d", code)
	}
	if !strings.Contains(body, `"recent"`) {
		t.Errorf("tracez body = %s", body)
	}
	code, _ = get(t, srv.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	code, _ = get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
}

// A multi-channel host exposes one registry per channel on the same scrape,
// distinguished by the channel label, and breaks health down per channel.
func TestAdminChannelScopedMetrics(t *testing.T) {
	host := metrics.NewRegistry()
	host.Counter(metrics.GossipRounds).Add(9)
	alpha := metrics.NewRegistry()
	alpha.Counter(metrics.BlocksCommitted).Add(5)
	alpha.Histogram(metrics.CommitStagePersist).Observe(time.Millisecond)
	beta := metrics.NewRegistry()
	beta.Counter(metrics.BlocksCommitted).Add(2)

	srv, err := New("127.0.0.1:0", Config{
		Registries: map[string]*metrics.Registry{"net_": host},
		ChannelRegistries: map[string]map[string]*metrics.Registry{
			"alpha": {"": alpha},
			"beta":  {"": beta},
		},
		HealthFunc: func() Health {
			return Health{
				Peer: "host0", Height: 5, LastCommitAgeMs: 3,
				Channels: []ChannelHealth{
					{Channel: "alpha", Height: 5, LastCommitAgeMs: 3},
					{Channel: "beta", Height: 2, LastCommitAgeMs: 40},
				},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"net_gossip_rounds 9",
		`blocks_committed{channel="alpha"} 5`,
		`blocks_committed{channel="beta"} 2`,
		`commit_stage_persist_count{channel="alpha"} 1`,
		`commit_stage_persist_bucket{channel="alpha",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = get(t, srv.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if len(h.Channels) != 2 || h.Channels[0].Channel != "alpha" || h.Channels[1].Height != 2 {
		t.Errorf("channel health = %+v", h.Channels)
	}
}
