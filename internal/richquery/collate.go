// Package richquery implements a CouchDB/Mango-flavoured rich-query engine
// over JSON documents: a selector language ($eq, $gt, $gte, $lt, $lte, $in,
// $and, $or, $regex, and implicit-AND field matches), sort, limit, and
// bookmark-based pagination, plus secondary field indexes with a planner
// that serves a query from an index when the selector constrains an indexed
// field and falls back to a filtered scan otherwise. It is the engine behind
// the CouchDB-style state database that makes HyperProv's provenance
// queries (by owner, by type, by time window) practical without full scans.
//
// The package is self-contained: it knows nothing about the ledger. Values
// are JSON documents decoded into map[string]any; callers (the state
// database) supply candidate documents and receive ordered keys back.
package richquery

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"sort"
)

// Type ranks of the collation order, mirroring CouchDB's view collation:
// null < false < true < numbers < strings < arrays < objects.
const (
	rankNull = iota
	rankFalse
	rankTrue
	rankNumber
	rankString
	rankArray
	rankObject
)

func typeRank(v any) int {
	switch t := v.(type) {
	case nil:
		return rankNull
	case bool:
		if t {
			return rankTrue
		}
		return rankFalse
	case float64:
		return rankNumber
	case json.Number:
		return rankNumber
	case string:
		return rankString
	case []any:
		return rankArray
	case map[string]any:
		return rankObject
	default:
		// Non-JSON Go values (e.g. ints supplied programmatically) are
		// normalized before ranking; anything else sorts with objects.
		return rankObject
	}
}

// normalize converts programmatic Go numbers into the float64 form that
// encoding/json produces, so selectors built in Go behave like parsed ones.
func normalize(v any) any {
	switch t := v.(type) {
	case int:
		return float64(t)
	case int32:
		return float64(t)
	case int64:
		return float64(t)
	case uint64:
		return float64(t)
	case float32:
		return float64(t)
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return t.String()
		}
		return f
	default:
		return v
	}
}

// Compare orders two JSON values by CouchDB collation rules. It returns
// -1, 0, or 1. Arrays compare elementwise (shorter first on a tie); objects
// compare by sorted key, then value.
func Compare(a, b any) int {
	a, b = normalize(a), normalize(b)
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case rankNull, rankFalse, rankTrue:
		return 0
	case rankNumber:
		fa, fb := a.(float64), b.(float64)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	case rankString:
		sa, sb := a.(string), b.(string)
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		default:
			return 0
		}
	case rankArray:
		aa, ba := a.([]any), b.([]any)
		for i := 0; i < len(aa) && i < len(ba); i++ {
			if c := Compare(aa[i], ba[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(aa) < len(ba):
			return -1
		case len(aa) > len(ba):
			return 1
		default:
			return 0
		}
	default: // objects and anything exotic: compare by sorted key/value pairs
		ma, okA := a.(map[string]any)
		mb, okB := b.(map[string]any)
		if !okA || !okB {
			// Fall back to JSON encoding for non-map oddballs.
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			switch {
			case string(ja) < string(jb):
				return -1
			case string(ja) > string(jb):
				return 1
			default:
				return 0
			}
		}
		ka, kb := sortedKeys(ma), sortedKeys(mb)
		for i := 0; i < len(ka) && i < len(kb); i++ {
			if ka[i] != kb[i] {
				if ka[i] < kb[i] {
					return -1
				}
				return 1
			}
			if c := Compare(ma[ka[i]], mb[kb[i]]); c != 0 {
				return c
			}
		}
		switch {
		case len(ka) < len(kb):
			return -1
		case len(ka) > len(kb):
			return 1
		default:
			return 0
		}
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EncodeKey renders a JSON value as a byte string whose lexicographic order
// matches Compare for scalar values (null, booleans, numbers, strings).
// Index entries are stored under these keys, which is what lets the planner
// turn a selector's comparison operators into an index range scan. Arrays
// and objects get a stable per-type encoding (tag + JSON) that keeps them in
// their collation band but is only scalar-consistent, which is sufficient:
// the planner derives range bounds from scalar operands only.
func EncodeKey(v any) string {
	v = normalize(v)
	switch t := v.(type) {
	case nil:
		return string([]byte{rankNull})
	case bool:
		if t {
			return string([]byte{rankTrue})
		}
		return string([]byte{rankFalse})
	case float64:
		bits := math.Float64bits(t)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip everything so bigger magnitude sorts first
		} else {
			bits |= 1 << 63 // positive: set sign so positives sort after negatives
		}
		var buf [9]byte
		buf[0] = rankNumber
		binary.BigEndian.PutUint64(buf[1:], bits)
		return string(buf[:])
	case string:
		return string([]byte{rankString}) + t
	case []any:
		j, _ := json.Marshal(t)
		return string([]byte{rankArray}) + string(j)
	default:
		j, _ := json.Marshal(t)
		return string([]byte{rankObject}) + string(j)
	}
}
