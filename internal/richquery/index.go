package richquery

import (
	"fmt"
	"sort"
	"strings"
)

// IndexDef declares one single-field secondary index, the analog of a
// CouchDB index shipped in a chaincode's META-INF/statedb directory.
type IndexDef struct {
	// Name identifies the index (unique per state database).
	Name string `json:"name"`
	// Field is the dotted document path the index covers (e.g. "owner",
	// "meta.type").
	Field string `json:"field"`
}

// Validate checks the definition is usable.
func (d IndexDef) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("richquery: index with empty name")
	}
	if d.Field == "" {
		return fmt.Errorf("richquery: index %q with empty field", d.Name)
	}
	return nil
}

// indexEntry is one (encoded field value, document key) pair.
type indexEntry struct {
	ckey   string // EncodeKey of the field value
	docKey string
}

// Index is an ordered single-field secondary index over JSON documents.
// Entries are kept sorted by (collation key, document key), so equality and
// range lookups on the field become contiguous slices. Only documents that
// have the field appear in the index; since a selector condition never
// matches a missing field, pruning to index members is sound.
//
// Index is not self-synchronizing: the owning state database serializes
// access (maintenance happens inside its commit lock).
type Index struct {
	def     IndexDef
	path    []string
	byDoc   map[string]string // docKey -> ckey currently indexed
	entries []indexEntry      // sorted by (ckey, docKey)
}

// NewIndex creates an empty index for def.
func NewIndex(def IndexDef) *Index {
	return &Index{
		def:   def,
		path:  strings.Split(def.Field, "."),
		byDoc: make(map[string]string),
	}
}

// Def returns the index's definition.
func (ix *Index) Def() IndexDef { return ix.def }

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.entries) }

// locate returns the position of (ckey, docKey) or where it would insert.
func (ix *Index) locate(ckey, docKey string) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		e := ix.entries[i]
		if e.ckey != ckey {
			return e.ckey >= ckey
		}
		return e.docKey >= docKey
	})
}

// Put indexes doc under docKey, replacing any previous entry for docKey.
// A doc without the indexed field (or a nil doc) is removed from the index.
func (ix *Index) Put(docKey string, doc map[string]any) {
	val, ok := Lookup(doc, ix.path)
	if doc == nil || !ok {
		ix.Delete(docKey)
		return
	}
	ckey := EncodeKey(val)
	if old, exists := ix.byDoc[docKey]; exists {
		if old == ckey {
			return
		}
		ix.remove(old, docKey)
	}
	pos := ix.locate(ckey, docKey)
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = indexEntry{ckey: ckey, docKey: docKey}
	ix.byDoc[docKey] = ckey
}

// Load replaces the index contents with a one-shot build over docs. Unlike
// repeated Put calls (binary search plus slice insertion each), Load
// collects every entry and sorts once — O(n log n) — which is what keeps
// declaring an index over a large existing state (chaincode install) and
// wholesale state restore (partition healing) from being quadratic.
func (ix *Index) Load(docs []Candidate) {
	ix.byDoc = make(map[string]string, len(docs))
	ix.entries = ix.entries[:0]
	for _, d := range docs {
		val, ok := Lookup(d.Doc, ix.path)
		if !ok {
			continue
		}
		ck := EncodeKey(val)
		ix.byDoc[d.Key] = ck
		ix.entries = append(ix.entries, indexEntry{ckey: ck, docKey: d.Key})
	}
	sort.Slice(ix.entries, func(i, j int) bool {
		if ix.entries[i].ckey != ix.entries[j].ckey {
			return ix.entries[i].ckey < ix.entries[j].ckey
		}
		return ix.entries[i].docKey < ix.entries[j].docKey
	})
}

// IndexEntry is one exported (collation key, document key) pair — the
// serialized form checkpoints persist so recovery can bulk-load an index
// without re-decoding every JSON document in state.
type IndexEntry struct {
	// CKey is the encoded field value (EncodeKey).
	CKey string
	// DocKey is the indexed document's state key.
	DocKey string
}

// Entries returns a copy of the index contents in (CKey, DocKey) order.
func (ix *Index) Entries() []IndexEntry {
	out := make([]IndexEntry, len(ix.entries))
	for i, e := range ix.entries {
		out[i] = IndexEntry{CKey: e.ckey, DocKey: e.docKey}
	}
	return out
}

// LoadEntries replaces the index contents with previously exported entries
// (checkpoint restore). Entries are expected in (CKey, DocKey) order — the
// order Entries emits — and are re-sorted defensively when they are not, so
// a hand-edited checkpoint degrades to a sort instead of silent misqueries.
func (ix *Index) LoadEntries(entries []IndexEntry) {
	ix.entries = make([]indexEntry, len(entries))
	ix.byDoc = make(map[string]string, len(entries))
	sorted := true
	for i, e := range entries {
		ix.entries[i] = indexEntry{ckey: e.CKey, docKey: e.DocKey}
		ix.byDoc[e.DocKey] = e.CKey
		if i > 0 && (entries[i-1].CKey > e.CKey ||
			(entries[i-1].CKey == e.CKey && entries[i-1].DocKey > e.DocKey)) {
			sorted = false
		}
	}
	if !sorted {
		sort.Slice(ix.entries, func(i, j int) bool {
			if ix.entries[i].ckey != ix.entries[j].ckey {
				return ix.entries[i].ckey < ix.entries[j].ckey
			}
			return ix.entries[i].docKey < ix.entries[j].docKey
		})
	}
}

// Delete drops docKey from the index (no-op when absent).
func (ix *Index) Delete(docKey string) {
	old, exists := ix.byDoc[docKey]
	if !exists {
		return
	}
	ix.remove(old, docKey)
}

func (ix *Index) remove(ckey, docKey string) {
	pos := ix.locate(ckey, docKey)
	if pos < len(ix.entries) && ix.entries[pos].ckey == ckey && ix.entries[pos].docKey == docKey {
		ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
	}
	delete(ix.byDoc, docKey)
}

// Bound is one end of an index range scan.
type Bound struct {
	// CKey is the encoded field value (EncodeKey).
	CKey string
	// Inclusive reports whether the bound itself is part of the range.
	Inclusive bool
	// Set reports whether the bound constrains the scan at all.
	Set bool
}

// Range returns the document keys whose indexed value lies within the
// bounds, ordered by (field value, document key). Unset bounds are open.
func (ix *Index) Range(low, high Bound) []string {
	start := 0
	if low.Set {
		if low.Inclusive {
			start = sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].ckey >= low.CKey })
		} else {
			start = sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].ckey > low.CKey })
		}
	}
	end := len(ix.entries)
	if high.Set {
		if high.Inclusive {
			end = sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].ckey > high.CKey })
		} else {
			end = sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].ckey >= high.CKey })
		}
	}
	if start >= end {
		return nil
	}
	out := make([]string, 0, end-start)
	for _, e := range ix.entries[start:end] {
		out = append(out, e.docKey)
	}
	return out
}
