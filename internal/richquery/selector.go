package richquery

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Selector is a parsed Mango selector: a boolean combination of per-field
// conditions. The zero value matches nothing; use ParseSelector.
type Selector struct {
	root node
	raw  json.RawMessage
}

// node is one evaluated clause of a selector tree.
type node interface {
	matches(doc map[string]any) bool
}

// andNode matches when every child matches (also the implicit top level).
type andNode struct{ children []node }

// orNode matches when at least one child matches.
type orNode struct{ children []node }

// condNode is one operator applied to one (possibly dotted) field path.
type condNode struct {
	path    []string
	op      string
	operand any
	re      *regexp.Regexp // compiled operand for $regex
}

// Operator names accepted in selectors.
const (
	opEq    = "$eq"
	opGt    = "$gt"
	opGte   = "$gte"
	opLt    = "$lt"
	opLte   = "$lte"
	opIn    = "$in"
	opRegex = "$regex"
	opAnd   = "$and"
	opOr    = "$or"
)

// ParseSelector parses a JSON Mango selector. Field names may use dotted
// paths ("meta.type"); a field whose value is an object with no $-keys is
// descended into as nested field selectors; a field whose value is an
// object of $-operators applies each operator (implicitly ANDed); any other
// value is an implicit $eq.
func ParseSelector(raw []byte) (*Selector, error) {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, fmt.Errorf("richquery: selector must be a JSON object: %w", err)
	}
	root, err := parseClause(nil, obj)
	if err != nil {
		return nil, err
	}
	cp := make(json.RawMessage, len(raw))
	copy(cp, raw)
	return &Selector{root: root, raw: cp}, nil
}

// MustSelector parses a selector known to be valid (test/bench helper).
func MustSelector(raw string) *Selector {
	s, err := ParseSelector([]byte(raw))
	if err != nil {
		panic(err)
	}
	return s
}

// Raw returns the original JSON the selector was parsed from.
func (s *Selector) Raw() json.RawMessage { return s.raw }

// Matches evaluates the selector against one decoded JSON document.
// A condition on a missing field never matches.
func (s *Selector) Matches(doc map[string]any) bool {
	if s == nil || s.root == nil {
		return false
	}
	return s.root.matches(doc)
}

// parseClause parses one selector object in the context of field path
// prefix. Keys starting with $ are combinators; other keys are fields.
func parseClause(prefix []string, obj map[string]json.RawMessage) (node, error) {
	// Deterministic parse order keeps error messages stable.
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var children []node
	for _, k := range keys {
		v := obj[k]
		switch {
		case k == opAnd || k == opOr:
			if len(prefix) != 0 {
				return nil, fmt.Errorf("richquery: %s not allowed under field %q", k, strings.Join(prefix, "."))
			}
			var items []json.RawMessage
			if err := json.Unmarshal(v, &items); err != nil {
				return nil, fmt.Errorf("richquery: %s wants an array of selectors: %w", k, err)
			}
			var subs []node
			for _, item := range items {
				var sub map[string]json.RawMessage
				if err := json.Unmarshal(item, &sub); err != nil {
					return nil, fmt.Errorf("richquery: %s element must be a selector object: %w", k, err)
				}
				n, err := parseClause(nil, sub)
				if err != nil {
					return nil, err
				}
				subs = append(subs, n)
			}
			if k == opAnd {
				children = append(children, &andNode{children: subs})
			} else {
				if len(subs) == 0 {
					return nil, fmt.Errorf("richquery: $or wants at least one selector")
				}
				children = append(children, &orNode{children: subs})
			}
		case strings.HasPrefix(k, "$"):
			return nil, fmt.Errorf("richquery: unknown combinator %q", k)
		default:
			path := append(append([]string{}, prefix...), strings.Split(k, ".")...)
			n, err := parseFieldValue(path, v)
			if err != nil {
				return nil, err
			}
			children = append(children, n)
		}
	}
	return &andNode{children: children}, nil
}

// parseFieldValue parses the value attached to a field key.
func parseFieldValue(path []string, raw json.RawMessage) (node, error) {
	// Only a JSON object can hold operators or sub-fields; anything else
	// (including null, which Unmarshal would silently accept into a map)
	// is an implicit $eq operand.
	var obj map[string]json.RawMessage
	if isJSONObject(raw) {
		if err := json.Unmarshal(raw, &obj); err != nil {
			return nil, fmt.Errorf("richquery: field %q: %w", strings.Join(path, "."), err)
		}
		dollar, plain := 0, 0
		for k := range obj {
			if strings.HasPrefix(k, "$") {
				dollar++
			} else {
				plain++
			}
		}
		switch {
		case dollar > 0 && plain > 0:
			return nil, fmt.Errorf("richquery: field %q mixes operators and sub-fields", strings.Join(path, "."))
		case dollar > 0:
			return parseOperators(path, obj)
		case plain > 0:
			return parseClause(path, obj)
		default:
			// {} — empty operator object: matches documents having the field.
			// Treated as implicit $eq against the empty object, like CouchDB.
			return &condNode{path: path, op: opEq, operand: map[string]any{}}, nil
		}
	}
	var operand any
	if err := json.Unmarshal(raw, &operand); err != nil {
		return nil, fmt.Errorf("richquery: field %q: bad operand: %w", strings.Join(path, "."), err)
	}
	return &condNode{path: path, op: opEq, operand: operand}, nil
}

// isJSONObject reports whether raw's first significant byte opens an object.
func isJSONObject(raw []byte) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

// parseOperators parses an all-$ operator object for one field.
func parseOperators(path []string, obj map[string]json.RawMessage) (node, error) {
	ops := make([]string, 0, len(obj))
	for k := range obj {
		ops = append(ops, k)
	}
	sort.Strings(ops)
	var children []node
	for _, op := range ops {
		var operand any
		if err := json.Unmarshal(obj[op], &operand); err != nil {
			return nil, fmt.Errorf("richquery: field %q: bad %s operand: %w", strings.Join(path, "."), op, err)
		}
		cond := &condNode{path: path, op: op, operand: operand}
		switch op {
		case opEq, opGt, opGte, opLt, opLte:
		case opIn:
			if _, ok := operand.([]any); !ok {
				return nil, fmt.Errorf("richquery: field %q: $in wants an array", strings.Join(path, "."))
			}
		case opRegex:
			pat, ok := operand.(string)
			if !ok {
				return nil, fmt.Errorf("richquery: field %q: $regex wants a string", strings.Join(path, "."))
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("richquery: field %q: bad $regex: %w", strings.Join(path, "."), err)
			}
			cond.re = re
		default:
			return nil, fmt.Errorf("richquery: field %q: unknown operator %q", strings.Join(path, "."), op)
		}
		children = append(children, cond)
	}
	return &andNode{children: children}, nil
}

func (n *andNode) matches(doc map[string]any) bool {
	for _, c := range n.children {
		if !c.matches(doc) {
			return false
		}
	}
	return true
}

func (n *orNode) matches(doc map[string]any) bool {
	for _, c := range n.children {
		if c.matches(doc) {
			return true
		}
	}
	return false
}

// Lookup resolves a dotted field path in a decoded document; ok is false
// when any path element is missing or a non-object intervenes.
func Lookup(doc map[string]any, path []string) (any, bool) {
	var cur any = doc
	for _, p := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

func (n *condNode) matches(doc map[string]any) bool {
	val, ok := Lookup(doc, n.path)
	if !ok {
		return false // conditions never match a missing field
	}
	switch n.op {
	case opEq:
		return Compare(val, n.operand) == 0
	case opGt:
		return Compare(val, n.operand) > 0
	case opGte:
		return Compare(val, n.operand) >= 0
	case opLt:
		return Compare(val, n.operand) < 0
	case opLte:
		return Compare(val, n.operand) <= 0
	case opIn:
		for _, item := range n.operand.([]any) {
			if Compare(val, item) == 0 {
				return true
			}
		}
		return false
	case opRegex:
		s, isStr := val.(string)
		return isStr && n.re.MatchString(s)
	default:
		return false
	}
}
