package richquery

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// naiveRange recomputes what the index should contain by brute force.
func naiveRange(docs map[string]map[string]any, field string, low, high Bound) []string {
	type pair struct{ ckey, key string }
	var pairs []pair
	for key, d := range docs {
		val, ok := Lookup(d, splitPath(field))
		if !ok {
			continue
		}
		ck := EncodeKey(val)
		if low.Set {
			if low.Inclusive && ck < low.CKey {
				continue
			}
			if !low.Inclusive && ck <= low.CKey {
				continue
			}
		}
		if high.Set {
			if high.Inclusive && ck > high.CKey {
				continue
			}
			if !high.Inclusive && ck >= high.CKey {
				continue
			}
		}
		pairs = append(pairs, pair{ckey: ck, key: key})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].ckey != pairs[j].ckey {
			return pairs[i].ckey < pairs[j].ckey
		}
		return pairs[i].key < pairs[j].key
	})
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.key
	}
	return out
}

// TestIndexMaintenanceSequences drives random put/update/delete/re-add
// sequences and checks the index against a brute-force recomputation after
// every operation.
func TestIndexMaintenanceSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix := NewIndex(IndexDef{Name: "by-a", Field: "a"})
	docs := map[string]map[string]any{}
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}

	for step := 0; step < 2000; step++ {
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(4) {
		case 0: // delete
			delete(docs, key)
			ix.Delete(key)
		case 1: // doc losing the indexed field
			d := map[string]any{"b": randValue(rng)}
			docs[key] = d
			ix.Put(key, d)
		default: // put / update with the field
			d := map[string]any{"a": randValue(rng), "b": randValue(rng)}
			docs[key] = d
			ix.Put(key, d)
		}

		want := naiveRange(docs, "a", Bound{}, Bound{})
		got := ix.Range(Bound{}, Bound{})
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("step %d: index %v != reference %v", step, got, want)
		}
	}

	// Range bounds against the final corpus.
	for trial := 0; trial < 200; trial++ {
		lo := Bound{CKey: EncodeKey(randValue(rng)), Inclusive: rng.Intn(2) == 0, Set: rng.Intn(3) > 0}
		hi := Bound{CKey: EncodeKey(randValue(rng)), Inclusive: rng.Intn(2) == 0, Set: rng.Intn(3) > 0}
		want := naiveRange(docs, "a", lo, hi)
		got := ix.Range(lo, hi)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("bounds %+v %+v: index %v != reference %v", lo, hi, got, want)
		}
	}
}

// TestApplyPaginationWalksEverything pages through a corpus with bookmarks
// and checks the union equals one unbounded execution, without duplicates,
// for both key order and descending field sort.
func TestApplyPaginationWalksEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var cands []Candidate
	for i := 0; i < 57; i++ {
		cands = append(cands, Candidate{
			Key: fmt.Sprintf("k%03d", i),
			Doc: map[string]any{"a": randValue(rng), "b": float64(rng.Intn(10))},
		})
	}
	for _, sortSpec := range []string{``, `,"sort":[{"b":"desc"}]`, `,"sort":[{"a":"asc"},{"b":"desc"}]`} {
		full := mustQuery(t, `{"selector":{"b":{"$gte":0}}`+sortSpec+`}`)
		allKeys, bm, err := Apply(full, cands)
		if err != nil {
			t.Fatal(err)
		}
		if bm != "" {
			t.Fatalf("unbounded query returned bookmark %q", bm)
		}

		var paged []string
		bookmark := ""
		for page := 0; ; page++ {
			q := mustQuery(t, `{"selector":{"b":{"$gte":0}}`+sortSpec+`,"limit":7}`)
			q.Bookmark = bookmark
			keys, next, err := Apply(q, cands)
			if err != nil {
				t.Fatal(err)
			}
			paged = append(paged, keys...)
			if next == "" {
				break
			}
			bookmark = next
			if page > 20 {
				t.Fatal("pagination did not terminate")
			}
		}
		if fmt.Sprint(paged) != fmt.Sprint(allKeys) {
			t.Fatalf("sort %q: paged %v != full %v", sortSpec, paged, allKeys)
		}
	}

	// Invalid bookmark is an error, not a silent restart.
	q := mustQuery(t, `{"selector":{"b":{"$gte":0}},"limit":3}`)
	q.Bookmark = "not base64!!"
	if _, _, err := Apply(q, cands); err == nil {
		t.Error("invalid bookmark accepted")
	}
}

// TestDescendingSortPrefixValues pins the variable-length descending-order
// property: a value must sort after its own prefix under desc (the naive
// byte-inversion-with-fixed-terminator encoding got this wrong).
func TestDescendingSortPrefixValues(t *testing.T) {
	cands := []Candidate{
		{Key: "k1", Doc: map[string]any{"owner": "a"}},
		{Key: "k2", Doc: map[string]any{"owner": "ab"}},
		{Key: "k3", Doc: map[string]any{"owner": "abc"}},
		{Key: "k4", Doc: map[string]any{"owner": "b"}},
		{Key: "k5", Doc: map[string]any{"other": true}}, // missing sort field
	}
	q := mustQuery(t, `{"selector":{},"sort":[{"owner":"desc"}]}`)
	keys, _, err := Apply(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	// Descending: b > abc > ab > a, missing last.
	want := "[k4 k3 k2 k1 k5]"
	if fmt.Sprint(keys) != want {
		t.Fatalf("desc order = %v, want %s", keys, want)
	}

	// Ascending mirror: missing first, then prefix before extension.
	q = mustQuery(t, `{"selector":{},"sort":[{"owner":"asc"}]}`)
	keys, _, err = Apply(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[k5 k1 k2 k3 k4]" {
		t.Fatalf("asc order = %v", keys)
	}

	// Values containing 0x00/0x01 (the escaped bytes) still order and
	// paginate correctly in both directions.
	cands = []Candidate{
		{Key: "k1", Doc: map[string]any{"owner": "x"}},
		{Key: "k2", Doc: map[string]any{"owner": "x\x00y"}},
		{Key: "k3", Doc: map[string]any{"owner": "x\x01"}},
	}
	q = mustQuery(t, `{"selector":{},"sort":[{"owner":"desc"}]}`)
	keys, _, err = Apply(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[k3 k2 k1]" {
		t.Fatalf("desc order with control bytes = %v", keys)
	}
}

// TestDescendingSortReversesAscending checks the general property on
// random corpora: desc order is the exact reverse of asc order whenever
// the sort key is unique per document (distinct values; key tiebreak does
// not reverse, matching CouchDB, so duplicates are excluded).
func TestDescendingSortReversesAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 200; iter++ {
		seen := map[string]bool{}
		var cands []Candidate
		for i := 0; len(cands) < 12 && i < 60; i++ {
			v := randValue(rng)
			ck := EncodeKey(v)
			if seen[ck] {
				continue
			}
			seen[ck] = true
			cands = append(cands, Candidate{Key: fmt.Sprintf("k%02d", i), Doc: map[string]any{"a": v}})
		}
		asc, _, err := Apply(mustQuery(t, `{"selector":{},"sort":[{"a":"asc"}]}`), cands)
		if err != nil {
			t.Fatal(err)
		}
		desc, _, err := Apply(mustQuery(t, `{"selector":{},"sort":[{"a":"desc"}]}`), cands)
		if err != nil {
			t.Fatal(err)
		}
		for i := range asc {
			if asc[i] != desc[len(desc)-1-i] {
				t.Fatalf("iter %d: desc %v is not the reverse of asc %v", iter, desc, asc)
			}
		}
	}
}

func mustQuery(t *testing.T, raw string) *Query {
	t.Helper()
	q, err := ParseQuery([]byte(raw))
	if err != nil {
		t.Fatalf("parse %s: %v", raw, err)
	}
	return q
}

// TestPlannerBounds spot-checks bound extraction and index choice.
func TestPlannerBounds(t *testing.T) {
	sel := MustSelector(`{"a":{"$gte":3,"$lt":9},"b":1}`)
	low, high, ok := sel.FieldBounds("a")
	if !ok || !low.Set || !low.Inclusive || !high.Set || high.Inclusive {
		t.Fatalf("bounds = %+v %+v ok=%v", low, high, ok)
	}
	if low.CKey != EncodeKey(float64(3)) || high.CKey != EncodeKey(float64(9)) {
		t.Error("bound keys wrong")
	}

	// $or must not contribute bounds.
	sel = MustSelector(`{"$or":[{"a":1},{"b":2}]}`)
	if _, _, ok := sel.FieldBounds("a"); ok {
		t.Error("$or branch contributed index bounds")
	}

	// $in produces a min/max envelope.
	sel = MustSelector(`{"a":{"$in":[5,2,9]}}`)
	low, high, ok = sel.FieldBounds("a")
	if !ok || low.CKey != EncodeKey(float64(2)) || high.CKey != EncodeKey(float64(9)) {
		t.Errorf("$in bounds = %+v %+v ok=%v", low, high, ok)
	}

	// Planner prefers equality over range, and honors use_index.
	ixA := NewIndex(IndexDef{Name: "by-a", Field: "a"})
	ixB := NewIndex(IndexDef{Name: "by-b", Field: "b"})
	q := mustQuery(t, `{"selector":{"a":{"$gt":1},"b":7}}`)
	plan := ChooseIndex(q, []*Index{ixA, ixB})
	if plan.Index == nil || plan.Index.Def().Name != "by-b" {
		t.Errorf("planner chose %+v, want equality index by-b", plan.Index)
	}
	q = mustQuery(t, `{"selector":{"a":{"$gt":1},"b":7},"use_index":"by-a"}`)
	plan = ChooseIndex(q, []*Index{ixA, ixB})
	if plan.Index == nil || plan.Index.Def().Name != "by-a" {
		t.Error("use_index not honored")
	}

	// use_index also matches namespace-qualified registered names, as the
	// peer registers chaincode-declared indexes ("<chaincode>.<name>").
	ixNS := NewIndex(IndexDef{Name: "hyperprov.by-a", Field: "a"})
	q = mustQuery(t, `{"selector":{"a":{"$gt":1},"b":7},"use_index":"by-a"}`)
	plan = ChooseIndex(q, []*Index{ixNS, ixB})
	if plan.Index == nil || plan.Index.Def().Name != "hyperprov.by-a" {
		t.Error("use_index did not match namespaced index name")
	}

	// Unconstrained: no index.
	q = mustQuery(t, `{"selector":{"c":1}}`)
	if plan := ChooseIndex(q, []*Index{ixA, ixB}); plan.Index != nil {
		t.Error("planner picked an index for an unconstrained field")
	}
}
