package richquery

import (
	"encoding/json"
	"fmt"
)

// SortField is one sort directive.
type SortField struct {
	Field      string
	Descending bool
}

// Query is a parsed Mango query: selector plus result shaping.
type Query struct {
	Selector *Selector
	Sort     []SortField
	// Limit caps the page size; 0 means unlimited.
	Limit int
	// Bookmark resumes a paginated query; it is the opaque value returned
	// by a previous execution.
	Bookmark string
	// UseIndex names an index the caller wants the planner to use; the
	// planner ignores it if that index cannot serve the selector.
	UseIndex string
}

// queryWire is the JSON wire form, matching CouchDB's _find body.
type queryWire struct {
	Selector json.RawMessage   `json:"selector"`
	Sort     []json.RawMessage `json:"sort,omitempty"`
	Limit    *int              `json:"limit,omitempty"`
	Bookmark string            `json:"bookmark,omitempty"`
	UseIndex string            `json:"use_index,omitempty"`
}

// ParseQuery parses a Mango query document:
//
//	{"selector": {"owner": "alice", "size": {"$gt": 100}},
//	 "sort": [{"timestamp": "desc"}], "limit": 25, "bookmark": "..."}
//
// A bare selector object (no "selector" wrapper) is also accepted, matching
// the convenience form Fabric chaincode often passes to GetQueryResult.
func ParseQuery(raw []byte) (*Query, error) {
	var w queryWire
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, fmt.Errorf("richquery: query must be a JSON object: %w", err)
	}
	if len(w.Selector) == 0 {
		// Bare selector form.
		sel, err := ParseSelector(raw)
		if err != nil {
			return nil, err
		}
		return &Query{Selector: sel}, nil
	}
	sel, err := ParseSelector(w.Selector)
	if err != nil {
		return nil, err
	}
	q := &Query{Selector: sel, Bookmark: w.Bookmark, UseIndex: w.UseIndex}
	if w.Limit != nil {
		if *w.Limit < 0 {
			return nil, fmt.Errorf("richquery: negative limit %d", *w.Limit)
		}
		q.Limit = *w.Limit
	}
	for _, s := range w.Sort {
		sf, err := parseSortField(s)
		if err != nil {
			return nil, err
		}
		q.Sort = append(q.Sort, sf)
	}
	return q, nil
}

// parseSortField accepts "field", {"field": "asc"}, or {"field": "desc"}.
func parseSortField(raw json.RawMessage) (SortField, error) {
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		return SortField{Field: name}, nil
	}
	var obj map[string]string
	if err := json.Unmarshal(raw, &obj); err != nil || len(obj) != 1 {
		return SortField{}, fmt.Errorf("richquery: sort element must be a field name or {field: dir}")
	}
	for field, dir := range obj {
		switch dir {
		case "asc":
			return SortField{Field: field}, nil
		case "desc":
			return SortField{Field: field, Descending: true}, nil
		default:
			return SortField{}, fmt.Errorf("richquery: sort direction %q (want asc or desc)", dir)
		}
	}
	return SortField{}, fmt.Errorf("richquery: empty sort element")
}

// Marshal renders the query back to its canonical wire form, preserving the
// original selector bytes. Used to embed queries in read/write sets.
func (q *Query) Marshal() ([]byte, error) {
	w := queryWire{Selector: q.Selector.Raw(), Bookmark: q.Bookmark, UseIndex: q.UseIndex}
	if q.Limit > 0 {
		lim := q.Limit
		w.Limit = &lim
	}
	for _, s := range q.Sort {
		dir := "asc"
		if s.Descending {
			dir = "desc"
		}
		el, err := json.Marshal(map[string]string{s.Field: dir})
		if err != nil {
			return nil, err
		}
		w.Sort = append(w.Sort, el)
	}
	return json.Marshal(w)
}
