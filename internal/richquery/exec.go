package richquery

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file executes the result-shaping half of a query: filtering
// candidates through the selector, ordering, and bookmark pagination.
// Candidates come either from an index range scan or from a full scan; the
// same pipeline runs in both cases so the two paths return identical pages.

// Candidate is one document under consideration, already decoded.
type Candidate struct {
	Key string
	Doc map[string]any
}

// Apply filters cands through q's selector, orders them (by the sort spec,
// with document key as the final tiebreak; by key alone when no sort is
// given), resumes after q.Bookmark, and truncates to q.Limit. It returns
// the ordered matching keys and the bookmark for the next page ("" when the
// result set is exhausted).
func Apply(q *Query, cands []Candidate) (keys []string, next string, err error) {
	var resume string
	if q.Bookmark != "" {
		b, err := base64.RawURLEncoding.DecodeString(q.Bookmark)
		if err != nil {
			return nil, "", fmt.Errorf("richquery: invalid bookmark: %w", err)
		}
		resume = string(b)
	}

	type ranked struct {
		key string
		ord string
	}
	matched := make([]ranked, 0, len(cands))
	for _, c := range cands {
		if !q.Selector.Matches(c.Doc) {
			continue
		}
		matched = append(matched, ranked{key: c.Key, ord: orderKey(q, c)})
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].ord < matched[j].ord })

	start := 0
	if resume != "" {
		start = sort.Search(len(matched), func(i int) bool { return matched[i].ord > resume })
	}
	end := len(matched)
	if q.Limit > 0 && start+q.Limit < end {
		end = start + q.Limit
	}
	for _, m := range matched[start:end] {
		keys = append(keys, m.key)
	}
	if end < len(matched) && len(keys) > 0 {
		next = base64.RawURLEncoding.EncodeToString([]byte(matched[end-1].ord))
	}
	return keys, next, nil
}

// orderKey builds an order-preserving composite sort key: one
// prefix-free-encoded component per sort field (byte-inverted for
// descending, so a single lexicographic comparison handles mixed
// directions), then the document key as the unique tiebreak. Bookmarks
// store this composite, which keeps pagination stable even when documents
// are inserted or deleted between pages.
//
// A missing sort field encodes as the empty component, which sorts before
// every present value ascending and (inverted) after every present value
// descending — CouchDB's missing-first/missing-last behaviour.
func orderKey(q *Query, c Candidate) string {
	var sb strings.Builder
	for _, sf := range q.Sort {
		var comp string
		if val, ok := Lookup(c.Doc, strings.Split(sf.Field, ".")); ok {
			comp = EncodeKey(val)
		}
		enc := encodeComponent(comp)
		if sf.Descending {
			enc = invertBytes(enc)
		}
		sb.WriteString(enc)
	}
	sb.WriteString(encodeComponent(c.Key))
	return sb.String()
}

// encodeComponent writes a component as a prefix-free, order-preserving
// byte string: 0x00 becomes 0x01 0x02, 0x01 becomes 0x01 0x03, and the
// component ends with a 0x00 terminator. Interior bytes are never 0x00, so
// no component encoding is a prefix of another and composite comparisons
// are always decided inside the first differing component. Inverting every
// byte of the encoded component (terminator 0xff, interior bytes never
// 0xff) yields the exact reverse order with the same prefix-free property,
// which is what makes descending sort correct for variable-length values:
// the inverted terminator sorts after any inverted continuation, so "ab"
// correctly precedes its prefix "a" under descending order.
func encodeComponent(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 0x00:
			sb.WriteByte(0x01)
			sb.WriteByte(0x02)
		case 0x01:
			sb.WriteByte(0x01)
			sb.WriteByte(0x03)
		default:
			sb.WriteByte(s[i])
		}
	}
	sb.WriteByte(0x00)
	return sb.String()
}

func invertBytes(s string) string {
	b := []byte(s)
	for i := range b {
		b[i] ^= 0xff
	}
	return string(b)
}

// DecodeDoc decodes a raw JSON value into a document for matching; ok is
// false when the value is not a JSON object (such documents never match a
// selector).
func DecodeDoc(raw []byte) (map[string]any, bool) {
	if len(raw) == 0 || raw[0] != '{' {
		return nil, false
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, false
	}
	return doc, true
}
