package richquery

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// This file holds the property tests: the parsed selector evaluator is
// compared against naiveMatch, an independent straight-from-the-spec
// reference evaluator working on the raw JSON selector, over randomly
// generated documents and selectors.

// naiveMatch evaluates a raw (decoded) Mango selector against doc using
// only the spec: implicit AND across keys, $and/$or combinators, operator
// objects vs nested-field objects, conditions never matching missing
// fields.
func naiveMatch(t *testing.T, sel map[string]any, doc map[string]any) bool {
	t.Helper()
	for k, v := range sel {
		switch k {
		case "$and":
			for _, sub := range v.([]any) {
				if !naiveMatch(t, sub.(map[string]any), doc) {
					return false
				}
			}
		case "$or":
			matched := false
			for _, sub := range v.([]any) {
				if naiveMatch(t, sub.(map[string]any), doc) {
					matched = true
				}
			}
			if !matched {
				return false
			}
		default:
			if !naiveField(t, splitPath(k), v, doc) {
				return false
			}
		}
	}
	return true
}

func splitPath(k string) []string {
	var path []string
	start := 0
	for i := 0; i <= len(k); i++ {
		if i == len(k) || k[i] == '.' {
			path = append(path, k[start:i])
			start = i + 1
		}
	}
	return path
}

func naiveLookup(doc map[string]any, path []string) (any, bool) {
	var cur any = doc
	for _, p := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		if cur, ok = m[p]; !ok {
			return nil, false
		}
	}
	return cur, true
}

func naiveField(t *testing.T, path []string, v any, doc map[string]any) bool {
	if m, ok := v.(map[string]any); ok {
		hasDollar := false
		for k := range m {
			if len(k) > 0 && k[0] == '$' {
				hasDollar = true
			}
		}
		if hasDollar {
			val, present := naiveLookup(doc, path)
			if !present {
				return false
			}
			for op, operand := range m {
				if !naiveOp(t, op, val, operand) {
					return false
				}
			}
			return true
		}
		// Nested field form: descend.
		for k, sub := range m {
			if !naiveField(t, append(append([]string{}, path...), splitPath(k)...), sub, doc) {
				return false
			}
		}
		return true
	}
	val, present := naiveLookup(doc, path)
	return present && naiveCompare(val, v) == 0
}

func naiveOp(t *testing.T, op string, val, operand any) bool {
	switch op {
	case "$eq":
		return naiveCompare(val, operand) == 0
	case "$gt":
		return naiveCompare(val, operand) > 0
	case "$gte":
		return naiveCompare(val, operand) >= 0
	case "$lt":
		return naiveCompare(val, operand) < 0
	case "$lte":
		return naiveCompare(val, operand) <= 0
	case "$in":
		for _, item := range operand.([]any) {
			if naiveCompare(val, item) == 0 {
				return true
			}
		}
		return false
	default:
		t.Fatalf("naive evaluator: unexpected op %s", op)
		return false
	}
}

// naiveCompare is an independent scalar collation: null < false < true <
// numbers < strings. The generator only produces scalar values.
func naiveCompare(a, b any) int {
	rank := func(v any) int {
		switch t := v.(type) {
		case nil:
			return 0
		case bool:
			if t {
				return 2
			}
			return 1
		case float64:
			return 3
		case string:
			return 4
		default:
			return 5
		}
	}
	ra, rb := rank(a), rank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 3:
		fa, fb := a.(float64), b.(float64)
		if fa < fb {
			return -1
		}
		if fa > fb {
			return 1
		}
		return 0
	case 4:
		sa, sb := a.(string), b.(string)
		if sa < sb {
			return -1
		}
		if sa > sb {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Generators -----------------------------------------------------------

var propFields = []string{"a", "b", "c", "m.x"}

func randValue(rng *rand.Rand) any {
	switch rng.Intn(5) {
	case 0:
		return nil
	case 1:
		return rng.Intn(2) == 0
	case 2:
		return float64(rng.Intn(7) - 3)
	case 3:
		return float64(rng.Intn(7)-3) + 0.5
	default:
		return string(rune('a' + rng.Intn(4)))
	}
}

func randDoc(rng *rand.Rand) map[string]any {
	d := map[string]any{}
	for _, f := range []string{"a", "b", "c"} {
		if rng.Intn(4) > 0 { // 25% chance the field is missing
			d[f] = randValue(rng)
		}
	}
	if rng.Intn(3) > 0 {
		d["m"] = map[string]any{"x": randValue(rng)}
	}
	return d
}

func randCondition(rng *rand.Rand) map[string]any {
	field := propFields[rng.Intn(len(propFields))]
	switch rng.Intn(7) {
	case 0:
		return map[string]any{field: randValue(rng)} // implicit $eq
	case 1:
		return map[string]any{field: map[string]any{"$eq": randValue(rng)}}
	case 2:
		return map[string]any{field: map[string]any{"$gt": randValue(rng)}}
	case 3:
		return map[string]any{field: map[string]any{"$gte": randValue(rng), "$lt": randValue(rng)}}
	case 4:
		return map[string]any{field: map[string]any{"$lte": randValue(rng)}}
	case 5:
		n := 1 + rng.Intn(3)
		items := make([]any, n)
		for i := range items {
			items[i] = randValue(rng)
		}
		return map[string]any{field: map[string]any{"$in": items}}
	default:
		return map[string]any{field: map[string]any{"$lt": randValue(rng)}}
	}
}

func randSelector(rng *rand.Rand, depth int) map[string]any {
	switch {
	case depth > 0 && rng.Intn(3) == 0:
		n := 1 + rng.Intn(3)
		subs := make([]any, n)
		for i := range subs {
			subs[i] = randSelector(rng, depth-1)
		}
		comb := "$and"
		if rng.Intn(2) == 0 {
			comb = "$or"
		}
		return map[string]any{comb: subs}
	default:
		sel := randCondition(rng)
		if rng.Intn(2) == 0 {
			for k, v := range randCondition(rng) {
				sel[k] = v
			}
		}
		return sel
	}
}

// TestSelectorMatchesReference drives the parsed evaluator and the naive
// reference over random (selector, document) pairs.
func TestSelectorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 3000; iter++ {
		selMap := randSelector(rng, 2)
		raw, err := json.Marshal(selMap)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := ParseSelector(raw)
		if err != nil {
			t.Fatalf("generated selector rejected: %s: %v", raw, err)
		}
		// Round-trip through JSON so the naive evaluator sees float64s.
		var selDecoded map[string]any
		if err := json.Unmarshal(raw, &selDecoded); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 10; d++ {
			docu := randDoc(rng)
			got := sel.Matches(docu)
			want := naiveMatch(t, selDecoded, docu)
			if got != want {
				dj, _ := json.Marshal(docu)
				t.Fatalf("selector %s on doc %s: Matches=%v reference=%v", raw, dj, got, want)
			}
		}
	}
}

// TestIndexedQueryMatchesScanReference checks the full pipeline property:
// for random corpora and queries, executing via a secondary index (planner
// bounds + residual filter) returns exactly the scan result.
func TestIndexedQueryMatchesScanReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		// Corpus.
		n := 5 + rng.Intn(40)
		docs := make(map[string]map[string]any, n)
		ix := NewIndex(IndexDef{Name: "by-a", Field: "a"})
		var cands []Candidate
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%03d", i)
			d := randDoc(rng)
			docs[key] = d
			ix.Put(key, d)
			cands = append(cands, Candidate{Key: key, Doc: d})
		}

		// Query constraining the indexed field.
		selMap := map[string]any{}
		for k, v := range randCondition(rng) {
			selMap[k] = v
		}
		selMap["a"] = map[string]any{"$gte": randValue(rng)}
		raw, _ := json.Marshal(map[string]any{"selector": selMap})
		q, err := ParseQuery(raw)
		if err != nil {
			t.Fatalf("parse %s: %v", raw, err)
		}

		// Scan path.
		scanKeys, _, err := Apply(q, cands)
		if err != nil {
			t.Fatal(err)
		}

		// Index path.
		plan := ChooseIndex(q, []*Index{ix})
		if plan.Index == nil {
			t.Fatalf("planner refused index for %s", raw)
		}
		var ixCands []Candidate
		for _, key := range plan.Index.Range(plan.Low, plan.High) {
			ixCands = append(ixCands, Candidate{Key: key, Doc: docs[key]})
		}
		ixKeys, _, err := Apply(q, ixCands)
		if err != nil {
			t.Fatal(err)
		}

		if fmt.Sprint(scanKeys) != fmt.Sprint(ixKeys) {
			t.Fatalf("query %s: scan %v != indexed %v", raw, scanKeys, ixKeys)
		}
	}
}
