package richquery

import (
	"encoding/json"
	"testing"
)

func doc(t *testing.T, raw string) map[string]any {
	t.Helper()
	var d map[string]any
	if err := json.Unmarshal([]byte(raw), &d); err != nil {
		t.Fatalf("bad doc fixture: %v", err)
	}
	return d
}

func TestSelectorOperators(t *testing.T) {
	d := doc(t, `{"owner":"alice","size":42,"flag":true,"tag":null,
		"meta":{"type":"raw","score":7},"parents":["a","b"]}`)

	cases := []struct {
		name string
		sel  string
		want bool
	}{
		{"implicit eq", `{"owner":"alice"}`, true},
		{"implicit eq miss", `{"owner":"bob"}`, false},
		{"explicit eq", `{"size":{"$eq":42}}`, true},
		{"eq null", `{"tag":null}`, true},
		{"eq bool", `{"flag":true}`, true},
		{"eq array", `{"parents":["a","b"]}`, true},
		{"eq array order", `{"parents":["b","a"]}`, false},
		{"gt", `{"size":{"$gt":41}}`, true},
		{"gt equal", `{"size":{"$gt":42}}`, false},
		{"gte equal", `{"size":{"$gte":42}}`, true},
		{"lt", `{"size":{"$lt":43}}`, true},
		{"lte", `{"size":{"$lte":41}}`, false},
		{"cross-type gt: string beats number", `{"owner":{"$gt":9999}}`, true},
		{"in", `{"owner":{"$in":["bob","alice"]}}`, true},
		{"in miss", `{"owner":{"$in":["bob","carol"]}}`, false},
		{"regex", `{"owner":{"$regex":"^ali"}}`, true},
		{"regex miss", `{"owner":{"$regex":"^bob"}}`, false},
		{"regex non-string field", `{"size":{"$regex":"4"}}`, false},
		{"dotted path", `{"meta.type":"raw"}`, true},
		{"nested object form", `{"meta":{"type":"raw"}}`, true},
		{"nested object form miss", `{"meta":{"type":"agg"}}`, false},
		{"nested with ops", `{"meta":{"score":{"$gte":5}}}`, true},
		{"missing field never matches", `{"nope":{"$lt":99}}`, false},
		{"missing field eq null", `{"nope":null}`, false},
		{"implicit and", `{"owner":"alice","size":{"$gt":40}}`, true},
		{"implicit and one fails", `{"owner":"alice","size":{"$gt":50}}`, false},
		{"multi-op field", `{"size":{"$gt":40,"$lt":45}}`, true},
		{"multi-op field fails", `{"size":{"$gt":40,"$lt":42}}`, false},
		{"$and", `{"$and":[{"owner":"alice"},{"flag":true}]}`, true},
		{"$or", `{"$or":[{"owner":"bob"},{"size":42}]}`, true},
		{"$or all fail", `{"$or":[{"owner":"bob"},{"size":1}]}`, false},
		{"empty selector matches all", `{}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sel, err := ParseSelector([]byte(tc.sel))
			if err != nil {
				t.Fatalf("parse %s: %v", tc.sel, err)
			}
			if got := sel.Matches(d); got != tc.want {
				t.Errorf("%s matches = %v, want %v", tc.sel, got, tc.want)
			}
		})
	}
}

func TestSelectorParseErrors(t *testing.T) {
	bad := []string{
		`[1,2]`,                           // not an object
		`{"a":{"$bogus":1}}`,              // unknown operator
		`{"$nor":[{"a":1}]}`,              // unknown combinator
		`{"a":{"$in":5}}`,                 // $in wants array
		`{"a":{"$regex":5}}`,              // $regex wants string
		`{"a":{"$regex":"("}}`,            // bad pattern
		`{"a":{"$eq":1,"sub":2}}`,         // mixed operators and sub-fields
		`{"$or":[]}`,                      // empty $or
		`{"$and":"x"}`,                    // $and wants array
		`{"a":{"sub":{"$or":[{"b":1}]}}}`, // combinator under a field
	}
	for _, s := range bad {
		if _, err := ParseSelector([]byte(s)); err == nil {
			t.Errorf("ParseSelector(%s) accepted", s)
		}
	}
}

func TestParseQueryForms(t *testing.T) {
	q, err := ParseQuery([]byte(`{"selector":{"a":1},"sort":[{"b":"desc"},"c"],"limit":5,"bookmark":"bm"}`))
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 5 || q.Bookmark != "bm" || len(q.Sort) != 2 {
		t.Errorf("query = %+v", q)
	}
	if !q.Sort[0].Descending || q.Sort[0].Field != "b" || q.Sort[1].Descending {
		t.Errorf("sort = %+v", q.Sort)
	}

	// Bare selector form.
	q, err = ParseQuery([]byte(`{"a":{"$gt":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Selector.Matches(map[string]any{"a": float64(4)}) {
		t.Error("bare selector did not parse as selector")
	}

	// Round trip through Marshal.
	q, err = ParseQuery([]byte(`{"selector":{"a":1},"sort":[{"b":"asc"}],"limit":2}`))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ParseQuery(wire)
	if err != nil {
		t.Fatalf("reparse %s: %v", wire, err)
	}
	if q2.Limit != 2 || len(q2.Sort) != 1 || q2.Sort[0].Field != "b" {
		t.Errorf("round-tripped query = %+v", q2)
	}

	if _, err := ParseQuery([]byte(`{"selector":{"a":1},"limit":-1}`)); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := ParseQuery([]byte(`{"selector":{"a":1},"sort":[{"b":"sideways"}]}`)); err == nil {
		t.Error("bad sort direction accepted")
	}
}

func TestCompareCollationOrder(t *testing.T) {
	// CouchDB collation: null < false < true < numbers < strings < arrays < objects.
	ordered := []any{nil, false, true, float64(-3), float64(0), float64(2.5), "", "a", "b",
		[]any{float64(1)}, []any{float64(1), float64(0)}, []any{float64(2)},
		map[string]any{"a": float64(1)}}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestEncodeKeyAgreesWithCompareOnScalars(t *testing.T) {
	vals := []any{nil, false, true, float64(-1e9), float64(-2), float64(-0.5), float64(0),
		float64(0.25), float64(3), float64(7e12), "", "0", "a", "ab", "b", "z\x00y"}
	for _, a := range vals {
		for _, b := range vals {
			cmp := Compare(a, b)
			ka, kb := EncodeKey(a), EncodeKey(b)
			enc := 0
			if ka < kb {
				enc = -1
			} else if ka > kb {
				enc = 1
			}
			if cmp != enc {
				t.Errorf("Compare(%v,%v)=%d but EncodeKey order %d", a, b, cmp, enc)
			}
		}
	}
}
