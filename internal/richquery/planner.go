package richquery

import "strings"

// This file is the query planner: it inspects a selector's top-level AND
// structure, extracts the value bounds it implies for a candidate index
// field, and picks the index to serve a query from. Conditions inside $or
// branches never contribute bounds (an index scan over one branch would
// miss matches from the others), and bounds are only derived from scalar
// operands, where EncodeKey order agrees with Compare. The full selector is
// always re-applied to candidate documents, so the planner only has to be
// sound (never prune a match), not exact.

// FieldBounds returns the tightest (low, high) encoded-value bounds the
// selector implies for the dotted field path, and whether the field is
// constrained at all.
func (s *Selector) FieldBounds(field string) (low, high Bound, constrained bool) {
	if s == nil || s.root == nil {
		return Bound{}, Bound{}, false
	}
	path := strings.Split(field, ".")
	low, high = boundsOf(s.root, path)
	return low, high, low.Set || high.Set
}

// boundsOf walks AND-reachable conditions for path and intersects bounds.
func boundsOf(n node, path []string) (low, high Bound) {
	switch t := n.(type) {
	case *andNode:
		for _, c := range t.children {
			l, h := boundsOf(c, path)
			low = tightenLow(low, l)
			high = tightenHigh(high, h)
		}
	case *condNode:
		if !samePath(t.path, path) {
			return
		}
		return condBounds(t)
	}
	// orNode: contributes nothing — any branch may match outside a bound.
	return
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isScalar reports whether a decoded JSON value has EncodeKey order
// consistent with Compare.
func isScalar(v any) bool {
	switch normalize(v).(type) {
	case nil, bool, float64, string:
		return true
	default:
		return false
	}
}

// condBounds derives bounds from one condition, if its operand is scalar.
func condBounds(c *condNode) (low, high Bound) {
	switch c.op {
	case opEq:
		if isScalar(c.operand) {
			k := EncodeKey(c.operand)
			return Bound{CKey: k, Inclusive: true, Set: true}, Bound{CKey: k, Inclusive: true, Set: true}
		}
	case opGt:
		if isScalar(c.operand) {
			return Bound{CKey: EncodeKey(c.operand), Set: true}, Bound{}
		}
	case opGte:
		if isScalar(c.operand) {
			return Bound{CKey: EncodeKey(c.operand), Inclusive: true, Set: true}, Bound{}
		}
	case opLt:
		if isScalar(c.operand) {
			return Bound{}, Bound{CKey: EncodeKey(c.operand), Set: true}
		}
	case opLte:
		if isScalar(c.operand) {
			return Bound{}, Bound{CKey: EncodeKey(c.operand), Inclusive: true, Set: true}
		}
	case opIn:
		items := c.operand.([]any)
		if len(items) == 0 {
			return
		}
		for _, it := range items {
			if !isScalar(it) {
				return
			}
		}
		lo, hi := EncodeKey(items[0]), EncodeKey(items[0])
		for _, it := range items[1:] {
			k := EncodeKey(it)
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		return Bound{CKey: lo, Inclusive: true, Set: true}, Bound{CKey: hi, Inclusive: true, Set: true}
	}
	return
}

// tightenLow keeps the stricter of two lower bounds.
func tightenLow(a, b Bound) Bound {
	switch {
	case !a.Set:
		return b
	case !b.Set:
		return a
	case b.CKey > a.CKey:
		return b
	case b.CKey < a.CKey:
		return a
	case !b.Inclusive:
		return b // same key: exclusive is stricter
	default:
		return a
	}
}

// tightenHigh keeps the stricter of two upper bounds.
func tightenHigh(a, b Bound) Bound {
	switch {
	case !a.Set:
		return b
	case !b.Set:
		return a
	case b.CKey < a.CKey:
		return b
	case b.CKey > a.CKey:
		return a
	case !b.Inclusive:
		return b
	default:
		return a
	}
}

// Plan is the planner's choice for one query.
type Plan struct {
	// Index is the chosen index, nil when the query must scan.
	Index *Index
	// Low and High bound the index scan when Index is non-nil.
	Low, High Bound
}

// ChooseIndex picks the index to serve q from, preferring an explicitly
// requested use_index, then equality-constrained indexes, then any
// range-constrained index. A nil Index in the returned plan means no index
// applies and the caller should run a filtered scan.
func ChooseIndex(q *Query, indexes []*Index) Plan {
	var best Plan
	bestScore := 0
	for _, ix := range indexes {
		low, high, ok := q.Selector.FieldBounds(ix.Def().Field)
		if !ok {
			continue
		}
		score := 1 // range-constrained
		if low.Set && high.Set {
			score = 2 // bounded both sides
			if low.CKey == high.CKey {
				score = 3 // equality / point lookup
			}
		}
		if nameMatches(ix.Def().Name, q.UseIndex) {
			score = 4 // caller asked for this one and it applies
		}
		if score > bestScore {
			best = Plan{Index: ix, Low: low, High: high}
			bestScore = score
		}
	}
	return best
}

// nameMatches compares a registered index name against a use_index request.
// Registered names may be namespace-qualified ("chaincode.by-owner", as the
// peer registers chaincode-declared indexes), so the unqualified name a
// chaincode passes also matches.
func nameMatches(registered, requested string) bool {
	if requested == "" {
		return false
	}
	return registered == requested || strings.HasSuffix(registered, "."+requested)
}
