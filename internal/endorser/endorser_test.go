package endorser

import (
	"errors"
	"testing"

	"github.com/hyperprov/hyperprov/internal/identity"
)

func TestNewTxIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id, err := NewTxID([]byte("creator"))
		if err != nil {
			t.Fatal(err)
		}
		if len(id) != 64 {
			t.Fatalf("txid length = %d, want 64 hex chars", len(id))
		}
		if seen[id] {
			t.Fatal("duplicate txid")
		}
		seen[id] = true
	}
}

func TestPolicyEvaluation(t *testing.T) {
	tests := []struct {
		name   string
		policy Policy
		orgs   []string
		want   bool
	}{
		{"signedby hit", SignedBy("Org1MSP"), []string{"Org1MSP"}, true},
		{"signedby miss", SignedBy("Org1MSP"), []string{"Org2MSP"}, false},
		{"or any", Or(SignedBy("A"), SignedBy("B")), []string{"B"}, true},
		{"or none", Or(SignedBy("A"), SignedBy("B")), []string{"C"}, false},
		{"and all", And(SignedBy("A"), SignedBy("B")), []string{"A", "B"}, true},
		{"and partial", And(SignedBy("A"), SignedBy("B")), []string{"A"}, false},
		{"outof 2of3 ok", OutOf(2, SignedBy("A"), SignedBy("B"), SignedBy("C")), []string{"A", "C"}, true},
		{"outof 2of3 fail", OutOf(2, SignedBy("A"), SignedBy("B"), SignedBy("C")), []string{"C"}, false},
		{"outof zero", OutOf(0), nil, true},
		{"anyorg", AnyOrg([]string{"Org1", "Org2"}), []string{"Org2MSP"}, true},
		{"majority 2of3 ok", MajorityOrgs([]string{"A", "B", "C"}), []string{"AMSP", "CMSP"}, true},
		{"majority 2of3 fail", MajorityOrgs([]string{"A", "B", "C"}), []string{"AMSP"}, false},
		{"duplicates dont help", And(SignedBy("A"), SignedBy("B")), []string{"A", "A"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.policy.Evaluate(tt.orgs); got != tt.want {
				t.Errorf("%s.Evaluate(%v) = %v, want %v", tt.policy, tt.orgs, got, tt.want)
			}
		})
	}
}

func TestPolicyString(t *testing.T) {
	p := OutOf(2, SignedBy("A"), SignedBy("B"))
	if p.String() != `OutOf(2, SignedBy("A"), SignedBy("B"))` {
		t.Errorf("String = %s", p)
	}
}

func mkResponse(t *testing.T, peer *identity.SigningIdentity, rwset, payload []byte) *Response {
	t.Helper()
	r := &Response{
		TxID:     "tx1",
		Status:   200,
		Payload:  payload,
		RWSet:    rwset,
		Endorser: peer.Serialize(),
	}
	sig, err := peer.Sign(r.SignedBytes())
	if err != nil {
		t.Fatal(err)
	}
	r.Signature = sig
	return r
}

func TestCheckEndorsements(t *testing.T) {
	ca1, err := identity.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := identity.NewCA("Org2")
	if err != nil {
		t.Fatal(err)
	}
	msp := identity.NewMSP(ca1, ca2)
	p1, err := ca1.Enroll("peer1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ca2.Enroll("peer2", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}

	rws := []byte(`{"writes":[{"key":"k"}]}`)
	policy := And(SignedBy("Org1MSP"), SignedBy("Org2MSP"))

	t.Run("satisfied", func(t *testing.T) {
		resps := []*Response{mkResponse(t, p1, rws, nil), mkResponse(t, p2, rws, nil)}
		if err := CheckEndorsements(policy, msp, resps); err != nil {
			t.Errorf("CheckEndorsements: %v", err)
		}
	})
	t.Run("insufficient orgs", func(t *testing.T) {
		resps := []*Response{mkResponse(t, p1, rws, nil)}
		err := CheckEndorsements(policy, msp, resps)
		if !errors.Is(err, ErrPolicyNotSatisfied) {
			t.Errorf("err = %v, want ErrPolicyNotSatisfied", err)
		}
	})
	t.Run("no endorsements", func(t *testing.T) {
		if err := CheckEndorsements(policy, msp, nil); !errors.Is(err, ErrPolicyNotSatisfied) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("divergent rwsets", func(t *testing.T) {
		resps := []*Response{
			mkResponse(t, p1, rws, nil),
			mkResponse(t, p2, []byte(`{"writes":[{"key":"other"}]}`), nil),
		}
		if err := CheckEndorsements(policy, msp, resps); !errors.Is(err, ErrResponseMismatch) {
			t.Errorf("err = %v, want ErrResponseMismatch", err)
		}
	})
	t.Run("tampered signature", func(t *testing.T) {
		r := mkResponse(t, p1, rws, nil)
		r.Payload = []byte("tampered after signing")
		resps := []*Response{r, mkResponse(t, p2, rws, []byte("tampered after signing"))}
		if err := CheckEndorsements(policy, msp, resps); err == nil {
			t.Error("tampered endorsement accepted")
		}
	})
}

func TestProposalSignedBytesStable(t *testing.T) {
	p := Proposal{TxID: "t", Chaincode: "cc", Function: "set"}
	a := p.SignedBytes()
	p.Signature = []byte("sig")
	b := p.SignedBytes()
	if string(a) != string(b) {
		t.Error("SignedBytes covers the signature field")
	}
	p.Function = "get"
	if string(a) == string(p.SignedBytes()) {
		t.Error("SignedBytes ignores content")
	}
}
