package endorser

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPolicy builds a random policy tree over orgs o0..o(n-1).
func randomPolicy(rng *rand.Rand, depth, nOrgs int) Policy {
	if depth <= 0 || rng.Intn(3) == 0 {
		return SignedBy(fmt.Sprintf("o%d", rng.Intn(nOrgs)))
	}
	k := rng.Intn(3) + 1
	subs := make([]Policy, k)
	for i := range subs {
		subs[i] = randomPolicy(rng, depth-1, nOrgs)
	}
	switch rng.Intn(3) {
	case 0:
		return And(subs...)
	case 1:
		return Or(subs...)
	default:
		return OutOf(rng.Intn(k)+1, subs...)
	}
}

func orgSubset(rng *rand.Rand, nOrgs int) []string {
	var out []string
	for i := 0; i < nOrgs; i++ {
		if rng.Intn(2) == 0 {
			out = append(out, fmt.Sprintf("o%d", i))
		}
	}
	return out
}

// Property: policies are monotone — adding endorsing orgs never turns a
// satisfied policy unsatisfied. This is the safety property the validator
// relies on when it sees a superset of the client's endorsements.
func TestQuickPolicyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nOrgs = 5
		p := randomPolicy(rng, 3, nOrgs)
		base := orgSubset(rng, nOrgs)
		if !p.Evaluate(base) {
			return true // only satisfied sets are interesting
		}
		// Any superset must still satisfy.
		super := append(append([]string{}, base...), fmt.Sprintf("o%d", rng.Intn(nOrgs)))
		return p.Evaluate(super)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: duplicates never change the outcome (distinct-org semantics).
func TestQuickPolicyDuplicatesIrrelevant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nOrgs = 5
		p := randomPolicy(rng, 3, nOrgs)
		orgs := orgSubset(rng, nOrgs)
		doubled := append(append([]string{}, orgs...), orgs...)
		return p.Evaluate(orgs) == p.Evaluate(doubled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: And is at least as strict as Or over the same subs.
func TestQuickAndStricterThanOr(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nOrgs = 5
		subs := []Policy{
			randomPolicy(rng, 2, nOrgs),
			randomPolicy(rng, 2, nOrgs),
			randomPolicy(rng, 2, nOrgs),
		}
		orgs := orgSubset(rng, nOrgs)
		if And(subs...).Evaluate(orgs) && !Or(subs...).Evaluate(orgs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
