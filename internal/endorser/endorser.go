// Package endorser defines the proposal/response wire types and the
// endorsement-policy engine of the execute–order–validate pipeline. Clients
// send signed proposals to endorsing peers; peers simulate the chaincode
// and sign the resulting read/write set; the policy engine decides whether
// a set of endorsements satisfies the channel's endorsement policy, both at
// submission time (client-side check) and at validation time (VSCC).
package endorser

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"github.com/hyperprov/hyperprov/internal/codec"
	"github.com/hyperprov/hyperprov/internal/identity"
)

// Errors returned by this package.
var (
	ErrPolicyNotSatisfied = errors.New("endorser: endorsement policy not satisfied")
	ErrResponseMismatch   = errors.New("endorser: endorsing peers returned divergent results")
)

// Signing-preimage magics: proposals and responses sign over canonical
// binary preimages (internal/codec layout), domain-separated by magic so a
// signature over one structure can never validate as the other.
var (
	proposalMagic = []byte("HPPR")
	responseMagic = []byte("HPRS")
)

// preimageVersion is the version byte embedded in both preimages; bumping
// it invalidates old signatures by construction.
const preimageVersion = 1

// Proposal is a client's signed request to simulate a chaincode invocation.
type Proposal struct {
	TxID      string    `json:"txId"`
	ChannelID string    `json:"channelId"`
	Chaincode string    `json:"chaincode"`
	Function  string    `json:"function"`
	Args      [][]byte  `json:"args,omitempty"`
	Creator   []byte    `json:"creator"` // serialized identity
	Timestamp time.Time `json:"timestamp"`
	Signature []byte    `json:"signature"`
}

// SignedBytes returns the bytes covered by the proposal signature: the
// canonical binary preimage of every field except the signature itself.
func (p *Proposal) SignedBytes() []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, proposalMagic...)
	buf = append(buf, preimageVersion)
	buf = codec.AppendString(buf, p.TxID)
	buf = codec.AppendString(buf, p.ChannelID)
	buf = codec.AppendString(buf, p.Chaincode)
	buf = codec.AppendString(buf, p.Function)
	buf = codec.AppendUvarint(buf, uint64(len(p.Args)))
	for _, a := range p.Args {
		buf = codec.AppendBytes(buf, a)
	}
	buf = codec.AppendBytes(buf, p.Creator)
	return codec.AppendTime(buf, p.Timestamp)
}

// NewTxID derives a transaction id from the creator identity and a random
// nonce, as Fabric does (sha256(nonce || creator)).
func NewTxID(creator []byte) (string, error) {
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return "", fmt.Errorf("endorser: txid nonce: %w", err)
	}
	h := sha256.New()
	h.Write(nonce)
	h.Write(creator)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Response is one peer's endorsement of a simulated proposal.
type Response struct {
	TxID      string `json:"txId"`
	Status    int32  `json:"status"`
	Message   string `json:"message,omitempty"`
	Payload   []byte `json:"payload,omitempty"`
	RWSet     []byte `json:"rwset"`
	Events    []byte `json:"events,omitempty"`
	Endorser  []byte `json:"endorser"` // serialized identity of the peer
	Signature []byte `json:"signature"`
}

// SignedBytes returns the bytes the endorsing peer signs: the canonical
// binary preimage of everything except the signature, so that all correct
// endorsers of the same simulation sign identical bytes apart from their
// own identity binding (identity is included to prevent transplanting).
func (r *Response) SignedBytes() []byte {
	buf := make([]byte, 0, 256+len(r.Payload)+len(r.RWSet))
	buf = append(buf, responseMagic...)
	buf = append(buf, preimageVersion)
	buf = codec.AppendString(buf, r.TxID)
	buf = codec.AppendVarint(buf, int64(r.Status))
	buf = codec.AppendString(buf, r.Message)
	buf = codec.AppendBytes(buf, r.Payload)
	buf = codec.AppendBytes(buf, r.RWSet)
	buf = codec.AppendBytes(buf, r.Events)
	return codec.AppendBytes(buf, r.Endorser)
}

// Verify checks the endorsement signature against the peer identity
// resolved through the MSP. It returns the resolved identity.
//
// Verification goes through the MSP's shared signature cache: a triple the
// process already verified (the gateway checked it, commit re-checks it;
// gossip redelivers a block) is accepted without redoing the ECDSA work.
func (r *Response) Verify(msp *identity.MSP) (*identity.Identity, error) {
	return r.verifyCached(msp, nil)
}

func (r *Response) verifyCached(msp *identity.MSP, onMiss func()) (*identity.Identity, error) {
	id, err := msp.Deserialize(r.Endorser)
	if err != nil {
		return nil, fmt.Errorf("endorser: resolve endorser: %w", err)
	}
	if err := id.VerifyCached(msp.VerifyCache(), r.SignedBytes(), r.Signature, onMiss); err != nil {
		return nil, fmt.Errorf("endorser: endorsement signature: %w", err)
	}
	return id, nil
}

// Policy is an endorsement policy over organization MSP IDs.
type Policy interface {
	// Evaluate reports whether the given set of endorsing orgs satisfies
	// the policy. The slice may contain duplicates; evaluation considers
	// distinct orgs.
	Evaluate(orgs []string) bool
	// String renders the policy in Fabric's textual form.
	String() string
}

type signedBy struct{ mspID string }

// SignedBy requires an endorsement from the given org's MSP.
func SignedBy(mspID string) Policy { return signedBy{mspID: mspID} }

func (p signedBy) Evaluate(orgs []string) bool {
	for _, o := range orgs {
		if o == p.mspID {
			return true
		}
	}
	return false
}

func (p signedBy) String() string { return fmt.Sprintf("SignedBy(%q)", p.mspID) }

type outOf struct {
	n    int
	subs []Policy
}

// OutOf requires at least n of the sub-policies to be satisfied.
func OutOf(n int, subs ...Policy) Policy { return outOf{n: n, subs: subs} }

// And requires all sub-policies.
func And(subs ...Policy) Policy { return outOf{n: len(subs), subs: subs} }

// Or requires any sub-policy.
func Or(subs ...Policy) Policy { return outOf{n: 1, subs: subs} }

func (p outOf) Evaluate(orgs []string) bool {
	if p.n <= 0 {
		return true
	}
	satisfied := 0
	for _, sub := range p.subs {
		if sub.Evaluate(orgs) {
			satisfied++
			if satisfied >= p.n {
				return true
			}
		}
	}
	return false
}

func (p outOf) String() string {
	s := fmt.Sprintf("OutOf(%d", p.n)
	for _, sub := range p.subs {
		s += ", " + sub.String()
	}
	return s + ")"
}

// AnyOrg builds the policy "any single member of the listed orgs", the
// default for the paper's single-org style deployment.
func AnyOrg(orgs []string) Policy {
	subs := make([]Policy, len(orgs))
	for i, o := range orgs {
		subs[i] = SignedBy(o + "MSP")
	}
	return Or(subs...)
}

// MajorityOrgs builds the policy "majority of the listed orgs".
func MajorityOrgs(orgs []string) Policy {
	subs := make([]Policy, len(orgs))
	for i, o := range orgs {
		subs[i] = SignedBy(o + "MSP")
	}
	return OutOf(len(orgs)/2+1, subs...)
}

// Digest returns the hex digest binding the response's simulated effect
// (rwset plus payload). All correct endorsers of one proposal produce the
// same digest.
func (r *Response) Digest() string {
	sum := sha256.Sum256(append(append([]byte{}, r.RWSet...), r.Payload...))
	return hex.EncodeToString(sum[:])
}

// VerifyEndorsements verifies every endorsement signature and checks that
// all endorsements agree on the rwset digest (divergent simulation means a
// non-deterministic chaincode or a byzantine peer). It returns the MSP IDs
// of the endorsing orgs, in response order.
//
// The function touches no shared mutable state beyond the MSP's internal
// read-locking, so the committing peer's pre-validation stage may call it
// for many transactions concurrently.
func VerifyEndorsements(msp *identity.MSP, responses []*Response) ([]string, error) {
	return VerifyEndorsementsFunc(msp, responses, nil)
}

// VerifyEndorsementsFunc is VerifyEndorsements with a per-miss hook: onMiss
// runs once for each signature that was NOT already in the MSP's
// verification cache, immediately before the real ECDSA check. Callers use
// it to charge modeled verification hardware only for work that actually
// happens — a warm cache validates an entire block without a single charge.
func VerifyEndorsementsFunc(msp *identity.MSP, responses []*Response, onMiss func()) ([]string, error) {
	if len(responses) == 0 {
		return nil, fmt.Errorf("%w: no endorsements", ErrPolicyNotSatisfied)
	}
	orgs := make([]string, 0, len(responses))
	var digest string
	for i, r := range responses {
		id, err := r.verifyCached(msp, onMiss)
		if err != nil {
			return nil, err
		}
		d := r.Digest()
		if i == 0 {
			digest = d
		} else if d != digest {
			return nil, ErrResponseMismatch
		}
		orgs = append(orgs, id.MSPID())
	}
	return orgs, nil
}

// CheckEndorsements verifies every endorsement signature and evaluates the
// policy over the endorsing orgs. Like VerifyEndorsements it is safe to
// call concurrently from validation workers.
func CheckEndorsements(policy Policy, msp *identity.MSP, responses []*Response) error {
	return CheckEndorsementsFunc(policy, msp, responses, nil)
}

// CheckEndorsementsFunc is CheckEndorsements with the per-miss charge hook
// of VerifyEndorsementsFunc.
func CheckEndorsementsFunc(policy Policy, msp *identity.MSP, responses []*Response, onMiss func()) error {
	orgs, err := VerifyEndorsementsFunc(msp, responses, onMiss)
	if err != nil {
		return err
	}
	if !policy.Evaluate(orgs) {
		return fmt.Errorf("%w: have %v, need %s", ErrPolicyNotSatisfied, orgs, policy)
	}
	return nil
}
