// Package endorser defines the proposal/response wire types and the
// endorsement-policy engine of the execute–order–validate pipeline. Clients
// send signed proposals to endorsing peers; peers simulate the chaincode
// and sign the resulting read/write set; the policy engine decides whether
// a set of endorsements satisfies the channel's endorsement policy, both at
// submission time (client-side check) and at validation time (VSCC).
package endorser

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/hyperprov/hyperprov/internal/identity"
)

// Errors returned by this package.
var (
	ErrPolicyNotSatisfied = errors.New("endorser: endorsement policy not satisfied")
	ErrResponseMismatch   = errors.New("endorser: endorsing peers returned divergent results")
)

// Proposal is a client's signed request to simulate a chaincode invocation.
type Proposal struct {
	TxID      string    `json:"txId"`
	ChannelID string    `json:"channelId"`
	Chaincode string    `json:"chaincode"`
	Function  string    `json:"function"`
	Args      [][]byte  `json:"args,omitempty"`
	Creator   []byte    `json:"creator"` // serialized identity
	Timestamp time.Time `json:"timestamp"`
	Signature []byte    `json:"signature"`
}

// SignedBytes returns the bytes covered by the proposal signature.
func (p *Proposal) SignedBytes() []byte {
	cp := *p
	cp.Signature = nil
	b, _ := json.Marshal(&cp)
	return b
}

// NewTxID derives a transaction id from the creator identity and a random
// nonce, as Fabric does (sha256(nonce || creator)).
func NewTxID(creator []byte) (string, error) {
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return "", fmt.Errorf("endorser: txid nonce: %w", err)
	}
	h := sha256.New()
	h.Write(nonce)
	h.Write(creator)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Response is one peer's endorsement of a simulated proposal.
type Response struct {
	TxID      string `json:"txId"`
	Status    int32  `json:"status"`
	Message   string `json:"message,omitempty"`
	Payload   []byte `json:"payload,omitempty"`
	RWSet     []byte `json:"rwset"`
	Events    []byte `json:"events,omitempty"`
	Endorser  []byte `json:"endorser"` // serialized identity of the peer
	Signature []byte `json:"signature"`
}

// SignedBytes returns the bytes the endorsing peer signs: everything except
// the signature and the endorser-specific identity, so that all correct
// endorsers of the same simulation sign identical bytes apart from their
// own identity binding (identity is included to prevent transplanting).
func (r *Response) SignedBytes() []byte {
	cp := *r
	cp.Signature = nil
	b, _ := json.Marshal(&cp)
	return b
}

// Verify checks the endorsement signature against the peer identity
// resolved through the MSP. It returns the resolved identity.
func (r *Response) Verify(msp *identity.MSP) (*identity.Identity, error) {
	id, err := msp.Deserialize(r.Endorser)
	if err != nil {
		return nil, fmt.Errorf("endorser: resolve endorser: %w", err)
	}
	if err := id.Verify(r.SignedBytes(), r.Signature); err != nil {
		return nil, fmt.Errorf("endorser: endorsement signature: %w", err)
	}
	return id, nil
}

// Policy is an endorsement policy over organization MSP IDs.
type Policy interface {
	// Evaluate reports whether the given set of endorsing orgs satisfies
	// the policy. The slice may contain duplicates; evaluation considers
	// distinct orgs.
	Evaluate(orgs []string) bool
	// String renders the policy in Fabric's textual form.
	String() string
}

type signedBy struct{ mspID string }

// SignedBy requires an endorsement from the given org's MSP.
func SignedBy(mspID string) Policy { return signedBy{mspID: mspID} }

func (p signedBy) Evaluate(orgs []string) bool {
	for _, o := range orgs {
		if o == p.mspID {
			return true
		}
	}
	return false
}

func (p signedBy) String() string { return fmt.Sprintf("SignedBy(%q)", p.mspID) }

type outOf struct {
	n    int
	subs []Policy
}

// OutOf requires at least n of the sub-policies to be satisfied.
func OutOf(n int, subs ...Policy) Policy { return outOf{n: n, subs: subs} }

// And requires all sub-policies.
func And(subs ...Policy) Policy { return outOf{n: len(subs), subs: subs} }

// Or requires any sub-policy.
func Or(subs ...Policy) Policy { return outOf{n: 1, subs: subs} }

func (p outOf) Evaluate(orgs []string) bool {
	if p.n <= 0 {
		return true
	}
	satisfied := 0
	for _, sub := range p.subs {
		if sub.Evaluate(orgs) {
			satisfied++
			if satisfied >= p.n {
				return true
			}
		}
	}
	return false
}

func (p outOf) String() string {
	s := fmt.Sprintf("OutOf(%d", p.n)
	for _, sub := range p.subs {
		s += ", " + sub.String()
	}
	return s + ")"
}

// AnyOrg builds the policy "any single member of the listed orgs", the
// default for the paper's single-org style deployment.
func AnyOrg(orgs []string) Policy {
	subs := make([]Policy, len(orgs))
	for i, o := range orgs {
		subs[i] = SignedBy(o + "MSP")
	}
	return Or(subs...)
}

// MajorityOrgs builds the policy "majority of the listed orgs".
func MajorityOrgs(orgs []string) Policy {
	subs := make([]Policy, len(orgs))
	for i, o := range orgs {
		subs[i] = SignedBy(o + "MSP")
	}
	return OutOf(len(orgs)/2+1, subs...)
}

// Digest returns the hex digest binding the response's simulated effect
// (rwset plus payload). All correct endorsers of one proposal produce the
// same digest.
func (r *Response) Digest() string {
	sum := sha256.Sum256(append(append([]byte{}, r.RWSet...), r.Payload...))
	return hex.EncodeToString(sum[:])
}

// VerifyEndorsements verifies every endorsement signature and checks that
// all endorsements agree on the rwset digest (divergent simulation means a
// non-deterministic chaincode or a byzantine peer). It returns the MSP IDs
// of the endorsing orgs, in response order.
//
// The function touches no shared mutable state beyond the MSP's internal
// read-locking, so the committing peer's pre-validation stage may call it
// for many transactions concurrently.
func VerifyEndorsements(msp *identity.MSP, responses []*Response) ([]string, error) {
	if len(responses) == 0 {
		return nil, fmt.Errorf("%w: no endorsements", ErrPolicyNotSatisfied)
	}
	orgs := make([]string, 0, len(responses))
	var digest string
	for i, r := range responses {
		id, err := r.Verify(msp)
		if err != nil {
			return nil, err
		}
		d := r.Digest()
		if i == 0 {
			digest = d
		} else if d != digest {
			return nil, ErrResponseMismatch
		}
		orgs = append(orgs, id.MSPID())
	}
	return orgs, nil
}

// CheckEndorsements verifies every endorsement signature and evaluates the
// policy over the endorsing orgs. Like VerifyEndorsements it is safe to
// call concurrently from validation workers.
func CheckEndorsements(policy Policy, msp *identity.MSP, responses []*Response) error {
	orgs, err := VerifyEndorsements(msp, responses)
	if err != nil {
		return err
	}
	if !policy.Evaluate(orgs) {
		return fmt.Errorf("%w: have %v, need %s", ErrPolicyNotSatisfied, orgs, policy)
	}
	return nil
}
