package shim

import (
	"bytes"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

func newStub(t *testing.T, seed map[string]string) *Stub {
	t.Helper()
	st := statedb.New()
	if len(seed) > 0 {
		b := statedb.NewUpdateBatch()
		for k, v := range seed {
			b.Put(k, []byte(v), statedb.Version{BlockNum: 1})
		}
		if err := st.ApplyUpdates(b, statedb.Version{BlockNum: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return NewStub(Config{
		TxID:      "tx1",
		ChannelID: "ch",
		Function:  "set",
		Args:      [][]byte{[]byte("a"), []byte("b")},
		Creator:   []byte("creator-identity"),
		Timestamp: time.Unix(100, 0),
		State:     st,
		History:   historydb.New(),
	})
}

func TestStubAccessors(t *testing.T) {
	s := newStub(t, nil)
	if s.TxID() != "tx1" || s.ChannelID() != "ch" || s.Function() != "set" {
		t.Error("accessor mismatch")
	}
	if got := s.StringArgs(); len(got) != 2 || got[0] != "a" {
		t.Errorf("StringArgs = %v", got)
	}
	if !bytes.Equal(s.Creator(), []byte("creator-identity")) {
		t.Error("Creator mismatch")
	}
	if !s.TxTimestamp().Equal(time.Unix(100, 0)) {
		t.Error("timestamp mismatch")
	}
}

func TestGetStateReadsCommitted(t *testing.T) {
	s := newStub(t, map[string]string{"k": "v"})
	got, err := s.GetState("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("GetState = %q, %v", got, err)
	}
	absent, err := s.GetState("nope")
	if err != nil || absent != nil {
		t.Fatalf("GetState(absent) = %q, %v", absent, err)
	}
	rws := s.RWSet()
	if len(rws.Reads) != 2 {
		t.Fatalf("reads = %d, want 2", len(rws.Reads))
	}
}

func TestReadYourWrites(t *testing.T) {
	s := newStub(t, map[string]string{"k": "old"})
	if err := s.PutState("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetState("k")
	if err != nil || string(got) != "new" {
		t.Fatalf("GetState after put = %q, %v", got, err)
	}
	if err := s.DelState("k"); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetState("k")
	if err != nil || got != nil {
		t.Fatalf("GetState after delete = %q, %v", got, err)
	}
	// Reads served from the write cache add no read dependency.
	if n := len(s.RWSet().Reads); n != 0 {
		t.Errorf("reads = %d, want 0 (served from write cache)", n)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := newStub(t, nil)
	if _, err := s.GetState(""); err == nil {
		t.Error("GetState empty key accepted")
	}
	if err := s.PutState("", nil); err == nil {
		t.Error("PutState empty key accepted")
	}
	if err := s.DelState(""); err == nil {
		t.Error("DelState empty key accepted")
	}
}

// Plain keys must not contain U+0000 — the write-gate invariant that lets
// the state database exclude the whole composite namespace from plain
// range scans with one bound check. Composite keys (U+0000-prefixed, from
// CreateCompositeKey) still pass.
func TestInteriorNulKeyRejected(t *testing.T) {
	s := newStub(t, nil)
	if err := s.PutState("a\x00b", []byte("v")); err == nil {
		t.Error("PutState accepted plain key with interior U+0000")
	}
	if err := s.DelState("a\x00b"); err == nil {
		t.Error("DelState accepted plain key with interior U+0000")
	}
	ck, err := s.CreateCompositeKey("edge", []string{"p", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutState(ck, []byte("v")); err != nil {
		t.Errorf("PutState rejected composite key: %v", err)
	}
	if err := s.DelState(ck); err != nil {
		t.Errorf("DelState rejected composite key: %v", err)
	}
}

func TestRangeRecordsPhantomRead(t *testing.T) {
	s := newStub(t, map[string]string{"a": "1", "b": "2", "c": "3"})
	kvs, err := s.GetStateByRange("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("range = %d entries, want 2", len(kvs))
	}
	rws := s.RWSet()
	if len(rws.RangeReads) != 1 || len(rws.RangeReads[0].Keys) != 2 {
		t.Errorf("range reads = %+v", rws.RangeReads)
	}
}

func TestHistoryForKey(t *testing.T) {
	st := statedb.New()
	h := historydb.New()
	h.Record("k", historydb.Entry{TxID: "t1", Value: []byte("v1"), BlockNum: 1})
	h.Record("k", historydb.Entry{TxID: "t2", Value: []byte("v2"), BlockNum: 2})
	s := NewStub(Config{TxID: "tx", State: st, History: h})
	entries, err := s.GetHistoryForKey("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].TxID != "t1" || entries[1].BlockNum != 2 {
		t.Errorf("history = %+v", entries)
	}
	// No history DB -> error.
	s2 := NewStub(Config{TxID: "tx", State: st})
	if _, err := s2.GetHistoryForKey("k"); err == nil {
		t.Error("GetHistoryForKey without history db succeeded")
	}
}

func TestEvents(t *testing.T) {
	s := newStub(t, nil)
	if err := s.SetEvent("", nil); err == nil {
		t.Error("empty event name accepted")
	}
	payload := []byte("data")
	if err := s.SetEvent("commit", payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // caller mutation must not leak
	evs := s.Events()
	if len(evs) != 1 || evs[0].Name != "commit" || evs[0].Payload[0] != 'd' {
		t.Errorf("events = %+v", evs)
	}
}

func TestCompositeKeyHelpers(t *testing.T) {
	s := newStub(t, nil)
	key, err := s.CreateCompositeKey("edge", []string{"p", "c"})
	if err != nil {
		t.Fatal(err)
	}
	typ, attrs, err := s.SplitCompositeKey(key)
	if err != nil || typ != "edge" || len(attrs) != 2 {
		t.Errorf("split = %q %v %v", typ, attrs, err)
	}
}

func TestGetStateCopies(t *testing.T) {
	s := newStub(t, map[string]string{"k": "value"})
	got, err := s.GetState("k")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := s.GetState("k")
	if err != nil || again[0] != 'v' {
		t.Errorf("stub returned aliased state: %q", again)
	}
}
