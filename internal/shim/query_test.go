package shim

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// queryFixture commits the same documents into a plain Store (scan
// fallback) and an IndexedStore (native rich queries).
func queryFixture(t *testing.T) (plain *statedb.Store, indexed *statedb.IndexedStore) {
	t.Helper()
	plain = statedb.New()
	var err error
	indexed, err = statedb.NewIndexed(richquery.IndexDef{Name: "by-owner", Field: "owner"})
	if err != nil {
		t.Fatal(err)
	}
	owners := []string{"alice", "bob"}
	for _, s := range []statedb.StateDB{plain, indexed} {
		b := statedb.NewUpdateBatch()
		for i := 0; i < 10; i++ {
			doc, _ := json.Marshal(map[string]any{"owner": owners[i%2], "n": i})
			b.Put(fmt.Sprintf("k%02d", i), doc, statedb.Version{BlockNum: 1, TxNum: uint64(i)})
		}
		if err := s.ApplyUpdates(b, statedb.Version{BlockNum: 1, TxNum: 20}); err != nil {
			t.Fatal(err)
		}
	}
	return plain, indexed
}

func queryStub(state statedb.StateDB) *Stub {
	return NewStub(Config{
		TxID: "tq", ChannelID: "ch", Function: "q",
		Creator: []byte("creator"), Timestamp: time.Unix(1570000000, 0),
		State: state,
	})
}

func TestGetQueryResultFallbackMatchesIndexed(t *testing.T) {
	plain, indexed := queryFixture(t)
	for _, query := range []string{
		`{"selector":{"owner":"alice"}}`,
		`{"selector":{"n":{"$gte":3,"$lt":8}},"sort":[{"n":"desc"}]}`,
		`{"owner":{"$in":["bob"]}}`, // bare selector form
	} {
		a := stubQueryKeys(t, queryStub(plain), query)
		b := stubQueryKeys(t, queryStub(indexed), query)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("query %s: plain %v != indexed %v", query, a, b)
		}
		if len(a) == 0 {
			t.Errorf("query %s returned nothing", query)
		}
	}
}

func stubQueryKeys(t *testing.T, stub *Stub, query string) []string {
	t.Helper()
	kvs, err := stub.GetQueryResult(query)
	if err != nil {
		t.Fatalf("GetQueryResult(%s): %v", query, err)
	}
	keys := make([]string, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	return keys
}

func TestGetQueryResultRecordsDependencies(t *testing.T) {
	_, indexed := queryFixture(t)
	stub := queryStub(indexed)
	kvs, err := stub.GetQueryResult(`{"selector":{"owner":"alice"}}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 {
		t.Fatalf("result = %d kvs, want 5", len(kvs))
	}
	rws := stub.RWSet()
	if len(rws.QueryReads) != 1 {
		t.Fatalf("queryReads = %d, want 1", len(rws.QueryReads))
	}
	if len(rws.QueryReads[0].Keys) != 5 {
		t.Errorf("query read observed %d keys", len(rws.QueryReads[0].Keys))
	}
	// Every returned key must carry a version read for MVCC.
	reads := map[string]bool{}
	for _, r := range rws.Reads {
		if r.Version == nil {
			t.Errorf("read of %q has no version", r.Key)
		}
		reads[r.Key] = true
	}
	for _, kv := range kvs {
		if !reads[kv.Key] {
			t.Errorf("returned key %q missing from read set", kv.Key)
		}
	}
	// The recorded query must be re-executable against the state database.
	res, err := indexed.ExecuteQuery(rws.QueryReads[0].Query)
	if err != nil {
		t.Fatalf("recorded query does not re-execute: %v", err)
	}
	if len(res.KVs) != 5 {
		t.Errorf("re-execution found %d keys", len(res.KVs))
	}
}

func TestGetQueryResultWithPagination(t *testing.T) {
	_, indexed := queryFixture(t)
	stub := queryStub(indexed)
	var all []string
	bookmark := ""
	for page := 0; ; page++ {
		kvs, next, err := stub.GetQueryResultWithPagination(`{"selector":{"owner":"alice"}}`, 2, bookmark)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range kvs {
			all = append(all, kv.Key)
		}
		if next == "" {
			break
		}
		bookmark = next
		if page > 5 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(all) != 5 {
		t.Errorf("paged %d keys, want 5", len(all))
	}
	if _, _, err := stub.GetQueryResultWithPagination(`{"selector":{}}`, 0, ""); err == nil {
		t.Error("page size 0 accepted")
	}
}

func TestGetQueryResultBadQuery(t *testing.T) {
	plain, _ := queryFixture(t)
	stub := queryStub(plain)
	if _, err := stub.GetQueryResult(`{"selector":{"a":{"$nope":1}}}`); err == nil {
		t.Error("bad operator accepted")
	}
	if _, err := stub.GetQueryResult(`42`); err == nil {
		t.Error("non-object query accepted")
	}
}
