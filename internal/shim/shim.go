// Package shim is the chaincode programming interface — the analog of
// Fabric's chaincode shim. Chaincode (such as HyperProv's provenance
// contract) is written against the Stub, which serves reads from the peer's
// committed state while transparently recording the read/write set that
// endorsement returns to the client.
package shim

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/rwset"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// Chaincode is implemented by every smart contract deployed to a channel.
type Chaincode interface {
	// Init is invoked once when the chaincode is instantiated.
	Init(stub *Stub) Response
	// Invoke dispatches a transaction or query.
	Invoke(stub *Stub) Response
}

// Response is the chaincode's result for one invocation.
type Response struct {
	Status  int32  `json:"status"`
	Message string `json:"message,omitempty"`
	Payload []byte `json:"payload,omitempty"`
}

// Response status codes (aligned with Fabric's shim).
const (
	OK    int32 = 200
	Error int32 = 500
)

// Success builds a 200 response carrying payload.
func Success(payload []byte) Response { return Response{Status: OK, Payload: payload} }

// Errorf builds a 500 response with a formatted message.
func Errorf(format string, args ...any) Response {
	return Response{Status: Error, Message: fmt.Sprintf(format, args...)}
}

// ErrWrongArgCount is returned by chaincode helpers validating arguments.
var ErrWrongArgCount = errors.New("shim: wrong argument count")

// Event is a chaincode event emitted during simulation; committed events
// are delivered to subscribed clients alongside the commit notification.
type Event struct {
	Name    string `json:"name"`
	Payload []byte `json:"payload"`
}

// HistoryEntry is one version of a key, as returned by GetHistoryForKey.
type HistoryEntry struct {
	TxID      string    `json:"txId"`
	Value     []byte    `json:"value,omitempty"`
	IsDelete  bool      `json:"isDelete,omitempty"`
	Timestamp time.Time `json:"timestamp"`
	BlockNum  uint64    `json:"blockNum"`
}

// Stub gives one chaincode invocation access to ledger state, identity, and
// transaction context, recording every access into an rwset.
type Stub struct {
	txID      string
	channelID string
	fn        string
	args      [][]byte
	creator   []byte
	timestamp time.Time

	state   statedb.StateReader
	history *historydb.DB
	builder *rwset.Builder
	events  []Event
}

// Config carries everything needed to construct a Stub. State is any
// read surface: a live state database, or — as the peer passes for
// endorsement and queries — a height-stamped statedb.View, so one
// simulation's reads see a consistent world no concurrent commit can
// shear.
type Config struct {
	TxID      string
	ChannelID string
	Function  string
	Args      [][]byte
	Creator   []byte
	Timestamp time.Time
	State     statedb.StateReader
	History   *historydb.DB
}

// NewStub builds a stub for one simulation.
func NewStub(cfg Config) *Stub {
	return &Stub{
		txID:      cfg.TxID,
		channelID: cfg.ChannelID,
		fn:        cfg.Function,
		args:      cfg.Args,
		creator:   cfg.Creator,
		timestamp: cfg.Timestamp,
		state:     cfg.State,
		history:   cfg.History,
		builder:   rwset.NewBuilder(),
	}
}

// TxID returns the transaction id of this invocation.
func (s *Stub) TxID() string { return s.txID }

// ChannelID returns the channel this invocation runs on.
func (s *Stub) ChannelID() string { return s.channelID }

// Function returns the invoked function name.
func (s *Stub) Function() string { return s.fn }

// Args returns the invocation arguments (excluding the function name).
func (s *Stub) Args() [][]byte { return s.args }

// StringArgs returns the arguments as strings.
func (s *Stub) StringArgs() []string {
	out := make([]string, len(s.args))
	for i, a := range s.args {
		out[i] = string(a)
	}
	return out
}

// Creator returns the serialized identity of the submitting client; this is
// what HyperProv stores as the provenance record's creator certificate.
func (s *Stub) Creator() []byte { return s.creator }

// TxTimestamp returns the client-asserted transaction timestamp.
func (s *Stub) TxTimestamp() time.Time { return s.timestamp }

// GetState reads a key, returning nil if absent. Reads see this
// simulation's own writes first (read-your-writes), then committed state.
func (s *Stub) GetState(key string) ([]byte, error) {
	if key == "" {
		return nil, statedb.ErrEmptyKey
	}
	if val, deleted, ok := s.builder.PendingWrite(key); ok {
		if deleted {
			return nil, nil
		}
		out := make([]byte, len(val))
		copy(out, val)
		return out, nil
	}
	vv, ok := s.state.Get(key)
	if !ok {
		s.builder.AddRead(key, nil)
		return nil, nil
	}
	v := vv.Version
	s.builder.AddRead(key, &v)
	out := make([]byte, len(vv.Value))
	copy(out, vv.Value)
	return out, nil
}

// validateWriteKey rejects malformed keys at the write gate: a key is
// either composite (U+0000-prefixed, built by CreateCompositeKey) or plain
// with no U+0000 anywhere. This invariant is what lets the state database
// exclude the whole composite namespace from plain range scans with a
// single bound check, exactly as Fabric forbids U+0000 in simple keys.
func validateWriteKey(key string) error {
	if key == "" {
		return statedb.ErrEmptyKey
	}
	if strings.ContainsRune(key[1:], 0) && key[0] != 0 {
		return fmt.Errorf("shim: plain key %q contains U+0000 (reserved for composite keys)", key)
	}
	return nil
}

// PutState stages a write; it becomes visible only if the transaction
// commits as valid.
func (s *Stub) PutState(key string, value []byte) error {
	if err := validateWriteKey(key); err != nil {
		return err
	}
	s.builder.AddWrite(key, value)
	return nil
}

// DelState stages a deletion.
func (s *Stub) DelState(key string) error {
	if err := validateWriteKey(key); err != nil {
		return err
	}
	s.builder.AddDelete(key)
	return nil
}

// GetStateByRange returns committed entries in [startKey, endKey), recording
// a range read for phantom protection. In-simulation writes are not merged
// into range results (matching Fabric's behaviour).
func (s *Stub) GetStateByRange(startKey, endKey string) ([]statedb.KV, error) {
	kvs := statedb.Collect(s.state.GetRange(startKey, endKey))
	keys := make([]string, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	s.builder.AddRangeRead(startKey, endKey, keys)
	return kvs, nil
}

// GetStateByRangeWithPagination streams at most pageSize committed entries
// of [startKey, endKey), resuming from bookmark (empty for the first
// page), and returns the bookmark for the next page ("" when the range is
// exhausted). The underlying iterator terminates after pageSize+1 entries
// regardless of how large the range — or total state — is. The recorded
// phantom read covers exactly the observed window: its end bound is the
// next page's first key, so validation re-scans only what simulation saw.
func (s *Stub) GetStateByRangeWithPagination(startKey, endKey string, pageSize int, bookmark string) ([]statedb.KV, string, error) {
	if pageSize <= 0 {
		return nil, "", errors.New("shim: pagination wants a positive page size")
	}
	low := startKey
	if bookmark != "" {
		low = bookmark
	}
	it := s.state.GetRange(low, endKey)
	defer it.Close()
	kvs := make([]statedb.KV, 0, pageSize)
	keys := make([]string, 0, pageSize)
	next := ""
	for {
		kv, ok := it.Next()
		if !ok {
			break
		}
		if len(kvs) == pageSize {
			next = kv.Key // first key of the following page
			break
		}
		kvs = append(kvs, kv)
		keys = append(keys, kv.Key)
	}
	windowEnd := endKey
	if next != "" {
		windowEnd = next
	}
	s.builder.AddRangeRead(low, windowEnd, keys)
	return kvs, next, nil
}

// CreateCompositeKey builds a namespaced composite key.
func (s *Stub) CreateCompositeKey(objectType string, attrs []string) (string, error) {
	return statedb.CreateCompositeKey(objectType, attrs)
}

// SplitCompositeKey decomposes a composite key.
func (s *Stub) SplitCompositeKey(key string) (string, []string, error) {
	return statedb.SplitCompositeKey(key)
}

// GetStateByPartialCompositeKey queries committed composite keys by prefix.
func (s *Stub) GetStateByPartialCompositeKey(objectType string, attrs []string) ([]statedb.KV, error) {
	it, err := s.state.GetByPartialCompositeKey(objectType, attrs)
	if err != nil {
		return nil, err
	}
	return statedb.Collect(it), nil
}

// GetQueryResult runs a rich (Mango) query against committed state and
// returns the matching entries in result order. The query is a JSON
// document (see richquery.ParseQuery): a selector plus optional sort and
// limit. Like range queries, rich-query results are served from committed
// state only (in-simulation writes are not merged), and the query is
// recorded in the rwset both as per-key version reads and as a re-executable
// query read for phantom protection.
func (s *Stub) GetQueryResult(query string) ([]statedb.KV, error) {
	kvs, _, err := s.executeQuery([]byte(query), 0, "")
	return kvs, err
}

// GetQueryResultWithPagination runs a rich query bounded to pageSize
// results, resuming from bookmark (empty for the first page). It returns
// the page and the bookmark for the next page ("" when exhausted).
func (s *Stub) GetQueryResultWithPagination(query string, pageSize int, bookmark string) ([]statedb.KV, string, error) {
	if pageSize <= 0 {
		return nil, "", errors.New("shim: pagination wants a positive page size")
	}
	return s.executeQuery([]byte(query), pageSize, bookmark)
}

// executeQuery parses and shapes the query, executes it on the state
// database (natively when it supports rich queries, by filtered scan
// otherwise), and records the read dependencies.
func (s *Stub) executeQuery(query []byte, pageSize int, bookmark string) ([]statedb.KV, string, error) {
	q, err := richquery.ParseQuery(query)
	if err != nil {
		return nil, "", err
	}
	if pageSize > 0 {
		q.Limit = pageSize
	}
	if bookmark != "" {
		q.Bookmark = bookmark
	}
	wire, err := q.Marshal()
	if err != nil {
		return nil, "", fmt.Errorf("shim: marshal query: %w", err)
	}

	var res *statedb.QueryResult
	if rq, ok := s.state.(statedb.RichQueryer); ok {
		res, err = rq.ExecuteQuery(wire)
	} else {
		// LevelDB-flavour fallback: filtered scan through the exact
		// pipeline IndexedStore runs, so results are identical.
		res, err = statedb.ScanQuery(s.state, wire)
	}
	if err != nil {
		return nil, "", err
	}

	keys := make([]string, len(res.KVs))
	for i, kv := range res.KVs {
		keys[i] = kv.Key
		v := kv.Version
		s.builder.AddRead(kv.Key, &v)
	}
	s.builder.AddQueryRead(wire, keys)
	return res.KVs, res.Bookmark, nil
}

// GetHistoryForKey returns the committed version history of key, newest
// last. History queries are read-only metadata queries and do not add MVCC
// read dependencies (as in Fabric).
func (s *Stub) GetHistoryForKey(key string) ([]HistoryEntry, error) {
	if s.history == nil {
		return nil, errors.New("shim: history db not available")
	}
	entries := s.history.History(key)
	out := make([]HistoryEntry, len(entries))
	for i, e := range entries {
		out[i] = HistoryEntry{
			TxID:      e.TxID,
			Value:     e.Value,
			IsDelete:  e.IsDelete,
			Timestamp: e.Timestamp,
			BlockNum:  e.BlockNum,
		}
	}
	return out, nil
}

// SetEvent emits a chaincode event delivered on commit.
func (s *Stub) SetEvent(name string, payload []byte) error {
	if name == "" {
		return errors.New("shim: empty event name")
	}
	p := make([]byte, len(payload))
	copy(p, payload)
	s.events = append(s.events, Event{Name: name, Payload: p})
	return nil
}

// Events returns the events emitted so far.
func (s *Stub) Events() []Event { return s.events }

// RWSet finalizes and returns the recorded read/write set.
func (s *Stub) RWSet() *rwset.ReadWriteSet { return s.builder.Build() }
