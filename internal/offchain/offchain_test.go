package offchain

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestChecksumFormat(t *testing.T) {
	cs := Checksum([]byte("hello"))
	if !strings.HasPrefix(cs, "sha256:") || len(cs) != 7+64 {
		t.Errorf("Checksum = %q", cs)
	}
	if Checksum([]byte("hello")) != cs {
		t.Error("Checksum not deterministic")
	}
	if Checksum([]byte("world")) == cs {
		t.Error("different data, same checksum")
	}
}

func TestVerifyChecksum(t *testing.T) {
	data := []byte("payload")
	if err := VerifyChecksum(data, Checksum(data)); err != nil {
		t.Errorf("VerifyChecksum clean: %v", err)
	}
	if err := VerifyChecksum([]byte("tampered"), Checksum(data)); !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("VerifyChecksum tampered = %v, want ErrChecksumMismatch", err)
	}
}

// storeSuite runs the contract tests against any Store implementation.
func storeSuite(t *testing.T, s Store) {
	t.Helper()
	data := []byte("the quick brown fox")
	ref, err := s.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if ref == "" {
		t.Fatal("empty ref")
	}
	got, err := s.Get(ref)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("Get = %q, want %q", got, data)
	}
	// Idempotent put (content addressed).
	ref2, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if ref2 != ref {
		t.Errorf("second Put ref = %q, want %q", ref2, ref)
	}
	// Unknown ref.
	if _, err := s.Get(strings.Replace(ref, "a", "b", 1) + "x"); err == nil {
		t.Error("Get of unknown ref succeeded")
	}
	// Malformed ref.
	if _, err := s.Get("bogus-scheme://zzz"); err == nil {
		t.Error("Get of malformed ref succeeded")
	}
	// Empty payload round-trips.
	refEmpty, err := s.Put(nil)
	if err != nil {
		t.Fatalf("Put(nil): %v", err)
	}
	if got, err := s.Get(refEmpty); err != nil || len(got) != 0 {
		t.Errorf("Get(empty) = %q, %v", got, err)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	storeSuite(t, s)
	if s.Len() == 0 {
		t.Error("Len = 0 after puts")
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	data := []byte("original")
	ref, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // caller mutation must not corrupt the store
	got, err := s.Get(ref)
	if err != nil {
		t.Fatalf("Get after caller mutation: %v", err)
	}
	if got[0] != 'o' {
		t.Error("store aliased caller slice")
	}
	got[0] = 'Y' // returned slice mutation must not corrupt the store
	if again, err := s.Get(ref); err != nil || again[0] != 'o' {
		t.Errorf("store aliased returned slice: %q %v", again, err)
	}
}

func TestMemStoreTamperDetection(t *testing.T) {
	s := NewMemStore()
	ref, err := s.Put([]byte("sensor reading 42"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt(ref); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(ref)
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("Get of corrupted object = %v, want ErrChecksumMismatch", err)
	}
}

func TestDirStore(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeSuite(t, s)
}

func TestDirStoreTamperDetection(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Put([]byte("data item"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the file on disk.
	key := strings.TrimPrefix(ref, "file://")
	if err := os.WriteFile(s.path(key), []byte("evil bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("Get corrupted file = %v, want ErrChecksumMismatch", err)
	}
}

// Property: checksum round-trips for random payloads on MemStore.
func TestQuickMemRoundTrip(t *testing.T) {
	s := NewMemStore()
	f := func(data []byte) bool {
		ref, err := s.Put(data)
		if err != nil {
			return false
		}
		got, err := s.Get(ref)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChecksumCollisionResistanceSample(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		cs := Checksum([]byte(fmt.Sprintf("payload-%d", i)))
		if seen[cs] {
			t.Fatalf("collision at %d", i)
		}
		seen[cs] = true
	}
}

// A crash mid-Put must never leave a truncated blob reachable behind a
// valid content hash: the torn write lives in a .put-*.tmp file that Get
// cannot address and the next NewDirStore sweeps away.
func TestDirStoreCrashTornPut(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("sensor payload destined for off-chain storage")
	ref := "file://" + Checksum(data)

	// Simulate the crash: the temp file exists with a torn prefix of the
	// payload, the rename never happened.
	torn, err := os.CreateTemp(dir, putTmpPattern)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := torn.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	torn.Close()

	// The torn blob is unreachable through the store.
	if _, err := s.Get(ref); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after torn Put = %v, want ErrNotFound", err)
	}

	// Reopening the directory sweeps the stale temp file.
	if _, err := NewDirStore(dir); err != nil {
		t.Fatal(err)
	}
	stale, err := filepath.Glob(filepath.Join(dir, putTmpPattern))
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Fatalf("stale temp files survived reopen: %v", stale)
	}

	// A successful Put leaves exactly the final object, no temp residue.
	gotRef, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotRef != ref {
		t.Fatalf("Put ref = %q, want %q", gotRef, ref)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir after Put has %d entries, want 1 (the object)", len(entries))
	}
	got, err := s.Get(ref)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after Put = %v, %v", got, err)
	}
}

// A torn final file (e.g. a non-atomic writer or disk fault) is detected by
// the checksum on Get rather than served as valid data.
func TestDirStoreTornFinalDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("complete object body")
	ref, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.TrimPrefix(ref, "file://")
	if err := os.WriteFile(s.path(key)+".torn", data[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path(key)+".torn", s.path(key)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("Get torn final = %v, want ErrChecksumMismatch", err)
	}
}
