package offchain

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"github.com/hyperprov/hyperprov/internal/network"
)

// This file implements the remote off-chain store: a TCP object server and
// its client. It stands in for the paper's SSHFS mount served from a
// separate node — the client pays a per-operation handshake plus a
// bandwidth-bound transfer, which is exactly the cost structure that bends
// the throughput and response-time curves of Figs 1–2 at large payloads.

// remote protocol operations.
const (
	opPut = "put"
	opGet = "get"
)

type remoteRequest struct {
	Op   string `json:"op"`
	Key  string `json:"key,omitempty"`
	Data []byte `json:"data,omitempty"`
}

type remoteResponse struct {
	OK bool `json:"ok"`
	// Code classifies failures structurally (shared vocabulary with the
	// peer transport, see network.ErrCode); Err carries the human-readable
	// message only.
	Code network.ErrCode `json:"code,omitempty"`
	Err  string          `json:"err,omitempty"`
	Key  string          `json:"key,omitempty"`
	Data []byte          `json:"data,omitempty"`
}

// classify maps a backing-store error onto the wire error code.
func classify(err error) network.ErrCode {
	switch {
	case errors.Is(err, ErrNotFound):
		return network.CodeNotFound
	case errors.Is(err, ErrChecksumMismatch):
		return network.CodeChecksumMismatch
	case errors.Is(err, ErrBadRef):
		return network.CodeBadRequest
	default:
		return network.CodeInternal
	}
}

// Server is a TCP object server backed by any Store.
type Server struct {
	backing Store
	ln      net.Listener
	shape   network.LinkShape
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

// NewServer starts an object server on addr ("127.0.0.1:0" for an
// ephemeral port). shape is applied to the server's responses, modelling
// the storage node's uplink.
func NewServer(addr string, backing Store, shape network.LinkShape) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("offchain: listen: %w", err)
	}
	s := &Server{backing: backing, ln: ln, shape: shape}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for connection handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	shaped := network.NewShapedConn(conn, s.shape)
	for {
		var req remoteRequest
		if err := network.ReadJSON(conn, &req); err != nil {
			return // EOF or broken connection
		}
		resp := s.handle(&req)
		if err := network.WriteJSON(shaped, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *remoteRequest) *remoteResponse {
	switch req.Op {
	case opPut:
		ref, err := s.backing.Put(req.Data)
		if err != nil {
			return &remoteResponse{Code: classify(err), Err: err.Error()}
		}
		return &remoteResponse{OK: true, Key: ref}
	case opGet:
		data, err := s.backing.Get(req.Key)
		if err != nil {
			return &remoteResponse{Code: classify(err), Err: err.Error()}
		}
		return &remoteResponse{OK: true, Data: data}
	default:
		return &remoteResponse{Code: network.CodeBadRequest, Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// RemoteStore is the client side: it dials the object server and shapes its
// own uplink writes, so both transfer directions pay the modeled link cost.
type RemoteStore struct {
	addr  string
	shape network.LinkShape

	mu   sync.Mutex
	conn net.Conn
}

var _ Store = (*RemoteStore)(nil)

// NewRemoteStore connects to an object server.
func NewRemoteStore(addr string, shape network.LinkShape) (*RemoteStore, error) {
	r := &RemoteStore{addr: addr, shape: shape}
	if err := r.reconnect(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *RemoteStore) reconnect() error {
	conn, err := net.Dial("tcp", r.addr)
	if err != nil {
		return fmt.Errorf("offchain: dial %s: %w", r.addr, err)
	}
	r.conn = conn
	return nil
}

// roundTrip sends one request and reads one response, retrying once on a
// broken connection.
func (r *RemoteStore) roundTrip(req *remoteRequest) (*remoteResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if r.conn == nil {
			if err := r.reconnect(); err != nil {
				return nil, err
			}
		}
		shaped := network.NewShapedConn(r.conn, r.shape)
		var resp remoteResponse
		err := network.WriteJSON(shaped, req)
		if err == nil {
			err = network.ReadJSON(r.conn, &resp)
		}
		if err != nil {
			r.conn.Close()
			r.conn = nil
			if attempt == 0 {
				continue
			}
			return nil, fmt.Errorf("offchain: remote round trip: %w", err)
		}
		return &resp, nil
	}
}

// Put uploads data and returns a remote reference.
func (r *RemoteStore) Put(data []byte) (string, error) {
	resp, err := r.roundTrip(&remoteRequest{Op: opPut, Data: data})
	if err != nil {
		return "", err
	}
	if !resp.OK {
		return "", fmt.Errorf("offchain: remote put: %s", resp.Err)
	}
	return "remote://" + r.addr + "/" + resp.Key, nil
}

// Get downloads and verifies the object for ref.
func (r *RemoteStore) Get(ref string) ([]byte, error) {
	key, err := r.localKey(ref)
	if err != nil {
		return nil, err
	}
	resp, err := r.roundTrip(&remoteRequest{Op: opGet, Key: key})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		switch resp.Code {
		case network.CodeNotFound:
			return nil, fmt.Errorf("%w: %q", ErrNotFound, ref)
		case network.CodeChecksumMismatch:
			return nil, ErrChecksumMismatch
		case network.CodeBadRequest:
			return nil, fmt.Errorf("%w: %s", ErrBadRef, resp.Err)
		}
		return nil, fmt.Errorf("offchain: remote get: %s", resp.Err)
	}
	return resp.Data, nil
}

// localKey strips the remote:// prefix and host, returning the backing
// store's reference.
func (r *RemoteStore) localKey(ref string) (string, error) {
	rest, ok := strings.CutPrefix(ref, "remote://")
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrBadRef, ref)
	}
	i := strings.Index(rest, "/")
	if i < 0 {
		return "", fmt.Errorf("%w: %q", ErrBadRef, ref)
	}
	return rest[i+1:], nil
}

// Close closes the client connection.
func (r *RemoteStore) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		err := r.conn.Close()
		r.conn = nil
		return err
	}
	return nil
}
