package offchain

import (
	"testing"

	"github.com/hyperprov/hyperprov/internal/network"
)

func BenchmarkChecksum1MiB(b *testing.B) {
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		_ = Checksum(data)
	}
}

func BenchmarkMemStorePutGet(b *testing.B) {
	s := NewMemStore()
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		data[1] = byte(i >> 8)
		ref, err := s.Put(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Get(ref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoteStoreRoundTrip(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", NewMemStore(), network.LinkShape{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := NewRemoteStore(srv.Addr(), network.LinkShape{})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	data := make([]byte, 16<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		data[1] = byte(i >> 8)
		ref, err := client.Put(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Get(ref); err != nil {
			b.Fatal(err)
		}
	}
}
