package offchain

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/network"
)

func newRemotePair(t *testing.T, shape network.LinkShape) (*Server, *RemoteStore) {
	t.Helper()
	backing := NewMemStore()
	srv, err := NewServer("127.0.0.1:0", backing, shape)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := NewRemoteStore(srv.Addr(), shape)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestRemoteStoreSuite(t *testing.T) {
	_, client := newRemotePair(t, network.LinkShape{})
	storeSuite(t, client)
}

func TestRemoteNotFound(t *testing.T) {
	srv, client := newRemotePair(t, network.LinkShape{})
	_, err := client.Get("remote://" + srv.Addr() + "/mem://sha256:" + strings64("0"))
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

// TestRemoteErrorCodes pins the structured error classification: the
// server reports machine-readable codes (shared with the peer transport)
// and the client maps them to sentinel errors without inspecting message
// text. A server whose error strings change cannot break the mapping.
func TestRemoteErrorCodes(t *testing.T) {
	backing := NewMemStore()
	srv, err := NewServer("127.0.0.1:0", backing, network.LinkShape{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	for _, tc := range []struct {
		name string
		err  error
		code network.ErrCode
	}{
		{"not found", ErrNotFound, network.CodeNotFound},
		{"checksum", ErrChecksumMismatch, network.CodeChecksumMismatch},
		{"bad ref", ErrBadRef, network.CodeBadRequest},
		{"other", errors.New("disk on fire"), network.CodeInternal},
	} {
		if got := classify(tc.err); got != tc.code {
			t.Errorf("classify(%s) = %q, want %q", tc.name, got, tc.code)
		}
	}
	if resp := srv.handle(&remoteRequest{Op: "bogus"}); resp.Code != network.CodeBadRequest {
		t.Errorf("unknown op code = %q, want %q", resp.Code, network.CodeBadRequest)
	}
	if resp := srv.handle(&remoteRequest{Op: opGet, Key: "mem://sha256:" + strings64("0")}); resp.Code != network.CodeNotFound {
		t.Errorf("missing key code = %q, want %q", resp.Code, network.CodeNotFound)
	}
}

func strings64(s string) string {
	out := make([]byte, 64)
	for i := range out {
		out[i] = s[0]
	}
	return string(out)
}

func TestRemoteTamperDetection(t *testing.T) {
	backing := NewMemStore()
	srv, err := NewServer("127.0.0.1:0", backing, network.LinkShape{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := NewRemoteStore(srv.Addr(), network.LinkShape{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ref, err := client.Put([]byte("iot frame"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt server-side; Get must fail with a checksum error.
	key, err := client.localKey(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := backing.Corrupt(key); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(ref); !errors.Is(err, ErrChecksumMismatch) {
		t.Errorf("tampered Get = %v, want ErrChecksumMismatch", err)
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	srv, _ := newRemotePair(t, network.LinkShape{})
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := NewRemoteStore(srv.Addr(), network.LinkShape{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			data := bytes.Repeat([]byte{byte(i)}, 1024)
			ref, err := c.Put(data)
			if err != nil {
				errs <- err
				return
			}
			got, err := c.Get(ref)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- errors.New("round trip mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRemoteReconnects(t *testing.T) {
	srv, client := newRemotePair(t, network.LinkShape{})
	if _, err := client.Put([]byte("first")); err != nil {
		t.Fatal(err)
	}
	// Kill the client's connection from under it; next op must reconnect.
	client.mu.Lock()
	client.conn.Close()
	client.mu.Unlock()
	if _, err := client.Put([]byte("second")); err != nil {
		t.Fatalf("Put after connection drop: %v", err)
	}
	_ = srv
}

func TestShapedLinkAddsLatency(t *testing.T) {
	shape := network.LinkShape{Latency: 20 * time.Millisecond}
	_, client := newRemotePair(t, shape)
	start := time.Now()
	if _, err := client.Put([]byte("x")); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Client write shaped + server response shaped: >= 2x latency.
	if elapsed < 35*time.Millisecond {
		t.Errorf("shaped put took %v, want >= ~40ms", elapsed)
	}
}

func TestLinkShapeDelay(t *testing.T) {
	s := network.LinkShape{Latency: time.Millisecond, Mbps: 8}
	// 8 Mbps = 1 MB/s; 1000 bytes ≈ 1ms serialization + 1ms latency.
	d := s.Delay(1000)
	if d < 1900*time.Microsecond || d > 2100*time.Microsecond {
		t.Errorf("Delay(1000) = %v, want ~2ms", d)
	}
	if (network.LinkShape{}).Delay(1<<20) != 0 {
		t.Error("unshaped link should add no delay")
	}
	scaled := network.LinkShape{Latency: 10 * time.Millisecond, Scale: 0.1}
	if got := scaled.Delay(0); got != time.Millisecond {
		t.Errorf("scaled delay = %v, want 1ms", got)
	}
}
