// Package offchain implements HyperProv's off-chain data storage: the
// blockchain holds only provenance metadata, while payloads go to a
// pluggable store. The paper mounts an SSH file system (SSHFS) from a
// separate node; here the equivalent is a remote file server reached over
// TCP through a shaped link (latency + bandwidth), plus in-memory and
// local-directory stores for tests and single-machine runs. All stores are
// content-addressed by SHA-256, which is also the checksum recorded
// on-chain.
package offchain

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Errors returned by stores.
var (
	ErrNotFound         = errors.New("offchain: object not found")
	ErrChecksumMismatch = errors.New("offchain: data does not match checksum")
	ErrBadRef           = errors.New("offchain: malformed object reference")
)

// Checksum computes the canonical content checksum recorded on-chain.
func Checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// VerifyChecksum checks data against a checksum produced by Checksum; this
// is HyperProv's tamper-detection primitive for off-chain payloads.
func VerifyChecksum(data []byte, checksum string) error {
	if Checksum(data) != checksum {
		return ErrChecksumMismatch
	}
	return nil
}

// Store is the off-chain storage interface: content-addressed put/get.
type Store interface {
	// Put stores data and returns its location reference (a URI-style
	// string recorded in the on-chain provenance record).
	Put(data []byte) (ref string, err error)
	// Get retrieves the data for a reference.
	Get(ref string) ([]byte, error)
	// Close releases resources.
	Close() error
}

// MemStore is an in-memory store for tests and examples.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]byte
}

var _ Store = (*MemStore)(nil)

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Put stores data under its content hash.
func (m *MemStore) Put(data []byte) (string, error) {
	cp := make([]byte, len(data))
	copy(cp, data)
	key := Checksum(data)
	m.mu.Lock()
	m.data[key] = cp
	m.mu.Unlock()
	return "mem://" + key, nil
}

// Get retrieves by reference and verifies content integrity.
func (m *MemStore) Get(ref string) ([]byte, error) {
	key, ok := strings.CutPrefix(ref, "mem://")
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrBadRef, ref)
	}
	m.mu.RLock()
	data, found := m.data[key]
	m.mu.RUnlock()
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, ref)
	}
	out := make([]byte, len(data))
	copy(out, data)
	if err := VerifyChecksum(out, key); err != nil {
		return nil, err
	}
	return out, nil
}

// Corrupt flips a byte of the stored object — test hook for the paper's
// tamper-detection scenario (checksum mismatch on retrieval).
func (m *MemStore) Corrupt(ref string) error {
	key, ok := strings.CutPrefix(ref, "mem://")
	if !ok {
		return fmt.Errorf("%w: %q", ErrBadRef, ref)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, found := m.data[key]
	if !found {
		return fmt.Errorf("%w: %q", ErrNotFound, ref)
	}
	if len(data) > 0 {
		data[0] ^= 0xFF
	}
	return nil
}

// Len returns the number of stored objects.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// Close is a no-op.
func (m *MemStore) Close() error { return nil }

// DirStore stores objects as files under a directory — the shape of the
// paper's SSHFS mount seen from the client (each data item is a file).
type DirStore struct {
	root string
}

var _ Store = (*DirStore)(nil)

// putTmpPattern names in-flight Put temp files; they are invisible to Get
// (objects are addressed by their hex hash) and swept on open.
const putTmpPattern = ".put-*.tmp"

// NewDirStore creates (if needed) and uses dir as the object root. Temp
// files left behind by a Put cut short by a crash are swept: they were
// never renamed into place, so no reference can point at them.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("offchain: create root: %w", err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, putTmpPattern)); err == nil {
		for _, path := range stale {
			os.Remove(path)
		}
	}
	return &DirStore{root: dir}, nil
}

func (d *DirStore) path(key string) string {
	// Keys are "sha256:<hex>"; use the hex part as the filename.
	name := strings.TrimPrefix(key, "sha256:")
	return filepath.Join(d.root, name)
}

// Put writes data to a content-addressed file. The write is atomic with
// the same discipline as the recovery checkpoints (temp file + fsync +
// rename + directory fsync): the content hash is the key clients record
// on-chain, so a crash mid-store must never leave a truncated blob behind
// a valid hash — either the complete object is durably in place or
// nothing is.
func (d *DirStore) Put(data []byte) (string, error) {
	key := Checksum(data)
	final := d.path(key)
	tmp, err := os.CreateTemp(d.root, putTmpPattern)
	if err != nil {
		return "", fmt.Errorf("offchain: temp object: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return "", fmt.Errorf("offchain: write object: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", fmt.Errorf("offchain: sync object: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("offchain: close object: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("offchain: publish object: %w", err)
	}
	syncDir(d.root)
	return "file://" + key, nil
}

// syncDir fsyncs a directory so a just-renamed object survives power loss.
// Best-effort, matching internal/recovery: some filesystems refuse
// directory fsync.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// Get reads and verifies a content-addressed file.
func (d *DirStore) Get(ref string) ([]byte, error) {
	key, ok := strings.CutPrefix(ref, "file://")
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrBadRef, ref)
	}
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, ref)
		}
		return nil, fmt.Errorf("offchain: read object: %w", err)
	}
	if err := VerifyChecksum(data, key); err != nil {
		return nil, err
	}
	return data, nil
}

// Close is a no-op.
func (d *DirStore) Close() error { return nil }
