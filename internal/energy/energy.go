// Package energy models the power measurement setup of the paper's Fig 3:
// an ODROID Smart Power meter between the RPi and its supply, sampled while
// HyperProv runs at different load levels over 10-minute intervals. The
// power model is anchored to the paper's measured values — an idle RPi
// draws barely less than one running an idle HLF network (2.71 W), peak
// load draws only ~10.7 % more than idle, and the maximum observed draw is
// 3.64 W.
package energy

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// PowerModel maps device utilization to instantaneous power draw.
type PowerModel struct {
	// IdleWatts is the device idle (no blockchain processes).
	IdleWatts float64
	// HLFIdleWatts is the draw with peers+client running but no
	// transactions (the paper's 2.71 W).
	HLFIdleWatts float64
	// LoadWatts is the sustained draw at full transaction load
	// (idle + 10.7 % in the paper).
	LoadWatts float64
	// MaxWatts bounds transient spikes (the paper's 3.64 W).
	MaxWatts float64
	// SpikePct is the probability of a transient spike sample at high
	// utilization.
	SpikePct float64
}

// RPiPowerModel returns the model calibrated to the paper's RPi 3B+
// measurements.
func RPiPowerModel() PowerModel {
	return PowerModel{
		IdleWatts:    2.65,
		HLFIdleWatts: 2.71,
		LoadWatts:    2.71 * 1.107, // ≈ 3.00 W: "10.7% more ... compared to idle"
		MaxWatts:     3.64,
		SpikePct:     0.02,
	}
}

// DesktopPowerModel returns a rough desktop-class model (not measured in
// the paper; used by the comparison ablation).
func DesktopPowerModel() PowerModel {
	return PowerModel{
		IdleWatts:    38,
		HLFIdleWatts: 42,
		LoadWatts:    95,
		MaxWatts:     130,
		SpikePct:     0.02,
	}
}

// Power returns the modeled draw at the given utilization in [0, 1].
// hlfRunning distinguishes a bare idle device from one running the idle
// blockchain stack.
func (m PowerModel) Power(util float64, hlfRunning bool) float64 {
	if !hlfRunning {
		return m.IdleWatts
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return m.HLFIdleWatts + (m.LoadWatts-m.HLFIdleWatts)*util
}

// Sample is one meter reading.
type Sample struct {
	// At is the offset from the start of metering (modeled time).
	At time.Duration
	// Watts is the instantaneous draw.
	Watts float64
	// Util is the utilization that produced it.
	Util float64
}

// Meter accumulates samples and integrates energy, like the ODROID meter's
// logging mode.
type Meter struct {
	model   PowerModel
	rng     *rand.Rand
	samples []Sample
}

// NewMeter creates a meter for the given model. seed fixes spike noise.
func NewMeter(model PowerModel, seed int64) *Meter {
	return &Meter{model: model, rng: rand.New(rand.NewSource(seed))}
}

// Record takes one reading at modeled offset at with the given utilization.
func (m *Meter) Record(at time.Duration, util float64, hlfRunning bool) {
	w := m.model.Power(util, hlfRunning)
	// Transient spikes at high load, bounded by MaxWatts.
	if hlfRunning && util > 0.5 && m.rng.Float64() < m.model.SpikePct {
		w += (m.model.MaxWatts - w) * m.rng.Float64()
	}
	if w > m.model.MaxWatts {
		w = m.model.MaxWatts
	}
	m.samples = append(m.samples, Sample{At: at, Watts: w, Util: util})
}

// Samples returns a copy of all readings.
func (m *Meter) Samples() []Sample {
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Errors returned by report computation.
var ErrNoSamples = errors.New("energy: no samples recorded")

// Report summarizes a metering window.
type Report struct {
	Duration time.Duration
	AvgWatts float64
	MaxWatts float64
	// EnergyJoules is the integral of power over the window.
	EnergyJoules float64
	AvgUtil      float64
}

// Summarize integrates the recorded samples (trapezoidal rule over sample
// offsets).
func (m *Meter) Summarize() (Report, error) {
	if len(m.samples) == 0 {
		return Report{}, ErrNoSamples
	}
	var r Report
	var sumW, sumU float64
	for i, s := range m.samples {
		sumW += s.Watts
		sumU += s.Util
		if s.Watts > r.MaxWatts {
			r.MaxWatts = s.Watts
		}
		if i > 0 {
			dt := s.At - m.samples[i-1].At
			r.EnergyJoules += (s.Watts + m.samples[i-1].Watts) / 2 * dt.Seconds()
		}
	}
	r.AvgWatts = sumW / float64(len(m.samples))
	r.AvgUtil = sumU / float64(len(m.samples))
	r.Duration = m.samples[len(m.samples)-1].At - m.samples[0].At
	return r, nil
}

// Phase describes one Fig-3 load phase.
type Phase struct {
	// Name labels the phase ("idle", "idle+HLF", "load 50%", "peak").
	Name string
	// Duration is the modeled phase length (10 minutes in the paper).
	Duration time.Duration
	// Util is the device utilization during the phase.
	Util float64
	// HLFRunning is false only for the bare-idle baseline phase.
	HLFRunning bool
}

// PhaseResult is one row of the Fig-3 table.
type PhaseResult struct {
	Phase  Phase
	Report Report
}

// RunPhases meters a sequence of phases in virtual time, sampling at the
// given interval, and returns one result per phase. No wall-clock time
// passes: Fig 3 is a pure power-integration experiment once utilizations
// are known.
func RunPhases(model PowerModel, phases []Phase, sampleEvery time.Duration, seed int64) ([]PhaseResult, error) {
	if sampleEvery <= 0 {
		return nil, errors.New("energy: non-positive sample interval")
	}
	out := make([]PhaseResult, 0, len(phases))
	for i, ph := range phases {
		if ph.Duration <= 0 {
			return nil, fmt.Errorf("energy: phase %q has non-positive duration", ph.Name)
		}
		meter := NewMeter(model, seed+int64(i)*977)
		for at := time.Duration(0); at <= ph.Duration; at += sampleEvery {
			meter.Record(at, ph.Util, ph.HLFRunning)
		}
		rep, err := meter.Summarize()
		if err != nil {
			return nil, err
		}
		out = append(out, PhaseResult{Phase: ph, Report: rep})
	}
	return out, nil
}

// FormatTable renders phase results as the Fig-3 style report.
func FormatTable(results []PhaseResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %10s %10s %12s %8s\n",
		"phase", "duration", "avg W", "max W", "energy J", "util")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-14s %10s %10.2f %10.2f %12.1f %7.0f%%\n",
			r.Phase.Name, r.Report.Duration.Truncate(time.Second),
			r.Report.AvgWatts, r.Report.MaxWatts, r.Report.EnergyJoules,
			r.Report.AvgUtil*100)
	}
	return sb.String()
}
