package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPowerModelAnchors(t *testing.T) {
	m := RPiPowerModel()
	// Bare idle below HLF idle, which is the paper's 2.71 W.
	if got := m.Power(0, false); got != m.IdleWatts {
		t.Errorf("bare idle = %.2f", got)
	}
	if got := m.Power(0, true); math.Abs(got-2.71) > 1e-9 {
		t.Errorf("HLF idle = %.2f, want 2.71", got)
	}
	// Peak sustained ≈ idle + 10.7%.
	peak := m.Power(1, true)
	if ratio := peak / 2.71; math.Abs(ratio-1.107) > 0.001 {
		t.Errorf("peak/idle = %.4f, want 1.107", ratio)
	}
	if peak >= m.MaxWatts {
		t.Errorf("sustained peak %.2f not below max %.2f", peak, m.MaxWatts)
	}
}

func TestPowerMonotonicInUtil(t *testing.T) {
	m := RPiPowerModel()
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		p := m.Power(u, true)
		if p < prev {
			t.Fatalf("power not monotonic at util %.2f", u)
		}
		prev = p
	}
	// Clamping.
	if m.Power(-5, true) != m.Power(0, true) || m.Power(5, true) != m.Power(1, true) {
		t.Error("utilization not clamped")
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(PowerModel{HLFIdleWatts: 2, LoadWatts: 4, MaxWatts: 10}, 1)
	// Constant 2W for 10 seconds = 20 J.
	for at := time.Duration(0); at <= 10*time.Second; at += time.Second {
		m.Record(at, 0, true)
	}
	rep, err := m.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.EnergyJoules-20) > 1e-9 {
		t.Errorf("energy = %.2f J, want 20", rep.EnergyJoules)
	}
	if math.Abs(rep.AvgWatts-2) > 1e-9 {
		t.Errorf("avg = %.2f W", rep.AvgWatts)
	}
	if rep.Duration != 10*time.Second {
		t.Errorf("duration = %v", rep.Duration)
	}
}

func TestMeterNoSamples(t *testing.T) {
	m := NewMeter(RPiPowerModel(), 1)
	if _, err := m.Summarize(); err == nil {
		t.Error("Summarize of empty meter succeeded")
	}
}

func TestSpikesBoundedByMax(t *testing.T) {
	model := RPiPowerModel()
	model.SpikePct = 1.0 // force spikes
	m := NewMeter(model, 42)
	for at := time.Duration(0); at < time.Minute; at += time.Second {
		m.Record(at, 1.0, true)
	}
	for _, s := range m.Samples() {
		if s.Watts > model.MaxWatts+1e-9 {
			t.Fatalf("sample %.3f exceeds max %.2f", s.Watts, model.MaxWatts)
		}
	}
	rep, err := m.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxWatts <= model.LoadWatts {
		t.Error("forced spikes never exceeded sustained load draw")
	}
}

func TestRunPhasesFig3Shape(t *testing.T) {
	phases := []Phase{
		{Name: "idle", Duration: 10 * time.Minute, Util: 0, HLFRunning: false},
		{Name: "idle+HLF", Duration: 10 * time.Minute, Util: 0, HLFRunning: true},
		{Name: "load-50", Duration: 10 * time.Minute, Util: 0.5, HLFRunning: true},
		{Name: "peak", Duration: 10 * time.Minute, Util: 1.0, HLFRunning: true},
	}
	results, err := RunPhases(RPiPowerModel(), phases, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	idle := results[0].Report.AvgWatts
	hlfIdle := results[1].Report.AvgWatts
	half := results[2].Report.AvgWatts
	peak := results[3].Report.AvgWatts
	// Paper's shape: idle < idle+HLF (barely) < load < peak; peak ≈ +10.7%.
	if !(idle < hlfIdle && hlfIdle < half && half < peak) {
		t.Errorf("ordering violated: %.2f %.2f %.2f %.2f", idle, hlfIdle, half, peak)
	}
	if (hlfIdle-idle)/idle > 0.05 {
		t.Errorf("HLF idle overhead = %.1f%%, want 'barely any'", (hlfIdle-idle)/idle*100)
	}
	if r := peak / hlfIdle; r < 1.08 || r > 1.16 {
		t.Errorf("peak/HLF-idle = %.3f, want ~1.107", r)
	}
}

func TestRunPhasesValidation(t *testing.T) {
	if _, err := RunPhases(RPiPowerModel(), []Phase{{Name: "x", Duration: time.Minute}}, 0, 1); err == nil {
		t.Error("zero sample interval accepted")
	}
	if _, err := RunPhases(RPiPowerModel(), []Phase{{Name: "x"}}, time.Second, 1); err == nil {
		t.Error("zero-duration phase accepted")
	}
}

func TestFormatTable(t *testing.T) {
	results, err := RunPhases(RPiPowerModel(), []Phase{
		{Name: "idle", Duration: time.Minute, HLFRunning: false},
	}, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable(results)
	if !strings.Contains(out, "idle") || !strings.Contains(out, "avg W") {
		t.Errorf("table = %s", out)
	}
}

// Property: energy over a constant-utilization window equals power x time.
func TestQuickConstantPowerEnergy(t *testing.T) {
	f := func(u8 uint8, secs uint8) bool {
		util := float64(u8) / 255
		n := int(secs%120) + 2
		model := PowerModel{HLFIdleWatts: 2.71, LoadWatts: 3.0, MaxWatts: 3.64}
		m := NewMeter(model, 1)
		for at := 0; at < n; at++ {
			m.Record(time.Duration(at)*time.Second, util, true)
		}
		rep, err := m.Summarize()
		if err != nil {
			return false
		}
		want := model.Power(util, true) * float64(n-1)
		return math.Abs(rep.EnergyJoules-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
