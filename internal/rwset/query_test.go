package rwset

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

func indexedFixture(t *testing.T) *statedb.IndexedStore {
	t.Helper()
	s, err := statedb.NewIndexed(richquery.IndexDef{Name: "by-owner", Field: "owner"})
	if err != nil {
		t.Fatal(err)
	}
	b := statedb.NewUpdateBatch()
	for i, key := range []string{"k0", "k1", "k2"} {
		doc, _ := json.Marshal(map[string]any{"owner": "alice", "n": i})
		b.Put(key, doc, statedb.Version{BlockNum: 1, TxNum: uint64(i)})
	}
	if err := s.ApplyUpdates(b, statedb.Version{BlockNum: 1, TxNum: 5}); err != nil {
		t.Fatal(err)
	}
	return s
}

func aliceQueryRWS(t *testing.T, s *statedb.IndexedStore) *ReadWriteSet {
	t.Helper()
	query := []byte(`{"selector":{"owner":"alice"}}`)
	res, err := s.ExecuteQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	keys := make([]string, len(res.KVs))
	for i, kv := range res.KVs {
		keys[i] = kv.Key
		v := kv.Version
		b.AddRead(kv.Key, &v)
	}
	b.AddQueryRead(query, keys)
	return b.Build()
}

func TestQueryReadValidates(t *testing.T) {
	s := indexedFixture(t)
	rws := aliceQueryRWS(t, s)
	if len(rws.QueryReads) != 1 || len(rws.QueryReads[0].Keys) != 3 {
		t.Fatalf("rwset = %+v", rws)
	}
	if err := Validate(rws, s, nil); err != nil {
		t.Fatalf("unchanged state should validate: %v", err)
	}

	// Marshal/Unmarshal round trip keeps query reads intact.
	raw, err := rws.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(back, s, nil); err != nil {
		t.Fatalf("round-tripped rwset should validate: %v", err)
	}
}

func TestQueryReadPhantomDetected(t *testing.T) {
	s := indexedFixture(t)
	rws := aliceQueryRWS(t, s)

	// A new record matching the selector commits after simulation: the
	// re-executed query sees an extra key.
	b := statedb.NewUpdateBatch()
	doc, _ := json.Marshal(map[string]any{"owner": "alice", "n": 9})
	b.Put("k9", doc, statedb.Version{BlockNum: 2, TxNum: 0})
	if err := s.ApplyUpdates(b, statedb.Version{BlockNum: 2, TxNum: 1}); err != nil {
		t.Fatal(err)
	}
	err := Validate(rws, s, nil)
	if err == nil || !strings.Contains(err.Error(), "phantom") {
		t.Fatalf("phantom not detected: %v", err)
	}
}

func TestQueryReadResultChangeDetected(t *testing.T) {
	s := indexedFixture(t)
	rws := aliceQueryRWS(t, s)

	// A result document leaves the selector (owner changes): membership
	// shifts and the re-executed key list differs.
	b := statedb.NewUpdateBatch()
	doc, _ := json.Marshal(map[string]any{"owner": "bob", "n": 0})
	b.Put("k0", doc, statedb.Version{BlockNum: 2, TxNum: 0})
	if err := s.ApplyUpdates(b, statedb.Version{BlockNum: 2, TxNum: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(rws, s, nil); err == nil {
		t.Fatal("membership change not detected")
	}
}

func TestQueryReadBlockWriteConflict(t *testing.T) {
	// Even without a rich-query state database, a key observed by the
	// query that was written earlier in the same block must conflict.
	plain := statedb.New()
	b := statedb.NewUpdateBatch()
	doc, _ := json.Marshal(map[string]any{"owner": "alice"})
	b.Put("k0", doc, statedb.Version{BlockNum: 1, TxNum: 0})
	if err := plain.ApplyUpdates(b, statedb.Version{BlockNum: 1, TxNum: 1}); err != nil {
		t.Fatal(err)
	}
	builder := NewBuilder()
	builder.AddQueryRead([]byte(`{"selector":{"owner":"alice"}}`), []string{"k0"})
	rws := builder.Build()
	if err := Validate(rws, plain, map[string]bool{"k0": true}); err == nil {
		t.Fatal("earlier-in-block write not detected")
	}
	if err := Validate(rws, plain, nil); err != nil {
		t.Fatalf("plain store without conflicts should validate: %v", err)
	}
}
