package rwset

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hyperprov/hyperprov/internal/statedb"
)

func commit(t *testing.T, s *statedb.Store, ver statedb.Version, kvs map[string]string) {
	t.Helper()
	b := statedb.NewUpdateBatch()
	for k, v := range kvs {
		b.Put(k, []byte(v), ver)
	}
	if err := s.ApplyUpdates(b, ver); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
}

func TestBuilderReadYourWrites(t *testing.T) {
	b := NewBuilder()
	b.AddWrite("k", []byte("v1"))
	val, del, ok := b.PendingWrite("k")
	if !ok || del || !bytes.Equal(val, []byte("v1")) {
		t.Fatalf("PendingWrite = %q %v %v", val, del, ok)
	}
	b.AddDelete("k")
	_, del, ok = b.PendingWrite("k")
	if !ok || !del {
		t.Fatalf("PendingWrite after delete = %v %v", del, ok)
	}
}

func TestBuilderFirstReadWins(t *testing.T) {
	b := NewBuilder()
	v1 := statedb.Version{BlockNum: 1}
	v2 := statedb.Version{BlockNum: 2}
	b.AddRead("k", &v1)
	b.AddRead("k", &v2) // ignored: simulation sees a stable view
	rws := b.Build()
	if len(rws.Reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(rws.Reads))
	}
	if rws.Reads[0].Version.BlockNum != 1 {
		t.Errorf("read version = %v, want block 1", rws.Reads[0].Version)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := NewBuilder()
	v := statedb.Version{BlockNum: 3, TxNum: 1}
	b.AddRead("r1", &v)
	b.AddRead("r0", nil)
	b.AddWrite("w1", []byte("x"))
	b.AddDelete("w0")
	b.AddRangeRead("a", "z", []string{"b", "c"})
	rws := b.Build()

	raw, err := rws.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !rws.Equal(got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", rws, got)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	mk := func(order []string) []byte {
		b := NewBuilder()
		for _, k := range order {
			b.AddWrite(k, []byte(k))
		}
		raw, err := b.Build().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a := mk([]string{"x", "a", "m"})
	b := mk([]string{"m", "x", "a"})
	if !bytes.Equal(a, b) {
		t.Errorf("marshal not deterministic:\n%s\n%s", a, b)
	}
}

func TestValidateCleanRead(t *testing.T) {
	s := statedb.New()
	commit(t, s, statedb.Version{BlockNum: 1}, map[string]string{"k": "v"})
	v := statedb.Version{BlockNum: 1}
	rws := &ReadWriteSet{Reads: []Read{{Key: "k", Version: &v}}}
	if err := Validate(rws, s, nil); err != nil {
		t.Errorf("Validate clean read: %v", err)
	}
}

func TestValidateConflicts(t *testing.T) {
	s := statedb.New()
	commit(t, s, statedb.Version{BlockNum: 2}, map[string]string{"k": "v2"})
	old := statedb.Version{BlockNum: 1}
	cur := statedb.Version{BlockNum: 2}

	tests := []struct {
		name        string
		rws         *ReadWriteSet
		blockWrites map[string]bool
		wantErr     bool
	}{
		{"stale version", &ReadWriteSet{Reads: []Read{{Key: "k", Version: &old}}}, nil, true},
		{"current version", &ReadWriteSet{Reads: []Read{{Key: "k", Version: &cur}}}, nil, false},
		{"created since sim", &ReadWriteSet{Reads: []Read{{Key: "k", Version: nil}}}, nil, true},
		{"deleted since sim", &ReadWriteSet{Reads: []Read{{Key: "gone", Version: &old}}}, nil, true},
		{"absent stays absent", &ReadWriteSet{Reads: []Read{{Key: "gone", Version: nil}}}, nil, false},
		{"intra-block conflict", &ReadWriteSet{Reads: []Read{{Key: "k", Version: &cur}}},
			map[string]bool{"k": true}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Validate(tt.rws, s, tt.blockWrites)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidatePhantom(t *testing.T) {
	s := statedb.New()
	commit(t, s, statedb.Version{BlockNum: 1}, map[string]string{"a": "1", "b": "2"})

	ok := &ReadWriteSet{RangeReads: []RangeRead{{StartKey: "a", EndKey: "z", Keys: []string{"a", "b"}}}}
	if err := Validate(ok, s, nil); err != nil {
		t.Errorf("clean range: %v", err)
	}
	phantomCount := &ReadWriteSet{RangeReads: []RangeRead{{StartKey: "a", EndKey: "z", Keys: []string{"a"}}}}
	if err := Validate(phantomCount, s, nil); err == nil {
		t.Error("phantom (extra key) not detected")
	}
	phantomKey := &ReadWriteSet{RangeReads: []RangeRead{{StartKey: "a", EndKey: "z", Keys: []string{"a", "c"}}}}
	if err := Validate(phantomKey, s, nil); err == nil {
		t.Error("phantom (changed key) not detected")
	}
	intraBlock := &ReadWriteSet{RangeReads: []RangeRead{{StartKey: "a", EndKey: "z", Keys: []string{"a", "b"}}}}
	if err := Validate(intraBlock, s, map[string]bool{"b": true}); err == nil {
		t.Error("intra-block range conflict not detected")
	}
}

// Property: of N transactions that all read the same key version and write
// it, serial MVCC validation lets exactly the first through.
func TestQuickSerializability(t *testing.T) {
	f := func(n uint8) bool {
		txs := int(n%8) + 2
		s := statedb.New()
		ver := statedb.Version{BlockNum: 1}
		b := statedb.NewUpdateBatch()
		b.Put("counter", []byte("0"), ver)
		if err := s.ApplyUpdates(b, ver); err != nil {
			return false
		}
		// All transactions simulated against the same snapshot.
		rwsets := make([]*ReadWriteSet, txs)
		for i := range rwsets {
			bld := NewBuilder()
			bld.AddRead("counter", &ver)
			bld.AddWrite("counter", []byte(fmt.Sprintf("%d", i)))
			rwsets[i] = bld.Build()
		}
		// Validate in block order, applying winners' writes.
		blockWrites := map[string]bool{}
		valid := 0
		for txNum, rws := range rwsets {
			if err := Validate(rws, s, blockWrites); err != nil {
				continue
			}
			valid++
			ub := statedb.NewUpdateBatch()
			for _, w := range rws.Writes {
				blockWrites[w.Key] = true
				ub.Put(w.Key, w.Value, statedb.Version{BlockNum: 2, TxNum: uint64(txNum)})
			}
			_ = ub // writes applied at end of block in the real pipeline
		}
		return valid == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: validation of disjoint key sets always succeeds.
func TestQuickDisjointTxsAllValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := statedb.New()
		ver := statedb.Version{BlockNum: 1}
		b := statedb.NewUpdateBatch()
		n := rng.Intn(10) + 2
		for i := 0; i < n; i++ {
			b.Put(fmt.Sprintf("k%d", i), []byte("v"), ver)
		}
		if err := s.ApplyUpdates(b, ver); err != nil {
			return false
		}
		blockWrites := map[string]bool{}
		for i := 0; i < n; i++ {
			bld := NewBuilder()
			key := fmt.Sprintf("k%d", i)
			bld.AddRead(key, &ver)
			bld.AddWrite(key, []byte("new"))
			if err := Validate(bld.Build(), s, blockWrites); err != nil {
				return false
			}
			blockWrites[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
