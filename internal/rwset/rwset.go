// Package rwset defines transaction read/write sets and MVCC validation,
// the mechanism at the heart of Fabric's execute–order–validate pipeline.
// Chaincode simulation records every state read (with the version observed)
// and every write; at commit time the validator re-checks each read version
// against current state and invalidates transactions that lost a conflict.
package rwset

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/hyperprov/hyperprov/internal/statedb"
)

// Read records one state read and the version observed during simulation.
// Version is nil when the key did not exist at simulation time.
type Read struct {
	Key     string           `json:"key"`
	Version *statedb.Version `json:"version,omitempty"`
}

// Write records one state write (or delete) produced during simulation.
type Write struct {
	Key      string `json:"key"`
	Value    []byte `json:"value,omitempty"`
	IsDelete bool   `json:"isDelete,omitempty"`
}

// RangeRead records a range query performed during simulation; phantom
// protection re-executes the range at validation time and compares results.
type RangeRead struct {
	StartKey string   `json:"startKey"`
	EndKey   string   `json:"endKey"`
	Keys     []string `json:"keys"` // keys observed, in order
}

// QueryRead records a rich (Mango) query performed during simulation: the
// query document itself plus the keys it returned, in order. It is the
// rich-query analog of RangeRead: when the committing state database can
// execute rich queries, validation re-runs the query and fails the
// transaction if the result set changed (phantom protection); otherwise it
// falls back to checking the observed keys against earlier-in-block writes.
type QueryRead struct {
	Query json.RawMessage `json:"query"`
	Keys  []string        `json:"keys"` // keys observed, in order
}

// ReadWriteSet is the complete effect of simulating one transaction.
type ReadWriteSet struct {
	Reads      []Read      `json:"reads,omitempty"`
	Writes     []Write     `json:"writes,omitempty"`
	RangeReads []RangeRead `json:"rangeReads,omitempty"`
	QueryReads []QueryRead `json:"queryReads,omitempty"`
}

// Marshal encodes the rwset into its canonical binary form, deterministic
// by construction (reads/writes sorted by key, length-prefixed fields).
// Every endorser of one simulation therefore produces identical bytes.
func (rws *ReadWriteSet) Marshal() ([]byte, error) {
	rws.normalize()
	return appendRWSet(nil, rws), nil
}

// Unmarshal decodes an rwset produced by Marshal. Legacy JSON rwsets —
// embedded in envelopes persisted by PR ≤ 9 ledgers — are recognized by
// their '{' first byte and decode transparently.
func Unmarshal(b []byte) (*ReadWriteSet, error) {
	if len(b) > 0 && b[0] == '{' {
		var rws ReadWriteSet
		if err := json.Unmarshal(b, &rws); err != nil {
			return nil, fmt.Errorf("rwset: unmarshal: %w", err)
		}
		return &rws, nil
	}
	return decodeRWSet(b)
}

func (rws *ReadWriteSet) normalize() {
	sort.Slice(rws.Reads, func(i, j int) bool { return rws.Reads[i].Key < rws.Reads[j].Key })
	sort.Slice(rws.Writes, func(i, j int) bool { return rws.Writes[i].Key < rws.Writes[j].Key })
}

// Bounds is one half-open key interval [Start, End) touched by a range
// read. The conflict-graph scheduler treats a write landing inside the
// bounds as a potential phantom for the reading transaction.
type Bounds struct {
	Start, End string
}

// Contains reports whether key falls inside the half-open interval.
func (b Bounds) Contains(key string) bool {
	return key >= b.Start && (b.End == "" || key < b.End)
}

// Footprint is the key-space touchprint of one transaction, extracted from
// an already-deserialized rwset — the conflict-graph builder consumes it
// without re-unmarshaling anything. ReadKeys covers every key whose
// earlier-in-block write status the MVCC walk consults: point reads plus
// the observed result keys of rich queries. Range reads are represented by
// their bounds (RangeBounds), not their observed keys, because validation
// re-scans the live range — any write inside the bounds can change the
// verdict, observed or not.
type Footprint struct {
	// WriteKeys are the keys written or deleted, in normalized order.
	WriteKeys []string
	// ReadKeys are the point-read keys plus rich-query observed keys.
	ReadKeys []string
	// RangeBounds are the [start, end) intervals of range reads.
	RangeBounds []Bounds
}

// Footprint extracts the transaction's key-space touchprint. It walks the
// decoded slices directly; no serialization round-trip is involved.
func (rws *ReadWriteSet) Footprint() Footprint {
	fp := Footprint{}
	if n := len(rws.Writes); n > 0 {
		fp.WriteKeys = make([]string, n)
		for i, w := range rws.Writes {
			fp.WriteKeys[i] = w.Key
		}
	}
	nReads := len(rws.Reads)
	for _, qr := range rws.QueryReads {
		nReads += len(qr.Keys)
	}
	if nReads > 0 {
		fp.ReadKeys = make([]string, 0, nReads)
		for _, r := range rws.Reads {
			fp.ReadKeys = append(fp.ReadKeys, r.Key)
		}
		for _, qr := range rws.QueryReads {
			fp.ReadKeys = append(fp.ReadKeys, qr.Keys...)
		}
	}
	if len(rws.RangeReads) > 0 {
		fp.RangeBounds = make([]Bounds, len(rws.RangeReads))
		for i, rr := range rws.RangeReads {
			fp.RangeBounds[i] = Bounds{Start: rr.StartKey, End: rr.EndKey}
		}
	}
	return fp
}

// Equal reports whether two rwsets have identical normalized content. The
// endorsement step uses this to confirm that all endorsing peers simulated
// the same effect.
func (rws *ReadWriteSet) Equal(o *ReadWriteSet) bool {
	a, err := rws.Marshal()
	if err != nil {
		return false
	}
	b, err := o.Marshal()
	if err != nil {
		return false
	}
	return string(a) == string(b)
}

// Builder collects reads and writes during chaincode simulation. Reads of
// keys already written within the same simulation are served from the write
// cache and do not add read dependencies (read-your-writes).
type Builder struct {
	reads      map[string]*statedb.Version
	writes     map[string]Write
	rangeReads []RangeRead
	queryReads []QueryRead
}

// NewBuilder creates an empty rwset builder.
func NewBuilder() *Builder {
	return &Builder{
		reads:  make(map[string]*statedb.Version),
		writes: make(map[string]Write),
	}
}

// AddRead records that key was read at the given version (nil if absent).
// Only the first read of a key is recorded; simulation sees a stable view.
func (b *Builder) AddRead(key string, ver *statedb.Version) {
	if _, seen := b.reads[key]; seen {
		return
	}
	if ver != nil {
		v := *ver
		b.reads[key] = &v
	} else {
		b.reads[key] = nil
	}
}

// AddWrite records a write of value to key.
func (b *Builder) AddWrite(key string, value []byte) {
	val := make([]byte, len(value))
	copy(val, value)
	b.writes[key] = Write{Key: key, Value: val}
}

// AddDelete records a deletion of key.
func (b *Builder) AddDelete(key string) {
	b.writes[key] = Write{Key: key, IsDelete: true}
}

// AddRangeRead records a range query and the keys it observed.
func (b *Builder) AddRangeRead(start, end string, keys []string) {
	ks := make([]string, len(keys))
	copy(ks, keys)
	b.rangeReads = append(b.rangeReads, RangeRead{StartKey: start, EndKey: end, Keys: ks})
}

// AddQueryRead records a rich query and the keys it observed.
func (b *Builder) AddQueryRead(query []byte, keys []string) {
	q := make(json.RawMessage, len(query))
	copy(q, query)
	ks := make([]string, len(keys))
	copy(ks, keys)
	b.queryReads = append(b.queryReads, QueryRead{Query: q, Keys: ks})
}

// PendingWrite returns the in-simulation written value for key, if any.
// deleted reports whether the pending write is a delete.
func (b *Builder) PendingWrite(key string) (value []byte, deleted, ok bool) {
	w, ok := b.writes[key]
	if !ok {
		return nil, false, false
	}
	return w.Value, w.IsDelete, true
}

// Build produces the final normalized rwset.
func (b *Builder) Build() *ReadWriteSet {
	rws := &ReadWriteSet{}
	for key, ver := range b.reads {
		rws.Reads = append(rws.Reads, Read{Key: key, Version: ver})
	}
	for _, w := range b.writes {
		rws.Writes = append(rws.Writes, w)
	}
	rws.RangeReads = append(rws.RangeReads, b.rangeReads...)
	rws.QueryReads = append(rws.QueryReads, b.queryReads...)
	rws.normalize()
	return rws
}

// Validate performs the MVCC check for one transaction against current
// committed state, also considering writes applied earlier in the same
// block (blockWrites). It returns nil if every read version still matches.
// It works against any StateDB implementation; rich-query phantom checks
// engage only when the state database supports rich queries.
func Validate(rws *ReadWriteSet, state statedb.StateDB, blockWrites map[string]bool) error {
	for _, r := range rws.Reads {
		if blockWrites[r.Key] {
			return fmt.Errorf("rwset: mvcc conflict on %q: written earlier in block", r.Key)
		}
		cur, ok := state.GetVersion(r.Key)
		switch {
		case r.Version == nil && ok:
			return fmt.Errorf("rwset: mvcc conflict on %q: key created since simulation", r.Key)
		case r.Version != nil && !ok:
			return fmt.Errorf("rwset: mvcc conflict on %q: key deleted since simulation", r.Key)
		case r.Version != nil && cur.Compare(*r.Version) != 0:
			return fmt.Errorf("rwset: mvcc conflict on %q: version %v != simulated %v",
				r.Key, cur, *r.Version)
		}
	}
	for _, rr := range rws.RangeReads {
		if err := validateRange(rr, state, blockWrites); err != nil {
			return err
		}
	}
	for _, qr := range rws.QueryReads {
		if err := validateQuery(qr, state, blockWrites); err != nil {
			return err
		}
	}
	return nil
}

func validateRange(rr RangeRead, state statedb.StateDB, blockWrites map[string]bool) error {
	// Stream the current range against the simulated keys: the scan stops
	// at the first divergence instead of materializing the whole range.
	it := state.GetRange(rr.StartKey, rr.EndKey)
	defer it.Close()
	for i := 0; ; i++ {
		kv, ok := it.Next()
		if !ok {
			if i != len(rr.Keys) {
				return fmt.Errorf("rwset: phantom in range [%q,%q): %d keys now vs %d simulated",
					rr.StartKey, rr.EndKey, i, len(rr.Keys))
			}
			return nil
		}
		if i >= len(rr.Keys) {
			return fmt.Errorf("rwset: phantom in range [%q,%q): more keys now than %d simulated",
				rr.StartKey, rr.EndKey, len(rr.Keys))
		}
		if kv.Key != rr.Keys[i] {
			return fmt.Errorf("rwset: phantom in range [%q,%q): key %q != simulated %q",
				rr.StartKey, rr.EndKey, kv.Key, rr.Keys[i])
		}
		if blockWrites[kv.Key] {
			return fmt.Errorf("rwset: mvcc conflict in range on %q: written earlier in block", kv.Key)
		}
	}
}

// validateQuery is the rich-query phantom check. When the committing state
// database can execute rich queries, the query is re-run and its key set
// compared against the simulated one; otherwise (plain LevelDB-flavour
// store) the observed keys are checked against earlier-in-block writes,
// matching Fabric's weaker guarantees for rich queries on CouchDB.
func validateQuery(qr QueryRead, state statedb.StateDB, blockWrites map[string]bool) error {
	for _, key := range qr.Keys {
		if blockWrites[key] {
			return fmt.Errorf("rwset: mvcc conflict in query on %q: written earlier in block", key)
		}
	}
	rq, ok := state.(statedb.RichQueryer)
	if !ok {
		return nil
	}
	res, err := rq.ExecuteQuery(qr.Query)
	if err != nil {
		return fmt.Errorf("rwset: re-execute query: %w", err)
	}
	if len(res.KVs) != len(qr.Keys) {
		return fmt.Errorf("rwset: phantom in query: %d keys now vs %d simulated",
			len(res.KVs), len(qr.Keys))
	}
	for i, kv := range res.KVs {
		if kv.Key != qr.Keys[i] {
			return fmt.Errorf("rwset: phantom in query: key %q != simulated %q", kv.Key, qr.Keys[i])
		}
	}
	return nil
}
