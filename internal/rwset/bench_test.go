package rwset

import (
	"fmt"
	"testing"

	"github.com/hyperprov/hyperprov/internal/statedb"
)

// Benchmarks for the two rwset operations on the commit hot path: the
// stage-1 deserialization the pipeline fans across workers, and the
// stage-2 MVCC check it runs sequentially.

func benchRWSet(reads, writes int) *ReadWriteSet {
	rws := &ReadWriteSet{}
	for i := 0; i < reads; i++ {
		rws.Reads = append(rws.Reads, Read{Key: fmt.Sprintf("r-%04d", i)})
	}
	for i := 0; i < writes; i++ {
		rws.Writes = append(rws.Writes, Write{
			Key:   fmt.Sprintf("w-%04d", i),
			Value: []byte(`{"key":"w","checksum":"sha256:abc","ts":1700000000000}`),
		})
	}
	return rws
}

func BenchmarkUnmarshal(b *testing.B) {
	raw, err := benchRWSet(2, 2).Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	state := statedb.New()
	batch := statedb.NewUpdateBatch()
	for i := 0; i < 1000; i++ {
		batch.Put(fmt.Sprintf("r-%04d", i), []byte("v"), statedb.Version{BlockNum: 1, TxNum: uint64(i)})
	}
	if err := state.ApplyUpdates(batch, statedb.Version{BlockNum: 1, TxNum: 1000}); err != nil {
		b.Fatal(err)
	}
	rws := benchRWSet(2, 2)
	ver := statedb.Version{BlockNum: 1, TxNum: 0}
	rws.Reads[0].Version = &ver
	ver1 := statedb.Version{BlockNum: 1, TxNum: 1}
	rws.Reads[1].Version = &ver1
	blockWrites := make(map[string]bool)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Validate(rws, state, blockWrites); err != nil {
			b.Fatal(err)
		}
	}
}
