package rwset

import (
	"encoding/json"
	"fmt"

	"github.com/hyperprov/hyperprov/internal/codec"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// rwsetMagic prefixes the canonical binary rwset encoding. Legacy JSON
// rwsets (PR ≤ 9) are recognized by their '{' first byte and decode
// transparently; everything encoded from here on is binary.
var rwsetMagic = []byte("HPRW")

// rwsetVersion is the current version byte; decoders reject others.
const rwsetVersion = 1

// appendRWSet appends the canonical binary encoding. The rwset must
// already be normalized (Marshal normalizes before calling).
func appendRWSet(buf []byte, rws *ReadWriteSet) []byte {
	buf = append(buf, rwsetMagic...)
	buf = append(buf, rwsetVersion)
	buf = codec.AppendUvarint(buf, uint64(len(rws.Reads)))
	for i := range rws.Reads {
		r := &rws.Reads[i]
		buf = codec.AppendString(buf, r.Key)
		buf = codec.AppendBool(buf, r.Version != nil)
		if r.Version != nil {
			buf = codec.AppendUvarint(buf, r.Version.BlockNum)
			buf = codec.AppendUvarint(buf, r.Version.TxNum)
		}
	}
	buf = codec.AppendUvarint(buf, uint64(len(rws.Writes)))
	for i := range rws.Writes {
		w := &rws.Writes[i]
		buf = codec.AppendString(buf, w.Key)
		buf = codec.AppendBytes(buf, w.Value)
		buf = codec.AppendBool(buf, w.IsDelete)
	}
	buf = codec.AppendUvarint(buf, uint64(len(rws.RangeReads)))
	for i := range rws.RangeReads {
		rr := &rws.RangeReads[i]
		buf = codec.AppendString(buf, rr.StartKey)
		buf = codec.AppendString(buf, rr.EndKey)
		buf = appendStrings(buf, rr.Keys)
	}
	buf = codec.AppendUvarint(buf, uint64(len(rws.QueryReads)))
	for i := range rws.QueryReads {
		qr := &rws.QueryReads[i]
		buf = codec.AppendBytes(buf, qr.Query)
		buf = appendStrings(buf, qr.Keys)
	}
	return buf
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = codec.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = codec.AppendString(buf, s)
	}
	return buf
}

func decodeStrings(d *codec.Dec) []string {
	n := d.Count()
	if n == 0 {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = d.String()
	}
	return ss
}

// decodeRWSet decodes a binary rwset. Byte fields alias b.
func decodeRWSet(b []byte) (*ReadWriteSet, error) {
	d := codec.NewDec(b)
	if ver := d.Magic(rwsetMagic); d.Err() == nil && ver != rwsetVersion {
		d.Fail(fmt.Errorf("%w: rwset version %d (supported: %d)", codec.ErrMalformed, ver, rwsetVersion))
	}
	var rws ReadWriteSet
	if n := d.Count(); n > 0 {
		rws.Reads = make([]Read, n)
		for i := range rws.Reads {
			rws.Reads[i].Key = d.String()
			if d.Bool() {
				rws.Reads[i].Version = &statedb.Version{
					BlockNum: d.Uvarint(),
					TxNum:    d.Uvarint(),
				}
			}
		}
	}
	if n := d.Count(); n > 0 {
		rws.Writes = make([]Write, n)
		for i := range rws.Writes {
			rws.Writes[i].Key = d.String()
			rws.Writes[i].Value = d.BytesShared()
			rws.Writes[i].IsDelete = d.Bool()
		}
	}
	if n := d.Count(); n > 0 {
		rws.RangeReads = make([]RangeRead, n)
		for i := range rws.RangeReads {
			rws.RangeReads[i].StartKey = d.String()
			rws.RangeReads[i].EndKey = d.String()
			rws.RangeReads[i].Keys = decodeStrings(d)
		}
	}
	if n := d.Count(); n > 0 {
		rws.QueryReads = make([]QueryRead, n)
		for i := range rws.QueryReads {
			rws.QueryReads[i].Query = json.RawMessage(d.BytesShared())
			rws.QueryReads[i].Keys = decodeStrings(d)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("rwset: codec: %w", err)
	}
	return &rws, nil
}
