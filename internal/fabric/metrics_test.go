//hyperprov:compat exercises the legacy single-channel peer.Config.ChannelID path on purpose

package fabric

import (
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/peer"
)

func TestPeerMetricsReflectTraffic(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	const txs = 3
	for i := 0; i < txs; i++ {
		setRecord(t, gw, "m-item-"+string(rune('a'+i)), "cs")
	}
	if _, err := gw.Evaluate(provenance.ChaincodeName, provenance.FnGet, []byte("m-item-a")); err != nil {
		t.Fatal(err)
	}

	p0 := n.Peers()[0]
	waitFor(t, func() bool {
		return p0.Metrics().Counter(metrics.TxValidated).Value() >= txs
	})
	snap := p0.Metrics().Snapshot()
	// Deploy init + txs endorsements.
	if snap[metrics.EndorsementsServed] < txs {
		t.Errorf("endorsements_served = %d, want >= %d", snap[metrics.EndorsementsServed], txs)
	}
	if snap[metrics.BlocksCommitted] < txs {
		t.Errorf("blocks_committed = %d", snap[metrics.BlocksCommitted])
	}
	if snap[metrics.QueriesServed] < 1 {
		t.Errorf("queries_served = %d", snap[metrics.QueriesServed])
	}
	if snap[metrics.TxInvalidated] != 0 {
		t.Errorf("tx_invalidated = %d, want 0", snap[metrics.TxInvalidated])
	}
	if p0.Metrics().Format() == "" {
		t.Error("empty metrics format")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLateSubscriberReplaysChain verifies orderer-replay catch-up: a peer
// attached after traffic receives the whole chain from block 0.
func TestLateSubscriberReplaysChain(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		setRecord(t, gw, "l-item-"+string(rune('a'+i)), "cs")
	}
	target := n.Peers()[0].Height()

	// A brand-new peer subscribing now must replay everything.
	signer, err := n.CA().Enroll("late-peer", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	late := peer.New(peer.Config{
		Name: "late-peer", Signer: signer, MSP: n.MSP(), ChannelID: n.ChannelID(),
	})
	if err := late.InstallChaincode(provenance.ChaincodeName, provenance.New(), n.Policy()); err != nil {
		t.Fatal(err)
	}
	late.Start(n.Orderer().Subscribe())
	defer late.Stop()

	waitFor(t, func() bool { return late.Height() >= target })
	if err := late.Ledger().VerifyChain(); err != nil {
		t.Errorf("late peer chain: %v", err)
	}
}
