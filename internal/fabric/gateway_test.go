package fabric

import (
	"strings"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/metrics"
)

// slowEndorser delays proposals before delegating to a real peer, modelling
// the strangled straggler the quorum early-return exists for. called is
// closed once the (ignored) endorsement finally completes so the test can
// drain it before tearing the network down.
type slowEndorser struct {
	inner  Endorser
	delay  time.Duration
	called chan struct{}
}

func (s *slowEndorser) Name() string { return "slowpoke" }

func (s *slowEndorser) ProcessProposal(prop *endorser.Proposal) (*endorser.Response, error) {
	time.Sleep(s.delay)
	resp, err := s.inner.ProcessProposal(prop)
	close(s.called)
	return resp, err
}

// TestSubmitReturnsBeforeSlowEndorser pins the quorum early-return: with a
// majority of fast endorsers agreeing, Submit must not wait for a deliberately
// slow straggler, and the per-endorser latency gauges must expose who the
// straggler was.
func TestSubmitReturnsBeforeSlowEndorser(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowEndorser{
		inner:  n.Peers()[0],
		delay:  1500 * time.Millisecond,
		called: make(chan struct{}),
	}
	gw.AddEndorser(slow) // 4 fast peers + 1 slow = quorum of 3 fast ones

	start := time.Now()
	setRecord(t, gw, "fast-lane", "sha256:quick")
	elapsed := time.Since(start)
	if elapsed >= slow.delay {
		t.Fatalf("Submit took %v, waited for the %v straggler", elapsed, slow.delay)
	}

	// The straggler finishes in the background; its gauge then records the
	// latency the early-return kept off the transaction's critical path.
	select {
	case <-slow.called:
	case <-time.After(10 * time.Second):
		t.Fatal("straggler endorsement never completed")
	}
	waitFor(t, func() bool {
		return n.Metrics().Gauge(metrics.EndorsePeerLatency+"_slowpoke").Value() >= int64(slow.delay)
	})

	// Fast endorsers got gauges too, named after their peers.
	gauges := n.Metrics().GaugeSnapshot()
	fast := 0
	for name, v := range gauges {
		if strings.HasPrefix(name, metrics.EndorsePeerLatency+"_peer") && v > 0 {
			fast++
		}
	}
	if fast < 3 {
		t.Errorf("per-peer latency gauges = %d, want >= quorum (3); gauges: %v", fast, gauges)
	}
}
