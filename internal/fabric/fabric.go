// Package fabric assembles a complete permissioned-blockchain network —
// CAs, peers, an ordering service, and channel configuration — and exposes
// a Gateway client that drives the execute–order–validate flow end to end.
// It is the stand-in for the Hyperledger Fabric deployment (peers and
// orderer in Docker containers) that HyperProv runs on.
package fabric

import (
	"errors"
	"fmt"
	"time"

	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/gossip"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/peer"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/trace"
	"github.com/hyperprov/hyperprov/internal/transport"
)

// ConsensusType selects the ordering implementation.
type ConsensusType int

// Supported consensus types.
const (
	ConsensusSolo ConsensusType = iota + 1
	ConsensusRaft
)

// ChannelConfig describes one application channel of a network: an
// independent ledger with its own ordering instance, per-peer commit
// pipeline, and gossip stream.
type ChannelConfig struct {
	// ID names the channel.
	ID string
	// Batch optionally overrides Config.Batch for this channel's orderer
	// (zero value inherits it), so tenants can run different block-cutting
	// profiles.
	Batch orderer.BatchConfig
}

// Config describes a network to assemble.
type Config struct {
	// ChannelID names the single application channel.
	//
	// Deprecated: single-channel shim, superseded by Channels. A Config
	// with only ChannelID set behaves exactly as before (one channel of
	// that name); it is ignored when Channels is non-empty.
	ChannelID string
	// Channels lists the application channels the network serves. Every
	// peer hosts all of them; each channel gets its own orderer instance,
	// per-peer ledger + state + commit pipeline, and gossip stream. Empty
	// falls back to the single channel named by ChannelID.
	Channels []ChannelConfig
	// Org is the organization name (the paper's network is single-org
	// with four peers).
	Org string
	// Orgs optionally configures a multi-organization consortium: one CA
	// per org, peers assigned round-robin, and a majority endorsement
	// policy. When set, Org is ignored.
	Orgs []string
	// PeerProfiles gives one device profile per peer; the network has
	// len(PeerProfiles) peers.
	PeerProfiles []device.Profile
	// OrdererProfile models the ordering node's hardware.
	OrdererProfile device.Profile
	// Clock scales modeled time; defaults to device.RealClock{} (1:1).
	Clock device.Clock
	// Batch is the orderer's block-cutting configuration.
	Batch orderer.BatchConfig
	// Consensus selects solo (default, as in the paper) or raft.
	Consensus ConsensusType
	// RaftNodes sizes the raft cluster (default 3).
	RaftNodes int
	// Gossip enables pull-based anti-entropy block dissemination between
	// peers, letting members that lose the ordering service catch up from
	// neighbours (see internal/gossip).
	Gossip bool
	// PeerListen exposes every peer on a TCP transport listener so other
	// OS processes can gossip with, endorse on, and query this network's
	// peers (see internal/transport). Addresses come from PeerListenAddrs,
	// or ephemeral 127.0.0.1 ports when unset.
	PeerListen bool
	// PeerListenAddrs optionally pins one listen address per peer; extra
	// peers beyond the list get ephemeral ports.
	PeerListenAddrs []string
	// PeerLink shapes every peer transport connection (applied to each
	// side's writes), modelling the LAN links between the paper's four
	// machines. Zero means unshaped.
	PeerLink network.LinkShape
	// Seed makes modeled jitter deterministic.
	Seed int64
}

// DesktopConfig returns the paper's desktop setup: 4 peers (2 Xeon E5-1603,
// 1 i7-4700MQ, 1 i3-2310M) with the orderer co-located on a Xeon.
func DesktopConfig() Config {
	return Config{
		ChannelID: "provchannel",
		Org:       "Org1",
		PeerProfiles: []device.Profile{
			device.XeonE51603, device.XeonE51603, device.I74700MQ, device.I32310M,
		},
		OrdererProfile: device.XeonE51603,
		Batch:          orderer.DefaultBatchConfig(),
		Consensus:      ConsensusSolo,
	}
}

// RPiConfig returns the paper's edge setup: 4 Raspberry Pi 3B+ devices on
// one switch, one of them also running the orderer.
func RPiConfig() Config {
	return Config{
		ChannelID: "provchannel",
		Org:       "Org1",
		PeerProfiles: []device.Profile{
			device.RPi3BPlus, device.RPi3BPlus, device.RPi3BPlus, device.RPi3BPlus,
		},
		OrdererProfile: device.RPi3BPlus,
		Batch:          orderer.DefaultBatchConfig(),
		Consensus:      ConsensusSolo,
	}
}

// PolicyFor derives the channel endorsement policy from the consortium's
// organizations: single-org channels accept any member's endorsement (the
// paper's deployment); consortia require a majority of orgs. A process
// joining over the peer transport derives the same policy from the orgs in
// the hello handshake, so both sides validate blocks identically.
func PolicyFor(orgs []string) endorser.Policy {
	if len(orgs) > 1 {
		return endorser.MajorityOrgs(orgs)
	}
	return endorser.AnyOrg(orgs)
}

// channelRuntime bundles one channel's moving parts: its ordering instance,
// the per-host peer instances committing on it, and its gossip stream.
// Channels never share any of these, which is why their pipelines never
// contend.
type channelRuntime struct {
	id      string
	orderer orderer.Service
	peers   []*peer.Peer
	gossip  *gossip.Network
}

// Network is an assembled, running network: N peer hosts, each serving
// every configured channel, with one orderer instance and one gossip stream
// per channel.
type Network struct {
	cfg        Config
	cas        []*identity.CA
	ca         *identity.CA // CA of the first org; used for client enrollment
	msp        *identity.MSP
	hosts      []*peer.Host
	channels   map[string]*channelRuntime
	chOrder    []string
	servers    []*transport.Server
	remotes    []*transport.Client
	clock      device.Clock
	policy     endorser.Policy
	clients    int
	tracer     *trace.Recorder
	netMetrics *metrics.Registry
}

// channelConfigs resolves the configured channel list, falling back to the
// deprecated single-channel shim.
func channelConfigs(cfg Config) []ChannelConfig {
	if len(cfg.Channels) > 0 {
		return cfg.Channels
	}
	id := cfg.ChannelID
	if id == "" {
		id = "provchannel"
	}
	return []ChannelConfig{{ID: id}}
}

// NewNetwork assembles and starts a network: it enrolls peer and orderer
// identities, builds one orderer instance and one per-host peer instance
// per channel, wires every instance to its channel's ordered block stream,
// and leaves the network ready for chaincode deployment.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Org == "" {
		cfg.Org = "Org1"
	}
	if len(cfg.PeerProfiles) == 0 {
		return nil, errors.New("fabric: no peer profiles")
	}
	if cfg.Clock == nil {
		cfg.Clock = device.RealClock{}
	}
	channels := channelConfigs(cfg)
	chIDs := make([]string, len(channels))
	for i, chc := range channels {
		chIDs[i] = chc.ID
	}
	orgs := cfg.Orgs
	if len(orgs) == 0 {
		orgs = []string{cfg.Org}
	}
	msp := identity.NewMSP()
	cas := make([]*identity.CA, len(orgs))
	for i, org := range orgs {
		ca, err := identity.NewCA(org)
		if err != nil {
			return nil, fmt.Errorf("fabric: new CA for %s: %w", org, err)
		}
		cas[i] = ca
		msp.AddCA(ca)
	}
	policy := PolicyFor(orgs)

	n := &Network{
		cfg:        cfg,
		cas:        cas,
		ca:         cas[0],
		msp:        msp,
		channels:   make(map[string]*channelRuntime, len(channels)),
		chOrder:    chIDs,
		clock:      cfg.Clock,
		policy:     policy,
		tracer:     trace.NewRecorder(),
		netMetrics: metrics.NewRegistry(),
	}

	// One modeled ordering machine serves every channel (the usual Fabric
	// deployment co-locates the ordering service), but each channel gets
	// its own ordering instance: independent batch cutters, block chains,
	// and subscriber streams.
	ordExec := device.NewExecutor(cfg.OrdererProfile, cfg.Clock, cfg.Seed+1000)
	for _, chc := range channels {
		if n.channels[chc.ID] != nil {
			return nil, fmt.Errorf("fabric: duplicate channel %q", chc.ID)
		}
		batch := chc.Batch
		if batch == (orderer.BatchConfig{}) {
			batch = cfg.Batch
		}
		var svc orderer.Service
		switch cfg.Consensus {
		case ConsensusRaft:
			raftNodes := cfg.RaftNodes
			if raftNodes <= 0 {
				raftNodes = 3
			}
			svc = orderer.NewRaft(raftNodes, batch, orderer.DefaultRaftConfig(), ordExec, cfg.Seed)
		default:
			svc = orderer.NewSolo(batch, ordExec)
		}
		// The Service interface is unchanged; both built-in orderers expose
		// SetTracer as a concrete method, discovered here by assertion so a
		// third-party Service without tracing still assembles fine.
		if st, ok := svc.(interface{ SetTracer(*trace.Recorder) }); ok {
			st.SetTracer(n.tracer)
		}
		n.channels[chc.ID] = &channelRuntime{id: chc.ID, orderer: svc}
	}

	for i, prof := range cfg.PeerProfiles {
		orgCA := cas[i%len(cas)]
		name := fmt.Sprintf("peer%d.%s", i, orgCA.Org())
		signer, err := orgCA.Enroll(name, identity.RolePeer)
		if err != nil {
			n.Stop()
			return nil, fmt.Errorf("fabric: enroll %s: %w", name, err)
		}
		pcfg := peer.Config{
			Name:     name,
			Signer:   signer,
			MSP:      msp,
			Executor: device.NewExecutor(prof, cfg.Clock, cfg.Seed+int64(i)*17),
			Channels: chIDs,
		}
		// Exactly one host drives the recorder's commit spans and Complete
		// calls — every peer commits every block, so tracing all of them
		// would record duplicate stages and race the trace's completion.
		// (Transaction IDs are unique across channels, so one recorder can
		// serve all of host 0's channel instances.)
		if i == 0 {
			pcfg.Tracer = n.tracer
		}
		host, err := peer.NewHost(pcfg)
		if err != nil {
			n.Stop()
			return nil, fmt.Errorf("fabric: host %s: %w", name, err)
		}
		for _, ch := range chIDs {
			cr := n.channels[ch]
			inst := host.Channel(ch)
			inst.Start(cr.orderer.Subscribe())
			cr.peers = append(cr.peers, inst)
		}
		n.hosts = append(n.hosts, host)
	}
	if cfg.Gossip {
		for _, ch := range chIDs {
			cr := n.channels[ch]
			members := make([]gossip.Member, len(cr.peers))
			for i, p := range cr.peers {
				members[i] = p
			}
			gcfg := gossip.DefaultConfig()
			gcfg.Seed = cfg.Seed
			cr.gossip = gossip.New(gcfg, members...)
			cr.gossip.SetMetrics(n.netMetrics)
			cr.gossip.SetTracer(n.tracer)
		}
	}
	if cfg.PeerListen {
		caPEMs := make([][]byte, len(cas))
		for i, ca := range cas {
			caPEMs[i] = ca.CertPEM()
		}
		scfg := transport.ServerConfig{
			ChannelID:  chIDs[0],
			Orgs:       orgs,
			CACertsPEM: caPEMs,
			Shape:      cfg.PeerLink,
			Metrics:    n.netMetrics,
			Tracer:     n.tracer,
		}
		for i, host := range n.hosts {
			addr := "127.0.0.1:0"
			if i < len(cfg.PeerListenAddrs) {
				addr = cfg.PeerListenAddrs[i]
			}
			srv, err := transport.NewHostServer(addr, host, scfg)
			if err != nil {
				n.Stop()
				return nil, fmt.Errorf("fabric: expose %s: %w", host.Name(), err)
			}
			n.servers = append(n.servers, srv)
		}
	}
	return n, nil
}

// channel resolves a channel ID ("" = default channel) to its runtime.
func (n *Network) channel(ch string) (*channelRuntime, error) {
	if ch == "" {
		ch = n.chOrder[0]
	}
	cr, ok := n.channels[ch]
	if !ok {
		return nil, fmt.Errorf("fabric: unknown channel %q (serving %v)", ch, n.chOrder)
	}
	return cr, nil
}

// mustChannel is channel for the legacy single-channel accessors, which
// predate the error path and always name a served channel.
func (n *Network) mustChannel(ch string) *channelRuntime {
	cr, err := n.channel(ch)
	if err != nil {
		panic(err)
	}
	return cr
}

// PeerAddrs returns the listen addresses of the exposed peers, in peer
// order (empty unless PeerListen was set).
func (n *Network) PeerAddrs() []string {
	addrs := make([]string, len(n.servers))
	for i, s := range n.servers {
		addrs[i] = s.Addr()
	}
	return addrs
}

// JoinRemote dials a peer served by another process and joins it to the
// default channel's gossip membership: local peers pull the remote's blocks
// and push it theirs over TCP, with shape applied to this side's writes.
// The network must have been created with Gossip enabled.
func (n *Network) JoinRemote(addr string, shape network.LinkShape) (*transport.Member, error) {
	return n.JoinRemoteChannel(addr, "", shape)
}

// JoinRemoteChannel dials one channel of a (possibly multi-channel) host
// served by another process and joins it to that channel's gossip
// membership. The dial fails with transport.ErrUnknownChannel when the
// remote host does not serve ch; an empty ch targets the remote's default
// channel and joins the local default channel's gossip stream.
func (n *Network) JoinRemoteChannel(addr, ch string, shape network.LinkShape) (*transport.Member, error) {
	cr, err := n.channel(ch)
	if err != nil {
		return nil, err
	}
	if cr.gossip == nil {
		return nil, errors.New("fabric: gossip not enabled")
	}
	client, err := transport.Dial(addr, transport.ClientConfig{
		Channel: ch,
		Shape:   shape,
		Metrics: n.netMetrics,
		Tracer:  n.tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("fabric: join %s: %w", addr, err)
	}
	member, err := client.Member()
	if err != nil {
		client.Close()
		return nil, fmt.Errorf("fabric: join %s: %w", addr, err)
	}
	n.remotes = append(n.remotes, client)
	cr.gossip.Add(member)
	return member, nil
}

// AddGossipPeer adds a default-channel peer that is NOT subscribed to the
// ordering service: it receives blocks exclusively through gossip
// anti-entropy, modelling an edge node without connectivity to the orderer.
// The network must have been created with Gossip enabled. The new peer has
// the full chaincode set installed.
func (n *Network) AddGossipPeer(prof device.Profile, ccs map[string]shim.Chaincode) (*peer.Peer, error) {
	cr := n.mustChannel("")
	if cr.gossip == nil {
		return nil, errors.New("fabric: gossip not enabled")
	}
	name := fmt.Sprintf("peer%d.%s", len(cr.peers), n.ca.Org())
	signer, err := n.ca.Enroll(name, identity.RolePeer)
	if err != nil {
		return nil, fmt.Errorf("fabric: enroll %s: %w", name, err)
	}
	host, err := peer.NewHost(peer.Config{
		Name:     name,
		Signer:   signer,
		MSP:      n.msp,
		Executor: device.NewExecutor(prof, n.clock, n.cfg.Seed+int64(len(cr.peers))*17),
		Channels: []string{cr.id},
	})
	if err != nil {
		return nil, fmt.Errorf("fabric: host %s: %w", name, err)
	}
	p := host.Channel(cr.id)
	for ccName, cc := range ccs {
		if err := p.InstallChaincode(ccName, cc, n.policy); err != nil {
			return nil, err
		}
	}
	cr.peers = append(cr.peers, p)
	cr.gossip.Add(p)
	return p, nil
}

// Gossip returns the default channel's gossip network, or nil when disabled.
func (n *Network) Gossip() *gossip.Network { return n.mustChannel("").gossip }

// GossipFor returns one channel's gossip network (nil when gossip is
// disabled) or an error for an unknown channel.
func (n *Network) GossipFor(ch string) (*gossip.Network, error) {
	cr, err := n.channel(ch)
	if err != nil {
		return nil, err
	}
	return cr.gossip, nil
}

// Tracer returns the network's transaction-lifecycle trace recorder. The
// gateway, orderer, gossip, transport servers, and peer 0's commit pipeline
// all record into it, so a submitted transaction's full timeline is visible
// here (and on the admin endpoint's /tracez view).
func (n *Network) Tracer() *trace.Recorder { return n.tracer }

// Metrics returns the network-level registry: gossip protocol counters,
// convergence lag, and transport frame/byte/latency instrumentation.
// Per-peer pipeline metrics live on each peer's own registry
// (Peer.Metrics).
func (n *Network) Metrics() *metrics.Registry { return n.netMetrics }

// Remotes returns the transport clients created by JoinRemote, in join
// order (the admin endpoint surfaces their last connection errors).
func (n *Network) Remotes() []*transport.Client { return n.remotes }

// Stop shuts down every channel's ordering service and gossip stream, the
// transport servers and clients, and all peer hosts.
func (n *Network) Stop() {
	for _, ch := range n.chOrder {
		if cr := n.channels[ch]; cr != nil && cr.gossip != nil {
			cr.gossip.Stop()
		}
	}
	for _, c := range n.remotes {
		c.Close()
	}
	for _, s := range n.servers {
		s.Close()
	}
	for _, ch := range n.chOrder {
		if cr := n.channels[ch]; cr != nil && cr.orderer != nil {
			cr.orderer.Stop()
		}
	}
	for _, ch := range n.chOrder {
		if cr := n.channels[ch]; cr != nil {
			for _, p := range cr.peers {
				p.Stop()
			}
		}
	}
}

// Peers returns the default channel's peer instances.
func (n *Network) Peers() []*peer.Peer { return n.mustChannel("").peers }

// ChannelPeers returns one channel's peer instances, in host order.
func (n *Network) ChannelPeers(ch string) ([]*peer.Peer, error) {
	cr, err := n.channel(ch)
	if err != nil {
		return nil, err
	}
	return cr.peers, nil
}

// Hosts returns the network's peer hosts, each serving every channel.
func (n *Network) Hosts() []*peer.Host { return n.hosts }

// Orderer returns the default channel's ordering service.
func (n *Network) Orderer() orderer.Service { return n.mustChannel("").orderer }

// OrdererFor returns one channel's ordering service.
func (n *Network) OrdererFor(ch string) (orderer.Service, error) {
	cr, err := n.channel(ch)
	if err != nil {
		return nil, err
	}
	return cr.orderer, nil
}

// MSP returns the network's membership service provider.
func (n *Network) MSP() *identity.MSP { return n.msp }

// CA returns the first org's certificate authority (clients enroll here by
// default).
func (n *Network) CA() *identity.CA { return n.ca }

// CAs returns every organization's certificate authority.
func (n *Network) CAs() []*identity.CA { return n.cas }

// NewGatewayFor enrolls a client identity with a specific org's CA,
// bound to the default channel.
func (n *Network) NewGatewayFor(org, clientID string) (*Gateway, error) {
	for _, ca := range n.cas {
		if ca.Org() != org {
			continue
		}
		n.clients++
		signer, err := ca.Enroll(fmt.Sprintf("%s-%d", clientID, n.clients), identity.RoleClient)
		if err != nil {
			return nil, fmt.Errorf("fabric: enroll client: %w", err)
		}
		exec := device.NewExecutor(n.cfg.PeerProfiles[0], n.clock, n.cfg.Seed+int64(n.clients)*131)
		return n.newGateway(signer, exec, n.chOrder[0])
	}
	return nil, fmt.Errorf("fabric: unknown org %q", org)
}

// Gateway enrolls a client identity and returns a gateway bound to one
// channel: its submits endorse on, order through, and commit-wait against
// that channel's pipeline only. An empty ch binds the default channel.
func (n *Network) Gateway(ch string) (*Gateway, error) {
	cr, err := n.channel(ch)
	if err != nil {
		return nil, err
	}
	return n.gatewayOn(cr.id, "client-"+cr.id)
}

// gatewayOn enrolls clientID on the first org's CA and binds the gateway
// to channel ch (already resolved).
func (n *Network) gatewayOn(ch, clientID string) (*Gateway, error) {
	n.clients++
	signer, err := n.ca.Enroll(fmt.Sprintf("%s-%d", clientID, n.clients), identity.RoleClient)
	if err != nil {
		return nil, fmt.Errorf("fabric: enroll client: %w", err)
	}
	exec := device.NewExecutor(n.cfg.PeerProfiles[0], n.clock, n.cfg.Seed+int64(n.clients)*131)
	return n.newGateway(signer, exec, ch)
}

// ChannelID returns the default (first) application channel name.
func (n *Network) ChannelID() string { return n.chOrder[0] }

// Channels returns the served channel IDs in configuration order.
func (n *Network) Channels() []string { return append([]string(nil), n.chOrder...) }

// Policy returns the channel's endorsement policy.
func (n *Network) Policy() endorser.Policy { return n.policy }

// DeployChaincode installs the chaincode on every peer of the default
// channel and runs its Init through the normal transaction flow so the
// instantiation is itself on the ledger.
func (n *Network) DeployChaincode(name string, mk func() shim.Chaincode) error {
	return n.DeployChaincodeOn("", name, mk)
}

// DeployChaincodeOn installs the chaincode on every peer instance of one
// channel and records its instantiation on that channel's ledger. Installs
// are channel-scoped: deploying on one channel leaves the others without
// the chaincode.
func (n *Network) DeployChaincodeOn(ch, name string, mk func() shim.Chaincode) error {
	cr, err := n.channel(ch)
	if err != nil {
		return err
	}
	for _, p := range cr.peers {
		if err := p.InstallChaincode(name, mk(), n.policy); err != nil {
			return err
		}
	}
	gw, err := n.gatewayOn(cr.id, "deployer-"+name)
	if err != nil {
		return err
	}
	if _, err := gw.Submit(name, peer.InitFunction); err != nil {
		return fmt.Errorf("fabric: instantiate %q on %q: %w", name, cr.id, err)
	}
	return nil
}

// UpgradeChaincode swaps the implementation of a deployed chaincode on
// every default-channel peer and records the upgrade on the ledger by
// re-running Init through the ordinary transaction flow.
func (n *Network) UpgradeChaincode(name string, mk func() shim.Chaincode) error {
	cr := n.mustChannel("")
	for _, p := range cr.peers {
		if err := p.UpgradeChaincode(name, mk(), n.policy); err != nil {
			return err
		}
	}
	gw, err := n.NewGateway("upgrader-" + name)
	if err != nil {
		return err
	}
	if _, err := gw.Submit(name, peer.InitFunction); err != nil {
		return fmt.Errorf("fabric: upgrade %q: %w", name, err)
	}
	return nil
}

// NewGateway enrolls a client identity and returns a Gateway bound to this
// network's default channel. The gateway endorses on every peer
// (satisfying any-org and majority policies alike) and waits for commits
// on peer 0. Channel-scoped clients use Network.Gateway(ch).
func (n *Network) NewGateway(clientID string) (*Gateway, error) {
	// The client process runs on the same device class as the peers (in
	// the paper the benchmark client runs on one of the machines).
	return n.gatewayOn(n.chOrder[0], clientID)
}

// NewGatewayOn is like NewGateway but binds the client to an existing
// device executor, so several logical clients share one physical machine —
// the shape of the paper's benchmark program, which drives many concurrent
// requests from a single node.
func (n *Network) NewGatewayOn(clientID string, exec *device.Executor) (*Gateway, error) {
	n.clients++
	signer, err := n.ca.Enroll(fmt.Sprintf("%s-%d", clientID, n.clients), identity.RoleClient)
	if err != nil {
		return nil, fmt.Errorf("fabric: enroll client: %w", err)
	}
	return n.newGateway(signer, exec, n.chOrder[0])
}

func (n *Network) newGateway(signer *identity.SigningIdentity, exec *device.Executor, ch string) (*Gateway, error) {
	return &Gateway{
		net:           n,
		channel:       ch,
		signer:        signer,
		exec:          exec,
		commitTimeout: defaultCommitTimeout(n.clock),
	}, nil
}

// Clock returns the network's modeled clock.
func (n *Network) Clock() device.Clock { return n.clock }

// defaultCommitTimeout scales the wall-clock commit timeout with the
// modeled clock so scaled benchmarks do not time out spuriously.
func defaultCommitTimeout(clock device.Clock) time.Duration {
	const modeled = 120 * time.Second
	scale := clock.Scale()
	if scale <= 0 || scale >= 1 {
		return modeled
	}
	d := time.Duration(float64(modeled) * scale)
	if d < 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
