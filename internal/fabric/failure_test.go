package fabric

import (
	"errors"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/orderer"
)

// TestSubmitSurvivesNonCommitPeerFailure: with the single-org "any member"
// policy, losing an endorsing peer (other than the client's commit peer)
// must not stop transactions from committing.
func TestSubmitSurvivesNonCommitPeerFailure(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	setRecord(t, gw, "before-failure", "cs")

	// Take down peer 3 (not the commit peer). Endorsement on it will fail;
	// the remaining peers still satisfy the policy.
	n.Peers()[3].Stop()
	setRecord(t, gw, "after-failure", "cs")

	// Quorum loss: chaincode missing everywhere -> endorsement error.
	_, err = gw.Submit("no-such-chaincode", "set", []byte("{}"))
	if !errors.Is(err, ErrEndorsement) {
		t.Errorf("err = %v, want ErrEndorsement", err)
	}
}

// TestCommitTimeout: a transaction whose commit event never arrives (the
// commit peer is detached from the block stream) must fail with
// ErrCommitTimeout rather than hanging.
func TestCommitTimeout(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	gw.SetCommitTimeout(200 * time.Millisecond)
	// Detach the commit peer from the ordered stream: endorsement still
	// works (its state is live), but it will never see the block.
	n.Peers()[0].Stop()
	_, err = gw.Submit(provenance.ChaincodeName, provenance.FnSet,
		[]byte(`{"key":"k","checksum":"c"}`))
	if !errors.Is(err, ErrCommitTimeout) {
		t.Errorf("err = %v, want ErrCommitTimeout", err)
	}
}

// TestGatewayOnSharedExecutor: logical clients sharing one device executor
// (the bench topology) work end to end and account costs on that executor.
func TestGatewayOnSharedExecutor(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	exec := device.NewExecutor(device.XeonE51603, device.NopClock{}, 5)
	a, err := n.NewGatewayOn("worker", exec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.NewGatewayOn("worker", exec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Identity().ID() == b.Identity().ID() {
		t.Error("shared-executor gateways share an identity")
	}
	setRecord(t, a, "shared-1", "cs")
	setRecord(t, b, "shared-2", "cs")
	if exec.BusyTime() == 0 {
		t.Error("no client cost accounted on the shared executor")
	}
}

// TestOrdererStopFailsSubmitsCleanly: submissions after the ordering
// service stops return an error instead of hanging.
func TestOrdererStopFailsSubmitsCleanly(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	n.Orderer().Stop()
	_, err = gw.Submit(provenance.ChaincodeName, provenance.FnSet,
		[]byte(`{"key":"k","checksum":"c"}`))
	if err == nil {
		t.Fatal("submit after orderer stop succeeded")
	}
	if !errors.Is(err, orderer.ErrStopped) {
		t.Logf("err = %v (any error acceptable, ErrStopped preferred)", err)
	}
}
