//hyperprov:compat exercises the legacy single-channel peer.Config.ChannelID path on purpose

package fabric

import (
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/peer"
	"github.com/hyperprov/hyperprov/internal/transport"
)

// externalPeer builds a peer outside the network's process boundary (in
// this test, outside its member list): same trust domain, own transport
// listener — the shape of a peer served by another OS process.
func externalPeer(t *testing.T, n *Network, name string) (*peer.Peer, *transport.Server) {
	t.Helper()
	signer, err := n.CA().Enroll(name, identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	p := peer.New(peer.Config{Name: name, Signer: signer, MSP: n.MSP(), ChannelID: n.ChannelID()})
	t.Cleanup(p.Stop)
	if err := p.InstallChaincode(provenance.ChaincodeName, provenance.New(), n.Policy()); err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer("127.0.0.1:0", p, transport.ServerConfig{
		ChannelID:  n.ChannelID(),
		Orgs:       []string{n.CA().Org()},
		CACertsPEM: [][]byte{n.CA().CertPEM()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return p, srv
}

func waitForHeight(t *testing.T, p *peer.Peer, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for p.Height() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s at height %d, want %d", p.Name(), p.Height(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJoinRemoteConvergesOverTCP: a peer reachable only through a TCP
// transport address joins the network's gossip membership and converges
// to the same height and state fingerprint.
func TestJoinRemoteConvergesOverTCP(t *testing.T) {
	cfg := testConfig()
	cfg.Gossip = true
	cfg.PeerListen = true
	n := newTestNetwork(t, cfg)
	if got := len(n.PeerAddrs()); got != len(n.Peers()) {
		t.Fatalf("PeerAddrs = %d, want %d", got, len(n.Peers()))
	}

	remote, srv := externalPeer(t, n, "remote-peer")
	member, err := n.JoinRemote(srv.Addr(), cfg.PeerLink)
	if err != nil {
		t.Fatal(err)
	}
	if member.Name() != "remote-peer" {
		t.Errorf("joined member name = %q", member.Name())
	}

	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tcp-a", "tcp-b", "tcp-c"} {
		setRecord(t, gw, key, "cs")
	}
	local := n.Peers()[0]
	waitForHeight(t, remote, local.Height())
	if remote.StateFingerprint() != local.StateFingerprint() {
		t.Error("remote peer state fingerprint diverges")
	}
	if err := remote.Ledger().VerifyChain(); err != nil {
		t.Errorf("remote chain: %v", err)
	}
}

// TestRemoteEndorserThroughGateway: the gateway fans proposals to a
// transport client exactly like a local peer, and the remote endorsement
// participates in a committed transaction.
func TestRemoteEndorserThroughGateway(t *testing.T) {
	cfg := testConfig()
	cfg.Gossip = true
	cfg.PeerProfiles = cfg.PeerProfiles[:1] // one local peer + one remote endorser
	n := newTestNetwork(t, cfg)

	remote, srv := externalPeer(t, n, "remote-endorser")
	if _, err := n.JoinRemote(srv.Addr(), cfg.PeerLink); err != nil {
		t.Fatal(err)
	}
	local := n.Peers()[0]
	waitForHeight(t, remote, local.Height()) // catch up past the deploy block

	client, err := transport.Dial(srv.Addr(), transport.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	gw.AddEndorser(client)

	for i, key := range []string{"re-a", "re-b"} {
		// Keep the remote simulating against fresh state so its
		// endorsement stays in the consistent group.
		waitForHeight(t, remote, local.Height())
		remote.Sync()
		res := setRecord(t, gw, key, "cs")
		if res.Code.String() != "VALID" {
			t.Fatalf("tx %d code = %s", i, res.Code)
		}
	}
	served := remote.Metrics().Counter(metrics.EndorsementsServed).Value()
	if served < 2 {
		t.Errorf("remote endorser served %d endorsements, want >= 2", served)
	}
}
