package fabric

import (
	"testing"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
)

func multiOrgConfig() Config {
	cfg := testConfig()
	cfg.Orgs = []string{"OrgA", "OrgB", "OrgC"}
	return cfg
}

func TestMultiOrgEndorsementSucceeds(t *testing.T) {
	n := newTestNetwork(t, multiOrgConfig())
	// Peers are spread round-robin over the three orgs.
	orgs := map[string]bool{}
	for _, p := range n.Peers() {
		orgs[p.Name()] = true
	}
	if len(orgs) != 4 {
		t.Fatalf("peers = %v", orgs)
	}
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	res := setRecord(t, gw, "consortium-item", "cs")
	if res.TxID == "" {
		t.Error("no txid")
	}
	// The record is queryable and carries the creator's org.
	payload, err := gw.Evaluate(provenance.ChaincodeName, provenance.FnGet, []byte("consortium-item"))
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) == 0 {
		t.Error("empty record")
	}
}

func TestMultiOrgMajorityPolicyEnforced(t *testing.T) {
	n := newTestNetwork(t, multiOrgConfig())
	// 3 orgs -> majority policy needs 2 distinct orgs. A single org's
	// endorsement must NOT satisfy it.
	policy := n.Policy()
	if policy.Evaluate([]string{"OrgAMSP"}) {
		t.Error("single org satisfied majority policy")
	}
	if !policy.Evaluate([]string{"OrgAMSP", "OrgCMSP"}) {
		t.Error("two orgs did not satisfy majority policy")
	}
}

func TestNewGatewayForSpecificOrg(t *testing.T) {
	n := newTestNetwork(t, multiOrgConfig())
	gw, err := n.NewGatewayFor("OrgB", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if got := gw.Identity().Org(); got != "OrgB" {
		t.Errorf("client org = %q, want OrgB", got)
	}
	setRecord(t, gw, "orgb-item", "cs")

	if _, err := n.NewGatewayFor("NoSuchOrg", "x"); err == nil {
		t.Error("unknown org accepted")
	}
}

func TestCrossOrgOwnershipStillEnforced(t *testing.T) {
	n := newTestNetwork(t, multiOrgConfig())
	alice, err := n.NewGatewayFor("OrgA", "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := n.NewGatewayFor("OrgB", "bob")
	if err != nil {
		t.Fatal(err)
	}
	setRecord(t, alice, "cross-org", "v1")
	// Bob (another org) cannot overwrite Alice's record.
	in := []byte(`{"key":"cross-org","checksum":"v2"}`)
	if _, err := bob.Submit(provenance.ChaincodeName, provenance.FnSet, in); err == nil {
		t.Error("cross-org overwrite succeeded")
	}
}
