package fabric

import (
	"testing"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// echoChaincode is a trivial v2 contract used to observe an upgrade.
type echoChaincode struct{}

func (echoChaincode) Init(stub *shim.Stub) shim.Response { return shim.Success(nil) }

func (echoChaincode) Invoke(stub *shim.Stub) shim.Response {
	return shim.Success([]byte("v2:" + stub.Function()))
}

func TestChaincodeUpgradeSwapsImplementation(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	// v1 (provenance) rejects unknown functions.
	if _, err := gw.Evaluate(provenance.ChaincodeName, "anything"); err == nil {
		t.Fatal("v1 answered unknown function")
	}
	heightBefore := n.Peers()[0].Height()

	if err := n.UpgradeChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return echoChaincode{} }); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	// v2 echoes; the upgrade itself added a block.
	payload, err := gw.Evaluate(provenance.ChaincodeName, "anything")
	if err != nil {
		t.Fatalf("v2 evaluate: %v", err)
	}
	if string(payload) != "v2:anything" {
		t.Errorf("payload = %q", payload)
	}
	if n.Peers()[0].Height() <= heightBefore {
		t.Error("upgrade left no ledger record")
	}
}

func TestUpgradeUnknownChaincodeFails(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	err := n.UpgradeChaincode("ghost", func() shim.Chaincode { return echoChaincode{} })
	if err == nil {
		t.Error("upgrade of unknown chaincode succeeded")
	}
}
