package fabric

import (
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// TestGossipOnlyPeerCatchesUp verifies the partition-tolerance property:
// a peer with no connection to the ordering service converges to the same
// ledger purely via gossip anti-entropy from its neighbours.
func TestGossipOnlyPeerCatchesUp(t *testing.T) {
	cfg := testConfig()
	cfg.Gossip = true
	n := newTestNetwork(t, cfg)

	// Add the orderer-less peer BEFORE traffic so it must receive every
	// block via gossip.
	edge, err := n.AddGossipPeer(device.RPi3BPlus,
		map[string]shim.Chaincode{provenance.ChaincodeName: provenance.New()})
	if err != nil {
		t.Fatal(err)
	}

	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		setRecord(t, gw, "g-item-"+string(rune('a'+i)), "cs")
	}
	target := n.Peers()[0].Height()

	deadline := time.Now().Add(10 * time.Second)
	for edge.Height() < target {
		if time.Now().After(deadline) {
			t.Fatalf("gossip peer at height %d, want %d", edge.Height(), target)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := edge.Ledger().VerifyChain(); err != nil {
		t.Errorf("gossip peer chain: %v", err)
	}
	// The gossip peer answers queries identically to ordered peers.
	resp, err := edge.Query(provenance.ChaincodeName, provenance.FnGet,
		[][]byte{[]byte("g-item-a")}, gw.Identity().Serialize())
	if err != nil || resp.Status != shim.OK {
		t.Errorf("gossip peer query: %v %+v", err, resp)
	}
}

// TestGossipIsolationAndHeal verifies that an isolated gossip-only peer
// stalls during the partition and converges after healing.
func TestGossipIsolationAndHeal(t *testing.T) {
	cfg := testConfig()
	cfg.Gossip = true
	n := newTestNetwork(t, cfg)
	edge, err := n.AddGossipPeer(device.RPi3BPlus,
		map[string]shim.Chaincode{provenance.ChaincodeName: provenance.New()})
	if err != nil {
		t.Fatal(err)
	}
	n.Gossip().Isolate(edge.Name())

	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	setRecord(t, gw, "during-partition", "cs")
	time.Sleep(150 * time.Millisecond)
	if edge.Height() != 0 {
		t.Fatalf("isolated peer received blocks: height %d", edge.Height())
	}

	n.Gossip().Heal(edge.Name())
	target := n.Peers()[0].Height()
	deadline := time.Now().Add(10 * time.Second)
	for edge.Height() < target {
		if time.Now().After(deadline) {
			t.Fatalf("healed peer at height %d, want %d", edge.Height(), target)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAddGossipPeerRequiresGossip verifies the configuration guard.
func TestAddGossipPeerRequiresGossip(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	if _, err := n.AddGossipPeer(device.RPi3BPlus, nil); err == nil {
		t.Error("AddGossipPeer without gossip succeeded")
	}
}
