package fabric

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Errors returned by the gateway.
var (
	ErrCommitTimeout = errors.New("fabric: timed out waiting for commit")
	ErrTxInvalidated = errors.New("fabric: transaction invalidated at commit")
	ErrEndorsement   = errors.New("fabric: endorsement failed")
)

// TxResult reports a committed transaction.
type TxResult struct {
	TxID     string
	BlockNum uint64
	Code     blockstore.ValidationCode
	Payload  []byte
	// Latency is the wall-clock submit-to-commit duration.
	Latency time.Duration
}

// Endorser is anything that can simulate and sign a proposal: a local
// *peer.Peer, or a transport client for a peer served by another process.
// The gateway fans proposals to all of them interchangeably.
type Endorser interface {
	ProcessProposal(prop *endorser.Proposal) (*endorser.Response, error)
}

// Gateway is the client-side library half of the Fabric SDK: it signs
// proposals, collects endorsements, submits envelopes to ordering, and
// waits for commit events — the machinery HyperProv's NodeJS client wraps.
// A gateway is bound to exactly one channel; ForChannel derives a sibling
// bound to another channel of the same network.
type Gateway struct {
	net           *Network
	channel       string
	signer        *identity.SigningIdentity
	exec          *device.Executor
	commitTimeout time.Duration
	// remote are extra endorsers beyond the network's local peers
	// (typically transport clients for peers in other OS processes).
	remote []Endorser

	// ewma holds the per-endorser latency estimates behind the
	// endorse_peer_latency gauges (lazily initialized; guarded by ewmaMu).
	ewmaMu sync.Mutex
	ewma   map[string]time.Duration
}

// AddEndorser attaches an additional endorser (a remote peer handle) that
// Submit will fan proposals to alongside the network's local peers. The
// remote peer must belong to an organization this network's MSP trusts,
// or its endorsements will be rejected client-side.
func (g *Gateway) AddEndorser(e Endorser) { g.remote = append(g.remote, e) }

// Identity returns the gateway's signing identity.
func (g *Gateway) Identity() *identity.SigningIdentity { return g.signer }

// ChannelID returns the channel this gateway is bound to.
func (g *Gateway) ChannelID() string { return g.channel }

// ForChannel returns a gateway with the same identity and executor bound
// to another channel of the same network. Remote endorsers are not carried
// over — they were dialled for the original channel.
func (g *Gateway) ForChannel(ch string) (*Gateway, error) {
	cr, err := g.net.channel(ch)
	if err != nil {
		return nil, err
	}
	return &Gateway{
		net:           g.net,
		channel:       cr.id,
		signer:        g.signer,
		exec:          g.exec,
		commitTimeout: g.commitTimeout,
	}, nil
}

// Network returns the network this gateway is bound to.
func (g *Gateway) Network() *Network { return g.net }

// Executor returns the gateway's client-side device executor.
func (g *Gateway) Executor() *device.Executor { return g.exec }

// SetCommitTimeout overrides the commit-wait timeout (wall clock).
func (g *Gateway) SetCommitTimeout(d time.Duration) { g.commitTimeout = d }

// Submit runs the full execute–order–validate flow for one transaction and
// blocks until it commits (or fails validation / times out).
func (g *Gateway) Submit(chaincode, fn string, args ...[]byte) (*TxResult, error) {
	start := time.Now()
	creator := g.signer.Serialize()
	txID, err := endorser.NewTxID(creator)
	if err != nil {
		return nil, err
	}
	prop := &endorser.Proposal{
		TxID:      txID,
		ChannelID: g.channel,
		Chaincode: chaincode,
		Function:  fn,
		Args:      args,
		Creator:   creator,
		Timestamp: time.Now().UTC(),
	}
	if g.exec != nil {
		g.exec.Sign()
	}
	sig, err := g.signer.Sign(prop.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("fabric: sign proposal: %w", err)
	}
	prop.Signature = sig

	// Endorse on this channel's peer instances in parallel (the paper's
	// client library sends to every peer of the single org), plus any
	// attached remote endorsers.
	peers := g.net.mustChannel(g.channel).peers
	endorsers := make([]Endorser, 0, len(peers)+len(g.remote))
	for _, p := range peers {
		endorsers = append(endorsers, p)
	}
	endorsers = append(endorsers, g.remote...)
	type result struct {
		resp *endorser.Response
		err  error
	}
	// Buffered to the fan-out width so stragglers can finish and exit after
	// Submit has already moved on — nothing blocks on an abandoned send.
	resCh := make(chan result, len(endorsers))
	for i, e := range endorsers {
		go func(i int, e Endorser) {
			t0 := time.Now()
			resp, err := e.ProcessProposal(prop)
			if err == nil {
				g.observeEndorseLatency(endorserName(e, i), time.Since(t0))
			}
			resCh <- result{resp: resp, err: err}
		}(i, e)
	}

	// Collect endorsements as they arrive and return as soon as a
	// consistent, policy-satisfying majority exists instead of waiting for
	// the slowest endorser: one strangled peer must not set the floor of
	// every transaction's latency. Majority (not just policy) is required
	// for the early exit because peers that are catching up may simulate
	// against stale state — accepting the single fastest answer would let a
	// stale read set through to a certain MVCC invalidation. When no
	// majority forms, the exhaustive path below keeps the pre-early-return
	// behaviour: largest consistent group, policy-checked. Late arrivals
	// drain into the buffered channel and are ignored. Signature checks go
	// through the MSP's verification cache; the modeled client-side verify
	// cost is charged per actual ECDSA check (onMiss).
	var onMiss func()
	if g.exec != nil {
		onMiss = func() { g.exec.Verify() }
	}
	policy, msp := g.net.Policy(), g.net.MSP()
	quorum := len(endorsers)/2 + 1
	var resps []*endorser.Response
	var errs []error
	accepted := false
	for got := 0; got < len(endorsers); {
		r := <-resCh
		got++
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		resps = append(resps, r.resp)
		if got == len(endorsers) {
			break // everyone answered: take the exhaustive path
		}
		group := largestConsistentGroup(resps)
		if len(group) >= quorum && endorser.CheckEndorsementsFunc(policy, msp, group, onMiss) == nil {
			resps = group
			accepted = true
			break
		}
	}
	if !accepted {
		if len(resps) == 0 {
			return nil, fmt.Errorf("%w: %v", ErrEndorsement, errors.Join(errs...))
		}
		resps = largestConsistentGroup(resps)
		if err := endorser.CheckEndorsementsFunc(policy, msp, resps, onMiss); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrEndorsement, err)
		}
	}

	// Assemble and sign the envelope.
	env := blockstore.Envelope{
		TxID:      txID,
		ChannelID: g.channel,
		Chaincode: chaincode,
		Function:  fn,
		Args:      args,
		Creator:   creator,
		Timestamp: prop.Timestamp,
		RWSet:     resps[0].RWSet,
		Response:  resps[0].Payload,
		Events:    resps[0].Events,
	}
	for _, r := range resps {
		env.Endorsements = append(env.Endorsements, blockstore.Endorsement{
			Endorser:  r.Endorser,
			Signature: r.Signature,
		})
	}
	if g.exec != nil {
		g.exec.Sign()
	}
	envSig, err := g.signer.Sign(env.SignedBytes())
	if err != nil {
		return nil, fmt.Errorf("fabric: sign envelope: %w", err)
	}
	env.Signature = envSig

	// Register for the commit event before submitting (no lost wakeups),
	// then broadcast to ordering.
	commitPeer := peers[0]
	wait := commitPeer.RegisterTxListener(txID)
	if g.exec != nil {
		g.exec.Transfer(len(resps[0].RWSet) + 768) // client -> orderer
	}
	// The propose span covers the client-side work — proposal signing,
	// endorsement fan-out, and envelope assembly — ending at broadcast.
	g.net.Tracer().Observe(txID, trace.StagePropose, "gateway", start, "")
	if err := g.net.mustChannel(g.channel).orderer.Submit(env); err != nil {
		return nil, fmt.Errorf("fabric: broadcast: %w", err)
	}

	select {
	case ev := <-wait:
		res := &TxResult{
			TxID:     txID,
			BlockNum: ev.BlockNum,
			Code:     ev.Code,
			Payload:  resps[0].Payload,
			Latency:  time.Since(start),
		}
		if ev.Code != blockstore.TxValid {
			return res, fmt.Errorf("%w: %s", ErrTxInvalidated, ev.Code)
		}
		return res, nil
	case <-time.After(g.commitTimeout):
		return nil, fmt.Errorf("%w: tx %s after %v", ErrCommitTimeout, txID, g.commitTimeout)
	}
}

// endorserName labels an endorser for the per-endorser latency gauges:
// local peers by name, transport clients by remote address, anything else
// by fan-out position.
func endorserName(e Endorser, i int) string {
	switch v := e.(type) {
	case interface{ Name() string }:
		return v.Name()
	case interface{ Addr() string }:
		return v.Addr()
	default:
		return fmt.Sprintf("endorser%d", i)
	}
}

// observeEndorseLatency folds one proposal round-trip into the endorser's
// EWMA (alpha 1/4) and publishes it as an endorse_peer_latency gauge in
// nanoseconds. Operators read the family to spot the straggler the quorum
// early-return is hiding from transaction latency.
func (g *Gateway) observeEndorseLatency(name string, d time.Duration) {
	g.ewmaMu.Lock()
	prev, ok := g.ewma[name]
	if !ok {
		if g.ewma == nil {
			g.ewma = make(map[string]time.Duration)
		}
		prev = d
	}
	v := prev + (d-prev)/4
	g.ewma[name] = v
	g.ewmaMu.Unlock()
	//hyperprov:allow metricnames suffix is the channel's bounded endorser set, not request input
	g.net.Metrics().Gauge(metrics.EndorsePeerLatency + "_" + name).Set(int64(v))
}

// largestConsistentGroup partitions endorsements by their simulated-result
// digest and returns the biggest group (ties broken by first occurrence).
func largestConsistentGroup(resps []*endorser.Response) []*endorser.Response {
	if len(resps) <= 1 {
		return resps
	}
	groups := make(map[string][]*endorser.Response)
	order := make([]string, 0, len(resps))
	for _, r := range resps {
		sum := sha256.Sum256(append(append([]byte{}, r.RWSet...), r.Payload...))
		key := string(sum[:])
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], r)
	}
	best := groups[order[0]]
	for _, key := range order[1:] {
		if len(groups[key]) > len(best) {
			best = groups[key]
		}
	}
	return best
}

// Evaluate runs a read-only query against a single peer of the gateway's
// channel (round-robin would be a refinement; peer 0 matches the paper's
// client behaviour).
func (g *Gateway) Evaluate(chaincode, fn string, args ...[]byte) ([]byte, error) {
	resp, err := g.net.mustChannel(g.channel).peers[0].Query(chaincode, fn, args, g.signer.Serialize())
	if err != nil {
		return nil, err
	}
	if resp.Status != shim.OK {
		return nil, fmt.Errorf("fabric: evaluate %s.%s: %s", chaincode, fn, resp.Message)
	}
	return resp.Payload, nil
}
