package fabric

import (
	"fmt"
	"testing"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/trace"
)

func traceTestConfig() Config {
	return Config{
		ChannelID:      "tracech",
		Org:            "Org1",
		PeerProfiles:   []device.Profile{device.XeonE51603, device.XeonE51603},
		OrdererProfile: device.XeonE51603,
		Batch:          orderer.BatchConfig{MaxMessageCount: 1, BatchTimeout: orderer.DefaultBatchConfig().BatchTimeout},
		Consensus:      ConsensusSolo,
	}
}

// A submitted transaction must leave a complete lifecycle trace in the
// network's recorder: trace ID == txID, spans for the propose, endorse,
// order, and all three commit stages, and the final validation code as
// outcome.
func TestSubmitLeavesFullLifecycleTrace(t *testing.T) {
	n, err := NewNetwork(traceTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if err := n.DeployChaincode("provenance", func() shim.Chaincode { return provenance.New() }); err != nil {
		t.Fatal(err)
	}
	gw, err := n.NewGateway("tracer-client")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gw.Submit("provenance", provenance.FnSet,
		[]byte(`{"key":"trace-k1","checksum":"sha256:0001"}`))
	if err != nil {
		t.Fatal(err)
	}

	tr, ok := n.Tracer().Lookup(res.TxID)
	if !ok {
		t.Fatalf("no trace recorded for committed tx %s", res.TxID)
	}
	if tr.ID != res.TxID {
		t.Errorf("trace ID = %q, want %q", tr.ID, res.TxID)
	}
	if !tr.Done {
		t.Error("trace not completed after commit")
	}
	if tr.Outcome != "VALID" {
		t.Errorf("outcome = %q, want VALID", tr.Outcome)
	}
	if tr.Total <= 0 {
		t.Errorf("total = %v, want > 0", tr.Total)
	}

	want := []string{
		trace.StagePropose,
		trace.StageEndorse,
		trace.StageOrder,
		trace.StageCommitPreval,
		trace.StageCommitMVCC,
		trace.StageCommitPersist,
	}
	stages := make(map[string]trace.Span, len(tr.Spans))
	for _, s := range tr.Spans {
		stages[s.Stage] = s
	}
	for _, st := range want {
		if _, ok := stages[st]; !ok {
			t.Errorf("missing %s span; got %+v", st, tr.Spans)
		}
	}
	if sp := stages[trace.StagePropose]; sp.Peer != "gateway" {
		t.Errorf("propose span peer = %q, want gateway", sp.Peer)
	}
	if sp := stages[trace.StageOrder]; sp.Peer != "orderer" {
		t.Errorf("order span peer = %q, want orderer", sp.Peer)
	}
	// Commit spans come from exactly one peer (peer 0): tracing every peer
	// would duplicate stages and race Complete.
	if sp := stages[trace.StageCommitPersist]; sp.Peer != n.Peers()[0].Name() {
		t.Errorf("persist span peer = %q, want %q", sp.Peer, n.Peers()[0].Name())
	}

	// The completed trace is also visible through the recent and slow views
	// the admin endpoint serves.
	foundRecent := false
	for _, r := range n.Tracer().Recent(0) {
		if r.ID == res.TxID {
			foundRecent = true
		}
	}
	if !foundRecent {
		t.Error("committed trace missing from Recent()")
	}
}

// Every committed transaction's trace must be completed — the live set
// drains back to zero, so the recorder cannot grow without bound under a
// sustained workload.
func TestTracesDrainAfterCommit(t *testing.T) {
	n, err := NewNetwork(traceTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if err := n.DeployChaincode("provenance", func() shim.Chaincode { return provenance.New() }); err != nil {
		t.Fatal(err)
	}
	gw, err := n.NewGateway("drain-client")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		arg := fmt.Sprintf(`{"key":"drain-k%d","checksum":"sha256:%04d"}`, i, i)
		if _, err := gw.Submit("provenance", provenance.FnSet, []byte(arg)); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Tracer().LiveCount(); got != 0 {
		t.Errorf("live traces after commits = %d, want 0", got)
	}
	if got := len(n.Tracer().Recent(0)); got < 6 { // 5 sets + instantiate
		t.Errorf("recent traces = %d, want >= 6", got)
	}
}
