package fabric

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// Cross-channel isolation tests: every channel of a multi-tenant network is
// a fully independent ledger. Nothing written on one channel — state,
// history, or the rich-query secondary indexes derived from it — may be
// observable from another, and a tenant's state fingerprint must not move
// when a neighbouring tenant commits.

// newTwoChannelNetwork assembles a network whose peers all serve tenant-a
// and tenant-b, with the provenance chaincode deployed on both.
func newTwoChannelNetwork(t *testing.T) *Network {
	t.Helper()
	cfg := testConfig()
	cfg.ChannelID = ""
	cfg.Channels = []ChannelConfig{{ID: "tenant-a"}, {ID: "tenant-b"}}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	for _, ch := range n.Channels() {
		if err := n.DeployChaincodeOn(ch, provenance.ChaincodeName,
			func() shim.Chaincode { return provenance.New() }); err != nil {
			t.Fatalf("deploy on %s: %v", ch, err)
		}
	}
	return n
}

func channelGateway(t *testing.T, n *Network, ch string) *Gateway {
	t.Helper()
	gw, err := n.Gateway(ch)
	if err != nil {
		t.Fatalf("Gateway(%s): %v", ch, err)
	}
	return gw
}

func TestChannelStateAndHistoryIsolation(t *testing.T) {
	n := newTwoChannelNetwork(t)
	gwA := channelGateway(t, n, "tenant-a")
	gwB := channelGateway(t, n, "tenant-b")

	// The same key lives on both channels with independent values and
	// version histories: two writes on tenant-a, one on tenant-b.
	setRecord(t, gwA, "shared", "sha256:a1")
	setRecord(t, gwA, "shared", "sha256:a2")
	setRecord(t, gwA, "only-a", "sha256:only")
	setRecord(t, gwB, "shared", "sha256:b1")

	readShared := func(gw *Gateway) string {
		payload, err := gw.Evaluate(provenance.ChaincodeName, provenance.FnGet, []byte("shared"))
		if err != nil {
			t.Fatalf("get shared on %s: %v", gw.ChannelID(), err)
		}
		var rec provenance.Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			t.Fatal(err)
		}
		return rec.Checksum
	}
	if got := readShared(gwA); got != "sha256:a2" {
		t.Errorf("tenant-a shared = %s, want sha256:a2", got)
	}
	if got := readShared(gwB); got != "sha256:b1" {
		t.Errorf("tenant-b shared = %s, want sha256:b1", got)
	}

	// A key written only on tenant-a does not exist on tenant-b.
	if _, err := gwB.Evaluate(provenance.ChaincodeName, provenance.FnGet, []byte("only-a")); err == nil {
		t.Error("tenant-b can read a key written only on tenant-a")
	}

	// Each channel's history database holds only its own versions.
	historyLen := func(gw *Gateway) int {
		payload, err := gw.Evaluate(provenance.ChaincodeName, provenance.FnGetHistory, []byte("shared"))
		if err != nil {
			t.Fatalf("getHistory on %s: %v", gw.ChannelID(), err)
		}
		var entries []provenance.HistoryRecord
		if err := json.Unmarshal(payload, &entries); err != nil {
			t.Fatal(err)
		}
		return len(entries)
	}
	if got := historyLen(gwA); got != 2 {
		t.Errorf("tenant-a history depth = %d, want 2", got)
	}
	if got := historyLen(gwB); got != 1 {
		t.Errorf("tenant-b history depth = %d, want 1 (tenant-a's versions bled across)", got)
	}
}

func TestChannelRichQueryIndexIsolation(t *testing.T) {
	n := newTwoChannelNetwork(t)
	gwA := channelGateway(t, n, "tenant-a")
	gwB := channelGateway(t, n, "tenant-b")

	for i := 0; i < 3; i++ {
		setRecord(t, gwA, fmt.Sprintf("a-item-%d", i), fmt.Sprintf("sha256:a-%d", i))
	}
	setRecord(t, gwB, "b-item", "sha256:b-0")

	// The checksum secondary index is per channel: tenant-a's checksums do
	// not resolve on tenant-b, while tenant-b's own do.
	if _, err := gwB.Evaluate(provenance.ChaincodeName, provenance.FnGetByChecksum,
		[]byte("sha256:a-1")); err == nil {
		t.Error("tenant-b resolved a checksum indexed only on tenant-a")
	}
	if _, err := gwB.Evaluate(provenance.ChaincodeName, provenance.FnGetByChecksum,
		[]byte("sha256:b-0")); err != nil {
		t.Errorf("tenant-b cannot resolve its own checksum: %v", err)
	}

	// A Mango rich query over all records, served from each channel's
	// indexed state store, sees only that channel's rows.
	queryAll := func(gw *Gateway) []provenance.Record {
		payload, err := gw.Evaluate(provenance.ChaincodeName, provenance.FnRichQuery,
			[]byte(`{"selector":{"ts":{"$gt":0}}}`))
		if err != nil {
			t.Fatalf("richQuery on %s: %v", gw.ChannelID(), err)
		}
		var page provenance.QueryPage
		if err := json.Unmarshal(payload, &page); err != nil {
			t.Fatal(err)
		}
		return page.Records
	}
	if recs := queryAll(gwA); len(recs) != 3 {
		t.Errorf("tenant-a rich query returned %d records, want 3", len(recs))
	}
	recs := queryAll(gwB)
	if len(recs) != 1 {
		t.Errorf("tenant-b rich query returned %d records, want 1", len(recs))
	}
	for _, r := range recs {
		if r.Key != "b-item" {
			t.Errorf("tenant-b rich query surfaced foreign record %q", r.Key)
		}
	}
}

func TestChannelFingerprintUnmovedByNeighbour(t *testing.T) {
	n := newTwoChannelNetwork(t)
	gwA := channelGateway(t, n, "tenant-a")
	gwB := channelGateway(t, n, "tenant-b")

	setRecord(t, gwA, "a-base", "sha256:base")
	peersA, err := n.ChannelPeers("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	// Let the a-base block finish disseminating so the baseline is not
	// racing ordinary intra-channel propagation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		heights := map[uint64]int{}
		for _, p := range peersA {
			p.Sync()
			heights[p.Height()]++
		}
		if len(heights) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant-a peers did not converge: %v", heights)
		}
		time.Sleep(5 * time.Millisecond)
	}
	type snap struct {
		height uint64
		fp     string
	}
	before := make([]snap, len(peersA))
	for i, p := range peersA {
		before[i] = snap{p.Height(), p.StateFingerprint()}
	}

	// A burst of tenant-b commits must leave every tenant-a peer's height,
	// state fingerprint, and snapshot reads exactly where they were.
	for i := 0; i < 8; i++ {
		setRecord(t, gwB, fmt.Sprintf("b-burst-%d", i), fmt.Sprintf("sha256:burst-%d", i))
	}
	for i, p := range peersA {
		p.Sync()
		if got := p.Height(); got != before[i].height {
			t.Errorf("%s tenant-a height moved %d -> %d on tenant-b commits",
				p.Name(), before[i].height, got)
		}
		if got := p.StateFingerprint(); got != before[i].fp {
			t.Errorf("%s tenant-a fingerprint changed on tenant-b commits", p.Name())
		}
	}
	// And the record written before the burst still reads back unchanged.
	payload, err := gwA.Evaluate(provenance.ChaincodeName, provenance.FnGet, []byte("a-base"))
	if err != nil {
		t.Fatal(err)
	}
	var rec provenance.Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Checksum != "sha256:base" {
		t.Errorf("tenant-a record corrupted by tenant-b burst: %+v", rec)
	}
}
