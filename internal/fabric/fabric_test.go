package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// testConfig returns a fast network: zero modeled cost, tiny batches.
func testConfig() Config {
	cfg := DesktopConfig()
	cfg.Clock = device.NopClock{}
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 1, BatchTimeout: 50 * time.Millisecond, PreferredMaxBytes: 1 << 30,
	}
	for i := range cfg.PeerProfiles {
		cfg.PeerProfiles[i].JitterPct = 0
	}
	return cfg
}

func newTestNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		t.Fatal(err)
	}
	return n
}

func setRecord(t *testing.T, gw *Gateway, key, checksum string, parents ...string) *TxResult {
	t.Helper()
	in := map[string]any{"key": key, "checksum": checksum}
	if len(parents) > 0 {
		in["parents"] = parents
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gw.Submit(provenance.ChaincodeName, provenance.FnSet, raw)
	if err != nil {
		t.Fatalf("Submit set %q: %v", key, err)
	}
	return res
}

func TestEndToEndSubmitAndQuery(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	res := setRecord(t, gw, "item1", "sha256:abc")
	if res.TxID == "" || res.Latency <= 0 {
		t.Errorf("result = %+v", res)
	}
	payload, err := gw.Evaluate(provenance.ChaincodeName, provenance.FnGet, []byte("item1"))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	var rec provenance.Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Checksum != "sha256:abc" {
		t.Errorf("record = %+v", rec)
	}
	if rec.Creator == "" {
		t.Error("creator not recorded")
	}
}

func TestAllPeersConverge(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		setRecord(t, gw, fmt.Sprintf("item%d", i), fmt.Sprintf("cs%d", i))
	}
	// All four peers must reach the same height with verified chains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		heights := map[uint64]int{}
		for _, p := range n.Peers() {
			heights[p.Height()]++
		}
		if len(heights) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peers did not converge: %v", heights)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, p := range n.Peers() {
		if err := p.Ledger().VerifyChain(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
	// Every peer answers the same query identically.
	for _, p := range n.Peers() {
		resp, err := p.Query(provenance.ChaincodeName, provenance.FnGet,
			[][]byte{[]byte("item3")}, gw.Identity().Serialize())
		if err != nil || resp.Status != shim.OK {
			t.Errorf("%s query: %v %+v", p.Name(), err, resp)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	cfg := testConfig()
	cfg.Batch.MaxMessageCount = 5
	n := newTestNetwork(t, cfg)

	const clients = 8
	const txPerClient = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*txPerClient)
	for c := 0; c < clients; c++ {
		gw, err := n.NewGateway(fmt.Sprintf("client%d", c))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, gw *Gateway) {
			defer wg.Done()
			for i := 0; i < txPerClient; i++ {
				in := fmt.Sprintf(`{"key":"c%d-item%d","checksum":"cs"}`, c, i)
				if _, err := gw.Submit(provenance.ChaincodeName, provenance.FnSet, []byte(in)); err != nil {
					errs <- err
				}
			}
		}(c, gw)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent submit: %v", err)
	}

	gw, err := n.NewGateway("verifier")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := gw.Evaluate(provenance.ChaincodeName, provenance.FnGetStats)
	if err != nil {
		t.Fatal(err)
	}
	var stats provenance.Stats
	if err := json.Unmarshal(payload, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Records != clients*txPerClient {
		t.Errorf("records = %d, want %d", stats.Records, clients*txPerClient)
	}
}

func TestLineageAcrossNetwork(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	setRecord(t, gw, "raw", "c0")
	setRecord(t, gw, "clean", "c1", "raw")
	setRecord(t, gw, "model", "c2", "clean")

	payload, err := gw.Evaluate(provenance.ChaincodeName, provenance.FnGetLineage, []byte("model"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []provenance.Record
	if err := json.Unmarshal(payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("lineage = %d records, want 3", len(recs))
	}
}

func TestRaftNetworkEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.Consensus = ConsensusRaft
	cfg.RaftNodes = 3
	n := newTestNetwork(t, cfg)
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	res := setRecord(t, gw, "raft-item", "cs")
	if res.TxID == "" {
		t.Error("empty txid")
	}
	// Kill the leader mid-stream and verify the network still commits.
	raftSvc, ok := n.Orderer().(*orderer.Raft)
	if !ok {
		t.Fatal("orderer is not raft")
	}
	leader := raftSvc.WaitLeader(5 * time.Second)
	raftSvc.KillNode(leader)
	if l := raftSvc.WaitLeader(5 * time.Second); l < 0 {
		t.Fatal("no leader after crash")
	}
	setRecord(t, gw, "raft-item-2", "cs2")
}

func TestSubmitInvalidChaincodeArgs(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	_, err = gw.Submit(provenance.ChaincodeName, provenance.FnSet, []byte("not json"))
	if !errors.Is(err, ErrEndorsement) {
		t.Fatalf("err = %v, want ErrEndorsement (simulation fails on all peers)", err)
	}
}

func TestEvaluateUnknownFunction(t *testing.T) {
	n := newTestNetwork(t, testConfig())
	gw, err := n.NewGateway("client")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Evaluate(provenance.ChaincodeName, "bogus"); err == nil {
		t.Error("bogus function evaluated")
	}
}

func TestNetworkConfigValidation(t *testing.T) {
	_, err := NewNetwork(Config{})
	if err == nil {
		t.Error("empty config accepted")
	}
}

func TestRPiConfigShape(t *testing.T) {
	cfg := RPiConfig()
	if len(cfg.PeerProfiles) != 4 {
		t.Errorf("RPi peers = %d, want 4", len(cfg.PeerProfiles))
	}
	for _, p := range cfg.PeerProfiles {
		if p.Name != device.RPi3BPlus.Name {
			t.Errorf("profile = %s", p.Name)
		}
	}
	d := DesktopConfig()
	if len(d.PeerProfiles) != 4 {
		t.Errorf("desktop peers = %d, want 4", len(d.PeerProfiles))
	}
}
