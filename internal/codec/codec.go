// Package codec is the shared substrate for HyperProv's deterministic,
// versioned, length-prefixed binary encodings. It grew out of the recovery
// checkpoint codec (PR 3 measured it ~10x faster to decode than
// encoding/json) and factors that codec's style — ASCII magic, uvarint
// framing, length-prefixed byte strings, CRC-32C trailers, and a
// sticky-error decode cursor — into primitives every hot-path codec
// (envelope, block, rwset, wire frames) builds on.
//
// The package has two halves:
//
//   - Encoding: append-style helpers over []byte plus a sync.Pool-backed
//     Buffer so steady-state encode paths (block append, frame write)
//     allocate no per-call scratch.
//   - Decoding: Dec, a bounds-checked cursor that records the first error
//     and turns every subsequent read into a no-op, so codecs read a whole
//     record linearly and check the error once.
//
// Decode failures are always one of the structured sentinels (ErrTruncated,
// ErrMalformed, ErrChecksum) wrapped with context, never a panic and never
// an unbounded allocation — the same hostile-input contract the checkpoint
// codec's fuzz target enforces.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"time"
)

// Structured decode sentinels. Every decode error wraps exactly one of
// these so callers (and fuzz targets) can classify failures with errors.Is.
var (
	// ErrTruncated reports input that ended before the structure did.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrMalformed reports input that is self-inconsistent: bad magic,
	// unsupported version, counts exceeding the remaining bytes, trailing
	// garbage, or out-of-range values.
	ErrMalformed = errors.New("codec: malformed input")
	// ErrChecksum reports a record whose CRC-32C trailer does not match
	// its body.
	ErrChecksum = errors.New("codec: checksum mismatch")
)

// castagnoli is the CRC-32C table shared by every framed codec. Castagnoli
// has hardware support on amd64/arm64, so the integrity check stays cheap
// even on the block append path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// AppendChecksum appends the big-endian CRC-32C of buf[start:] to buf.
// Codecs call it last, covering everything after the magic.
func AppendChecksum(buf []byte, start int) []byte {
	return binary.BigEndian.AppendUint32(buf, Checksum(buf[start:]))
}

// VerifyChecksum splits body||crc32c and verifies the trailer. It returns
// the body on success and ErrTruncated/ErrChecksum otherwise.
func VerifyChecksum(p []byte) ([]byte, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: %d bytes, need 4-byte checksum", ErrTruncated, len(p))
	}
	body, trailer := p[:len(p)-4], p[len(p)-4:]
	if got, want := Checksum(body), binary.BigEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}
	return body, nil
}

// --- append-style encoding helpers -----------------------------------------

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends v zigzag-encoded.
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// AppendBytes appends a length-prefixed byte string. nil and empty encode
// identically (length 0) — decoders return nil for zero length, so codecs
// built on these helpers normalize empty to nil across a round-trip.
func AppendBytes(buf, p []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBool appends a single 0/1 byte.
func AppendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendTime appends a timestamp as a presence byte plus zigzag seconds and
// uvarint nanoseconds. The zero time encodes as the single byte 0, so
// "unset" survives a round-trip exactly. Monotonic clock readings and zone
// names are deliberately dropped: decode always yields UTC, which is what
// makes re-encoding deterministic.
func AppendTime(buf []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendVarint(buf, t.Unix())
	return binary.AppendUvarint(buf, uint64(t.Nanosecond()))
}

// --- pooled encode buffers --------------------------------------------------

// Buffer is a pooled byte slice for encode paths. Typical use:
//
//	buf := codec.GetBuffer()
//	defer buf.Release()
//	buf.B = appendSomething(buf.B[:0], ...)
//	w.Write(buf.B)
//
// The backing array is recycled through a sync.Pool, so steady-state
// encoders that release their buffers allocate nothing per call once the
// pool has warmed up to the working-set record size.
type Buffer struct {
	B []byte
}

var bufferPool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 4096)} },
}

// GetBuffer returns a pooled buffer with zero length and whatever capacity
// its previous life grew to.
func GetBuffer() *Buffer {
	buf := bufferPool.Get().(*Buffer)
	buf.B = buf.B[:0]
	return buf
}

// Release returns the buffer to the pool. The caller must not touch buf.B
// afterwards; bytes that need to outlive the buffer must be copied out
// first. Oversized one-off buffers are dropped instead of pooled so a
// single pathological record cannot pin megabytes in the pool.
func (b *Buffer) Release() {
	const maxPooled = 1 << 20
	if cap(b.B) > maxPooled {
		return
	}
	bufferPool.Put(b)
}

// Grow ensures capacity for n more bytes without changing the length.
func (b *Buffer) Grow(n int) {
	if cap(b.B)-len(b.B) >= n {
		return
	}
	grown := make([]byte, len(b.B), len(b.B)+n)
	copy(grown, b.B)
	b.B = grown
}

// --- sticky-error decode cursor ---------------------------------------------

// Dec is a bounds-checked cursor over an encoded record. The first failed
// read records the error and every later read returns a zero value, so
// codecs decode a whole structure linearly and check Err once at the end —
// the same shape as the checkpoint codec's decoder.
type Dec struct {
	buf []byte
	err error
}

// NewDec returns a cursor over p.
func NewDec(p []byte) *Dec { return &Dec{buf: p} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *Dec) Len() int { return len(d.buf) }

// Fail records err (if none is recorded yet) and poisons the cursor.
func (d *Dec) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Finish reports an error if the cursor failed or if input remains — every
// HyperProv record is exactly one structure, so trailing bytes are damage.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after record", ErrMalformed, len(d.buf))
	}
	return nil
}

// Magic consumes and verifies a magic prefix plus a version byte, failing
// with ErrTruncated/ErrMalformed as appropriate. It returns the version so
// callers can range-check against what they support.
func (d *Dec) Magic(magic []byte) byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < len(magic)+1 {
		d.err = fmt.Errorf("%w: %d bytes, need %d-byte magic+version", ErrTruncated, len(d.buf), len(magic)+1)
		return 0
	}
	for i, c := range magic {
		if d.buf[i] != c {
			d.err = fmt.Errorf("%w: bad magic %q", ErrMalformed, d.buf[:len(magic)])
			return 0
		}
	}
	ver := d.buf[len(magic)]
	d.buf = d.buf[len(magic)+1:]
	return ver
}

// Uvarint reads an unsigned LEB128 value.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad uvarint", ErrTruncated)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Varint reads a zigzag-encoded value.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad varint", ErrTruncated)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Count reads an element count and sanity-bounds it by the bytes remaining
// (each element needs at least one byte), so hostile input cannot provoke
// a huge make() before the truncation is noticed.
func (d *Dec) Count() int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)) {
		d.err = fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrMalformed, v, len(d.buf))
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte string into a fresh slice. Zero
// length yields nil.
func (d *Dec) Bytes() []byte {
	p := d.BytesShared()
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// BytesShared reads a length-prefixed byte string aliasing the input
// buffer — no copy. Callers must only use it when the decoded structure is
// allowed to share the input's lifetime. Zero length yields nil.
func (d *Dec) BytesShared() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("%w: byte string of %d, %d remaining", ErrTruncated, n, len(d.buf))
		return nil
	}
	if n == 0 {
		return nil
	}
	p := d.buf[:n:n]
	d.buf = d.buf[n:]
	return p
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	return string(d.BytesShared())
}

// Byte reads a single byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("%w: need 1 byte", ErrTruncated)
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

// Bool reads a 0/1 byte, rejecting other values so encodings stay
// canonical (exactly one byte form per value).
func (d *Dec) Bool() bool {
	b := d.Byte()
	if d.err != nil {
		return false
	}
	if b > 1 {
		d.err = fmt.Errorf("%w: bool byte %#x", ErrMalformed, b)
		return false
	}
	return b == 1
}

// Time reads a timestamp written by AppendTime: zero time for presence
// byte 0, otherwise UTC seconds+nanoseconds.
func (d *Dec) Time() time.Time {
	if !d.Bool() {
		return time.Time{}
	}
	sec := d.Varint()
	nsec := d.Uvarint()
	if d.err != nil {
		return time.Time{}
	}
	if nsec >= uint64(time.Second) {
		d.err = fmt.Errorf("%w: %d nanoseconds", ErrMalformed, nsec)
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

// NormalizeTime maps t onto the exact value its encoding round-trips to:
// UTC, wall-clock only. Codecs apply it when ingesting values from
// non-canonical sources (legacy JSON records, time.Now()) so that
// encode(decode(encode(x))) is byte-identical to encode(x).
func NormalizeTime(t time.Time) time.Time {
	if t.IsZero() {
		return time.Time{}
	}
	return time.Unix(t.Unix(), int64(t.Nanosecond())).UTC()
}

// MaxCount guards explicit caller-side allocation decisions; it is the
// largest count Dec.Count can ever return (input length bound).
const MaxCount = math.MaxInt32
