package codec

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestRoundTripPrimitives drives every append helper through Dec and back.
func TestRoundTripPrimitives(t *testing.T) {
	ts := time.Unix(1700000123, 456789).UTC()
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 1<<40)
	buf = AppendVarint(buf, -12345)
	buf = AppendBytes(buf, []byte("payload"))
	buf = AppendBytes(buf, nil)
	buf = AppendString(buf, "hello")
	buf = AppendString(buf, "")
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendTime(buf, ts)
	buf = AppendTime(buf, time.Time{})

	d := NewDec(buf)
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("uvarint: got %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Fatalf("uvarint: got %d", got)
	}
	if got := d.Varint(); got != -12345 {
		t.Fatalf("varint: got %d", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("bytes: got %q", got)
	}
	if got := d.Bytes(); got != nil {
		t.Fatalf("empty bytes should decode nil, got %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("string: got %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty string: got %q", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round-trip failed")
	}
	if got := d.Time(); !got.Equal(ts) {
		t.Fatalf("time: got %v want %v", got, ts)
	}
	if got := d.Time(); !got.IsZero() {
		t.Fatalf("zero time: got %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

// TestDecSticky verifies the first error poisons all later reads.
func TestDecSticky(t *testing.T) {
	d := NewDec([]byte{0x05, 'a'}) // length 5 but only one byte follows
	if got := d.Bytes(); got != nil {
		t.Fatalf("truncated bytes returned %v", got)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", d.Err())
	}
	// All subsequent reads are no-ops returning zero values.
	if d.Uvarint() != 0 || d.Byte() != 0 || d.Bool() || d.String() != "" {
		t.Fatal("poisoned cursor returned non-zero values")
	}
	if !errors.Is(d.Finish(), ErrTruncated) {
		t.Fatalf("finish should surface first error, got %v", d.Finish())
	}
}

// TestDecTrailing verifies Finish rejects leftover bytes.
func TestDecTrailing(t *testing.T) {
	d := NewDec([]byte{0x01, 0xFF})
	if d.Byte() != 0x01 {
		t.Fatal("byte read failed")
	}
	if err := d.Finish(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed for trailing bytes, got %v", err)
	}
}

// TestMagic covers good, short, and wrong-magic inputs.
func TestMagic(t *testing.T) {
	magic := []byte("HPXX")
	good := append(append([]byte(nil), magic...), 2)
	d := NewDec(good)
	if ver := d.Magic(magic); ver != 2 || d.Err() != nil {
		t.Fatalf("magic: ver=%d err=%v", ver, d.Err())
	}

	d = NewDec(magic) // no version byte
	d.Magic(magic)
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("short magic: want ErrTruncated, got %v", d.Err())
	}

	d = NewDec([]byte("HPYY\x01"))
	d.Magic(magic)
	if !errors.Is(d.Err(), ErrMalformed) {
		t.Fatalf("wrong magic: want ErrMalformed, got %v", d.Err())
	}
}

// TestCountBound verifies hostile counts fail before allocation.
func TestCountBound(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 1<<40) // absurd count, no elements follow
	d := NewDec(buf)
	if n := d.Count(); n != 0 {
		t.Fatalf("hostile count returned %d", n)
	}
	if !errors.Is(d.Err(), ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", d.Err())
	}
}

// TestBoolCanonical rejects non-0/1 bool bytes.
func TestBoolCanonical(t *testing.T) {
	d := NewDec([]byte{0x02})
	d.Bool()
	if !errors.Is(d.Err(), ErrMalformed) {
		t.Fatalf("want ErrMalformed for bool byte 2, got %v", d.Err())
	}
}

// TestTimeBadNanos rejects nanosecond fields >= 1e9.
func TestTimeBadNanos(t *testing.T) {
	var buf []byte
	buf = append(buf, 1)
	buf = AppendVarint(buf, 1700000000)
	buf = AppendUvarint(buf, uint64(time.Second)) // out of range
	d := NewDec(buf)
	d.Time()
	if !errors.Is(d.Err(), ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", d.Err())
	}
}

// TestChecksum covers append/verify plus tamper detection.
func TestChecksum(t *testing.T) {
	body := []byte("record body")
	framed := AppendChecksum(append([]byte(nil), body...), 0)
	got, err := VerifyChecksum(framed)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("verify: %q, %v", got, err)
	}
	framed[3] ^= 0x10
	if _, err := VerifyChecksum(framed); !errors.Is(err, ErrChecksum) {
		t.Fatalf("tamper: want ErrChecksum, got %v", err)
	}
	if _, err := VerifyChecksum([]byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: want ErrTruncated, got %v", err)
	}
}

// TestBufferPoolReuse verifies the steady-state encode path stops
// allocating once the pool is warm.
func TestBufferPoolReuse(t *testing.T) {
	// Warm the pool with a buffer big enough for the test record.
	warm := GetBuffer()
	warm.Grow(1024)
	warm.Release()

	allocs := testing.AllocsPerRun(100, func() {
		buf := GetBuffer()
		buf.B = AppendString(buf.B, "steady-state record")
		buf.B = AppendUvarint(buf.B, 42)
		buf.Release()
	})
	if allocs > 0 {
		t.Fatalf("pooled encode allocated %.1f times per run", allocs)
	}
}

// TestBufferGrow verifies Grow preserves contents and extends capacity.
func TestBufferGrow(t *testing.T) {
	b := &Buffer{B: []byte("abc")}
	b.Grow(1 << 16)
	if string(b.B) != "abc" {
		t.Fatalf("grow lost contents: %q", b.B)
	}
	if cap(b.B)-len(b.B) < 1<<16 {
		t.Fatalf("grow did not extend capacity: %d", cap(b.B))
	}
}

// TestBytesShared verifies aliasing reads share the input's backing array.
func TestBytesShared(t *testing.T) {
	buf := AppendBytes(nil, []byte("shared"))
	d := NewDec(buf)
	p := d.BytesShared()
	if string(p) != "shared" {
		t.Fatalf("got %q", p)
	}
	buf[1] = 'S' // first payload byte (after 1-byte length)
	if string(p) != "Shared" {
		t.Fatal("BytesShared did not alias the input")
	}
}

// TestNormalizeTime pins the legacy-ingest normalization contract.
func TestNormalizeTime(t *testing.T) {
	loc := time.FixedZone("X", 3600)
	in := time.Date(2024, 5, 1, 12, 0, 0, 999, loc)
	norm := NormalizeTime(in)
	if norm.Location() != time.UTC {
		t.Fatalf("not UTC: %v", norm)
	}
	if !norm.Equal(in) {
		t.Fatalf("normalization changed the instant: %v vs %v", norm, in)
	}
	if !NormalizeTime(time.Time{}).IsZero() {
		t.Fatal("zero time must stay zero")
	}
	// Round-trip through the codec must be byte-stable.
	first := AppendTime(nil, norm)
	d := NewDec(first)
	again := AppendTime(nil, d.Time())
	if !bytes.Equal(first, again) {
		t.Fatal("normalized time not byte-stable across round-trip")
	}
}
