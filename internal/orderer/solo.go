package orderer

import (
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Solo is the single-node consenter (Fabric's "solo"), which the paper's
// deployments use: one Xeon machine (or one RPi) runs the orderer.
type Solo struct {
	cfg     BatchConfig
	exec    *device.Executor
	chain   *chain
	in      chan blockstore.Envelope
	stop    chan struct{}
	done    chan struct{}
	stopMu  sync.Mutex
	stopped bool
}

var _ Service = (*Solo)(nil)

// NewSolo creates and starts a solo ordering service. exec models the
// ordering machine's per-batch cost; it may be nil for zero-cost ordering.
func NewSolo(cfg BatchConfig, exec *device.Executor) *Solo {
	s := &Solo{
		cfg:   cfg.withDefaults(),
		exec:  exec,
		chain: newChain(),
		in:    make(chan blockstore.Envelope, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.loop()
	return s
}

// Submit enqueues an envelope for ordering. It blocks under backpressure.
func (s *Solo) Submit(env blockstore.Envelope) error {
	select {
	case <-s.stop:
		return ErrStopped
	default:
	}
	select {
	case s.in <- env:
		return nil
	case <-s.stop:
		return ErrStopped
	}
}

// Subscribe returns the ordered block stream with full replay.
func (s *Solo) Subscribe() <-chan *blockstore.Block { return s.chain.subscribe() }

// Height returns the number of blocks ordered.
func (s *Solo) Height() uint64 { return s.chain.height() }

// Metrics returns the ordering service's counters.
func (s *Solo) Metrics() *metrics.Registry { return s.chain.metrics }

// SetTracer attaches a trace recorder: each ordered envelope gains an
// "order" span covering enqueue to block cut. Call before traffic flows.
func (s *Solo) SetTracer(t *trace.Recorder) { s.chain.setTracer(t) }

// Stop terminates the ordering loop and closes subscriber channels.
func (s *Solo) Stop() {
	s.stopMu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.stopMu.Unlock()
	<-s.done
}

func (s *Solo) loop() {
	defer close(s.done)
	defer s.chain.close()

	cutter := newBlockCutter(s.cfg)
	var timer *time.Timer
	var timeout <-chan time.Time

	// The batch timer runs in wall time; when the device clock is scaled,
	// scale the timeout identically so modeled behaviour is preserved.
	batchTimeout := s.cfg.BatchTimeout
	if s.exec != nil {
		if scale := s.exec.Clock().Scale(); scale > 0 {
			batchTimeout = time.Duration(float64(batchTimeout) * scale)
		}
	}

	armTimer := func() {
		if timer == nil {
			timer = time.NewTimer(batchTimeout)
			timeout = timer.C
		}
	}
	disarmTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timeout = nil
		}
	}
	emit := func(batch []blockstore.Envelope) {
		if len(batch) == 0 {
			return
		}
		if s.exec != nil {
			s.exec.Order()
		}
		// appendBatch cannot fail here: numbers and hashes are generated
		// from the chain itself.
		_, _ = s.chain.appendBatch(batch)
	}

	for {
		select {
		case env := <-s.in:
			batches, pending, err := cutter.ordered(env)
			if err != nil {
				// Unserializable envelope: it can never be hashed into a
				// block, so drop it rather than poison a batch.
				s.chain.metrics.Counter(metrics.EnvelopesRejected).Inc()
			} else {
				s.chain.markEnqueued(env.TxID)
			}
			for _, b := range batches {
				emit(b)
			}
			if pending {
				armTimer()
			} else {
				disarmTimer()
			}
		case <-timeout:
			disarmTimer()
			emit(cutter.cut())
		case <-s.stop:
			disarmTimer()
			// Flush any pending batch so submitted txs are not lost.
			emit(cutter.cut())
			return
		}
	}
}
