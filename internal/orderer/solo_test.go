package orderer

import (
	"fmt"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/device"
)

// collect drains blocks from sub until n envelopes have been seen or the
// timeout expires, returning the blocks.
func collect(t *testing.T, sub <-chan *blockstore.Block, n int, timeout time.Duration) []*blockstore.Block {
	t.Helper()
	var blocks []*blockstore.Block
	seen := 0
	deadline := time.After(timeout)
	for seen < n {
		select {
		case b, ok := <-sub:
			if !ok {
				t.Fatalf("stream closed after %d/%d envelopes", seen, n)
			}
			blocks = append(blocks, b)
			seen += len(b.Envelopes)
		case <-deadline:
			t.Fatalf("timeout after %d/%d envelopes", seen, n)
		}
	}
	return blocks
}

func TestSoloOrdersByCount(t *testing.T) {
	s := NewSolo(BatchConfig{MaxMessageCount: 4, BatchTimeout: time.Hour, PreferredMaxBytes: 1 << 30}, nil)
	defer s.Stop()
	sub := s.Subscribe()
	for i := 0; i < 8; i++ {
		if err := s.Submit(env(fmt.Sprintf("t%d", i), 16)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	blocks := collect(t, sub, 8, 5*time.Second)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	if blocks[0].Header.Number != 0 || blocks[1].Header.Number != 1 {
		t.Errorf("block numbers = %d, %d", blocks[0].Header.Number, blocks[1].Header.Number)
	}
}

func TestSoloBatchTimeout(t *testing.T) {
	s := NewSolo(BatchConfig{MaxMessageCount: 1000, BatchTimeout: 30 * time.Millisecond, PreferredMaxBytes: 1 << 30}, nil)
	defer s.Stop()
	sub := s.Subscribe()
	start := time.Now()
	if err := s.Submit(env("lonely", 16)); err != nil {
		t.Fatal(err)
	}
	blocks := collect(t, sub, 1, 5*time.Second)
	elapsed := time.Since(start)
	if len(blocks[0].Envelopes) != 1 {
		t.Errorf("batch size = %d", len(blocks[0].Envelopes))
	}
	if elapsed < 20*time.Millisecond {
		t.Errorf("block cut after %v, before the batch timeout", elapsed)
	}
}

func TestSoloSubscribeReplays(t *testing.T) {
	s := NewSolo(BatchConfig{MaxMessageCount: 1, BatchTimeout: time.Hour, PreferredMaxBytes: 1 << 30}, nil)
	defer s.Stop()
	early := s.Subscribe()
	for i := 0; i < 3; i++ {
		if err := s.Submit(env(fmt.Sprintf("t%d", i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, early, 3, 5*time.Second)

	// A late subscriber must replay all 3 blocks.
	late := s.Subscribe()
	blocks := collect(t, late, 3, 5*time.Second)
	if len(blocks) != 3 {
		t.Fatalf("late subscriber got %d blocks, want 3", len(blocks))
	}
	for i, b := range blocks {
		if b.Header.Number != uint64(i) {
			t.Errorf("replayed block %d has number %d", i, b.Header.Number)
		}
	}
}

func TestSoloChainsBlocks(t *testing.T) {
	s := NewSolo(BatchConfig{MaxMessageCount: 1, BatchTimeout: time.Hour, PreferredMaxBytes: 1 << 30}, nil)
	defer s.Stop()
	sub := s.Subscribe()
	for i := 0; i < 4; i++ {
		if err := s.Submit(env(fmt.Sprintf("t%d", i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	blocks := collect(t, sub, 4, 5*time.Second)
	store := blockstore.NewStore()
	for _, b := range blocks {
		if err := store.Append(b); err != nil {
			t.Fatalf("chain linkage broken: %v", err)
		}
	}
	if err := store.VerifyChain(); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
}

func TestSoloStopFlushesPending(t *testing.T) {
	s := NewSolo(BatchConfig{MaxMessageCount: 1000, BatchTimeout: time.Hour, PreferredMaxBytes: 1 << 30}, nil)
	sub := s.Subscribe()
	if err := s.Submit(env("pending", 8)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the loop pick it up
	s.Stop()
	var got int
	for b := range sub {
		got += len(b.Envelopes)
	}
	if got != 1 {
		t.Errorf("flushed %d envelopes on stop, want 1", got)
	}
	if err := s.Submit(env("late", 8)); err == nil {
		t.Error("Submit after Stop succeeded")
	}
}

func TestSoloWithDeviceCost(t *testing.T) {
	exec := device.NewExecutor(device.RPi3BPlus, device.NopClock{}, 7)
	s := NewSolo(BatchConfig{MaxMessageCount: 1, BatchTimeout: time.Hour, PreferredMaxBytes: 1 << 30}, exec)
	defer s.Stop()
	sub := s.Subscribe()
	if err := s.Submit(env("t", 8)); err != nil {
		t.Fatal(err)
	}
	collect(t, sub, 1, 5*time.Second)
	if exec.BusyTime() == 0 {
		t.Error("orderer device cost not accounted")
	}
}

func TestSoloDoubleStop(t *testing.T) {
	s := NewSolo(BatchConfig{}, nil)
	s.Stop()
	s.Stop() // must not panic or deadlock
	if s.Height() != 0 {
		t.Errorf("height = %d", s.Height())
	}
}
