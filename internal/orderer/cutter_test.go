package orderer

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

func env(id string, payload int) blockstore.Envelope {
	return blockstore.Envelope{
		TxID:     id,
		Function: "set",
		Args:     [][]byte{make([]byte, payload)},
	}
}

func TestCutterMaxMessageCount(t *testing.T) {
	bc := newBlockCutter(BatchConfig{MaxMessageCount: 3, PreferredMaxBytes: 1 << 30, BatchTimeout: time.Hour})
	var cuts [][]blockstore.Envelope
	for i := 0; i < 7; i++ {
		batches, _, _ := bc.ordered(env(fmt.Sprintf("t%d", i), 10))
		cuts = append(cuts, batches...)
	}
	if len(cuts) != 2 {
		t.Fatalf("cuts = %d, want 2 (batches of 3)", len(cuts))
	}
	for i, c := range cuts {
		if len(c) != 3 {
			t.Errorf("batch %d size = %d, want 3", i, len(c))
		}
	}
	rest := bc.cut()
	if len(rest) != 1 {
		t.Errorf("remainder = %d, want 1", len(rest))
	}
}

func TestCutterPreferredMaxBytes(t *testing.T) {
	// Each envelope ~1KB payload; cut when pending bytes would exceed 3KB.
	bc := newBlockCutter(BatchConfig{MaxMessageCount: 1000, PreferredMaxBytes: 3 * 1024, BatchTimeout: time.Hour})
	var cuts [][]blockstore.Envelope
	for i := 0; i < 6; i++ {
		batches, _, _ := bc.ordered(env(fmt.Sprintf("t%d", i), 1024))
		cuts = append(cuts, batches...)
	}
	if len(cuts) == 0 {
		t.Fatal("no byte-triggered cuts")
	}
	for i, c := range cuts {
		if len(c) > 3 {
			t.Errorf("batch %d has %d messages; byte cap should cut earlier", i, len(c))
		}
	}
}

func TestCutterOversizedMessage(t *testing.T) {
	bc := newBlockCutter(BatchConfig{MaxMessageCount: 100, PreferredMaxBytes: 1024, BatchTimeout: time.Hour})
	if _, pending, _ := bc.ordered(env("small", 10)); !pending {
		t.Fatal("small message should leave a pending batch")
	}
	batches, pending, _ := bc.ordered(env("huge", 64*1024))
	if len(batches) != 2 {
		t.Fatalf("oversize produced %d batches, want 2 (pending flushed + alone)", len(batches))
	}
	if len(batches[0]) != 1 || batches[0][0].TxID != "small" {
		t.Errorf("first batch = %+v", batches[0])
	}
	if len(batches[1]) != 1 || batches[1][0].TxID != "huge" {
		t.Errorf("second batch = %+v", batches[1])
	}
	if pending {
		t.Error("oversize path left a pending batch")
	}
}

func TestCutterDefaults(t *testing.T) {
	cfg := BatchConfig{}.withDefaults()
	d := DefaultBatchConfig()
	if cfg != d {
		t.Errorf("withDefaults = %+v, want %+v", cfg, d)
	}
	// Partial override preserved.
	cfg2 := BatchConfig{MaxMessageCount: 5}.withDefaults()
	if cfg2.MaxMessageCount != 5 || cfg2.BatchTimeout != d.BatchTimeout {
		t.Errorf("partial defaults = %+v", cfg2)
	}
}

// Property: no envelope is lost or duplicated through arbitrary cutting.
func TestQuickCutterConservation(t *testing.T) {
	f := func(nMsgs uint8, maxCount uint8, payload uint16) bool {
		n := int(nMsgs%50) + 1
		mc := int(maxCount%10) + 1
		bc := newBlockCutter(BatchConfig{
			MaxMessageCount:   mc,
			PreferredMaxBytes: int(payload)*2 + 512,
			BatchTimeout:      time.Hour,
		})
		seen := map[string]int{}
		total := 0
		for i := 0; i < n; i++ {
			batches, _, _ := bc.ordered(env(fmt.Sprintf("t%d", i), int(payload%2048)))
			for _, b := range batches {
				for _, e := range b {
					seen[e.TxID]++
					total++
				}
			}
		}
		for _, e := range bc.cut() {
			seen[e.TxID]++
			total++
		}
		if total != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The binary codec is total: envelopes the JSON era could not serialize
// (timestamps outside year [0,9999] broke json.Marshal) now encode, batch,
// and hash like any other — the cutter must accept them rather than keep a
// rejection path keyed to a failure mode that no longer exists. The
// envelope sealed by the cutter must also round-trip through the codec so
// the batch it joins can be hashed into a block.
func TestCutterAcceptsExtremeTimestamps(t *testing.T) {
	bc := newBlockCutter(BatchConfig{MaxMessageCount: 2, PreferredMaxBytes: 1024, BatchTimeout: time.Hour})
	if _, pending, _ := bc.ordered(env("ok1", 10)); !pending {
		t.Fatal("first envelope should be pending")
	}
	far := env("far-future", 10)
	far.Timestamp = time.Date(10001, 1, 1, 0, 0, 0, 0, time.UTC)
	raw, err := far.Marshal()
	if err != nil {
		t.Fatalf("binary codec rejected extreme timestamp: %v", err)
	}
	rt, err := blockstore.UnmarshalEnvelope(raw)
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if !rt.Timestamp.Equal(far.Timestamp) {
		t.Fatalf("timestamp mangled: %v != %v", rt.Timestamp, far.Timestamp)
	}
	batches, _, err := bc.ordered(far)
	if err != nil {
		t.Fatalf("cutter rejected extreme-timestamp envelope: %v", err)
	}
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches = %+v, want one batch of ok1+far-future", batches)
	}
	if batches[0][0].TxID != "ok1" || batches[0][1].TxID != "far-future" {
		t.Errorf("batch contents = %s,%s", batches[0][0].TxID, batches[0][1].TxID)
	}
}
