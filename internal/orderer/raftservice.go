package orderer

import (
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Raft is a crash-fault-tolerant ordering service backed by an in-process
// Raft cluster. It batches envelopes with the same block cutter as Solo and
// replicates each batch as one Raft log entry; committed entries become
// hash-chained blocks. One block stream is exposed regardless of which
// node applied the entry (entries at an index are identical on all nodes,
// so first-apply-wins deduplication is safe).
type Raft struct {
	cfg     BatchConfig
	exec    *device.Executor
	cluster *raftCluster
	chain   *chain

	in      chan blockstore.Envelope
	stop    chan struct{}
	done    chan struct{}
	stopMu  sync.Mutex
	stopped bool

	applyMu   sync.Mutex
	nextApply int                           // next raft index to turn into a block
	applied   map[int][]blockstore.Envelope // out-of-order arrivals
}

var _ Service = (*Raft)(nil)

// NewRaft creates and starts a Raft ordering service with n consenter
// nodes. exec models the ordering machines' per-batch cost (may be nil).
func NewRaft(n int, batch BatchConfig, raftCfg RaftConfig, exec *device.Executor, seed int64) *Raft {
	r := &Raft{
		cfg:       batch.withDefaults(),
		exec:      exec,
		chain:     newChain(),
		in:        make(chan blockstore.Envelope, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		nextApply: 1,
		applied:   make(map[int][]blockstore.Envelope),
	}
	r.cluster = newRaftCluster(n, raftCfg, r.onApply, seed)
	r.cluster.start()
	go r.loop()
	return r
}

// onApply receives committed batches from every live node and emits each
// index exactly once, in order.
func (r *Raft) onApply(_, index int, batch []blockstore.Envelope) {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	if index < r.nextApply {
		return // duplicate from another node
	}
	if _, dup := r.applied[index]; dup {
		return
	}
	r.applied[index] = batch
	for {
		b, ok := r.applied[r.nextApply]
		if !ok {
			return
		}
		delete(r.applied, r.nextApply)
		r.nextApply++
		if len(b) == 0 {
			continue
		}
		if r.exec != nil {
			r.exec.Order()
		}
		_, _ = r.chain.appendBatch(b)
	}
}

// Submit enqueues an envelope. It returns ErrNoLeader if no leader emerges
// within the retry budget (e.g. during a total partition).
func (r *Raft) Submit(env blockstore.Envelope) error {
	select {
	case <-r.stop:
		return ErrStopped
	default:
	}
	select {
	case r.in <- env:
		return nil
	case <-r.stop:
		return ErrStopped
	}
}

// Subscribe returns the ordered block stream with full replay.
func (r *Raft) Subscribe() <-chan *blockstore.Block { return r.chain.subscribe() }

// Height returns the number of blocks ordered.
func (r *Raft) Height() uint64 { return r.chain.height() }

// Metrics returns the ordering service's counters.
func (r *Raft) Metrics() *metrics.Registry { return r.chain.metrics }

// SetTracer attaches a trace recorder: each ordered envelope gains an
// "order" span covering enqueue through replication to block cut. Call
// before traffic flows.
func (r *Raft) SetTracer(t *trace.Recorder) { r.chain.setTracer(t) }

// Leader returns the current leader node id, or -1 if none.
func (r *Raft) Leader() int { return r.cluster.leader() }

// KillNode crashes a consenter node (volatile state lost, log retained).
func (r *Raft) KillNode(id int) {
	if id >= 0 && id < len(r.cluster.nodes) {
		r.cluster.nodes[id].stopNode()
	}
}

// RestartNode restarts a previously killed node.
func (r *Raft) RestartNode(id int) {
	if id >= 0 && id < len(r.cluster.nodes) {
		r.cluster.nodes[id].start()
	}
}

// Partition splits the consenter nodes into groups that cannot exchange
// messages; nil heals all partitions.
func (r *Raft) Partition(groups map[int]int) { r.cluster.setPartition(groups) }

// WaitLeader blocks until a leader is elected or the timeout elapses,
// returning the leader id or -1.
func (r *Raft) WaitLeader(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l := r.cluster.leader(); l >= 0 {
			return l
		}
		time.Sleep(2 * time.Millisecond)
	}
	return r.cluster.leader()
}

// Stop terminates the service, the consenter nodes, and subscribers.
func (r *Raft) Stop() {
	r.stopMu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stop)
	}
	r.stopMu.Unlock()
	<-r.done
	r.cluster.stop()
	r.chain.close()
}

// loop runs the batch cutter and proposes cut batches to the current
// leader, retrying while elections are in progress.
func (r *Raft) loop() {
	defer close(r.done)
	cutter := newBlockCutter(r.cfg)
	var timer *time.Timer
	var timeout <-chan time.Time

	batchTimeout := r.cfg.BatchTimeout
	if r.exec != nil {
		if scale := r.exec.Clock().Scale(); scale > 0 {
			batchTimeout = time.Duration(float64(batchTimeout) * scale)
		}
	}

	armTimer := func() {
		if timer == nil {
			timer = time.NewTimer(batchTimeout)
			timeout = timer.C
		}
	}
	disarmTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timeout = nil
		}
	}

	for {
		select {
		case env := <-r.in:
			batches, pending, err := cutter.ordered(env)
			if err != nil {
				// Unserializable envelope: drop, as the solo consenter does.
				r.chain.metrics.Counter(metrics.EnvelopesRejected).Inc()
			} else {
				r.chain.markEnqueued(env.TxID)
			}
			for _, b := range batches {
				r.propose(b)
			}
			if pending {
				armTimer()
			} else {
				disarmTimer()
			}
		case <-timeout:
			disarmTimer()
			if b := cutter.cut(); len(b) > 0 {
				r.propose(b)
			}
		case <-r.stop:
			disarmTimer()
			if b := cutter.cut(); len(b) > 0 {
				r.propose(b)
			}
			return
		}
	}
}

// propose sends the batch to the current leader, waiting briefly through
// elections. Batches proposed to a leader that then crashes before
// replication are lost; clients detect this via commit timeout and retry.
func (r *Raft) propose(batch []blockstore.Envelope) {
	for attempt := 0; attempt < 200; attempt++ {
		leader := r.cluster.leader()
		if leader >= 0 {
			r.cluster.send(leader, leader, raftMsg{Type: msgPropose, From: leader, Batch: batch})
			return
		}
		select {
		case <-r.stop:
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}
