package orderer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

// TestRaftLogAgreementUnderChaos is the consensus safety property: after a
// random schedule of leader crashes, restarts, and concurrent submissions,
// all ordered blocks form a single consistent chain — every subscriber sees
// the same sequence, and no committed envelope is duplicated.
func TestRaftLogAgreementUnderChaos(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			r := NewRaft(5, quickBatch(), fastRaft(), nil, seed*31+7)
			defer r.Stop()
			if r.WaitLeader(5*time.Second) < 0 {
				t.Fatal("no initial leader")
			}

			subA := r.Subscribe()
			const total = 30
			var wg sync.WaitGroup
			// Submitter: pushes envelopes while chaos unfolds. Some may be
			// lost on leader crashes; that is allowed (clients retry), but
			// whatever commits must be consistent.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < total; i++ {
					_ = r.Submit(env(fmt.Sprintf("chaos-%d-%d", seed, i), 32))
					time.Sleep(2 * time.Millisecond)
				}
			}()
			// Chaos: crash and restart random nodes (never below majority:
			// at most one down at a time).
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < 3; round++ {
					victim := rng.Intn(5)
					r.KillNode(victim)
					time.Sleep(40 * time.Millisecond)
					r.RestartNode(victim)
					time.Sleep(40 * time.Millisecond)
				}
			}()
			wg.Wait()
			// Allow in-flight entries to commit.
			time.Sleep(300 * time.Millisecond)

			// Drain subscriber A into a chain and verify it.
			store := blockstore.NewStore()
			seen := map[string]int{}
			drain := func(sub <-chan *blockstore.Block, into *blockstore.Store) int {
				n := 0
				for {
					select {
					case b, ok := <-sub:
						if !ok {
							return n
						}
						if into != nil {
							if err := into.Append(b); err != nil {
								t.Fatalf("broken chain: %v", err)
							}
						}
						for _, e := range b.Envelopes {
							seen[e.TxID]++
						}
						n += len(b.Envelopes)
					case <-time.After(200 * time.Millisecond):
						return n
					}
				}
			}
			got := drain(subA, store)
			if err := store.VerifyChain(); err != nil {
				t.Fatalf("VerifyChain: %v", err)
			}
			for txid, count := range seen {
				if count != 1 {
					t.Errorf("envelope %s ordered %d times", txid, count)
				}
			}
			if got == 0 {
				t.Error("nothing committed under chaos")
			}
			// A second subscriber must replay the identical sequence.
			seen = map[string]int{}
			subB := r.Subscribe()
			if gotB := drain(subB, nil); gotB != got {
				t.Errorf("subscriber B saw %d envelopes, A saw %d", gotB, got)
			}
		})
	}
}
