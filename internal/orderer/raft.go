package orderer

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

// This file implements a self-contained Raft consensus core used by the
// Raft ordering service (Abl C in DESIGN.md — resilience of the ordering
// layer, which Fabric 1.4.1 introduced). It supports leader election, log
// replication, node crash/restart, and network partitions injected through
// the cluster router. Snapshots/compaction are out of scope: ordering logs
// in the experiments are short-lived.

type raftRole int

const (
	roleFollower raftRole = iota + 1
	roleCandidate
	roleLeader
)

func (r raftRole) String() string {
	switch r {
	case roleFollower:
		return "follower"
	case roleCandidate:
		return "candidate"
	case roleLeader:
		return "leader"
	default:
		return "unknown"
	}
}

type logEntry struct {
	Term  uint64
	Batch []blockstore.Envelope
}

type raftMsgType int

const (
	msgRequestVote raftMsgType = iota + 1
	msgVoteResp
	msgAppendEntries
	msgAppendResp
	msgPropose
)

type raftMsg struct {
	Type raftMsgType
	From int
	Term uint64

	// RequestVote
	LastLogIndex int
	LastLogTerm  uint64
	// VoteResp
	Granted bool
	// AppendEntries
	PrevLogIndex int
	PrevLogTerm  uint64
	Entries      []logEntry
	LeaderCommit int
	// AppendResp
	Success    bool
	MatchIndex int
	// Propose
	Batch []blockstore.Envelope
}

// RaftConfig tunes the consensus timers. Values are wall-clock.
type RaftConfig struct {
	// HeartbeatInterval is the leader's AppendEntries cadence.
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound the randomized follower timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
}

// DefaultRaftConfig returns timers suitable for in-process clusters.
func DefaultRaftConfig() RaftConfig {
	return RaftConfig{
		HeartbeatInterval:  15 * time.Millisecond,
		ElectionTimeoutMin: 60 * time.Millisecond,
		ElectionTimeoutMax: 120 * time.Millisecond,
	}
}

// applyFn receives committed batches: (index, batch). Called in index order
// by each live node; the cluster facade deduplicates.
type applyFn func(nodeID, index int, batch []blockstore.Envelope)

// raftCluster routes messages between nodes and injects partitions.
type raftCluster struct {
	mu        sync.RWMutex
	nodes     []*raftNode
	partition map[int]int // nodeID -> group; nodes in different groups cannot talk
}

func newRaftCluster(n int, cfg RaftConfig, apply applyFn, seed int64) *raftCluster {
	c := &raftCluster{partition: make(map[int]int)}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, newRaftNode(i, n, cfg, c, apply, seed+int64(i)))
	}
	return c
}

func (c *raftCluster) start() {
	for _, n := range c.nodes {
		n.start()
	}
}

func (c *raftCluster) stop() {
	for _, n := range c.nodes {
		n.stopNode()
	}
}

// send routes msg to node "to" unless a partition or crash blocks it.
func (c *raftCluster) send(from, to int, msg raftMsg) {
	c.mu.RLock()
	blocked := c.partition[from] != c.partition[to]
	var target *raftNode
	if !blocked && to >= 0 && to < len(c.nodes) {
		target = c.nodes[to]
	}
	c.mu.RUnlock()
	if target == nil {
		return
	}
	target.deliver(msg)
}

// SetPartition assigns nodes to groups; cross-group traffic is dropped.
// Passing nil heals all partitions.
func (c *raftCluster) setPartition(groups map[int]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if groups == nil {
		c.partition = make(map[int]int)
		return
	}
	c.partition = groups
}

// leader returns the current leader's id, or -1.
func (c *raftCluster) leader() int {
	for _, n := range c.nodes {
		if n.isLeader() {
			return n.id
		}
	}
	return -1
}

type raftNode struct {
	id      int
	n       int // cluster size
	cfg     RaftConfig
	cluster *raftCluster
	apply   applyFn
	rng     *rand.Rand

	mu          sync.Mutex
	role        raftRole
	currentTerm uint64
	votedFor    int // -1 = none
	log         []logEntry
	commitIndex int // highest committed log index (1-based; 0 = none)
	lastApplied int
	votes       map[int]bool
	nextIndex   []int
	matchIndex  []int
	leaderID    int

	inbox   chan raftMsg
	resetCh chan struct{}
	stopCh  chan struct{}
	doneCh  chan struct{}
	running bool
}

func newRaftNode(id, n int, cfg RaftConfig, c *raftCluster, apply applyFn, seed int64) *raftNode {
	return &raftNode{
		id: id, n: n, cfg: cfg, cluster: c, apply: apply,
		rng:      rand.New(rand.NewSource(seed)),
		role:     roleFollower,
		votedFor: -1,
		leaderID: -1,
	}
}

// start launches (or relaunches after a crash) the node's main loop.
// Persistent state (term, vote, log) survives restarts, simulating disk.
func (rn *raftNode) start() {
	rn.mu.Lock()
	if rn.running {
		rn.mu.Unlock()
		return
	}
	rn.running = true
	rn.role = roleFollower
	rn.leaderID = -1
	rn.inbox = make(chan raftMsg, 1024)
	rn.resetCh = make(chan struct{}, 1)
	rn.stopCh = make(chan struct{})
	rn.doneCh = make(chan struct{})
	rn.mu.Unlock()
	go rn.run()
}

// stopNode crashes the node: the loop exits, volatile leadership is lost,
// persistent state is retained for restart.
func (rn *raftNode) stopNode() {
	rn.mu.Lock()
	if !rn.running {
		rn.mu.Unlock()
		return
	}
	rn.running = false
	close(rn.stopCh)
	done := rn.doneCh
	rn.mu.Unlock()
	<-done
}

func (rn *raftNode) isRunning() bool {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return rn.running
}

func (rn *raftNode) isLeader() bool {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return rn.running && rn.role == roleLeader
}

func (rn *raftNode) deliver(msg raftMsg) {
	rn.mu.Lock()
	running, inbox := rn.running, rn.inbox
	rn.mu.Unlock()
	if !running {
		return
	}
	select {
	case inbox <- msg:
	default: // drop under extreme backlog; raft tolerates message loss
	}
}

func (rn *raftNode) electionTimeout() time.Duration {
	span := rn.cfg.ElectionTimeoutMax - rn.cfg.ElectionTimeoutMin
	if span <= 0 {
		return rn.cfg.ElectionTimeoutMin
	}
	rn.mu.Lock()
	d := rn.cfg.ElectionTimeoutMin + time.Duration(rn.rng.Int63n(int64(span)))
	rn.mu.Unlock()
	return d
}

func (rn *raftNode) run() {
	defer close(rn.doneCh)
	electionTimer := time.NewTimer(rn.electionTimeout())
	defer electionTimer.Stop()
	heartbeat := time.NewTicker(rn.cfg.HeartbeatInterval)
	defer heartbeat.Stop()

	for {
		select {
		case <-rn.stopCh:
			return
		case <-rn.resetCh:
			if !electionTimer.Stop() {
				select {
				case <-electionTimer.C:
				default:
				}
			}
			electionTimer.Reset(rn.electionTimeout())
		case <-electionTimer.C:
			rn.startElection()
			electionTimer.Reset(rn.electionTimeout())
		case <-heartbeat.C:
			rn.broadcastIfLeader()
		case msg := <-rn.inbox:
			rn.handle(msg)
		}
	}
}

func (rn *raftNode) resetElectionTimer() {
	select {
	case rn.resetCh <- struct{}{}:
	default:
	}
}

func (rn *raftNode) startElection() {
	rn.mu.Lock()
	if rn.role == roleLeader {
		rn.mu.Unlock()
		return
	}
	rn.role = roleCandidate
	rn.currentTerm++
	rn.votedFor = rn.id
	rn.votes = map[int]bool{rn.id: true}
	term := rn.currentTerm
	lastIdx := len(rn.log)
	var lastTerm uint64
	if lastIdx > 0 {
		lastTerm = rn.log[lastIdx-1].Term
	}
	rn.mu.Unlock()

	for i := 0; i < rn.n; i++ {
		if i == rn.id {
			continue
		}
		rn.cluster.send(rn.id, i, raftMsg{
			Type: msgRequestVote, From: rn.id, Term: term,
			LastLogIndex: lastIdx, LastLogTerm: lastTerm,
		})
	}
}

func (rn *raftNode) broadcastIfLeader() {
	rn.mu.Lock()
	if rn.role != roleLeader {
		rn.mu.Unlock()
		return
	}
	type out struct {
		to  int
		msg raftMsg
	}
	var outs []out
	for i := 0; i < rn.n; i++ {
		if i == rn.id {
			continue
		}
		prevIdx := rn.nextIndex[i] - 1
		var prevTerm uint64
		if prevIdx > 0 && prevIdx <= len(rn.log) {
			prevTerm = rn.log[prevIdx-1].Term
		}
		var entries []logEntry
		if rn.nextIndex[i] <= len(rn.log) {
			entries = append(entries, rn.log[rn.nextIndex[i]-1:]...)
		}
		outs = append(outs, out{to: i, msg: raftMsg{
			Type: msgAppendEntries, From: rn.id, Term: rn.currentTerm,
			PrevLogIndex: prevIdx, PrevLogTerm: prevTerm,
			Entries: entries, LeaderCommit: rn.commitIndex,
		}})
	}
	rn.mu.Unlock()
	for _, o := range outs {
		rn.cluster.send(rn.id, o.to, o.msg)
	}
}

func (rn *raftNode) handle(msg raftMsg) {
	switch msg.Type {
	case msgRequestVote:
		rn.handleRequestVote(msg)
	case msgVoteResp:
		rn.handleVoteResp(msg)
	case msgAppendEntries:
		rn.handleAppendEntries(msg)
	case msgAppendResp:
		rn.handleAppendResp(msg)
	case msgPropose:
		rn.handlePropose(msg)
	}
}

// stepDown transitions to follower for a newer term. Caller holds mu.
func (rn *raftNode) stepDownLocked(term uint64) {
	rn.currentTerm = term
	rn.role = roleFollower
	rn.votedFor = -1
}

func (rn *raftNode) handleRequestVote(msg raftMsg) {
	rn.mu.Lock()
	if msg.Term > rn.currentTerm {
		rn.stepDownLocked(msg.Term)
	}
	granted := false
	if msg.Term == rn.currentTerm && (rn.votedFor == -1 || rn.votedFor == msg.From) {
		lastIdx := len(rn.log)
		var lastTerm uint64
		if lastIdx > 0 {
			lastTerm = rn.log[lastIdx-1].Term
		}
		upToDate := msg.LastLogTerm > lastTerm ||
			(msg.LastLogTerm == lastTerm && msg.LastLogIndex >= lastIdx)
		if upToDate {
			granted = true
			rn.votedFor = msg.From
		}
	}
	term := rn.currentTerm
	rn.mu.Unlock()
	if granted {
		rn.resetElectionTimer()
	}
	rn.cluster.send(rn.id, msg.From, raftMsg{
		Type: msgVoteResp, From: rn.id, Term: term, Granted: granted,
	})
}

func (rn *raftNode) handleVoteResp(msg raftMsg) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	if msg.Term > rn.currentTerm {
		rn.stepDownLocked(msg.Term)
		return
	}
	if rn.role != roleCandidate || msg.Term != rn.currentTerm || !msg.Granted {
		return
	}
	rn.votes[msg.From] = true
	if len(rn.votes) <= rn.n/2 {
		return
	}
	// Won the election.
	rn.role = roleLeader
	rn.leaderID = rn.id
	rn.nextIndex = make([]int, rn.n)
	rn.matchIndex = make([]int, rn.n)
	for i := range rn.nextIndex {
		rn.nextIndex[i] = len(rn.log) + 1
	}
}

func (rn *raftNode) handleAppendEntries(msg raftMsg) {
	rn.mu.Lock()
	if msg.Term > rn.currentTerm {
		rn.stepDownLocked(msg.Term)
	}
	success := false
	matchIdx := 0
	if msg.Term == rn.currentTerm {
		if rn.role != roleFollower {
			rn.role = roleFollower
		}
		rn.leaderID = msg.From
		// Log consistency check.
		ok := msg.PrevLogIndex == 0 ||
			(msg.PrevLogIndex <= len(rn.log) && rn.log[msg.PrevLogIndex-1].Term == msg.PrevLogTerm)
		if ok {
			success = true
			// Append/overwrite entries.
			idx := msg.PrevLogIndex
			for _, e := range msg.Entries {
				idx++
				if idx <= len(rn.log) {
					if rn.log[idx-1].Term != e.Term {
						rn.log = rn.log[:idx-1]
						rn.log = append(rn.log, e)
					}
				} else {
					rn.log = append(rn.log, e)
				}
			}
			matchIdx = msg.PrevLogIndex + len(msg.Entries)
			if msg.LeaderCommit > rn.commitIndex {
				rn.commitIndex = min(msg.LeaderCommit, len(rn.log))
			}
		}
	}
	term := rn.currentTerm
	rn.mu.Unlock()

	rn.resetElectionTimer()
	rn.applyCommitted()
	rn.cluster.send(rn.id, msg.From, raftMsg{
		Type: msgAppendResp, From: rn.id, Term: term,
		Success: success, MatchIndex: matchIdx,
	})
}

func (rn *raftNode) handleAppendResp(msg raftMsg) {
	rn.mu.Lock()
	if msg.Term > rn.currentTerm {
		rn.stepDownLocked(msg.Term)
		rn.mu.Unlock()
		return
	}
	if rn.role != roleLeader || msg.Term != rn.currentTerm {
		rn.mu.Unlock()
		return
	}
	if msg.Success {
		if msg.MatchIndex > rn.matchIndex[msg.From] {
			rn.matchIndex[msg.From] = msg.MatchIndex
		}
		rn.nextIndex[msg.From] = rn.matchIndex[msg.From] + 1
		// Advance commit index: an index is committed when a majority
		// matches and the entry is from the current term.
		for idx := len(rn.log); idx > rn.commitIndex; idx-- {
			if rn.log[idx-1].Term != rn.currentTerm {
				break
			}
			count := 1 // self
			for i := 0; i < rn.n; i++ {
				if i != rn.id && rn.matchIndex[i] >= idx {
					count++
				}
			}
			if count > rn.n/2 {
				rn.commitIndex = idx
				break
			}
		}
	} else if rn.nextIndex[msg.From] > 1 {
		rn.nextIndex[msg.From]--
	}
	rn.mu.Unlock()
	rn.applyCommitted()
}

func (rn *raftNode) handlePropose(msg raftMsg) {
	rn.mu.Lock()
	if rn.role != roleLeader {
		rn.mu.Unlock()
		return // client retries via the facade
	}
	rn.log = append(rn.log, logEntry{Term: rn.currentTerm, Batch: msg.Batch})
	rn.mu.Unlock()
	rn.broadcastIfLeader()
}

func (rn *raftNode) applyCommitted() {
	for {
		rn.mu.Lock()
		if rn.lastApplied >= rn.commitIndex {
			rn.mu.Unlock()
			return
		}
		rn.lastApplied++
		idx := rn.lastApplied
		batch := rn.log[idx-1].Batch
		rn.mu.Unlock()
		if rn.apply != nil {
			rn.apply(rn.id, idx, batch)
		}
	}
}

func (rn *raftNode) status() string {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return fmt.Sprintf("node %d term %d role %s log %d commit %d",
		rn.id, rn.currentTerm, rn.role, len(rn.log), rn.commitIndex)
}
