package orderer

import (
	"errors"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Errors returned by ordering services.
var (
	ErrStopped    = errors.New("orderer: service stopped")
	ErrNoLeader   = errors.New("orderer: no raft leader elected")
	ErrQueueFull  = errors.New("orderer: submission queue full")
	ErrNotStarted = errors.New("orderer: service not started")
)

// Service is the interface both consenters implement: clients broadcast
// envelopes in, peers receive the ordered block stream out.
type Service interface {
	// Submit enqueues an envelope for ordering.
	Submit(env blockstore.Envelope) error
	// Subscribe returns a channel replaying all blocks from block 0 and
	// then streaming new blocks. The channel closes when the service stops.
	Subscribe() <-chan *blockstore.Block
	// Height returns the number of blocks ordered so far.
	Height() uint64
	// Metrics returns the service's counter registry.
	Metrics() *metrics.Registry
	// Stop terminates the service and waits for its goroutines.
	Stop()
}

// chain is the shared block-assembly and delivery core used by both
// consenters: it hash-chains batches into blocks and fans them out to
// subscribers with replay.
type chain struct {
	mu      sync.Mutex
	store   *blockstore.Store
	subs    []chan *blockstore.Block
	closed  bool
	metrics *metrics.Registry

	// tracer, when set, receives one "order" span per envelope covering
	// enqueue (markEnqueued in the consenter loop) to block cut. enq holds
	// the pending enqueue timestamps; entries are consumed at cut, and the
	// map stays empty when no tracer is attached.
	tracer *trace.Recorder
	enq    map[string]time.Time
}

func newChain() *chain {
	return &chain{
		store:   blockstore.NewStore(),
		metrics: metrics.NewRegistry(),
		enq:     make(map[string]time.Time),
	}
}

// setTracer attaches a trace recorder. Call before traffic flows.
func (c *chain) setTracer(t *trace.Recorder) {
	c.mu.Lock()
	c.tracer = t
	c.mu.Unlock()
}

// markEnqueued timestamps an envelope's arrival at the consenter so the
// order span covers queueing plus batching (and, for raft, replication).
// A no-op without a tracer, so the untraced hot path stays allocation-free.
func (c *chain) markEnqueued(txID string) {
	c.mu.Lock()
	if c.tracer != nil && txID != "" {
		c.enq[txID] = time.Now()
	}
	c.mu.Unlock()
}

// appendBatch assembles the next block from a batch and delivers it.
func (c *chain) appendBatch(batch []blockstore.Envelope) (*blockstore.Block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := blockstore.NewBlock(c.store.Height(), c.store.LastHash(), batch)
	if err != nil {
		return nil, err
	}
	if err := c.store.Append(b); err != nil {
		return nil, err
	}
	c.metrics.Counter(metrics.BatchesCut).Inc()
	c.metrics.Counter(metrics.EnvelopesOrdered).Add(int64(len(batch)))
	if c.tracer != nil {
		now := time.Now()
		for i := range batch {
			id := batch[i].TxID
			start, ok := c.enq[id]
			if !ok {
				continue // enqueued before the tracer was attached
			}
			delete(c.enq, id)
			c.tracer.Add(id, trace.Span{
				Stage:    trace.StageOrder,
				Peer:     "orderer",
				Start:    start,
				Duration: now.Sub(start),
			})
		}
	}
	for _, sub := range c.subs {
		sub <- b
	}
	return b, nil
}

// subscribe registers a new subscriber with full replay. The returned
// channel is buffered generously so slow subscribers do not deadlock the
// ordering loop in tests; production peers drain promptly.
func (c *chain) subscribe() <-chan *blockstore.Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan *blockstore.Block, 4096)
	for _, b := range c.store.BlocksFrom(0) {
		ch <- b
	}
	if c.closed {
		close(ch)
		return ch
	}
	c.subs = append(c.subs, ch)
	return ch
}

func (c *chain) height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store.Height()
}

// close closes all subscriber channels.
func (c *chain) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, sub := range c.subs {
		close(sub)
	}
	c.subs = nil
}
