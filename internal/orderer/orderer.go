package orderer

import (
	"errors"
	"sync"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/metrics"
)

// Errors returned by ordering services.
var (
	ErrStopped    = errors.New("orderer: service stopped")
	ErrNoLeader   = errors.New("orderer: no raft leader elected")
	ErrQueueFull  = errors.New("orderer: submission queue full")
	ErrNotStarted = errors.New("orderer: service not started")
)

// Service is the interface both consenters implement: clients broadcast
// envelopes in, peers receive the ordered block stream out.
type Service interface {
	// Submit enqueues an envelope for ordering.
	Submit(env blockstore.Envelope) error
	// Subscribe returns a channel replaying all blocks from block 0 and
	// then streaming new blocks. The channel closes when the service stops.
	Subscribe() <-chan *blockstore.Block
	// Height returns the number of blocks ordered so far.
	Height() uint64
	// Metrics returns the service's counter registry.
	Metrics() *metrics.Registry
	// Stop terminates the service and waits for its goroutines.
	Stop()
}

// chain is the shared block-assembly and delivery core used by both
// consenters: it hash-chains batches into blocks and fans them out to
// subscribers with replay.
type chain struct {
	mu      sync.Mutex
	store   *blockstore.Store
	subs    []chan *blockstore.Block
	closed  bool
	metrics *metrics.Registry
}

func newChain() *chain {
	return &chain{store: blockstore.NewStore(), metrics: metrics.NewRegistry()}
}

// appendBatch assembles the next block from a batch and delivers it.
func (c *chain) appendBatch(batch []blockstore.Envelope) (*blockstore.Block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := blockstore.NewBlock(c.store.Height(), c.store.LastHash(), batch)
	if err != nil {
		return nil, err
	}
	if err := c.store.Append(b); err != nil {
		return nil, err
	}
	c.metrics.Counter(metrics.BatchesCut).Inc()
	c.metrics.Counter(metrics.EnvelopesOrdered).Add(int64(len(batch)))
	for _, sub := range c.subs {
		sub <- b
	}
	return b, nil
}

// subscribe registers a new subscriber with full replay. The returned
// channel is buffered generously so slow subscribers do not deadlock the
// ordering loop in tests; production peers drain promptly.
func (c *chain) subscribe() <-chan *blockstore.Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan *blockstore.Block, 4096)
	for _, b := range c.store.BlocksFrom(0) {
		ch <- b
	}
	if c.closed {
		close(ch)
		return ch
	}
	c.subs = append(c.subs, ch)
	return ch
}

func (c *chain) height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store.Height()
}

// close closes all subscriber channels.
func (c *chain) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, sub := range c.subs {
		close(sub)
	}
	c.subs = nil
}
