package orderer

import (
	"fmt"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

func fastRaft() RaftConfig {
	return RaftConfig{
		HeartbeatInterval:  5 * time.Millisecond,
		ElectionTimeoutMin: 25 * time.Millisecond,
		ElectionTimeoutMax: 60 * time.Millisecond,
	}
}

func quickBatch() BatchConfig {
	return BatchConfig{MaxMessageCount: 1, BatchTimeout: time.Hour, PreferredMaxBytes: 1 << 30}
}

func TestRaftElectsLeader(t *testing.T) {
	r := NewRaft(3, quickBatch(), fastRaft(), nil, 1)
	defer r.Stop()
	if leader := r.WaitLeader(5 * time.Second); leader < 0 {
		t.Fatal("no leader elected")
	}
}

func TestRaftOrdersEnvelopes(t *testing.T) {
	r := NewRaft(3, quickBatch(), fastRaft(), nil, 2)
	defer r.Stop()
	r.WaitLeader(5 * time.Second)
	sub := r.Subscribe()
	for i := 0; i < 5; i++ {
		if err := r.Submit(env(fmt.Sprintf("t%d", i), 16)); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	blocks := collect(t, sub, 5, 10*time.Second)
	store := blockstore.NewStore()
	for _, b := range blocks {
		if err := store.Append(b); err != nil {
			t.Fatalf("chain broken: %v", err)
		}
	}
	if err := store.VerifyChain(); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
}

func TestRaftSurvivesLeaderCrash(t *testing.T) {
	r := NewRaft(3, quickBatch(), fastRaft(), nil, 3)
	defer r.Stop()
	leader := r.WaitLeader(5 * time.Second)
	if leader < 0 {
		t.Fatal("no initial leader")
	}
	sub := r.Subscribe()
	if err := r.Submit(env("before-crash", 16)); err != nil {
		t.Fatal(err)
	}
	collect(t, sub, 1, 10*time.Second)

	r.KillNode(leader)
	newLeader := r.WaitLeader(5 * time.Second)
	if newLeader < 0 {
		t.Fatal("no leader after crash")
	}
	if newLeader == leader {
		t.Fatalf("dead node %d still leader", leader)
	}
	if err := r.Submit(env("after-crash", 16)); err != nil {
		t.Fatal(err)
	}
	blocks := collect(t, sub, 1, 10*time.Second)
	found := false
	for _, b := range blocks {
		for _, e := range b.Envelopes {
			if e.TxID == "after-crash" {
				found = true
			}
		}
	}
	if !found {
		t.Error("post-crash envelope not ordered")
	}
}

func TestRaftNodeRestartRejoins(t *testing.T) {
	r := NewRaft(3, quickBatch(), fastRaft(), nil, 4)
	defer r.Stop()
	leader := r.WaitLeader(5 * time.Second)
	r.KillNode(leader)
	if l := r.WaitLeader(5 * time.Second); l < 0 {
		t.Fatal("no leader after crash")
	}
	r.RestartNode(leader)
	time.Sleep(100 * time.Millisecond)
	// Cluster still functional with all nodes back.
	sub := r.Subscribe()
	if err := r.Submit(env("post-rejoin", 16)); err != nil {
		t.Fatal(err)
	}
	collect(t, sub, 1, 10*time.Second)
}

func TestRaftMinorityPartitionStalls(t *testing.T) {
	r := NewRaft(3, quickBatch(), fastRaft(), nil, 5)
	defer r.Stop()
	leader := r.WaitLeader(5 * time.Second)
	if leader < 0 {
		t.Fatal("no leader")
	}
	// Isolate the leader; the two-node majority must elect a new one.
	groups := map[int]int{leader: 1}
	r.Partition(groups)
	deadline := time.Now().Add(5 * time.Second)
	var newLeader int = -1
	for time.Now().Before(deadline) {
		for _, n := range r.cluster.nodes {
			if n.id != leader && n.isLeader() {
				newLeader = n.id
			}
		}
		if newLeader >= 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if newLeader < 0 {
		t.Fatal("majority side did not elect a leader")
	}
	// Heal; the old leader must step down (observe higher term).
	r.Partition(nil)
	time.Sleep(200 * time.Millisecond)
	leaders := 0
	for _, n := range r.cluster.nodes {
		if n.isLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders after heal = %d, want 1", leaders)
	}
}

func TestRaftStatusString(t *testing.T) {
	r := NewRaft(3, quickBatch(), fastRaft(), nil, 6)
	defer r.Stop()
	r.WaitLeader(5 * time.Second)
	for _, n := range r.cluster.nodes {
		if s := n.status(); s == "" {
			t.Error("empty status")
		}
	}
}

func TestRaftSubmitAfterStop(t *testing.T) {
	r := NewRaft(3, quickBatch(), fastRaft(), nil, 7)
	r.Stop()
	if err := r.Submit(env("late", 8)); err == nil {
		t.Error("Submit after Stop succeeded")
	}
}
