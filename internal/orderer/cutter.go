// Package orderer implements the ordering service: envelopes are batched by
// a block cutter (message count / byte size / timeout, exactly the knobs
// Fabric exposes) and sequenced by a consenter — either the solo consenter
// the paper's deployment uses, or a Raft consenter for the resilience
// experiments.
package orderer

import (
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

// BatchConfig are the block-cutting parameters (Fabric's BatchSize /
// BatchTimeout channel configuration).
type BatchConfig struct {
	// MaxMessageCount cuts a batch when this many envelopes are pending.
	MaxMessageCount int
	// PreferredMaxBytes cuts a batch when pending envelopes exceed this
	// many serialized bytes.
	PreferredMaxBytes int
	// BatchTimeout cuts a non-empty pending batch after this long.
	BatchTimeout time.Duration
}

// DefaultBatchConfig mirrors the Fabric 1.4 sample channel defaults the
// paper's network used.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{
		MaxMessageCount:   10,
		PreferredMaxBytes: 2 * 1024 * 1024,
		BatchTimeout:      2 * time.Second,
	}
}

func (c BatchConfig) withDefaults() BatchConfig {
	d := DefaultBatchConfig()
	if c.MaxMessageCount <= 0 {
		c.MaxMessageCount = d.MaxMessageCount
	}
	if c.PreferredMaxBytes <= 0 {
		c.PreferredMaxBytes = d.PreferredMaxBytes
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = d.BatchTimeout
	}
	return c
}

// blockCutter accumulates envelopes into batches. It is not safe for
// concurrent use; consenters call it from their single ordering loop.
type blockCutter struct {
	cfg          BatchConfig
	pending      []blockstore.Envelope
	pendingBytes int
}

func newBlockCutter(cfg BatchConfig) *blockCutter {
	return &blockCutter{cfg: cfg.withDefaults()}
}

// ordered adds env and returns zero or more cut batches. pending reports
// whether the caller should (re)arm the batch timer: it is true when a
// batch remains pending. Sealing the envelope here serves double duty: the
// encoded size drives the PreferredMaxBytes accounting, and the cached
// canonical bytes ride with the envelope into the cut batch, so block
// assembly, data hashing, gossip, and the ledger append all reuse this one
// encoding (encode once per envelope per block). The binary codec is total
// — unlike the JSON era there is no unserializable envelope to reject —
// but the error return stays so a future partial codec keeps the
// drop-don't-poison contract at the call sites.
func (bc *blockCutter) ordered(env blockstore.Envelope) (batches [][]blockstore.Envelope, pending bool, err error) {
	size := env.Seal()

	// An oversized message cuts any pending batch first, then goes alone.
	if size > bc.cfg.PreferredMaxBytes {
		if len(bc.pending) > 0 {
			batches = append(batches, bc.cut())
		}
		batches = append(batches, []blockstore.Envelope{env})
		return batches, false, nil
	}

	if bc.pendingBytes+size > bc.cfg.PreferredMaxBytes && len(bc.pending) > 0 {
		batches = append(batches, bc.cut())
	}
	bc.pending = append(bc.pending, env)
	bc.pendingBytes += size
	if len(bc.pending) >= bc.cfg.MaxMessageCount {
		batches = append(batches, bc.cut())
	}
	return batches, len(bc.pending) > 0, nil
}

// cut returns the pending batch (possibly empty) and resets state.
func (bc *blockCutter) cut() []blockstore.Envelope {
	batch := bc.pending
	bc.pending = nil
	bc.pendingBytes = 0
	return batch
}
