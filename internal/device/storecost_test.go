package device

import (
	"sync"
	"testing"
	"time"
)

func TestStoreCostShape(t *testing.T) {
	p := Profile{StoreLatency: 2 * time.Millisecond, StoreMBps: 10}
	if got := p.StoreCost(0); got != 2*time.Millisecond {
		t.Errorf("zero-byte store op = %v, want fixed latency", got)
	}
	// 10 MiB/s -> 1 MiB takes ~100ms + 2ms fixed.
	got := p.StoreCost(1 << 20)
	if got < 95*time.Millisecond || got > 110*time.Millisecond {
		t.Errorf("1MiB store = %v, want ~102ms", got)
	}
	// Unset bandwidth degrades to fixed latency only.
	if got := (Profile{StoreLatency: time.Millisecond}).StoreCost(1 << 20); got != time.Millisecond {
		t.Errorf("unbounded store = %v", got)
	}
}

func TestStoreTransferSerializesOnLink(t *testing.T) {
	// Two concurrent 50ms link ops on a 1-slot NIC must take ~100ms of
	// wall time on an unscaled clock.
	p := Profile{Name: "t", Cores: 4, StoreLatency: 50 * time.Millisecond, JitterPct: 0}
	e := NewExecutor(p, RealClock{}, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.StoreTransfer(0)
		}()
	}
	wg.Wait()
	if wall := time.Since(start); wall < 90*time.Millisecond {
		t.Errorf("2 concurrent link ops finished in %v; NIC not serialized", wall)
	}
}

func TestCPUOpsRunConcurrentlyUpToCores(t *testing.T) {
	// Four 50ms CPU ops on a 4-core device should overlap (~50-80ms wall),
	// not serialize (~200ms).
	p := Profile{Name: "t", Cores: 4, SignLatency: 50 * time.Millisecond, JitterPct: 0}
	e := NewExecutor(p, RealClock{}, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Sign()
		}()
	}
	wg.Wait()
	if wall := time.Since(start); wall > 150*time.Millisecond {
		t.Errorf("4 CPU ops on 4 cores took %v; expected overlap", wall)
	}
}

func TestSSHFSRatesBelowLineRate(t *testing.T) {
	// The whole point of StoreMBps: SSHFS effective throughput sits well
	// below NIC line rate for every profile.
	for _, p := range []Profile{XeonE51603, I74700MQ, I32310M, RPi3BPlus} {
		lineMBps := p.LinkMbps / 8
		if p.StoreMBps <= 0 || p.StoreMBps >= lineMBps {
			t.Errorf("%s: StoreMBps %.0f vs line %.0f MB/s", p.Name, p.StoreMBps, lineMBps)
		}
	}
}
