package device

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHashCostScalesLinearly(t *testing.T) {
	p := XeonE51603
	c1 := p.HashCost(1 << 20)
	c8 := p.HashCost(8 << 20)
	ratio := float64(c8) / float64(c1)
	if ratio < 7.9 || ratio > 8.1 {
		t.Errorf("8MiB/1MiB hash cost ratio = %.2f, want ~8", ratio)
	}
	if p.HashCost(0) != 0 || p.HashCost(-5) != 0 {
		t.Error("non-positive sizes should cost 0")
	}
}

func TestRPiSlowerThanDesktop(t *testing.T) {
	size := 1 << 20
	if RPi3BPlus.HashCost(size) <= XeonE51603.HashCost(size) {
		t.Error("RPi hash not slower than Xeon")
	}
	if RPi3BPlus.SignLatency <= XeonE51603.SignLatency {
		t.Error("RPi sign not slower than Xeon")
	}
	if RPi3BPlus.TransferCost(size) <= XeonE51603.TransferCost(size) {
		t.Error("RPi transfer not slower than Xeon (100Mbps vs 1Gbps)")
	}
	// Paper: roughly an order of magnitude on CPU-bound work.
	ratio := float64(RPi3BPlus.HashCost(size)) / float64(XeonE51603.HashCost(size))
	if ratio < 5 || ratio > 20 {
		t.Errorf("RPi/Xeon hash ratio = %.1f, want 5-20x", ratio)
	}
}

func TestTransferCostIncludesRTT(t *testing.T) {
	p := Profile{LinkMbps: 100, LinkRTT: time.Millisecond}
	if got := p.TransferCost(0); got != time.Millisecond {
		t.Errorf("zero-byte transfer = %v, want 1ms RTT", got)
	}
	// 100 Mbps = 12.5 MB/s; 1.25MB should take ~100ms + 1ms RTT.
	got := p.TransferCost(1_250_000)
	if got < 95*time.Millisecond || got > 110*time.Millisecond {
		t.Errorf("1.25MB over 100Mbps = %v, want ~101ms", got)
	}
}

func TestExecutorAccountsBusyTime(t *testing.T) {
	p := XeonE51603
	p.JitterPct = 0 // deterministic
	e := NewExecutor(p, NopClock{}, 1)
	e.Sign()
	e.Verify()
	e.Hash(1 << 20)
	want := p.SignLatency + p.VerifyLatency + p.HashCost(1<<20)
	if got := e.BusyTime(); got != want {
		t.Errorf("BusyTime = %v, want %v", got, want)
	}
	e.ResetBusy()
	if e.BusyTime() != 0 {
		t.Error("ResetBusy did not zero counter")
	}
}

func TestBatchChargesMatchSequential(t *testing.T) {
	p := XeonE51603
	p.JitterPct = 0 // deterministic
	e := NewExecutor(p, NopClock{}, 1)
	if got, want := e.CommitN(5), 5*p.CommitOverhead; got != want {
		t.Errorf("CommitN(5) = %v, want %v", got, want)
	}
	if got, want := e.VerifyN(3), 3*p.VerifyLatency; got != want {
		t.Errorf("VerifyN(3) = %v, want %v", got, want)
	}
	if got := e.CommitN(0); got != 0 {
		t.Errorf("CommitN(0) = %v, want 0", got)
	}
	if got := e.VerifyN(-1); got != 0 {
		t.Errorf("VerifyN(-1) = %v, want 0", got)
	}
	want := 5*p.CommitOverhead + 3*p.VerifyLatency
	if got := e.BusyTime(); got != want {
		t.Errorf("BusyTime after batches = %v, want %v", got, want)
	}
}

func TestExecutorJitterBounded(t *testing.T) {
	p := RPi3BPlus // 25% jitter
	e := NewExecutor(p, NopClock{}, 42)
	base := p.SignLatency
	lo := time.Duration(float64(base) * (1 - p.JitterPct - 1e-9))
	hi := time.Duration(float64(base) * (1 + p.JitterPct + 1e-9))
	for i := 0; i < 200; i++ {
		d := e.Sign()
		if d < lo || d > hi {
			t.Fatalf("jittered sign = %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestUtilization(t *testing.T) {
	p := Profile{Name: "test", Cores: 2, SignLatency: time.Second}
	e := NewExecutor(p, NopClock{}, 1)
	e.Sign() // 1s busy
	if got := e.Utilization(time.Second); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5 (1s busy / 2 cores)", got)
	}
	if got := e.Utilization(100 * time.Millisecond); got != 1 {
		t.Errorf("Utilization capped = %v, want 1", got)
	}
	if got := e.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v", got)
	}
}

func TestRealClockScale(t *testing.T) {
	if got := (RealClock{}).Scale(); got != 1.0 {
		t.Errorf("default Scale = %v", got)
	}
	if got := (RealClock{ScaleFactor: 0.01}).Scale(); got != 0.01 {
		t.Errorf("Scale = %v", got)
	}
	// A scaled clock must sleep roughly scale*modeled.
	c := RealClock{ScaleFactor: 0.001}
	start := time.Now()
	c.Sleep(2 * time.Second) // should sleep ~2ms
	wall := time.Since(start)
	if wall > 200*time.Millisecond {
		t.Errorf("scaled sleep took %v, want ~2ms", wall)
	}
}

func TestNopClock(t *testing.T) {
	start := time.Now()
	NopClock{}.Sleep(time.Hour)
	if time.Since(start) > time.Second {
		t.Error("NopClock slept")
	}
	if (NopClock{}).Scale() != 0 {
		t.Error("NopClock scale != 0")
	}
}

// Property: hash cost is monotonic in size for every profile.
func TestQuickHashMonotonic(t *testing.T) {
	profiles := []Profile{XeonE51603, I74700MQ, I32310M, RPi3BPlus}
	f := func(a, b uint32) bool {
		x, y := int(a%(64<<20)), int(b%(64<<20))
		if x > y {
			x, y = y, x
		}
		for _, p := range profiles {
			if p.HashCost(x) > p.HashCost(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileNames(t *testing.T) {
	for _, p := range []Profile{XeonE51603, I74700MQ, I32310M, RPi3BPlus} {
		if p.Name == "" || p.Cores == 0 {
			t.Errorf("profile %+v missing name/cores", p)
		}
	}
}
