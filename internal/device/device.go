// Package device models the hardware the paper evaluates on. The authors
// ran the same 4-node HyperProv network on x86-64 desktops (Xeon E5-1603,
// i7-4700MQ, i3-2310M) and on Raspberry Pi 3B+ ARM64 devices; absolute
// performance differed by roughly an order of magnitude while the shape of
// the throughput/latency curves stayed the same. Since that hardware is not
// available here, each device is described by a calibrated cost profile
// (hash throughput, signature latency, per-transaction overheads, NIC
// bandwidth and RTT, jitter) and a Clock that turns modeled durations into
// (optionally scaled) real sleeps. Busy-time accounting feeds the energy
// model of internal/energy.
package device

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Clock injects modeled latency into an execution. Implementations may
// scale modeled time down so the figure benchmarks finish quickly; the
// bench harness converts measurements back into modeled units.
type Clock interface {
	// Sleep blocks for the (possibly scaled) modeled duration d.
	Sleep(d time.Duration)
	// Scale returns the wall-time-per-modeled-time factor (1.0 = real time).
	Scale() float64
}

// RealClock sleeps for modeled durations multiplied by ScaleFactor.
type RealClock struct {
	// ScaleFactor compresses modeled time; 0.02 runs 50x faster than the
	// modeled hardware. Zero is treated as 1.0.
	ScaleFactor float64
}

var _ Clock = RealClock{}

// Sleep sleeps for d scaled by the clock's factor.
func (c RealClock) Sleep(d time.Duration) {
	s := c.Scale()
	scaled := time.Duration(float64(d) * s)
	if scaled > 0 {
		time.Sleep(scaled)
	}
}

// Scale returns the effective scale factor.
func (c RealClock) Scale() float64 {
	if c.ScaleFactor <= 0 {
		return 1.0
	}
	return c.ScaleFactor
}

// NopClock never sleeps; it is used by unit tests and by pure virtual-time
// accounting (energy model), where only the recorded busy time matters.
type NopClock struct{}

var _ Clock = NopClock{}

// Sleep returns immediately.
func (NopClock) Sleep(time.Duration) {}

// Scale returns 0, signalling that wall time carries no modeled meaning.
func (NopClock) Scale() float64 { return 0 }

// Profile is the calibrated cost model for one device class.
type Profile struct {
	Name string
	// Cores is the number of CPU cores (for utilization accounting).
	Cores int
	// HashMBps is SHA-256 throughput in MiB/s. Checksum calculation is the
	// dominant per-payload CPU cost in HyperProv's StoreData path.
	HashMBps float64
	// SignLatency / VerifyLatency are per-ECDSA-operation costs.
	SignLatency   time.Duration
	VerifyLatency time.Duration
	// EndorseOverhead is the fixed peer-side cost of simulating a proposal
	// (chaincode container round-trip in real Fabric).
	EndorseOverhead time.Duration
	// CommitOverhead is the fixed peer-side cost of validating and
	// committing one transaction within a block.
	CommitOverhead time.Duration
	// OrderLatency is the orderer's per-batch processing cost.
	OrderLatency time.Duration
	// LinkMbps is NIC bandwidth in megabits per second; LinkRTT is the
	// one-way network latency to a LAN neighbour.
	LinkMbps float64
	LinkRTT  time.Duration
	// StoreLatency is the off-chain storage service's fixed per-operation
	// cost (SSHFS open/close handshake overhead in the paper's setup).
	StoreLatency time.Duration
	// StoreMBps is the effective SSHFS throughput in MiB/s between this
	// device and the storage node. SSH encryption and FUSE overhead keep
	// it well below line rate, which is why the off-chain transfer
	// dominates HyperProv's large-payload measurements.
	StoreMBps float64
	// JitterPct is the uniform ± percentage applied to every modeled cost.
	// The paper observes visibly larger variance on the RPi (Fig 2).
	JitterPct float64
}

// Calibrated device profiles. The values reproduce the relative ordering
// and rough magnitudes reported for the paper's testbed: desktop-class
// machines hash at several hundred MiB/s and sign in well under a
// millisecond, while the RPi 3B+ (Cortex-A53 @ 1.4 GHz) is roughly an order
// of magnitude slower on CPU-bound work and runs a 100 Mbps NIC.
var (
	// XeonE51603 models the Intel Xeon E5-1603 @ 2.80 GHz desktops.
	XeonE51603 = Profile{
		Name: "xeon-e5-1603", Cores: 4,
		HashMBps: 420, SignLatency: 280 * time.Microsecond, VerifyLatency: 750 * time.Microsecond,
		EndorseOverhead: 8 * time.Millisecond, CommitOverhead: 4 * time.Millisecond,
		OrderLatency: 900 * time.Microsecond,
		LinkMbps:     1000, LinkRTT: 250 * time.Microsecond,
		StoreLatency: 2 * time.Millisecond, StoreMBps: 45, JitterPct: 0.08,
	}
	// I74700MQ models the Intel i7-4700MQ @ 2.40 GHz laptop node.
	I74700MQ = Profile{
		Name: "i7-4700mq", Cores: 4,
		HashMBps: 390, SignLatency: 300 * time.Microsecond, VerifyLatency: 800 * time.Microsecond,
		EndorseOverhead: 9 * time.Millisecond, CommitOverhead: 5 * time.Millisecond,
		OrderLatency: 1 * time.Millisecond,
		LinkMbps:     1000, LinkRTT: 250 * time.Microsecond,
		StoreLatency: 2 * time.Millisecond, StoreMBps: 45, JitterPct: 0.08,
	}
	// I32310M models the Intel i3-2310M @ 2.10 GHz laptop node.
	I32310M = Profile{
		Name: "i3-2310m", Cores: 2,
		HashMBps: 260, SignLatency: 420 * time.Microsecond, VerifyLatency: 1100 * time.Microsecond,
		EndorseOverhead: 12 * time.Millisecond, CommitOverhead: 6 * time.Millisecond,
		OrderLatency: 1300 * time.Microsecond,
		LinkMbps:     1000, LinkRTT: 250 * time.Microsecond,
		StoreLatency: 2500 * time.Microsecond, StoreMBps: 35, JitterPct: 0.10,
	}
	// RPi3BPlus models the Raspberry Pi 3B+ (Cortex-A53 @ 1.4 GHz, ARM64,
	// 100 Mbps Ethernet). CPU-bound costs are ~8-12x the desktops'; the
	// paper's Fig 2 also shows markedly higher variance, captured by the
	// larger jitter.
	RPi3BPlus = Profile{
		Name: "rpi-3b+", Cores: 4,
		HashMBps: 38, SignLatency: 2800 * time.Microsecond, VerifyLatency: 7500 * time.Microsecond,
		EndorseOverhead: 80 * time.Millisecond, CommitOverhead: 40 * time.Millisecond,
		OrderLatency: 9 * time.Millisecond,
		LinkMbps:     94, LinkRTT: 400 * time.Microsecond,
		StoreLatency: 6 * time.Millisecond, StoreMBps: 8, JitterPct: 0.25,
	}
)

// HashCost returns the modeled time to SHA-256 n bytes.
func (p Profile) HashCost(n int) time.Duration {
	if p.HashMBps <= 0 || n <= 0 {
		return 0
	}
	sec := float64(n) / (p.HashMBps * 1024 * 1024)
	return time.Duration(sec * float64(time.Second))
}

// StoreCost returns the modeled time for one SSHFS operation moving n
// bytes.
func (p Profile) StoreCost(n int) time.Duration {
	d := p.StoreLatency
	if p.StoreMBps > 0 && n > 0 {
		sec := float64(n) / (p.StoreMBps * 1024 * 1024)
		d += time.Duration(sec * float64(time.Second))
	}
	return d
}

// TransferCost returns the modeled time to move n bytes across the link,
// including one RTT of latency.
func (p Profile) TransferCost(n int) time.Duration {
	d := p.LinkRTT
	if p.LinkMbps > 0 && n > 0 {
		sec := float64(n) * 8 / (p.LinkMbps * 1e6)
		d += time.Duration(sec * float64(time.Second))
	}
	return d
}

// Executor applies a profile's costs on a clock, with jitter, and accounts
// busy time for utilization/energy reporting. Two semaphores model the
// device's finite resources: CPU-bound operations contend for Cores slots,
// and link operations serialize on the NIC. This contention is what bends
// the throughput curve when concurrent clients pile onto one device.
type Executor struct {
	profile Profile
	clock   Clock

	mu  sync.Mutex
	rng *rand.Rand

	cpuSem  chan struct{}
	linkSem chan struct{}

	busyNanos atomic.Int64
	started   time.Time
}

// NewExecutor creates an executor for the profile on the given clock.
// seed makes jitter deterministic for tests.
func NewExecutor(p Profile, clock Clock, seed int64) *Executor {
	cores := p.Cores
	if cores <= 0 {
		cores = 1
	}
	return &Executor{
		profile: p,
		clock:   clock,
		rng:     rand.New(rand.NewSource(seed)),
		cpuSem:  make(chan struct{}, cores),
		linkSem: make(chan struct{}, 1),
		started: time.Now(),
	}
}

// Profile returns the executor's device profile.
func (e *Executor) Profile() Profile { return e.profile }

// Clock returns the executor's clock.
func (e *Executor) Clock() Clock { return e.clock }

func (e *Executor) jitter(d time.Duration) time.Duration {
	if e.profile.JitterPct <= 0 || d <= 0 {
		return d
	}
	e.mu.Lock()
	f := 1 + e.profile.JitterPct*(2*e.rng.Float64()-1)
	e.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// spend sleeps the jittered modeled duration while holding a slot of the
// given resource semaphore, and records it as busy time.
func (e *Executor) spend(sem chan struct{}, d time.Duration) time.Duration {
	d = e.jitter(d)
	if d <= 0 {
		return 0
	}
	sem <- struct{}{}
	e.busyNanos.Add(int64(d))
	e.clock.Sleep(d)
	<-sem
	return d
}

// Hash models checksumming n bytes. It returns the modeled duration spent.
func (e *Executor) Hash(n int) time.Duration { return e.spend(e.cpuSem, e.profile.HashCost(n)) }

// Sign models one ECDSA signature.
func (e *Executor) Sign() time.Duration { return e.spend(e.cpuSem, e.profile.SignLatency) }

// Verify models one ECDSA verification.
func (e *Executor) Verify() time.Duration { return e.spend(e.cpuSem, e.profile.VerifyLatency) }

// Endorse models the fixed per-proposal peer cost.
func (e *Executor) Endorse() time.Duration { return e.spend(e.cpuSem, e.profile.EndorseOverhead) }

// Commit models the fixed per-transaction commit cost.
func (e *Executor) Commit() time.Duration { return e.spend(e.cpuSem, e.profile.CommitOverhead) }

// CommitN models n transactions validated back-to-back on one core,
// charged as a single core acquisition. The modeled core-time equals n
// sequential Commit calls (jitter applies once to the batch); batching
// costs one scheduler wakeup instead of n, which matters when a worker
// walks a long stripe of a wide MVCC wavefront.
func (e *Executor) CommitN(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return e.spend(e.cpuSem, time.Duration(n)*e.profile.CommitOverhead)
}

// VerifyN models n ECDSA verifications performed back-to-back on one core
// (a transaction's endorsement set), as a single core acquisition.
func (e *Executor) VerifyN(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return e.spend(e.cpuSem, time.Duration(n)*e.profile.VerifyLatency)
}

// Order models the orderer's per-batch cost.
func (e *Executor) Order() time.Duration { return e.spend(e.cpuSem, e.profile.OrderLatency) }

// Transfer models moving n bytes across the device's network link. Link
// transfers serialize: a NIC moves one stream's bytes at a time.
func (e *Executor) Transfer(n int) time.Duration {
	return e.spend(e.linkSem, e.profile.TransferCost(n))
}

// StoreOp models the off-chain store's fixed per-operation overhead.
func (e *Executor) StoreOp() time.Duration { return e.spend(e.linkSem, e.profile.StoreLatency) }

// StoreTransfer models moving n bytes to or from the off-chain store over
// SSHFS: fixed per-op latency plus n bytes at the effective SSHFS rate,
// serialized on the NIC.
func (e *Executor) StoreTransfer(n int) time.Duration {
	return e.spend(e.linkSem, e.profile.StoreCost(n))
}

// BusyTime returns total modeled busy time accumulated so far.
func (e *Executor) BusyTime() time.Duration {
	return time.Duration(e.busyNanos.Load())
}

// Utilization estimates device utilization over the modeled window: busy
// time divided by (window × cores), capped at 1. window is in modeled time.
func (e *Executor) Utilization(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	cores := e.profile.Cores
	if cores <= 0 {
		cores = 1
	}
	u := float64(e.BusyTime()) / (float64(window) * float64(cores))
	if u > 1 {
		return 1
	}
	return u
}

// ResetBusy zeroes the busy-time counter (start of a measurement phase).
func (e *Executor) ResetBusy() { e.busyNanos.Store(0) }
