package transport

import (
	"errors"
	"testing"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/peer"
)

// newHost builds a volatile two-channel host with the provenance chaincode
// installed on every channel.
func (f *fixture) newHost(name string, channels ...string) *peer.Host {
	f.t.Helper()
	signer, err := f.ca.Enroll(name, identity.RolePeer)
	if err != nil {
		f.t.Fatal(err)
	}
	h, err := peer.NewHost(peer.Config{Name: name, Signer: signer, MSP: f.msp, Channels: channels})
	if err != nil {
		f.t.Fatal(err)
	}
	for _, ch := range channels {
		if err := h.Channel(ch).InstallChaincode(provenance.ChaincodeName, provenance.New(),
			endorser.SignedBy("Org1MSP")); err != nil {
			f.t.Fatal(err)
		}
	}
	f.t.Cleanup(h.Stop)
	return h
}

// serveHost exposes every channel of the host on one listener.
func (f *fixture) serveHost(h *peer.Host) *Server {
	f.t.Helper()
	srv, err := NewHostServer("127.0.0.1:0", h, f.serverConfig())
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { srv.Close() })
	return srv
}

// One listener, two channels: each client's frames must reach its own
// channel's ledger, and the hello must resolve per channel.
func TestHostServerRoutesPerChannel(t *testing.T) {
	f := newFixture(t)
	h := f.newHost("host0", "alpha", "beta")
	f.commitTx(h.Channel("alpha"), "a-key")
	f.commitTx(h.Channel("alpha"), "a-key2")
	f.commitTx(h.Channel("beta"), "b-key")
	srv := f.serveHost(h)

	for _, tc := range []struct {
		channel string
		height  uint64
	}{{"alpha", 2}, {"beta", 1}} {
		c, err := Dial(srv.Addr(), ClientConfig{Channel: tc.channel})
		if err != nil {
			t.Fatalf("dial channel %s: %v", tc.channel, err)
		}
		defer c.Close()
		info, err := c.Hello()
		if err != nil {
			t.Fatal(err)
		}
		if info.ChannelID != tc.channel {
			t.Errorf("hello resolved channel %q, want %q", info.ChannelID, tc.channel)
		}
		if len(info.Channels) != 2 || info.Channels[0] != "alpha" || info.Channels[1] != "beta" {
			t.Errorf("hello served channels %v, want [alpha beta]", info.Channels)
		}
		if info.Height != tc.height {
			t.Errorf("channel %s height %d, want %d", tc.channel, info.Height, tc.height)
		}
		fp, height, err := c.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if height != tc.height {
			t.Errorf("channel %s fingerprint height %d, want %d", tc.channel, height, tc.height)
		}
		want := h.Channel(tc.channel).StateFingerprint()
		if fp != want {
			t.Errorf("channel %s remote fingerprint %s != local %s", tc.channel, fp, want)
		}
	}
}

// A channel-less (pre-multichannel) client must route to the host's first
// channel, keeping old joiners working against new hosts.
func TestChannelLessClientRoutesToDefault(t *testing.T) {
	f := newFixture(t)
	h := f.newHost("host1", "alpha", "beta")
	f.commitTx(h.Channel("alpha"), "only-on-alpha")
	srv := f.serveHost(h)

	c, err := Dial(srv.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, err := c.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if info.ChannelID != "alpha" {
		t.Errorf("default route resolved %q, want alpha", info.ChannelID)
	}
	if info.Height != 1 {
		t.Errorf("default route height %d, want 1", info.Height)
	}
}

// A join targeting a channel the host does not serve must fail fast with
// the structured sentinel, not hang or return a generic failure.
func TestUnknownChannelRejected(t *testing.T) {
	f := newFixture(t)
	h := f.newHost("host2", "alpha", "beta")
	srv := f.serveHost(h)

	_, err := Dial(srv.Addr(), ClientConfig{Channel: "gamma"})
	if err == nil {
		t.Fatal("dial on unserved channel succeeded")
	}
	if !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("error %v does not match ErrUnknownChannel", err)
	}
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("error %v is not a RemoteError", err)
	}

	// The rejection must not poison the listener: a correctly scoped client
	// still gets through.
	c, err := Dial(srv.Addr(), ClientConfig{Channel: "beta"})
	if err != nil {
		t.Fatalf("dial after rejection: %v", err)
	}
	defer c.Close()
	if _, err := c.Height(); err != nil {
		t.Fatalf("height after rejection: %v", err)
	}
}
