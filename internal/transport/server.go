package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/peer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// Node is the peer surface the transport serves; *peer.Peer implements it.
type Node interface {
	// Name identifies the peer.
	Name() string
	// Height returns the committed block height.
	Height() uint64
	// BlocksFrom returns committed blocks with number >= from.
	BlocksFrom(from uint64) []*blockstore.Block
	// DeliverBlock submits a gossiped block to the commit pipeline.
	DeliverBlock(b *blockstore.Block)
	// Sync waits until every submitted block is fully persisted.
	Sync()
	// ProcessProposal endorses a signed proposal.
	ProcessProposal(prop *endorser.Proposal) (*endorser.Response, error)
	// Query runs a read-only chaincode invocation.
	Query(chaincode, fn string, args [][]byte, creator []byte) (shim.Response, error)
	// StateFingerprint hashes committed world state (post-Sync).
	StateFingerprint() string
}

var _ Node = (*peer.Peer)(nil)

// ServerConfig parameterizes a serving peer.
type ServerConfig struct {
	// ChannelID and Orgs describe the network for the hello handshake.
	ChannelID string
	Orgs      []string
	// CACertsPEM are the organizations' CA certificates handed to joining
	// processes as trust anchors.
	CACertsPEM [][]byte
	// Shape is applied to this server's writes on every accepted
	// connection, modelling the peer's uplink (per-connection link
	// shaping). Zero means unshaped.
	Shape network.LinkShape
}

// Server exposes one peer on a TCP listener.
type Server struct {
	node Node
	cfg  ServerConfig
	ln   net.Listener

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewServer starts a peer transport server on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewServer(addr string, node Node, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{node: node, cfg: cfg, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, tears down open connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serve(conn)
		}()
	}
}

// serve handles one connection: framed requests in, shaped framed
// responses out. A framing violation (oversized announcement, torn frame)
// closes the connection — the client reconnects with backoff.
func (s *Server) serve(conn net.Conn) {
	shaped := network.NewShapedConn(conn, s.cfg.Shape)
	for {
		var req request
		if err := network.ReadJSON(conn, &req); err != nil {
			return // EOF, oversized frame, or broken connection
		}
		if req.Op == opBlocksFrom {
			if err := s.streamBlocks(shaped, req.From); err != nil {
				return
			}
			continue
		}
		if err := network.WriteJSON(shaped, s.handle(&req)); err != nil {
			return
		}
	}
}

// streamBlocks answers a blocksFrom request: one block per frame, then a
// terminating More=false frame. Streaming per block keeps a long catch-up
// from buffering the whole tail in one frame and lets the shaper charge
// each block its own transfer.
func (s *Server) streamBlocks(w *network.ShapedConn, from uint64) error {
	for _, b := range s.node.BlocksFrom(from) {
		if err := network.WriteJSON(w, &response{OK: true, More: true, Block: b}); err != nil {
			return err
		}
	}
	return network.WriteJSON(w, &response{OK: true, More: false})
}

func (s *Server) handle(req *request) *response {
	switch req.Op {
	case opHello:
		return &response{
			OK:         true,
			Name:       s.node.Name(),
			ChannelID:  s.cfg.ChannelID,
			Orgs:       s.cfg.Orgs,
			CACertsPEM: s.cfg.CACertsPEM,
			Height:     s.node.Height(),
		}
	case opHeight:
		return &response{OK: true, Height: s.node.Height()}
	case opDeliver:
		if req.Block == nil {
			return &response{Code: network.CodeBadRequest, Err: "deliver without block"}
		}
		s.node.DeliverBlock(req.Block)
		return &response{OK: true}
	case opSync:
		s.node.Sync()
		return &response{OK: true, Height: s.node.Height()}
	case opEndorse:
		if req.Proposal == nil {
			return &response{Code: network.CodeBadRequest, Err: "endorse without proposal"}
		}
		resp, err := s.node.ProcessProposal(req.Proposal)
		if err != nil {
			return &response{Code: classifyPeerErr(err), Err: err.Error()}
		}
		return &response{OK: true, Endorsement: resp}
	case opQuery:
		resp, err := s.node.Query(req.Chaincode, req.Function, req.Args, req.Creator)
		if err != nil {
			return &response{Code: classifyPeerErr(err), Err: err.Error()}
		}
		return &response{OK: true, Status: resp.Status, Message: resp.Message, Payload: resp.Payload}
	case opFingerprint:
		fp := s.node.StateFingerprint()
		return &response{OK: true, Fingerprint: fp, Height: s.node.Height()}
	default:
		return &response{Code: network.CodeBadRequest, Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// classifyPeerErr maps peer sentinel errors onto wire error codes.
func classifyPeerErr(err error) network.ErrCode {
	switch {
	case errors.Is(err, peer.ErrUnknownChaincode):
		return network.CodeUnknownChaincode
	case errors.Is(err, peer.ErrSimulationFailed):
		return network.CodeSimulationFailed
	default:
		return network.CodeInternal
	}
}
