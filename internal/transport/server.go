package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/peer"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Node is the peer surface the transport serves; *peer.Peer implements it.
type Node interface {
	// Name identifies the peer.
	Name() string
	// Height returns the committed block height.
	Height() uint64
	// BlocksFrom returns committed blocks with number >= from.
	BlocksFrom(from uint64) []*blockstore.Block
	// DeliverBlock submits a gossiped block to the commit pipeline.
	DeliverBlock(b *blockstore.Block)
	// Sync waits until every submitted block is fully persisted.
	Sync()
	// ProcessProposal endorses a signed proposal.
	ProcessProposal(prop *endorser.Proposal) (*endorser.Response, error)
	// Query runs a read-only chaincode invocation.
	Query(chaincode, fn string, args [][]byte, creator []byte) (shim.Response, error)
	// StateFingerprint hashes committed world state (post-Sync).
	StateFingerprint() string
}

var _ Node = (*peer.Peer)(nil)

// ServerConfig parameterizes a serving peer.
type ServerConfig struct {
	// ChannelID names the single channel a NewServer-built server exposes
	// (NewHostServer derives its channel set from the host instead). It and
	// Orgs describe the network for the hello handshake.
	ChannelID string
	Orgs      []string
	// CACertsPEM are the organizations' CA certificates handed to joining
	// processes as trust anchors.
	CACertsPEM [][]byte
	// Shape is applied to this server's writes on every accepted
	// connection, modelling the peer's uplink (per-connection link
	// shaping). Zero means unshaped.
	Shape network.LinkShape
	// Metrics, when set, receives server-side transport counters
	// (frames/bytes in each direction, gossip push deliveries).
	Metrics *metrics.Registry
	// Tracer, when set, records spans for remote-initiated work — endorse
	// and pushed block deliveries — under the trace ID carried in the
	// request's frame header (or the payload's txID).
	Tracer *trace.Recorder
}

// Server exposes one host — one or more channel-scoped peer nodes — on a
// TCP listener. Every frame is routed to the node serving the channel named
// in its header extension; channel-less frames go to the default (first)
// channel, which is how pre-multichannel clients keep working.
type Server struct {
	nodes     map[string]Node
	order     []string
	defaultCh string
	cfg       ServerConfig
	ln        net.Listener

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// NewServer starts a transport server exposing a single channel node on
// addr ("127.0.0.1:0" for an ephemeral port), the channel named by
// cfg.ChannelID. Multi-channel hosts use NewHostServer.
func NewServer(addr string, node Node, cfg ServerConfig) (*Server, error) {
	return newServer(addr, map[string]Node{cfg.ChannelID: node}, []string{cfg.ChannelID}, cfg)
}

// NewHostServer starts a transport server exposing every channel of a
// multi-channel host on one listener. The host's first channel is the
// default route for channel-less (pre-multichannel) clients.
func NewHostServer(addr string, host *peer.Host, cfg ServerConfig) (*Server, error) {
	order := host.Channels()
	if len(order) == 0 {
		return nil, errors.New("transport: host serves no channels")
	}
	nodes := make(map[string]Node, len(order))
	for _, ch := range order {
		nodes[ch] = host.Channel(ch)
	}
	return newServer(addr, nodes, order, cfg)
}

func newServer(addr string, nodes map[string]Node, order []string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{
		nodes:     nodes,
		order:     order,
		defaultCh: order[0],
		cfg:       cfg,
		ln:        ln,
		conns:     make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// nodeFor resolves a frame's channel extension to the serving node. An
// empty channel routes to the host's default channel.
func (s *Server) nodeFor(channelID string) (Node, string, bool) {
	if channelID == "" {
		channelID = s.defaultCh
	}
	node, ok := s.nodes[channelID]
	return node, channelID, ok
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, tears down open connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serve(conn)
		}()
	}
}

// count bumps a server-side transport counter when metrics are configured.
// Every call site passes one of the metrics.Transport* constants, so the
// counter family set stays fixed.
func (s *Server) count(name string) {
	if s.cfg.Metrics != nil {
		//hyperprov:allow metricnames constant Transport* names forwarded by call sites
		s.cfg.Metrics.Counter(name).Inc()
	}
}

// serve handles one connection: framed requests in, shaped framed
// responses out. A framing violation (oversized announcement, torn frame)
// closes the connection — the client reconnects with backoff.
func (s *Server) serve(conn net.Conn) {
	var rw net.Conn = conn
	if s.cfg.Metrics != nil {
		rw = &countingConn{Conn: conn, reg: s.cfg.Metrics}
	}
	shaped := network.NewShapedConn(rw, s.cfg.Shape)
	for {
		var req request
		traceID, channelID, err := network.ReadExtJSON(rw, &req)
		if err != nil {
			return // EOF, oversized frame, or broken connection
		}
		s.count(metrics.TransportFramesReceived)
		node, resolved, ok := s.nodeFor(channelID)
		if !ok {
			// Answer with a structured code instead of dropping the
			// connection: the client maps it to ErrUnknownChannel and can
			// report which channels the host does serve.
			reject := &response{
				Code: network.CodeUnknownChannel,
				Err:  fmt.Sprintf("channel %q not served (serving %v)", channelID, s.order),
			}
			if err := network.WriteJSON(shaped, reject); err != nil {
				return
			}
			s.count(metrics.TransportFramesSent)
			continue
		}
		if req.Op == opBlocksFrom {
			if err := s.streamBlocks(shaped, node, req.From); err != nil {
				return
			}
			continue
		}
		if err := network.WriteJSON(shaped, s.handle(node, resolved, &req, traceID)); err != nil {
			return
		}
		s.count(metrics.TransportFramesSent)
	}
}

// streamBlocks answers a blocksFrom request: one block per frame, then a
// terminating More=false frame. Streaming per block keeps a long catch-up
// from buffering the whole tail in one frame and lets the shaper charge
// each block its own transfer.
func (s *Server) streamBlocks(w *network.ShapedConn, node Node, from uint64) error {
	for _, b := range node.BlocksFrom(from) {
		start := time.Now()
		// Stamp the frame with the block's first txID so the pulling process
		// can associate the stream with in-flight traces.
		var traceID string
		if len(b.Envelopes) > 0 {
			traceID = b.Envelopes[0].TxID
		}
		if err := network.WriteTracedJSON(w, traceID, &response{OK: true, More: true, BlockBin: blockstore.MarshalBlock(b)}); err != nil {
			return err
		}
		s.count(metrics.TransportFramesSent)
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.AddBatch(envelopeIDs(b), trace.StageGossipSend, node.Name(), start, time.Since(start))
		}
	}
	err := network.WriteJSON(w, &response{OK: true, More: false})
	if err == nil {
		s.count(metrics.TransportFramesSent)
	}
	return err
}

// envelopeIDs collects a block's transaction IDs for span batching.
func envelopeIDs(b *blockstore.Block) []string {
	ids := make([]string, len(b.Envelopes))
	for i := range b.Envelopes {
		ids[i] = b.Envelopes[i].TxID
	}
	return ids
}

func (s *Server) handle(node Node, channelID string, req *request, traceID string) *response {
	switch req.Op {
	case opHello:
		return &response{
			OK:         true,
			Name:       node.Name(),
			ChannelID:  channelID,
			Channels:   s.order,
			Orgs:       s.cfg.Orgs,
			CACertsPEM: s.cfg.CACertsPEM,
			Height:     node.Height(),
		}
	case opHeight:
		return &response{OK: true, Height: node.Height()}
	case opDeliver:
		b := req.Block
		if len(req.BlockBin) > 0 {
			var err error
			b, err = blockstore.UnmarshalBlock(req.BlockBin)
			if err != nil {
				return &response{Code: network.CodeBadRequest, Err: fmt.Sprintf("deliver with undecodable block: %v", err)}
			}
		}
		if b == nil {
			return &response{Code: network.CodeBadRequest, Err: "deliver without block"}
		}
		start := time.Now()
		node.DeliverBlock(b)
		s.count(metrics.GossipPushDeliveries)
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.AddBatch(envelopeIDs(b), trace.StageGossipDeliver, node.Name(), start, time.Since(start))
		}
		return &response{OK: true}
	case opSync:
		node.Sync()
		return &response{OK: true, Height: node.Height()}
	case opEndorse:
		if req.Proposal == nil {
			return &response{Code: network.CodeBadRequest, Err: "endorse without proposal"}
		}
		start := time.Now()
		resp, err := node.ProcessProposal(req.Proposal)
		if err != nil {
			return &response{Code: classifyPeerErr(err), Err: err.Error()}
		}
		// Measure the remote endorse hop here (covers simulation + signing
		// on this peer), record it locally under the frame's trace ID, and
		// ship it back so the caller joins it into its own timeline.
		span := trace.Span{
			Stage:    trace.StageEndorse,
			Peer:     node.Name(),
			Start:    start,
			Duration: time.Since(start),
		}
		if s.cfg.Tracer != nil {
			id := traceID
			if id == "" {
				id = req.Proposal.TxID
			}
			remote := span
			remote.Remote = true
			s.cfg.Tracer.Add(id, remote)
		}
		return &response{OK: true, Endorsement: resp, Span: &span}
	case opQuery:
		resp, err := node.Query(req.Chaincode, req.Function, req.Args, req.Creator)
		if err != nil {
			return &response{Code: classifyPeerErr(err), Err: err.Error()}
		}
		return &response{OK: true, Status: resp.Status, Message: resp.Message, Payload: resp.Payload}
	case opFingerprint:
		fp := node.StateFingerprint()
		return &response{OK: true, Fingerprint: fp, Height: node.Height()}
	default:
		return &response{Code: network.CodeBadRequest, Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// classifyPeerErr maps peer sentinel errors onto wire error codes.
func classifyPeerErr(err error) network.ErrCode {
	switch {
	case errors.Is(err, peer.ErrUnknownChaincode):
		return network.CodeUnknownChaincode
	case errors.Is(err, peer.ErrSimulationFailed):
		return network.CodeSimulationFailed
	default:
		return network.CodeInternal
	}
}
