//hyperprov:compat exercises the legacy single-channel peer.Config.ChannelID path on purpose

package transport

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/gossip"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/peer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// fixture is a trust domain shared by every peer in a test: one CA, one
// MSP, one client identity — the in-process stand-in for the network a
// serving process would expose over hello.
type fixture struct {
	t      *testing.T
	ca     *identity.CA
	msp    *identity.MSP
	client *identity.SigningIdentity
	nextTx int
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ca, err := identity.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	client, err := ca.Enroll("client0", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, ca: ca, msp: identity.NewMSP(ca), client: client}
}

func (f *fixture) newPeer(name string) *peer.Peer {
	f.t.Helper()
	signer, err := f.ca.Enroll(name, identity.RolePeer)
	if err != nil {
		f.t.Fatal(err)
	}
	p := peer.New(peer.Config{Name: name, Signer: signer, MSP: f.msp, ChannelID: "ch"})
	if err := p.InstallChaincode(provenance.ChaincodeName, provenance.New(),
		endorser.SignedBy("Org1MSP")); err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(p.Stop)
	return p
}

func (f *fixture) serverConfig() ServerConfig {
	return ServerConfig{
		ChannelID:  "ch",
		Orgs:       []string{"Org1"},
		CACertsPEM: [][]byte{f.ca.CertPEM()},
	}
}

func (f *fixture) serve(p *peer.Peer) *Server {
	f.t.Helper()
	srv, err := NewServer("127.0.0.1:0", p, f.serverConfig())
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { srv.Close() })
	return srv
}

func (f *fixture) dial(addr string) *Client {
	f.t.Helper()
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { c.Close() })
	return c
}

// propose builds and signs a client proposal.
func (f *fixture) propose(fn string, args ...string) *endorser.Proposal {
	f.t.Helper()
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	creator := f.client.Serialize()
	txID, err := endorser.NewTxID(creator)
	if err != nil {
		f.t.Fatal(err)
	}
	p := &endorser.Proposal{
		TxID:      txID,
		ChannelID: "ch",
		Chaincode: provenance.ChaincodeName,
		Function:  fn,
		Args:      raw,
		Creator:   creator,
		Timestamp: time.Now().UTC(),
	}
	sig, err := f.client.Sign(p.SignedBytes())
	if err != nil {
		f.t.Fatal(err)
	}
	p.Signature = sig
	return p
}

// commitTx endorses one provenance Set on p and commits it as the next
// block, returning after persistence.
func (f *fixture) commitTx(p *peer.Peer, key string) {
	f.t.Helper()
	f.nextTx++
	fn := provenance.FnSet
	args := []string{fmt.Sprintf(`{"key":%q,"checksum":"sha256:%04d"}`, key, f.nextTx)}
	if p.Height() == 0 {
		// First block instantiates the chaincode.
		fn, args = peer.InitFunction, nil
	}
	prop := f.propose(fn, args...)
	resp, err := p.ProcessProposal(prop)
	if err != nil {
		f.t.Fatal(err)
	}
	env := blockstore.Envelope{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Chaincode: prop.Chaincode,
		Function:  prop.Function,
		Args:      prop.Args,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
		RWSet:     resp.RWSet,
		Response:  resp.Payload,
		Events:    resp.Events,
		Endorsements: []blockstore.Endorsement{
			{Endorser: resp.Endorser, Signature: resp.Signature},
		},
	}
	sig, err := f.client.Sign(env.SignedBytes())
	if err != nil {
		f.t.Fatal(err)
	}
	env.Signature = sig
	b, err := blockstore.NewBlock(p.Height(), p.Ledger().LastHash(), []blockstore.Envelope{env})
	if err != nil {
		f.t.Fatal(err)
	}
	p.DeliverBlock(b)
	p.Sync()
}

func waitHeight(t *testing.T, p *peer.Peer, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for p.Height() < want {
		if time.Now().After(deadline) {
			t.Fatalf("height %d, want %d", p.Height(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHelloHeightFingerprint(t *testing.T) {
	f := newFixture(t)
	p := f.newPeer("peer0")
	f.commitTx(p, "item-a")
	f.commitTx(p, "item-b")
	c := f.dial(f.serve(p).Addr())

	info, err := c.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "peer0" || info.ChannelID != "ch" || len(info.Orgs) != 1 || info.Orgs[0] != "Org1" {
		t.Errorf("hello = %+v", info)
	}
	if len(info.CACertsPEM) != 1 {
		t.Fatalf("hello carried %d CA certs", len(info.CACertsPEM))
	}
	if _, err := identity.NewVerifyingCA(info.CACertsPEM[0]); err != nil {
		t.Errorf("hello trust anchor unusable: %v", err)
	}
	h, err := c.Height()
	if err != nil || h != 2 {
		t.Errorf("remote height = %d, %v", h, err)
	}
	fp, fph, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != p.StateFingerprint() || fph != 2 {
		t.Errorf("remote fingerprint = %s@%d", fp, fph)
	}
}

func TestRemoteEndorseAndQuery(t *testing.T) {
	f := newFixture(t)
	p := f.newPeer("peer0")
	f.commitTx(p, "endorse-seed") // instantiates the chaincode
	c := f.dial(f.serve(p).Addr())

	// A remote endorsement is byte-compatible with a local one: the MSP
	// verifies its signature like any endorsement.
	prop := f.propose(provenance.FnSet, `{"key":"remote-item","checksum":"sha256:aa"}`)
	resp, err := c.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resp.Verify(f.msp); err != nil {
		t.Errorf("remote endorsement does not verify: %v", err)
	}

	// Commit it locally, then query the record over the transport.
	f.commitTx(p, "remote-item")
	q, err := c.Query(provenance.ChaincodeName, provenance.FnGet,
		[][]byte{[]byte("remote-item")}, f.client.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if q.Status != shim.OK || len(q.Payload) == 0 {
		t.Errorf("remote query = %+v", q)
	}

	// Structured error codes classify remote failures.
	if _, err := c.Query("no-such-cc", "fn", nil, f.client.Serialize()); err == nil {
		t.Error("unknown chaincode query succeeded")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != network.CodeUnknownChaincode {
			t.Errorf("unknown chaincode err = %v", err)
		}
	}
	badProp := f.propose("no-such-function")
	if _, err := c.ProcessProposal(badProp); err == nil {
		t.Error("bad proposal endorsed")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) || re.Code != network.CodeSimulationFailed {
			t.Errorf("failed simulation err = %v", err)
		}
	}
}

// TestGossipPullOverTCP is the tentpole property: a peer in a (simulated)
// separate process catches up purely by pulling blocks over a TCP
// transport member, and lands on the identical state fingerprint.
func TestGossipPullOverTCP(t *testing.T) {
	f := newFixture(t)
	source := f.newPeer("peer0")
	for i := 0; i < 5; i++ {
		f.commitTx(source, fmt.Sprintf("pull-%d", i))
	}
	edge := f.newPeer("peer1")
	c := f.dial(f.serve(source).Addr())
	remote, err := c.Member()
	if err != nil {
		t.Fatal(err)
	}
	if remote.Name() != "peer0" {
		t.Errorf("remote member name = %q", remote.Name())
	}

	g := gossip.New(gossip.Config{Interval: 10 * time.Millisecond, Fanout: 1}, edge, remote)
	defer g.Stop()
	waitHeight(t, edge, source.Height())
	if err := edge.Ledger().VerifyChain(); err != nil {
		t.Errorf("edge chain: %v", err)
	}
	if edge.StateFingerprint() != source.StateFingerprint() {
		t.Error("state fingerprints diverge after TCP catch-up")
	}
}

// TestGossipPushOverTCP exercises the reverse direction: the local gossip
// network pushes blocks to a remote member via deliver frames, flushing
// its pipeline with one sync per pulled batch.
func TestGossipPushOverTCP(t *testing.T) {
	f := newFixture(t)
	local := f.newPeer("peer0")
	remotePeer := f.newPeer("peer1")
	for i := 0; i < 4; i++ {
		f.commitTx(local, fmt.Sprintf("push-%d", i))
	}
	c := f.dial(f.serve(remotePeer).Addr())
	remote, err := c.Member()
	if err != nil {
		t.Fatal(err)
	}
	g := gossip.New(gossip.Config{Interval: 10 * time.Millisecond, Fanout: 1}, local, remote)
	defer g.Stop()
	waitHeight(t, remotePeer, local.Height())
	if remotePeer.StateFingerprint() != local.StateFingerprint() {
		t.Error("state fingerprints diverge after TCP push")
	}
}

// chainOf builds a valid hash-chained run of empty blocks for
// protocol-level tests that do not need real transactions.
func chainOf(t *testing.T, n int) []*blockstore.Block {
	t.Helper()
	sto := blockstore.NewStore()
	for i := 0; i < n; i++ {
		b, err := blockstore.NewBlock(sto.Height(), sto.LastHash(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sto.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return sto.BlocksFrom(0)
}

// TestMidStreamDisconnect cuts the connection after two of five streamed
// blocks: the client must surface the in-order prefix plus an error, and
// recover on the next call.
func TestMidStreamDisconnect(t *testing.T) {
	blocks := chainOf(t, 5)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					var req request
					if err := network.ReadJSON(conn, &req); err != nil {
						return
					}
					switch req.Op {
					case opHello:
						_ = network.WriteJSON(conn, &response{OK: true, Name: "half-open"})
					case opBlocksFrom:
						// Two frames, then drop the connection mid-stream.
						_ = network.WriteJSON(conn, &response{OK: true, More: true, Block: blocks[0]})
						_ = network.WriteJSON(conn, &response{OK: true, More: true, Block: blocks[1]})
						return
					}
				}
			}(conn)
		}
	}()

	c, err := Dial(ln.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.BlocksFrom(0)
	if err == nil {
		t.Fatal("mid-stream disconnect reported no error")
	}
	if len(got) != 2 || got[0].Header.Number != 0 || got[1].Header.Number != 1 {
		t.Fatalf("prefix = %d blocks", len(got))
	}
	// The member adapter delivers the prefix silently; the next round
	// re-dials and pulls again.
	m := &Member{c: c, name: "half-open"}
	if pre := m.BlocksFrom(0); len(pre) != 2 {
		t.Errorf("member prefix = %d blocks", len(pre))
	}
}

// TestOversizedFrameClosesConnection: a frame header announcing more than
// MaxFrame must terminate the connection on both ends.
func TestOversizedFrameClosesConnection(t *testing.T) {
	f := newFixture(t)
	p := f.newPeer("peer0")
	srv := f.serve(p)

	// Client side: raw connection announcing an oversized request frame.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server kept the connection open after an oversized frame")
	}

	// Server side: a malicious server announcing an oversized response.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var req request
				_ = network.ReadJSON(conn, &req)
				_, _ = conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
			}(conn)
		}
	}()
	c := &Client{addr: ln.Addr().String(), cfg: ClientConfig{}.withDefaults()}
	if _, err := c.Height(); err == nil || !errors.Is(err, network.ErrFrameTooLarge) {
		t.Errorf("oversized response err = %v, want ErrFrameTooLarge", err)
	}
}

// TestReconnectAfterRestartConvergence: the serving peer's process dies
// and comes back on the same address; the joined side must reconnect and
// converge on blocks committed across the outage.
func TestReconnectAfterRestartConvergence(t *testing.T) {
	f := newFixture(t)
	source := f.newPeer("peer0")
	edge := f.newPeer("peer1")
	f.commitTx(source, "before-restart")

	srv, err := NewServer("127.0.0.1:0", source, f.serverConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c, err := Dial(addr, ClientConfig{MinBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote, err := c.Member()
	if err != nil {
		t.Fatal(err)
	}
	g := gossip.New(gossip.Config{Interval: 10 * time.Millisecond, Fanout: 1}, edge, remote)
	defer g.Stop()
	waitHeight(t, edge, source.Height())

	// Kill the serving endpoint, commit through the outage, restart on the
	// same address.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	f.commitTx(source, "during-outage")
	time.Sleep(50 * time.Millisecond) // let a few failed rounds exercise the backoff path
	srv2, err := NewServer(addr, source, f.serverConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	waitHeight(t, edge, source.Height())
	if edge.StateFingerprint() != source.StateFingerprint() {
		t.Error("state fingerprints diverge after restart")
	}
}

// TestDialBackoffFailsFast: while the backoff window is open, calls fail
// with ErrBackoff instead of paying a connect timeout.
func TestDialBackoffFailsFast(t *testing.T) {
	f := newFixture(t)
	p := f.newPeer("peer0")
	srv := f.serve(p)
	addr := srv.Addr()
	c, err := Dial(addr, ClientConfig{MinBackoff: time.Minute, MaxBackoff: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()

	// First call: dead conn, immediate redial fails, backoff opens.
	if _, err := c.Height(); err == nil {
		t.Fatal("call against closed server succeeded")
	}
	start := time.Now()
	if _, err := c.Height(); !errors.Is(err, ErrBackoff) {
		t.Errorf("in-backoff err = %v, want ErrBackoff", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("backoff fail-fast took %v", elapsed)
	}
}
