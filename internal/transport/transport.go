// Package transport puts peers on real sockets: a TCP service over the
// network package's length-prefixed framing that serves the gossip
// anti-entropy protocol (height probe, block streaming, block delivery) and
// remote endorsement/query, plus a client whose adapters slot into the
// existing in-process seams — a gossip.Member that joins a gossip.Network
// unchanged, and an endorser-compatible handle the gateway can fan
// proposals to. This is the step from "four peers in one process" to the
// paper's four physical machines on one switch: every block and every
// endorsement crosses a (optionally shaped) TCP connection.
package transport

import (
	"fmt"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Protocol operations.
const (
	opHello       = "hello"
	opHeight      = "height"
	opBlocksFrom  = "blocksFrom"
	opDeliver     = "deliver"
	opSync        = "sync"
	opEndorse     = "endorse"
	opQuery       = "query"
	opFingerprint = "fingerprint"
)

// request is one framed client -> server message.
type request struct {
	Op string `json:"op"`
	// From is the starting block number for blocksFrom.
	From uint64 `json:"from,omitempty"`
	// Block is the pushed block for deliver, as sent by older clients.
	// Current clients send BlockBin instead.
	Block *blockstore.Block `json:"block,omitempty"`
	// BlockBin is the pushed block in canonical binary form
	// (blockstore.MarshalBlock). Preferred over Block: the codec is several
	// times faster than JSON and the decoded envelopes arrive carrying
	// their canonical bytes, so the receiving peer's commit pipeline never
	// re-encodes them. Servers accept either field.
	BlockBin []byte `json:"blockBin,omitempty"`
	// Proposal is the signed proposal for endorse.
	Proposal *endorser.Proposal `json:"proposal,omitempty"`
	// Chaincode/Function/Args/Creator describe a query invocation.
	Chaincode string   `json:"chaincode,omitempty"`
	Function  string   `json:"function,omitempty"`
	Args      [][]byte `json:"args,omitempty"`
	Creator   []byte   `json:"creator,omitempty"`
}

// response is one framed server -> client message. Failures carry a
// structured error code (shared with the off-chain store protocol) so
// clients classify them without parsing message text. A blocksFrom request
// is answered by a sequence of responses, one block per frame with
// More=true, terminated by an empty More=false frame — a long catch-up is
// streamed, never buffered whole.
type response struct {
	OK   bool            `json:"ok"`
	Code network.ErrCode `json:"code,omitempty"`
	Err  string          `json:"err,omitempty"`

	// hello fields: who the peer is and the trust material a remote
	// process needs to validate this network's blocks (CA certificates
	// only — private keys never cross the wire). ChannelID is the channel
	// the handshake resolved to; Channels lists every channel the host
	// serves, so a joiner can discover the topology.
	Name       string   `json:"name,omitempty"`
	ChannelID  string   `json:"channelId,omitempty"`
	Channels   []string `json:"channels,omitempty"`
	Orgs       []string `json:"orgs,omitempty"`
	CACertsPEM [][]byte `json:"caCerts,omitempty"`

	// height / fingerprint fields.
	Height      uint64 `json:"height,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// blocksFrom stream fields. Block is the legacy JSON form; current
	// servers stream BlockBin (canonical binary). Clients accept either.
	Block    *blockstore.Block `json:"block,omitempty"`
	BlockBin []byte            `json:"blockBin,omitempty"`
	More     bool              `json:"more,omitempty"`

	// endorse fields. Span is the serving peer's measured endorse span,
	// shipped back so the requesting process can join the remote hop into
	// its own trace timeline.
	Endorsement *endorser.Response `json:"endorsement,omitempty"`
	Span        *trace.Span        `json:"span,omitempty"`

	// query fields.
	Status  int32  `json:"status,omitempty"`
	Message string `json:"message,omitempty"`
	Payload []byte `json:"payload,omitempty"`
}

// RemoteError is a structured failure reported by the remote peer.
type RemoteError struct {
	Code network.ErrCode
	Msg  string
}

// Error renders the remote failure.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error [%s]: %s", e.Code, e.Msg)
}

// Is maps wire error codes onto package sentinels, so callers classify
// remote failures with errors.Is instead of matching message text.
func (e *RemoteError) Is(target error) bool {
	return target == ErrUnknownChannel && e.Code == network.CodeUnknownChannel
}

// remoteErr converts a failed response into a RemoteError.
func remoteErr(resp *response) error {
	code := resp.Code
	if code == network.CodeNone {
		code = network.CodeInternal
	}
	return &RemoteError{Code: code, Msg: resp.Err}
}

// HelloInfo is the handshake a serving peer answers: its identity, the
// channel, and the trust anchors of the network's organizations.
type HelloInfo struct {
	// Name is the serving peer's name.
	Name string
	// ChannelID is the channel this handshake resolved to: the client's
	// requested channel, or the host's default for channel-less clients.
	ChannelID string
	// Channels lists every channel the host serves (nil from pre-multichannel
	// servers).
	Channels []string
	// Orgs lists the consortium's organization names, in policy order
	// (single org -> any-member endorsement policy, several -> majority).
	Orgs []string
	// CACertsPEM holds one CA certificate PEM per organization; a joining
	// process builds verification-only CAs from these to validate block
	// signatures.
	CACertsPEM [][]byte
	// Height is the peer's committed height at handshake time.
	Height uint64
}
