package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/gossip"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// ErrBackoff is returned when a request arrives while the client is
// holding off redialling a dead peer; the caller should simply try again
// later (gossip does, every round).
var ErrBackoff = errors.New("transport: peer unreachable, backing off")

// ErrUnknownChannel is the sentinel a *RemoteError carrying
// network.CodeUnknownChannel matches via errors.Is: the host rejected the
// request because it does not serve the client's channel. A joiner should
// surface the host's served-channel list instead of retrying.
var ErrUnknownChannel = errors.New("transport: host does not serve the requested channel")

// ClientConfig tunes a transport client.
type ClientConfig struct {
	// Channel names the channel every request from this client targets: it
	// rides in each frame's header extension, and the serving host routes
	// the frame to that channel's peer instance. Empty sends channel-less
	// frames (byte-identical to pre-multichannel clients), which a host
	// routes to its default channel.
	Channel string
	// Shape is applied to the client's writes (its uplink); zero means
	// unshaped.
	Shape network.LinkShape
	// DialTimeout bounds one TCP connect attempt; 0 means 3s.
	DialTimeout time.Duration
	// MinBackoff/MaxBackoff bound the exponential redial backoff after a
	// failed dial; 0 means 50ms / 2s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Metrics, when set, receives transport counters (frames/bytes in each
	// direction, reconnects, handshake failures) and per-RPC latency
	// histograms named metrics.TransportRPC + "_<op>".
	Metrics *metrics.Registry
	// Tracer, when set, joins remote endorse spans (shipped back in the
	// response, marked Remote) into this process's trace timelines.
	Tracer *trace.Recorder
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	return c
}

// Client is one peer's view of a remote peer: a single TCP connection,
// request/response exchanges serialized over it, and reconnect-with-backoff
// when the remote drops. A failure on an established connection triggers
// one immediate redial (the usual case: the peer restarted); failed dials
// back off exponentially so a dead peer costs a cheap time check per
// gossip round, not a connect timeout.
type Client struct {
	addr string
	cfg  ClientConfig

	mu       sync.Mutex
	conn     net.Conn
	shaped   *network.ShapedConn
	hello    HelloInfo
	helloOK  bool
	backoff  time.Duration
	nextDial time.Time
	closed   bool

	// everConnected distinguishes a reconnect (a previously working peer
	// came back) from the first dial, for the reconnect counter.
	everConnected bool
	// lastErr keeps the most recent transport failure so the backoff path
	// no longer swallows the reason; /healthz surfaces it per peer.
	lastErr string
}

// Dial connects to a serving peer and performs the hello handshake.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{addr: addr, cfg: cfg.withDefaults()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	if err := c.helloLocked(); err != nil {
		c.dropConnLocked()
		return nil, err
	}
	return c, nil
}

// Addr returns the remote peer's address.
func (c *Client) Addr() string { return c.addr }

// LastError returns the most recent transport failure against this peer
// ("" when the last operation succeeded). Dial failures during backoff and
// handshake rejections land here instead of being silently swallowed.
func (c *Client) LastError() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// setErrLocked records a failure for LastError; nil clears it.
func (c *Client) setErrLocked(err error) {
	if err == nil {
		c.lastErr = ""
	} else {
		c.lastErr = err.Error()
	}
}

// count bumps a transport counter when metrics are configured. Every call
// site passes one of the metrics.Transport* constants, so the counter
// family set stays fixed.
func (c *Client) count(name string) {
	if c.cfg.Metrics != nil {
		//hyperprov:allow metricnames constant Transport* names forwarded by call sites
		c.cfg.Metrics.Counter(name).Inc()
	}
}

// countingConn counts bytes crossing the wire in each direction.
type countingConn struct {
	net.Conn
	reg *metrics.Registry
}

func (cc *countingConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	if n > 0 {
		cc.reg.Counter(metrics.TransportBytesReceived).Add(int64(n))
	}
	return n, err
}

func (cc *countingConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	if n > 0 {
		cc.reg.Counter(metrics.TransportBytesSent).Add(int64(n))
	}
	return n, err
}

// Hello returns the remote peer's handshake info, performing the exchange
// if it has not happened yet (e.g. after Dial-time info was requested
// again post-restart).
func (c *Client) Hello() (HelloInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.helloOK {
		return c.hello, nil
	}
	if err := c.ensureConnLocked(); err != nil {
		return HelloInfo{}, err
	}
	if err := c.helloLocked(); err != nil {
		c.dropConnLocked()
		return HelloInfo{}, err
	}
	return c.hello, nil
}

// helloLocked exchanges the handshake on the current connection.
func (c *Client) helloLocked() error {
	resp, err := c.exchangeLocked(&request{Op: opHello}, "")
	if err != nil {
		err = fmt.Errorf("transport: hello %s: %w", c.addr, err)
		c.count(metrics.TransportHandshakeFailures)
		c.setErrLocked(err)
		return err
	}
	if !resp.OK {
		err := remoteErr(resp)
		c.count(metrics.TransportHandshakeFailures)
		c.setErrLocked(err)
		return err
	}
	c.hello = HelloInfo{
		Name:       resp.Name,
		ChannelID:  resp.ChannelID,
		Channels:   resp.Channels,
		Orgs:       resp.Orgs,
		CACertsPEM: resp.CACertsPEM,
		Height:     resp.Height,
	}
	c.helloOK = true
	return nil
}

// connectLocked dials the remote, respecting the backoff gate.
func (c *Client) connectLocked() error {
	if c.closed {
		return errors.New("transport: client closed")
	}
	if !c.nextDial.IsZero() && time.Now().Before(c.nextDial) {
		return fmt.Errorf("%w: %s", ErrBackoff, c.addr)
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		if c.backoff == 0 {
			c.backoff = c.cfg.MinBackoff
		} else {
			c.backoff *= 2
			if c.backoff > c.cfg.MaxBackoff {
				c.backoff = c.cfg.MaxBackoff
			}
		}
		c.nextDial = time.Now().Add(c.backoff)
		err = fmt.Errorf("transport: dial %s: %w", c.addr, err)
		c.setErrLocked(err)
		return err
	}
	if c.cfg.Metrics != nil {
		conn = &countingConn{Conn: conn, reg: c.cfg.Metrics}
	}
	c.conn = conn
	c.shaped = network.NewShapedConn(conn, c.cfg.Shape)
	c.backoff = 0
	c.nextDial = time.Time{}
	if c.everConnected {
		c.count(metrics.TransportReconnects)
	}
	c.everConnected = true
	c.setErrLocked(nil)
	return nil
}

func (c *Client) ensureConnLocked() error {
	if c.conn != nil {
		return nil
	}
	return c.connectLocked()
}

func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.shaped = nil
	}
}

// exchangeLocked writes one request and reads one response on the current
// connection. A non-empty traceID rides in the frame header so the serving
// process joins the sender's trace.
func (c *Client) exchangeLocked(req *request, traceID string) (*response, error) {
	if err := network.WriteExtJSON(c.shaped, traceID, c.cfg.Channel, req); err != nil {
		return nil, err
	}
	c.count(metrics.TransportFramesSent)
	var resp response
	if err := network.ReadJSON(c.conn, &resp); err != nil {
		return nil, err
	}
	c.count(metrics.TransportFramesReceived)
	return &resp, nil
}

// traceIDFor picks the trace ID a request should carry: the proposal's
// transaction ID, rooting the remote hop in the same trace. Block pushes
// compute their trace ID before encoding (see Deliver) — the binary block
// payload is opaque here.
func traceIDFor(req *request) string {
	if req.Proposal != nil {
		return req.Proposal.TxID
	}
	return ""
}

// roundTrip sends one request and reads one response, redialling once when
// an established connection turns out to be dead.
func (c *Client) roundTrip(req *request) (*response, error) {
	return c.roundTripTraced(req, traceIDFor(req))
}

// roundTripTraced is roundTrip with an explicit trace ID for callers whose
// payload no longer exposes one (binary block pushes).
func (c *Client) roundTripTraced(req *request, traceID string) (*response, error) {
	start := time.Now()
	defer func() {
		if c.cfg.Metrics != nil {
			// The per-op suffix is drawn from the transport's closed protocol
			// vocabulary (hello, height, blocks_from, ...), never from peer
			// input, so the family count is bounded by the protocol.
			//hyperprov:allow metricnames op suffix is the closed protocol vocabulary, not peer input
			c.cfg.Metrics.Histogram(metrics.TransportRPC + "_" + req.Op).Observe(time.Since(start))
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if err := c.ensureConnLocked(); err != nil {
			return nil, err
		}
		resp, err := c.exchangeLocked(req, traceID)
		if err == nil {
			c.setErrLocked(nil)
			return resp, nil
		}
		c.dropConnLocked()
		if attempt > 0 {
			err = fmt.Errorf("transport: %s %s: %w", req.Op, c.addr, err)
			c.setErrLocked(err)
			return nil, err
		}
	}
}

// Height probes the remote peer's committed height.
func (c *Client) Height() (uint64, error) {
	resp, err := c.roundTrip(&request{Op: opHeight})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, remoteErr(resp)
	}
	return resp.Height, nil
}

// BlocksFrom streams the remote peer's blocks with number >= from, one
// block per frame. On a mid-stream failure it returns the in-order prefix
// received so far together with the error: the prefix is safe to commit,
// and the next anti-entropy round fetches the rest.
func (c *Client) BlocksFrom(from uint64) ([]*blockstore.Block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConnLocked(); err != nil {
		return nil, err
	}
	if err := network.WriteExtJSON(c.shaped, "", c.cfg.Channel, &request{Op: opBlocksFrom, From: from}); err != nil {
		c.dropConnLocked()
		err = fmt.Errorf("transport: blocksFrom %s: %w", c.addr, err)
		c.setErrLocked(err)
		return nil, err
	}
	c.count(metrics.TransportFramesSent)
	var blocks []*blockstore.Block
	for {
		var resp response
		if err := network.ReadJSON(c.conn, &resp); err != nil {
			c.dropConnLocked()
			err = fmt.Errorf("transport: blocksFrom stream %s: %w", c.addr, err)
			c.setErrLocked(err)
			return blocks, err
		}
		c.count(metrics.TransportFramesReceived)
		if !resp.OK {
			return blocks, remoteErr(&resp)
		}
		if !resp.More {
			return blocks, nil
		}
		switch {
		case len(resp.BlockBin) > 0:
			b, err := blockstore.UnmarshalBlock(resp.BlockBin)
			if err != nil {
				// An undecodable block means the stream is unusable past this
				// point; the in-order prefix is still safe to commit.
				c.dropConnLocked()
				err = fmt.Errorf("transport: blocksFrom stream %s: %w", c.addr, err)
				c.setErrLocked(err)
				return blocks, err
			}
			blocks = append(blocks, b)
		case resp.Block != nil:
			blocks = append(blocks, resp.Block)
		}
	}
}

// Deliver pushes one block to the remote peer's commit pipeline, encoded in
// the canonical binary form (the receiving pipeline reuses those exact
// bytes for hashing and persistence).
func (c *Client) Deliver(b *blockstore.Block) error {
	var traceID string
	if len(b.Envelopes) > 0 {
		traceID = b.Envelopes[0].TxID
	}
	resp, err := c.roundTripTraced(&request{Op: opDeliver, BlockBin: blockstore.MarshalBlock(b)}, traceID)
	if err != nil {
		return err
	}
	if !resp.OK {
		return remoteErr(resp)
	}
	return nil
}

// SyncRemote waits until the remote peer has persisted every block it
// accepted, returning its post-sync height.
func (c *Client) SyncRemote() (uint64, error) {
	resp, err := c.roundTrip(&request{Op: opSync})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, remoteErr(resp)
	}
	return resp.Height, nil
}

// ProcessProposal endorses a proposal on the remote peer. The signature
// matches the local peer's, so a gateway fans proposals to local and
// remote endorsers interchangeably.
func (c *Client) ProcessProposal(prop *endorser.Proposal) (*endorser.Response, error) {
	resp, err := c.roundTrip(&request{Op: opEndorse, Proposal: prop})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, remoteErr(resp)
	}
	if resp.Endorsement == nil {
		return nil, &RemoteError{Code: network.CodeInternal, Msg: "endorse response without endorsement"}
	}
	// The serving peer measured its endorse span and shipped it back; join
	// it into this process's trace, marked as the remote hop.
	if c.cfg.Tracer != nil && resp.Span != nil {
		sp := *resp.Span
		sp.Remote = true
		c.cfg.Tracer.Add(prop.TxID, sp)
	}
	return resp.Endorsement, nil
}

// Query runs a read-only chaincode invocation on the remote peer.
func (c *Client) Query(chaincode, fn string, args [][]byte, creator []byte) (shim.Response, error) {
	resp, err := c.roundTrip(&request{
		Op: opQuery, Chaincode: chaincode, Function: fn, Args: args, Creator: creator,
	})
	if err != nil {
		return shim.Response{}, err
	}
	if !resp.OK {
		return shim.Response{}, remoteErr(resp)
	}
	return shim.Response{Status: resp.Status, Message: resp.Message, Payload: resp.Payload}, nil
}

// Fingerprint returns the remote peer's committed state fingerprint and
// height (the convergence check for multi-process deployments).
func (c *Client) Fingerprint() (string, uint64, error) {
	resp, err := c.roundTrip(&request{Op: opFingerprint})
	if err != nil {
		return "", 0, err
	}
	if !resp.OK {
		return "", 0, remoteErr(resp)
	}
	return resp.Fingerprint, resp.Height, nil
}

// Close closes the connection; in-flight calls fail and future calls
// error immediately.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		c.shaped = nil
		return err
	}
	return nil
}

// Member wraps the client as a gossip.Member, so a remote peer joins an
// in-process gossip.Network unchanged: height probes, pulls, and block
// deliveries to this member all cross the TCP connection. Errors are
// swallowed into "no progress this round" — anti-entropy's periodic pulls
// are the retry loop.
type Member struct {
	c    *Client
	name string

	// lastHeight caches the most recent successful probe. During an
	// outage Height reports this instead of 0: reporting 0 would make a
	// gossip puller recompute its fetch window from genesis and re-push
	// the entire chain over the shaped link once the peer comes back.
	mu         sync.Mutex
	lastHeight uint64
}

var (
	_ gossip.Member = (*Member)(nil)
	_ gossip.Syncer = (*Member)(nil)
)

// Member returns the gossip adapter for this client, naming it after the
// remote peer from the hello handshake.
func (c *Client) Member() (*Member, error) {
	info, err := c.Hello()
	if err != nil {
		return nil, err
	}
	return &Member{c: c, name: info.Name, lastHeight: info.Height}, nil
}

// Name returns the remote peer's name.
func (m *Member) Name() string { return m.name }

// Client returns the underlying transport client.
func (m *Member) Client() *Client { return m.c }

// Height probes the remote height; an unreachable peer reports the last
// height it was seen at (pull attempts against it fail cleanly, and the
// window stays correct for when it returns).
func (m *Member) Height() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, err := m.c.Height()
	if err != nil {
		return m.lastHeight
	}
	m.lastHeight = h
	return h
}

// BlocksFrom streams blocks from the remote peer. A mid-stream failure
// yields the received prefix — in-order, so safe to deliver.
func (m *Member) BlocksFrom(from uint64) []*blockstore.Block {
	blocks, _ := m.c.BlocksFrom(from)
	return blocks
}

// DeliverBlock pushes a block to the remote peer; a delivery failure is
// dropped (the remote will pull the block on a later round).
func (m *Member) DeliverBlock(b *blockstore.Block) {
	_ = m.c.Deliver(b)
}

// Sync flushes the remote peer's commit pipeline after a delivered batch.
func (m *Member) Sync() {
	_, _ = m.c.SyncRemote()
}
