package transport

import (
	"strings"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// A remote endorsement must record an endorse span on BOTH sides: the
// serving process under the frame-header trace ID, and the requesting
// process via the span shipped back in the response, marked Remote.
func TestRemoteEndorseSpanJoinsBothRecorders(t *testing.T) {
	f := newFixture(t)
	p := f.newPeer("peer0")

	serverTracer := trace.NewRecorder()
	srv, err := NewServer("127.0.0.1:0", p, ServerConfig{
		ChannelID:  "ch",
		Orgs:       []string{"Org1"},
		CACertsPEM: [][]byte{f.ca.CertPEM()},
		Tracer:     serverTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	clientTracer := trace.NewRecorder()
	c, err := Dial(srv.Addr(), ClientConfig{Tracer: clientTracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// First invocation instantiates the chaincode.
	prop := f.propose("__init")
	if _, err := c.ProcessProposal(prop); err != nil {
		t.Fatal(err)
	}

	// Server side: span recorded under the frame-header trace ID (== txID).
	st, ok := serverTracer.Lookup(prop.TxID)
	if !ok {
		t.Fatal("server recorder has no trace for the proposal's txID")
	}
	if len(st.Spans) == 0 || st.Spans[0].Stage != trace.StageEndorse || !st.Spans[0].Remote {
		t.Errorf("server spans = %+v", st.Spans)
	}

	// Client side: the shipped-back span joined under the same ID, Remote.
	ct, ok := clientTracer.Lookup(prop.TxID)
	if !ok {
		t.Fatal("client recorder has no trace for the proposal's txID")
	}
	found := false
	for _, s := range ct.Spans {
		if s.Stage == trace.StageEndorse && s.Remote && s.Peer == "peer0" {
			found = true
		}
	}
	if !found {
		t.Errorf("client spans lack the remote endorse hop: %+v", ct.Spans)
	}
}

func TestClientTransportMetrics(t *testing.T) {
	f := newFixture(t)
	p := f.newPeer("peer0")
	srv := f.serve(p)

	reg := metrics.NewRegistry()
	c, err := Dial(srv.Addr(), ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if _, err := c.Height(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// Hello (during Dial) + height: at least two exchanges.
	if snap[metrics.TransportFramesSent] < 2 || snap[metrics.TransportFramesReceived] < 2 {
		t.Errorf("frame counters = %v", snap)
	}
	if snap[metrics.TransportBytesSent] == 0 || snap[metrics.TransportBytesReceived] == 0 {
		t.Errorf("byte counters = %v", snap)
	}
	// Per-op RPC latency histograms exist for the ops used.
	sums := reg.HistogramSummaries()
	if sums[metrics.TransportRPC+"_"+opHeight].Count == 0 {
		t.Errorf("no height RPC latency recorded: %v", sums)
	}
	if c.LastError() != "" {
		t.Errorf("LastError = %q after success", c.LastError())
	}
}

// A server restart must surface as one reconnect, and the failure reason
// must be retained while the peer is down instead of being swallowed.
func TestClientReconnectCounterAndLastError(t *testing.T) {
	f := newFixture(t)
	p := f.newPeer("peer0")
	srv := f.serve(p)
	addr := srv.Addr()

	reg := metrics.NewRegistry()
	c, err := Dial(addr, ClientConfig{
		Metrics:    reg,
		MinBackoff: time.Millisecond,
		MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	srv.Close()
	if _, err := c.Height(); err == nil {
		t.Fatal("height against closed server succeeded")
	}
	if c.LastError() == "" {
		t.Error("LastError empty after failure")
	}

	// Restart on the same address (retry briefly: the OS may hold the port).
	var srv2 *Server
	for i := 0; i < 50; i++ {
		srv2, err = NewServer(addr, p, f.serverConfig())
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { srv2.Close() })

	// Outlast the backoff gate and re-probe until the redial lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Height(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Snapshot()[metrics.TransportReconnects]; got < 1 {
		t.Errorf("reconnects = %d, want >= 1", got)
	}
	if c.LastError() != "" {
		t.Errorf("LastError = %q after recovery", c.LastError())
	}
}

// A pushed block delivery must bump the server's push counter and record
// gossip.deliver spans for the block's transactions.
func TestServerPushDeliveryObservability(t *testing.T) {
	f := newFixture(t)
	src := f.newPeer("src")
	dst := f.newPeer("dst")
	f.commitTx(src, "k1")

	reg := metrics.NewRegistry()
	tracer := trace.NewRecorder()
	srv, err := NewServer("127.0.0.1:0", dst, ServerConfig{
		ChannelID:  "ch",
		Orgs:       []string{"Org1"},
		CACertsPEM: [][]byte{f.ca.CertPEM()},
		Metrics:    reg,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c := f.dial(srv.Addr())
	blocks := src.BlocksFrom(0)
	if len(blocks) == 0 {
		t.Fatal("source has no blocks")
	}
	for _, b := range blocks {
		if err := c.Deliver(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.SyncRemote(); err != nil {
		t.Fatal(err)
	}

	if got := reg.Snapshot()[metrics.GossipPushDeliveries]; got != int64(len(blocks)) {
		t.Errorf("push deliveries = %d, want %d", got, len(blocks))
	}
	txID := blocks[len(blocks)-1].Envelopes[0].TxID
	tr, ok := tracer.Lookup(txID)
	if !ok {
		t.Fatalf("no trace for delivered tx %s", txID)
	}
	has := false
	for _, s := range tr.Spans {
		if s.Stage == trace.StageGossipDeliver && strings.Contains(s.Peer, "dst") {
			has = true
		}
	}
	if !has {
		t.Errorf("spans = %+v", tr.Spans)
	}
}
