package statedb

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/richquery"
)

func mustApply(t *testing.T, s StateDB, block uint64, puts map[string]string, deletes ...string) {
	t.Helper()
	b := NewUpdateBatch()
	for k, v := range puts {
		b.Put(k, []byte(v), Version{BlockNum: block})
	}
	for _, k := range deletes {
		b.Delete(k, Version{BlockNum: block})
	}
	if err := s.ApplyUpdates(b, Version{BlockNum: block, TxNum: uint64(b.Len())}); err != nil {
		t.Fatal(err)
	}
}

// A snapshot must keep answering exactly as of its boundary while the
// store moves on: overwrites, deletes, and re-creations after the snapshot
// are all invisible to it, and its iterators neither gain nor lose keys.
func TestSnapshotIsolation(t *testing.T) {
	s := New()
	mustApply(t, s, 1, map[string]string{"a": "1", "b": "2", "c": "3"})
	snap := s.Snapshot()
	defer snap.Release()
	if snap.Height() != (Version{BlockNum: 1, TxNum: 3}) {
		t.Fatalf("snapshot height = %v", snap.Height())
	}

	mustApply(t, s, 2, map[string]string{"a": "new", "d": "4"}, "b")
	mustApply(t, s, 3, map[string]string{"b": "recreated"})

	// Live store sees the new world.
	if vv, _ := s.Get("a"); string(vv.Value) != "new" {
		t.Fatalf("live a = %q", vv.Value)
	}
	// Snapshot sees the old one.
	for key, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		vv, ok := snap.Get(key)
		if !ok || string(vv.Value) != want {
			t.Fatalf("snapshot %q = (%q,%v), want %q", key, vv.Value, ok, want)
		}
	}
	if _, ok := snap.Get("d"); ok {
		t.Fatal("snapshot sees key created after the boundary")
	}
	got := keysOf(Collect(snap.GetRange("", "")))
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("snapshot range = %v", got)
	}
	if snap.Len() != 3 {
		t.Fatalf("snapshot Len = %d, want 3", snap.Len())
	}
	// Live iterators see the new world.
	live := keysOf(Collect(s.GetRange("", "")))
	if !reflect.DeepEqual(live, []string{"a", "b", "c", "d"}) {
		t.Fatalf("live range = %v", live)
	}
}

// Reads through an outstanding snapshot must return the boundary values
// even while a large ApplyUpdates is concurrently rewriting every key —
// the copy-on-write overlay, not blocking, is what guarantees it.
func TestSnapshotConsistentDuringApply(t *testing.T) {
	const n = 20000
	s := NewSharded(8)
	puts := make(map[string]string, n)
	for i := 0; i < n; i++ {
		puts[fmt.Sprintf("k%05d", i)] = "old"
	}
	mustApply(t, s, 1, puts)

	snap := s.Snapshot()
	defer snap.Release()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for block := uint64(2); block < 6; block++ {
			b := NewUpdateBatch()
			for i := 0; i < n; i++ {
				b.Put(fmt.Sprintf("k%05d", i), []byte("new"), Version{BlockNum: block})
			}
			if err := s.ApplyUpdates(b, Version{BlockNum: block, TxNum: n}); err != nil {
				panic(err)
			}
		}
	}()
	errCh := make(chan string, 1)
	go func() {
		defer wg.Done()
		for round := 0; round < 4; round++ {
			it := snap.GetRange("", "")
			count := 0
			for {
				kv, ok := it.Next()
				if !ok {
					break
				}
				count++
				if !bytes.Equal(kv.Value, []byte("old")) {
					select {
					case errCh <- fmt.Sprintf("snapshot read %q = %q mid-apply", kv.Key, kv.Value):
					default:
					}
					return
				}
			}
			if count != n {
				select {
				case errCh <- fmt.Sprintf("snapshot scan saw %d keys, want %d", count, n):
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
	if vv, _ := s.Get("k00000"); string(vv.Value) != "new" {
		t.Fatalf("live value = %q after applies", vv.Value)
	}
}

// Iterators terminate early: a bounded scan over a huge keyspace must not
// walk past its bound (observable through the cursor's progress).
func TestIteratorEarlyTermination(t *testing.T) {
	s := New()
	puts := make(map[string]string, 10000)
	for i := 0; i < 10000; i++ {
		puts[fmt.Sprintf("k%05d", i)] = "v"
	}
	mustApply(t, s, 1, puts)
	it := s.GetRange("k00100", "k00110")
	got := keysOf(Collect(it))
	want := make([]string, 0, 10)
	for i := 100; i < 110; i++ {
		want = append(want, fmt.Sprintf("k%05d", i))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bounded scan = %v", got)
	}
	// Close mid-scan releases the backing snapshot; further Next is done.
	it2 := s.GetRange("", "")
	if _, ok := it2.Next(); !ok {
		t.Fatal("first Next failed")
	}
	it2.Close()
	if _, ok := it2.Next(); ok {
		t.Fatal("Next after Close yielded")
	}
}

// Restore detaches outstanding snapshots instead of mixing two worlds.
func TestRestoreDetachesSnapshots(t *testing.T) {
	s := New()
	mustApply(t, s, 1, map[string]string{"a": "1"})
	snap := s.Snapshot()
	defer snap.Release()
	s.Restore(map[string]VersionedValue{"z": {Value: []byte("9")}}, Version{BlockNum: 9})
	if _, ok := snap.Get("a"); ok {
		t.Fatal("detached snapshot still answers")
	}
	if kvs := Collect(snap.GetRange("", "")); len(kvs) != 0 {
		t.Fatalf("detached snapshot iterated %d keys", len(kvs))
	}
	if vv, ok := s.Get("z"); !ok || string(vv.Value) != "9" {
		t.Fatalf("restored store Get(z) = %q,%v", vv.Value, ok)
	}
}

// Snapshots see a batch either entirely or not at all — never a prefix —
// and a released snapshot stops costing the applier anything.
func TestSnapshotAtBatchBoundary(t *testing.T) {
	s := NewSharded(3)
	mustApply(t, s, 1, map[string]string{"x": "1", "y": "1"})
	snap := s.Snapshot()
	mustApply(t, s, 2, map[string]string{"x": "2", "y": "2"})
	xv, _ := snap.Get("x")
	yv, _ := snap.Get("y")
	if string(xv.Value) != string(yv.Value) {
		t.Fatalf("sheared read: x=%q y=%q", xv.Value, yv.Value)
	}
	snap.Release()
	// After release, applies no longer preserve; snapshot reads are
	// undefined, but the store itself must keep working.
	mustApply(t, s, 3, map[string]string{"x": "3"})
	if vv, _ := s.Get("x"); string(vv.Value) != "3" {
		t.Fatalf("live x = %q", vv.Value)
	}
}

// Views: point/range reads come from the snapshot; rich queries delegate
// to the live indexed store, and fall back to a snapshot scan on plain
// stores.
func TestViewReadsAndRichQueries(t *testing.T) {
	ixs, err := NewIndexed(richquery.IndexDef{Name: "by-owner", Field: "owner"})
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, ixs, 1, map[string]string{
		"d1": `{"owner":"alice","n":1}`,
		"d2": `{"owner":"bob","n":2}`,
	})
	view := NewView(ixs)
	defer view.Release()
	mustApply(t, ixs, 2, map[string]string{"d1": `{"owner":"carol","n":9}`})

	// Snapshot semantics for point reads.
	if vv, _ := view.Get("d1"); string(vv.Value) != `{"owner":"alice","n":1}` {
		t.Fatalf("view d1 = %q", vv.Value)
	}
	// Rich queries are live (index-served), phantom-validated at commit.
	res, err := view.ExecuteQuery([]byte(`{"selector":{"owner":"carol"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KVs) != 1 || res.KVs[0].Key != "d1" {
		t.Fatalf("view rich query = %+v", res.KVs)
	}

	// Plain store: the view's rich query scans its own snapshot.
	plain := New()
	mustApply(t, plain, 1, map[string]string{"p1": `{"owner":"dave"}`})
	pv := NewView(plain)
	defer pv.Release()
	mustApply(t, plain, 2, map[string]string{"p1": `{"owner":"erin"}`})
	res, err = pv.ExecuteQuery([]byte(`{"selector":{"owner":"dave"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KVs) != 1 || res.KVs[0].Key != "p1" {
		t.Fatalf("plain view query = %+v (want the snapshot's doc)", res.KVs)
	}
}

// The per-operation state metrics must populate once attached: latency
// histograms for get/scan/apply and the shard-contention counter.
func TestStateMetricsSmoke(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSharded(2)
	s.SetMetrics(reg)
	mustApply(t, s, 1, map[string]string{"a": "1", "b": "2"})
	s.Get("a")
	Collect(s.GetRange("", ""))

	sums := reg.HistogramSummaries()
	for _, name := range []string{metrics.StateGet, metrics.StateScan, metrics.StateApply} {
		if sums[name].Count == 0 {
			t.Errorf("histogram %s never observed", name)
		}
	}
	if got := reg.Snapshot()[metrics.StateShardContention]; got < 0 {
		t.Errorf("contention counter = %d", got)
	}
	// Contention is actually counted: hold a shard write lock and Get.
	done := make(chan struct{})
	sh := s.shardFor("a")
	sh.mu.Lock()
	go func() {
		s.Get("a") // blocks until unlock; TryRLock fails -> contention
		close(done)
	}()
	for reg.Snapshot()[metrics.StateShardContention] == 0 {
		time.Sleep(time.Millisecond) // until the goroutine reaches TryRLock
	}
	sh.mu.Unlock()
	<-done
	if got := reg.Snapshot()[metrics.StateShardContention]; got == 0 {
		t.Error("contention never counted")
	}
}
