package statedb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	b := NewUpdateBatch()
	b.Put("k1", []byte("v1"), Version{1, 0})
	b.Put("k2", []byte("v2"), Version{1, 1})
	if err := s.ApplyUpdates(b, Version{1, 1}); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	vv, ok := s.Get("k1")
	if !ok || !bytes.Equal(vv.Value, []byte("v1")) {
		t.Errorf("Get(k1) = %v, %v", vv, ok)
	}
	if vv.Version != (Version{1, 0}) {
		t.Errorf("version = %v, want 1:0", vv.Version)
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("Get(absent) ok = true")
	}
}

func TestDelete(t *testing.T) {
	s := New()
	b := NewUpdateBatch()
	b.Put("k", []byte("v"), Version{1, 0})
	if err := s.ApplyUpdates(b, Version{1, 0}); err != nil {
		t.Fatal(err)
	}
	b2 := NewUpdateBatch()
	b2.Delete("k", Version{2, 0})
	if err := s.ApplyUpdates(b2, Version{2, 0}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("key still present after delete")
	}
}

func TestCommitHeightMonotonic(t *testing.T) {
	s := New()
	if err := s.ApplyUpdates(NewUpdateBatch(), Version{5, 0}); err != nil {
		t.Fatal(err)
	}
	err := s.ApplyUpdates(NewUpdateBatch(), Version{4, 9})
	if !errors.Is(err, ErrStaleCommitHeight) {
		t.Fatalf("stale commit error = %v, want ErrStaleCommitHeight", err)
	}
	err = s.ApplyUpdates(NewUpdateBatch(), Version{5, 0})
	if !errors.Is(err, ErrStaleCommitHeight) {
		t.Fatalf("equal-height commit error = %v, want ErrStaleCommitHeight", err)
	}
	if got := s.Height(); got != (Version{5, 0}) {
		t.Errorf("Height = %v, want 5:0", got)
	}
}

func TestVersionCompare(t *testing.T) {
	tests := []struct {
		a, b Version
		want int
	}{
		{Version{1, 0}, Version{1, 0}, 0},
		{Version{1, 0}, Version{1, 1}, -1},
		{Version{1, 5}, Version{1, 1}, 1},
		{Version{1, 9}, Version{2, 0}, -1},
		{Version{3, 0}, Version{2, 9}, 1},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestGetRange(t *testing.T) {
	s := New()
	b := NewUpdateBatch()
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		b.Put(k, []byte(k), Version{1, 0})
	}
	// Composite keys must not appear in plain range scans.
	ck, err := CreateCompositeKey("typ", []string{"b2"})
	if err != nil {
		t.Fatal(err)
	}
	b.Put(ck, []byte("composite"), Version{1, 0})
	if err := s.ApplyUpdates(b, Version{1, 0}); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		start, end string
		want       []string
	}{
		{"b", "d", []string{"b", "c"}},
		{"", "", []string{"a", "b", "c", "d", "e"}},
		{"c", "", []string{"c", "d", "e"}},
		{"x", "z", nil},
	}
	for _, tt := range tests {
		got := Collect(s.GetRange(tt.start, tt.end))
		keys := make([]string, len(got))
		for i, kv := range got {
			keys[i] = kv.Key
		}
		if len(keys) == 0 {
			keys = nil
		}
		if !reflect.DeepEqual(keys, tt.want) {
			t.Errorf("GetRange(%q,%q) = %v, want %v", tt.start, tt.end, keys, tt.want)
		}
	}
}

func TestCompositeKeyRoundTrip(t *testing.T) {
	key, err := CreateCompositeKey("lineage", []string{"parent", "child"})
	if err != nil {
		t.Fatalf("CreateCompositeKey: %v", err)
	}
	typ, attrs, err := SplitCompositeKey(key)
	if err != nil {
		t.Fatalf("SplitCompositeKey: %v", err)
	}
	if typ != "lineage" || !reflect.DeepEqual(attrs, []string{"parent", "child"}) {
		t.Errorf("split = %q %v", typ, attrs)
	}
}

func TestCompositeKeyErrors(t *testing.T) {
	if _, err := CreateCompositeKey("", nil); err == nil {
		t.Error("empty object type accepted")
	}
	if _, err := CreateCompositeKey("a\x00b", nil); err == nil {
		t.Error("object type with U+0000 accepted")
	}
	if _, err := CreateCompositeKey("t", []string{"a\x00"}); err == nil {
		t.Error("attribute with U+0000 accepted")
	}
	if _, _, err := SplitCompositeKey("plain"); err == nil {
		t.Error("SplitCompositeKey accepted plain key")
	}
}

func TestPartialCompositeKeyQuery(t *testing.T) {
	s := New()
	b := NewUpdateBatch()
	mk := func(attrs ...string) string {
		k, err := CreateCompositeKey("edge", attrs)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	b.Put(mk("p1", "c1"), []byte("1"), Version{1, 0})
	b.Put(mk("p1", "c2"), []byte("2"), Version{1, 1})
	b.Put(mk("p2", "c3"), []byte("3"), Version{1, 2})
	if err := s.ApplyUpdates(b, Version{1, 2}); err != nil {
		t.Fatal(err)
	}

	it, err := s.GetByPartialCompositeKey("edge", []string{"p1"})
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(it)
	if len(got) != 2 {
		t.Fatalf("partial query returned %d entries, want 2", len(got))
	}
	allIt, err := s.GetByPartialCompositeKey("edge", nil)
	if err != nil {
		t.Fatal(err)
	}
	all := Collect(allIt)
	if len(all) != 3 {
		t.Fatalf("full prefix query returned %d entries, want 3", len(all))
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	b := NewUpdateBatch()
	b.Put("k", []byte("v"), Version{3, 1})
	if err := s.ApplyUpdates(b, Version{3, 1}); err != nil {
		t.Fatal(err)
	}
	snap := s.Export()
	// Mutating the exported copy must not affect the store.
	snap["k"].Value[0] = 'X'
	if vv, _ := s.Get("k"); vv.Value[0] != 'v' {
		t.Error("export aliases store data")
	}

	s2 := New()
	s2.Restore(s.Export(), s.Height())
	if vv, ok := s2.Get("k"); !ok || !bytes.Equal(vv.Value, []byte("v")) {
		t.Errorf("restored Get(k) = %v, %v", vv, ok)
	}
	if s2.Height() != (Version{3, 1}) {
		t.Errorf("restored height = %v", s2.Height())
	}
}

func TestBatchKeysSorted(t *testing.T) {
	b := NewUpdateBatch()
	for _, k := range []string{"z", "a", "m"} {
		b.Put(k, nil, Version{1, 0})
	}
	if got := b.Keys(); !sort.StringsAreSorted(got) {
		t.Errorf("Keys() = %v, want sorted", got)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
}

// Property: last-writer-wins — after applying a sequence of batches with
// increasing heights, each key holds the value of the highest-version write.
func TestQuickLastWriterWins(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		want := map[string]string{}
		ops := int(nOps%64) + 1
		for i := 0; i < ops; i++ {
			b := NewUpdateBatch()
			ver := Version{BlockNum: uint64(i + 1)}
			nw := rng.Intn(5) + 1
			for j := 0; j < nw; j++ {
				key := fmt.Sprintf("k%d", rng.Intn(10))
				if rng.Intn(4) == 0 {
					b.Delete(key, ver)
					delete(want, key)
				} else {
					val := fmt.Sprintf("v%d-%d", i, j)
					b.Put(key, []byte(val), ver)
					want[key] = val
				}
			}
			if err := s.ApplyUpdates(b, ver); err != nil {
				return false
			}
		}
		for k, v := range want {
			vv, ok := s.Get(k)
			if !ok || string(vv.Value) != v {
				return false
			}
		}
		// No extra plain keys beyond those expected.
		return len(Collect(s.GetRange("", ""))) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: range scans return keys in strictly increasing order and respect
// bounds.
func TestQuickRangeOrdered(t *testing.T) {
	f := func(keys []string, start, end string) bool {
		s := New()
		b := NewUpdateBatch()
		for i, k := range keys {
			if k == "" {
				continue
			}
			b.Put(k, []byte("v"), Version{1, uint64(i)})
		}
		if err := s.ApplyUpdates(b, Version{1, uint64(len(keys) + 1)}); err != nil {
			return false
		}
		got := Collect(s.GetRange(start, end))
		for i, kv := range got {
			if kv.Key < start {
				return false
			}
			if end != "" && kv.Key >= end {
				return false
			}
			if i > 0 && got[i-1].Key >= kv.Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRestoreHeightSemantics(t *testing.T) {
	s := New()
	b := NewUpdateBatch()
	b.Put("k", []byte("v1"), Version{1, 0})
	if err := s.ApplyUpdates(b, Version{1, 1}); err != nil {
		t.Fatal(err)
	}

	snap := s.Export()
	restored := New()
	restored.Restore(snap, Version{7, 3})
	if got := restored.Height(); got != (Version{7, 3}) {
		t.Fatalf("restored height = %v, want 7:3", got)
	}
	// Heights at or below the restored height are stale: replaying an
	// already-reflected block after recovery must be rejected, not
	// double-applied.
	stale := NewUpdateBatch()
	stale.Put("k", []byte("v2"), Version{7, 0})
	if err := restored.ApplyUpdates(stale, Version{7, 3}); !errors.Is(err, ErrStaleCommitHeight) {
		t.Fatalf("apply at restored height: err = %v, want ErrStaleCommitHeight", err)
	}
	if err := restored.ApplyUpdates(stale, Version{6, 9}); !errors.Is(err, ErrStaleCommitHeight) {
		t.Fatalf("apply below restored height: err = %v, want ErrStaleCommitHeight", err)
	}
	if vv, _ := restored.Get("k"); string(vv.Value) != "v1" {
		t.Fatalf("stale apply mutated state: %q", vv.Value)
	}
	// Strictly above the restored height proceeds.
	next := NewUpdateBatch()
	next.Put("k", []byte("v3"), Version{8, 0})
	if err := restored.ApplyUpdates(next, Version{8, 1}); err != nil {
		t.Fatalf("apply above restored height: %v", err)
	}
	// Restore deep-copies: the snapshot stays untouched by later applies.
	if string(snap["k"].Value) != "v1" {
		t.Errorf("snapshot mutated: %q", snap["k"].Value)
	}
}

func TestVersionedValueJSONRoundtrip(t *testing.T) {
	s := New()
	b := NewUpdateBatch()
	b.Put("doc", []byte(`{"owner":"alice"}`), Version{3, 1})
	b.Put("empty", nil, Version{3, 2})
	if err := s.ApplyUpdates(b, Version{3, 2}); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(s.Export())
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]VersionedValue
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	restored := New()
	restored.Restore(snap, Version{3, 2})
	vv, ok := restored.Get("doc")
	if !ok || string(vv.Value) != `{"owner":"alice"}` || vv.Version != (Version{3, 1}) {
		t.Fatalf("doc after JSON roundtrip = %+v ok=%v", vv, ok)
	}
	if _, ok := restored.Get("empty"); !ok {
		t.Error("empty-valued key lost in JSON roundtrip")
	}
}
